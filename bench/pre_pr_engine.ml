(* Frozen copy of lib/circuit/engine.ml as of the pre-factor-once engine
   (seed commit), compiled against the frozen [Pre_pr_banded] solver.
   Used only by the [engine] bench group as the pre-PR performance
   baseline; do not modify. *)
module Banded = Pre_pr_banded
module Linalg = Rlc_num.Linalg
module Netlist = Rlc_circuit.Netlist
module Waveform = Rlc_waveform.Waveform

type integration = Trapezoidal | Backward_euler

type options = {
  dt : float;
  t_stop : float;
  integration : integration;
  newton_tol : float;
  newton_max : int;
  dv_limit : float;
}

let default_options ~dt ~t_stop =
  { dt; t_stop; integration = Trapezoidal; newton_tol = 1e-9; newton_max = 60; dv_limit = 0.5 }

(* Linear-system abstraction: banded when the netlist numbering keeps the
   bandwidth small (uniform ladders are tridiagonal), dense otherwise. *)
type sys = B of Banded.t | D of Linalg.mat

let sys_create ~n ~bw = if bw <= 16 || n <= 24 && bw < n then B (Banded.create ~n ~bw) else D (Linalg.make n n 0.)

let sys_clear = function
  | B b -> Banded.clear b
  | D m -> Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.) m

let sys_add s i j v =
  match s with B b -> Banded.add b i j v | D m -> m.(i).(j) <- m.(i).(j) +. v

let sys_copy = function B b -> B (Banded.copy b) | D m -> D (Linalg.copy_mat m)

let sys_solve_in_place s rhs =
  match s with
  | B b -> Banded.solve_in_place b rhs
  | D m ->
      let x = Linalg.solve m rhs in
      Array.blit x 0 rhs 0 (Array.length x)

(* Compiled two-terminal element with per-step companion state. *)
type companion = { n1 : int; n2 : int; value : float; mutable v_prev : float; mutable i_prev : float }

(* Magnetically coupled group: branch currents depend on all branch
   voltages through G = alpha * L^{-1} (alpha = h/2 for trapezoidal, h for
   backward Euler), which stays purely nodal. *)
type coupled_state = {
  k_branches : (int * int) array;
  linv : float array array;  (* L^{-1} *)
  i_prev_k : float array;
  v_prev_k : float array;
}

type compiled = {
  nl : Netlist.t;
  n_nodes : int;
  n_unknown : int;
  unknown_of_node : int array;  (* -1 for ground and forced nodes *)
  forced : (int * (float -> float)) array;
  resistors : (int * int * float) array;
  caps : companion array;
  inds : companion array;
  coupled : coupled_state array;
  isources : (int * int * (float -> float)) array;
  nonlinears : Netlist.nonlinear array;
  bandwidth : int;
}

let compile netlist =
  Netlist.validate netlist;
  let n_nodes = Netlist.node_count netlist in
  let forced = Array.of_list (Netlist.forced netlist) in
  let unknown_of_node = Array.make n_nodes (-1) in
  let is_forced = Array.make n_nodes false in
  Array.iter (fun (n, _) -> is_forced.(n) <- true) forced;
  let next = ref 0 in
  for n = 1 to n_nodes - 1 do
    if not is_forced.(n) then begin
      unknown_of_node.(n) <- !next;
      incr next
    end
  done;
  let n_unknown = !next in
  let rs = ref [] and cs = ref [] and ls = ref [] and is_ = ref [] and nls = ref [] in
  let ks = ref [] in
  let invert m =
    let n = Array.length m in
    let lu = Linalg.lu_factor m in
    let inv = Array.make_matrix n n 0. in
    for j = 0 to n - 1 do
      let e = Array.make n 0. in
      e.(j) <- 1.;
      let col = Linalg.lu_solve lu e in
      for i = 0 to n - 1 do
        inv.(i).(j) <- col.(i)
      done
    done;
    inv
  in
  List.iter
    (fun (e : Netlist.element) ->
      match e with
      | Resistor { n1; n2; ohms; _ } -> rs := (n1, n2, 1. /. ohms) :: !rs
      | Capacitor { n1; n2; farads; _ } ->
          cs := { n1; n2; value = farads; v_prev = 0.; i_prev = 0. } :: !cs
      | Inductor { n1; n2; henries; _ } ->
          ls := { n1; n2; value = henries; v_prev = 0.; i_prev = 0. } :: !ls
      | Current_source { n1; n2; amps; _ } -> is_ := (n1, n2, amps) :: !is_
      | Coupled_inductors { cp_branches; cp_lmat; _ } ->
          let k = Array.length cp_branches in
          ks :=
            {
              k_branches = Array.copy cp_branches;
              linv = invert cp_lmat;
              i_prev_k = Array.make k 0.;
              v_prev_k = Array.make k 0.;
            }
            :: !ks
      | Nonlinear nl -> nls := nl :: !nls)
    (Netlist.elements netlist);
  let pair_band n1 n2 =
    let u1 = unknown_of_node.(n1) and u2 = unknown_of_node.(n2) in
    if u1 >= 0 && u2 >= 0 then abs (u1 - u2) else 0
  in
  let bw = ref 1 in
  List.iter (fun (n1, n2, _) -> bw := Int.max !bw (pair_band n1 n2)) !rs;
  List.iter (fun (c : companion) -> bw := Int.max !bw (pair_band c.n1 c.n2)) !cs;
  List.iter (fun (c : companion) -> bw := Int.max !bw (pair_band c.n1 c.n2)) !ls;
  List.iter
    (fun (nl : Netlist.nonlinear) ->
      Array.iter
        (fun a -> Array.iter (fun b -> bw := Int.max !bw (pair_band a b)) nl.nl_nodes)
        nl.nl_nodes)
    !nls;
  List.iter
    (fun (k : coupled_state) ->
      Array.iter
        (fun (a1, b1) ->
          Array.iter
            (fun (a2, b2) ->
              List.iter
                (fun (x, y) -> bw := Int.max !bw (pair_band x y))
                [ (a1, a2); (a1, b2); (b1, a2); (b1, b2) ])
            k.k_branches)
        k.k_branches)
    !ks;
  {
    nl = netlist;
    n_nodes;
    n_unknown;
    unknown_of_node;
    forced;
    resistors = Array.of_list (List.rev !rs);
    caps = Array.of_list (List.rev !cs);
    inds = Array.of_list (List.rev !ls);
    coupled = Array.of_list (List.rev !ks);
    isources = Array.of_list (List.rev !is_);
    nonlinears = Array.of_list (List.rev !nls);
    bandwidth = !bw;
  }

(* Stamp conductance [g] and constant element current [j] (flowing n1 -> n2)
   into system/rhs given the full node-voltage vector for known nodes. *)
let stamp c sys rhs vnode n1 n2 g j =
  let u1 = c.unknown_of_node.(n1) and u2 = c.unknown_of_node.(n2) in
  if u1 >= 0 then begin
    if g <> 0. then begin
      sys_add sys u1 u1 g;
      if u2 >= 0 then sys_add sys u1 u2 (-.g) else rhs.(u1) <- rhs.(u1) +. (g *. vnode.(n2))
    end;
    rhs.(u1) <- rhs.(u1) -. j
  end;
  if u2 >= 0 then begin
    if g <> 0. then begin
      sys_add sys u2 u2 g;
      if u1 >= 0 then sys_add sys u2 u1 (-.g) else rhs.(u2) <- rhs.(u2) +. (g *. vnode.(n1))
    end;
    rhs.(u2) <- rhs.(u2) +. j
  end

(* Companion coefficients of a coupled group for the current step:
   [g = alpha L^{-1}] and per-branch history sources. *)
let coupled_companion (k : coupled_state) integration dt =
  let nb = Array.length k.k_branches in
  let alpha = match integration with Trapezoidal -> dt /. 2. | Backward_euler -> dt in
  let g = Array.init nb (fun p -> Array.map (fun v -> alpha *. v) k.linv.(p)) in
  let ieq =
    Array.init nb (fun p ->
        match integration with
        | Backward_euler -> k.i_prev_k.(p)
        | Trapezoidal ->
            let acc = ref k.i_prev_k.(p) in
            for q = 0 to nb - 1 do
              acc := !acc +. (g.(p).(q) *. k.v_prev_k.(q))
            done;
            !acc)
  in
  (g, ieq)

(* Stamp a coupled group: branch p carries
   i_p = sum_q g.(p).(q) (v(aq) - v(bq)) + ieq.(p), flowing from the first
   to the second node of branch p. *)
let stamp_coupled c sys rhs vnode (k : coupled_state) g ieq =
  let nb = Array.length k.k_branches in
  for p = 0 to nb - 1 do
    let ap, bp = k.k_branches.(p) in
    let row node row_sign =
      let u = c.unknown_of_node.(node) in
      if u >= 0 then begin
        for q = 0 to nb - 1 do
          let aq, bq = k.k_branches.(q) in
          let add col col_sign =
            let coeff = row_sign *. col_sign *. g.(p).(q) in
            if coeff <> 0. then begin
              let uc = c.unknown_of_node.(col) in
              if uc >= 0 then sys_add sys u uc coeff
              else rhs.(u) <- rhs.(u) -. (coeff *. vnode.(col))
            end
          in
          add aq 1.;
          add bq (-1.)
        done;
        rhs.(u) <- rhs.(u) -. (row_sign *. ieq.(p))
      end
    in
    row ap 1.;
    row bp (-1.)
  done

let stamp_nonlinear c sys rhs vnode (dev : Netlist.nonlinear) =
  let nn = Array.length dev.nl_nodes in
  let v = Array.map (fun n -> vnode.(n)) dev.nl_nodes in
  let i, gm = dev.nl_eval v in
  for k = 0 to nn - 1 do
    let uk = c.unknown_of_node.(dev.nl_nodes.(k)) in
    if uk >= 0 then begin
      let acc = ref (-.i.(k)) in
      for jn = 0 to nn - 1 do
        let uj = c.unknown_of_node.(dev.nl_nodes.(jn)) in
        if uj >= 0 then begin
          sys_add sys uk uj gm.(k).(jn);
          acc := !acc +. (gm.(k).(jn) *. v.(jn))
        end
      done;
      rhs.(uk) <- rhs.(uk) +. !acc
    end
  done

let update_forced c vnode t =
  Array.iter (fun (n, f) -> vnode.(n) <- f t) c.forced

(* Newton loop on top of a base (linear part) assembly function. *)
let newton ~opts ~c ~assemble_base ~vnode ~t =
  if Array.length c.nonlinears = 0 && c.n_unknown > 0 then begin
    let sys, rhs = assemble_base () in
    sys_solve_in_place sys rhs;
    for n = 1 to c.n_nodes - 1 do
      let u = c.unknown_of_node.(n) in
      if u >= 0 then vnode.(n) <- rhs.(u)
    done;
    1
  end
  else if c.n_unknown = 0 then 0
  else begin
    let iter = ref 0 and converged = ref false in
    while (not !converged) && !iter < opts.newton_max do
      incr iter;
      let base_sys, base_rhs = assemble_base () in
      let sys = sys_copy base_sys and rhs = Array.copy base_rhs in
      Array.iter (fun dev -> stamp_nonlinear c sys rhs vnode dev) c.nonlinears;
      sys_solve_in_place sys rhs;
      let worst = ref 0. in
      for n = 1 to c.n_nodes - 1 do
        let u = c.unknown_of_node.(n) in
        if u >= 0 then begin
          let dv = rhs.(u) -. vnode.(n) in
          worst := Float.max !worst (Float.abs dv);
          let dv = Float.max (-.opts.dv_limit) (Float.min opts.dv_limit dv) in
          vnode.(n) <- vnode.(n) +. dv
        end
      done;
      if !worst < opts.newton_tol then converged := true
    done;
    if not !converged then
      failwith (Printf.sprintf "Engine: Newton failed to converge at t=%g s" t);
    !iter
  end

type result = {
  times_ : float array;
  volts : float array array;  (* volts.(node).(step) *)
  total_newton : int;
  worst_newton : int;
}

let dc_solve ?(t = 0.) c opts =
  let vnode = Array.make c.n_nodes 0. in
  update_forced c vnode t;
  let g_short = 1e3 in
  let assemble_base () =
    let sys = sys_create ~n:c.n_unknown ~bw:c.bandwidth in
    sys_clear sys;
    let rhs = Array.make c.n_unknown 0. in
    Array.iter (fun (n1, n2, g) -> stamp c sys rhs vnode n1 n2 g 0.) c.resistors;
    Array.iter (fun (cc : companion) -> stamp c sys rhs vnode cc.n1 cc.n2 g_short 0.) c.inds;
    Array.iter
      (fun (k : coupled_state) ->
        Array.iter (fun (a, b) -> stamp c sys rhs vnode a b g_short 0.) k.k_branches)
      c.coupled;
    (* Capacitors are open at DC, but a node connected only through
       capacitors would make the matrix singular; a tiny leak conductance
       pins such nodes without perturbing the solution elsewhere. *)
    Array.iter (fun (cc : companion) -> stamp c sys rhs vnode cc.n1 cc.n2 1e-12 0.) c.caps;
    Array.iter (fun (n1, n2, f) -> stamp c sys rhs vnode n1 n2 0. (f t)) c.isources;
    (sys, rhs)
  in
  let _ = newton ~opts ~c ~assemble_base ~vnode ~t in
  vnode

let dc_operating_point ?(t = 0.) netlist =
  let c = compile netlist in
  let opts = default_options ~dt:1e-12 ~t_stop:0. in
  dc_solve ~t c opts

let transient ?options ~dt ~t_stop netlist =
  let opts = match options with Some o -> o | None -> default_options ~dt ~t_stop in
  let dt = opts.dt and t_stop = opts.t_stop in
  if dt <= 0. || t_stop <= 0. then invalid_arg "Engine.transient: dt and t_stop must be positive";
  let c = compile netlist in
  (* Tiny epsilon guards float-division noise (1e-9 / 10e-12 is slightly
     above 100) from adding a spurious extra step. *)
  let n_steps = Int.max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  let vnode = dc_solve ~t:0. c opts in
  (* Initialize companion states from the DC point. *)
  Array.iter
    (fun (cc : companion) ->
      cc.v_prev <- vnode.(cc.n1) -. vnode.(cc.n2);
      cc.i_prev <- 0.)
    c.caps;
  Array.iter
    (fun (cc : companion) ->
      let dv = vnode.(cc.n1) -. vnode.(cc.n2) in
      cc.v_prev <- dv;
      cc.i_prev <- 1e3 *. dv)
    c.inds;
  Array.iter
    (fun (k : coupled_state) ->
      Array.iteri
        (fun p (a, b) ->
          let dv = vnode.(a) -. vnode.(b) in
          k.v_prev_k.(p) <- dv;
          k.i_prev_k.(p) <- 1e3 *. dv)
        k.k_branches)
    c.coupled;
  let times_ = Array.init (n_steps + 1) (fun i -> dt *. float_of_int i) in
  let volts = Array.init c.n_nodes (fun _ -> Array.make (n_steps + 1) 0.) in
  let record step = Array.iteri (fun n col -> col.(step) <- vnode.(n)) volts in
  record 0;
  let total_newton = ref 0 and worst_newton = ref 0 in
  for step = 1 to n_steps do
    let t = times_.(step) in
    update_forced c vnode t;
    let assemble_base () =
      let sys = sys_create ~n:c.n_unknown ~bw:c.bandwidth in
      sys_clear sys;
      let rhs = Array.make c.n_unknown 0. in
      Array.iter (fun (n1, n2, g) -> stamp c sys rhs vnode n1 n2 g 0.) c.resistors;
      Array.iter
        (fun (cc : companion) ->
          match opts.integration with
          | Trapezoidal ->
              let g = 2. *. cc.value /. dt in
              stamp c sys rhs vnode cc.n1 cc.n2 g (-.((g *. cc.v_prev) +. cc.i_prev))
          | Backward_euler ->
              let g = cc.value /. dt in
              stamp c sys rhs vnode cc.n1 cc.n2 g (-.(g *. cc.v_prev)))
        c.caps;
      Array.iter
        (fun (cc : companion) ->
          match opts.integration with
          | Trapezoidal ->
              let g = dt /. (2. *. cc.value) in
              stamp c sys rhs vnode cc.n1 cc.n2 g (cc.i_prev +. (g *. cc.v_prev))
          | Backward_euler ->
              let g = dt /. cc.value in
              stamp c sys rhs vnode cc.n1 cc.n2 g cc.i_prev)
        c.inds;
      Array.iter
        (fun (k : coupled_state) ->
          let g, ieq = coupled_companion k opts.integration dt in
          stamp_coupled c sys rhs vnode k g ieq)
        c.coupled;
      Array.iter (fun (n1, n2, f) -> stamp c sys rhs vnode n1 n2 0. (f t)) c.isources;
      (sys, rhs)
    in
    let iters = newton ~opts ~c ~assemble_base ~vnode ~t in
    total_newton := !total_newton + iters;
    worst_newton := Int.max !worst_newton iters;
    (* Commit companion states. *)
    Array.iter
      (fun (cc : companion) ->
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let i =
          match opts.integration with
          | Trapezoidal ->
              let g = 2. *. cc.value /. dt in
              (g *. v) -. ((g *. cc.v_prev) +. cc.i_prev)
          | Backward_euler -> cc.value /. dt *. (v -. cc.v_prev)
        in
        cc.v_prev <- v;
        cc.i_prev <- i)
      c.caps;
    Array.iter
      (fun (cc : companion) ->
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let i =
          match opts.integration with
          | Trapezoidal ->
              let g = dt /. (2. *. cc.value) in
              (g *. v) +. cc.i_prev +. (g *. cc.v_prev)
          | Backward_euler -> (dt /. cc.value *. v) +. cc.i_prev
        in
        cc.v_prev <- v;
        cc.i_prev <- i)
      c.inds;
    Array.iter
      (fun (k : coupled_state) ->
        (* Companion coefficients still reference the pre-step state; commit
           currents first, voltages after. *)
        let g, ieq = coupled_companion k opts.integration dt in
        let nb = Array.length k.k_branches in
        let v_new = Array.map (fun (a, b) -> vnode.(a) -. vnode.(b)) k.k_branches in
        for p = 0 to nb - 1 do
          let acc = ref ieq.(p) in
          for q = 0 to nb - 1 do
            acc := !acc +. (g.(p).(q) *. v_new.(q))
          done;
          k.i_prev_k.(p) <- !acc
        done;
        Array.blit v_new 0 k.v_prev_k 0 nb)
      c.coupled;
    record step
  done;
  { times_; volts; total_newton = !total_newton; worst_newton = !worst_newton }

let times r = Array.copy r.times_
let voltage r n = Waveform.create ~ts:r.times_ ~vs:r.volts.(n)

let voltage_at r n t =
  let w = voltage r n in
  Waveform.value_at w t

let newton_total r = r.total_newton
let newton_worst r = r.worst_newton
let steps r = Array.length r.times_ - 1
