(* Benchmark / reproduction harness.

   One entry per table and figure of the paper's evaluation section
   (DESIGN.md §5).  With no arguments it regenerates everything — Table 1,
   the data series behind Figures 1, 3, 4, 5, 6 and the Figure 7 sweep
   statistics — and then runs the Bechamel performance suite.  Pass subsets
   on the command line: table1 fig1 fig3 fig4 fig5 fig6 fig7 perf
   (plus `fig7-fast` for a subsampled sweep during development). *)

open Rlc_ceff
module Waveform = Rlc_waveform.Waveform
module Measure = Rlc_waveform.Measure
module Units = Rlc_num.Units
module Testbench = Rlc_devices.Testbench
module Characterize = Rlc_liberty.Characterize

let dt_fig = 0.25e-12
let dt_sweep = 0.5e-12
let ps = Units.in_ps
let ff = Units.in_ff

let header title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."

let series name w =
  Format.printf "@.# %s  (columns: time_ps voltage_V)@." name;
  Format.printf "%a" (Waveform.pp_series ~max_rows:70 ~unit_time:1e-12 ~unit_v:1.) w

let clip_to w t_hi = Waveform.clip w ~t_lo:(Waveform.t_start w) ~t_hi

let cell_exn tech ~size =
  match Characterize.cell_res tech ~size with
  | Ok c -> c
  | Error e -> failwith (Rlc_errors.Error.message e)

let model_of (case : Evaluate.case) mode =
  let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
  Driver_model.model ~mode ~cell ~edge:Measure.Rising ~input_slew:case.Evaluate.input_slew
    ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()

let reference_of ?(dt = dt_fig) (case : Evaluate.case) =
  Reference.simulate ~dt ~tech:case.Evaluate.tech ~size:case.Evaluate.size
    ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()

(* ---------------------------------------------------------------- fig1 *)

let fig1 () =
  header "Figure 1: driver output waveform of a 5 mm RLC line driven by a 75X inverter";
  let case = Experiments.fig1 in
  let line = case.Evaluate.line in
  Format.printf "line: %a@." Rlc_tline.Line.pp line;
  let r = reference_of case in
  let m = model_of case Driver_model.Auto in
  Format.printf
    "transmission-line theory: initial step f*Vdd = %.2f V (f = %.2f), plateau ends at 2tf = \
     %.1f ps after launch@."
    (m.Driver_model.f *. m.Driver_model.vdd)
    m.Driver_model.f
    (ps (2. *. m.Driver_model.tf));
  series "HSPICE-substitute near end (kinks A-B-C-D of the paper)"
    (clip_to r.Reference.near (Waveform.t_start r.Reference.near +. 600e-12))

(* ---------------------------------------------------------------- fig3 *)

let fig3 () =
  header
    "Figure 3: single-Ceff failure on a 7 mm line (charge to 50% vs charge to 100%)";
  let case = Experiments.fig3 in
  Format.printf "line: %a@." Rlc_tline.Line.pp case.Evaluate.line;
  let m = model_of case Driver_model.Force_two_ramp in
  let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
  let c50 =
    Driver_model.single_ceff_variant m ~cell ~edge:Measure.Rising
      ~input_slew:case.Evaluate.input_slew ~f:0.5
  in
  let c100 =
    Driver_model.single_ceff_variant m ~cell ~edge:Measure.Rising
      ~input_slew:case.Evaluate.input_slew ~f:1.0
  in
  Format.printf "Ceff(charge to 50%%) = %.1f fF, Ceff(charge to 100%%) = %.1f fF, Ctot = %.1f fF@."
    (ff c50.Driver_model.value) (ff c100.Driver_model.value)
    (ff (Rlc_moments.Pade.total_cap m.Driver_model.pade));
  let r = reference_of case in
  series "actual driver output (RLC load)"
    (clip_to r.Reference.near (Waveform.t_start r.Reference.near +. 700e-12));
  let drive_into_cap c label =
    let tb =
      Testbench.drive ~dt:dt_fig ~t_stop:1.2e-9 ~tech:case.Evaluate.tech
        ~size:case.Evaluate.size ~input_slew:case.Evaluate.input_slew
        ~load:(Testbench.cap_load c) ()
    in
    series label (clip_to tb.Testbench.output 700e-12)
  in
  drive_into_cap c100.Driver_model.value "driver output for Ceff equating charge till 100%";
  drive_into_cap c50.Driver_model.value "driver output for Ceff equating charge till 50%"

(* ---------------------------------------------------------------- fig4 *)

let fig4 () =
  header "Figure 4: two-ramp construction (breakpoint, Tr1, Tr2, plateau stretch)";
  let case = Experiments.fig3 in
  let m = model_of case Driver_model.Force_two_ramp in
  (match m.Driver_model.shape with
  | Driver_model.Two_ramp { ceff1; ceff2; tr2_new; plateau; _ } ->
      Format.printf "breakpoint f = %.3f (Rs = %.1f Ohm, Z0 = %.1f Ohm)@." m.Driver_model.f
        m.Driver_model.rs m.Driver_model.z0;
      Format.printf "Ceff1 = %.1f fF -> Tr1 = %.1f ps (%d iterations)@."
        (ff ceff1.Driver_model.value)
        (ps ceff1.Driver_model.ramp) ceff1.Driver_model.iterations;
      Format.printf "Ceff2 = %.1f fF -> Tr2 = %.1f ps (%d iterations)@."
        (ff ceff2.Driver_model.value)
        (ps ceff2.Driver_model.ramp) ceff2.Driver_model.iterations;
      Format.printf "plateau 2tf - Tr1 = %.1f ps -> Tr2_new = %.1f ps (Eq. 8)@." (ps plateau)
        (ps tr2_new)
  | _ -> assert false);
  let r = reference_of case in
  let model_wave =
    Waveform.shift_time r.Reference.t_in50 (Driver_model.output_waveform ~n:256 m)
  in
  series "actual waveform"
    (clip_to r.Reference.near (Waveform.t_start r.Reference.near +. 700e-12));
  series "proposed two-ramp model (plateau-stretched)" model_wave

(* ---------------------------------------------------------------- fig5 *)

let fig5 () =
  header "Figure 5: two-ramp driver output vs HSPICE substitute";
  List.iter
    (fun case ->
      Format.printf "@.--- %s: %a@." case.Evaluate.label Rlc_tline.Line.pp case.Evaluate.line;
      let r = reference_of case in
      let m = model_of case Driver_model.Force_two_ramp in
      let cmp = Evaluate.run ~dt:dt_fig case in
      Format.printf
        "delay: ref %.2f ps, model %.2f ps (%+.1f%%); slew: ref %.1f ps, model %.1f ps \
         (%+.1f%%)@."
        (ps cmp.Evaluate.reference.Evaluate.delay) (ps cmp.Evaluate.two_ramp.Evaluate.delay)
        (Evaluate.delay_err_pct cmp cmp.Evaluate.two_ramp)
        (ps cmp.Evaluate.reference.Evaluate.slew) (ps cmp.Evaluate.two_ramp.Evaluate.slew)
        (Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp);
      let model_wave =
        Waveform.shift_time r.Reference.t_in50 (Driver_model.output_waveform ~n:256 m)
      in
      let t0 = Waveform.t_start r.Reference.near in
      Format.printf "waveform fidelity over 500 ps: RMS %.0f mV, max %.0f mV@."
        (Waveform.rms_diff r.Reference.near model_wave ~t0 ~t1:(t0 +. 500e-12) /. 1e-3)
        (Waveform.max_diff r.Reference.near model_wave ~t0 ~t1:(t0 +. 500e-12) /. 1e-3);
      series "reference near end" (clip_to r.Reference.near (t0 +. 500e-12));
      series "two-ramp model" model_wave)
    [ Experiments.fig5a; Experiments.fig5b ]

(* ---------------------------------------------------------------- fig6 *)

let fig6 () =
  header "Figure 6 left: weak driver (25X) - a single ramp suffices";
  let case = Experiments.fig6_left in
  let r = reference_of case in
  let m = model_of case Driver_model.Auto in
  Format.printf "screen: %a@." Screen.pp m.Driver_model.screen;
  Format.printf "%a@." Driver_model.pp m;
  series "reference near end"
    (clip_to r.Reference.near (Waveform.t_start r.Reference.near +. 1000e-12));
  series "one-ramp model"
    (Waveform.shift_time r.Reference.t_in50 (Driver_model.output_waveform ~n:256 m));

  header "Figure 6 right: near and far end, model PWL replayed through the line";
  let case = Experiments.fig6_right in
  let r = reference_of case in
  let m = model_of case Driver_model.Auto in
  let far = Evaluate.run_far ~dt:dt_fig case m in
  Format.printf
    "far-end delay: ref %.2f ps, model %.2f ps; far-end slew: ref %.1f ps, model %.1f ps@."
    (ps far.Evaluate.far_reference.Evaluate.delay) (ps far.Evaluate.far_model.Evaluate.delay)
    (ps far.Evaluate.far_reference.Evaluate.slew) (ps far.Evaluate.far_model.Evaluate.slew);
  let window = Waveform.t_start r.Reference.near +. 500e-12 in
  series "reference near end" (clip_to r.Reference.near window);
  series "reference far end" (clip_to r.Reference.far window);
  series "model near end (two-ramp source)"
    (Waveform.shift_time r.Reference.t_in50 (clip_to far.Evaluate.near_model_wave 470e-12));
  series "model far end (replayed)"
    (Waveform.shift_time r.Reference.t_in50 (clip_to far.Evaluate.far_model_wave 470e-12))

(* -------------------------------------------------------------- table1 *)

let table1 ?(jobs = 1) () =
  header "Table 1: HSPICE vs one-ramp vs two-ramp (paper numbers in brackets)";
  Format.printf
    "%-18s | %-17s | %-16s | %-8s | %-16s | %-17s | %-16s | %-8s | %-16s@." "case"
    "ref delay [paper]" "2r err% [paper]" "2rF err%" "1r err% [paper]" "ref slew [paper]"
    "2r err% [paper]" "2rF err%" "1r err% [paper]";
  let acc = Array.make 6 0. in
  let n = List.length Experiments.table1 in
  (* Evaluate the rows on the pool; print (and accumulate) sequentially in
     row order afterwards so the output is identical for every [jobs]. *)
  let rows = Array.of_list Experiments.table1 in
  let cmps =
    Rlc_parallel.Pool.with_pool ~jobs (fun pool ->
        Rlc_parallel.Pool.map pool (Array.length rows) (fun i ->
            Evaluate.run ~dt:dt_sweep (Experiments.case_of_row rows.(i))))
  in
  List.iteri
    (fun idx row ->
      let cmp = cmps.(idx) in
      let d2 = Evaluate.delay_err_pct cmp cmp.Evaluate.two_ramp in
      let d2f = Evaluate.delay_err_pct cmp cmp.Evaluate.two_ramp_flat in
      let d1 = Evaluate.delay_err_pct cmp cmp.Evaluate.one_ramp in
      let s2 = Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp in
      let s2f = Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp_flat in
      let s1 = Evaluate.slew_err_pct cmp cmp.Evaluate.one_ramp in
      List.iteri (fun i v -> acc.(i) <- acc.(i) +. Float.abs v) [ d2; d2f; d1; s2; s2f; s1 ];
      Format.printf
        "%-18s | %7.2f [%6.2f] | %+6.1f [%+6.1f] | %+7.1f  | %+6.1f [%+6.1f] | %7.1f \
         [%6.1f] | %+6.1f [%+6.1f] | %+7.1f  | %+6.1f [%+6.1f]@."
        row.Experiments.row_label
        (ps cmp.Evaluate.reference.Evaluate.delay)
        row.Experiments.paper_delay_ps d2 row.Experiments.paper_delay_2r_err d2f d1
        row.Experiments.paper_delay_1r_err
        (ps cmp.Evaluate.reference.Evaluate.slew)
        row.Experiments.paper_slew_ps s2 row.Experiments.paper_slew_2r_err s2f s1
        row.Experiments.paper_slew_1r_err)
    Experiments.table1;
  let fn = float_of_int n in
  Format.printf
    "@.average |error| over the 15 rows:@.  delay: 2-ramp(Eq.8) %.1f%%, 2-ramp(flat) %.1f%%, \
     1-ramp %.1f%%@.  slew : 2-ramp(Eq.8) %.1f%%, 2-ramp(flat) %.1f%%, 1-ramp %.1f%%@."
    (acc.(0) /. fn) (acc.(1) /. fn) (acc.(2) /. fn) (acc.(3) /. fn) (acc.(4) /. fn)
    (acc.(5) /. fn);
  Format.printf
    "shape check: one-ramp delay errors large and positive, one-ramp slew errors large and \
     negative; both two-ramp variants remove most of the error (the flat-step plateau fits \
     this substrate's waveforms best).@."

(* ---------------------------------------------------------------- fig7 *)

let fig7 ?(stride = 1) ?(jobs = 1) () =
  header "Figure 7: model vs reference scatter over the full sweep";
  let cases = Experiments.sweep_cases () in
  let cases = List.filteri (fun i _ -> i mod stride = 0) cases in
  Format.printf
    "grid: %d cases (lengths 1-7 mm, widths 0.8-3.5 um, drivers 25X-125X, slews 50-200 ps)%s%s@."
    (List.length cases)
    (if stride > 1 then Printf.sprintf " [stride %d]" stride else "")
    (if jobs > 1 then Printf.sprintf " [jobs %d]" jobs else "");
  let stats =
    Experiments.run_sweep ~dt:dt_sweep ~jobs
      ~progress:(fun k n -> if k mod 50 = 0 || k = n then Printf.eprintf "  fig7: %d/%d\n%!" k n)
      cases
  in
  let row (e : Experiments.error_stats) =
    [
      float_of_int stats.Experiments.n_inductive;
      e.Experiments.avg_abs_delay_err;
      e.Experiments.avg_abs_slew_err;
      e.Experiments.delay_within_5;
      e.Experiments.delay_within_10;
      e.Experiments.slew_within_5;
      e.Experiments.slew_within_10;
    ]
  in
  Format.printf "@.%-34s %12s %12s %12s@." "statistic" "paper" "Eq.8 stretch" "flat step";
  List.iteri
    (fun i (label, paper) ->
      Format.printf "%-34s %12.1f %12.1f %12.1f@." label paper
        (List.nth (row stats.Experiments.stretch) i)
        (List.nth (row stats.Experiments.flat) i))
    Experiments.paper_fig7_stats;
  (* The paper observed inductive effects "particularly significant in long
     (>= 3 mm) and wider wires"; report that subset separately, where the
     marginal short-line cases do not dilute the statistics. *)
  let long_points =
    List.filter
      (fun p -> p.Experiments.point_case.Evaluate.line.Rlc_tline.Line.length >= 2.9e-3)
      stats.Experiments.points
  in
  let long_stretch =
    Experiments.stats_of_points
      ~delay:(fun p -> p.Experiments.delay_err_pct)
      ~slew:(fun p -> p.Experiments.slew_err_pct)
      long_points
  in
  let long_flat =
    Experiments.stats_of_points
      ~delay:(fun p -> p.Experiments.flat_delay_err_pct)
      ~slew:(fun p -> p.Experiments.flat_slew_err_pct)
      long_points
  in
  Format.printf
    "@.subset len >= 3 mm: %d cases; stretch avg |delay| %.1f%% |slew| %.1f%%; flat avg \
     |delay| %.1f%% |slew| %.1f%%@."
    (List.length long_points) long_stretch.Experiments.avg_abs_delay_err
    long_stretch.Experiments.avg_abs_slew_err long_flat.Experiments.avg_abs_delay_err
    long_flat.Experiments.avg_abs_slew_err;
  (* Sensitivity to the screen margin: Eq. 9 admits breakpoints barely above
     0.5 (Rs just under Z0), where the 50% delay anchor on ramp 1 is
     fragile; tightening Rs/Z0 concentrates on confidently inductive nets. *)
  List.iter
    (fun margin ->
      let subset =
        List.filter
          (fun p -> p.Experiments.screen.Screen.rs_over_z0 < margin)
          stats.Experiments.points
      in
      let st =
        Experiments.stats_of_points
          ~delay:(fun p -> p.Experiments.delay_err_pct)
          ~slew:(fun p -> p.Experiments.flat_slew_err_pct)
          subset
      in
      Format.printf
        "subset Rs/Z0 < %.2f: %4d cases; avg |delay err| %5.1f%%, avg |slew err (flat)| \
         %5.1f%%; delay <10%%: %.0f%%@."
        margin (List.length subset) st.Experiments.avg_abs_delay_err
        st.Experiments.avg_abs_slew_err st.Experiments.delay_within_10)
    [ 1.0; 0.85; 0.7 ];
  Format.printf
    "@.# scatter points (columns: ref_delay_ps model_delay_ps ref_slew_ps model_slew_ps  \
     label)@.";
  List.iter
    (fun p ->
      Format.printf "%8.2f %8.2f %8.1f %8.1f  %s@." (ps p.Experiments.ref_delay)
        (ps p.Experiments.model_delay) (ps p.Experiments.ref_slew) (ps p.Experiments.model_slew)
        p.Experiments.point_case.Evaluate.label)
    stats.Experiments.points

(* ------------------------------------------------------------ ablation *)

let ablation () =
  header "Ablation A: plateau treatment (Eq. 8 stretch vs explicit flat step)";
  (* The paper claims the Tr2 stretch "works better for most cases" because
     real plateaus smear out; quantify over the Table 1 rows. *)
  let acc = Hashtbl.create 4 in
  let add key v =
    let sum, n = Option.value (Hashtbl.find_opt acc key) ~default:(0., 0) in
    Hashtbl.replace acc key (Float.abs v +. sum, n + 1)
  in
  List.iter
    (fun row ->
      let case = Experiments.case_of_row row in
      let r = reference_of ~dt:dt_sweep case in
      let ref_slew = Reference.near_slew r and ref_delay = Reference.near_delay r in
      let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
      List.iter
        (fun (tag, plateau) ->
          let m =
            Driver_model.model ~mode:Driver_model.Force_two_ramp ~plateau ~cell
              ~edge:Measure.Rising ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line
              ~cl:case.Evaluate.cl ()
          in
          add (tag ^ " slew")
            (Measure.pct_error ~actual:ref_slew ~model:(Driver_model.model_slew_10_90 m));
          add (tag ^ " delay")
            (Measure.pct_error ~actual:ref_delay ~model:(Driver_model.model_delay m)))
        [ ("stretch", Driver_model.Stretch_tr2); ("flat-step", Driver_model.Flat_step) ])
    Experiments.table1;
  Hashtbl.iter
    (fun key (sum, n) -> Format.printf "  avg |%s err| = %.1f%% (%d rows)@." key (sum /. float_of_int n) n)
    acc;

  header "Ablation B: gate-resistor tail (reference [11]) on an RC-screened case";
  let case = Experiments.fig6_left in
  let r = reference_of ~dt:dt_sweep case in
  let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
  List.iter
    (fun (tag, rc_tail) ->
      let m =
        Driver_model.model ~rc_tail ~cell ~edge:Measure.Rising
          ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()
      in
      Format.printf "  %-14s delay %+6.1f%%  slew %+6.1f%%@." tag
        (Measure.pct_error ~actual:(Reference.near_delay r) ~model:(Driver_model.model_delay m))
        (Measure.pct_error ~actual:(Reference.near_slew r)
           ~model:(Driver_model.model_slew_10_90 m)))
    [ ("pure ramp", false); ("ramp + tail", true) ];

  header "Ablation C: screening on driver-output Tr1 (paper) vs input slew (Ismail et al.)";
  let cases = Experiments.sweep_cases () in
  let both =
    List.filter_map
      (fun (case : Evaluate.case) ->
        match
          let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
          let m =
            Driver_model.model ~cell ~edge:Measure.Rising ~input_slew:case.Evaluate.input_slew
              ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()
          in
          let input_based =
            Screen.evaluate_input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl
              ~rs:m.Driver_model.rs ~input_slew:case.Evaluate.input_slew ()
          in
          (case, m.Driver_model.screen.Screen.significant, input_based.Screen.significant)
        with
        | v -> Some v
        | exception _ -> None)
      cases
  in
  let count f = List.length (List.filter f both) in
  Format.printf "  cases: %d; output-based inductive: %d; input-based inductive: %d@."
    (List.length both)
    (count (fun (_, o, _) -> o))
    (count (fun (_, _, i) -> i));
  Format.printf "  disagreements: %d (output says inductive, input says RC: %d; converse: %d)@."
    (count (fun (_, o, i) -> o <> i))
    (count (fun (_, o, i) -> o && not i))
    (count (fun (_, o, i) -> i && not o));
  (* Sample a few disagreement cases and show the one-ramp slew error the
     input-based screen would have silently accepted. *)
  let disagreements =
    List.filteri (fun k _ -> k < 5)
      (List.filter_map (fun (c, o, i) -> if o && not i then Some c else None) both)
  in
  List.iter
    (fun case ->
      let cmp = Evaluate.run ~dt:dt_sweep case in
      Format.printf
        "    %-22s one-ramp slew err %+.1f%% (two-ramp %+.1f%%) - inductive despite slow input@."
        case.Evaluate.label
        (Evaluate.slew_err_pct cmp cmp.Evaluate.one_ramp)
        (Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp))
    disagreements;

  header "Ablation E: reduced-order admittance beyond the paper's q = 2 (AWE, ref [10])";
  let line7 = Experiments.fig3.Evaluate.line in
  let cl7 = Experiments.fig3.Evaluate.cl in
  let s_test = Rlc_num.Cx.make 0. (2. *. Float.pi *. 3e9) in
  let exact = Rlc_tline.Abcd.input_admittance line7 ~cl:cl7 s_test in
  List.iter
    (fun q ->
      let awe = Rlc_moments.Awe.of_line ~q line7 ~cl:cl7 in
      let err =
        Rlc_num.Cx.norm Rlc_num.Cx.(Rlc_moments.Awe.eval awe s_test -: exact)
        /. Rlc_num.Cx.norm exact
      in
      Format.printf "  q=%d: |Y_fit - Y_exact|/|Y| at 3 GHz = %.4f, %s@." q err
        (if Rlc_moments.Awe.is_stable awe then "stable"
         else "UNSTABLE (classic AWE pathology; cf. paper Sec. 1 and ref [6])"))
    [ 1; 2; 3; 4 ];

  header "Ablation D: reference-simulation numerics (ladder refinement, integrator)";
  let case = Experiments.fig1 in
  List.iter
    (fun n ->
      let r =
        Reference.simulate ~dt:dt_sweep ~n_segments:n ~tech:case.Evaluate.tech
          ~size:case.Evaluate.size ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line
          ~cl:case.Evaluate.cl ()
      in
      Format.printf "  %3d segments: near delay %.2f ps, slew %.1f ps@." n
        (ps (Reference.near_delay r))
        (ps (Reference.near_slew r)))
    [ 25; 50; 100; 200 ]

(* ---------------------------------------------------------------- perf *)

let perf () =
  header "Bechamel performance suite (model stages)";
  let open Bechamel in
  let open Toolkit in
  let line = Rlc_tline.Line.of_totals ~r:72.44 ~l:5.14e-9 ~c:1.10e-12 ~length:5e-3 in
  let cl = 20e-15 in
  let pade = Rlc_moments.Pade.of_load line ~cl in
  let tech = Rlc_devices.Tech.c018 in
  let cell = cell_exn tech ~size:75. in
  let lib_text =
    Rlc_liberty.Liberty_ast.to_string
      (Rlc_liberty.Liberty_io.library_of_cells ~name:"perf" [ cell ])
  in
  let tests =
    [
      Test.make ~name:"moments+pade-fit (distributed line)"
        (Staged.stage (fun () -> ignore (Rlc_moments.Pade.of_load line ~cl)));
      Test.make ~name:"ceff1 closed form"
        (Staged.stage (fun () -> ignore (Ceff.first_ramp pade ~f:0.6 ~tr:100e-12)));
      Test.make ~name:"ceff2 closed form"
        (Staged.stage (fun () -> ignore (Ceff.second_ramp pade ~f:0.6 ~tr1:70e-12 ~tr2:200e-12)));
      Test.make ~name:"full model flow (cached tables)"
        (Staged.stage (fun () ->
             ignore
               (Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising ~input_slew:100e-12
                  ~line ~cl ())));
      Test.make ~name:"liberty parse (1 cell)"
        (Staged.stage (fun () -> ignore (Rlc_liberty.Liberty_ast.parse lib_text)));
      Test.make ~name:"tridiagonal solve n=400"
        (Staged.stage (fun () ->
             let n = 400 in
             let t = Rlc_num.Tridiag.create n in
             for i = 0 to n - 1 do
               t.Rlc_num.Tridiag.diag.(i) <- 4.;
               if i > 0 then t.Rlc_num.Tridiag.lower.(i) <- -1.;
               if i < n - 1 then t.Rlc_num.Tridiag.upper.(i) <- -1.
             done;
             ignore (Rlc_num.Tridiag.solve t (Array.make n 1.))));
      Test.make ~name:"transient RC 1000 steps"
        (Staged.stage (fun () ->
             let nl = Rlc_circuit.Netlist.create () in
             let src = Rlc_circuit.Netlist.node nl "src" in
             Rlc_circuit.Netlist.force_voltage nl src (fun t -> if t <= 0. then 0. else 1.);
             let out = Rlc_circuit.Netlist.node nl "out" in
             Rlc_circuit.Netlist.resistor nl src out 1e3;
             Rlc_circuit.Netlist.capacitor nl out Rlc_circuit.Netlist.ground 1e-12;
             ignore (Rlc_circuit.Engine.transient ~dt:1e-12 ~t_stop:1e-9 nl)));
    ]
  in
  let grouped = Test.make_grouped ~name:"rlc_timing" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      Format.printf "@.measure: %s (ns/run)@." measure;
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) per_test [] in
      List.iter
        (fun (name, r) ->
          let est =
            match Analyze.OLS.estimates r with
            | Some [ e ] -> Printf.sprintf "%14.1f" e
            | _ -> "           n/a"
          in
          Format.printf "  %-50s %s@." name est)
        (List.sort compare rows))
    merged

(* ---------------------------------------------------------------- flow *)

(* One global bus-bit parasitic block, [cap] femtofarads per node — also
   the replacement-block generator for the ECO delta measurements. *)
let bus_bit_block ~bit ~cap =
  Printf.sprintf
    "*D_NET %s %d\n*CONN\n*P %s_drv O\n*P %s_rcv I\n*CAP\n1 %s_1 %d\n2 %s_2 %d\n3 %s_rcv \
     %d\n*RES\n1 %s_drv %s_1 24\n2 %s_1 %s_2 24\n3 %s_2 %s_rcv 24\n*INDUC\n1 %s_drv %s_1 \
     1500\n2 %s_1 %s_2 1500\n3 %s_2 %s_rcv 1500\n*END\n"
    bit (3 * cap) bit bit bit cap bit cap bit cap bit bit bit bit bit bit bit bit bit bit bit
    bit

(* Synthetic W-bit bus: W identical inductive global bits, each feeding an
   identical local net — the repeated-bus-bit shape the flow's result cache
   is built for.  [cap_of] perturbs the per-bit node capacitance (default
   uniform 200 fF); the ECO bench uses it to make every net's cache key
   distinct, so a cold load prices one real solve per net. *)
let flow_sources ?(cap_of = fun _ -> 200) ~bits () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"bench_bus\"\n*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 \
     OHM\n*L_UNIT 1 PH\n";
  let spec = Buffer.create 1024 in
  for i = 0 to bits - 1 do
    let bit = Printf.sprintf "b%d" i and out = Printf.sprintf "o%d" i in
    Buffer.add_string buf (bus_bit_block ~bit ~cap:(cap_of i));
    Buffer.add_string buf
      (Printf.sprintf
         "*D_NET %s 90\n*CONN\n*P %s_drv O\n*P %s_rcv I\n*CAP\n1 %s_1 45\n2 %s_rcv \
          45\n*RES\n1 %s_drv %s_1 60\n2 %s_1 %s_rcv 60\n*END\n"
         out out out out out out out out out);
    Buffer.add_string spec
      (Printf.sprintf
         "driver %s 75\ninput %s 100\ndriver %s 50\nedge %s %s_rcv %s\nload %s %s_rcv 5\n" bit
         bit out bit bit out out out)
  done;
  (Buffer.contents buf, Buffer.contents spec)

let flow_design ~bits =
  let spef_src, spec_src = flow_sources ~bits () in
  let spef = Result.get_ok (Rlc_spef.Spef.parse_res spef_src) in
  let spec = Result.get_ok (Rlc_flow.Spec.parse_res spec_src) in
  match Rlc_flow.Design.ingest ~spef ~spec () with Ok d -> d | Error e -> failwith e

(* All bench flow runs go through the Config record. *)
let flow_run ?(jobs = 1) ?(use_cache = true) ?cache design =
  let cfg =
    { Rlc_flow.Flow.Config.default with Rlc_flow.Flow.Config.jobs = Some jobs; use_cache; cache }
  in
  Rlc_flow.Flow.run_cfg cfg design

let flow_bench () =
  header "Flow: parallel full-design timing (cache effect, domain scaling, determinism)";
  let bits = 16 in
  let design = flow_design ~bits in
  Format.printf "%a@." Rlc_flow.Design.pp design;
  (* Pre-characterize so the wall times below measure the solves, not the
     one-off transistor-level cell characterization. *)
  List.iter
    (fun size -> ignore (cell_exn design.Rlc_flow.Design.tech ~size))
    design.Rlc_flow.Design.sizes;
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let iters (r : Rlc_flow.Flow.result) = r.Rlc_flow.Flow.stats.Rlc_flow.Flow.iterations_spent in
  let total (r : Rlc_flow.Flow.result) = r.Rlc_flow.Flow.stats.Rlc_flow.Flow.iterations_total in

  Format.printf "@.# Ceff fixed-point iterations actually run (%d-bit bus, 2 levels)@." bits;
  let no_cache, t_nc = time (fun () -> flow_run ~use_cache:false design) in
  Format.printf "  no cache        : %5d iterations  (%6.1f ms)@." (iters no_cache)
    (1e3 *. t_nc);
  let cache = Rlc_flow.Flow.create_cache () in
  let cold, t_cold = time (fun () -> flow_run ~cache design) in
  Format.printf "  cold cache      : %5d iterations  (%6.1f ms)  [%d misses, %d hits]@."
    (iters cold) (1e3 *. t_cold) cold.Rlc_flow.Flow.stats.Rlc_flow.Flow.cache_misses
    cold.Rlc_flow.Flow.stats.Rlc_flow.Flow.cache_hits;
  let warm, t_warm = time (fun () -> flow_run ~cache design) in
  Format.printf "  warm cache      : %5d iterations  (%6.1f ms)  [%d hits]@." (iters warm)
    (1e3 *. t_warm) warm.Rlc_flow.Flow.stats.Rlc_flow.Flow.cache_hits;
  Format.printf "  cache speedup   : %.1fx fewer iterations cold (%d -> %d of %d modeled)@."
    (float_of_int (iters no_cache) /. float_of_int (Int.max 1 (iters cold)))
    (iters no_cache) (iters cold) (total cold);

  let rec_jobs = Rlc_parallel.Pool.default_jobs () in
  Format.printf "@.# domain scaling (cold, no cache, wall time; %d core%s recommended)@."
    rec_jobs
    (if rec_jobs = 1 then " — expect oversubscription to hurt, not help" else "s");
  let base = ref 0. in
  List.iter
    (fun jobs ->
      let _, t = time (fun () -> flow_run ~jobs ~use_cache:false design) in
      if jobs = 1 then base := t;
      Format.printf "  jobs %2d: %7.1f ms  (speedup %.2fx)@." jobs (1e3 *. t) (!base /. t))
    (List.sort_uniq compare [ 1; 2; rec_jobs ]);

  let r1 = flow_run design in
  let rn = flow_run ~jobs:(Rlc_parallel.Pool.default_jobs ()) design in
  Format.printf "@.# determinism: JSON report byte-identical jobs 1 vs %d: %b@."
    (Rlc_parallel.Pool.default_jobs ())
    (Rlc_flow.Report.json_string r1 = Rlc_flow.Report.json_string rn)

(* -------------------------------------------------------------- engine *)

(* Perf trajectory for the factor-once transient engine.  Three comparators
   per circuit:
     fast   - current engine (assemble + factor once, per-step RHS rebuild)
     naive  - current engine forced to reassemble and refactor every step
     pre_pr - the seed engine and banded solver, vendored verbatim in
              bench/pre_pr_engine.ml, i.e. the true pre-PR baseline
   plus the LTE-adaptive stepper against fixed-step on the same circuits and
   on the subsampled sweep, the per-step Banded stage costs, and the
   fig7-fast sweep wall time at jobs 1 vs N (clamped to the core count).
   `--json PATH` writes the numbers as BENCH_engine.json. *)

module Netlist = Rlc_circuit.Netlist
module Engine = Rlc_circuit.Engine

(* 25 ps linear rise into the ladders.  A finite edge (like every driver
   waveform in the repo) rather than an ideal step: a zero-rise-time step
   into a low-loss LC ladder keeps a discontinuous wavefront bouncing
   end-to-end, which pins any error-controlled stepper at dt_min and
   benchmarks a workload the timer never sees. *)
let ramp_rise = 25e-12
let ramp_source t = if t <= 0. then 0. else if t >= ramp_rise then 1. else t /. ramp_rise

let rc_1r1c () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src ramp_source;
  let out = Netlist.node nl "out" in
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  (nl, out)

let rc_ladder ~n () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src ramp_source;
  let prev = ref src in
  for i = 1 to n do
    let nd = Netlist.node nl (Printf.sprintf "n%d" i) in
    Netlist.resistor nl !prev nd 10.;
    Netlist.capacitor nl nd Netlist.ground 10e-15;
    prev := nd
  done;
  (nl, !prev)

let rlc_ladder ~n () =
  (* 5 mm-class global line split into n series R-L segments with shunt C. *)
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src ramp_source;
  let fn = float_of_int n in
  let prev = ref src in
  for i = 1 to n do
    let mid = Netlist.node nl (Printf.sprintf "m%d" i) in
    let nd = Netlist.node nl (Printf.sprintf "n%d" i) in
    Netlist.resistor nl !prev mid (72.44 /. fn);
    Netlist.inductor nl mid nd (5.14e-9 /. fn);
    Netlist.capacitor nl nd Netlist.ground (1.10e-12 /. fn);
    prev := nd
  done;
  (nl, !prev)

let time_per_run ?(target = 0.3) f =
  (* Batched timing: one warm-up call, then a calibration call sizes batches
     of >= ~20 ms so the clock reads never dominate. *)
  f ();
  let t1 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t1 in
  let batch = Int.max 1 (int_of_float (0.02 /. Float.max 1e-9 once)) in
  let reps = ref 0 and elapsed = ref 0. in
  let t0 = Unix.gettimeofday () in
  while !elapsed < target do
    for _ = 1 to batch do
      f ()
    done;
    reps := !reps + batch;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !reps

let best_of ?(n = 3) measure =
  (* Minimum over n independent measurements: on shared/virtualized hosts
     the min is the least-interfered estimate. *)
  let best = ref infinity in
  for _ = 1 to n do
    best := Float.min !best (measure ())
  done;
  !best

let max_dv wa wb =
  let va = Waveform.values wa and vb = Waveform.values wb in
  let m = ref 0. in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. vb.(i)))) va;
  !m

type engine_row = {
  er_name : string;
  er_steps : int;
  er_fast_ns : float;
  er_naive_ns : float;
  er_pre_pr_ns : float;
  er_dv_naive : float;
  er_dv_pre_pr : float;
  (* Stage metrics from one instrumented run (Rlc_obs sink): where a single
     transient spends its time, and how much Newton work it does. *)
  er_compile_s : float;
  er_factor_s : float;
  er_step_loop_s : float;
  er_newton_iters : int;
}

type adaptive_row = {
  ar_name : string;
  ar_fixed_steps : int;
  ar_adaptive_steps : int;
  ar_fixed_ns : float;
  ar_adaptive_ns : float;
  ar_refactors : int;
  ar_rejected : int;
  ar_max_dv : float;
  ar_delay_delta_ps : float;
  ar_slew_delta_ps : float;
}

let engine_bench ?(jobs = 1) ?(smoke = false) ?json () =
  header "Engine: factor-once transient vs per-step reassembly vs pre-PR seed engine";
  let target = if smoke then 0.05 else 0.3 in
  (* Five rounds per comparator in full mode: run-to-run variance on shared
     hosts is large and the min-estimator needs the extra draws to settle. *)
  let rounds = if smoke then 1 else 5 in
  let circuits =
    [
      ("rc_1r1c_1000steps", rc_1r1c (), 1e-12, 1e-9);
      ("rc_ladder100_1000steps", rc_ladder ~n:100 (), 1e-12, 1e-9);
      ("rlc_ladder100_2000steps", rlc_ladder ~n:100 (), 0.5e-12, 1e-9);
    ]
  in
  Format.printf "@.%-26s %6s %12s %12s %12s %8s %8s %11s@." "circuit" "steps" "fast ns/run"
    "naive ns/run" "prePR ns/run" "vs naive" "vs prePR" "steps/s";
  let rows =
    List.map
      (fun (name, (nl, probe), dt, t_stop) ->
        let fast = Engine.transient ~dt ~t_stop nl in
        (* One instrumented run per circuit: the Rlc_obs spans split the wall
           time into compile / factor / step-loop, and the counters give the
           Newton iteration budget.  Timed runs below stay uninstrumented
           (Obs.null) so the ns/run numbers are untouched. *)
        let stage_obs = Rlc_obs.Obs.create () in
        ignore (Engine.transient ~obs:stage_obs ~dt ~t_stop nl);
        let stage_m = Rlc_obs.Obs.snapshot stage_obs in
        let span name = snd (Rlc_obs.Obs.span_total stage_m name) in
        let compile_s = span "engine.compile" in
        let factor_s = span "engine.factor" in
        let step_loop_s = span "engine.step_loop" in
        let newton_iters = Rlc_obs.Obs.counter stage_m "engine.newton_iters" in
        let naive = Engine.transient ~reassemble_per_step:true ~dt ~t_stop nl in
        let pre = Pre_pr_engine.transient ~dt ~t_stop nl in
        let dv_naive = max_dv (Engine.voltage fast probe) (Engine.voltage naive probe) in
        let dv_pre = max_dv (Engine.voltage fast probe) (Pre_pr_engine.voltage pre probe) in
        let t_fast =
          best_of ~n:rounds (fun () ->
              time_per_run ~target (fun () -> ignore (Engine.transient ~dt ~t_stop nl)))
        in
        let t_naive =
          best_of ~n:rounds (fun () ->
              time_per_run ~target (fun () ->
                  ignore (Engine.transient ~reassemble_per_step:true ~dt ~t_stop nl)))
        in
        let t_pre =
          best_of ~n:rounds (fun () ->
              time_per_run ~target (fun () -> ignore (Pre_pr_engine.transient ~dt ~t_stop nl)))
        in
        let steps = Engine.steps fast in
        Format.printf "%-26s %6d %12.0f %12.0f %12.0f %7.2fx %7.2fx %11.0f@." name steps
          (1e9 *. t_fast) (1e9 *. t_naive) (1e9 *. t_pre) (t_naive /. t_fast) (t_pre /. t_fast)
          (float_of_int steps /. t_fast);
        Format.printf "%-26s max |dv| vs naive %.3e V, vs prePR %.3e V@." "" dv_naive dv_pre;
        Format.printf
          "%-26s stages: compile %.0f us, factor %.0f us, step loop %.0f us (%d Newton iters)@."
          "" (1e6 *. compile_s) (1e6 *. factor_s) (1e6 *. step_loop_s) newton_iters;
        {
          er_name = name;
          er_steps = steps;
          er_fast_ns = 1e9 *. t_fast;
          er_naive_ns = 1e9 *. t_naive;
          er_pre_pr_ns = 1e9 *. t_pre;
          er_dv_naive = dv_naive;
          er_dv_pre_pr = dv_pre;
          er_compile_s = compile_s;
          er_factor_s = factor_s;
          er_step_loop_s = step_loop_s;
          er_newton_iters = newton_iters;
        })
      circuits
  in

  (* Adaptive vs fixed on the same circuits.  dt_min is pinned to the fixed
     dt, so the comparison is pure step economy: the LTE controller may only
     coarsen, never out-resolve the fixed grid.  Accuracy is scored where
     timing is measured — 50 % delay and 10–90 slew at the probe — plus the
     max |dv| over a dense resample of the common window. *)
  let ltol_default = (Engine.default_adaptive ()).Engine.ltol in
  Format.printf "@.adaptive stepping (ltol %g, dt_min = fixed dt):@." ltol_default;
  Format.printf "%-26s %7s %7s %7s %9s %8s %7s %7s %10s %10s@." "circuit" "f-steps" "a-steps"
    "ratio" "speedup" "refact" "reject" "|dv|mV" "d50 ps" "slew ps";
  let adaptive_rows =
    List.map2
      (fun (name, (nl, probe), dt, t_stop) (er : engine_row) ->
        let ap = Engine.default_adaptive ~dt_min:dt () in
        let fixed = Engine.transient ~dt ~t_stop nl in
        let ad = Engine.transient ~adaptive:ap ~dt ~t_stop nl in
        let wf = Engine.voltage fixed probe and wa = Engine.voltage ad probe in
        let max_dv = Waveform.max_diff ~n:2001 wf wa ~t0:0. ~t1:t_stop in
        let t50 w = Measure.t_frac_exn w ~vdd:1. ~edge:Measure.Rising ~frac:0.5 in
        let slew w =
          match Measure.slew_10_90 w ~vdd:1. ~edge:Measure.Rising with
          | Some s -> s
          | None -> Float.nan
        in
        let delay_delta = Float.abs (t50 wa -. t50 wf) in
        let slew_delta = Float.abs (slew wa -. slew wf) in
        let t_ad =
          best_of ~n:rounds (fun () ->
              time_per_run ~target (fun () ->
                  ignore (Engine.transient ~adaptive:ap ~dt ~t_stop nl)))
        in
        let row =
          {
            ar_name = name;
            ar_fixed_steps = Engine.steps fixed;
            ar_adaptive_steps = Engine.steps ad;
            ar_fixed_ns = er.er_fast_ns;
            ar_adaptive_ns = 1e9 *. t_ad;
            ar_refactors = Engine.refactors ad;
            ar_rejected = Engine.steps_rejected ad;
            ar_max_dv = max_dv;
            ar_delay_delta_ps = 1e12 *. delay_delta;
            ar_slew_delta_ps = 1e12 *. slew_delta;
          }
        in
        (* "-" when the waveform never completes the 10-90 swing inside the
           window (the slow RC circuits at 1 ns). *)
        let opt v = if Float.is_finite v then Printf.sprintf "%.3f" v else "-" in
        Format.printf "%-26s %7d %7d %6.1fx %8.2fx %8d %7d %7.2f %10s %10s@." name
          row.ar_fixed_steps row.ar_adaptive_steps
          (float_of_int row.ar_fixed_steps /. float_of_int row.ar_adaptive_steps)
          (row.ar_fixed_ns /. row.ar_adaptive_ns)
          row.ar_refactors row.ar_rejected (1e3 *. max_dv) (opt row.ar_delay_delta_ps)
          (opt row.ar_slew_delta_ps);
        row)
      circuits rows
  in

  (* Per-step linear-stage costs in isolation.  The new engine pays blit +
     solve_factored per step; the seed engine re-factored from scratch (the
     copy below stands in for its per-step re-stamp). *)
  let bn = 200 and bbw = 2 in
  let master = Rlc_num.Banded.create ~n:bn ~bw:bbw in
  let master_pre = Pre_pr_banded.create ~n:bn ~bw:bbw in
  for i = 0 to bn - 1 do
    Rlc_num.Banded.set master i i 4.;
    Pre_pr_banded.set master_pre i i 4.;
    if i > 0 then (
      Rlc_num.Banded.set master i (i - 1) (-1.);
      Pre_pr_banded.set master_pre i (i - 1) (-1.));
    if i < bn - 1 then (
      Rlc_num.Banded.set master i (i + 1) (-1.);
      Pre_pr_banded.set master_pre i (i + 1) (-1.))
  done;
  let rhs = Array.make bn 1. in
  let scratch = Rlc_num.Banded.copy master in
  let b = Array.make bn 0. in
  let t_factor =
    time_per_run ~target (fun () ->
        Rlc_num.Banded.blit ~src:master ~dst:scratch;
        Rlc_num.Banded.factor scratch)
  in
  let factored = Rlc_num.Banded.copy master in
  Rlc_num.Banded.factor factored;
  let t_solve =
    time_per_run ~target (fun () ->
        Array.blit rhs 0 b 0 bn;
        Rlc_num.Banded.solve_factored factored b)
  in
  let t_pre_solve =
    time_per_run ~target (fun () ->
        Array.blit rhs 0 b 0 bn;
        Pre_pr_banded.solve_in_place (Pre_pr_banded.copy master_pre) b)
  in
  Format.printf
    "@.banded stages (n=%d, bw=%d): factor %.0f ns; per-step solve_factored %.0f ns; pre-PR \
     per-step copy+solve_in_place %.0f ns (%.1fx)@."
    bn bbw (1e9 *. t_factor) (1e9 *. t_solve) (1e9 *. t_pre_solve) (t_pre_solve /. t_solve);

  (* Sweep scaling on the fig7-fast grid.  Pre-warm the (mutex-shared) cell
     characterization memo so both wall times measure the solves. *)
  let stride = if smoke then 70 else 7 in
  let cases = List.filteri (fun i _ -> i mod stride = 0) (Experiments.sweep_cases ()) in
  List.iter
    (fun (c : Evaluate.case) -> ignore (cell_exn c.Evaluate.tech ~size:c.Evaluate.size))
    cases;
  let rec_domains = Rlc_parallel.Pool.default_jobs () in
  (* Requested fan-out clamped to the core count (the old default of 4
     oversubscribed 1-core containers and recorded jobs-4 slower than
     jobs-1 in BENCH_engine.json). *)
  let jn_requested = if jobs > 1 then jobs else 4 in
  let jn = Experiments.effective_jobs jn_requested in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  Format.printf "@.sweep scaling: %d cases (stride %d), jobs 1 vs %d (%d core%s available)%s@."
    (List.length cases) stride jn rec_domains
    (if rec_domains = 1 then "" else "s")
    (if jn < jn_requested then Printf.sprintf " - requested %d, clamped" jn_requested else "");
  let s1, w1 = wall (fun () -> Experiments.run_sweep ~dt:dt_sweep ~jobs:1 cases) in
  let sn, wn = wall (fun () -> Experiments.run_sweep ~dt:dt_sweep ~jobs:jn cases) in
  let stats_identical =
    s1.Experiments.n_inductive = sn.Experiments.n_inductive
    && s1.Experiments.stretch = sn.Experiments.stretch
    && s1.Experiments.flat = sn.Experiments.flat
  in
  Format.printf
    "sweep (%d inductive): jobs 1 %.2f s, jobs %d %.2f s -> %.2fx; statistics identical: %b@."
    s1.Experiments.n_inductive w1 jn wn (w1 /. wn) stats_identical;

  (* The same sweep under adaptive stepping: total engine steps (via obs
     counters) and wall clock at jobs 1, plus the worst per-point deviation
     of the reference delay/slew — the acceptance bar is < 1 %. *)
  let sweep_steps adaptive =
    let obs = Rlc_obs.Obs.create () in
    let s, w = wall (fun () -> Experiments.run_sweep ~obs ~dt:dt_sweep ?adaptive ~jobs:1 cases) in
    (s, w, Rlc_obs.Obs.counter (Rlc_obs.Obs.snapshot obs) "engine.steps")
  in
  let sf, wf_sweep, steps_fixed = sweep_steps None in
  let sa, wa_sweep, steps_adaptive =
    sweep_steps (Some (Engine.default_adaptive ~dt_min:dt_sweep ()))
  in
  let max_ref_dev =
    List.fold_left2
      (fun acc (pf : Experiments.sweep_point) (pa : Experiments.sweep_point) ->
        let rel a b = Float.abs (a -. b) /. Float.abs b in
        Float.max acc
          (Float.max
             (rel pa.Experiments.ref_delay pf.Experiments.ref_delay)
             (rel pa.Experiments.ref_slew pf.Experiments.ref_slew)))
      0. sf.Experiments.points sa.Experiments.points
  in
  Format.printf
    "sweep adaptive (ltol %g): %d -> %d engine steps (%.1fx fewer), wall %.2f s -> %.2f s \
     (%.2fx); max reference delay/slew deviation %.3f%%@."
    ltol_default steps_fixed steps_adaptive
    (float_of_int steps_fixed /. float_of_int steps_adaptive)
    wf_sweep wa_sweep (wf_sweep /. wa_sweep) (100. *. max_ref_dev);

  match json with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 4096 in
      let fl v =
        (* %.17g round-trips; trim the common case to something readable. *)
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Printf.bprintf buf "{\n  \"schema\": \"rlc-bench-engine/1\",\n";
      Printf.bprintf buf "  \"smoke\": %b,\n" smoke;
      Printf.bprintf buf "  \"circuits\": [\n";
      List.iteri
        (fun i r ->
          Printf.bprintf buf
            "    {\"name\": \"%s\", \"steps\": %d, \"fast_ns_per_run\": %s, \
             \"naive_ns_per_run\": %s, \"pre_pr_ns_per_run\": %s, \"speedup_vs_naive\": %s, \
             \"speedup_vs_pre_pr\": %s, \"steps_per_sec_fast\": %s, \"max_dv_vs_naive_V\": %s, \
             \"max_dv_vs_pre_pr_V\": %s, \"stages\": {\"compile_us\": %s, \"factor_us\": %s, \
             \"step_loop_us\": %s, \"newton_iters\": %d}}%s\n"
            r.er_name r.er_steps (fl r.er_fast_ns) (fl r.er_naive_ns) (fl r.er_pre_pr_ns)
            (fl (r.er_naive_ns /. r.er_fast_ns))
            (fl (r.er_pre_pr_ns /. r.er_fast_ns))
            (fl (float_of_int r.er_steps /. (r.er_fast_ns *. 1e-9)))
            (fl r.er_dv_naive) (fl r.er_dv_pre_pr)
            (fl (1e6 *. r.er_compile_s))
            (fl (1e6 *. r.er_factor_s))
            (fl (1e6 *. r.er_step_loop_s))
            r.er_newton_iters
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.bprintf buf "  ],\n";
      Printf.bprintf buf "  \"adaptive\": {\n    \"ltol\": %s,\n    \"circuits\": [\n"
        (fl ltol_default);
      List.iteri
        (fun i (r : adaptive_row) ->
          Printf.bprintf buf
            "      {\"name\": \"%s\", \"fixed_steps\": %d, \"adaptive_steps\": %d, \
             \"step_ratio\": %s, \"fixed_ns_per_run\": %s, \"adaptive_ns_per_run\": %s, \
             \"speedup\": %s, \"refactors\": %d, \"steps_rejected\": %d, \"max_dv_V\": %s, \
             \"delay_delta_ps\": %s, \"slew_delta_ps\": %s}%s\n"
            r.ar_name r.ar_fixed_steps r.ar_adaptive_steps
            (fl (float_of_int r.ar_fixed_steps /. float_of_int r.ar_adaptive_steps))
            (fl r.ar_fixed_ns) (fl r.ar_adaptive_ns)
            (fl (r.ar_fixed_ns /. r.ar_adaptive_ns))
            r.ar_refactors r.ar_rejected (fl r.ar_max_dv)
            (if Float.is_finite r.ar_delay_delta_ps then fl r.ar_delay_delta_ps else "null")
            (if Float.is_finite r.ar_slew_delta_ps then fl r.ar_slew_delta_ps else "null")
            (if i = List.length adaptive_rows - 1 then "" else ","))
        adaptive_rows;
      Printf.bprintf buf "    ],\n";
      Printf.bprintf buf
        "    \"sweep\": {\"engine_steps_fixed\": %d, \"engine_steps_adaptive\": %d, \
         \"step_ratio\": %s, \"wall_s_fixed\": %s, \"wall_s_adaptive\": %s, \"speedup\": %s, \
         \"max_ref_deviation_pct\": %s}\n  },\n"
        steps_fixed steps_adaptive
        (fl (float_of_int steps_fixed /. float_of_int steps_adaptive))
        (fl wf_sweep) (fl wa_sweep)
        (fl (wf_sweep /. wa_sweep))
        (fl (100. *. max_ref_dev));
      Printf.bprintf buf
        "  \"banded_stages\": {\"n\": %d, \"bw\": %d, \"factor_ns\": %s, \"solve_factored_ns\": \
         %s, \"pre_pr_copy_solve_ns\": %s},\n"
        bn bbw (fl (1e9 *. t_factor)) (fl (1e9 *. t_solve)) (fl (1e9 *. t_pre_solve));
      Printf.bprintf buf
        "  \"sweep\": {\"cases\": %d, \"inductive\": %d, \"jobs\": %d, \"jobs_requested\": %d, \
         \"recommended_domains\": %d, \"wall_s_jobs1\": %s, \"wall_s_jobsN\": %s, \"speedup\": \
         %s, \"stats_identical\": %b}\n"
        (List.length cases) s1.Experiments.n_inductive jn jn_requested rec_domains (fl w1)
        (fl wn)
        (fl (w1 /. wn)) stats_identical;
      Printf.bprintf buf "}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path

(* -------------------------------------------------------------- service *)

(* What the resident daemon buys per request: one Session/Server pair driven
   straight through Server.handle_line (no transport), so the numbers are
   the protocol + dispatch + solve cost.  The first flow request pays cell
   characterization and every Ceff solve; the session keeps both, so warm
   requests should be all cache hits.  `--json` writes BENCH_service.json
   (or the given path when the engine group is not also writing there). *)

module Sjson = Rlc_service.Json

let service_request fields =
  Sjson.to_string (Sjson.Obj (("schema", Sjson.Str Rlc_service.Protocol.schema) :: fields))

let service_request_v2 fields =
  Sjson.to_string (Sjson.Obj (("schema", Sjson.Str Rlc_service.Protocol.schema_v2) :: fields))

(* Concurrent serving: the real serve_unix transport under N simultaneous
   clients.  The listener and the worker domains run for real; clients keep
   one request in flight each, so sustained req/s and the pooled latency
   percentiles measure admission + dispatch + solve under contention.  On
   the benched 1-core box recommended_domain_count is 1, workers stays 1,
   and the numbers degrade gracefully to a serialization measurement —
   byte-identity of every served report is asserted either way. *)

type service_telemetry = {
  st_span_s : float;
  st_samples : int;
  st_rps : float;
  st_p50_ms : float;
  st_p95_ms : float;
  st_p99_ms : float;
  st_hit_ratio : float;
  st_prom_valid : bool;
}

type service_conc = {
  sc_clients : int;
  sc_requests_per_client : int;
  sc_workers : int;
  sc_recommended : int;
  sc_oversubscribed : bool;
  sc_baseline_rps : float;
  sc_rps : float;
  sc_p50_ms : float;
  sc_p95_ms : float;
  sc_p99_ms : float;
  sc_identical : bool;
  sc_telemetry : service_telemetry option;
}

let string_contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  nl = 0 || go 0

(* Digest of the daemon's own [metrics] response: the rolling-window rates
   and quantiles the server computed about the run we just drove, plus a
   sanity bit on the Prometheus exposition. *)
let telemetry_of_response resp =
  match Sjson.parse resp with
  | Error _ -> None
  | Ok j -> (
      let num obj name =
        match Sjson.member name obj with
        | Some (Sjson.Float f) -> f
        | Some (Sjson.Int n) -> float_of_int n
        | _ -> Float.nan
      in
      match Sjson.member "window" j with
      | Some w ->
          let prom_valid =
            match Sjson.member "prometheus" j with
            | Some (Sjson.Str s) ->
                String.length s >= 6
                && String.equal (String.sub s 0 6) "# HELP"
                && string_contains s "service_requests_total"
            | _ -> false
          in
          Some
            {
              st_span_s = num w "span_s";
              st_samples =
                (match Sjson.member "samples" w with Some (Sjson.Int n) -> n | _ -> 0);
              st_rps = num w "requests_per_s";
              st_p50_ms = num w "p50_ms";
              st_p95_ms = num w "p95_ms";
              st_p99_ms = num w "p99_ms";
              st_hit_ratio = num w "cache_hit_ratio";
              st_prom_valid = prom_valid;
            }
      | None -> None)

let service_concurrent_measure ?(smoke = false) ~flow_req () =
  let recommended = Domain.recommended_domain_count () in
  let workers = Int.max 1 (Int.min 4 recommended) in
  (* The concurrent measure owns its session — obs-enabled, so the serve
     loop's ticker feeds the telemetry window — which also keeps the serial
     cold/warm/ping numbers above on an obs-off session.  Spans stay off,
     like a daemon run without --trace: the window only needs counters and
     histograms, and span buffers would grow with the request count. *)
  let session =
    Rlc_service.Session.create
      ~config:
        { Rlc_service.Session.Config.default with obs = Rlc_obs.Obs.create ~spans:false () }
      ()
  in
  Fun.protect ~finally:(fun () -> Rlc_service.Session.close session) @@ fun () ->
  let server =
    Rlc_service.Server.create ~timeout_s:0. ~workers ~queue_capacity:64
      ~tick_period_s:0.05 session
  in
  (* Warm through the transport-free path so every measured request is all
     cache hits, and remember the report every client must reproduce. *)
  let warm_resp = fst (Rlc_service.Server.handle_line server flow_req) in
  let expected =
    match Sjson.parse warm_resp with
    | Ok j -> (
        match Sjson.member "report" j with
        | Some (Sjson.Str s) -> s
        | _ -> failwith ("warm flow request failed: " ^ warm_resp))
    | Error _ -> failwith "warm flow response unparseable"
  in
  let path = Filename.temp_file "rlc_bench_service" ".sock" in
  let listener = Domain.spawn (fun () -> Rlc_service.Server.serve_unix server ~path) in
  let connect () =
    (* The serve loop binds after the domain spawns; retry until it has. *)
    let rec go tries =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.02;
        go (tries - 1)
    in
    go 250
  in
  let run_client n =
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    let lat = Array.make n 0. in
    let ok = ref true in
    for i = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      output_string oc flow_req;
      output_char oc '\n';
      flush oc;
      let resp = input_line ic in
      lat.(i) <- Unix.gettimeofday () -. t0;
      match Sjson.parse resp with
      | Ok j -> (
          match Sjson.member "report" j with
          | Some (Sjson.Str s) -> if not (String.equal s expected) then ok := false
          | _ -> ok := false)
      | Error _ -> ok := false
    done;
    close_out_noerr oc;
    close_in_noerr ic;
    (lat, !ok)
  in
  let requests = if smoke then 4 else 16 in
  let clients = if smoke then 2 else 4 in
  let t0 = Unix.gettimeofday () in
  let _, base_ok = run_client requests in
  let baseline_rps = float_of_int requests /. (Unix.gettimeofday () -. t0) in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map Domain.join
      (List.init clients (fun _ -> Domain.spawn (fun () -> run_client requests)))
  in
  let total_s = Unix.gettimeofday () -. t0 in
  (* Let at least two more ticks land so the window cleanly spans the run,
     then scrape the daemon's own metrics over the socket it just served. *)
  Unix.sleepf 0.12;
  let telemetry =
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    output_string oc (service_request [ ("kind", Sjson.Str "metrics") ]);
    output_char oc '\n';
    flush oc;
    let resp = input_line ic in
    close_out_noerr oc;
    close_in_noerr ic;
    telemetry_of_response resp
  in
  Rlc_service.Server.stop server;
  Domain.join listener;
  let identical = base_ok && List.for_all snd results in
  if not identical then failwith "concurrent serving: reports diverged from the warm report";
  (* Client-side latency percentiles through the same log2 histogram +
     quantile machinery the daemon's telemetry uses. *)
  let sink = Rlc_obs.Obs.create () in
  List.iter
    (fun (lat, _) -> Array.iter (Rlc_obs.Obs.observe sink "bench.latency_s") lat)
    results;
  let summary =
    match
      List.assoc_opt "bench.latency_s" (Rlc_obs.Obs.snapshot sink).Rlc_obs.Obs.m_stats
    with
    | Some s -> s
    | None -> failwith "concurrent serving: latency histogram missing"
  in
  let pct p = Rlc_obs.Obs.Histogram.quantile summary p in
  {
    sc_clients = clients;
    sc_requests_per_client = requests;
    sc_workers = workers;
    sc_recommended = recommended;
    sc_oversubscribed = workers > recommended || clients > recommended;
    sc_baseline_rps = baseline_rps;
    sc_rps = float_of_int (clients * requests) /. total_s;
    sc_p50_ms = 1e3 *. pct 0.5;
    sc_p95_ms = 1e3 *. pct 0.95;
    sc_p99_ms = 1e3 *. pct 0.99;
    sc_identical = identical;
    sc_telemetry = telemetry;
  }

let print_service_concurrent sc =
  Format.printf
    "@.concurrent socket serving (%d clients x %d requests, %d worker%s, %d recommended \
     domain%s):@."
    sc.sc_clients sc.sc_requests_per_client sc.sc_workers
    (if sc.sc_workers = 1 then "" else "s")
    sc.sc_recommended
    (if sc.sc_recommended = 1 then "" else "s");
  Format.printf "  sustained : %8.0f requests/s  (1 client: %.0f/s, %.2fx)@." sc.sc_rps
    sc.sc_baseline_rps
    (sc.sc_rps /. Float.max 1e-9 sc.sc_baseline_rps);
  Format.printf "  latency   : p50 %.2f ms   p95 %.2f ms   p99 %.2f ms@." sc.sc_p50_ms
    sc.sc_p95_ms sc.sc_p99_ms;
  (if sc.sc_oversubscribed then
     Format.printf
       "  note      : oversubscribed (more workers or clients than cores) — \
        throughput numbers measure scheduling, not parallelism@.");
  (match sc.sc_telemetry with
  | Some t ->
      Format.printf
        "  telemetry : daemon window %.2fs/%d samples, %.0f req/s, server-side p50 %.2f \
         ms, hit ratio %.2f, prometheus %s@."
        t.st_span_s t.st_samples t.st_rps t.st_p50_ms t.st_hit_ratio
        (if t.st_prom_valid then "ok" else "INVALID")
  | None -> Format.printf "  telemetry : metrics scrape failed@.");
  Format.printf "  reports   : byte-identical across all clients@."

(* Incremental (ECO) serving: design_load once, then 1-net flow_delta
   requests against the resident handle (rlc-service/2).  The bus is
   generated with per-bit capacitances so every net's cache key is
   distinct — a cold load prices one real Ceff solve per net, and a 1-net
   delta prices exactly the dirty cone (the edited bit plus its fan-out
   local net).  Each delta bumps b0 to a fresh capacitance, so every
   measured delta re-solves its cone for real instead of hitting the
   session cache.  Byte-identity is asserted two ways: the v2 design_load
   report against a v1 flow of the same sources, and the final delta
   report against a v1 flow of the cumulatively edited sources. *)

type service_eco = {
  se_bits : int;
  se_nets : int;
  se_load_ms : float;  (* cold design_load wall, fresh session *)
  se_delta_ms : float;  (* mean 1-net flow_delta wall *)
  se_speedup : float;  (* load_ms / delta_ms *)
  se_deltas : int;
  se_retimed : int;  (* per delta *)
  se_reused : int;
  se_rps : float;  (* sustained flow_delta requests/s *)
  se_p50_ms : float;
  se_p95_ms : float;
  se_identical : bool;
}

let service_eco_measure ?(smoke = false) () =
  let bits = 16 in
  let cap_of i = 200 + i in
  let spef_src, spec_src = flow_sources ~cap_of ~bits () in
  let session = Rlc_service.Session.create () in
  Fun.protect ~finally:(fun () -> Rlc_service.Session.close session) @@ fun () ->
  let server = Rlc_service.Server.create ~timeout_s:0. session in
  let handle_line req = fst (Rlc_service.Server.handle_line server req) in
  let str_field resp name =
    match Sjson.parse resp with
    | Ok j -> ( match Sjson.member name j with Some (Sjson.Str s) -> Some s | _ -> None)
    | Error _ -> None
  in
  let int_field resp name =
    match Sjson.parse resp with
    | Ok j -> ( match Sjson.member name j with Some (Sjson.Int n) -> n | _ -> -1)
    | Error _ -> -1
  in
  let flow_report ~cap0 =
    let spef_src, spec_src =
      flow_sources ~cap_of:(fun i -> if i = 0 then cap0 else cap_of i) ~bits ()
    in
    let resp =
      handle_line
        (service_request
           [
             ("kind", Sjson.Str "flow");
             ("spef", Sjson.Str spef_src);
             ("spec", Sjson.Str spec_src);
           ])
    in
    match str_field resp "report" with
    | Some r -> r
    | None -> failwith ("eco: one-shot flow failed: " ^ resp)
  in
  let t0 = Unix.gettimeofday () in
  let load_resp =
    handle_line
      (service_request_v2
         [
           ("kind", Sjson.Str "design_load");
           ("spef", Sjson.Str spef_src);
           ("spec", Sjson.Str spec_src);
         ])
  in
  let load_s = Unix.gettimeofday () -. t0 in
  let handle =
    match str_field load_resp "handle" with
    | Some h -> h
    | None -> failwith ("eco: design_load failed: " ^ load_resp)
  in
  let deltas = if smoke then 2 else 6 in
  let sink = Rlc_obs.Obs.create () in
  let retimed = ref 0 and reused = ref 0 and total_s = ref 0. in
  let last_cap = ref (cap_of 0) in
  let last_report = ref "" in
  for k = 1 to deltas do
    let cap = 500 + (10 * k) in
    last_cap := cap;
    let req =
      service_request_v2
        [
          ("kind", Sjson.Str "flow_delta");
          ("handle", Sjson.Str handle);
          ("nets", Sjson.Obj [ ("b0", Sjson.Str (bus_bit_block ~bit:"b0" ~cap)) ]);
        ]
    in
    let t0 = Unix.gettimeofday () in
    let resp = handle_line req in
    let dt = Unix.gettimeofday () -. t0 in
    total_s := !total_s +. dt;
    Rlc_obs.Obs.observe sink "bench.delta_s" dt;
    (match str_field resp "report" with
    | Some r -> last_report := r
    | None -> failwith ("eco: flow_delta failed: " ^ resp));
    retimed := int_field resp "retimed_nets";
    reused := int_field resp "reused_nets"
  done;
  (* Byte-identity, both schema generations against the one-shot v1 flow:
     the cold-load report against the pristine sources, the last delta's
     report against the cumulatively edited sources. *)
  let identical =
    (match str_field load_resp "report" with
    | Some r -> String.equal r (flow_report ~cap0:(cap_of 0))
    | None -> false)
    && String.equal !last_report (flow_report ~cap0:!last_cap)
  in
  if not identical then failwith "eco: delta reports diverged from cold one-shot flows";
  let summary =
    match
      List.assoc_opt "bench.delta_s" (Rlc_obs.Obs.snapshot sink).Rlc_obs.Obs.m_stats
    with
    | Some s -> s
    | None -> failwith "eco: delta latency histogram missing"
  in
  let pct p = Rlc_obs.Obs.Histogram.quantile summary p in
  let delta_s = !total_s /. float_of_int deltas in
  {
    se_bits = bits;
    se_nets = 2 * bits;
    se_load_ms = 1e3 *. load_s;
    se_delta_ms = 1e3 *. delta_s;
    se_speedup = load_s /. Float.max 1e-9 delta_s;
    se_deltas = deltas;
    se_retimed = !retimed;
    se_reused = !reused;
    se_rps = float_of_int deltas /. Float.max 1e-9 !total_s;
    se_p50_ms = 1e3 *. pct 0.5;
    se_p95_ms = 1e3 *. pct 0.95;
    se_identical = identical;
  }

let print_service_eco se =
  Format.printf "@.incremental (ECO) serving, rlc-service/2 (%d nets, distinct keys):@."
    se.se_nets;
  Format.printf "  design_load : %8.1f ms  (cold, fresh session)@." se.se_load_ms;
  Format.printf
    "  flow_delta  : %8.1f ms/request  (1-net edit: %d retimed, %d reused; %.1fx vs cold \
     load)@."
    se.se_delta_ms se.se_retimed se.se_reused se.se_speedup;
  Format.printf "  sustained   : %8.1f deltas/s   p50 %.2f ms   p95 %.2f ms@." se.se_rps
    se.se_p50_ms se.se_p95_ms;
  Format.printf "  reports     : byte-identical to cold one-shot flows of the edited design@."

let service_bench ?(smoke = false) ?json () =
  header "Service: resident daemon, cold vs warm flow requests";
  let bits = if smoke then 4 else 16 in
  let spef_src, spec_src = flow_sources ~bits () in
  let flow_req =
    service_request
      [ ("kind", Sjson.Str "flow"); ("spef", Sjson.Str spef_src); ("spec", Sjson.Str spec_src) ]
  in
  let ping_req = service_request [ ("kind", Sjson.Str "ping") ] in
  let session = Rlc_service.Session.create () in
  Fun.protect ~finally:(fun () -> Rlc_service.Session.close session) @@ fun () ->
  let server = Rlc_service.Server.create ~timeout_s:0. session in
  let handle req = fst (Rlc_service.Server.handle_line server req) in
  let field resp name =
    match Sjson.parse resp with Ok j -> Sjson.member name j | Error _ -> None
  in
  let int_field resp name = match field resp name with Some (Sjson.Int n) -> n | _ -> -1 in
  let expect_ok what resp =
    match field resp "ok" with
    | Some (Sjson.Bool true) -> ()
    | _ -> failwith (what ^ " request failed: " ^ resp)
  in
  let t0 = Unix.gettimeofday () in
  let cold_resp = handle flow_req in
  let cold_s = Unix.gettimeofday () -. t0 in
  expect_ok "cold flow" cold_resp;
  let cold_misses = int_field cold_resp "cache_misses" in
  let warm_resp = handle flow_req in
  expect_ok "warm flow" warm_resp;
  let warm_misses = int_field warm_resp "cache_misses" in
  let target = if smoke then 0.05 else 0.3 in
  let warm_s = time_per_run ~target (fun () -> expect_ok "warm flow" (handle flow_req)) in
  let ping_s = time_per_run ~target (fun () -> expect_ok "ping" (handle ping_req)) in
  Format.printf "@.%d-bit bus flow over Server.handle_line (no transport):@." bits;
  Format.printf "  cold : %8.1f ms/request  (%d Ceff cache misses)@." (1e3 *. cold_s)
    cold_misses;
  Format.printf "  warm : %8.2f ms/request  (%d misses, %.0f requests/s, %.1fx vs cold)@."
    (1e3 *. warm_s) warm_misses (1. /. warm_s) (cold_s /. warm_s);
  Format.printf "  ping : %8.1f us/request  (%.0f requests/s)@." (1e6 *. ping_s) (1. /. ping_s);
  let conc = service_concurrent_measure ~smoke ~flow_req () in
  print_service_concurrent conc;
  let eco = service_eco_measure ~smoke () in
  print_service_eco eco;
  match json with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 512 in
      let fl v =
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Printf.bprintf buf "{\n  \"schema\": \"rlc-bench-service/1\",\n";
      Printf.bprintf buf "  \"smoke\": %b,\n  \"bits\": %d,\n" smoke bits;
      Printf.bprintf buf
        "  \"flow\": {\"cold_ms\": %s, \"warm_ms\": %s, \"speedup\": %s, \
         \"warm_requests_per_sec\": %s, \"cold_cache_misses\": %d, \"warm_cache_misses\": \
         %d},\n"
        (fl (1e3 *. cold_s)) (fl (1e3 *. warm_s))
        (fl (cold_s /. warm_s))
        (fl (1. /. warm_s))
        cold_misses warm_misses;
      Printf.bprintf buf "  \"ping\": {\"us_per_request\": %s, \"requests_per_sec\": %s},\n"
        (fl (1e6 *. ping_s))
        (fl (1. /. ping_s));
      Printf.bprintf buf
        "  \"concurrent\": {\"clients\": %d, \"requests_per_client\": %d, \"workers\": %d, \
         \"recommended_domains\": %d, \"oversubscribed\": %b, \"baseline_rps\": %s, \
         \"rps\": %s, \"speedup_vs_1_client\": %s, \"p50_ms\": %s, \"p95_ms\": %s, \
         \"p99_ms\": %s, \"reports_identical\": %b},\n"
        conc.sc_clients conc.sc_requests_per_client conc.sc_workers conc.sc_recommended
        conc.sc_oversubscribed (fl conc.sc_baseline_rps) (fl conc.sc_rps)
        (fl (conc.sc_rps /. Float.max 1e-9 conc.sc_baseline_rps))
        (fl conc.sc_p50_ms) (fl conc.sc_p95_ms) (fl conc.sc_p99_ms) conc.sc_identical;
      Printf.bprintf buf
        "  \"eco\": {\"bits\": %d, \"nets\": %d, \"load_ms\": %s, \"delta_ms\": %s, \
         \"speedup_vs_cold_load\": %s, \"deltas\": %d, \"retimed_nets\": %d, \
         \"reused_nets\": %d, \"retimed_ratio\": %s, \"delta_requests_per_sec\": %s, \
         \"p50_ms\": %s, \"p95_ms\": %s, \"reports_identical\": %b},\n"
        eco.se_bits eco.se_nets (fl eco.se_load_ms) (fl eco.se_delta_ms) (fl eco.se_speedup)
        eco.se_deltas eco.se_retimed eco.se_reused
        (fl (float_of_int eco.se_retimed /. float_of_int (Int.max 1 (eco.se_retimed + eco.se_reused))))
        (fl eco.se_rps) (fl eco.se_p50_ms) (fl eco.se_p95_ms) eco.se_identical;
      (let flj v = if Float.is_nan v then "null" else fl v in
       match conc.sc_telemetry with
       | None -> Printf.bprintf buf "  \"telemetry\": null\n"
       | Some t ->
           Printf.bprintf buf
             "  \"telemetry\": {\"window_span_s\": %s, \"samples\": %d, \
              \"requests_per_s\": %s, \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": %s, \
              \"cache_hit_ratio\": %s, \"prometheus_valid\": %b}\n"
             (flj t.st_span_s) t.st_samples (flj t.st_rps) (flj t.st_p50_ms)
             (flj t.st_p95_ms) (flj t.st_p99_ms) (flj t.st_hit_ratio) t.st_prom_valid);
      Printf.bprintf buf "}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path

(* ---------------------------------------------------------------- xtalk *)

(* The crosstalk analysis is screen-then-simulate; the bench prices both
   halves.  A coupled bus like examples/bus8_coupled.spef (adjacent bits
   strongly coupled, next-nearest and the o* locals weakly) is generated at
   the requested width, then:

   - the screen alone (threshold 1.0 dismisses everything) prices the
     closed form per pair;
   - the full analysis prices the coupled-cluster transients the survivors
     pay for, per simulation and end to end at jobs 1 vs --jobs N.

   `--json` writes the numbers as BENCH_xtalk.json. *)

let xtalk_sources ~bits =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"bench_bus_coupled\"\n*T_UNIT 1 PS\n*C_UNIT 1 \
     FF\n*R_UNIT 1 OHM\n*L_UNIT 1 PH\n";
  let spec = Buffer.create 1024 in
  for i = 0 to bits - 1 do
    let bit = Printf.sprintf "b%d" i and out = Printf.sprintf "o%d" i in
    let couplings = Buffer.create 128 in
    (* Strong coupling to the right-hand neighbour, a weak tail to the bit
       after it: the weak pairs are what the screen dismisses. *)
    if i < bits - 1 then
      Buffer.add_string couplings
        (Printf.sprintf "4 %s_1 b%d_1 30\n5 %s_2 b%d_2 30\n6 %s_rcv b%d_rcv 30\n" bit (i + 1)
           bit (i + 1) bit (i + 1));
    if i < bits - 2 then
      Buffer.add_string couplings (Printf.sprintf "7 %s_2 b%d_2 3\n" bit (i + 2));
    Buffer.add_string buf
      (Printf.sprintf
         "*D_NET %s 600\n*CONN\n*P %s_drv O\n*P %s_rcv I\n*CAP\n1 %s_1 200\n2 %s_2 200\n3 \
          %s_rcv 200\n%s*RES\n1 %s_drv %s_1 24\n2 %s_1 %s_2 24\n3 %s_2 %s_rcv 24\n*INDUC\n1 \
          %s_drv %s_1 1500\n2 %s_1 %s_2 1500\n3 %s_2 %s_rcv 1500\n*END\n"
         bit bit bit bit bit bit (Buffer.contents couplings) bit bit bit bit bit bit bit bit
         bit bit bit bit);
    let out_coupling =
      if i < bits - 1 then Printf.sprintf "3 %s_1 o%d_1 3\n" out (i + 1) else ""
    in
    Buffer.add_string buf
      (Printf.sprintf
         "*D_NET %s 90\n*CONN\n*P %s_drv O\n*P %s_rcv I\n*CAP\n1 %s_1 45\n2 %s_rcv \
          45\n%s*RES\n1 %s_drv %s_1 60\n2 %s_1 %s_rcv 60\n*END\n"
         out out out out out out_coupling out out out out);
    Buffer.add_string spec
      (Printf.sprintf
         "driver %s 75\ninput %s 100\ndriver %s 50\nedge %s %s_rcv %s\nload %s %s_rcv 5\n" bit
         bit out bit bit out out out)
  done;
  (Buffer.contents buf, Buffer.contents spec)

let xtalk_bench ?(smoke = false) ~jobs ?json () =
  header "Xtalk: closed-form screen vs coupled-cluster simulation";
  let bits = if smoke then 4 else 8 in
  let alignments = if smoke then 3 else 9 in
  let spef_src, spec_src = xtalk_sources ~bits in
  let spef =
    match Rlc_spef.Spef.parse_res spef_src with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let spec =
    match Rlc_flow.Spec.parse_res spec_src with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let design =
    match Rlc_flow.Design.ingest ~spef ~spec () with Ok d -> d | Error e -> failwith e
  in
  let flow = Rlc_flow.Flow.run_cfg Rlc_flow.Flow.Config.default design in
  let module X = Rlc_xtalk.Xtalk in
  let analyze ?(threshold = X.Config.default.X.Config.threshold) ~jobs () =
    X.analyze
      ~config:{ X.Config.default with X.Config.threshold; alignments; jobs = Some jobs }
      flow
  in
  (* Screen only: threshold 1.0 dismisses every pair, so the wall clock is
     the closed form plus bookkeeping. *)
  let target = if smoke then 0.05 else 0.3 in
  let screen_s = time_per_run ~target (fun () -> ignore (analyze ~threshold:1.0 ~jobs:1 ())) in
  let screened_all = analyze ~threshold:1.0 ~jobs:1 () in
  let n_pairs = screened_all.X.stats.X.n_pairs in
  (* Full analysis, serial then parallel. *)
  let t0 = Unix.gettimeofday () in
  let r1 = analyze ~jobs:1 () in
  let w1 = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let rn = analyze ~jobs () in
  let wn = Unix.gettimeofday () -. t0 in
  let identical = X.json_fragment design r1 = X.json_fragment design rn in
  let stats = r1.X.stats in
  (* Transients run: one noise cluster per simulated victim + the sweep. *)
  let n_victim_sims =
    Array.fold_left (fun acc (v : X.victim_result) -> if v.X.simulated then acc + 1 else acc) 0 r1.X.victims
  in
  let n_transients = n_victim_sims + stats.X.n_alignment_sims in
  let per_sim_ms = if n_transients = 0 then 0. else 1e3 *. w1 /. float_of_int n_transients in
  let screen_rate = float_of_int stats.X.n_screened /. float_of_int (max 1 n_pairs) in
  let rec_domains = Rlc_parallel.Pool.default_jobs () in
  Format.printf "@.%d-bit coupled bus, %d ordered pairs, %d alignments:@." bits n_pairs
    alignments;
  Format.printf "  screen only  : %8.2f ms  (%5.1f us/pair)@." (1e3 *. screen_s)
    (1e6 *. screen_s /. float_of_int (max 1 n_pairs));
  Format.printf "  full analysis: %8.1f ms  (%d screened = %.0f%%, %d coupled transients, \
                 %.1f ms each)@."
    (1e3 *. w1) stats.X.n_screened (100. *. screen_rate) n_transients per_sim_ms;
  Format.printf "  jobs %-2d      : %8.1f ms  (%.2fx, identical: %b)@." jobs (1e3 *. wn)
    (w1 /. wn) identical;
  match json with
  | None -> ()
  | Some path ->
      let fl v =
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      let buf = Buffer.create 512 in
      Printf.bprintf buf "{\n  \"schema\": \"rlc-bench-xtalk/1\",\n";
      Printf.bprintf buf "  \"smoke\": %b,\n  \"bits\": %d,\n  \"alignments\": %d,\n" smoke
        bits alignments;
      Printf.bprintf buf
        "  \"screen\": {\"pairs\": %d, \"screened\": %d, \"rate\": %s, \"ms_total\": %s, \
         \"us_per_pair\": %s},\n"
        n_pairs stats.X.n_screened (fl screen_rate)
        (fl (1e3 *. screen_s))
        (fl (1e6 *. screen_s /. float_of_int (max 1 n_pairs)));
      Printf.bprintf buf
        "  \"simulate\": {\"victims\": %d, \"alignment_sims\": %d, \"transients\": %d, \
         \"ms_per_transient\": %s},\n"
        n_victim_sims stats.X.n_alignment_sims n_transients (fl per_sim_ms);
      Printf.bprintf buf
        "  \"scaling\": {\"jobs\": %d, \"recommended_domains\": %d, \"wall_s_jobs1\": %s, \
         \"wall_s_jobsN\": %s, \"speedup\": %s, \"fragments_identical\": %b}\n"
        jobs rec_domains (fl w1) (fl wn)
        (fl (w1 /. wn))
        identical;
      Printf.bprintf buf "}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path

(* ------------------------------------------------------------- optimize *)

(* Two measurements behind `rlc_timing optimize`:

   1. the compiled-transient candidate kernel: the sweep's unit of work is
      a small-circuit adaptive replay repeated across candidate values.
      Engine.Compiled amortizes compile + DC solve + state allocation
      across runs (the handle cache restamps new values into the shared
      structure); the bench asserts the reuse is >= 3x AND that every
      waveform is bit-identical to a fresh Engine.transient run;
   2. the end-to-end sizing run on a deliberately under-sized bus: search
      ladder stats (candidates / screened / escalations), characterization
      and handle-cache hit ratios, jobs scaling with byte-identical
      reports asserted.

   `--json` writes the numbers as BENCH_optimize.json. *)

let optimize_bench ?(smoke = false) ~jobs ?json () =
  header "Optimize: compiled-transient reuse and the sizing sweep";
  let module Engine = Rlc_circuit.Engine in
  let module Netlist = Rlc_circuit.Netlist in
  let module Waveform = Rlc_waveform.Waveform in
  (* -------------------- 1. candidate-evaluation kernel ----------------- *)
  (* The coupled-cluster replay a candidate sweep repeats: an 8-bit bus,
     victim quiet, aggressors ramping at a candidate-dependent alignment.
     Candidates differ only in source timing, so the handle restamps clean
     — every factored per-rung/per-offcut solver state and the DC point
     survive across runs.  The recompile baseline rebuilds all of it each
     run, and at this node count (production [Ladder.default_segments] is
     40-100 for mm-scale lines) the nodal matrix is past the banded cutoff:
     each of those rebuilds is a dense O(n^3) factorization, one per rung
     touched plus one per breakpoint offcut, against O(n^2) per step. *)
  let kbits = 8 and ksegs = 64 in
  let tr = 30e-12 in
  let ramp t0 t = if t <= t0 then 0. else if t >= t0 +. tr then 1. else (t -. t0) /. tr in
  let build t_off =
    let nl = Netlist.create () in
    let nodes = Array.make_matrix kbits ksegs Netlist.ground in
    for b = 0 to kbits - 1 do
      let src = Netlist.node nl (Printf.sprintf "s%d" b) in
      if b = 0 then Netlist.force_voltage nl ~breakpoints:[] src (fun _ -> 0.)
      else begin
        (* Per-bit stagger: bus bits switch at distinct times, so each run
           lands on many source kinks (each an offcut factorization for the
           recompile baseline). *)
        let t0b = t_off +. (3e-12 *. float_of_int b) in
        Netlist.force_voltage nl ~breakpoints:[ t0b; t0b +. tr ] src (ramp t0b)
      end;
      let prev = ref src in
      for s = 0 to ksegs - 1 do
        let n = Netlist.node nl (Printf.sprintf "n%d_%d" b s) in
        nodes.(b).(s) <- n;
        let r = if s = 0 then 100. else 120. /. float_of_int ksegs in
        Netlist.resistor nl !prev n r;
        Netlist.inductor nl !prev n (1e-10 /. float_of_int ksegs);
        Netlist.capacitor nl n Netlist.ground (60e-15 /. float_of_int ksegs);
        prev := n
      done
    done;
    for b = 0 to kbits - 2 do
      for s = 0 to ksegs - 1 do
        Netlist.capacitor nl nodes.(b).(s) nodes.(b + 1).(s) (30e-15 /. float_of_int ksegs)
      done
    done;
    (nl, nodes.(0).(ksegs - 1))
  in
  let n_cands = if smoke then 2 else 8 in
  let offs = Array.init n_cands (fun i -> 10e-12 +. (5e-12 *. float_of_int i)) in
  let dt = 0.5e-12 and t_stop = 120e-12 in
  let adaptive = Engine.default_adaptive ~dt_min:dt () in
  let fresh_eval i =
    let nl, victim = build offs.(i mod n_cands) in
    (Engine.transient ~record_nodes:[ victim ] ~adaptive ~dt ~t_stop nl, victim)
  in
  let compiled_eval i =
    let nl, victim = build offs.(i mod n_cands) in
    ( Engine.Compiled.run ~record_nodes:[ victim ] ~adaptive ~dt ~t_stop
        (Engine.Compiled.cached nl),
      victim )
  in
  Engine.Compiled.clear_cache ();
  let identical = ref true in
  for i = 0 to n_cands - 1 do
    let rf, vf = fresh_eval i and rc, vc = compiled_eval i in
    if
      Engine.times rf <> Engine.times rc
      || Waveform.values (Engine.voltage rf vf) <> Waveform.values (Engine.voltage rc vc)
    then identical := false
  done;
  (* Runs cost 0.1-0.5 s each, so measure a fixed rep count (caches are
     already warm from the identity pass) instead of time_per_run's
     calibrated batching. *)
  let reps = if smoke then 2 else 6 in
  let measure eval =
    ignore (eval 0);
    let t0 = Unix.gettimeofday () in
    for i = 0 to reps - 1 do ignore (eval i) done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let fresh_s = measure fresh_eval in
  let compiled_s = measure compiled_eval in
  let kernel_speedup = fresh_s /. compiled_s in
  Format.printf
    "@.candidate kernel (%d-bit coupled cluster, %d segments/bit, %d alignment candidates):@."
    kbits ksegs n_cands;
  Format.printf "  fresh transient : %7.1f ms/run  (compile + DC + dense factor per rung/offcut)@."
    (1e3 *. fresh_s);
  Format.printf "  compiled handle : %7.1f ms/run  (restamp: factored states and DC survive)@."
    (1e3 *. compiled_s);
  Format.printf "  speedup         : %7.2fx  (waveforms bit-identical: %b)@." kernel_speedup
    !identical;
  if not !identical then begin
    Format.eprintf "FAIL: compiled kernel waveforms differ from fresh transients@.";
    exit 1
  end;
  if kernel_speedup < 3. then begin
    Format.eprintf "FAIL: compiled-reuse speedup %.2fx < 3x@." kernel_speedup;
    exit 1
  end;
  (* ------------------------ 2. sizing sweep --------------------------- *)
  let bits = if smoke then 4 else 16 in
  let spef_src, spec_src = flow_sources ~bits () in
  let spef = Result.get_ok (Rlc_spef.Spef.parse_res spef_src) in
  let spec = Result.get_ok (Rlc_flow.Spec.parse_res spec_src) in
  (* Under-size every driver to 25X so the optimizer has real work. *)
  let spec =
    {
      spec with
      Rlc_flow.Spec.drivers = List.map (fun (n, _) -> (n, 25.)) spec.Rlc_flow.Spec.drivers;
    }
  in
  let required = Rlc_num.Units.ps 150. in
  let run_opt ~jobs =
    let cfg =
      { Rlc_flow.Flow.Config.default with Rlc_flow.Flow.Config.jobs = Some jobs }
    in
    let t0 = Unix.gettimeofday () in
    match Rlc_flow.Optimize.run ~required cfg ~spef ~spec () with
    | Ok o -> (o, Unix.gettimeofday () -. t0)
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let o1, w1 = run_opt ~jobs:1 in
  let on_, wn = run_opt ~jobs in
  let reports_identical =
    Rlc_flow.Report.optimize_json_string o1 = Rlc_flow.Report.optimize_json_string on_
  in
  let s = o1.Rlc_flow.Optimize.stats in
  let module O = Rlc_flow.Optimize in
  let ratio a b = if a + b = 0 then 0. else float_of_int a /. float_of_int (a + b) in
  Format.printf "@.sizing sweep (%d-bit bus, 25X seeds, required %.0f ps):@." bits
    (1e12 *. required);
  Format.printf "  violations      : %d -> %d  (%d resized, %d repeater recs, %d unfixable)@."
    s.O.o_violations_before s.O.o_violations_after s.O.o_resized s.O.o_repeaters
    s.O.o_unfixable;
  Format.printf "  search ladder   : %d candidates, %d screened, %d escalations@."
    s.O.o_candidates s.O.o_screened s.O.o_escalations;
  Format.printf "  characterization: %.0f%% hit (%d/%d);  handles: %.0f%% hit (%d/%d)@."
    (100. *. ratio s.O.o_char_hits s.O.o_char_misses)
    s.O.o_char_hits
    (s.O.o_char_hits + s.O.o_char_misses)
    (100. *. ratio s.O.o_handle_hits s.O.o_handle_misses)
    s.O.o_handle_hits
    (s.O.o_handle_hits + s.O.o_handle_misses);
  Format.printf
    "  jobs 1 -> %-2d    : %6.2f s -> %6.2f s  (%.2fx incl. warm memo caches, reports \
     identical: %b)@."
    jobs w1 wn (w1 /. wn) reports_identical;
  if not reports_identical then begin
    Format.eprintf "FAIL: optimize reports differ across jobs counts@.";
    exit 1
  end;
  match json with
  | None -> ()
  | Some path ->
      let fl v =
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      let buf = Buffer.create 512 in
      Printf.bprintf buf "{\n  \"schema\": \"rlc-bench-optimize/1\",\n";
      Printf.bprintf buf "  \"smoke\": %b,\n" smoke;
      Printf.bprintf buf
        "  \"kernel\": {\"bits\": %d, \"segments\": %d, \"candidates\": %d, \
         \"fresh_ms_per_run\": %s, \"compiled_ms_per_run\": %s, \"speedup\": %s, \
         \"waveforms_identical\": %b},\n"
        kbits ksegs n_cands
        (fl (1e3 *. fresh_s))
        (fl (1e3 *. compiled_s))
        (fl kernel_speedup) !identical;
      Printf.bprintf buf
        "  \"sizing\": {\"bits\": %d, \"required_ps\": %s, \"violations_before\": %d, \
         \"violations_after\": %d, \"resized\": %d, \"repeater_recommendations\": %d, \
         \"unfixable\": %d, \"candidates\": %d, \"screened\": %d, \"escalations\": %d, \
         \"char_hit_ratio\": %s, \"handle_hit_ratio\": %s, \"wall_s_jobs1\": %s, \
         \"wall_s_jobsN\": %s, \"jobs\": %d, \"speedup\": %s, \"reports_identical\": %b}\n"
        bits
        (fl (1e12 *. required))
        s.O.o_violations_before s.O.o_violations_after s.O.o_resized s.O.o_repeaters
        s.O.o_unfixable s.O.o_candidates s.O.o_screened s.O.o_escalations
        (fl (ratio s.O.o_char_hits s.O.o_char_misses))
        (fl (ratio s.O.o_handle_hits s.O.o_handle_misses))
        (fl w1) (fl wn) jobs
        (fl (w1 /. wn))
        reports_identical;
      Printf.bprintf buf "}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path

(* ---------------------------------------------------------------- main *)

let () =
  let all =
    [
      "table1"; "fig1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "ablation"; "flow"; "engine";
      "service"; "service_concurrent"; "xtalk"; "optimize"; "perf";
    ]
  in
  (* Flags: --jobs N (table1/fig7/engine fan out over a domain pool),
     --json PATH (engine group writes BENCH_engine.json there; implies the
     engine group unless engine, service or xtalk was requested explicitly;
     when several groups run, service and xtalk fall back to
     BENCH_service.json / BENCH_xtalk.json so nothing clobbers anything),
     --smoke (short timings for CI). *)
  let json_out = ref None and jobs_arg = ref 1 and smoke = ref false in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse acc rest
    | "--jobs" :: n :: rest ->
        (match n with
        | "auto" -> jobs_arg := Rlc_parallel.Pool.default_jobs ()
        | _ -> (
            match int_of_string_opt n with
            | Some j when j >= 1 -> jobs_arg := j
            | _ ->
                Format.eprintf "--jobs expects a positive integer or `auto', got %S@." n;
                exit 2));
        parse acc rest
    | "--smoke" :: rest ->
        smoke := true;
        parse acc rest
    | x :: rest -> parse (x :: acc) rest
  in
  let requested = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested = match requested with [] -> all | r -> r in
  let requested =
    if
      !json_out <> None
      && (not (List.mem "engine" requested))
      && (not (List.mem "service" requested))
      && (not (List.mem "xtalk" requested))
      && not (List.mem "optimize" requested)
    then requested @ [ "engine" ]
    else requested
  in
  List.iter
    (fun name ->
      match name with
      | "table1" -> table1 ~jobs:!jobs_arg ()
      | "fig1" -> fig1 ()
      | "fig3" -> fig3 ()
      | "fig4" -> fig4 ()
      | "fig5" -> fig5 ()
      | "fig6" -> fig6 ()
      | "fig7" -> fig7 ~jobs:!jobs_arg ()
      | "fig7-fast" -> fig7 ~stride:7 ~jobs:!jobs_arg ()
      | "ablation" -> ablation ()
      | "flow" -> flow_bench ()
      | "engine" -> engine_bench ~jobs:!jobs_arg ~smoke:!smoke ?json:!json_out ()
      | "service" ->
          let json =
            match !json_out with
            | Some p when not (List.mem "engine" requested) -> Some p
            | Some _ -> Some "BENCH_service.json"
            | None -> None
          in
          service_bench ~smoke:!smoke ?json ()
      | "service_concurrent" ->
          (* Just the concurrent serving measurement, no JSON artifact —
             the `service` group embeds the same numbers in its file. *)
          header "Service: concurrent socket serving";
          let bits = if !smoke then 4 else 16 in
          let spef_src, spec_src = flow_sources ~bits () in
          let flow_req =
            service_request
              [
                ("kind", Sjson.Str "flow");
                ("spef", Sjson.Str spef_src);
                ("spec", Sjson.Str spec_src);
              ]
          in
          print_service_concurrent (service_concurrent_measure ~smoke:!smoke ~flow_req ())
      | "xtalk" ->
          (* Like service: never clobber the engine group's --json path. *)
          let json =
            match !json_out with Some _ -> Some "BENCH_xtalk.json" | None -> None
          in
          xtalk_bench ~smoke:!smoke ~jobs:!jobs_arg ?json ()
      | "optimize" ->
          (* Like xtalk: never clobber the engine group's --json path. *)
          let json =
            match !json_out with Some _ -> Some "BENCH_optimize.json" | None -> None
          in
          optimize_bench ~smoke:!smoke ~jobs:!jobs_arg ?json ()
      | "perf" -> perf ()
      | other ->
          Format.eprintf
            "unknown experiment %S (known: %s, fig7-fast; flags: --jobs N, --json PATH, \
             --smoke)@."
            other (String.concat ", " all);
          exit 2)
    requested
