(* Frozen copy of lib/num/banded.ml as of the pre-factor-once engine
   (seed commit).  Used only by the [engine] bench group as the
   pre-PR performance baseline; do not modify. *)
(* Storage: row i keeps its entries for columns [i-bw, i+bw] in a flat array
   at offset [i*(2*bw+1)]; column j lives at slot [j - i + bw]. *)
type t = { n : int; bw : int; data : float array }

exception Singular of int

let create ~n ~bw =
  if n < 0 || bw < 0 then invalid_arg "Banded.create";
  { n; bw; data = Array.make (n * ((2 * bw) + 1)) 0. }

let dim t = t.n
let bandwidth t = t.bw

let slot t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Banded: index out of range";
  if abs (i - j) > t.bw then None else Some ((i * ((2 * t.bw) + 1)) + (j - i) + t.bw)

let get t i j = match slot t i j with None -> 0. | Some k -> t.data.(k)

let set t i j v =
  match slot t i j with
  | None -> invalid_arg "Banded.set: entry outside band"
  | Some k -> t.data.(k) <- v

let add t i j v =
  match slot t i j with
  | None -> invalid_arg "Banded.add: entry outside band"
  | Some k -> t.data.(k) <- t.data.(k) +. v

let clear t = Array.fill t.data 0 (Array.length t.data) 0.
let copy t = { t with data = Array.copy t.data }

let mat_vec t v =
  Array.init t.n (fun i ->
      let acc = ref 0. in
      for j = Int.max 0 (i - t.bw) to Int.min (t.n - 1) (i + t.bw) do
        acc := !acc +. (get t i j *. v.(j))
      done;
      !acc)

let solve_in_place t b =
  let n = t.n and bw = t.bw in
  if Array.length b <> n then invalid_arg "Banded.solve: size mismatch";
  for k = 0 to n - 1 do
    let pivot = get t k k in
    if Float.abs pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to Int.min (n - 1) (k + bw) do
      let f = get t i k /. pivot in
      if f <> 0. then begin
        for j = k + 1 to Int.min (n - 1) (k + bw) do
          set t i j (get t i j -. (f *. get t k j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to Int.min (n - 1) (i + bw) do
      acc := !acc -. (get t i j *. b.(j))
    done;
    b.(i) <- !acc /. get t i i
  done

let solve t b =
  let t = copy t and x = Array.copy b in
  solve_in_place t x;
  x

let to_dense t =
  Array.init t.n (fun i -> Array.init t.n (fun j -> get t i j))
