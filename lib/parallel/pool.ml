type batch = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
  published : float;  (** [Obs.now] at publication, for queue-wait stats *)
}

type t = {
  n_jobs : int;
  obs : Rlc_obs.Obs.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable batch : (int * batch) option;  (** (sequence number, batch) *)
  mutable seq : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* Pull indices until the batch is exhausted.  The worker that completes the
   last job broadcasts so the master can collect the batch. *)
let drain t b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run i;
      let remaining = Atomic.fetch_and_add b.remaining (-1) - 1 in
      if remaining = 0 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end;
      go ()
    end
  in
  go ()

let worker t () =
  let rec loop last_seq =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then None
      else
        match t.batch with
        | Some (seq, b) when seq <> last_seq -> Some (seq, b)
        | _ ->
            Condition.wait t.cond t.mutex;
            wait ()
    in
    match wait () with
    | None -> Mutex.unlock t.mutex
    | Some (seq, b) ->
        Mutex.unlock t.mutex;
        if Rlc_obs.Obs.enabled t.obs then
          Rlc_obs.Obs.observe t.obs "pool.queue_wait_s"
            (Float.max 0. (Rlc_obs.Obs.now () -. b.published));
        drain t b;
        loop seq
  in
  loop 0

let create ?(obs = Rlc_obs.Obs.null) ~jobs () =
  let n_jobs = Int.max 1 jobs in
  let t =
    {
      n_jobs;
      obs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      batch = None;
      seq = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let map t n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    let t0 = Rlc_obs.Obs.start t.obs in
    if t.n_jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        run i
      done
    else begin
      let b =
        {
          run;
          n;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          published = (if Rlc_obs.Obs.enabled t.obs then Rlc_obs.Obs.now () else 0.);
        }
      in
      Mutex.lock t.mutex;
      t.seq <- t.seq + 1;
      t.batch <- Some (t.seq, b);
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      drain t b;
      Mutex.lock t.mutex;
      while Atomic.get b.remaining > 0 do
        Condition.wait t.cond t.mutex
      done;
      t.batch <- None;
      Mutex.unlock t.mutex
    end;
    Rlc_obs.Obs.finish t.obs
      ~args:[ ("jobs", string_of_int (Int.min t.n_jobs n)); ("n", string_of_int n) ]
      "pool.batch" t0;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map Option.get results
  end

let run t thunks =
  let arr = Array.of_list thunks in
  ignore (map t (Array.length arr) (fun i -> arr.(i) ()))

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?(obs = Rlc_obs.Obs.null) ~jobs f =
  let t = create ~obs ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
