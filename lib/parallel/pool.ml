type batch = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
  published : float;  (** [Obs.now] at publication, for queue-wait stats *)
  deadline : Rlc_errors.Deadline.t;
      (** the publisher's ambient deadline, installed around each worker's
          drain so fan-out inherits the request budget across domains *)
  trace : string option;
      (** the publisher's ambient trace id, installed the same way so spans
          recorded inside worker domains tag to the originating request *)
}

type t = {
  n_jobs : int;
  obs : Rlc_obs.Obs.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable active : batch list;
      (** batches that may still have unclaimed jobs, oldest first; masters
          append on publish, workers and masters prune exhausted entries *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* Pull indices until the batch is exhausted.  The worker that completes the
   last job broadcasts so the master can collect the batch. *)
let drain t b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run i;
      let remaining = Atomic.fetch_and_add b.remaining (-1) - 1 in
      if remaining = 0 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end;
      go ()
    end
  in
  go ()

(* Workers serve whichever active batch still has unclaimed jobs (oldest
   first, so concurrent masters are served fairly rather than
   last-publisher-wins).  The single-batch-slot design this replaces
   could not host two concurrent [map] calls: the second publication
   overwrote the first and workers only compared sequence numbers. *)
let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then None
      else begin
        t.active <- List.filter (fun b -> Atomic.get b.next < b.n) t.active;
        match t.active with
        | b :: _ -> Some b
        | [] ->
            Condition.wait t.cond t.mutex;
            wait ()
      end
    in
    match wait () with
    | None -> Mutex.unlock t.mutex
    | Some b ->
        Mutex.unlock t.mutex;
        if Rlc_obs.Obs.enabled t.obs then
          Rlc_obs.Obs.observe t.obs "pool.queue_wait_s"
            (Float.max 0. (Rlc_obs.Obs.now () -. b.published));
        Rlc_errors.Deadline.with_ambient b.deadline (fun () ->
            Rlc_obs.Obs.with_trace b.trace (fun () -> drain t b));
        loop ()
  in
  loop ()

let create ?(obs = Rlc_obs.Obs.null) ~jobs () =
  let n_jobs = Int.max 1 jobs in
  let t =
    {
      n_jobs;
      obs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      active = [];
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let map t n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    let t0 = Rlc_obs.Obs.start t.obs in
    if t.n_jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        run i
      done
    else begin
      let b =
        {
          run;
          n;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          published = (if Rlc_obs.Obs.enabled t.obs then Rlc_obs.Obs.now () else 0.);
          deadline = Rlc_errors.Deadline.ambient ();
          trace = Rlc_obs.Obs.current_trace ();
        }
      in
      Mutex.lock t.mutex;
      t.active <- t.active @ [ b ];
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      (* The master drains its own batch only: helping another master's
         batch here would block this map on foreign work and leak that
         request's ambient deadline into this one. *)
      drain t b;
      Mutex.lock t.mutex;
      while Atomic.get b.remaining > 0 do
        Condition.wait t.cond t.mutex
      done;
      t.active <- List.filter (fun b' -> b' != b) t.active;
      Mutex.unlock t.mutex
    end;
    Rlc_obs.Obs.finish t.obs
      ~args:[ ("jobs", string_of_int (Int.min t.n_jobs n)); ("n", string_of_int n) ]
      "pool.batch" t0;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map Option.get results
  end

let run t thunks =
  let arr = Array.of_list thunks in
  ignore (map t (Array.length arr) (fun i -> arr.(i) ()))

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?(obs = Rlc_obs.Obs.null) ~jobs f =
  let t = create ~obs ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
