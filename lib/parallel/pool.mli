(** A persistent OCaml 5 [Domain] worker pool for batch fan-out.

    The pool is created once per run (a flow run feeds it one batch per
    timing level, the experiment sweep one batch per pass); workers pull
    job indices from an atomic counter, so scheduling is
    work-stealing-flat and the result array is always in submission order
    regardless of completion order (determinism of the flow reports does not
    depend on the pool).  The calling domain participates in every batch, so
    [create ~jobs:n] spawns [n - 1] domains and [jobs = 1] spawns none and
    runs batches inline.

    {b Concurrent masters.}  A shared pool (the service daemon's resident
    pool) may receive [map] calls from several domains at once: each call
    publishes its own batch onto an active list, workers serve the oldest
    batch that still has unclaimed jobs, and every master drains and waits
    on its own batch only.  Each batch also snapshots the publishing
    domain's ambient {!Rlc_errors.Deadline}, which workers install around
    their drain — a per-request budget therefore follows the request's
    jobs across domains without any signature change. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?obs:Rlc_obs.Obs.t -> jobs:int -> unit -> t
(** [jobs >= 1] is clamped from below.  When [obs] is an enabled sink
    (default {!Rlc_obs.Obs.null}), each [map] records a ["pool.batch"]
    span and workers record a ["pool.queue_wait_s"] histogram sample
    when they pick up a published batch. *)

val jobs : t -> int

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [[| f 0; ...; f (n-1) |]], running the calls on the
    pool.  [f] must be safe to call from any domain.  If any call raises,
    the batch still drains and the exception of the {e lowest index} is
    re-raised (deterministic error reporting under parallel execution). *)

val run : t -> (unit -> unit) list -> unit
(** Convenience: run thunks as one batch. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must not be used afterwards;
    [shutdown] is idempotent. *)

val with_pool : ?obs:Rlc_obs.Obs.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
