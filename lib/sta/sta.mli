(** Gate-level static timing over multi-stage RLC paths.

    Demonstrates the paper's "library compatible" claim end to end: each
    stage's driver is reduced to its one-/two-ramp model from the NLDM
    tables, the modeled waveform is replayed through the stage's line
    (linear circuit only — no transistor simulation inside the timing loop),
    and the far-end 50 % time and slew feed the next stage.  Per the paper's
    Section 3 observation, far-end waveforms show no plateau, so a single
    ramp (the measured far-end slew) is a faithful hand-off to the next
    cell arc.

    Stages alternate output edges like a real inverter chain; the edge
    selects the rise or fall table arc, and waveforms are handled in the
    normalized rising domain (electrically symmetric for the mirrored
    edge). *)

module Line = Rlc_tline.Line

type stage = {
  size : float;  (** driver strength, X multiplier *)
  line : Line.t;  (** the net this stage drives *)
}

type stage_result = {
  stage : stage;
  edge : Rlc_waveform.Measure.edge;  (** output edge direction *)
  model : Rlc_ceff.Driver_model.t;
  input_slew : float;  (** slew presented at this stage's input *)
  stage_delay : float;  (** stage input 50 % -> far-end 50 % *)
  near_delay : float;  (** stage input 50 % -> driver output 50 % *)
  far_slew : float;  (** 10-90 at the far end *)
  arrival : float;  (** cumulative arrival time at the far end *)
}

type path_result = {
  stages : stage_result list;
  total_delay : float;  (** path input 50 % -> last far end 50 % *)
}

val analyze :
  ?dt:float ->
  ?tech:Rlc_devices.Tech.t ->
  input_slew:float ->
  sink_cl:float ->
  stage list ->
  path_result
(** Requires at least one stage.  Intermediate stage loads are the input
    capacitance of the next stage's driver; the final stage sees
    [sink_cl].  Raises on bad inputs ([Invalid_argument]) or an engine
    failure; embedders that must not die should use {!analyze_res}. *)

val analyze_res :
  ?dt:float ->
  ?tech:Rlc_devices.Tech.t ->
  input_slew:float ->
  sink_cl:float ->
  stage list ->
  (path_result, Rlc_errors.Error.t) result
(** {!analyze} with the user-reachable exits converted to typed errors:
    [Invalid_argument] (empty path, incomplete far end) becomes
    {!Rlc_errors.Error.Bad_request}, engine failures become
    {!Rlc_errors.Error.Internal}. *)

val other_edge : Rlc_waveform.Measure.edge -> Rlc_waveform.Measure.edge
(** Inverting-stage edge alternation. *)

val clamp_slew : float -> float
(** Clamp a slew into the characterized table range (10–400 ps) before a
    table lookup. *)

val handoff_slew : far_slew:float -> float
(** The stage hand-off convention shared by {!analyze} and the full-design
    flow ({!Rlc_flow}): far-end waveforms carry no plateau (paper Section 3),
    so the next arc receives a single ramp — the measured 10–90 far-end slew
    extrapolated to full swing ([/. 0.8]) and clamped by {!clamp_slew}. *)

val estimate_far_delay : Rlc_ceff.Driver_model.t -> line:Line.t -> cl:float -> float
(** Replay-free estimate (for sorting / pruning, not signoff): near-end
    50 % plus the two-moment transfer-function delay of the line
    ({!Rlc_tline.Transfer.delay_50_estimate}), which degrades gracefully
    from the RC scaled-Elmore regime to the time-of-flight bound on
    inductive lines. *)

val pp_path : Format.formatter -> path_result -> unit
