module Line = Rlc_tline.Line
module Measure = Rlc_waveform.Measure
module Driver_model = Rlc_ceff.Driver_model
module Reference = Rlc_ceff.Reference
module Characterize = Rlc_liberty.Characterize
module Inverter = Rlc_devices.Inverter
module Units = Rlc_num.Units

type stage = { size : float; line : Line.t }

type stage_result = {
  stage : stage;
  edge : Measure.edge;
  model : Driver_model.t;
  input_slew : float;
  stage_delay : float;
  near_delay : float;
  far_slew : float;
  arrival : float;
}

type path_result = { stages : stage_result list; total_delay : float }

let other_edge = function Measure.Rising -> Measure.Falling | Measure.Falling -> Measure.Rising

let clamp_slew s = Float.max (Units.ps 10.) (Float.min (Units.ps 400.) s)

(* Far-end waveforms carry no plateau (paper Section 3): the hand-off to the
   next cell arc is a single ramp, the measured 10-90 slew extrapolated to
   full swing and clamped into the characterized table range. *)
let handoff_slew ~far_slew = clamp_slew (far_slew /. 0.8)

let analyze ?(dt = 0.5e-12) ?(tech = Rlc_devices.Tech.c018) ~input_slew ~sink_cl stages =
  if stages = [] then invalid_arg "Sta.analyze: empty path";
  let vdd = tech.Rlc_devices.Tech.vdd in
  let rec go acc arrival slew edge = function
    | [] -> List.rev acc
    | stage :: rest ->
        let cl =
          match rest with
          | next :: _ -> Inverter.input_cap (Inverter.make tech ~size:next.size)
          | [] -> sink_cl
        in
        let cell =
          match Characterize.cell_res tech ~size:stage.size with
          | Ok c -> c
          | Error e -> failwith (Rlc_errors.Error.message e)
        in
        let model =
          Driver_model.model ~cell ~edge ~input_slew:slew ~line:stage.line ~cl ()
        in
        let _, far =
          Reference.replay_pwl ~dt ~pwl:model.Driver_model.pwl ~line:stage.line ~cl ()
        in
        (* Model time axis: t = 0 at this stage's input 50 % crossing. *)
        let stage_delay = Measure.t_frac_exn far ~vdd ~edge:Measure.Rising ~frac:0.5 in
        let far_slew =
          match Measure.slew_10_90 far ~vdd ~edge:Measure.Rising with
          | Some s -> s
          | None -> invalid_arg "Sta.analyze: far end incomplete"
        in
        let result =
          {
            stage;
            edge;
            model;
            input_slew = slew;
            stage_delay;
            near_delay = model.Driver_model.delay_50;
            far_slew;
            arrival = arrival +. stage_delay;
          }
        in
        go (result :: acc) result.arrival (handoff_slew ~far_slew) (other_edge edge) rest
  in
  let stages = go [] 0. (clamp_slew input_slew) Measure.Rising stages in
  let total_delay = (List.nth stages (List.length stages - 1)).arrival in
  { stages; total_delay }

let analyze_res ?dt ?tech ~input_slew ~sink_cl stages =
  match analyze ?dt ?tech ~input_slew ~sink_cl stages with
  | r -> Ok r
  | exception Invalid_argument msg -> Error (Rlc_errors.Error.Bad_request msg)
  | exception Failure msg -> Error (Rlc_errors.Error.Internal msg)

let estimate_far_delay (model : Driver_model.t) ~line ~cl =
  (* Near-end 50% plus the two-moment transfer estimate of the line's own
     50% propagation (clamped below by the time of flight). *)
  model.Driver_model.delay_50 +. Rlc_tline.Transfer.delay_50_estimate line ~cl

let pp_path fmt p =
  Format.fprintf fmt "path<%d stages, total %.1f ps>@\n" (List.length p.stages)
    (Units.in_ps p.total_delay);
  List.iteri
    (fun i s ->
      Format.fprintf fmt
        "  stage %d: %gX driving %.1f mm (%s edge, in-slew %.0f ps) -> stage delay %.1f ps, \
         far slew %.1f ps, arrival %.1f ps@\n"
        i s.stage.size
        (Units.in_mm s.stage.line.Line.length)
        (match s.edge with Measure.Rising -> "rise" | Measure.Falling -> "fall")
        (Units.in_ps s.input_slew) (Units.in_ps s.stage_delay) (Units.in_ps s.far_slew)
        (Units.in_ps s.arrival))
    p.stages
