module Table = Rlc_liberty.Table
module Line = Rlc_tline.Line
module Pade = Rlc_moments.Pade
module Moments = Rlc_moments.Moments
module Pwl = Rlc_waveform.Pwl
module Waveform = Rlc_waveform.Waveform
module Measure = Rlc_waveform.Measure
module Obs = Rlc_obs.Obs

type iteration = { value : float; ramp : float; iterations : int; converged : bool }

type plateau_mode = Stretch_tr2 | Flat_step

type rc_tail = { t_switch : float; v_switch : float; tau : float }

type shape =
  | One_ramp of { ceff : iteration; tail : rc_tail option }
  | Two_ramp of {
      ceff1 : iteration;
      ceff2 : iteration;
      tr2_new : float;
      plateau : float;
      plateau_mode : plateau_mode;
    }

type t = {
  shape : shape;
  f : float;
  rs : float;
  z0 : float;
  tf : float;
  pade : Pade.t;
  screen : Screen.verdict;
  delay_50 : float;
  vdd : float;
  pwl : Pwl.t;
}

type mode = Auto | Force_two_ramp | Force_one_ramp

(* One Ceff fixed point: c = compute (table_ramp_time c), solved on the
   bracket (0, Ctot].  [obs] observes the solve as a ["ceff.solve"] span
   (stage/iterations/converged args), a ["ceff.iterations_run"] counter,
   convergence counters, and — when enabled — the normalized iterate
   trajectory as a ["ceff.trajectory_f"] histogram.  The solver call is
   bit-identical when [obs] is disabled: the trajectory hook is only
   installed on an enabled sink, and it never perturbs solver state. *)
let iterate ?(obs = Obs.null) ?(stage = "ceff") ~cell ~edge ~input_slew ~pade ~compute () =
  let ctot = Pade.total_cap pade in
  let tr_of c = Table.ramp_time cell ~edge ~slew:input_slew ~cap:c in
  let fp c = compute (tr_of c) in
  let t0 = Obs.start obs in
  let r =
    if Obs.enabled obs then
      Rlc_num.Rootfind.fixed_point_bracketed fp
        ~on_iter:(fun c -> Obs.observe obs "ceff.trajectory_f" (c /. ctot))
        ~lo:(1e-4 *. ctot) ~hi:ctot ~init:ctot ~rel_tol:1e-6 ~max_iter:120
    else
      Rlc_num.Rootfind.fixed_point_bracketed fp ~lo:(1e-4 *. ctot) ~hi:ctot ~init:ctot
        ~rel_tol:1e-6 ~max_iter:120
  in
  if Obs.enabled obs then begin
    Obs.finish obs
      ~args:
        [
          ("stage", stage);
          ("iterations", string_of_int r.Rlc_num.Rootfind.iterations);
          ("converged", string_of_bool r.Rlc_num.Rootfind.converged);
        ]
      "ceff.solve" t0;
    Obs.add obs "ceff.iterations_run" r.Rlc_num.Rootfind.iterations;
    Obs.incr obs (if r.Rlc_num.Rootfind.converged then "ceff.converged" else "ceff.unconverged")
  end;
  { value = r.Rlc_num.Rootfind.value; ramp = tr_of r.value; iterations = r.iterations;
    converged = r.converged }

let single_ceff ?obs ?stage ~cell ~edge ~input_slew ~pade ~f () =
  iterate ?obs ?stage ~cell ~edge ~input_slew ~pade
    ~compute:(fun tr -> Ceff.first_ramp pade ~f ~tr)
    ()

(* Offset from waveform start to the 50% crossing of a two-ramp shape
   (with an optional flat step of [hold] seconds after the breakpoint). *)
let offset_to_half ~f ~tr1 ~tr2 ~hold =
  if f >= 0.5 then 0.5 *. tr1 else (f *. tr1) +. hold +. ((0.5 -. f) *. tr2)

(* Gate-resistor tail (reference [11]): tangency point of the table ramp
   with an exponential of time constant tau = Rs * Ctot.  Only meaningful
   when the tangency lies above the 50% anchor. *)
let tail_of ~vdd ~tr ~rs ~ctot =
  let tau = rs *. ctot in
  let slope = vdd /. tr in
  let v_switch = vdd -. (slope *. tau) in
  if v_switch > 0.5 *. vdd && tau > 0. then
    Some { t_switch = v_switch /. slope; v_switch; tau }
  else None

let tail_pwl ~t0 ~vdd ~tail =
  let base = [ (t0, 0.); (t0 +. tail.t_switch, tail.v_switch) ] in
  let knots = [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.5; 6.5 ] in
  let exp_pts =
    List.map
      (fun k ->
        ( t0 +. tail.t_switch +. (k *. tail.tau),
          vdd -. ((vdd -. tail.v_switch) *. Float.exp (-.k)) ))
      knots
  in
  let final = (t0 +. tail.t_switch +. (9. *. tail.tau), vdd) in
  Pwl.of_points (base @ exp_pts @ [ final ])

let model_pade ?(obs = Obs.null) ?(mode = Auto) ?(plateau = Stretch_tr2) ?(rc_tail = false)
    ?thresholds ~cell ~edge ~input_slew ~pade ~line ~cl () =
  if input_slew <= 0. then invalid_arg "Driver_model.model: input_slew must be positive";
  if cl < 0. then invalid_arg "Driver_model.model: cl must be non-negative";
  let vdd = cell.Table.vdd in
  let ctot = Pade.total_cap pade in
  let rs = Table.fitted_rs cell ~edge ~slew:input_slew ~cap:ctot in
  let z0 = Line.z0 line and tf = Line.time_of_flight line in
  (* Eq. 1; the clamp only guards pathological near-zero fitted Rs. *)
  let f = Float.min 0.98 (z0 /. (z0 +. rs)) in
  let ceff1 = single_ceff ~obs ~stage:"ceff1" ~cell ~edge ~input_slew ~pade ~f () in
  let screen = Screen.evaluate ?thresholds ~line ~cl ~rs ~tr1:ceff1.ramp () in
  let use_two_ramp =
    match mode with
    | Auto -> screen.Screen.significant
    | Force_two_ramp -> true
    | Force_one_ramp -> false
  in
  if use_two_ramp then begin
    let ceff2 =
      iterate ~obs ~stage:"ceff2" ~cell ~edge ~input_slew ~pade
        ~compute:(fun tr -> Ceff.second_ramp pade ~f ~tr1:ceff1.ramp ~tr2:tr)
        ()
    in
    let plateau_time = Float.max 0. ((2. *. tf) -. ceff1.ramp) in
    let delay_50 = Table.delay cell ~edge ~slew:input_slew ~cap:ceff1.value in
    let tr1 = ceff1.ramp in
    let tr2_new, hold =
      match plateau with
      | Stretch_tr2 ->
          (* Eq. 8: no charge transfer during the plateau; shift where the
             second ramp completes. *)
          (ceff2.ramp +. (plateau_time /. (1. -. f)), 0.)
      | Flat_step -> (ceff2.ramp, plateau_time)
    in
    let t0 = delay_50 -. offset_to_half ~f ~tr1 ~tr2:tr2_new ~hold in
    let pwl =
      if hold > 1e-15 then
        Pwl.of_points
          [
            (t0, 0.);
            (t0 +. (f *. tr1), f *. vdd);
            (t0 +. (f *. tr1) +. hold, f *. vdd);
            (t0 +. (f *. tr1) +. hold +. ((1. -. f) *. tr2_new), vdd);
          ]
      else Pwl.two_ramp ~t0 ~vdd ~f ~tr1 ~tr2:tr2_new
    in
    {
      shape = Two_ramp { ceff1; ceff2; tr2_new; plateau = plateau_time; plateau_mode = plateau };
      f;
      rs;
      z0;
      tf;
      pade;
      screen;
      delay_50;
      vdd;
      pwl;
    }
  end
  else begin
    (* RC-like: one effective capacitance equating charge over the whole
       transition (f = 1). *)
    let ceff = single_ceff ~obs ~stage:"ceff_f1" ~cell ~edge ~input_slew ~pade ~f:1.0 () in
    let delay_50 = Table.delay cell ~edge ~slew:input_slew ~cap:ceff.value in
    let t0 = delay_50 -. (0.5 *. ceff.ramp) in
    let tail = if rc_tail then tail_of ~vdd ~tr:ceff.ramp ~rs ~ctot else None in
    let pwl =
      match tail with
      | Some tail -> tail_pwl ~t0 ~vdd ~tail
      | None -> Pwl.ramp ~t0 ~v0:0. ~v1:vdd ~transition:ceff.ramp
    in
    { shape = One_ramp { ceff; tail }; f = 1.0; rs; z0; tf; pade; screen; delay_50; vdd; pwl }
  end

let model ?obs ?mode ?plateau ?rc_tail ?thresholds ~cell ~edge ~input_slew ~line ~cl () =
  let pade = Pade.fit (Moments.of_line ~order:5 line ~cl) in
  model_pade ?obs ?mode ?plateau ?rc_tail ?thresholds ~cell ~edge ~input_slew ~pade ~line ~cl
    ()

let total_iterations t =
  match t.shape with
  | One_ramp { ceff; _ } -> ceff.iterations
  | Two_ramp { ceff1; ceff2; _ } -> ceff1.iterations + ceff2.iterations

let single_ceff_variant t ~cell ~edge ~input_slew ~f =
  single_ceff ~cell ~edge ~input_slew ~pade:t.pade ~f ()

let transition_end t = Pwl.end_time t.pwl

let output_waveform ?(n = 512) ?t_end t =
  let t_end =
    match t_end with
    | Some te -> te
    | None -> transition_end t +. (0.2 *. (transition_end t -. fst (List.hd (Pwl.points t.pwl))))
  in
  Pwl.to_waveform ~n ~t_end t.pwl

let model_delay t = t.delay_50

let model_slew_10_90 t =
  let w = output_waveform ~n:1024 t in
  match Measure.slew_10_90 w ~vdd:t.vdd ~edge:Measure.Rising with
  | Some s -> s
  | None -> invalid_arg "Driver_model.model_slew_10_90: waveform incomplete"

let pp fmt t =
  let ps x = Rlc_num.Units.in_ps x and ff x = Rlc_num.Units.in_ff x in
  match t.shape with
  | One_ramp { ceff; tail } ->
      Format.fprintf fmt
        "one-ramp<Ceff=%.1f fF, Tr=%.1f ps, delay=%.1f ps, Rs=%.1f Ohm, Z0=%.1f Ohm%s>"
        (ff ceff.value) (ps ceff.ramp) (ps t.delay_50) t.rs t.z0
        (match tail with
        | Some tl -> Printf.sprintf ", rc-tail tau=%.1f ps" (ps tl.tau)
        | None -> "")
  | Two_ramp { ceff1; ceff2; tr2_new; plateau; _ } ->
      Format.fprintf fmt
        "two-ramp<f=%.2f, Ceff1=%.1f fF (Tr1=%.1f ps), Ceff2=%.1f fF (Tr2=%.1f ps, \
         Tr2'=%.1f ps), plateau=%.1f ps, delay=%.1f ps, Rs=%.1f Ohm, Z0=%.1f Ohm>"
        t.f (ff ceff1.value) (ps ceff1.ramp) (ff ceff2.value) (ps ceff2.ramp) (ps tr2_new)
        (ps plateau) (ps t.delay_50) t.rs t.z0
