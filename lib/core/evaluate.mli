(** Model-vs-reference scoring for one experiment case.

    Runs the transistor-level reference once, then the model in three modes —
    Auto (screened), forced two-ramp, forced one-ramp — and reports delay and
    10–90 slew for each, measured identically (DESIGN.md §4).  This is the
    row generator behind Table 1 and Figure 7. *)

module Line = Rlc_tline.Line

type case = {
  label : string;
  tech : Rlc_devices.Tech.t;
  size : float;  (** driver X multiplier *)
  input_slew : float;  (** seconds *)
  line : Line.t;
  cl : float;  (** far-end load, farads *)
}

val case :
  ?tech:Rlc_devices.Tech.t ->
  ?cl:float ->
  label:string ->
  length_mm:float ->
  width_um:float ->
  size:float ->
  input_slew_ps:float ->
  unit ->
  case
(** Case from geometry via the parasitics substrate (paper-calibrated values
    when the geometry is one the paper quotes).  Default [cl] is the input
    capacitance of a 10X receiver; default technology {!Rlc_devices.Tech.c018}. *)

type metrics = { delay : float; slew : float }

type comparison = {
  case_ : case;
  reference : metrics;  (** transistor-level near-end measurement *)
  auto_model : Driver_model.t;
  auto : metrics;
  two_ramp_model : Driver_model.t;
  two_ramp : metrics;  (** Eq. 8 plateau stretch (the paper's default) *)
  two_ramp_flat_model : Driver_model.t;
  two_ramp_flat : metrics;
      (** the paper's alternative plateau treatment: explicit flat step *)
  one_ramp_model : Driver_model.t;
  one_ramp : metrics;
}

val metrics_of_model : Driver_model.t -> metrics

val run :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?n_segments:int ->
  case ->
  comparison
(** [dt] defaults to 0.5 ps for sweep throughput (the paper-named figure
    cases pass 0.25 ps explicitly).  [obs] is forwarded to the reference
    simulation and the driver models; [adaptive] switches the reference
    transient to LTE-controlled stepping. *)

val delay_err_pct : comparison -> metrics -> float
val slew_err_pct : comparison -> metrics -> float

type far_comparison = {
  far_reference : metrics;  (** far end of the transistor-level run *)
  far_model : metrics;  (** far end of the model-PWL replay *)
  near_model_wave : Reference.Waveform.t;
  far_model_wave : Reference.Waveform.t;
}

val run_far :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?n_segments:int ->
  case ->
  Driver_model.t ->
  far_comparison
(** Step 5 of the paper's flow: replace the driver by the modeled waveform
    and compare far-end timing against the reference (Figure 6 right). *)

val pp_comparison : Format.formatter -> comparison -> unit
