type paper_row = {
  row_label : string;
  length_mm : float;
  width_um : float;
  size : float;
  slew_ps : float;
  paper_delay_ps : float;
  paper_delay_2r_err : float;
  paper_delay_1r_err : float;
  paper_slew_ps : float;
  paper_slew_2r_err : float;
  paper_slew_1r_err : float;
}

let row ~len ~wid ~size ~slew ~d ~d2 ~d1 ~s ~s2 ~s1 =
  {
    row_label = Printf.sprintf "%g/%g %gx s%g" len wid size slew;
    length_mm = len;
    width_um = wid;
    size;
    slew_ps = slew;
    paper_delay_ps = d;
    paper_delay_2r_err = d2;
    paper_delay_1r_err = d1;
    paper_slew_ps = s;
    paper_slew_2r_err = s2;
    paper_slew_1r_err = s1;
  }

(* Table 1 of the paper, verbatim. *)
let table1 =
  [
    row ~len:3. ~wid:0.8 ~size:75. ~slew:50. ~d:25.01 ~d2:(-3.2) ~d1:65.1 ~s:124.1 ~s2:4.6 ~s1:(-50.4);
    row ~len:3. ~wid:1.2 ~size:75. ~slew:50. ~d:26.44 ~d2:(-3.1) ~d1:112.9 ~s:128.9 ~s2:9.4 ~s1:(-28.7);
    row ~len:3. ~wid:1.6 ~size:75. ~slew:50. ~d:32.15 ~d2:(-6.9) ~d1:105.5 ~s:135.4 ~s2:9.8 ~s1:(-17.2);
    row ~len:4. ~wid:0.8 ~size:75. ~slew:50. ~d:25.02 ~d2:2.7 ~d1:56.2 ~s:157.3 ~s2:3.6 ~s1:(-63.5);
    row ~len:4. ~wid:1.2 ~size:75. ~slew:50. ~d:26.51 ~d2:4.4 ~d1:122.9 ~s:164.4 ~s2:8.8 ~s1:(-40.6);
    row ~len:4. ~wid:1.6 ~size:75. ~slew:50. ~d:32.69 ~d2:(-7.6) ~d1:129.1 ~s:175.0 ~s2:12.0 ~s1:(-25.3);
    row ~len:5. ~wid:1.2 ~size:100. ~slew:100. ~d:36.43 ~d2:(-2.2) ~d1:27.3 ~s:192.8 ~s2:(-9.9) ~s1:(-68.8);
    row ~len:5. ~wid:1.6 ~size:100. ~slew:100. ~d:39.56 ~d2:(-4.7) ~d1:33.9 ~s:200.3 ~s2:1.85 ~s1:(-64.1);
    row ~len:5. ~wid:2.0 ~size:100. ~slew:100. ~d:42.53 ~d2:(-7.1) ~d1:48.3 ~s:207.6 ~s2:9.0 ~s1:(-56.2);
    row ~len:5. ~wid:2.5 ~size:100. ~slew:100. ~d:45.26 ~d2:(-6.3) ~d1:72.7 ~s:212.2 ~s2:9.2 ~s1:(-42.9);
    row ~len:6. ~wid:1.2 ~size:100. ~slew:100. ~d:36.44 ~d2:1.5 ~d1:27.6 ~s:222.7 ~s2:(-8.5) ~s1:(-73.0);
    row ~len:6. ~wid:1.6 ~size:100. ~slew:100. ~d:39.58 ~d2:(-0.7) ~d1:32.3 ~s:232.0 ~s2:1.5 ~s1:(-69.5);
    row ~len:6. ~wid:2.0 ~size:100. ~slew:100. ~d:42.55 ~d2:(-2.7) ~d1:42.8 ~s:240.9 ~s2:5.7 ~s1:(-64.1);
    row ~len:6. ~wid:2.5 ~size:100. ~slew:100. ~d:45.29 ~d2:1.3 ~d1:65.9 ~s:246.3 ~s2:12.4 ~s1:(-53.6);
    row ~len:6. ~wid:3.0 ~size:100. ~slew:100. ~d:49.41 ~d2:(-3.2) ~d1:105.2 ~s:261.7 ~s2:14.2 ~s1:(-35.6);
  ]

let case_of_row r =
  Evaluate.case ~label:r.row_label ~length_mm:r.length_mm ~width_um:r.width_um ~size:r.size
    ~input_slew_ps:r.slew_ps ()

let mk label len wid size slew =
  Evaluate.case ~label ~length_mm:len ~width_um:wid ~size ~input_slew_ps:slew ()

let fig1 = mk "fig1 5/1.6 75x s100" 5. 1.6 75. 100.
let fig3 = mk "fig3 7/1.6 75x s100" 7. 1.6 75. 100.
let fig5a = mk "fig5a 3/1.2 75x s75" 3. 1.2 75. 75.
let fig5b = mk "fig5b 5/1.6 100x s100" 5. 1.6 100. 100.
let fig6_left = mk "fig6L 4/1.6 25x s100" 4. 1.6 25. 100.
let fig6_right = mk "fig6R 4/0.8 75x s50" 4. 0.8 75. 50.

let sweep_cases () =
  let lengths = [ 1.; 2.; 3.; 4.; 5.; 6.; 7. ] in
  let widths = [ 0.8; 1.2; 1.6; 2.0; 2.5; 3.0; 3.5 ] in
  let sizes = [ 25.; 50.; 75.; 100.; 125. ] in
  let slews = [ 50.; 100.; 150.; 200. ] in
  List.concat_map
    (fun len ->
      List.concat_map
        (fun wid ->
          List.concat_map
            (fun size ->
              List.map
                (fun slew ->
                  mk (Printf.sprintf "%g/%g %gx s%g" len wid size slew) len wid size slew)
                slews)
            sizes)
        widths)
    lengths

type sweep_point = {
  point_case : Evaluate.case;
  screen : Screen.verdict;
  ref_delay : float;
  ref_slew : float;
  model_delay : float;
  model_slew : float;
  delay_err_pct : float;
  slew_err_pct : float;
  flat_delay_err_pct : float;
  flat_slew_err_pct : float;
}

type error_stats = {
  avg_abs_delay_err : float;
  avg_abs_slew_err : float;
  delay_within_5 : float;
  delay_within_10 : float;
  slew_within_5 : float;
  slew_within_10 : float;
}

type sweep_stats = {
  n_swept : int;
  n_inductive : int;
  points : sweep_point list;
  stretch : error_stats;
  flat : error_stats;
}

let stats_of_points ~delay ~slew points =
  let fn = Float.max 1. (float_of_int (List.length points)) in
  let avg f = List.fold_left (fun acc p -> acc +. Float.abs (f p)) 0. points /. fn in
  let frac_within limit f =
    100.
    *. float_of_int (List.length (List.filter (fun p -> Float.abs (f p) < limit) points))
    /. fn
  in
  {
    avg_abs_delay_err = avg delay;
    avg_abs_slew_err = avg slew;
    delay_within_5 = frac_within 5. delay;
    delay_within_10 = frac_within 10. delay;
    slew_within_5 = frac_within 5. slew;
    slew_within_10 = frac_within 10. slew;
  }

let model_only (case : Evaluate.case) =
  let cell =
    match Rlc_liberty.Characterize.cell_res case.Evaluate.tech ~size:case.Evaluate.size with
    | Ok c -> c
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
    ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()

let effective_jobs jobs = Int.max 1 (Int.min jobs (Rlc_parallel.Pool.default_jobs ()))

let run_sweep ?(obs = Rlc_obs.Obs.null) ?(dt = 0.5e-12) ?adaptive ?(jobs = 1)
    ?(progress = fun _ _ -> ()) cases =
  let module Obs = Rlc_obs.Obs in
  let module Pool = Rlc_parallel.Pool in
  (* Never oversubscribe: more domains than cores only adds scheduler
     churn, so the requested fan-out is capped at the machine's
     recommendation.  Results are order-stable either way. *)
  let jobs = effective_jobs jobs in
  let case_arr = Array.of_list cases in
  Pool.with_pool ~obs ~jobs @@ fun pool ->
  (* Cheap pass: model + screen only; expensive reference runs are reserved
     for the inductive survivors, as in the paper's 165-case figure.  Both
     passes go through [Pool.map], whose result array is in submission
     order, so the sweep's points (and hence its statistics) are identical
     for every [jobs] value.  Cell characterization behind [model_only] is
     memoized under a mutex, so the workers share one table. *)
  let screen_t0 = Obs.start obs in
  let screened =
    Pool.map pool (Array.length case_arr) (fun i ->
        let c = case_arr.(i) in
        match model_only c with
        | m -> m.Driver_model.screen.Screen.significant
        | exception _ -> false)
  in
  Obs.finish obs
    ~args:[ ("cases", string_of_int (Array.length case_arr)) ]
    "sweep.screen" screen_t0;
  let inductive =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if screened.(i) then Some case_arr.(i) else None)
         (Seq.init (Array.length case_arr) Fun.id))
  in
  let total = Array.length inductive in
  (* [progress] sees a monotone completed-count (atomic), not the case
     index: under parallel execution cases finish out of order, and the
     callback may fire concurrently from several domains. *)
  let completed = Atomic.make 0 in
  let points_arr =
    Pool.map pool total (fun i ->
        let case = inductive.(i) in
        let cmp =
          Obs.time obs ~args:[ ("case", case.Evaluate.label) ] "sweep.case" (fun () ->
              Evaluate.run ~obs ~dt ?adaptive case)
        in
        progress (Atomic.fetch_and_add completed 1 + 1) total;
        {
          point_case = case;
          screen = cmp.Evaluate.two_ramp_model.Driver_model.screen;
          ref_delay = cmp.Evaluate.reference.Evaluate.delay;
          ref_slew = cmp.Evaluate.reference.Evaluate.slew;
          model_delay = cmp.Evaluate.two_ramp.Evaluate.delay;
          model_slew = cmp.Evaluate.two_ramp.Evaluate.slew;
          delay_err_pct = Evaluate.delay_err_pct cmp cmp.Evaluate.two_ramp;
          slew_err_pct = Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp;
          flat_delay_err_pct = Evaluate.delay_err_pct cmp cmp.Evaluate.two_ramp_flat;
          flat_slew_err_pct = Evaluate.slew_err_pct cmp cmp.Evaluate.two_ramp_flat;
        })
  in
  let points = Array.to_list points_arr in
  if Obs.enabled obs then begin
    Obs.add obs "sweep.cases" (Array.length case_arr);
    Obs.add obs "sweep.inductive" total
  end;
  {
    n_swept = Array.length case_arr;
    n_inductive = List.length points;
    points;
    stretch =
      stats_of_points ~delay:(fun p -> p.delay_err_pct) ~slew:(fun p -> p.slew_err_pct) points;
    flat =
      stats_of_points
        ~delay:(fun p -> p.flat_delay_err_pct)
        ~slew:(fun p -> p.flat_slew_err_pct)
        points;
  }

let paper_fig7_stats =
  [
    ("inductive cases", 165.);
    ("avg |delay err| %", 6.);
    ("avg |slew err| %", 11.1);
    ("delay err < 5% (% of cases)", 48.);
    ("delay err < 10% (% of cases)", 83.);
    ("slew err < 5% (% of cases)", 31.);
    ("slew err < 10% (% of cases)", 61.);
  ]
