module Line = Rlc_tline.Line
module Measure = Rlc_waveform.Measure
module Characterize = Rlc_liberty.Characterize
module Inverter = Rlc_devices.Inverter

type case = {
  label : string;
  tech : Rlc_devices.Tech.t;
  size : float;
  input_slew : float;
  line : Line.t;
  cl : float;
}

let case ?(tech = Rlc_devices.Tech.c018) ?cl ~label ~length_mm ~width_um ~size ~input_slew_ps
    () =
  let cl =
    match cl with
    | Some c -> c
    | None -> Inverter.input_cap (Inverter.make tech ~size:10.)
  in
  let geom = Rlc_parasitics.Extract.geometry ~length_mm ~width_um in
  {
    label;
    tech;
    size;
    input_slew = Rlc_num.Units.ps input_slew_ps;
    line = Rlc_parasitics.Extract.line_of geom;
    cl;
  }

type metrics = { delay : float; slew : float }

type comparison = {
  case_ : case;
  reference : metrics;
  auto_model : Driver_model.t;
  auto : metrics;
  two_ramp_model : Driver_model.t;
  two_ramp : metrics;
  two_ramp_flat_model : Driver_model.t;
  two_ramp_flat : metrics;
  one_ramp_model : Driver_model.t;
  one_ramp : metrics;
}

let metrics_of_model m =
  { delay = Driver_model.model_delay m; slew = Driver_model.model_slew_10_90 m }

let run ?obs ?(dt = 0.5e-12) ?adaptive ?n_segments case =
  let cell =
    match Characterize.cell_res case.tech ~size:case.size with
    | Ok c -> c
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let ref_run =
    Reference.simulate ?obs ~dt ?adaptive ?n_segments ~tech:case.tech ~size:case.size
      ~input_slew:case.input_slew ~line:case.line ~cl:case.cl ()
  in
  let reference = { delay = Reference.near_delay ref_run; slew = Reference.near_slew ref_run } in
  let build ?plateau mode =
    Driver_model.model ?obs ~mode ?plateau ~cell ~edge:Measure.Rising
      ~input_slew:case.input_slew ~line:case.line ~cl:case.cl ()
  in
  let auto_model = build Driver_model.Auto in
  let two_ramp_model = build Driver_model.Force_two_ramp in
  let two_ramp_flat_model = build ~plateau:Driver_model.Flat_step Driver_model.Force_two_ramp in
  let one_ramp_model = build Driver_model.Force_one_ramp in
  {
    case_ = case;
    reference;
    auto_model;
    auto = metrics_of_model auto_model;
    two_ramp_model;
    two_ramp = metrics_of_model two_ramp_model;
    two_ramp_flat_model;
    two_ramp_flat = metrics_of_model two_ramp_flat_model;
    one_ramp_model;
    one_ramp = metrics_of_model one_ramp_model;
  }

let delay_err_pct c m = Measure.pct_error ~actual:c.reference.delay ~model:m.delay
let slew_err_pct c m = Measure.pct_error ~actual:c.reference.slew ~model:m.slew

type far_comparison = {
  far_reference : metrics;
  far_model : metrics;
  near_model_wave : Reference.Waveform.t;
  far_model_wave : Reference.Waveform.t;
}

let run_far ?obs ?(dt = 0.5e-12) ?adaptive ?n_segments case model =
  let ref_run =
    Reference.simulate ?obs ~dt ?adaptive ?n_segments ~tech:case.tech ~size:case.size
      ~input_slew:case.input_slew ~line:case.line ~cl:case.cl ()
  in
  let far_reference = { delay = Reference.far_delay ref_run; slew = Reference.far_slew ref_run } in
  let near_w, far_w =
    Reference.replay_pwl ?obs ~dt ?adaptive ?n_segments ~pwl:model.Driver_model.pwl
      ~line:case.line ~cl:case.cl ()
  in
  let vdd = case.tech.Rlc_devices.Tech.vdd in
  (* Model axis: t = 0 is the input 50% crossing, so crossing times ARE
     delays. *)
  let far_delay = Measure.t_frac_exn far_w ~vdd ~edge:Measure.Rising ~frac:0.5 in
  let far_slew =
    match Measure.slew_10_90 far_w ~vdd ~edge:Measure.Rising with
    | Some s -> s
    | None -> invalid_arg "Evaluate.run_far: replayed far end incomplete"
  in
  {
    far_reference;
    far_model = { delay = far_delay; slew = far_slew };
    near_model_wave = near_w;
    far_model_wave = far_w;
  }

let pp_comparison fmt c =
  let ps = Rlc_num.Units.in_ps in
  Format.fprintf fmt
    "%s: ref %.2f/%.1f ps; 2-ramp %.2f/%.1f ps (%+.1f%%/%+.1f%%); 1-ramp %.2f/%.1f ps \
     (%+.1f%%/%+.1f%%)%s"
    c.case_.label (ps c.reference.delay) (ps c.reference.slew) (ps c.two_ramp.delay)
    (ps c.two_ramp.slew) (delay_err_pct c c.two_ramp) (slew_err_pct c c.two_ramp)
    (ps c.one_ramp.delay) (ps c.one_ramp.slew) (delay_err_pct c c.one_ramp)
    (slew_err_pct c c.one_ramp)
    (if c.auto_model.Driver_model.screen.Screen.significant then " [inductive]" else " [RC]")
