(** The paper's driver output model (Sections 3–5): the full modeling flow
    from (cell table, line parasitics, load) to a one- or two-ramp output
    waveform.

    Flow (paper Section 5):
    + fit the driving-point admittance moments (Eq. 3);
    + fit the driver on-resistance from the characterized tables at total
      capacitance and compute the breakpoint [f = Z0/(Z0 + Rs)] (Eq. 1);
    + iterate Ceff1 against the cell table to convergence -> [Tr1]
      (Eqs. 4/5);
    + screen inductance significance (Eq. 9) using [Tr1];
    + if significant: iterate Ceff2 -> [Tr2] (Eqs. 6/7), stretch it for the
      plateau [Tr2' = Tr2 + (2 tf - Tr1)/(1 - f)] (Eq. 8), and emit the
      two-ramp waveform; otherwise re-iterate a single Ceff with [f = 1] and
      emit one ramp.

    The model waveform lives on an absolute time axis whose origin is the
    {e input} 50 % crossing; its 50 % crossing equals the table delay at the
    governing effective capacitance, so delay and slew can be measured on it
    exactly like on a simulated waveform. *)

module Table = Rlc_liberty.Table
module Line = Rlc_tline.Line
module Pade = Rlc_moments.Pade
module Pwl = Rlc_waveform.Pwl
module Waveform = Rlc_waveform.Waveform

type iteration = { value : float; ramp : float; iterations : int; converged : bool }
(** One converged Ceff fixed point: the capacitance, its table ramp time,
    and solver diagnostics. *)

type plateau_mode =
  | Stretch_tr2
      (** Eq. 8: absorb the plateau by shifting where the second ramp
          completes — the paper's recommended treatment ("works better when
          the plateau smears out", the common case). *)
  | Flat_step
      (** the paper's alternative: insert an explicit flat step of duration
          [2 tf - Tr1] between the two ramps (better when a clearly flat
          plateau exists). *)

type rc_tail = {
  t_switch : float;  (** time (from ramp start) where the tail takes over *)
  v_switch : float;  (** voltage at the tangency point *)
  tau : float;  (** [Rs * Ctot] *)
}
(** The gate-resistor tail of Qian/Pullela/Pillage (the paper's reference
    [11]), used when an RC-like load exhibits strong resistive shielding:
    the one-ramp output follows the table ramp up to the tangency point and
    then decays exponentially toward the supply with [tau = Rs Ctot]. *)

type shape =
  | One_ramp of { ceff : iteration; tail : rc_tail option }
  | Two_ramp of {
      ceff1 : iteration;
      ceff2 : iteration;
      tr2_new : float;  (** effective second ramp: Eq. 8 under
          [Stretch_tr2], the raw converged [Tr2] under [Flat_step] *)
      plateau : float;  (** [max 0 (2 tf - Tr1)] *)
      plateau_mode : plateau_mode;
    }

type t = {
  shape : shape;
  f : float;  (** voltage breakpoint (Eq. 1); 1.0 for one-ramp outputs *)
  rs : float;
  z0 : float;
  tf : float;
  pade : Pade.t;
  screen : Screen.verdict;
  delay_50 : float;  (** input 50 % -> modeled output 50 % *)
  vdd : float;
  pwl : Pwl.t;  (** the output waveform; t = 0 is the input 50 % crossing *)
}

type mode =
  | Auto  (** follow the Eq. 9 screen *)
  | Force_two_ramp  (** used by benches to tabulate both models everywhere *)
  | Force_one_ramp

val model :
  ?obs:Rlc_obs.Obs.t ->
  ?mode:mode ->
  ?plateau:plateau_mode ->
  ?rc_tail:bool ->
  ?thresholds:Screen.thresholds ->
  cell:Table.cell ->
  edge:Rlc_waveform.Measure.edge ->
  input_slew:float ->
  line:Line.t ->
  cl:float ->
  unit ->
  t
(** [plateau] defaults to {!Stretch_tr2} (Eq. 8).  [rc_tail] (default
    [false]) enables the gate-resistor exponential tail on one-ramp outputs
    when the tangency point falls above 50 % of the swing.

    [obs] (default disabled) records each Ceff fixed point as a
    ["ceff.solve"] span whose args carry the stage (["ceff1"], ["ceff2"],
    or ["ceff_f1"]), the iteration count, and the convergence flag;
    counters ["ceff.iterations_run"] / ["ceff.converged"] /
    ["ceff.unconverged"]; and the normalized iterate trajectory as the
    ["ceff.trajectory_f"] histogram.  Note ["ceff.iterations_run"] counts
    {e every} fixed point run, including the Ceff1 probe a one-ramp model
    discards, so it is an upper bound on {!total_iterations}. *)

val model_pade :
  ?obs:Rlc_obs.Obs.t ->
  ?mode:mode ->
  ?plateau:plateau_mode ->
  ?rc_tail:bool ->
  ?thresholds:Screen.thresholds ->
  cell:Table.cell ->
  edge:Rlc_waveform.Measure.edge ->
  input_slew:float ->
  pade:Pade.t ->
  line:Line.t ->
  cl:float ->
  unit ->
  t
(** Like {!model} but with the admittance fit supplied by the caller instead
    of being re-fitted from [line] — the cache-friendly entry point for a
    full-design flow, where the fit comes from an extracted SPEF tree
    ({!Rlc_moments.Pade.of_tree}) and identical bus-bit loads share one
    canonical [pade].  [line] only supplies the transmission-line quantities
    ([Z0], time of flight, total R/C) consumed by the breakpoint (Eq. 1) and
    the inductance screen (Eq. 9); for a non-uniform net pass its
    total-R/L/C equivalent line.  The model is a pure function of
    (cell, edge, input_slew, pade, line, cl), which is what makes results
    cacheable across repeated nets. *)

val total_iterations : t -> int
(** Ceff fixed-point iterations spent building this model (Ceff1 + Ceff2 for
    two-ramp shapes) — the cost a result cache avoids on a hit. *)

val single_ceff_variant : t -> cell:Table.cell -> edge:Rlc_waveform.Measure.edge ->
  input_slew:float -> f:float -> iteration
(** Re-run the single-Ceff iteration of an existing model at another charge
    fraction ([f = 0.5] and [f = 1.0] reproduce the two curves of the
    paper's Figure 3). *)

val output_waveform : ?n:int -> ?t_end:float -> t -> Waveform.t
(** Sample the model PWL (normalized rising 0 -> vdd). *)

val model_delay : t -> float
(** = [delay_50]. *)

val model_slew_10_90 : t -> float
(** Measured on the PWL geometry. *)

val transition_end : t -> float
(** Time (on the model axis) at which the waveform completes. *)

val pp : Format.formatter -> t -> unit
