(** The paper's experiments, as data and runners.

    Every table and figure of the evaluation section is indexed here
    (DESIGN.md §5): the 15 Table 1 rows carry the paper's published HSPICE
    numbers and model errors so benches print paper-vs-reproduction side by
    side; the figure cases pin the exact geometries, drivers and input slews
    the captions quote; the Figure 7 sweep regenerates the error-statistics
    scatter over the paper's full parameter ranges. *)

type paper_row = {
  row_label : string;
  length_mm : float;
  width_um : float;
  size : float;
  slew_ps : float;
  paper_delay_ps : float;  (** HSPICE delay the paper measured *)
  paper_delay_2r_err : float;  (** % *)
  paper_delay_1r_err : float;
  paper_slew_ps : float;
  paper_slew_2r_err : float;
  paper_slew_1r_err : float;
}

val table1 : paper_row list
(** All 15 published rows. *)

val case_of_row : paper_row -> Evaluate.case

(* Figure cases (captions of the paper). *)

(** 5 mm x 1.6 µm, 75X (waveform morphology). *)
val fig1 : Evaluate.case

(** 7 mm x 1.6 µm, 75X, 100 ps (single-Ceff failure). *)
val fig3 : Evaluate.case

(** 3 mm x 1.2 µm, 75X, 75 ps. *)
val fig5a : Evaluate.case

(** 5 mm x 1.6 µm, 100X, 100 ps. *)
val fig5b : Evaluate.case

(** 4 mm x 1.6 µm, 25X, 100 ps (one ramp suffices). *)
val fig6_left : Evaluate.case

(** 4 mm x 0.8 µm, 75X, 50 ps (near + far end). *)
val fig6_right : Evaluate.case

(* Figure 7 sweep. *)

val sweep_cases : unit -> Evaluate.case list
(** Full grid: lengths 1–7 mm x widths 0.8–3.5 µm x drivers 25X–125X x
    input slews 50–200 ps (the ranges of Section 6). *)

type sweep_point = {
  point_case : Evaluate.case;
  screen : Screen.verdict;  (** margins, for threshold-sensitivity slicing *)
  ref_delay : float;
  ref_slew : float;
  model_delay : float;
  model_slew : float;
  delay_err_pct : float;
  slew_err_pct : float;
  flat_delay_err_pct : float;  (** flat-step plateau variant *)
  flat_slew_err_pct : float;
}

type error_stats = {
  avg_abs_delay_err : float;
  avg_abs_slew_err : float;
  delay_within_5 : float;  (** fraction of inductive cases, percent *)
  delay_within_10 : float;
  slew_within_5 : float;
  slew_within_10 : float;
}

type sweep_stats = {
  n_swept : int;  (** cases examined *)
  n_inductive : int;  (** cases passing the Eq. 9 screen *)
  points : sweep_point list;  (** one per inductive case *)
  stretch : error_stats;  (** Eq. 8 plateau treatment *)
  flat : error_stats;  (** flat-step plateau treatment *)
}

val stats_of_points :
  delay:(sweep_point -> float) -> slew:(sweep_point -> float) -> sweep_point list -> error_stats

val effective_jobs : int -> int
(** [max 1 (min requested (Pool.default_jobs ()))] — the fan-out
    {!run_sweep} actually uses.  Exposed so callers (CLI, bench) can report
    when a request was clamped. *)

val run_sweep :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?jobs:int ->
  ?progress:(int -> int -> unit) ->
  Evaluate.case list ->
  sweep_stats
(** Model every case (cheap), keep those the screen marks inductive, then
    reference-simulate and score only those — mirroring the paper's "165
    inductive cases".

    [adaptive] switches the reference transients to LTE-controlled stepping
    ([dt] is then unused by the engine).

    [jobs] (default 1) fans both passes out over an OCaml 5 domain pool;
    requests beyond the core count are clamped via {!effective_jobs}
    (oversubscription only slows the sweep down); results and statistics
    are identical for every [jobs] value (points stay in case order).  [progress] receives (completed, total) after each
    reference simulation; the completed count is monotone but, when
    [jobs > 1], the callback may be invoked concurrently from worker
    domains, so it must be thread-safe.

    [obs] (default disabled) records a ["sweep.screen"] span over the cheap
    pass, one ["sweep.case"] span (labelled by case) per reference-scored
    survivor, ["sweep.cases"] / ["sweep.inductive"] counters, and is
    forwarded to the pool, the reference engine, and the Ceff solves. *)

val paper_fig7_stats : (string * float) list
(** The paper's published Figure 7 statistics for side-by-side printing
    (average errors and error-bucket fractions, in percent). *)
