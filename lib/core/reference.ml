module Waveform = Rlc_waveform.Waveform
module Measure = Rlc_waveform.Measure
module Pwl = Rlc_waveform.Pwl
module Line = Rlc_tline.Line
module Ladder = Rlc_tline.Ladder
module Netlist = Rlc_circuit.Netlist
module Engine = Rlc_circuit.Engine
module Testbench = Rlc_devices.Testbench

type t = {
  input : Waveform.t;
  near : Waveform.t;
  far : Waveform.t;
  vdd : float;
  t_in50 : float;
}

let default_t_stop ~t0 ~input_slew ~line =
  t0 +. input_slew +. Float.max 2e-9 (20. *. Line.time_of_flight line)

let simulate ?obs ?(dt = 0.25e-12) ?t_stop ?adaptive ?n_segments ~tech ~size ~input_slew
    ~line ~cl () =
  let t0 = 30e-12 in
  let t_stop =
    match t_stop with Some t -> t | None -> default_t_stop ~t0 ~input_slew ~line
  in
  let far_ref = ref Netlist.ground in
  (* Only input/near/far are ever read back, so don't store the whole
     ladder's waveforms. *)
  let r =
    Testbench.drive ?obs ~dt ~t_stop ?adaptive ~t0 ~edge:Testbench.Rise
      ~record:(fun () -> [ !far_ref ])
      ~tech ~size ~input_slew
      ~load:(fun nl node -> Ladder.attach_load ?n_segments line ~cl nl node far_ref)
      ()
  in
  let far = Engine.voltage r.Testbench.engine !far_ref in
  let vdd = tech.Rlc_devices.Tech.vdd in
  let t_in50 =
    Measure.t_frac_exn r.Testbench.input ~vdd ~edge:Measure.Falling ~frac:0.5
  in
  { input = r.Testbench.input; near = r.Testbench.output; far; vdd; t_in50 }

let replay_pwl ?obs ?(dt = 0.25e-12) ?t_stop ?adaptive ?n_segments ?(reuse = true) ~pwl ~line
    ~cl () =
  (* Shift so the source starts after t = 0 (the engine's DC point must see
     the quiescent low state). *)
  let start = fst (List.hd (Pwl.points pwl)) in
  let shift = 10e-12 -. start in
  let pwl = Pwl.shift_time shift pwl in
  let t_stop =
    match t_stop with
    | Some t -> t
    | None -> Pwl.end_time pwl +. Float.max 1e-9 (10. *. Line.time_of_flight line)
  in
  let nl = Netlist.create () in
  let near = Netlist.node nl "near" in
  (* force_pwl declares every PWL point as a breakpoint, so the two-ramp
     kink and plateau are landed on exactly under adaptive stepping. *)
  Netlist.force_pwl nl near pwl;
  let far_ref = ref Netlist.ground in
  Ladder.attach_load ?n_segments line ~cl nl near far_ref;
  (* Ceff-model replays sweep many π/ladder loads of identical shape; the
     structure-keyed handle cache makes each after the first a restamp
     (values in, no compile/alloc) with bit-identical results.  [reuse:false]
     keeps the uncached path available for equivalence tests. *)
  let r =
    if reuse then
      Engine.Compiled.run ?obs ~record_nodes:[ near; !far_ref ] ?adaptive ~dt ~t_stop
        (Engine.Compiled.cached ?obs nl)
    else Engine.transient ?obs ~record_nodes:[ near; !far_ref ] ?adaptive ~dt ~t_stop nl
  in
  (* Undo the shift: return waveforms on the caller's PWL time axis. *)
  ( Waveform.shift_time (-.shift) (Engine.voltage r near),
    Waveform.shift_time (-.shift) (Engine.voltage r !far_ref) )

let near_delay t =
  match
    Measure.delay_50 ~input:t.input ~output:t.near ~vdd:t.vdd ~input_edge:Measure.Falling
      ~output_edge:Measure.Rising
  with
  | Some d -> d
  | None -> invalid_arg "Reference.near_delay: output never crossed 50%"

let near_slew t =
  match Measure.slew_10_90 t.near ~vdd:t.vdd ~edge:Measure.Rising with
  | Some s -> s
  | None -> invalid_arg "Reference.near_slew: output incomplete"

let far_delay t =
  match
    Measure.delay_50 ~input:t.input ~output:t.far ~vdd:t.vdd ~input_edge:Measure.Falling
      ~output_edge:Measure.Rising
  with
  | Some d -> d
  | None -> invalid_arg "Reference.far_delay: far end never crossed 50%"

let far_slew t =
  match Measure.slew_10_90 t.far ~vdd:t.vdd ~edge:Measure.Rising with
  | Some s -> s
  | None -> invalid_arg "Reference.far_slew: far end incomplete"
