(** Reference ("HSPICE substitute") simulations.

    Two circuits back every experiment:
    - {!simulate}: transistor-level inverter driving the discretized line —
      the ground truth the model is scored against;
    - {!replay_pwl}: the modeled one-/two-ramp waveform as an ideal source
      driving the same line — step 5 of the paper's flow, used to validate
      the far-end response of the model (Figure 6 right). *)

module Waveform = Rlc_waveform.Waveform
module Line = Rlc_tline.Line

type t = {
  input : Waveform.t;
  near : Waveform.t;  (** driver output = line driving point *)
  far : Waveform.t;
  vdd : float;
  t_in50 : float;  (** absolute time of the input 50 % crossing *)
}

val default_t_stop : t0:float -> input_slew:float -> line:Line.t -> float
(** The default simulation window of {!simulate}:
    [t0 + input_slew + max(2 ns, 20 tf)], where [tf] is the line's time of
    flight — wide enough that the slowest Table-1 ramp settles and far-end
    50 %/90 % crossings always exist. *)

val simulate :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?t_stop:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?n_segments:int ->
  tech:Rlc_devices.Tech.t ->
  size:float ->
  input_slew:float ->
  line:Line.t ->
  cl:float ->
  unit ->
  t
(** Rising-output bench: falling input ramp, inverter of the given size,
    ladder, load cap.  Defaults: [dt = 0.25 ps],
    [t_stop = 30 ps + slew + max(2 ns, 20 tf)].  [adaptive] switches the
    engine to LTE-controlled stepping ([dt] is then unused); the returned
    waveforms sit on the adaptive grid. *)

val replay_pwl :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?t_stop:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?n_segments:int ->
  ?reuse:bool ->
  pwl:Rlc_waveform.Pwl.t ->
  line:Line.t ->
  cl:float ->
  unit ->
  Waveform.t * Waveform.t
(** [(near, far)] for the ideal-source replay, on the {e same time axis as
    the input PWL} (for a {!Driver_model} waveform: t = 0 at the input 50 %
    crossing), so model far-end measurements compare directly against
    {!far_delay} of a transistor-level run.

    [reuse] (default [true]) routes the replay through the domain-local
    {!Rlc_circuit.Engine.Compiled.cached} handle cache: same-shape ladder
    replays after the first restamp values into the compiled structure
    instead of recompiling.  Results are bit-identical either way; pass
    [~reuse:false] to force a fresh compile per call. *)

(* Measurements (conventions of DESIGN.md §4, all on the rising edge). *)

val near_delay : t -> float
(** Input 50 % -> driver output 50 %. *)

val near_slew : t -> float
(** 10–90 at the driver output. *)

val far_delay : t -> float
val far_slew : t -> float
