(** Cell characterization: generate NLDM tables with the circuit engine.

    This plays the role of the foundry's SPICE characterization runs — each
    grid point is one transient of (ramp input -> inverter -> pure
    capacitance), measured with the shared {!Rlc_waveform.Measure}
    conventions.  Results are memoized per (technology, size, grid) because
    the effective-capacitance iterations hit the same cell repeatedly. *)

type grid = {
  slews : float array;  (** input transitions, seconds *)
  caps : float array;  (** load capacitances, farads *)
}

val default_grid : grid
(** 7 slews (20–300 ps) x 8 caps (20 fF – 3.2 pF), covering the paper's
    sweep (input slews 50–200 ps, line caps 0.2–1.8 pF). *)

val cell_res :
  ?obs:Rlc_obs.Obs.t ->
  ?grid:grid ->
  Rlc_devices.Tech.t ->
  size:float ->
  (Table.cell, Rlc_errors.Error.t) result
(** Characterize both output arcs of an inverter of the given size.
    Results are memoized in a per-(technology, grid) size-indexed store
    shared across domains; repeated calls are free, and a sizing sweep over
    N candidate sizes pays for each size exactly once.  [obs] bumps
    ["char.hits"] / ["char.misses"] / ["char.stores"] counters (the same
    totals are always available via {!stats}).  The user-reachable exits
    are typed: a non-positive size is {!Rlc_errors.Error.Bad_request},
    a grid point whose waveform never completes is
    {!Rlc_errors.Error.Internal}. *)

val stats : unit -> int * int * int
(** [(hits, misses, stores)] of the characterization memo since start,
    summed over every technology, grid, and domain.  [stores <= misses];
    the gap is concurrent domains racing to characterize the same cell
    (first insert wins). *)

val sizes : ?grid:grid -> Rlc_devices.Tech.t -> float list
(** The driver sizes already characterized for this (technology, grid),
    ascending.  Lets a sweep report its table-reuse footprint. *)

val clear_cache : unit -> unit

val characterize_point_res :
  Rlc_devices.Tech.t -> size:float -> edge:Rlc_devices.Testbench.edge ->
  input_slew:float -> cap:float -> (float * float * float * float, Rlc_errors.Error.t) result
(** One grid point: [(delay_50, slew_10_90, slew_20_80, tail_50_90)].
    Exposed so tests can compare table lookups against direct simulation. *)
