open Rlc_devices
open Rlc_waveform

type grid = { slews : float array; caps : float array }

let default_grid =
  let ps = Rlc_num.Units.ps and ff = Rlc_num.Units.ff in
  {
    slews = Array.map ps [| 20.; 50.; 75.; 100.; 150.; 200.; 300. |];
    caps = Array.map ff [| 20.; 50.; 100.; 200.; 400.; 800.; 1600.; 3200. |];
  }

let characterize_point tech ~size ~edge ~input_slew ~cap =
  let vdd = tech.Tech.vdd in
  (* Conservative horizon: the input ramp plus several output time
     constants of the weakest drivers into the largest loads. *)
  let t0 = 10e-12 in
  let t_stop = t0 +. (2. *. input_slew) +. Float.max 2e-9 (2000. *. cap) in
  let r =
    Testbench.drive ~dt:0.5e-12 ~t_stop ~t0 ~edge ~tech ~size ~input_slew
      ~load:(Testbench.cap_load cap) ()
  in
  let out_edge =
    match edge with Testbench.Rise -> Measure.Rising | Testbench.Fall -> Measure.Falling
  in
  let in_edge =
    match edge with Testbench.Rise -> Measure.Falling | Testbench.Fall -> Measure.Rising
  in
  let fail_point msg =
    failwith
      (Printf.sprintf "Characterize: %s (size=%g, slew=%g ps, cap=%g fF)" msg size
         (Rlc_num.Units.in_ps input_slew) (Rlc_num.Units.in_ff cap))
  in
  let delay =
    match
      Measure.delay_50 ~input:r.Testbench.input ~output:r.Testbench.output ~vdd
        ~input_edge:in_edge ~output_edge:out_edge
    with
    | Some d -> d
    | None -> fail_point "no 50% crossing"
  in
  let slew_10_90 =
    match Measure.slew_10_90 r.Testbench.output ~vdd ~edge:out_edge with
    | Some s -> s
    | None -> fail_point "output never completed 10-90"
  in
  let slew_20_80 =
    match Measure.slew_20_80 r.Testbench.output ~vdd ~edge:out_edge with
    | Some s -> s
    | None -> fail_point "output never completed 20-80"
  in
  let tail_50_90 =
    match Measure.slew r.Testbench.output ~vdd ~edge:out_edge ~lo:0.5 ~hi:0.9 with
    | Some s -> s
    | None -> fail_point "output never completed 50-90"
  in
  (delay, slew_10_90, slew_20_80, tail_50_90)

let characterize_arc tech ~size ~edge grid =
  let point i j =
    characterize_point tech ~size ~edge ~input_slew:grid.slews.(i) ~cap:grid.caps.(j)
  in
  let n_s = Array.length grid.slews and n_c = Array.length grid.caps in
  let delay = Array.make_matrix n_s n_c 0.
  and s19 = Array.make_matrix n_s n_c 0.
  and s28 = Array.make_matrix n_s n_c 0.
  and t59 = Array.make_matrix n_s n_c 0. in
  for i = 0 to n_s - 1 do
    for j = 0 to n_c - 1 do
      let d, a, b, t = point i j in
      delay.(i).(j) <- d;
      s19.(i).(j) <- a;
      s28.(i).(j) <- b;
      t59.(i).(j) <- t
    done
  done;
  let lut values = Table.make_lut ~slews:grid.slews ~caps:grid.caps ~values in
  {
    Table.delay = lut delay;
    slew_10_90 = lut s19;
    slew_20_80 = lut s28;
    tail_50_90 = lut t59;
  }

(* Per-tech size-indexed store.  One [store] per (technology, grid) holds a
   size-sorted array of characterized cells, so a sizing sweep over N
   candidate sizes characterizes each size exactly once across all nets,
   domains, and repeats — and callers (the optimizer, the dashboard) can ask
   which sizes are already paid for.  The store is shared by every domain of
   a parallel flow; guard it so concurrent lookups are safe.
   Characterization itself runs outside the lock (it is deterministic, so a
   rare duplicated run is only wasted work, never a wrong table — the first
   insert wins). *)
type store = { mutable entries : (float * Table.cell) array  (* sorted by size *) }

let stores : (string * int, store) Hashtbl.t = Hashtbl.create 4
let cache_mutex = Mutex.create ()

(* Global visibility counters: sweep-scale loops live or die on this memo,
   so hit/miss/store totals are first-class (surfaced in flow/optimize
   stats and the daemon's metrics exposition). *)
let hits = Atomic.make 0
let misses = Atomic.make 0
let stored = Atomic.make 0

let stats () = (Atomic.get hits, Atomic.get misses, Atomic.get stored)

let with_cache f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let clear_cache () = with_cache (fun () -> Hashtbl.reset stores)

(* The grid participates in the store key: characterizing the same cell on
   a different grid must not return stale tables. *)
let store_for ~grid tech =
  let key = (tech.Tech.name, Hashtbl.hash (grid.slews, grid.caps)) in
  match Hashtbl.find_opt stores key with
  | Some s -> s
  | None ->
      let s = { entries = [||] } in
      Hashtbl.add stores key s;
      s

let find_size entries size =
  let lo = ref 0 and hi = ref (Array.length entries - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, c = entries.(mid) in
    if s = size then begin
      found := Some c;
      lo := !hi + 1
    end
    else if s < size then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let sizes ?(grid = default_grid) tech =
  with_cache (fun () ->
      let st = store_for ~grid tech in
      Array.to_list (Array.map fst st.entries))

let cell ?(obs = Rlc_obs.Obs.null) ?(grid = default_grid) tech ~size =
  let module Obs = Rlc_obs.Obs in
  let st = with_cache (fun () -> store_for ~grid tech) in
  match with_cache (fun () -> find_size st.entries size) with
  | Some c ->
      Atomic.incr hits;
      Obs.incr obs "char.hits";
      c
  | None ->
      Atomic.incr misses;
      Obs.incr obs "char.misses";
      let rise = characterize_arc tech ~size ~edge:Testbench.Rise grid in
      let fall = characterize_arc tech ~size ~edge:Testbench.Fall grid in
      let c =
        {
          Table.name = Printf.sprintf "inv_%gx" size;
          drive_size = size;
          vdd = tech.Tech.vdd;
          input_cap = Inverter.input_cap (Inverter.make tech ~size);
          rise;
          fall;
        }
      in
      with_cache (fun () ->
          (* First insert wins so concurrent domains agree on the table. *)
          match find_size st.entries size with
          | Some existing -> existing
          | None ->
              let arr = Array.append st.entries [| (size, c) |] in
              Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
              st.entries <- arr;
              Atomic.incr stored;
              Obs.incr obs "char.stores";
              c)

(* Result-returning variants for embedders (the service daemon, the CLI)
   that must answer with a typed error instead of dying on a bad driver
   size or an uncharacterizable grid point. *)

let characterize_point_res tech ~size ~edge ~input_slew ~cap =
  match characterize_point tech ~size ~edge ~input_slew ~cap with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Rlc_errors.Error.Bad_request msg)
  | exception Failure msg -> Error (Rlc_errors.Error.Internal msg)

let cell_res ?obs ?grid tech ~size =
  match cell ?obs ?grid tech ~size with
  | c -> Ok c
  | exception Invalid_argument msg -> Error (Rlc_errors.Error.Bad_request msg)
  | exception Failure msg -> Error (Rlc_errors.Error.Internal msg)
