open Rlc_devices
open Rlc_waveform

type grid = { slews : float array; caps : float array }

let default_grid =
  let ps = Rlc_num.Units.ps and ff = Rlc_num.Units.ff in
  {
    slews = Array.map ps [| 20.; 50.; 75.; 100.; 150.; 200.; 300. |];
    caps = Array.map ff [| 20.; 50.; 100.; 200.; 400.; 800.; 1600.; 3200. |];
  }

let characterize_point tech ~size ~edge ~input_slew ~cap =
  let vdd = tech.Tech.vdd in
  (* Conservative horizon: the input ramp plus several output time
     constants of the weakest drivers into the largest loads. *)
  let t0 = 10e-12 in
  let t_stop = t0 +. (2. *. input_slew) +. Float.max 2e-9 (2000. *. cap) in
  let r =
    Testbench.drive ~dt:0.5e-12 ~t_stop ~t0 ~edge ~tech ~size ~input_slew
      ~load:(Testbench.cap_load cap) ()
  in
  let out_edge =
    match edge with Testbench.Rise -> Measure.Rising | Testbench.Fall -> Measure.Falling
  in
  let in_edge =
    match edge with Testbench.Rise -> Measure.Falling | Testbench.Fall -> Measure.Rising
  in
  let fail_point msg =
    failwith
      (Printf.sprintf "Characterize: %s (size=%g, slew=%g ps, cap=%g fF)" msg size
         (Rlc_num.Units.in_ps input_slew) (Rlc_num.Units.in_ff cap))
  in
  let delay =
    match
      Measure.delay_50 ~input:r.Testbench.input ~output:r.Testbench.output ~vdd
        ~input_edge:in_edge ~output_edge:out_edge
    with
    | Some d -> d
    | None -> fail_point "no 50% crossing"
  in
  let slew_10_90 =
    match Measure.slew_10_90 r.Testbench.output ~vdd ~edge:out_edge with
    | Some s -> s
    | None -> fail_point "output never completed 10-90"
  in
  let slew_20_80 =
    match Measure.slew_20_80 r.Testbench.output ~vdd ~edge:out_edge with
    | Some s -> s
    | None -> fail_point "output never completed 20-80"
  in
  let tail_50_90 =
    match Measure.slew r.Testbench.output ~vdd ~edge:out_edge ~lo:0.5 ~hi:0.9 with
    | Some s -> s
    | None -> fail_point "output never completed 50-90"
  in
  (delay, slew_10_90, slew_20_80, tail_50_90)

let characterize_arc tech ~size ~edge grid =
  let point i j =
    characterize_point tech ~size ~edge ~input_slew:grid.slews.(i) ~cap:grid.caps.(j)
  in
  let n_s = Array.length grid.slews and n_c = Array.length grid.caps in
  let delay = Array.make_matrix n_s n_c 0.
  and s19 = Array.make_matrix n_s n_c 0.
  and s28 = Array.make_matrix n_s n_c 0.
  and t59 = Array.make_matrix n_s n_c 0. in
  for i = 0 to n_s - 1 do
    for j = 0 to n_c - 1 do
      let d, a, b, t = point i j in
      delay.(i).(j) <- d;
      s19.(i).(j) <- a;
      s28.(i).(j) <- b;
      t59.(i).(j) <- t
    done
  done;
  let lut values = Table.make_lut ~slews:grid.slews ~caps:grid.caps ~values in
  {
    Table.delay = lut delay;
    slew_10_90 = lut s19;
    slew_20_80 = lut s28;
    tail_50_90 = lut t59;
  }

(* The memo table is shared by every domain of a parallel flow; guard it so
   concurrent lookups are safe.  Characterization itself runs outside the
   lock (it is deterministic, so a rare duplicated run is only wasted work,
   never a wrong table). *)
let cache : (string * float * int, Table.cell) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

let with_cache f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let clear_cache () = with_cache (fun () -> Hashtbl.reset cache)

let cell ?(grid = default_grid) tech ~size =
  (* The grid participates in the key: characterizing the same cell on a
     different grid must not return stale tables. *)
  let key = (tech.Tech.name, size, Hashtbl.hash (grid.slews, grid.caps)) in
  match with_cache (fun () -> Hashtbl.find_opt cache key) with
  | Some c -> c
  | None ->
      let rise = characterize_arc tech ~size ~edge:Testbench.Rise grid in
      let fall = characterize_arc tech ~size ~edge:Testbench.Fall grid in
      let c =
        {
          Table.name = Printf.sprintf "inv_%gx" size;
          drive_size = size;
          vdd = tech.Tech.vdd;
          input_cap = Inverter.input_cap (Inverter.make tech ~size);
          rise;
          fall;
        }
      in
      with_cache (fun () -> Hashtbl.replace cache key c);
      c

(* Result-returning variants for embedders (the service daemon, the CLI)
   that must answer with a typed error instead of dying on a bad driver
   size or an uncharacterizable grid point. *)

let characterize_point_res tech ~size ~edge ~input_slew ~cap =
  match characterize_point tech ~size ~edge ~input_slew ~cap with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Rlc_errors.Error.Bad_request msg)
  | exception Failure msg -> Error (Rlc_errors.Error.Internal msg)

let cell_res ?grid tech ~size =
  match cell ?grid tech ~size with
  | c -> Ok c
  | exception Invalid_argument msg -> Error (Rlc_errors.Error.Bad_request msg)
  | exception Failure msg -> Error (Rlc_errors.Error.Internal msg)
