(** Transient and DC analysis.

    Pure nodal formulation: reactive elements become conductance + history
    current-source companion models (trapezoidal by default, backward Euler
    available for damping comparisons), nonlinear devices are handled with
    Newton iteration inside every timestep, and the linear solve uses a
    banded factorization sized to the netlist's natural bandwidth (dense LU
    fallback), so uniform-ladder transients cost O(nodes) per step.

    The transient solver is split compile → factor → step: for a fixed
    [(integration, dt)] the companion conductance stamps are time-invariant,
    so linear circuits assemble and factor the system matrix once per
    transient and each step only rebuilds the right-hand side
    (O(n·bw) instead of O(n·bw²) per step).  Nonlinear circuits pre-stamp
    the constant linear part once and copy it per Newton iteration.  The
    fast path produces bit-identical waveforms to per-step reassembly,
    which remains available via [~reassemble_per_step:true]. *)

module Waveform = Rlc_waveform.Waveform

type integration = Trapezoidal | Backward_euler

type options = {
  dt : float;  (** fixed timestep, seconds *)
  t_stop : float;
  integration : integration;
  newton_tol : float;  (** max |dV| (volts) for Newton convergence *)
  newton_max : int;
  dv_limit : float;  (** per-iteration Newton voltage step clamp, volts *)
}

val default_options : dt:float -> t_stop:float -> options
(** Trapezoidal, [newton_tol = 1e-9] V, [newton_max = 60],
    [dv_limit = 0.5] V. *)

type adaptive = {
  dt_min : float;  (** smallest step (ladder rung 0), seconds *)
  dt_max : float;  (** largest step; the ladder tops out at the largest
                       [dt_min * 2^k <= dt_max] *)
  ltol : float;  (** per-step local-truncation-error budget, volts *)
}
(** Parameters of the LTE-controlled adaptive stepper.  Step sizes are
    quantized to the ladder [h = dt_min * 2^k] so the factorization of the
    companion system is built once per rung and reused for every step taken
    at that rung; [h] grows through flat regions (two consecutive accepts
    with the error estimate under [ltol]/4 climb one rung) and drops a rung
    on rejection.  Rung-0 steps are never rejected — [dt_min] is the
    accuracy floor. *)

val default_adaptive : ?dt_min:float -> ?dt_max:float -> ?ltol:float -> unit -> adaptive
(** [dt_min = 0.25 ps], [dt_max = 256 * dt_min], [ltol = 10 mV].  The
    10 mV per-step budget is calibrated on the Table-1 sweep: accumulated
    delay/slew deviation from fixed-step stays under 0.2 % (the acceptance
    bar is 1 %) while flat tails coarsen by two extra rungs; pass
    [~ltol:1e-3] for waveform-tracking work. *)

type result

val transient :
  ?obs:Rlc_obs.Obs.t ->
  ?options:options ->
  ?record_nodes:Netlist.node list ->
  ?reassemble_per_step:bool ->
  ?adaptive:adaptive ->
  dt:float ->
  t_stop:float ->
  Netlist.t ->
  result
(** Runs DC operating point at [t = 0] then steps to [t_stop].  Either pass
    a full [options] record or just [dt]/[t_stop].  Raises [Failure] if
    Newton fails to converge at any timestep.

    [obs] (default disabled) records ["engine.compile"] /
    ["engine.dc_solve"] / ["engine.factor"] / ["engine.step_loop"] spans
    (the step-loop span carries [steps], [newton_total], and the solver
    [path] as args) plus ["engine.transients"] / ["engine.steps"] /
    ["engine.newton_iters"] counters.  Only phase boundaries are
    instrumented — the per-step inner loops are untouched, so results and
    speed are identical when disabled.

    [record_nodes] restricts waveform storage to the listed nodes (default:
    every node).  Recording all nodes costs O(nodes × steps) memory, which
    dominates for long ladders whose observers only ever read input/near/far;
    {!voltage} on an unrecorded node raises [Invalid_argument].

    [reassemble_per_step] (default [false]) disables the factor-once fast
    path and rebuilds + refactors the full system at every step (and every
    Newton iteration), as the engine did before the compile/factor/step
    split.  The two paths produce bit-identical waveforms; the slow path is
    kept as the golden reference for equivalence tests and speedup
    measurement.

    [adaptive] switches to LTE-controlled variable time steps (see
    {!adaptive}); [dt] is then unused and the recorded waveforms sit on the
    adaptive (non-uniform) grid.  Every breakpoint declared on the netlist's
    forced sources ({!Netlist.force_voltage} / {!Netlist.force_pwl}) that
    falls inside [(0, t_stop)] is landed on exactly, as is [t_stop] itself,
    so source kinks are never stepped over; landing on a kink restarts the
    stepper at [dt_min].  Incompatible with [reassemble_per_step].  With
    [obs] enabled the step-loop span additionally carries [rejected] and
    [refactors] args, accepted step sizes feed the ["engine.step_size_ns"]
    histogram (values in nanoseconds), and ["engine.steps_rejected"] /
    ["engine.refactors"] counters accumulate.  The fixed-step path is
    completely untouched by this option. *)

val times : result -> float array
val voltage : result -> Netlist.node -> Waveform.t
(** Raises [Invalid_argument] if the node was excluded by [record_nodes]. *)

val is_recorded : result -> Netlist.node -> bool
val voltage_at : result -> Netlist.node -> float -> float
val newton_total : result -> int
val newton_worst : result -> int
val steps : result -> int

val steps_rejected : result -> int
(** Adaptive mode: step attempts rolled back by the LTE control (0 for
    fixed-step runs). *)

val refactors : result -> int
(** Adaptive mode: companion-system assemblies/factorizations performed —
    one per ladder rung visited plus one per breakpoint-clamped offcut step
    (0 for fixed-step runs).  Ladder reuse working means this stays far
    below {!steps}. *)

val dc_operating_point : ?t:float -> Netlist.t -> float array
(** Newton DC solution (capacitors open, inductors shorted through 1 mOhm)
    with sources evaluated at time [t] (default 0).  Returns the voltage of
    every node, indexed by node id. *)

(** Compile-once transient handles for candidate sweeps.

    Sweep-scale workloads (driver sizing, repeater insertion, Ceff model
    iteration) run thousands of transients over the {e same} circuit
    topology with different element values or input sources.  A handle
    amortizes everything that depends only on topology: compile (node
    ordering, bandwidth analysis, element slots), per-(integration, step
    size) solver states with their factorizations, and the DC operating
    point.  {!run} on a handle is bit-identical to a fresh {!transient}
    call on the equivalent netlist — same floats through the same step
    cores in the same order — so callers can adopt it without moving any
    accuracy goalposts. *)
module Compiled : sig
  type handle

  val compile : ?obs:Rlc_obs.Obs.t -> Netlist.t -> handle
  (** Compile the netlist into a reusable handle (records the usual
      ["engine.compile"] span).  The handle is not thread-safe: its solver
      scratch is mutated by every {!run}; keep one per domain (or use
      {!cached}, which is domain-local). *)

  val restamp : handle -> Netlist.t -> unit
  (** Write the netlist's element values into the handle's existing
      structure — no allocation on the value path.  The new netlist must
      match the compiled topology exactly (same node count, same element
      kinds/nodes in insertion order, same forced nodes); a mismatch raises
      [Invalid_argument] and leaves the handle needing a successful restamp
      (or rebuild) before reuse.  Source and nonlinear closures are always
      swapped in; a change to a matrix-affecting value (resistance,
      capacitance, inductance, coupling matrix) drops the cached solver
      states and DC point, while source-only restamps keep them all. *)

  val run :
    ?obs:Rlc_obs.Obs.t ->
    ?options:options ->
    ?record_nodes:Netlist.node list ->
    ?reassemble_per_step:bool ->
    ?adaptive:adaptive ->
    dt:float ->
    t_stop:float ->
    handle ->
    result
  (** Exactly {!transient} on the handle's current element values, minus
      the per-call compile: solver states are cached per
      [(integration, step size)] (fixed-step states and adaptive
      rung/offcut states share the cache), and the DC operating point is
      reused whenever the circuit is linear and every source's value at
      [t = 0] is bit-identical to the cached solve's. *)

  val node_count : handle -> int

  val cached : ?obs:Rlc_obs.Obs.t -> Netlist.t -> handle
  (** Domain-local structure-keyed handle cache: returns an existing
      handle for this topology restamped to the netlist's values, or
      compiles and caches a new one.  Increments the global {!cache_stats}
      counters and, with [obs], ["engine.handle.hits"] /
      ["engine.handle.misses"].  Key collisions are caught by {!restamp}'s
      structural validation and fall back to a rebuild, so a hit is always
      structurally sound. *)

  val cache_stats : unit -> int * int
  (** [(hits, misses)] of {!cached} across all domains since start. *)

  val clear_cache : unit -> unit
  (** Drop this domain's cached handles (counters are left running). *)
end
