(** Transient and DC analysis.

    Pure nodal formulation: reactive elements become conductance + history
    current-source companion models (trapezoidal by default, backward Euler
    available for damping comparisons), nonlinear devices are handled with
    Newton iteration inside every timestep, and the linear solve uses a
    banded factorization sized to the netlist's natural bandwidth (dense LU
    fallback), so uniform-ladder transients cost O(nodes) per step.

    The transient solver is split compile → factor → step: for a fixed
    [(integration, dt)] the companion conductance stamps are time-invariant,
    so linear circuits assemble and factor the system matrix once per
    transient and each step only rebuilds the right-hand side
    (O(n·bw) instead of O(n·bw²) per step).  Nonlinear circuits pre-stamp
    the constant linear part once and copy it per Newton iteration.  The
    fast path produces bit-identical waveforms to per-step reassembly,
    which remains available via [~reassemble_per_step:true]. *)

module Waveform = Rlc_waveform.Waveform

type integration = Trapezoidal | Backward_euler

type options = {
  dt : float;  (** fixed timestep, seconds *)
  t_stop : float;
  integration : integration;
  newton_tol : float;  (** max |dV| (volts) for Newton convergence *)
  newton_max : int;
  dv_limit : float;  (** per-iteration Newton voltage step clamp, volts *)
}

val default_options : dt:float -> t_stop:float -> options
(** Trapezoidal, [newton_tol = 1e-9] V, [newton_max = 60],
    [dv_limit = 0.5] V. *)

type result

val transient :
  ?obs:Rlc_obs.Obs.t ->
  ?options:options ->
  ?record_nodes:Netlist.node list ->
  ?reassemble_per_step:bool ->
  dt:float ->
  t_stop:float ->
  Netlist.t ->
  result
(** Runs DC operating point at [t = 0] then steps to [t_stop].  Either pass
    a full [options] record or just [dt]/[t_stop].  Raises [Failure] if
    Newton fails to converge at any timestep.

    [obs] (default disabled) records ["engine.compile"] /
    ["engine.dc_solve"] / ["engine.factor"] / ["engine.step_loop"] spans
    (the step-loop span carries [steps], [newton_total], and the solver
    [path] as args) plus ["engine.transients"] / ["engine.steps"] /
    ["engine.newton_iters"] counters.  Only phase boundaries are
    instrumented — the per-step inner loops are untouched, so results and
    speed are identical when disabled.

    [record_nodes] restricts waveform storage to the listed nodes (default:
    every node).  Recording all nodes costs O(nodes × steps) memory, which
    dominates for long ladders whose observers only ever read input/near/far;
    {!voltage} on an unrecorded node raises [Invalid_argument].

    [reassemble_per_step] (default [false]) disables the factor-once fast
    path and rebuilds + refactors the full system at every step (and every
    Newton iteration), as the engine did before the compile/factor/step
    split.  The two paths produce bit-identical waveforms; the slow path is
    kept as the golden reference for equivalence tests and speedup
    measurement. *)

val times : result -> float array
val voltage : result -> Netlist.node -> Waveform.t
(** Raises [Invalid_argument] if the node was excluded by [record_nodes]. *)

val is_recorded : result -> Netlist.node -> bool
val voltage_at : result -> Netlist.node -> float -> float
val newton_total : result -> int
val newton_worst : result -> int
val steps : result -> int

val dc_operating_point : ?t:float -> Netlist.t -> float array
(** Newton DC solution (capacitors open, inductors shorted through 1 mOhm)
    with sources evaluated at time [t] (default 0).  Returns the voltage of
    every node, indexed by node id. *)
