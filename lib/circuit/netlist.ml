module Pwl = Rlc_waveform.Pwl

type node = int

let ground = 0

type nonlinear = {
  nl_name : string;
  nl_nodes : node array;
  nl_eval : float array -> float array * float array array;
}

type coupled = {
  cp_name : string;
  cp_branches : (node * node) array;
  cp_lmat : float array array;
}

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Inductor of { name : string; n1 : node; n2 : node; henries : float }
  | Current_source of { name : string; n1 : node; n2 : node; amps : float -> float }
  | Coupled_inductors of coupled
  | Nonlinear of nonlinear

type t = {
  mutable names : string list;  (* reversed; index 0 = ground *)
  mutable n_nodes : int;
  mutable elems : element list;  (* reversed *)
  mutable forced : (node * (float -> float)) list;
  mutable breakpoints : float list;  (* source kink times, unsorted *)
  mutable counter : int;
}

let create () =
  { names = [ "gnd" ]; n_nodes = 1; elems = []; forced = []; breakpoints = []; counter = 0 }

let node t name =
  let id = t.n_nodes in
  t.n_nodes <- id + 1;
  t.names <- name :: t.names;
  id

let node_count t = t.n_nodes

let node_name t n =
  if n < 0 || n >= t.n_nodes then invalid_arg "Netlist.node_name: unknown node";
  List.nth t.names (t.n_nodes - 1 - n)

let check_node t n ctx =
  if n < 0 || n >= t.n_nodes then invalid_arg (Printf.sprintf "Netlist.%s: unknown node %d" ctx n)

let fresh_name t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%d" prefix t.counter

let add t e = t.elems <- e :: t.elems

let resistor t ?name n1 n2 ohms =
  check_node t n1 "resistor";
  check_node t n2 "resistor";
  if ohms <= 0. then invalid_arg "Netlist.resistor: ohms must be positive";
  add t (Resistor { name = Option.value name ~default:(fresh_name t "R"); n1; n2; ohms })

let capacitor t ?name n1 n2 farads =
  check_node t n1 "capacitor";
  check_node t n2 "capacitor";
  if farads <= 0. then invalid_arg "Netlist.capacitor: farads must be positive";
  add t (Capacitor { name = Option.value name ~default:(fresh_name t "C"); n1; n2; farads })

let inductor t ?name n1 n2 henries =
  check_node t n1 "inductor";
  check_node t n2 "inductor";
  if henries <= 0. then invalid_arg "Netlist.inductor: henries must be positive";
  add t (Inductor { name = Option.value name ~default:(fresh_name t "L"); n1; n2; henries })

let current_source t ?name n1 n2 amps =
  check_node t n1 "current_source";
  check_node t n2 "current_source";
  add t (Current_source { name = Option.value name ~default:(fresh_name t "I"); n1; n2; amps })

let nonlinear t nl =
  Array.iter (fun n -> check_node t n "nonlinear") nl.nl_nodes;
  add t (Nonlinear nl)

let coupled_inductors t ?name branches ~lmat =
  let k = Array.length branches in
  if k = 0 then invalid_arg "Netlist.coupled_inductors: empty group";
  Array.iter
    (fun (n1, n2) ->
      check_node t n1 "coupled_inductors";
      check_node t n2 "coupled_inductors")
    branches;
  if Array.length lmat <> k then invalid_arg "Netlist.coupled_inductors: lmat dimension";
  Array.iteri
    (fun i row ->
      if Array.length row <> k then invalid_arg "Netlist.coupled_inductors: lmat not square";
      if row.(i) <= 0. then invalid_arg "Netlist.coupled_inductors: non-positive self inductance";
      let off = ref 0. in
      Array.iteri
        (fun j v ->
          if Float.abs (v -. lmat.(j).(i)) > 1e-12 *. Float.abs v then
            invalid_arg "Netlist.coupled_inductors: lmat not symmetric";
          if j <> i then off := !off +. Float.abs v)
        row;
      if !off > row.(i) then
        invalid_arg "Netlist.coupled_inductors: lmat not diagonally dominant (non-passive)")
    lmat;
  add t
    (Coupled_inductors
       {
         cp_name = Option.value name ~default:(fresh_name t "K");
         cp_branches = Array.copy branches;
         cp_lmat = Array.map Array.copy lmat;
       })

let coupled_pair t ?name (a1, b1) l1 (a2, b2) l2 ~k =
  if k < 0. || k >= 1. then invalid_arg "Netlist.coupled_pair: k must be in [0, 1)";
  if l1 <= 0. || l2 <= 0. then invalid_arg "Netlist.coupled_pair: inductances must be positive";
  let m = k *. Float.sqrt (l1 *. l2) in
  coupled_inductors t ?name [| (a1, b1); (a2, b2) |] ~lmat:[| [| l1; m |]; [| m; l2 |] |]

let force_voltage t ?(breakpoints = []) n f =
  check_node t n "force_voltage";
  if n = ground then invalid_arg "Netlist.force_voltage: cannot force ground";
  if List.mem_assoc n t.forced then invalid_arg "Netlist.force_voltage: node already forced";
  List.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg "Netlist.force_voltage: breakpoints must be finite")
    breakpoints;
  t.forced <- (n, f) :: t.forced;
  if breakpoints <> [] then t.breakpoints <- List.rev_append breakpoints t.breakpoints

let force_pwl t n pwl =
  force_voltage t ~breakpoints:(List.map fst (Pwl.points pwl)) n (Pwl.eval pwl)

let elements t = List.rev t.elems
let forced t = List.rev t.forced
let breakpoints t = List.sort_uniq Float.compare t.breakpoints

let element_nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } | Inductor { n1; n2; _ }
  | Current_source { n1; n2; _ } ->
      [ n1; n2 ]
  | Coupled_inductors { cp_branches; _ } ->
      Array.to_list cp_branches |> List.concat_map (fun (a, b) -> [ a; b ])
  | Nonlinear { nl_nodes; _ } -> Array.to_list nl_nodes

let validate t =
  (* Flood-fill from ground and forced nodes over element connectivity. *)
  let seen = Array.make t.n_nodes false in
  seen.(ground) <- true;
  List.iter (fun (n, _) -> seen.(n) <- true) t.forced;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        let ns = element_nodes e in
        if List.exists (fun n -> seen.(n)) ns then
          List.iter
            (fun n ->
              if not seen.(n) then begin
                seen.(n) <- true;
                changed := true
              end)
            ns)
      t.elems
  done;
  for n = 0 to t.n_nodes - 1 do
    if not seen.(n) then failwith (Printf.sprintf "Netlist.validate: node %s is floating" (node_name t n))
  done

let pp_summary fmt t =
  let r = ref 0 and c = ref 0 and l = ref 0 and i = ref 0 and nl = ref 0 and k = ref 0 in
  List.iter
    (function
      | Resistor _ -> incr r
      | Capacitor _ -> incr c
      | Inductor _ -> incr l
      | Current_source _ -> incr i
      | Coupled_inductors _ -> incr k
      | Nonlinear _ -> incr nl)
    t.elems;
  Format.fprintf fmt "netlist<%d nodes, %dR %dC %dL %dI %dK %d nonlinear, %d forced>" t.n_nodes
    !r !c !l !i !k !nl (List.length t.forced)
