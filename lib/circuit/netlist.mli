(** Circuit netlists for nodal analysis.

    The engine solves pure nodal systems: every element is expressed as
    conductances plus current sources between nodes (inductors and capacitors
    through trapezoidal/backward-Euler companion models, nonlinear devices
    through Newton linearization).  Ideal voltage sources are supported as
    {e forced nodes} — a node whose voltage is a known function of time —
    which covers rails, input ramps, and PWL driver replacement without MNA
    branch currents, keeping ladder matrices tridiagonal. *)

type node = int
(** Node handle; [ground] is node 0.  Create others with {!node}. *)

val ground : node

type nonlinear = {
  nl_name : string;
  nl_nodes : node array;
  nl_eval : float array -> float array * float array array;
      (** [nl_eval v] takes the voltages at [nl_nodes] and returns
          [(i, g)] where [i.(k)] is the current flowing {e out of} node [k]
          into the device and [g.(k).(j) = d i.(k) / d v.(j)]. *)
}

type coupled = {
  cp_name : string;
  cp_branches : (node * node) array;  (** branch p carries current n1 -> n2 *)
  cp_lmat : float array array;
      (** symmetric positive-definite inductance matrix; off-diagonals are
          the mutual inductances *)
}

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Inductor of { name : string; n1 : node; n2 : node; henries : float }
  | Current_source of { name : string; n1 : node; n2 : node; amps : float -> float }
      (** Positive current flows from [n1] through the source to [n2]. *)
  | Coupled_inductors of coupled
  | Nonlinear of nonlinear

type t

val create : unit -> t

val node : t -> string -> node
(** Allocate a fresh named node.  Number nodes along chains (the builder
    allocates sequentially) to keep the nodal matrix bandwidth small. *)

val node_count : t -> int
(** Including ground. *)

val node_name : t -> node -> string

val resistor : t -> ?name:string -> node -> node -> float -> unit
val capacitor : t -> ?name:string -> node -> node -> float -> unit
val inductor : t -> ?name:string -> node -> node -> float -> unit
val current_source : t -> ?name:string -> node -> node -> (float -> float) -> unit
val nonlinear : t -> nonlinear -> unit

val coupled_inductors :
  t -> ?name:string -> (node * node) array -> lmat:float array array -> unit
(** Magnetically coupled inductor group (e.g. the per-segment self and
    mutual inductances of a coupled bus).  [lmat] must be symmetric with
    positive diagonal and strictly diagonally-dominant-or-equal rows
    (passivity); violations raise [Invalid_argument].  A 1x1 group is
    equivalent to {!inductor}. *)

val coupled_pair :
  t -> ?name:string -> node * node -> float -> node * node -> float -> k:float -> unit
(** Two coupled inductors with coupling coefficient [k] in [0, 1):
    [M = k sqrt (l1 l2)]. *)

val force_voltage : t -> ?breakpoints:float list -> node -> (float -> float) -> unit
(** Attach an ideal voltage source from [node] to ground.  A node may be
    forced at most once; forcing ground raises [Invalid_argument].

    [breakpoints] (default none) declares the times where the source is not
    smooth — ramp corners, PWL kinks, plateau starts.  The fixed-step engine
    ignores them; the adaptive stepper lands a step on each one exactly so a
    kink is never stepped over.  Non-finite times raise [Invalid_argument]. *)

val force_pwl : t -> node -> Rlc_waveform.Pwl.t -> unit
(** [force_voltage] with the PWL's evaluator and every PWL point registered
    as a breakpoint. *)

val elements : t -> element list
(** In insertion order. *)

val forced : t -> (node * (float -> float)) list

val breakpoints : t -> float list
(** All declared source breakpoints, sorted and deduplicated. *)

val validate : t -> unit
(** Checks that every non-ground node is reachable from a forced node or
    ground through element connectivity (otherwise the nodal matrix is
    singular).  Raises [Failure] with the offending node's name. *)

val pp_summary : Format.formatter -> t -> unit
