open Rlc_num
module Waveform = Rlc_waveform.Waveform
module Obs = Rlc_obs.Obs
module Deadline = Rlc_errors.Deadline

type integration = Trapezoidal | Backward_euler

(* Per-request deadline observation points: every step loop polls the
   ambient deadline once per [deadline_stride] steps.  With no deadline
   installed a poll is one domain-local read and a float compare, so the
   stride keeps the cost unmeasurable while still interrupting a runaway
   transient within a few hundred steps of its budget expiring. *)
let deadline_stride = 256

type options = {
  dt : float;
  t_stop : float;
  integration : integration;
  newton_tol : float;
  newton_max : int;
  dv_limit : float;
}

let default_options ~dt ~t_stop =
  { dt; t_stop; integration = Trapezoidal; newton_tol = 1e-9; newton_max = 60; dv_limit = 0.5 }

(* Linear-system abstraction: banded when the netlist numbering keeps the
   bandwidth small (uniform ladders are tridiagonal), dense otherwise. *)
type sys = B of Banded.t | D of Linalg.mat

let sys_create ~n ~bw =
  (* An n x n system never needs more than n - 1 off-diagonals; compile
     seeds the bandwidth at 1, so clamp before sizing the band storage. *)
  let bw = Int.min bw (Int.max 0 (n - 1)) in
  if bw <= 16 || (n <= 24 && bw < n) then B (Banded.create ~n ~bw) else D (Linalg.make n n 0.)

let sys_clear = function
  | B b -> Banded.clear b
  | D m -> Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.) m

let sys_add s i j v =
  match s with B b -> Banded.add b i j v | D m -> m.(i).(j) <- m.(i).(j) +. v

let sys_copy = function B b -> B (Banded.copy b) | D m -> D (Linalg.copy_mat m)

let sys_blit ~src ~dst =
  match (src, dst) with
  | B a, B b -> Banded.blit ~src:a ~dst:b
  | D a, D b -> Array.iteri (fun i row -> Array.blit row 0 b.(i) 0 (Array.length row)) a
  | _ -> invalid_arg "Engine.sys_blit: shape mismatch"

let sys_solve_in_place s rhs =
  match s with
  | B b -> Banded.solve_in_place b rhs
  | D m ->
      let x = Linalg.solve m rhs in
      Array.blit x 0 rhs 0 (Array.length x)

(* A factorized system: the banded case factors in place and replays the
   elimination per right-hand side; the dense case keeps the pivoted LU. *)
type factored = FB of Banded.t | FD of Linalg.lu

let factorize = function
  | B b ->
      Banded.factor b;
      FB b
  | D m -> FD (Linalg.lu_factor_in_place m)

(* Overwrite [rhs] with the solution; [scratch] (same length, distinct) is
   needed by the dense path to un-permute without allocating. *)
let factored_solve f rhs scratch =
  match f with
  | FB b -> Banded.solve_factored b rhs
  | FD lu ->
      Linalg.lu_solve_into lu rhs scratch;
      Array.blit scratch 0 rhs 0 (Array.length rhs)

(* Per-step companion history.  Kept as its own all-float record so it is a
   flat float block: updating [v_prev]/[i_prev] is a direct unboxed store.
   Inside the mixed int/float [companion] record the same mutable float
   fields would be boxed, costing an allocation plus a write barrier per
   element per step in [commit_step]. *)
type comp_hist = { mutable v_prev : float; mutable i_prev : float }

(* Compiled two-terminal element with per-step companion state.  [value] is
   mutable so [Compiled.restamp] can write new element values into the
   existing structure without rebuilding it. *)
type companion = { n1 : int; n2 : int; mutable value : float; hist : comp_hist }

(* Resistor / forced-source / current-source slots are records with mutable
   value fields for the same reason: a restamp writes in place. *)
type resistor = { rn1 : int; rn2 : int; mutable rg : float  (* conductance *) }

type forced_src = { fnode : int; mutable fsrc : float -> float }
type isource = { sn1 : int; sn2 : int; mutable samps : float -> float }

(* Magnetically coupled group: branch currents depend on all branch
   voltages through G = alpha * L^{-1} (alpha = h/2 for trapezoidal, h for
   backward Euler), which stays purely nodal.  [k_lmat] keeps a copy of the
   inductance matrix so a restamp can detect a value change cheaply before
   paying for a re-inversion. *)
type coupled_state = {
  k_branches : (int * int) array;
  mutable k_lmat : float array array;
  mutable linv : float array array;  (* L^{-1} *)
  i_prev_k : float array;
  v_prev_k : float array;
}

type compiled = {
  nl : Netlist.t;
  n_nodes : int;
  n_unknown : int;
  unknown_of_node : int array;  (* -1 for ground and forced nodes *)
  forced : forced_src array;
  resistors : resistor array;
  caps : companion array;
  inds : companion array;
  coupled : coupled_state array;
  isources : isource array;
  nonlinears : Netlist.nonlinear array;  (* slots replaced by restamp *)
  bandwidth : int;
}

let invert m =
  let n = Array.length m in
  let lu = Linalg.lu_factor m in
  let inv = Array.make_matrix n n 0. in
  for j = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(j) <- 1.;
    let col = Linalg.lu_solve lu e in
    for i = 0 to n - 1 do
      inv.(i).(j) <- col.(i)
    done
  done;
  inv

let compile netlist =
  Netlist.validate netlist;
  let n_nodes = Netlist.node_count netlist in
  let forced =
    Array.of_list
      (List.map (fun (n, f) -> { fnode = n; fsrc = f }) (Netlist.forced netlist))
  in
  let unknown_of_node = Array.make n_nodes (-1) in
  let is_forced = Array.make n_nodes false in
  Array.iter (fun fs -> is_forced.(fs.fnode) <- true) forced;
  let next = ref 0 in
  for n = 1 to n_nodes - 1 do
    if not is_forced.(n) then begin
      unknown_of_node.(n) <- !next;
      incr next
    end
  done;
  let n_unknown = !next in
  let rs = ref [] and cs = ref [] and ls = ref [] and is_ = ref [] and nls = ref [] in
  let ks = ref [] in
  List.iter
    (fun (e : Netlist.element) ->
      match e with
      | Resistor { n1; n2; ohms; _ } -> rs := { rn1 = n1; rn2 = n2; rg = 1. /. ohms } :: !rs
      | Capacitor { n1; n2; farads; _ } ->
          cs := { n1; n2; value = farads; hist = { v_prev = 0.; i_prev = 0. } } :: !cs
      | Inductor { n1; n2; henries; _ } ->
          ls := { n1; n2; value = henries; hist = { v_prev = 0.; i_prev = 0. } } :: !ls
      | Current_source { n1; n2; amps; _ } ->
          is_ := { sn1 = n1; sn2 = n2; samps = amps } :: !is_
      | Coupled_inductors { cp_branches; cp_lmat; _ } ->
          let k = Array.length cp_branches in
          ks :=
            {
              k_branches = Array.copy cp_branches;
              k_lmat = Array.map Array.copy cp_lmat;
              linv = invert cp_lmat;
              i_prev_k = Array.make k 0.;
              v_prev_k = Array.make k 0.;
            }
            :: !ks
      | Nonlinear nl -> nls := nl :: !nls)
    (Netlist.elements netlist);
  let pair_band n1 n2 =
    let u1 = unknown_of_node.(n1) and u2 = unknown_of_node.(n2) in
    if u1 >= 0 && u2 >= 0 then abs (u1 - u2) else 0
  in
  let bw = ref 1 in
  List.iter (fun (r : resistor) -> bw := Int.max !bw (pair_band r.rn1 r.rn2)) !rs;
  List.iter (fun (c : companion) -> bw := Int.max !bw (pair_band c.n1 c.n2)) !cs;
  List.iter (fun (c : companion) -> bw := Int.max !bw (pair_band c.n1 c.n2)) !ls;
  List.iter
    (fun (nl : Netlist.nonlinear) ->
      Array.iter
        (fun a -> Array.iter (fun b -> bw := Int.max !bw (pair_band a b)) nl.nl_nodes)
        nl.nl_nodes)
    !nls;
  List.iter
    (fun (k : coupled_state) ->
      Array.iter
        (fun (a1, b1) ->
          Array.iter
            (fun (a2, b2) ->
              List.iter
                (fun (x, y) -> bw := Int.max !bw (pair_band x y))
                [ (a1, a2); (a1, b2); (b1, a2); (b1, b2) ])
            k.k_branches)
        k.k_branches)
    !ks;
  {
    nl = netlist;
    n_nodes;
    n_unknown;
    unknown_of_node;
    forced;
    resistors = Array.of_list (List.rev !rs);
    caps = Array.of_list (List.rev !cs);
    inds = Array.of_list (List.rev !ls);
    coupled = Array.of_list (List.rev !ks);
    isources = Array.of_list (List.rev !is_);
    nonlinears = Array.of_list (List.rev !nls);
    bandwidth = !bw;
  }

(* Companion conductances for a fixed (integration, dt): time-invariant, so
   the fast path computes them once per transient. *)
let cap_g integration dt (cc : companion) =
  match integration with
  | Trapezoidal -> 2. *. cc.value /. dt
  | Backward_euler -> cc.value /. dt

let ind_g integration dt (cc : companion) =
  match integration with
  | Trapezoidal -> dt /. (2. *. cc.value)
  | Backward_euler -> dt /. cc.value

(* History current (flowing n1 -> n2 through the companion source) for the
   current step, given the element's per-transient conductance. *)
let cap_ieq integration g (cc : companion) =
  let h = cc.hist in
  match integration with
  | Trapezoidal -> -.((g *. h.v_prev) +. h.i_prev)
  | Backward_euler -> -.(g *. h.v_prev)

let ind_ieq integration g (cc : companion) =
  let h = cc.hist in
  match integration with
  | Trapezoidal -> h.i_prev +. (g *. h.v_prev)
  | Backward_euler -> h.i_prev

(* Stamp conductance [g] and constant element current [j] (flowing n1 -> n2)
   into system/rhs given the full node-voltage vector for known nodes. *)
let stamp c sys rhs vnode n1 n2 g j =
  let u1 = c.unknown_of_node.(n1) and u2 = c.unknown_of_node.(n2) in
  if u1 >= 0 then begin
    if g <> 0. then begin
      sys_add sys u1 u1 g;
      if u2 >= 0 then sys_add sys u1 u2 (-.g) else rhs.(u1) <- rhs.(u1) +. (g *. vnode.(n2))
    end;
    rhs.(u1) <- rhs.(u1) -. j
  end;
  if u2 >= 0 then begin
    if g <> 0. then begin
      sys_add sys u2 u2 g;
      if u1 >= 0 then sys_add sys u2 u1 (-.g) else rhs.(u2) <- rhs.(u2) +. (g *. vnode.(n1))
    end;
    rhs.(u2) <- rhs.(u2) +. j
  end

(* The time-invariant matrix half of [stamp]; the per-step right-hand-side
   half is open-coded in [assemble_rhs].  Contribution order matches
   [stamp] exactly so the fast path accumulates bit-identical sums. *)
let stamp_mat c sys n1 n2 g =
  if g <> 0. then begin
    let u1 = c.unknown_of_node.(n1) and u2 = c.unknown_of_node.(n2) in
    if u1 >= 0 then begin
      sys_add sys u1 u1 g;
      if u2 >= 0 then sys_add sys u1 u2 (-.g)
    end;
    if u2 >= 0 then begin
      sys_add sys u2 u2 g;
      if u1 >= 0 then sys_add sys u2 u1 (-.g)
    end
  end

(* Companion coefficients of a coupled group for the current step:
   [g = alpha L^{-1}] and per-branch history sources. *)
let coupled_galpha (k : coupled_state) integration dt =
  let alpha = match integration with Trapezoidal -> dt /. 2. | Backward_euler -> dt in
  Array.init (Array.length k.k_branches) (fun p -> Array.map (fun v -> alpha *. v) k.linv.(p))

let coupled_ieq_into (k : coupled_state) integration g ieq =
  let nb = Array.length k.k_branches in
  for p = 0 to nb - 1 do
    ieq.(p) <-
      (match integration with
      | Backward_euler -> k.i_prev_k.(p)
      | Trapezoidal ->
          let acc = ref k.i_prev_k.(p) in
          for q = 0 to nb - 1 do
            acc := !acc +. (g.(p).(q) *. k.v_prev_k.(q))
          done;
          !acc)
  done

(* Stamp a coupled group: branch p carries
   i_p = sum_q g.(p).(q) (v(aq) - v(bq)) + ieq.(p), flowing from the first
   to the second node of branch p. *)
let stamp_coupled c sys rhs vnode (k : coupled_state) g ieq =
  let nb = Array.length k.k_branches in
  for p = 0 to nb - 1 do
    let ap, bp = k.k_branches.(p) in
    let row node row_sign =
      let u = c.unknown_of_node.(node) in
      if u >= 0 then begin
        for q = 0 to nb - 1 do
          let aq, bq = k.k_branches.(q) in
          let add col col_sign =
            let coeff = row_sign *. col_sign *. g.(p).(q) in
            if coeff <> 0. then begin
              let uc = c.unknown_of_node.(col) in
              if uc >= 0 then sys_add sys u uc coeff
              else rhs.(u) <- rhs.(u) -. (coeff *. vnode.(col))
            end
          in
          add aq 1.;
          add bq (-1.)
        done;
        rhs.(u) <- rhs.(u) -. (row_sign *. ieq.(p))
      end
    in
    row ap 1.;
    row bp (-1.)
  done

(* Matrix/rhs split of [stamp_coupled], same contribution order. *)
let stamp_coupled_mat c sys (k : coupled_state) g =
  let nb = Array.length k.k_branches in
  for p = 0 to nb - 1 do
    let ap, bp = k.k_branches.(p) in
    let row node row_sign =
      let u = c.unknown_of_node.(node) in
      if u >= 0 then
        for q = 0 to nb - 1 do
          let aq, bq = k.k_branches.(q) in
          let add col col_sign =
            let coeff = row_sign *. col_sign *. g.(p).(q) in
            if coeff <> 0. then begin
              let uc = c.unknown_of_node.(col) in
              if uc >= 0 then sys_add sys u uc coeff
            end
          in
          add aq 1.;
          add bq (-1.)
        done
    in
    row ap 1.;
    row bp (-1.)
  done

let stamp_coupled_rhs c rhs vnode (k : coupled_state) g ieq =
  let nb = Array.length k.k_branches in
  for p = 0 to nb - 1 do
    let ap, bp = k.k_branches.(p) in
    let row node row_sign =
      let u = c.unknown_of_node.(node) in
      if u >= 0 then begin
        for q = 0 to nb - 1 do
          let aq, bq = k.k_branches.(q) in
          let add col col_sign =
            let coeff = row_sign *. col_sign *. g.(p).(q) in
            if coeff <> 0. && c.unknown_of_node.(col) < 0 then
              rhs.(u) <- rhs.(u) -. (coeff *. vnode.(col))
          in
          add aq 1.;
          add bq (-1.)
        done;
        rhs.(u) <- rhs.(u) -. (row_sign *. ieq.(p))
      end
    in
    row ap 1.;
    row bp (-1.)
  done

let stamp_nonlinear c sys rhs vnode (dev : Netlist.nonlinear) =
  let nn = Array.length dev.nl_nodes in
  let v = Array.map (fun n -> vnode.(n)) dev.nl_nodes in
  let i, gm = dev.nl_eval v in
  for k = 0 to nn - 1 do
    let uk = c.unknown_of_node.(dev.nl_nodes.(k)) in
    if uk >= 0 then begin
      let acc = ref (-.i.(k)) in
      for jn = 0 to nn - 1 do
        let uj = c.unknown_of_node.(dev.nl_nodes.(jn)) in
        if uj >= 0 then begin
          sys_add sys uk uj gm.(k).(jn);
          acc := !acc +. (gm.(k).(jn) *. v.(jn))
        end
      done;
      rhs.(uk) <- rhs.(uk) +. !acc
    end
  done

let update_forced c vnode t =
  for i = 0 to Array.length c.forced - 1 do
    let fs = c.forced.(i) in
    vnode.(fs.fnode) <- fs.fsrc t
  done

(* Newton loop on top of a base (linear part) assembly function — the
   rebuild-everything path, used for the DC operating point (once per
   transient) and as the [reassemble_per_step] reference stepper. *)
let newton ~opts ~c ~assemble_base ~vnode ~t =
  if Array.length c.nonlinears = 0 && c.n_unknown > 0 then begin
    let sys, rhs = assemble_base () in
    sys_solve_in_place sys rhs;
    for n = 1 to c.n_nodes - 1 do
      let u = c.unknown_of_node.(n) in
      if u >= 0 then vnode.(n) <- rhs.(u)
    done;
    1
  end
  else if c.n_unknown = 0 then 0
  else begin
    let iter = ref 0 and converged = ref false in
    while (not !converged) && !iter < opts.newton_max do
      incr iter;
      let base_sys, base_rhs = assemble_base () in
      let sys = sys_copy base_sys and rhs = Array.copy base_rhs in
      Array.iter (fun dev -> stamp_nonlinear c sys rhs vnode dev) c.nonlinears;
      sys_solve_in_place sys rhs;
      let worst = ref 0. in
      for n = 1 to c.n_nodes - 1 do
        let u = c.unknown_of_node.(n) in
        if u >= 0 then begin
          let dv = rhs.(u) -. vnode.(n) in
          worst := Float.max !worst (Float.abs dv);
          let dv = Float.max (-.opts.dv_limit) (Float.min opts.dv_limit dv) in
          vnode.(n) <- vnode.(n) +. dv
        end
      done;
      if !worst < opts.newton_tol then converged := true
    done;
    if not !converged then
      failwith (Printf.sprintf "Engine: Newton failed to converge at t=%g s" t);
    !iter
  end

type result = {
  times_ : float array;
  col_of_node : int array;  (* -1 when the node was not recorded *)
  cols : float array array;  (* cols.(col_of_node.(node)).(step) *)
  total_newton : int;
  worst_newton : int;
  rejected_ : int;  (* adaptive mode: LTE-rejected step attempts *)
  refactors_ : int;  (* adaptive mode: system assemblies/factorizations *)
}

let dc_solve ?(t = 0.) c opts =
  let vnode = Array.make c.n_nodes 0. in
  update_forced c vnode t;
  let g_short = 1e3 in
  let assemble_base () =
    let sys = sys_create ~n:c.n_unknown ~bw:c.bandwidth in
    sys_clear sys;
    let rhs = Array.make c.n_unknown 0. in
    Array.iter (fun (r : resistor) -> stamp c sys rhs vnode r.rn1 r.rn2 r.rg 0.) c.resistors;
    Array.iter (fun (cc : companion) -> stamp c sys rhs vnode cc.n1 cc.n2 g_short 0.) c.inds;
    Array.iter
      (fun (k : coupled_state) ->
        Array.iter (fun (a, b) -> stamp c sys rhs vnode a b g_short 0.) k.k_branches)
      c.coupled;
    (* Capacitors are open at DC, but a node connected only through
       capacitors would make the matrix singular; a tiny leak conductance
       pins such nodes without perturbing the solution elsewhere. *)
    Array.iter (fun (cc : companion) -> stamp c sys rhs vnode cc.n1 cc.n2 1e-12 0.) c.caps;
    Array.iter (fun (s : isource) -> stamp c sys rhs vnode s.sn1 s.sn2 0. (s.samps t)) c.isources;
    (sys, rhs)
  in
  let _ = newton ~opts ~c ~assemble_base ~vnode ~t in
  vnode

let dc_operating_point ?(t = 0.) netlist =
  let c = compile netlist in
  let opts = default_options ~dt:1e-12 ~t_stop:0. in
  dc_solve ~t c opts

(* Per-transient solver state for the fast path: everything that is
   time-invariant for a fixed (integration, dt) is computed once here —
   companion conductances, the assembled linear system matrix (factored
   outright when the circuit has no nonlinear devices), the coupled-group
   alpha*L^-1 matrices, and all solver scratch. *)
type transient_state = {
  caps_g : float array;
  inds_g : float array;
  galpha : float array array array;  (* per coupled group *)
  ieq_k : float array array;  (* per-group history scratch, refreshed per step *)
  vnew_k : float array array;  (* per-group commit scratch (post-step branch voltages) *)
  rhs : float array;
  xsol : float array;  (* dense-solve unpermute scratch *)
  linear_fact : factored option;  (* Some iff no nonlinear devices *)
  (* Nonlinear path: pre-stamped linear matrix, per-iteration scratch. *)
  base : sys;
  base_rhs : float array;
  newton_sys : sys;
}

let make_transient_state c opts =
  let dt = opts.dt in
  let caps_g = Array.map (cap_g opts.integration dt) c.caps in
  let inds_g = Array.map (ind_g opts.integration dt) c.inds in
  let galpha = Array.map (fun k -> coupled_galpha k opts.integration dt) c.coupled in
  let ieq_k = Array.map (fun (k : coupled_state) -> Array.make (Array.length k.k_branches) 0.) c.coupled in
  let vnew_k = Array.map (fun (k : coupled_state) -> Array.make (Array.length k.k_branches) 0.) c.coupled in
  let base = sys_create ~n:c.n_unknown ~bw:c.bandwidth in
  (* Assembly order mirrors the rebuild path: resistors, caps, inductors,
     coupled groups (current sources carry no conductance). *)
  Array.iter (fun (r : resistor) -> stamp_mat c base r.rn1 r.rn2 r.rg) c.resistors;
  Array.iteri (fun i (cc : companion) -> stamp_mat c base cc.n1 cc.n2 caps_g.(i)) c.caps;
  Array.iteri (fun i (cc : companion) -> stamp_mat c base cc.n1 cc.n2 inds_g.(i)) c.inds;
  Array.iteri (fun i k -> stamp_coupled_mat c base k galpha.(i)) c.coupled;
  let linear = Array.length c.nonlinears = 0 in
  let linear_fact =
    if linear && c.n_unknown > 0 then Some (factorize (sys_copy base)) else None
  in
  {
    caps_g;
    inds_g;
    galpha;
    ieq_k;
    vnew_k;
    rhs = Array.make c.n_unknown 0.;
    xsol = Array.make c.n_unknown 0.;
    linear_fact;
    base;
    base_rhs = Array.make c.n_unknown 0.;
    newton_sys = sys_copy base;
  }

(* Linear-part right-hand side for the step at time [t]: history currents
   plus injections from forced-node neighbours, in rebuild-path order.
   Plain [for] loops with the integration match hoisted out — this runs
   once per step (the whole point of the factor-once split), so closure
   allocation here would dominate small circuits. *)
(* Independent-source contribution to the RHS — split out so the linear
   fast path can skip the call entirely (and the float [t] boxing that
   comes with it) when the circuit has no current sources. *)
let add_isources_rhs c rhs t =
  let uon = c.unknown_of_node in
  for i = 0 to Array.length c.isources - 1 do
    let s = c.isources.(i) in
    let j = s.samps t in
    let u1 = uon.(s.sn1) and u2 = uon.(s.sn2) in
    if u1 >= 0 then rhs.(u1) <- rhs.(u1) -. j;
    if u2 >= 0 then rhs.(u2) <- rhs.(u2) +. j
  done

let assemble_rhs_hist c st opts rhs vnode =
  (* Monomorphic clear: [Array.fill] goes through the generic set primitive
     (runtime float-array dispatch per element); this loop compiles to
     direct unboxed stores. *)
  for k = 0 to Array.length rhs - 1 do
    rhs.(k) <- 0.
  done;
  let uon = c.unknown_of_node in
  (* The right-hand-side half of [stamp] is open-coded per element type:
     without flambda a per-element helper call boxes its float arguments,
     and at one call per element per step that boxing rivals the factored
     solve itself.  Contribution order per element — forced-neighbour
     injection, then the -j/+j history pair — matches [stamp] exactly. *)
  for i = 0 to Array.length c.resistors - 1 do
    let r = c.resistors.(i) in
    let g = r.rg in
    let u1 = uon.(r.rn1) and u2 = uon.(r.rn2) in
    if u1 >= 0 && g <> 0. && u2 < 0 then rhs.(u1) <- rhs.(u1) +. (g *. vnode.(r.rn2));
    if u2 >= 0 && g <> 0. && u1 < 0 then rhs.(u2) <- rhs.(u2) +. (g *. vnode.(r.rn1))
  done;
  (match opts.integration with
  | Trapezoidal ->
      for i = 0 to Array.length c.caps - 1 do
        let cc = c.caps.(i) in
        let g = st.caps_g.(i) in
        let h = cc.hist in
        let j = -.((g *. h.v_prev) +. h.i_prev) in
        let u1 = uon.(cc.n1) and u2 = uon.(cc.n2) in
        if u1 >= 0 then begin
          if g <> 0. && u2 < 0 then rhs.(u1) <- rhs.(u1) +. (g *. vnode.(cc.n2));
          rhs.(u1) <- rhs.(u1) -. j
        end;
        if u2 >= 0 then begin
          if g <> 0. && u1 < 0 then rhs.(u2) <- rhs.(u2) +. (g *. vnode.(cc.n1));
          rhs.(u2) <- rhs.(u2) +. j
        end
      done
  | Backward_euler ->
      for i = 0 to Array.length c.caps - 1 do
        let cc = c.caps.(i) in
        let g = st.caps_g.(i) in
        let j = -.(g *. cc.hist.v_prev) in
        let u1 = uon.(cc.n1) and u2 = uon.(cc.n2) in
        if u1 >= 0 then begin
          if g <> 0. && u2 < 0 then rhs.(u1) <- rhs.(u1) +. (g *. vnode.(cc.n2));
          rhs.(u1) <- rhs.(u1) -. j
        end;
        if u2 >= 0 then begin
          if g <> 0. && u1 < 0 then rhs.(u2) <- rhs.(u2) +. (g *. vnode.(cc.n1));
          rhs.(u2) <- rhs.(u2) +. j
        end
      done);
  (match opts.integration with
  | Trapezoidal ->
      for i = 0 to Array.length c.inds - 1 do
        let cc = c.inds.(i) in
        let g = st.inds_g.(i) in
        let h = cc.hist in
        let j = h.i_prev +. (g *. h.v_prev) in
        let u1 = uon.(cc.n1) and u2 = uon.(cc.n2) in
        if u1 >= 0 then begin
          if g <> 0. && u2 < 0 then rhs.(u1) <- rhs.(u1) +. (g *. vnode.(cc.n2));
          rhs.(u1) <- rhs.(u1) -. j
        end;
        if u2 >= 0 then begin
          if g <> 0. && u1 < 0 then rhs.(u2) <- rhs.(u2) +. (g *. vnode.(cc.n1));
          rhs.(u2) <- rhs.(u2) +. j
        end
      done
  | Backward_euler ->
      for i = 0 to Array.length c.inds - 1 do
        let cc = c.inds.(i) in
        let g = st.inds_g.(i) in
        let j = cc.hist.i_prev in
        let u1 = uon.(cc.n1) and u2 = uon.(cc.n2) in
        if u1 >= 0 then begin
          if g <> 0. && u2 < 0 then rhs.(u1) <- rhs.(u1) +. (g *. vnode.(cc.n2));
          rhs.(u1) <- rhs.(u1) -. j
        end;
        if u2 >= 0 then begin
          if g <> 0. && u1 < 0 then rhs.(u2) <- rhs.(u2) +. (g *. vnode.(cc.n1));
          rhs.(u2) <- rhs.(u2) +. j
        end
      done);
  for i = 0 to Array.length c.coupled - 1 do
    stamp_coupled_rhs c rhs vnode c.coupled.(i) st.galpha.(i) st.ieq_k.(i)
  done

let assemble_rhs c st opts rhs vnode t =
  assemble_rhs_hist c st opts rhs vnode;
  add_isources_rhs c rhs t

let scatter_solution c vnode x =
  for n = 1 to c.n_nodes - 1 do
    let u = c.unknown_of_node.(n) in
    if u >= 0 then vnode.(n) <- x.(u)
  done

(* One fast-path timestep: factored solve for linear circuits; for nonlinear
   circuits, copy the pre-stamped linear system per Newton iteration instead
   of re-walking every element.  Returns the Newton iteration count. *)
let fast_step c st opts vnode t =
  if c.n_unknown = 0 then 0
  else
    match st.linear_fact with
    | Some f ->
        assemble_rhs c st opts st.rhs vnode t;
        factored_solve f st.rhs st.xsol;
        scatter_solution c vnode st.rhs;
        1
    | None ->
        assemble_rhs c st opts st.base_rhs vnode t;
        let iter = ref 0 and converged = ref false in
        while (not !converged) && !iter < opts.newton_max do
          incr iter;
          sys_blit ~src:st.base ~dst:st.newton_sys;
          Array.blit st.base_rhs 0 st.rhs 0 c.n_unknown;
          Array.iter (fun dev -> stamp_nonlinear c st.newton_sys st.rhs vnode dev) c.nonlinears;
          (match st.newton_sys with
          | B b -> Banded.solve_in_place b st.rhs
          | D m ->
              let lu = Linalg.lu_factor_in_place m in
              Linalg.lu_solve_into lu st.rhs st.xsol;
              Array.blit st.xsol 0 st.rhs 0 c.n_unknown);
          let worst = ref 0. in
          for n = 1 to c.n_nodes - 1 do
            let u = c.unknown_of_node.(n) in
            if u >= 0 then begin
              let dv = st.rhs.(u) -. vnode.(n) in
              worst := Float.max !worst (Float.abs dv);
              let dv = Float.max (-.opts.dv_limit) (Float.min opts.dv_limit dv) in
              vnode.(n) <- vnode.(n) +. dv
            end
          done;
          if !worst < opts.newton_tol then converged := true
        done;
        if not !converged then
          failwith (Printf.sprintf "Engine: Newton failed to converge at t=%g s" t);
        !iter

(* The pre-factorization stepper: rebuild and refactor the whole system at
   every step (and every Newton iteration), exactly as the engine did before
   the compile/factor/step split.  Kept as the golden reference for
   equivalence tests and speedup measurement. *)
let rebuild_step c st opts vnode t =
  let dt = opts.dt in
  let assemble_base () =
    let sys = sys_create ~n:c.n_unknown ~bw:c.bandwidth in
    sys_clear sys;
    let rhs = Array.make c.n_unknown 0. in
    Array.iter (fun (r : resistor) -> stamp c sys rhs vnode r.rn1 r.rn2 r.rg 0.) c.resistors;
    Array.iter
      (fun (cc : companion) ->
        let g = cap_g opts.integration dt cc in
        stamp c sys rhs vnode cc.n1 cc.n2 g (cap_ieq opts.integration g cc))
      c.caps;
    Array.iter
      (fun (cc : companion) ->
        let g = ind_g opts.integration dt cc in
        stamp c sys rhs vnode cc.n1 cc.n2 g (ind_ieq opts.integration g cc))
      c.inds;
    Array.iteri
      (fun i k ->
        stamp_coupled c sys rhs vnode k st.galpha.(i) st.ieq_k.(i))
      c.coupled;
    Array.iter (fun (s : isource) -> stamp c sys rhs vnode s.sn1 s.sn2 0. (s.samps t)) c.isources;
    (sys, rhs)
  in
  newton ~opts ~c ~assemble_base ~vnode ~t

(* Commit companion states after a converged step.  Coupled groups reuse the
   step's alpha*L^-1 and pre-step history sources.  The companion
   conductances come from [st] rather than being re-divided per element per
   step — [make_transient_state] computed them with the exact same
   expressions, so the substitution is bit-identical. *)
let commit_step c st opts vnode =
  (match opts.integration with
  | Trapezoidal ->
      for i = 0 to Array.length c.caps - 1 do
        let cc = c.caps.(i) in
        let h = cc.hist in
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let g = st.caps_g.(i) in
        let icur = (g *. v) -. ((g *. h.v_prev) +. h.i_prev) in
        h.v_prev <- v;
        h.i_prev <- icur
      done
  | Backward_euler ->
      for i = 0 to Array.length c.caps - 1 do
        let cc = c.caps.(i) in
        let h = cc.hist in
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let icur = st.caps_g.(i) *. (v -. h.v_prev) in
        h.v_prev <- v;
        h.i_prev <- icur
      done);
  (match opts.integration with
  | Trapezoidal ->
      for i = 0 to Array.length c.inds - 1 do
        let cc = c.inds.(i) in
        let h = cc.hist in
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let g = st.inds_g.(i) in
        let icur = (g *. v) +. h.i_prev +. (g *. h.v_prev) in
        h.v_prev <- v;
        h.i_prev <- icur
      done
  | Backward_euler ->
      for i = 0 to Array.length c.inds - 1 do
        let cc = c.inds.(i) in
        let h = cc.hist in
        let v = vnode.(cc.n1) -. vnode.(cc.n2) in
        let icur = (st.inds_g.(i) *. v) +. h.i_prev in
        h.v_prev <- v;
        h.i_prev <- icur
      done);
  for gi = 0 to Array.length c.coupled - 1 do
    let k = c.coupled.(gi) in
    (* galpha/ieq still reference the pre-step state; commit currents
       first, voltages after. *)
    let g = st.galpha.(gi) and ieq = st.ieq_k.(gi) and v_new = st.vnew_k.(gi) in
    let nb = Array.length k.k_branches in
    for p = 0 to nb - 1 do
      let a, b = k.k_branches.(p) in
      v_new.(p) <- vnode.(a) -. vnode.(b)
    done;
    for p = 0 to nb - 1 do
      let acc = ref ieq.(p) in
      for q = 0 to nb - 1 do
        acc := !acc +. (g.(p).(q) *. v_new.(q))
      done;
      k.i_prev_k.(p) <- !acc
    done;
    Array.blit v_new 0 k.v_prev_k 0 nb
  done

(* Companion states from the DC point (inductor/coupled history currents
   through the DC solve's 1 kS short, matching [dc_solve]'s [g_short]). *)
let init_companions c vnode =
  Array.iter
    (fun (cc : companion) ->
      cc.hist.v_prev <- vnode.(cc.n1) -. vnode.(cc.n2);
      cc.hist.i_prev <- 0.)
    c.caps;
  Array.iter
    (fun (cc : companion) ->
      let dv = vnode.(cc.n1) -. vnode.(cc.n2) in
      cc.hist.v_prev <- dv;
      cc.hist.i_prev <- 1e3 *. dv)
    c.inds;
  Array.iter
    (fun (k : coupled_state) ->
      Array.iteri
        (fun p (a, b) ->
          let dv = vnode.(a) -. vnode.(b) in
          k.v_prev_k.(p) <- dv;
          k.i_prev_k.(p) <- 1e3 *. dv)
        k.k_branches)
    c.coupled

(* Selective recording: storing all nodes costs O(nodes * steps) memory;
   long-ladder references only ever measure input/near/far.  Returns the
   node -> column map (-1 = unrecorded) and the node-ascending recorded
   list; column ids were assigned in node order, so column [i] is exactly
   [rec_nodes.(i)]'s trace. *)
let record_plan c record_nodes =
  let col_of_node = Array.make c.n_nodes (-1) in
  (match record_nodes with
  | None -> Array.iteri (fun n _ -> col_of_node.(n) <- n) col_of_node
  | Some nodes ->
      List.iter
        (fun n ->
          if n < 0 || n >= c.n_nodes then
            invalid_arg "Engine.transient: record_nodes entry out of range";
          col_of_node.(n) <- 0)
        nodes;
      let next = ref 0 in
      Array.iteri
        (fun n marked ->
          if marked >= 0 then begin
            col_of_node.(n) <- !next;
            incr next
          end)
        col_of_node);
  let rec_nodes =
    let acc = ref [] in
    for n = c.n_nodes - 1 downto 0 do
      if col_of_node.(n) >= 0 then acc := n :: !acc
    done;
    Array.of_list !acc
  in
  (col_of_node, rec_nodes)

(* ------------------------------------------------------------- adaptive *)

type adaptive = { dt_min : float; dt_max : float; ltol : float }

let default_adaptive ?(dt_min = 0.25e-12) ?dt_max ?(ltol = 1e-2) () =
  let dt_max = match dt_max with Some v -> v | None -> dt_min *. 256. in
  { dt_min; dt_max; ltol }

(* Grow the rung only after this many consecutive accepted steps whose LTE
   estimate sits comfortably inside the budget. *)
let grow_after = 2
let grow_margin = 0.25

(* LTE-controlled stepper.  Step sizes live on the quantized ladder
   [h = dt_min * 2^k] so the per-(integration, h) factorization from
   [make_transient_state] is built at most once per rung and reused across
   every step taken at that rung; only breakpoint-clamped "offcut" steps
   (one per arrival at a source kink) assemble a fresh system.

   The local truncation error of each attempted step is estimated as the
   gap between the corrector solution and a quadratic extrapolation through
   the last three accepted points (divided differences, so non-uniform
   history is handled); both scale with h^3 * v''', so the gap tracks the
   trapezoidal LTE.  A step whose estimate exceeds [ltol] is rolled back —
   the solve only mutates [vnode], and companion history is only advanced
   by [commit_step] after acceptance, so rejection is a single vector
   restore — and retried one rung down.  Rung-0 steps are always accepted:
   [dt_min] is the accuracy floor.

   Breakpoints (source kinks declared on the netlist, plus [t_stop]) are
   landed on exactly; landing resets the predictor history and drops back
   to rung 0, since the waveform is not smooth across a kink.

   The stepper is parameterized over where its per-rung and offcut states
   come from ([rung_state]/[offcut_state] return the state plus whether it
   was freshly built, which is what the refactor counter counts) and over
   the DC solve, so the plain [transient] path and the [Compiled] handle
   path (which caches states and the DC point across runs) share this loop
   verbatim — that sharing is what makes their results bit-identical. *)
let validate_adaptive (a : adaptive) =
  if a.dt_min <= 0. || a.dt_max < a.dt_min || a.ltol <= 0. then
    invalid_arg "Engine.transient: adaptive wants 0 < dt_min <= dt_max and ltol > 0"

let adaptive_core ~obs ~opts ~record_nodes (a : adaptive) ~c ~dc ~breakpoints ~rung_state
    ~offcut_state =
  let t_stop = opts.t_stop in
  let vnode = Obs.time obs "engine.dc_solve" dc in
  init_companions c vnode;
  let n_nodes = c.n_nodes in
  let kmax =
    let k = ref 0 in
    while !k < 60 && ldexp a.dt_min (!k + 1) <= a.dt_max do
      incr k
    done;
    !k
  in
  let bps =
    let l = List.filter (fun b -> b > 0. && b < t_stop) breakpoints in
    Array.of_list (l @ [ t_stop ])
  in
  let col_of_node, rec_nodes = record_plan c record_nodes in
  (* The accepted-step count is data-dependent, so the recorded waveforms
     live in doubling arrays (amortized O(1), no per-step allocation). *)
  let cap = ref 256 and len = ref 0 in
  let gtimes = ref (Array.make 256 0.) in
  let gcols = Array.map (fun _ -> ref (Array.make 256 0.)) rec_nodes in
  let push t =
    if !len = !cap then begin
      let ncap = 2 * !cap in
      let nt = Array.make ncap 0. in
      Array.blit !gtimes 0 nt 0 !len;
      gtimes := nt;
      Array.iter
        (fun r ->
          let na = Array.make ncap 0. in
          Array.blit !r 0 na 0 !len;
          r := na)
        gcols;
      cap := ncap
    end;
    !gtimes.(!len) <- t;
    for i = 0 to Array.length rec_nodes - 1 do
      (!(gcols.(i))).(!len) <- vnode.(rec_nodes.(i))
    done;
    incr len
  in
  push 0.;
  (* Predictor history: the last three accepted (t, vnode) samples, rotated
     by reference swap so the hot loop never allocates. *)
  let h0v = ref (Array.make n_nodes 0.)
  and h1v = ref (Array.make n_nodes 0.)
  and h2v = ref (Array.make n_nodes 0.) in
  let h0t = ref 0. and h1t = ref 0. and h2t = ref 0. in
  let nh = ref 0 in
  let push_hist tm =
    let tmp = !h0v in
    h0v := !h1v;
    h1v := !h2v;
    h2v := tmp;
    h0t := !h1t;
    h1t := !h2t;
    h2t := tm;
    Array.blit vnode 0 !h2v 0 n_nodes;
    if !nh < 3 then incr nh
  in
  push_hist 0.;
  let v_save = Array.make n_nodes 0. in
  (* Worst |corrector - quadratic extrapolation| over the unknown nodes
     (forced nodes are exact by construction). *)
  let pred_err t_new =
    let va = !h0v and vb = !h1v and vc = !h2v in
    let ta = !h0t and tb = !h1t and tc = !h2t in
    let dab = tb -. ta and dbc = tc -. tb and dac = tc -. ta in
    let x1 = t_new -. ta and x2 = t_new -. tb in
    let uon = c.unknown_of_node in
    let worst = ref 0. in
    for n = 1 to n_nodes - 1 do
      if uon.(n) >= 0 then begin
        let f_ab = (vb.(n) -. va.(n)) /. dab in
        let f_bc = (vc.(n) -. vb.(n)) /. dbc in
        let f2 = (f_bc -. f_ab) /. dac in
        let p = va.(n) +. (x1 *. (f_ab +. (x2 *. f2))) in
        let e = Float.abs (vnode.(n) -. p) in
        if e > !worst then worst := e
      end
    done;
    !worst
  in
  let refactors = ref 0 in
  let state_for k =
    let st, fresh = rung_state k in
    if fresh then incr refactors;
    st
  in
  let total_newton = ref 0 and worst_newton = ref 0 in
  let rejected = ref 0 in
  let k = ref 0 and consec = ref 0 and bpi = ref 0 in
  let t = ref 0. in
  (* Steps that would leave a sliver shorter than half a rung-0 step before
     the next breakpoint are stretched to land on it instead. *)
  let slack = 0.5 *. a.dt_min in
  let n_bps = Array.length bps in
  let step_t0 = Obs.start obs in
  let dl_tick = ref 0 in
  while !bpi < n_bps do
    incr dl_tick;
    if !dl_tick land (deadline_stride - 1) = 0 then Deadline.check_ambient ();
    let bp = bps.(!bpi) in
    let rung_h = ldexp a.dt_min !k in
    let clamped = !t +. rung_h >= bp -. slack in
    let h_eff = if clamped then bp -. !t else rung_h in
    let t_new = if clamped then bp else !t +. rung_h in
    let st =
      if clamped then begin
        let st, fresh = offcut_state h_eff in
        if fresh then incr refactors;
        st
      end
      else state_for !k
    in
    Array.blit vnode 0 v_save 0 n_nodes;
    update_forced c vnode t_new;
    for i = 0 to Array.length c.coupled - 1 do
      coupled_ieq_into c.coupled.(i) opts.integration st.galpha.(i) st.ieq_k.(i)
    done;
    let verdict =
      match fast_step c st opts vnode t_new with
      | iters ->
          (* err < 0 means "no estimate yet" (fewer than three accepted
             points since the start or the last kink). *)
          let err = if !nh >= 3 then pred_err t_new else -1. in
          if !k = 0 || err < 0. || err <= a.ltol then Some (iters, err) else None
      | exception Failure _ when !k > 0 -> None
    in
    match verdict with
    | None ->
        Array.blit v_save 0 vnode 0 n_nodes;
        incr rejected;
        k := Int.max 0 (!k - 1);
        consec := 0
    | Some (iters, err) ->
        total_newton := !total_newton + iters;
        worst_newton := Int.max !worst_newton iters;
        commit_step c st opts vnode;
        t := t_new;
        push t_new;
        push_hist t_new;
        Obs.observe obs "engine.step_size_ns" (h_eff *. 1e9);
        if clamped then begin
          incr bpi;
          k := 0;
          consec := 0;
          (* The source is not smooth across the kink just landed on:
             restart the predictor from this point only. *)
          nh := 1
        end
        else begin
          if err >= 0. && err <= grow_margin *. a.ltol then incr consec else consec := 0;
          if !consec >= grow_after && !k < kmax then begin
            k := !k + 1;
            consec := 0
          end
        end
  done;
  let n_steps = !len - 1 in
  let times_ = Array.sub !gtimes 0 !len in
  let cols = Array.map (fun r -> Array.sub !r 0 !len) gcols in
  if Obs.enabled obs then begin
    let path =
      if Array.length c.nonlinears = 0 then "adaptive-linear" else "adaptive-newton"
    in
    Obs.finish obs
      ~args:
        [
          ("steps", string_of_int n_steps);
          ("rejected", string_of_int !rejected);
          ("refactors", string_of_int !refactors);
          ("newton_total", string_of_int !total_newton);
          ("path", path);
        ]
      "engine.step_loop" step_t0;
    Obs.incr obs "engine.transients";
    Obs.add obs "engine.steps" n_steps;
    Obs.add obs "engine.newton_iters" !total_newton;
    Obs.add obs "engine.steps_rejected" !rejected;
    Obs.add obs "engine.refactors" !refactors
  end;
  {
    times_;
    col_of_node;
    cols;
    total_newton = !total_newton;
    worst_newton = !worst_newton;
    rejected_ = !rejected;
    refactors_ = !refactors;
  }

let transient_adaptive ~obs ~opts ~record_nodes (a : adaptive) netlist =
  validate_adaptive a;
  if opts.t_stop <= 0. then invalid_arg "Engine.transient: t_stop must be positive";
  let c = Obs.time obs "engine.compile" (fun () -> compile netlist) in
  let rungs : (int, transient_state) Hashtbl.t = Hashtbl.create 8 in
  adaptive_core ~obs ~opts ~record_nodes a ~c
    ~dc:(fun () -> dc_solve ~t:0. c opts)
    ~breakpoints:(Netlist.breakpoints netlist)
    ~rung_state:(fun k ->
      match Hashtbl.find_opt rungs k with
      | Some st -> (st, false)
      | None ->
          let st = make_transient_state c { opts with dt = ldexp a.dt_min k } in
          Hashtbl.add rungs k st;
          (st, true))
    ~offcut_state:(fun h_eff -> (make_transient_state c { opts with dt = h_eff }, true))

(* Fixed-step stepping shared by [transient] and [Compiled.run]; like
   [adaptive_core] it is parameterized over the DC solve and the solver
   state so the compiled-handle path can substitute cached ones. *)
let fixed_core ~obs ~opts ~record_nodes ~reassemble_per_step ~c ~dc ~state =
  let dt = opts.dt and t_stop = opts.t_stop in
  (* Tiny epsilon guards float-division noise (1e-9 / 10e-12 is slightly
     above 100) from adding a spurious extra step. *)
  let n_steps = Int.max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  let vnode = Obs.time obs "engine.dc_solve" dc in
  init_companions c vnode;
  let times_ = Array.init (n_steps + 1) (fun i -> dt *. float_of_int i) in
  let col_of_node, rec_nodes = record_plan c record_nodes in
  let cols = Array.map (fun _ -> Array.make (n_steps + 1) 0.) rec_nodes in
  let record step =
    for i = 0 to Array.length rec_nodes - 1 do
      cols.(i).(step) <- vnode.(rec_nodes.(i))
    done
  in
  record 0;
  let st = Obs.time obs "engine.factor" state in
  let total_newton = ref 0 and worst_newton = ref 0 in
  let step_t0 = Obs.start obs in
  (match (st.linear_fact, reassemble_per_step) with
  | Some f, false ->
      (* Linear fast path, fully specialized: one factored solve per step,
         no per-step dispatch.  The forced-source update is open-coded and
         the isource term split off so that (for the common forced-input
         circuit) no float crosses a non-inlined call boundary per step. *)
      let n_forced = Array.length c.forced in
      let n_coupled = Array.length c.coupled in
      let has_isources = Array.length c.isources > 0 in
      for step = 1 to n_steps do
        if step land (deadline_stride - 1) = 0 then Deadline.check_ambient ();
        let t = times_.(step) in
        for i = 0 to n_forced - 1 do
          let fs = c.forced.(i) in
          vnode.(fs.fnode) <- fs.fsrc t
        done;
        for i = 0 to n_coupled - 1 do
          coupled_ieq_into c.coupled.(i) opts.integration st.galpha.(i) st.ieq_k.(i)
        done;
        assemble_rhs_hist c st opts st.rhs vnode;
        if has_isources then add_isources_rhs c st.rhs t;
        factored_solve f st.rhs st.xsol;
        scatter_solution c vnode st.rhs;
        commit_step c st opts vnode;
        record step
      done;
      total_newton := n_steps;
      worst_newton := 1
  | _ ->
      let step_fn = if reassemble_per_step then rebuild_step else fast_step in
      for step = 1 to n_steps do
        if step land (deadline_stride - 1) = 0 then Deadline.check_ambient ();
        let t = times_.(step) in
        update_forced c vnode t;
        (* Coupled-group history sources for this step (pre-step state),
           shared by assembly and commit. *)
        for i = 0 to Array.length c.coupled - 1 do
          coupled_ieq_into c.coupled.(i) opts.integration st.galpha.(i) st.ieq_k.(i)
        done;
        let iters = step_fn c st opts vnode t in
        total_newton := !total_newton + iters;
        worst_newton := Int.max !worst_newton iters;
        commit_step c st opts vnode;
        record step
      done);
  if Obs.enabled obs then begin
    let path =
      match (st.linear_fact, reassemble_per_step) with
      | Some _, false -> "linear-fast"
      | None, false -> "newton-fast"
      | _, true -> "rebuild"
    in
    Obs.finish obs
      ~args:
        [
          ("steps", string_of_int n_steps);
          ("newton_total", string_of_int !total_newton);
          ("path", path);
        ]
      "engine.step_loop" step_t0;
    Obs.incr obs "engine.transients";
    Obs.add obs "engine.steps" n_steps;
    Obs.add obs "engine.newton_iters" !total_newton
  end;
  {
    times_;
    col_of_node;
    cols;
    total_newton = !total_newton;
    worst_newton = !worst_newton;
    rejected_ = 0;
    refactors_ = 0;
  }

let transient ?(obs = Obs.null) ?options ?record_nodes ?(reassemble_per_step = false) ?adaptive
    ~dt ~t_stop netlist =
  let opts = match options with Some o -> o | None -> default_options ~dt ~t_stop in
  match adaptive with
  | Some a ->
      if reassemble_per_step then
        invalid_arg "Engine.transient: adaptive and reassemble_per_step are exclusive";
      transient_adaptive ~obs ~opts ~record_nodes a netlist
  | None ->
      if opts.dt <= 0. || opts.t_stop <= 0. then
        invalid_arg "Engine.transient: dt and t_stop must be positive";
      let c = Obs.time obs "engine.compile" (fun () -> compile netlist) in
      fixed_core ~obs ~opts ~record_nodes ~reassemble_per_step ~c
        ~dc:(fun () -> dc_solve ~t:0. c opts)
        ~state:(fun () -> make_transient_state c opts)

let times r = Array.copy r.times_

let is_recorded r n = n >= 0 && n < Array.length r.col_of_node && r.col_of_node.(n) >= 0

let voltage r n =
  if not (is_recorded r n) then
    invalid_arg
      (Printf.sprintf "Engine.voltage: node %d was not recorded (pass it in ~record_nodes)" n);
  Waveform.create ~ts:r.times_ ~vs:r.cols.(r.col_of_node.(n))

let voltage_at r n t =
  let w = voltage r n in
  Waveform.value_at w t

let newton_total r = r.total_newton
let newton_worst r = r.worst_newton
let steps r = Array.length r.times_ - 1
let steps_rejected r = r.rejected_
let refactors r = r.refactors_

(* Compile-once transient handles for candidate sweeps.

   A handle owns the topology analysis ([compile]), every solver state built
   on it (one [transient_state] per (integration, step size) — fixed-step
   states and adaptive rung/offcut states share the table, since a state
   depends on nothing else), and the last DC operating point.  [restamp]
   writes new element values into the existing structure without
   reallocating; only a matrix-affecting value change (R/C/L/L-matrix)
   invalidates the cached states and DC point, so a sweep that only swaps
   the input source pays zero re-factorization.  Results are bit-identical
   to fresh [transient] calls: the shared step cores consume the same floats
   computed by the same expressions in the same order. *)
module Compiled = struct
  type dc_entry = {
    dc_f0 : int64 array;  (* forced-source values at t = 0, bit patterns *)
    dc_i0 : int64 array;  (* current-source values at t = 0, bit patterns *)
    dc_v : float array;
  }

  type handle = {
    h_c : compiled;
    mutable h_nl : Netlist.t;  (* latest restamp target: breakpoints live here *)
    h_states : (int * float, transient_state) Hashtbl.t;
    mutable h_dc : dc_entry option;
  }

  let int_tag = function Trapezoidal -> 0 | Backward_euler -> 1

  let compile ?(obs = Obs.null) netlist =
    let c = Obs.time obs "engine.compile" (fun () -> compile netlist) in
    { h_c = c; h_nl = netlist; h_states = Hashtbl.create 8; h_dc = None }

  let node_count h = h.h_c.n_nodes

  let structure_err () =
    invalid_arg
      "Engine.Compiled.restamp: netlist structure does not match the compiled handle"

  (* Write the new netlist's element values into the compiled slots,
     validating structure (kinds and node pairs in insertion order) as we
     go.  Value changes that alter the nodal matrix mark the handle dirty;
     source/nonlinear closures are swapped without invalidating anything
     (the DC cache re-validates against source values at t = 0 on its
     own).  On a structure mismatch the handle may be partially restamped;
     callers either re-restamp with a matching netlist or rebuild. *)
  let restamp h newnl =
    let c = h.h_c in
    if Netlist.node_count newnl <> c.n_nodes then structure_err ();
    let nf = ref 0 in
    List.iter
      (fun (n, f) ->
        if !nf >= Array.length c.forced then structure_err ();
        let fs = c.forced.(!nf) in
        incr nf;
        if fs.fnode <> n then structure_err ();
        fs.fsrc <- f)
      (Netlist.forced newnl);
    if !nf <> Array.length c.forced then structure_err ();
    let dirty = ref false in
    let ri = ref 0 and ci = ref 0 and li = ref 0 and si = ref 0 and ki = ref 0 and ni = ref 0 in
    List.iter
      (fun (e : Netlist.element) ->
        match e with
        | Resistor { n1; n2; ohms; _ } ->
            if !ri >= Array.length c.resistors then structure_err ();
            let r = c.resistors.(!ri) in
            incr ri;
            if r.rn1 <> n1 || r.rn2 <> n2 then structure_err ();
            let g = 1. /. ohms in
            if r.rg <> g then begin
              r.rg <- g;
              dirty := true
            end
        | Capacitor { n1; n2; farads; _ } ->
            if !ci >= Array.length c.caps then structure_err ();
            let cc = c.caps.(!ci) in
            incr ci;
            if cc.n1 <> n1 || cc.n2 <> n2 then structure_err ();
            if cc.value <> farads then begin
              cc.value <- farads;
              dirty := true
            end
        | Inductor { n1; n2; henries; _ } ->
            if !li >= Array.length c.inds then structure_err ();
            let cc = c.inds.(!li) in
            incr li;
            if cc.n1 <> n1 || cc.n2 <> n2 then structure_err ();
            if cc.value <> henries then begin
              cc.value <- henries;
              dirty := true
            end
        | Current_source { n1; n2; amps; _ } ->
            if !si >= Array.length c.isources then structure_err ();
            let s = c.isources.(!si) in
            incr si;
            if s.sn1 <> n1 || s.sn2 <> n2 then structure_err ();
            s.samps <- amps
        | Coupled_inductors { cp_branches; cp_lmat; _ } ->
            if !ki >= Array.length c.coupled then structure_err ();
            let k = c.coupled.(!ki) in
            incr ki;
            if Array.length k.k_branches <> Array.length cp_branches then structure_err ();
            Array.iteri
              (fun p (a, b) ->
                let a', b' = k.k_branches.(p) in
                if a <> a' || b <> b' then structure_err ())
              cp_branches;
            let same = ref true in
            Array.iteri
              (fun i row ->
                Array.iteri (fun j v -> if k.k_lmat.(i).(j) <> v then same := false) row)
              cp_lmat;
            if not !same then begin
              k.k_lmat <- Array.map Array.copy cp_lmat;
              k.linv <- invert cp_lmat;
              dirty := true
            end
        | Nonlinear nl ->
            if !ni >= Array.length c.nonlinears then structure_err ();
            let old = c.nonlinears.(!ni) in
            if old.nl_nodes <> nl.nl_nodes then structure_err ();
            c.nonlinears.(!ni) <- nl;
            incr ni)
      (Netlist.elements newnl);
    if
      !ri <> Array.length c.resistors
      || !ci <> Array.length c.caps
      || !li <> Array.length c.inds
      || !si <> Array.length c.isources
      || !ki <> Array.length c.coupled
      || !ni <> Array.length c.nonlinears
    then structure_err ();
    h.h_nl <- newnl;
    if !dirty then begin
      Hashtbl.reset h.h_states;
      h.h_dc <- None
    end

  (* One solver state per (integration, step size), shared between the
     fixed-step path and the adaptive rung/offcut ladder — this is where
     a sweep stops paying [make_transient_state] + factorization per run. *)
  let state_for h opts =
    let key = (int_tag opts.integration, opts.dt) in
    match Hashtbl.find_opt h.h_states key with
    | Some st -> (st, false)
    | None ->
        if Hashtbl.length h.h_states >= 128 then Hashtbl.reset h.h_states;
        let st = make_transient_state h.h_c opts in
        Hashtbl.add h.h_states key st;
        (st, true)

  (* The DC operating point depends only on element values and the source
     values at t = 0; cache it keyed by the latter (bit patterns, so any
     behavioural difference at 0 forces a fresh solve).  Nonlinear circuits
     always re-solve — their Newton iteration isn't worth fingerprinting. *)
  let dc_for h opts () =
    let c = h.h_c in
    if Array.length c.nonlinears > 0 then dc_solve ~t:0. c opts
    else begin
      let f0 = Array.map (fun fs -> Int64.bits_of_float (fs.fsrc 0.)) c.forced in
      let i0 = Array.map (fun (s : isource) -> Int64.bits_of_float (s.samps 0.)) c.isources in
      match h.h_dc with
      | Some e when e.dc_f0 = f0 && e.dc_i0 = i0 -> Array.copy e.dc_v
      | _ ->
          let v = dc_solve ~t:0. c opts in
          h.h_dc <- Some { dc_f0 = f0; dc_i0 = i0; dc_v = Array.copy v };
          v
    end

  let run ?(obs = Obs.null) ?options ?record_nodes ?(reassemble_per_step = false) ?adaptive
      ~dt ~t_stop h =
    let opts = match options with Some o -> o | None -> default_options ~dt ~t_stop in
    match adaptive with
    | Some a ->
        if reassemble_per_step then
          invalid_arg "Engine.transient: adaptive and reassemble_per_step are exclusive";
        validate_adaptive a;
        if opts.t_stop <= 0. then invalid_arg "Engine.transient: t_stop must be positive";
        adaptive_core ~obs ~opts ~record_nodes a ~c:h.h_c ~dc:(dc_for h opts)
          ~breakpoints:(Netlist.breakpoints h.h_nl)
          ~rung_state:(fun k -> state_for h { opts with dt = ldexp a.dt_min k })
          ~offcut_state:(fun h_eff -> state_for h { opts with dt = h_eff })
    | None ->
        if opts.dt <= 0. || opts.t_stop <= 0. then
          invalid_arg "Engine.transient: dt and t_stop must be positive";
        fixed_core ~obs ~opts ~record_nodes ~reassemble_per_step ~c:h.h_c ~dc:(dc_for h opts)
          ~state:(fun () -> fst (state_for h opts))

  (* Structure-keyed handle cache, domain-local so handles (whose scratch
     is freely mutated during a run) are never shared across domains.  The
     key hashes topology only — node count plus two independent polynomial
     hashes over (kind, nodes) in insertion order; a collision is caught by
     [restamp]'s structural validation and falls back to a rebuild. *)
  let structure_key netlist =
    let a = ref (Netlist.node_count netlist) and b = ref 17 in
    let add x =
      a := (!a * 31) + x;
      b := (!b * 131) + x
    in
    List.iter (fun ((n : int), _) -> add ((3 * n) + 1)) (Netlist.forced netlist);
    List.iter
      (fun (e : Netlist.element) ->
        match e with
        | Resistor { n1; n2; _ } ->
            add 11;
            add n1;
            add n2
        | Capacitor { n1; n2; _ } ->
            add 13;
            add n1;
            add n2
        | Inductor { n1; n2; _ } ->
            add 19;
            add n1;
            add n2
        | Current_source { n1; n2; _ } ->
            add 23;
            add n1;
            add n2
        | Coupled_inductors { cp_branches; _ } ->
            add 29;
            Array.iter
              (fun ((x : int), (y : int)) ->
                add x;
                add y)
              cp_branches
        | Nonlinear nl ->
            add 37;
            Array.iter add nl.nl_nodes)
      (Netlist.elements netlist);
    (Netlist.node_count netlist, !a, !b)

  let cache_hits = Atomic.make 0
  let cache_misses = Atomic.make 0
  let cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

  let cache_key : (int * int * int, handle) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 16)

  let clear_cache () = Hashtbl.reset (Domain.DLS.get cache_key)

  let cached ?(obs = Obs.null) netlist =
    let tbl = Domain.DLS.get cache_key in
    let key = structure_key netlist in
    match Hashtbl.find_opt tbl key with
    | Some h -> (
        match restamp h netlist with
        | () ->
            Atomic.incr cache_hits;
            Obs.incr obs "engine.handle.hits";
            h
        | exception Invalid_argument _ ->
            (* Key collision (or a half-restamped handle from a previous
               collision): rebuild and let the new handle own the slot. *)
            Atomic.incr cache_misses;
            Obs.incr obs "engine.handle.misses";
            let h = compile ~obs netlist in
            Hashtbl.replace tbl key h;
            h)
    | None ->
        Atomic.incr cache_misses;
        Obs.incr obs "engine.handle.misses";
        if Hashtbl.length tbl >= 64 then Hashtbl.reset tbl;
        let h = compile ~obs netlist in
        Hashtbl.replace tbl key h;
        h
end
