(** TTY-aware progress meter, safe to drive from multiple domains.

    When the output channel is a terminal the count redraws in place
    ([\r]); otherwise a plain ["label k/n"] line is printed every
    [every] completions (default: ~5% increments) so non-interactive
    logs stay bounded. *)

type t

val channel_is_tty : out_channel -> bool
(** Whether the channel is attached to a terminal ([false] on any error).
    The same probe {!create} uses; exposed so other renderers (e.g. the
    [top] dashboard) share one notion of "interactive". *)

val create :
  ?channel:out_channel -> ?every:int -> label:string -> total:int -> unit -> t
(** [channel] defaults to [stderr].  [every] (non-TTY line interval)
    defaults to [max 1 (total / 20)]; pass [~every:1] for line-per-item. *)

val report : t -> int -> unit
(** [report t k] shows completion count [k] (subject to [every]). *)

val tick : t -> unit
(** Atomically increment the internal counter and report it. *)

val set_total : t -> int -> unit
(** Revise the total (e.g. once a sweep learns its survivor count). *)

val finish : t -> unit
(** Terminate the meter; on a TTY prints the final count and a newline.
    Further [report]/[tick] calls are ignored. *)
