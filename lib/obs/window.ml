(* Rolling-window telemetry over cumulative [Obs] snapshots.

   The server's ticker records a light snapshot (counters + histograms,
   spans dropped) every tick; the window keeps the most recent [capacity]
   of them and answers "what happened over the last ~capacity ticks" by
   subtracting the oldest retained sample from the newest.  Storing
   cumulative samples rather than per-tick deltas makes the arithmetic
   independent of the ticker period: any two tickers that bracket the same
   interval report the same window delta.

   The mutex makes recording (listener domain) and reading (whichever
   domain serves a [metrics]/[health] request) safe against each other;
   samples themselves are immutable once stored. *)

type sample = {
  at : float;
  counters : (string * int) list;
  stats : (string * Obs.stat_summary) list;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable items : sample list;  (* newest first, length <= capacity *)
}

let create ?(capacity = 60) () =
  { capacity = Int.max 2 capacity; mutex = Mutex.create (); items = [] }

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let record t ?at (m : Obs.metrics) =
  let at = match at with Some a -> a | None -> Obs.now () in
  let s = { at; counters = m.Obs.m_counters; stats = m.Obs.m_stats } in
  Mutex.lock t.mutex;
  t.items <- s :: truncate (t.capacity - 1) t.items;
  Mutex.unlock t.mutex

let clear t =
  Mutex.lock t.mutex;
  t.items <- [];
  Mutex.unlock t.mutex

let items t =
  Mutex.lock t.mutex;
  let l = t.items in
  Mutex.unlock t.mutex;
  l

let samples t = List.length (items t)

let latest t = match items t with [] -> None | s :: _ -> Some s

(* Newest and oldest retained samples, when the window holds at least two. *)
let ends t =
  match items t with
  | [] | [ _ ] -> None
  | newest :: rest -> Some (newest, List.nth rest (List.length rest - 1))

let span_s t =
  match ends t with
  | None -> 0.
  | Some (newest, oldest) -> Float.max 0. (newest.at -. oldest.at)

let counter_at s name =
  match List.assoc_opt name s.counters with Some n -> n | None -> 0

let counter_delta t name =
  match ends t with
  | None -> 0
  | Some (newest, oldest) ->
      Int.max 0 (counter_at newest name - counter_at oldest name)

let rate t name =
  let span = span_s t in
  if span <= 0. then 0. else float_of_int (counter_delta t name) /. span

let zero_stat =
  {
    Obs.count = 0;
    sum = 0.;
    min = Float.infinity;
    max = Float.neg_infinity;
    buckets = Array.make Obs.n_buckets 0;
  }

let stat_delta t name =
  match ends t with
  | None -> None
  | Some (newest, oldest) -> (
      match List.assoc_opt name newest.stats with
      | None -> None
      | Some (n : Obs.stat_summary) ->
          let o =
            match List.assoc_opt name oldest.stats with
            | Some o -> o
            | None -> zero_stat
          in
          (* Counts and sums subtract; min/max are lifetime extrema (the
             cumulative samples can't recover per-window extrema), which
             only widens the clamp range of quantile estimates. *)
          Some
            {
              Obs.count = Int.max 0 (n.Obs.count - o.Obs.count);
              sum = Float.max 0. (n.Obs.sum -. o.Obs.sum);
              min = n.Obs.min;
              max = n.Obs.max;
              buckets =
                Array.init Obs.n_buckets (fun i ->
                    Int.max 0 (n.Obs.buckets.(i) - o.Obs.buckets.(i)));
            })
