(* Serializers for {!Obs.metrics}: a metrics JSON summary and a Chrome
   trace-event JSON loadable in chrome://tracing or https://ui.perfetto.dev.
   Telemetry lives in these sidecar files only — the deterministic
   [Rlc_flow.Report] payloads never embed it. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* ----------------------------------------------------- metrics summary *)

let metrics_json (m : Obs.metrics) =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n  \"schema\": \"rlc-obs/1\",\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
    m.Obs.m_counters;
  if m.Obs.m_counters <> [] then add "\n  ";
  add "},\n  \"stats\": {";
  List.iteri
    (fun i (name, (s : Obs.stat_summary)) ->
      if i > 0 then add ",";
      let mean = if s.count > 0 then s.sum /. float_of_int s.count else 0. in
      let mn = if s.count > 0 then s.min else 0. in
      let mx = if s.count > 0 then s.max else 0. in
      add
        (Printf.sprintf
           "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": \
            %s, \"mean\": %s, \"buckets\": [%s]}"
           (json_escape name) s.count (num s.sum) (num mn) (num mx) (num mean)
           (String.concat ", "
              (Array.to_list (Array.map string_of_int s.buckets)))))
    m.Obs.m_stats;
  if m.Obs.m_stats <> [] then add "\n  ";
  add "},\n  \"span_totals\": {";
  let names =
    List.sort_uniq compare (List.map (fun sp -> sp.Obs.sp_name) m.Obs.m_spans)
  in
  List.iteri
    (fun i name ->
      if i > 0 then add ",";
      let count, total = Obs.span_total m name in
      add
        (Printf.sprintf "\n    \"%s\": {\"count\": %d, \"total_s\": %s}"
           (json_escape name) count (num total)))
    names;
  if names <> [] then add "\n  ";
  add "}\n}\n";
  Buffer.contents b

(* ------------------------------------------------- Chrome trace events *)

let chrome_trace (m : Obs.metrics) =
  let b = Buffer.create 8192 in
  let add = Buffer.add_string b in
  add "{\"traceEvents\": [";
  List.iteri
    (fun i (sp : Obs.span) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n  {\"name\": \"%s\", \"cat\": \"rlc\", \"ph\": \"X\", \"pid\": \
            0, \"tid\": %d, \"ts\": %s, \"dur\": %s"
           (json_escape sp.Obs.sp_name) sp.Obs.sp_tid
           (num (sp.Obs.sp_start *. 1e6))
           (num (sp.Obs.sp_dur *. 1e6)));
      if sp.Obs.sp_args <> [] then begin
        add ", \"args\": {";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then add ", ";
            add (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
          sp.Obs.sp_args;
        add "}"
      end;
      add "}")
    m.Obs.m_spans;
  add "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b
