(** Rolling-window aggregation over cumulative {!Obs} snapshots.

    A server ticker calls {!record} with {!Obs.snapshot_light} results
    every tick; the window retains the newest [capacity] samples and
    derives per-window deltas, rates, and histogram slices by subtracting
    the oldest retained sample from the newest.  Because the samples are
    cumulative, the window delta over a given interval is independent of
    the ticker period used to cover it.

    Thread-safe: one domain may {!record} while others read. *)

type sample = {
  at : float;  (** wall-clock seconds when the sample was taken *)
  counters : (string * int) list;  (** cumulative, name-sorted *)
  stats : (string * Obs.stat_summary) list;  (** cumulative, name-sorted *)
}

type t

val create : ?capacity:int -> unit -> t
(** A window retaining the newest [capacity] samples (default 60; at a 1 s
    tick that is a one-minute window).  Clamped to [>= 2] — a single
    sample has no delta. *)

val record : t -> ?at:float -> Obs.metrics -> unit
(** Append a cumulative sample (spans are dropped), evicting the oldest
    when full.  [at] defaults to {!Obs.now}[ ()]. *)

val clear : t -> unit

val samples : t -> int
(** Number of retained samples. *)

val latest : t -> sample option
(** The newest sample — the freshest cumulative counter/histogram view. *)

val span_s : t -> float
(** Seconds between the oldest and newest retained samples; [0.] with
    fewer than two samples. *)

val counter_delta : t -> string -> int
(** Increase of a counter across the window ([0] with fewer than two
    samples; clamped [>= 0]). *)

val rate : t -> string -> float
(** [counter_delta / span_s], or [0.] when the span is empty. *)

val stat_delta : t -> string -> Obs.stat_summary option
(** Histogram of values observed within the window: counts, sums and
    buckets subtract; [min]/[max] are lifetime extrema (per-window extrema
    are not recoverable from cumulative samples).  [None] if the stat has
    never been observed or the window holds fewer than two samples. *)
