(* Domain-safe instrumentation sink.

   Every mutation first branches on [t.enabled]; the disabled sink ([null])
   therefore costs one load + test per call site and never touches a clock,
   a hashtable or the allocator, which is what keeps golden outputs
   bit-identical and benchmarks noise-free with instrumentation off.

   When enabled, each domain writes into its own buffer (reached through a
   [Domain.DLS] slot keyed per sink), so worker domains never contend on a
   lock in the hot path; the sink-wide mutex only guards the rare buffer
   registration and the final [snapshot] merge. *)

let now () = Unix.gettimeofday ()

let n_buckets = 32

type stat = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  s_buckets : int array;  (* log2 buckets, bucket i = [2^i ns, 2^(i+1) ns) *)
}

type span = {
  sp_name : string;
  sp_tid : int;  (* id of the recording domain *)
  sp_start : float;  (* seconds since the sink's epoch *)
  sp_dur : float;  (* seconds, clamped >= 0 *)
  sp_args : (string * string) list;
}

type buf = {
  b_tid : int;
  b_counters : (string, int ref) Hashtbl.t;
  b_stats : (string, stat) Hashtbl.t;
  mutable b_spans : span list;  (* reverse chronological *)
}

type t = {
  enabled : bool;
  spans : bool;
      (* span recording is a separate capability: counters and histograms
         are bounded (one slot per distinct name) so a daemon can keep them
         on forever, but every recorded span is retained until [snapshot] —
         memory grows with total spans, so long-running processes only turn
         them on when a trace/metrics sidecar will actually consume them *)
  epoch : float;
  mutex : Mutex.t;  (* guards [bufs] *)
  mutable bufs : buf list;
  key : buf option Domain.DLS.key;
}

let create ?(spans = true) () =
  {
    enabled = true;
    spans;
    epoch = now ();
    mutex = Mutex.create ();
    bufs = [];
    key = Domain.DLS.new_key (fun () -> None);
  }

let null =
  {
    enabled = false;
    spans = false;
    epoch = 0.;
    mutex = Mutex.create ();
    bufs = [];
    key = Domain.DLS.new_key (fun () -> None);
  }

let enabled t = t.enabled

let spans_enabled t = t.enabled && t.spans

(* The calling domain's buffer, registering it on first use.  Registration
   takes the sink mutex once per (domain, sink) pair; every later call is a
   plain DLS read. *)
let buf_of t =
  match Domain.DLS.get t.key with
  | Some b -> b
  | None ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_counters = Hashtbl.create 16;
          b_stats = Hashtbl.create 16;
          b_spans = [];
        }
      in
      Domain.DLS.set t.key (Some b);
      Mutex.lock t.mutex;
      t.bufs <- b :: t.bufs;
      Mutex.unlock t.mutex;
      b

(* ------------------------------------------------------------- counters *)

let add t name n =
  if t.enabled then begin
    let b = buf_of t in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add b.b_counters name (ref n)
  end

let incr t name = add t name 1

(* ----------------------------------------------------- value histograms *)

let bucket_of v =
  if v <= 1e-9 then 0
  else
    let i = int_of_float (Float.log2 (v /. 1e-9)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let observe t name v =
  if t.enabled then begin
    let b = buf_of t in
    let s =
      match Hashtbl.find_opt b.b_stats name with
      | Some s -> s
      | None ->
          let s =
            {
              s_count = 0;
              s_sum = 0.;
              s_min = Float.infinity;
              s_max = Float.neg_infinity;
              s_buckets = Array.make n_buckets 0;
            }
          in
          Hashtbl.add b.b_stats name s;
          s
    in
    s.s_count <- s.s_count + 1;
    s.s_sum <- s.s_sum +. v;
    if v < s.s_min then s.s_min <- v;
    if v > s.s_max then s.s_max <- v;
    let bk = bucket_of v in
    s.s_buckets.(bk) <- s.s_buckets.(bk) + 1
  end

(* --------------------------------------------------------- trace ambient *)

(* The current request's trace id, ambient per domain (one process-wide DLS
   slot, not per sink).  [record_span] stamps it onto every span recorded
   while it is installed, so one served request's spans — flow, pool,
   engine, xtalk, wherever they were recorded — can be filtered out of a
   Chrome trace of the whole concurrent server by a single arg.  The pool
   snapshots the publisher's ambient per batch and re-installs it around
   each worker's drain, exactly like the ambient deadline. *)

let trace_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_trace () = Domain.DLS.get trace_key

let with_trace trace f =
  let prev = Domain.DLS.get trace_key in
  Domain.DLS.set trace_key trace;
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_key prev) f

(* ---------------------------------------------------------------- spans *)

let record_span t name t0 dur args =
  let b = buf_of t in
  let args =
    match Domain.DLS.get trace_key with
    | Some id -> ("trace", id) :: args
    | None -> args
  in
  b.b_spans <-
    {
      sp_name = name;
      sp_tid = b.b_tid;
      sp_start = t0 -. t.epoch;
      sp_dur = Float.max 0. dur;
      sp_args = args;
    }
    :: b.b_spans

let start t = if t.enabled && t.spans then now () else 0.

let finish t ?(args = []) name t0 =
  if t.enabled && t.spans then record_span t name t0 (now () -. t0) args

let time t ?(args = []) name f =
  if not (t.enabled && t.spans) then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
        record_span t name t0 (now () -. t0) args;
        v
    | exception e ->
        record_span t name t0 (now () -. t0)
          (("error", Printexc.to_string e) :: args);
        raise e
  end

(* ------------------------------------------------------------- snapshot *)

type stat_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

type metrics = {
  m_counters : (string * int) list;
  m_stats : (string * stat_summary) list;
  m_spans : span list;
}

let merge_counters bufs =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (prev + !r)
          | None -> Hashtbl.add acc name !r)
        b.b_counters)
    bufs;
  List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

let merge_stats bufs =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name (s : stat) ->
          match Hashtbl.find_opt acc name with
          | Some (m : stat_summary) ->
              Array.iteri (fun i n -> m.buckets.(i) <- m.buckets.(i) + n) s.s_buckets;
              Hashtbl.replace acc name
                {
                  count = m.count + s.s_count;
                  sum = m.sum +. s.s_sum;
                  min = Float.min m.min s.s_min;
                  max = Float.max m.max s.s_max;
                  buckets = m.buckets;
                }
          | None ->
              Hashtbl.add acc name
                {
                  count = s.s_count;
                  sum = s.s_sum;
                  min = s.s_min;
                  max = s.s_max;
                  buckets = Array.copy s.s_buckets;
                })
        b.b_stats)
    bufs;
  List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

let snapshot t =
  if not t.enabled then { m_counters = []; m_stats = []; m_spans = [] }
  else begin
    Mutex.lock t.mutex;
    let bufs = t.bufs in
    Mutex.unlock t.mutex;
    let spans = List.concat_map (fun b -> b.b_spans) bufs in
    let spans =
      (* (tid, start, longest-first) so an enclosing span precedes the spans
         it contains even when they share a start timestamp. *)
      List.sort
        (fun a b ->
          match Int.compare a.sp_tid b.sp_tid with
          | 0 -> (
              match Float.compare a.sp_start b.sp_start with
              | 0 -> Float.compare b.sp_dur a.sp_dur
              | c -> c)
          | c -> c)
        spans
    in
    { m_counters = merge_counters bufs; m_stats = merge_stats bufs; m_spans = spans }
  end

(* Counters and histograms only, spans skipped.  A periodic telemetry
   ticker calls this once a second for the life of the daemon; merging the
   (ever-growing) span lists on every tick would make the tick cost O(total
   spans served), so the light snapshot stays O(distinct metric names). *)
let snapshot_light t =
  if not t.enabled then { m_counters = []; m_stats = []; m_spans = [] }
  else begin
    Mutex.lock t.mutex;
    let bufs = t.bufs in
    Mutex.unlock t.mutex;
    { m_counters = merge_counters bufs; m_stats = merge_stats bufs; m_spans = [] }
  end

(* ------------------------------------------------- histogram estimation *)

module Histogram = struct
  (* Bucket i of [stat_summary.buckets] covers [2^i ns, 2^(i+1) ns); bucket
     0 additionally absorbs everything <= 1 ns and the last bucket absorbs
     everything past the top, mirroring [bucket_of]. *)

  let bucket_lo i = if i <= 0 then 0. else Float.ldexp 1e-9 i

  let bucket_hi i = Float.ldexp 1e-9 (i + 1)

  (* Quantile estimate from the log2 buckets: walk the cumulative counts to
     the rank [q * count], interpolate linearly inside the landing bucket,
     and clamp to the exact observed [min, max].  Resolution is bounded by
     the bucket width (a factor of 2), which is plenty for dashboard
     p50/p95/p99 and costs nothing extra to record. *)
  let quantile (s : stat_summary) q =
    if s.count <= 0 then Float.nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let target = q *. float_of_int s.count in
      if target <= 0. then s.min
      else begin
        let result = ref s.max in
        let cum = ref 0. in
        (try
           Array.iteri
             (fun i n ->
               if n > 0 then begin
                 let next = !cum +. float_of_int n in
                 if target <= next then begin
                   let frac = (target -. !cum) /. float_of_int n in
                   let lo = bucket_lo i and hi = bucket_hi i in
                   result := lo +. (frac *. (hi -. lo));
                   raise Exit
                 end;
                 cum := next
               end)
             s.buckets
         with Exit -> ());
        Float.max s.min (Float.min s.max !result)
      end
    end
end

(* ------------------------------------------------- snapshot convenience *)

let counter m name =
  match List.assoc_opt name m.m_counters with Some n -> n | None -> 0

let span_total m name =
  List.fold_left
    (fun (n, total) sp ->
      if String.equal sp.sp_name name then (n + 1, total +. sp.sp_dur) else (n, total))
    (0, 0.) m.m_spans
