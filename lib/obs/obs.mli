(** Domain-safe instrumentation: counters, value histograms, and spans.

    A sink is either enabled ({!create}) or the shared disabled {!null}.
    Every operation on a disabled sink reduces to a single branch — no
    clock reads, no allocation — so instrumented code paths stay
    bit-identical and speed-neutral when observability is off.

    Enabled sinks buffer per domain (via [Domain.DLS]) and merge at
    {!snapshot}, so worker domains in [Rlc_parallel.Pool] record without
    lock contention.  Snapshot after the instrumented work has quiesced
    (pool drained or joined). *)

type t
(** An instrumentation sink. *)

val create : ?spans:bool -> unit -> t
(** A fresh enabled sink.  Its epoch is the creation time; span start
    timestamps are relative to it.

    [~spans:false] keeps counters and histograms live but makes every span
    operation ({!start}/{!finish}/{!time}) a no-op.  Counters and
    histograms occupy one slot per distinct name regardless of traffic,
    but spans are retained until {!snapshot} — memory proportional to the
    number recorded — so a long-running daemon that only feeds a telemetry
    window should record spans only when a trace sidecar will consume
    them.  Default [true]. *)

val null : t
(** The shared disabled sink: every operation is a no-op. *)

val enabled : t -> bool

val spans_enabled : t -> bool
(** Whether this sink records spans: enabled and created with
    [~spans:true].  [false] for {!null}. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The repo has no monotonic
    clock dependency; durations are clamped to [>= 0]. *)

(** {1 Counters} *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit

(** {1 Value histograms}

    Each observed value updates count/sum/min/max and a 32-bucket log2
    histogram (bucket [i] covers [[2^i, 2^(i+1)) ns] for durations in
    seconds; any positive unit works, buckets are just log2-spaced). *)

val observe : t -> string -> float -> unit

(** {1 Ambient trace id}

    A per-domain trace id (one process-wide slot, independent of any sink).
    While installed, every span recorded by {!finish}/{!time} — in any
    library layer — carries a [("trace", id)] arg, so all spans belonging
    to one served request can be filtered out of a merged Chrome trace.
    [Rlc_parallel.Pool] snapshots the publisher's ambient trace per batch
    and re-installs it around each worker's drain, exactly like the
    ambient deadline. *)

val with_trace : string option -> (unit -> 'a) -> 'a
(** [with_trace (Some id) f] runs [f] with [id] as the calling domain's
    ambient trace id, restoring the previous value afterwards (also on
    exceptions).  [with_trace None f] clears it for the extent of [f]. *)

val current_trace : unit -> string option
(** The calling domain's ambient trace id, if any. *)

(** {1 Spans} *)

val start : t -> float
(** Timestamp to later pass to {!finish}.  Returns [0.] when disabled. *)

val finish : t -> ?args:(string * string) list -> string -> float -> unit
(** [finish t ~args name t0] records a span from [t0] (a {!start} result)
    to now.  No-op when disabled. *)

val time : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] inside a span.  Exception-safe: a raising
    [f] still records the span, with an ["error"] arg, then re-raises. *)

(** {1 Snapshot} *)

type span = {
  sp_name : string;
  sp_tid : int;  (** recording domain id *)
  sp_start : float;  (** seconds since the sink's epoch *)
  sp_dur : float;  (** seconds, [>= 0] *)
  sp_args : (string * string) list;
}

type stat_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;  (** length {!n_buckets} *)
}

type metrics = {
  m_counters : (string * int) list;  (** name-sorted, summed over domains *)
  m_stats : (string * stat_summary) list;  (** name-sorted, merged *)
  m_spans : span list;  (** sorted by (tid, start, longest-first) *)
}

val n_buckets : int

val snapshot : t -> metrics
(** Merge all per-domain buffers.  Call after instrumented work has
    quiesced; concurrent recording during a snapshot is not torn (each
    buffer is read whole) but may be partially missed. *)

val snapshot_light : t -> metrics
(** Like {!snapshot} but skips the span merge ([m_spans] is [[]]).  Cost is
    O(distinct metric names), independent of how many spans have been
    recorded — suitable for a periodic telemetry ticker that runs for the
    life of a daemon. *)

(** {1 Histogram estimation} *)

module Histogram : sig
  val bucket_lo : int -> float
  (** Lower bound of log2 bucket [i] in seconds ([0.] for bucket 0, which
      also absorbs sub-nanosecond values). *)

  val bucket_hi : int -> float
  (** Exclusive upper bound of log2 bucket [i] in seconds ([2^(i+1)] ns). *)

  val quantile : stat_summary -> float -> float
  (** [quantile s q] estimates the [q]-quantile ([0. <= q <= 1.], clamped)
      of the observed distribution from its log2 buckets: walk the
      cumulative counts to rank [q * count], interpolate linearly inside
      the landing bucket, clamp to the exact [[s.min, s.max]].  Worst-case
      relative error is bounded by the factor-2 bucket width.  Returns
      [nan] when [s.count = 0]. *)
end

val counter : metrics -> string -> int
(** Merged value of a counter, [0] if never incremented. *)

val span_total : metrics -> string -> int * float
(** [(occurrences, total seconds)] over all spans with that name. *)
