(** Domain-safe instrumentation: counters, value histograms, and spans.

    A sink is either enabled ({!create}) or the shared disabled {!null}.
    Every operation on a disabled sink reduces to a single branch — no
    clock reads, no allocation — so instrumented code paths stay
    bit-identical and speed-neutral when observability is off.

    Enabled sinks buffer per domain (via [Domain.DLS]) and merge at
    {!snapshot}, so worker domains in [Rlc_parallel.Pool] record without
    lock contention.  Snapshot after the instrumented work has quiesced
    (pool drained or joined). *)

type t
(** An instrumentation sink. *)

val create : unit -> t
(** A fresh enabled sink.  Its epoch is the creation time; span start
    timestamps are relative to it. *)

val null : t
(** The shared disabled sink: every operation is a no-op. *)

val enabled : t -> bool

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The repo has no monotonic
    clock dependency; durations are clamped to [>= 0]. *)

(** {1 Counters} *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit

(** {1 Value histograms}

    Each observed value updates count/sum/min/max and a 32-bucket log2
    histogram (bucket [i] covers [[2^i, 2^(i+1)) ns] for durations in
    seconds; any positive unit works, buckets are just log2-spaced). *)

val observe : t -> string -> float -> unit

(** {1 Spans} *)

val start : t -> float
(** Timestamp to later pass to {!finish}.  Returns [0.] when disabled. *)

val finish : t -> ?args:(string * string) list -> string -> float -> unit
(** [finish t ~args name t0] records a span from [t0] (a {!start} result)
    to now.  No-op when disabled. *)

val time : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] inside a span.  Exception-safe: a raising
    [f] still records the span, with an ["error"] arg, then re-raises. *)

(** {1 Snapshot} *)

type span = {
  sp_name : string;
  sp_tid : int;  (** recording domain id *)
  sp_start : float;  (** seconds since the sink's epoch *)
  sp_dur : float;  (** seconds, [>= 0] *)
  sp_args : (string * string) list;
}

type stat_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;  (** length {!n_buckets} *)
}

type metrics = {
  m_counters : (string * int) list;  (** name-sorted, summed over domains *)
  m_stats : (string * stat_summary) list;  (** name-sorted, merged *)
  m_spans : span list;  (** sorted by (tid, start, longest-first) *)
}

val n_buckets : int

val snapshot : t -> metrics
(** Merge all per-domain buffers.  Call after instrumented work has
    quiesced; concurrent recording during a snapshot is not torn (each
    buffer is read whole) but may be partially missed. *)

val counter : metrics -> string -> int
(** Merged value of a counter, [0] if never incremented. *)

val span_total : metrics -> string -> int * float
(** [(occurrences, total seconds)] over all spans with that name. *)
