(* TTY-aware progress reporting on stderr (or any channel).

   On a TTY the current count overwrites itself with "\r"; otherwise a
   plain line is printed every [every] completions (so CI logs stay
   bounded).  All entry points are mutex-guarded: pool workers may call
   [tick]/[report] from any domain. *)

type t = {
  label : string;
  mutable total : int;
  mutable every : int;
  channel : out_channel;
  tty : bool;
  mutex : Mutex.t;
  count : int Atomic.t;
  mutable last_len : int;
  mutable finished : bool;
}

let default_every ~tty ~total = if tty then 1 else max 1 (total / 20)

let channel_is_tty channel =
  try Unix.isatty (Unix.descr_of_out_channel channel)
  with Unix.Unix_error _ | Sys_error _ -> false

let create ?(channel = stderr) ?every ~label ~total () =
  let tty = channel_is_tty channel in
  let every =
    match every with Some e -> max 1 e | None -> default_every ~tty ~total
  in
  {
    label;
    total;
    every;
    channel;
    tty;
    mutex = Mutex.create ();
    count = Atomic.make 0;
    last_len = 0;
    finished = false;
  }

let set_total t total =
  Mutex.lock t.mutex;
  t.total <- total;
  if t.every <> 1 || not t.tty then
    t.every <- default_every ~tty:t.tty ~total;
  Mutex.unlock t.mutex

let emit t k =
  if t.tty then begin
    let line =
      if t.total > 0 then
        Printf.sprintf "%s %d/%d (%.0f%%)" t.label k t.total
          (100. *. float_of_int k /. float_of_int t.total)
      else Printf.sprintf "%s %d" t.label k
    in
    let pad = max 0 (t.last_len - String.length line) in
    Printf.fprintf t.channel "\r%s%s%!" line (String.make pad ' ');
    t.last_len <- String.length line
  end
  else if t.total > 0 then
    Printf.fprintf t.channel "%s %d/%d\n%!" t.label k t.total
  else Printf.fprintf t.channel "%s %d\n%!" t.label k

let report t k =
  Mutex.lock t.mutex;
  if (not t.finished) && (t.tty || k mod t.every = 0 || k = t.total) then
    emit t k;
  Mutex.unlock t.mutex

let tick t = report t (Atomic.fetch_and_add t.count 1 + 1)

let finish t =
  Mutex.lock t.mutex;
  if not t.finished then begin
    t.finished <- true;
    if t.tty then begin
      emit t (max (Atomic.get t.count) t.total);
      output_char t.channel '\n';
      flush t.channel
    end
  end;
  Mutex.unlock t.mutex
