(** Exporters for {!Obs.metrics} snapshots.  Both produce sidecar files;
    telemetry never enters the deterministic [Report] payloads. *)

val metrics_json : Obs.metrics -> string
(** Summary JSON (schema ["rlc-obs/1"]): merged counters, histogram
    stats (count/sum/min/max/mean/buckets), and per-name span totals. *)

val chrome_trace : Obs.metrics -> string
(** Chrome trace-event JSON (["X"] complete events, µs timestamps),
    loadable in [chrome://tracing] or Perfetto.  Span args are emitted
    as string-valued [args]. *)
