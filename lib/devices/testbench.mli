(** Driver test benches.

    One helper builds the circuit every experiment shares — ramp input,
    inverter, arbitrary load — and runs the transient.  The cell
    characterization runner, the reference ("HSPICE substitute") waveforms,
    and the device-level tests all go through here so they agree on bias
    conventions: a {e rising} driver output is produced by a {e falling}
    input ramp of the given 0–100 % transition time. *)

module Netlist = Rlc_circuit.Netlist
module Waveform = Rlc_waveform.Waveform

type result = {
  input : Waveform.t;
  output : Waveform.t;
  engine : Rlc_circuit.Engine.result;
  out_node : Netlist.node;
  vdd_node : Netlist.node;
}

val falling_input : Tech.t -> t0:float -> slew:float -> float -> float
(** [falling_input tech ~t0 ~slew t]: holds at [vdd] until [t0], then ramps
    linearly to 0 over [slew] seconds.  Drives a rising output edge. *)

val rising_input : Tech.t -> t0:float -> slew:float -> float -> float

type edge = Rise | Fall
(** Direction of the {e driver output} transition. *)

val drive :
  ?obs:Rlc_obs.Obs.t ->
  ?dt:float ->
  ?t_stop:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?t0:float ->
  ?edge:edge ->
  ?record:(unit -> Netlist.node list) ->
  tech:Tech.t ->
  size:float ->
  input_slew:float ->
  load:(Netlist.t -> Netlist.node -> unit) ->
  unit ->
  result
(** Build [input ramp -> inverter -> load] and simulate.  Defaults:
    [dt = 0.25 ps], [t0 = 10 ps], [edge = Rise],
    [t_stop = t0 + 4 * input_slew + 1 ns].  The [load] callback attaches
    arbitrary elements to the driver output node (pure capacitance, RLC
    ladder, ...); pass [fun _ _ -> ()] for an unloaded driver.

    [record], evaluated after [load] has attached its elements, names the
    extra nodes whose waveforms must be stored (input, output, and vdd are
    always kept).  When omitted every node is recorded — for long ladder
    loads that is O(nodes × steps) memory, so observers that only read a
    few probe nodes should pass the list.

    [obs] and [adaptive] are forwarded to {!Rlc_circuit.Engine.transient};
    the input ramp's corners ([t0] and [t0 + input_slew]) are declared as
    breakpoints so the adaptive stepper lands on them exactly. *)

val cap_load : float -> Netlist.t -> Netlist.node -> unit
(** Ready-made pure-capacitance load (skipped entirely when the value is
    non-positive, so 0 fF is a legal table index). *)
