module Netlist = Rlc_circuit.Netlist
module Engine = Rlc_circuit.Engine
module Waveform = Rlc_waveform.Waveform

type result = {
  input : Waveform.t;
  output : Waveform.t;
  engine : Engine.result;
  out_node : Netlist.node;
  vdd_node : Netlist.node;
}

let falling_input (tech : Tech.t) ~t0 ~slew t =
  if t <= t0 then tech.vdd
  else if t >= t0 +. slew then 0.
  else tech.vdd *. (1. -. ((t -. t0) /. slew))

let rising_input (tech : Tech.t) ~t0 ~slew t =
  if t <= t0 then 0.
  else if t >= t0 +. slew then tech.vdd
  else tech.vdd *. (t -. t0) /. slew

type edge = Rise | Fall

let cap_load farads nl node =
  if farads > 0. then Netlist.capacitor nl ~name:"Cload" node Netlist.ground farads

let drive ?obs ?(dt = 0.25e-12) ?t_stop ?adaptive ?(t0 = 10e-12) ?(edge = Rise) ?record
    ~tech ~size ~input_slew ~load () =
  if input_slew <= 0. then invalid_arg "Testbench.drive: input_slew must be positive";
  let t_stop =
    match t_stop with Some t -> t | None -> t0 +. (4. *. input_slew) +. 1e-9
  in
  let nl = Netlist.create () in
  let vdd_node = Netlist.node nl "vdd" in
  Netlist.force_voltage nl vdd_node (fun _ -> tech.Tech.vdd);
  let input = Netlist.node nl "in" in
  let input_fn =
    match edge with
    | Rise -> falling_input tech ~t0 ~slew:input_slew
    | Fall -> rising_input tech ~t0 ~slew:input_slew
  in
  (* The ramp corners are where the adaptive stepper must land exactly. *)
  Netlist.force_voltage nl ~breakpoints:[ t0; t0 +. input_slew ] input input_fn;
  let output = Netlist.node nl "out" in
  let inv = Inverter.make tech ~size in
  Inverter.add nl inv ~vdd_node ~input ~output;
  load nl output;
  (* The [record] thunk runs after [load] so it can name nodes the load
     callback created (e.g. the far end of a just-attached ladder).  The
     bench's own observation nodes are always kept. *)
  let record_nodes =
    match record with
    | None -> None
    | Some extra -> Some (input :: output :: vdd_node :: extra ())
  in
  let engine = Engine.transient ?obs ?record_nodes ?adaptive ~dt ~t_stop nl in
  {
    input = Engine.voltage engine input;
    output = Engine.voltage engine output;
    engine;
    out_node = output;
    vdd_node;
  }
