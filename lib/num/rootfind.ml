exception No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then raise No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let x = ref (0.5 *. (!lo +. !hi)) in
    (try
       for _ = 1 to max_iter do
         x := 0.5 *. (!lo +. !hi);
         let fx = f !x in
         if fx = 0. || !hi -. !lo < tol then raise Exit;
         if fx *. !flo < 0. then hi := !x
         else begin
           lo := !x;
           flo := fx
         end
       done
     with Exit -> ());
    !x
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if !fa = 0. then !a
  else if !fb = 0. then !b
  else if !fa *. !fb > 0. then raise No_bracket
  else begin
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa and d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    while !fb <> 0. && Float.abs (!b -. !a) > tol && !iter < max_iter do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_lim = ((3. *. !a) +. !b) /. 4. in
      let out_of_range =
        if lo_lim < !b then s < lo_lim || s > !b else s > lo_lim || s < !b
      in
      let s =
        if
          out_of_range
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs !d /. 2.)
          || (!mflag && Float.abs (!b -. !c) < tol)
          || ((not !mflag) && Float.abs !d < tol)
        then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !b -. !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    done;
    !b
  end

type fixed_point_result = { value : float; iterations : int; converged : bool }

let no_iter_hook : float -> unit = fun _ -> ()

let fixed_point ?(on_iter = no_iter_hook) ?(damping = 1.0) ?(rel_tol = 1e-6) ?(max_iter = 100)
    f ~init =
  let x = ref init and n = ref 0 and converged = ref false in
  while (not !converged) && !n < max_iter do
    incr n;
    let next = ((1. -. damping) *. !x) +. (damping *. f !x) in
    on_iter next;
    if Float.abs (next -. !x) <= rel_tol *. (Float.abs next +. 1e-30) then converged := true;
    x := next
  done;
  { value = !x; iterations = !n; converged = !converged }

let fixed_point_bracketed ?(on_iter = no_iter_hook) ?(rel_tol = 1e-6) ?(max_iter = 100) f ~lo
    ~hi ~init =
  let clamp x = Float.max lo (Float.min hi x) in
  let fc x = clamp (f (clamp x)) in
  let direct =
    fixed_point ~on_iter ~damping:0.6 ~rel_tol ~max_iter:(Int.min 30 max_iter) fc
      ~init:(clamp init)
  in
  if direct.converged then { direct with value = clamp direct.value }
  else begin
    (* Solve g x = f x - x = 0 on the bracket. *)
    let g x =
      on_iter x;
      fc x -. x
    in
    match brent ~tol:(rel_tol *. (hi -. lo)) ~max_iter g ~lo ~hi with
    | root -> { value = root; iterations = direct.iterations + max_iter; converged = true }
    | exception No_bracket ->
        (* No crossing inside the bracket: the fixed point sits on a bound. *)
        let value = if Float.abs (g lo) < Float.abs (g hi) then lo else hi in
        { value; iterations = direct.iterations; converged = false }
  end
