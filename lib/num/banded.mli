(** Banded LU factorization without pivoting.

    General RLC tree netlists produce nodal matrices whose bandwidth, after
    breadth-first node numbering, is small; this solver keeps their transient
    cost at O(n·bw²) instead of O(n³).  Companion-model nodal matrices are
    diagonally dominant, which justifies the pivot-free elimination (a
    vanishing pivot still raises {!Singular}). *)

type t
(** Mutable banded matrix of dimension [n] with [bw] sub- and
    super-diagonals. *)

exception Singular of int

val create : n:int -> bw:int -> t
val dim : t -> int
val bandwidth : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
(** [set m i j v] with [|i - j| > bw] raises [Invalid_argument]. *)

val add : t -> int -> int -> float -> unit
(** Accumulate [v] into entry [(i, j)]; the stamping primitive. *)

val clear : t -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copy [src]'s entries into [dst] without allocating; dimension and
    bandwidth must match. *)

val mat_vec : t -> float array -> float array

val factor : t -> unit
(** Destructive in-place LU: the strict lower band is overwritten with the
    elimination multipliers so {!solve_factored} can replay the
    factorization against any number of right-hand sides (the matrix must
    not be re-stamped afterwards).  Raises {!Singular} on a vanishing
    pivot. *)

val solve_factored : t -> float array -> unit
(** Overwrite the right-hand side with the solution, using a matrix already
    processed by {!factor}.  O(n·bw) per call versus O(n·bw²) for a fresh
    factorization — the transient engine's factor-once fast path. *)

val solve_in_place : t -> float array -> unit
(** Factor destructively and overwrite the right-hand side with the
    solution ({!factor} followed by {!solve_factored}). *)

val solve : t -> float array -> float array

val to_dense : t -> Linalg.mat
