(** Dense linear algebra: LU factorization with partial pivoting.

    Used by the general nodal-analysis path of the circuit engine (arbitrary
    topologies, small systems).  Ladder networks use {!Tridiag} instead. *)

type mat = float array array
(** Row-major dense matrix; rows must share one length. *)

type lu
(** Factorization [P A = L U] of a square matrix. *)

val make : int -> int -> float -> mat
val identity : int -> mat
val dim : mat -> int * int
val copy_mat : mat -> mat
val mat_vec : mat -> float array -> float array
val transpose : mat -> mat

exception Singular of int
(** Raised (with the offending pivot column) when a pivot underflows. *)

val lu_factor : ?pivot_tol:float -> mat -> lu
(** Factor a copy of the matrix; [pivot_tol] (default [1e-13]) is the
    smallest acceptable absolute pivot. *)

val lu_factor_in_place : ?pivot_tol:float -> mat -> lu
(** Like {!lu_factor} but destroys (and shares storage with) its argument —
    for callers that already hold a scratch copy, e.g. the engine's Newton
    iteration matrix. *)

val lu_solve : lu -> float array -> float array

val lu_solve_into : lu -> float array -> float array -> unit
(** [lu_solve_into lu b x] solves into the preallocated [x] without
    allocating; [b] is left intact and must not alias [x]. *)

val solve : mat -> float array -> float array
(** [solve a b] factors and solves in one shot. *)

val determinant : lu -> float

val residual_norm : mat -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(Ax - b)_i|]; test helper. *)
