(* Storage: row i keeps its entries for columns [i-bw, i+bw] in a flat array
   at offset [i*(2*bw+1)]; column j lives at slot [j - i + bw]. *)
type t = { n : int; bw : int; data : float array }

exception Singular of int

let create ~n ~bw =
  if n < 0 || bw < 0 then invalid_arg "Banded.create";
  { n; bw; data = Array.make (n * ((2 * bw) + 1)) 0. }

let dim t = t.n
let bandwidth t = t.bw

let slot t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Banded: index out of range";
  if abs (i - j) > t.bw then None else Some ((i * ((2 * t.bw) + 1)) + (j - i) + t.bw)

let get t i j = match slot t i j with None -> 0. | Some k -> t.data.(k)

let set t i j v =
  match slot t i j with
  | None -> invalid_arg "Banded.set: entry outside band"
  | Some k -> t.data.(k) <- v

let add t i j v =
  match slot t i j with
  | None -> invalid_arg "Banded.add: entry outside band"
  | Some k -> t.data.(k) <- t.data.(k) +. v

let clear t = Array.fill t.data 0 (Array.length t.data) 0.
let copy t = { t with data = Array.copy t.data }

let blit ~src ~dst =
  if src.n <> dst.n || src.bw <> dst.bw then invalid_arg "Banded.blit: shape mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let mat_vec t v =
  Array.init t.n (fun i ->
      let acc = ref 0. in
      for j = Int.max 0 (i - t.bw) to Int.min (t.n - 1) (i + t.bw) do
        acc := !acc +. (get t i j *. v.(j))
      done;
      !acc)

(* Elimination overwrites the strict lower band with the multipliers, so the
   factorization can be replayed against many right-hand sides.  No pivoting:
   see the .mli for why companion-model matrices permit it.

   Both hot loops index [data] directly — row i's entry (i, j) lives at
   [i*w + j - i + bw] with [w = 2*bw + 1] — because going through
   [get]/[set] costs a bounds check and an option allocation per entry,
   which dominates the per-step solve on small bandwidths.  The unchecked
   accesses are safe: every loop keeps [|i - j| <= bw] and [i, j < n], so
   the flat index stays inside row i's [w]-wide segment. *)
let factor t =
  let n = t.n and bw = t.bw in
  let w = (2 * bw) + 1 in
  let data = t.data in
  for k = 0 to n - 1 do
    let krow = (k * w) + bw - k in
    let pivot = Array.unsafe_get data (krow + k) in
    if Float.abs pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to Int.min (n - 1) (k + bw) do
      let irow = (i * w) + bw - i in
      let f = Array.unsafe_get data (irow + k) /. pivot in
      Array.unsafe_set data (irow + k) f;
      if f <> 0. then
        for j = k + 1 to Int.min (n - 1) (k + bw) do
          Array.unsafe_set data (irow + j)
            (Array.unsafe_get data (irow + j) -. (f *. Array.unsafe_get data (krow + j)))
        done
    done
  done

let solve_factored t b =
  let n = t.n and bw = t.bw in
  if Array.length b <> n then invalid_arg "Banded.solve_factored: size mismatch";
  let w = (2 * bw) + 1 in
  let data = t.data in
  (* Forward: apply the stored multipliers (unit lower triangle). *)
  for k = 0 to n - 1 do
    let bk = Array.unsafe_get b k in
    for i = k + 1 to Int.min (n - 1) (k + bw) do
      let f = Array.unsafe_get data ((i * w) + bw - i + k) in
      if f <> 0. then Array.unsafe_set b i (Array.unsafe_get b i -. (f *. bk))
    done
  done;
  for i = n - 1 downto 0 do
    let irow = (i * w) + bw - i in
    let acc = ref (Array.unsafe_get b i) in
    for j = i + 1 to Int.min (n - 1) (i + bw) do
      acc := !acc -. (Array.unsafe_get data (irow + j) *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!acc /. Array.unsafe_get data (irow + i))
  done

let solve_in_place t b =
  if Array.length b <> t.n then invalid_arg "Banded.solve: size mismatch";
  factor t;
  solve_factored t b

let solve t b =
  let t = copy t and x = Array.copy b in
  solve_in_place t x;
  x

let to_dense t =
  Array.init t.n (fun i -> Array.init t.n (fun j -> get t i j))
