type mat = float array array

type lu = { lu : mat; perm : int array; sign : float }

exception Singular of int

let make rows cols v = Array.init rows (fun _ -> Array.make cols v)
let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let dim m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let copy_mat m = Array.map Array.copy m

let mat_vec m v =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j a -> acc := !acc +. (a *. v.(j))) row;
      !acc)
    m

let transpose m =
  let r, c = dim m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let lu_factor_in_place ?(pivot_tol = 1e-13) m =
  let n, c = dim m in
  if n <> c then invalid_arg "Linalg.lu_factor: non-square matrix";
  let perm = Array.init n Fun.id in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude entry in column k. *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs m.(i).(k) > Float.abs m.(!piv).(k) then piv := i
    done;
    if !piv <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!piv);
      m.(!piv) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tp;
      sign := -. !sign
    end;
    if Float.abs m.(k).(k) < pivot_tol then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = m.(i).(k) /. m.(k).(k) in
      m.(i).(k) <- f;
      if f <> 0. then
        for j = k + 1 to n - 1 do
          m.(i).(j) <- m.(i).(j) -. (f *. m.(k).(j))
        done
    done
  done;
  { lu = m; perm; sign = !sign }

let lu_factor ?pivot_tol a = lu_factor_in_place ?pivot_tol (copy_mat a)

let lu_solve_into { lu; perm; _ } b x =
  let n = Array.length lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Linalg.lu_solve: size mismatch";
  if b == x then invalid_arg "Linalg.lu_solve_into: aliased arrays";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* Forward substitution (unit lower triangle). *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done

let lu_solve lu b =
  let x = Array.make (Array.length b) 0. in
  lu_solve_into lu b x;
  x

let solve a b = lu_solve (lu_factor a) b

let determinant { lu; sign; _ } =
  let d = ref sign in
  Array.iteri (fun i row -> d := !d *. row.(i)) lu;
  !d

let residual_norm a x b =
  let ax = mat_vec a x in
  let worst = ref 0. in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
