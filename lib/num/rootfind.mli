(** Scalar root finding and damped fixed-point iteration.

    The Ceff computations are fixed points [c = F (slew_table c)]; Brent's
    method is the fallback when plain damped iteration stalls (strongly
    inductive loads can make [F] non-contractive). *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float

val brent : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    safeguard.  Default [tol = 1e-12] (absolute on x), [max_iter = 200]. *)

type fixed_point_result = {
  value : float;
  iterations : int;
  converged : bool;
}

val fixed_point : ?on_iter:(float -> unit) -> ?damping:float -> ?rel_tol:float ->
  ?max_iter:int -> (float -> float) -> init:float -> fixed_point_result
(** Damped iteration [x <- (1-d) x + d (f x)] with [damping] d (default 1.0,
    i.e. undamped), stopping when the relative step falls below [rel_tol]
    (default 1e-6) or after [max_iter] (default 100) rounds.

    [on_iter] (default: no-op) is invoked with each new iterate, purely for
    observation — it must not mutate solver state and has no effect on the
    result. *)

val fixed_point_bracketed : ?on_iter:(float -> unit) -> ?rel_tol:float -> ?max_iter:int ->
  (float -> float) -> lo:float -> hi:float -> init:float -> fixed_point_result
(** Robust fixed point of [f] on [\[lo, hi\]]: runs a short damped iteration
    and, if it fails to converge, solves [f x - x = 0] with Brent on the
    bracket (clamping [f] evaluations into the interval).  This is the solver
    used for Ceff iterations.

    [on_iter] observes each damped iterate and, in the Brent fallback, each
    trial abscissa — the Ceff trajectory hook. *)
