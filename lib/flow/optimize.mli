(** Sweep-scale timing optimization over the full-design flow.

    {!run} cold-times the design, propagates the worst endpoint deficit
    backward through the timing graph (a net's stage delay sits on the
    arrival path of every endpoint downstream, so it should help recover
    the worst violation in its fanout cone, not just its own slack), and
    then walks the levels forward, searching per-net fixes for every net
    whose deficit is not already covered by fan-in fixes:

    - {b driver resize} first — ascending candidate sizes, each evaluated
      through the same ladder the flow itself uses: a replay-free screen
      ({!Rlc_sta.Sta.estimate_far_delay}, self-calibrated against the net's
      known base delay) dismisses hopeless candidates, survivors get the
      full Ceff-model solve ({!Flow.solve_sized}, shared cache), and
      marginal inductive winners escalate — rarely — to a transistor-level
      transient ({!Rlc_ceff.Reference.simulate}) before being trusted.
      When no size meets the target, the search still takes the best
      recovery the ladder offers (smallest size within 2 % of the best
      solved stage delay) rather than leaving the deficit untouched;
    - {b repeater insertion} as the fallback (the
      [examples/repeater_insertion.ml] grid over stage count x size via
      {!Rlc_sta.Sta.analyze}), reported as a recommendation since it edits
      topology, which a {!Delta.t} cannot apply.

    The chosen resizes are applied as one {!Delta.t} and verified with an
    incremental {!Flow.retime} — [after] is byte-identical to a cold run of
    the edited sources.  Candidate searches fan out over the domain pool
    per level; every search is a pure function of the base results and the
    candidate, so fixes and reports are byte-identical for any jobs count.
    The candidate loop polls {!Rlc_errors.Deadline.check_ambient} between
    candidates, so a served/budgeted optimize times out as a wire-stable
    [timeout]. *)

type fix_kind =
  | Resize of { to_size : float }
  | Repeaters of { stages : int; size : float; est_delay : float }
      (** recommendation only: estimated end-to-end delay of the best
          (stages x size) configuration; not applied by the final retime *)
  | Unfixable

type net_fix = {
  f_net : Design.net;
  f_edge : Rlc_waveform.Measure.edge;
  f_slack_before : float;  (** [required - arrival] in the base flow, s *)
  f_slack_after : float;  (** same net in the verified post-fix flow *)
  f_residual : float;
      (** deficit this net had to recover locally: the worst violation in
          its fanout cone (itself included), net of fan-in fixes — so a
          net can be searched, and resized, while its own slack is
          positive *)
  f_stage_before : float;
  f_stage_after : float;
      (** winning candidate's solved stage delay (resize), estimated path
          delay (repeaters), or [f_stage_before] (unfixable) *)
  f_candidates : int;  (** full candidate evaluations paid for *)
  f_screened : int;  (** candidates dismissed by the replay-free screen *)
  f_escalations : int;  (** transistor-level verifications run *)
  f_fix : fix_kind;
}

type stats = {
  o_nets : int;
  o_violations_before : int;
  o_violations_after : int;
  o_resized : int;
  o_repeaters : int;
  o_unfixable : int;
  o_candidates : int;  (** deterministic (pure search), reportable *)
  o_screened : int;
  o_escalations : int;
  o_char_hits : int;
      (** characterization / compiled-handle cache deltas for this run:
          scheduling-dependent, surfaced in the human summary only *)
  o_char_misses : int;
  o_handle_hits : int;
  o_handle_misses : int;
  o_jobs_used : int;
  o_seconds : float;  (** wall clock; summary only *)
}

type t = {
  required : float;
  before : Flow.result;
  after : Flow.result;  (** verified flow with all resizes applied *)
  fixes : net_fix array;  (** searched (violating) nets, level/id order *)
  delta : Delta.t;  (** the applied driver resizes *)
  stats : stats;
}

val default_sizes : float list
(** The candidate driver-size ladder: 25–300X.  Only sizes strictly above
    a net's current size are tried for it. *)

val run :
  ?tech:Rlc_devices.Tech.t ->
  ?sizes:float list ->
  ?repeaters:bool ->
  ?max_stages:int ->
  required:float ->
  Flow.Config.t ->
  spef:Rlc_spef.Spef.t ->
  spec:Spec.t ->
  unit ->
  (t, Rlc_errors.Error.t) result
(** Optimize the design against the [required] arrival time (seconds).
    [sizes] (default {!default_sizes}) is the resize ladder, [repeaters]
    (default true) enables the insertion fallback with up to [max_stages]
    (default 4) repeater stages.  A [Config.cache] is installed when absent
    so the sweep and the verification retime share solves.  Errors are the
    flow's own (ingest, delta application); deadline expiry raises
    {!Rlc_errors.Deadline.Expired} exactly like {!Flow.run_cfg}. *)
