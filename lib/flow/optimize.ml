(* Sweep-scale timing optimization: per-net negative-slack fixes searched
   with the screen -> Ceff model -> (rarely) transistor-escalation ladder,
   batched over the domain pool, verified by an incremental retime of the
   chosen resizes.

   Determinism: every candidate evaluation is a pure function of the base
   flow's (quantized) per-net results and the candidate size — the search
   never reads scheduling-dependent state — so fixes, counts, and reports
   are byte-identical for any jobs count.  The shared Ceff cache only
   dedupes identical pure solves (first insert wins on equal values). *)

module Measure = Rlc_waveform.Measure
module Driver_model = Rlc_ceff.Driver_model
module Screen = Rlc_ceff.Screen
module Reference = Rlc_ceff.Reference
module Characterize = Rlc_liberty.Characterize
module Line = Rlc_tline.Line
module Sta = Rlc_sta.Sta
module Pool = Rlc_parallel.Pool
module Obs = Rlc_obs.Obs
module Deadline = Rlc_errors.Deadline
module Engine = Rlc_circuit.Engine

let src = Logs.Src.create "rlc.optimize" ~doc:"sweep-scale timing optimization"

module Log = (val Logs.src_log src : Logs.LOG)

type fix_kind =
  | Resize of { to_size : float }
  | Repeaters of { stages : int; size : float; est_delay : float }
  | Unfixable

type net_fix = {
  f_net : Design.net;
  f_edge : Measure.edge;
  f_slack_before : float;
  f_slack_after : float;
  f_residual : float;
  f_stage_before : float;
  f_stage_after : float;
  f_candidates : int;
  f_screened : int;
  f_escalations : int;
  f_fix : fix_kind;
}

type stats = {
  o_nets : int;
  o_violations_before : int;
  o_violations_after : int;
  o_resized : int;
  o_repeaters : int;
  o_unfixable : int;
  o_candidates : int;
  o_screened : int;
  o_escalations : int;
  o_char_hits : int;
  o_char_misses : int;
  o_handle_hits : int;
  o_handle_misses : int;
  o_jobs_used : int;
  o_seconds : float;
}

type t = {
  required : float;
  before : Flow.result;
  after : Flow.result;
  fixes : net_fix array;
  delta : Delta.t;
  stats : stats;
}

let default_sizes = [ 25.; 37.5; 50.; 75.; 100.; 125.; 150.; 200.; 300. ]

(* Per-net search outcome before the final verification retime. *)
type search = {
  s_fix : fix_kind;
  s_stage_after : float;
  s_candidates : int;
  s_screened : int;
  s_escalations : int;
}

(* The replay-free screen, self-calibrated: the estimate's model bias is
   measured on the current size (where the true replayed stage delay is
   known from the base flow) and divided out of every candidate estimate.
   A candidate whose corrected prediction still exceeds the target by 30 %
   is dismissed without paying for the replay.  Wrongly screening a
   workable candidate only moves the answer to the next (larger) size —
   deterministically — so the margin trades sweep time, not soundness. *)
let screen_margin = 1.3

let estimate_delay ~obs ~tech ~(net : Design.net) ~size ~edge ~input_slew =
  match Characterize.cell_res ~obs tech ~size with
  | Error e -> failwith (Rlc_errors.Error.message e)
  | Ok cell ->
      let model =
        Driver_model.model_pade ~obs ~cell ~edge ~input_slew ~pade:net.Design.pade
          ~line:net.Design.eq_line ~cl:net.Design.cl ()
      in
      Sta.estimate_far_delay model ~line:net.Design.eq_line ~cl:net.Design.cl

(* Escalation: a marginal inductive winner (within 5 % of the target) is
   re-verified at transistor level before being trusted; the simulated
   delay must confirm the target within a 5 % model-vs-silicon tolerance.
   Non-marginal or RC-like winners skip this — that is what keeps the
   escalation rate low. *)
let escalation_band = 0.05

(* Best-effort acceptance: when no candidate meets the target, the search
   still resizes — taking the smallest size whose solved stage delay is
   within 2 % of the best the ladder achieved, so it never pays a 300X
   driver for noise-level gains over a 150X one. *)
let partial_band = 0.02

let search_net (cfg : Flow.Config.t) ~tech ~repeaters ~max_stages ~sizes ~residual
    (r : Flow.net_result) =
  let net = r.Flow.net in
  let obs = cfg.Flow.Config.obs in
  let base = r.Flow.solve.Flow.stage_delay in
  let target = base -. residual in
  let edge = r.Flow.edge and input_slew = r.Flow.input_slew in
  let line = net.Design.eq_line and cl = net.Design.cl in
  let candidates =
    List.filter (fun s -> s > net.Design.size) (List.sort_uniq Float.compare sizes)
  in
  let tried = ref 0 and screened = ref 0 and escal = ref 0 in
  let est_base = estimate_delay ~obs ~tech ~net ~size:net.Design.size ~edge ~input_slew in
  (* Model-only predictions for the whole ladder first (no replay): they
     set the screen level.  When even the best prediction misses the
     target — a deficit larger than any resize can recover — the screen
     falls back to 30 % of that best, so the best-effort pass still only
     replays candidates near the achievable optimum. *)
  let preds =
    List.map
      (fun size ->
        Deadline.check_ambient ();
        let est = estimate_delay ~obs ~tech ~net ~size ~edge ~input_slew in
        (size, if est_base > 0. then base *. (est /. est_base) else est))
      candidates
  in
  let best_pred = List.fold_left (fun acc (_, p) -> Float.min acc p) infinity preds in
  let screen_limit = screen_margin *. Float.max target best_pred in
  let full = ref None in
  let evals = ref [] in
  List.iter
    (fun (size, predicted) ->
      if !full = None then begin
        (* Observation point: a budgeted optimize stops between
           candidates, not only between nets. *)
        Deadline.check_ambient ();
        if predicted > screen_limit then begin
          incr screened;
          Obs.incr obs "optimize.screened"
        end
        else begin
          incr tried;
          Obs.incr obs "optimize.candidates";
          let s = Flow.solve_sized cfg ~tech ~net ~size ~edge ~input_slew in
          evals := (size, s.Flow.stage_delay) :: !evals;
          if s.Flow.stage_delay <= target then begin
            let marginal =
              s.Flow.stage_delay > target *. (1. -. escalation_band)
              && s.Flow.model.Driver_model.screen.Screen.significant
            in
            let confirmed =
              if not marginal then true
              else begin
                incr escal;
                Obs.incr obs "optimize.escalations";
                let sim =
                  Reference.simulate ~dt:cfg.Flow.Config.dt ?adaptive:cfg.Flow.Config.adaptive
                    ~tech ~size ~input_slew ~line ~cl ()
                in
                Reference.far_delay sim <= target *. (1. +. escalation_band)
              end
            in
            if confirmed then full := Some (size, s.Flow.stage_delay)
          end
        end
      end)
    preds;
  let finish fix stage_after =
    {
      s_fix = fix;
      s_stage_after = stage_after;
      s_candidates = !tried;
      s_screened = !screened;
      s_escalations = !escal;
    }
  in
  match !full with
  | Some (size, stage) -> finish (Resize { to_size = size }) stage
  | None -> (
      (* Resize cannot meet the target.  Repeater insertion is the
         fallback that can (splitting the line attacks the quadratic
         wire-delay term a bigger driver cannot touch); it edits topology,
         so it is reported as a recommendation, not applied. *)
      let best = ref None in
      if repeaters && target > 0. then
        for n_stages = 2 to max_stages do
          List.iter
            (fun size ->
              Deadline.check_ambient ();
              let seg = Line.scale_length line (line.Line.length /. float_of_int n_stages) in
              let stages = List.init n_stages (fun _ -> { Sta.size; line = seg }) in
              incr tried;
              Obs.incr obs "optimize.candidates";
              match
                Sta.analyze_res ~dt:cfg.Flow.Config.dt ~tech ~input_slew ~sink_cl:cl stages
              with
              | Error _ -> ()
              | Ok pr -> (
                  let d = pr.Sta.total_delay in
                  match !best with
                  | Some (bd, _, _) when bd <= d -> ()
                  | _ -> best := Some (d, n_stages, size)))
            (List.sort_uniq Float.compare sizes)
        done;
      match !best with
      | Some (d, stages, size) when d <= target ->
          finish (Repeaters { stages; size; est_delay = d }) d
      | _ -> (
          (* Best-effort resize: recover what the ladder can and let the
             report carry the rest of the deficit. *)
          let best_stage =
            List.fold_left (fun acc (_, st) -> Float.min acc st) infinity !evals
          in
          let partial =
            if best_stage < base then
              List.fold_left
                (fun acc (size, st) ->
                  if st <= best_stage *. (1. +. partial_band) then
                    match acc with
                    | Some (s0, _) when s0 <= size -> acc
                    | _ -> Some (size, st)
                  else acc)
                None !evals
            else None
          in
          match partial with
          | Some (size, stage) -> finish (Resize { to_size = size }) stage
          | None -> finish Unfixable base))

let count_violations ~required (res : Flow.result) =
  Array.fold_left
    (fun acc r -> if required -. r.Flow.arrival < 0. then acc + 1 else acc)
    0 res.Flow.results

let run ?tech ?(sizes = default_sizes) ?(repeaters = true) ?(max_stages = 4) ~required
    (cfg : Flow.Config.t) ~spef ~spec () =
  (* A shared cache is load-bearing, not an optimization: candidate solves
     and the final verification retime must agree on every (net, size,
     slew) key, so give the run one cache when the caller didn't. *)
  let cfg =
    match cfg.Flow.Config.cache with
    | Some _ -> cfg
    | None -> { cfg with Flow.Config.cache = Some (Flow.create_cache ()) }
  in
  let t_start = Unix.gettimeofday () in
  let ch0, cm0, _ = Characterize.stats () in
  let hh0, hm0 = Engine.Compiled.cache_stats () in
  match Flow.time ?tech cfg ~spef ~spec () with
  | Error _ as e -> e
  | Ok handle -> (
      let before = Flow.Timed.result handle in
      let design = before.Flow.design in
      let tech = design.Design.tech in
      let obs = cfg.Flow.Config.obs in
      let n = Array.length design.Design.nets in
      let slack id = required -. before.Flow.results.(id).Flow.arrival in
      let jobs_used =
        match cfg.Flow.Config.pool with
        | Some pool -> Pool.jobs pool
        | None -> (
            match cfg.Flow.Config.jobs with
            | Some j -> Int.max 1 (Int.min j (Pool.default_jobs ()))
            | None -> Pool.default_jobs ())
      in
      let with_run_pool f =
        match cfg.Flow.Config.pool with
        | Some pool -> f pool
        | None -> Pool.with_pool ~obs ~jobs:jobs_used f
      in
      let with_ambient f =
        let body () =
          match cfg.Flow.Config.deadline with
          | None -> f ()
          | Some d -> Deadline.with_ambient d f
        in
        match cfg.Flow.Config.trace with
        | None -> body ()
        | Some _ as trace -> Obs.with_trace trace body
      in
      let searches : (int * float * search) list ref = ref [] in
      (* Backward deficit pass.  A net's stage delay is on the arrival path
         of every endpoint downstream of it, so the deficit it should help
         recover is the worst violation in its fanout cone, not just its
         own: deficit(net) = max(-slack(net), max over fanouts).  Without
         this, an upstream net resizes only enough for its own slack and
         leaves endpoints with stage targets below their intrinsic floor. *)
      let fanouts = Array.make n [] in
      Array.iteri
        (fun id (net : Design.net) ->
          match net.Design.fanin with
          | Some p -> fanouts.(p) <- id :: fanouts.(p)
          | None -> ())
        design.Design.nets;
      let deficit = Array.make n 0. in
      for li = Array.length design.Design.levels - 1 downto 0 do
        Array.iter
          (fun id ->
            let worst_out =
              List.fold_left (fun acc f -> Float.max acc deficit.(f)) neg_infinity fanouts.(id)
            in
            deficit.(id) <- Float.max (-.slack id) worst_out)
          design.Design.levels.(li)
      done;
      (* Improvement already promised to each net's arrival by resizes on
         its fan-in chain.  Levels are processed in order, so a net's fanin
         (strictly earlier level) is final when the net is examined;
         repeater recommendations and unfixable nets contribute nothing —
         the bookkeeping mirrors exactly the delta that will be applied. *)
      let improve = Array.make n 0. in
      let body () =
        with_run_pool (fun pool ->
            Array.iter
              (fun ids ->
                Deadline.check_ambient ();
                let t0 = Obs.start obs in
                let jobs =
                  Array.to_list ids
                  |> List.filter_map (fun id ->
                         let r = before.Flow.results.(id) in
                         let inherited =
                           match r.Flow.net.Design.fanin with
                           | Some p -> improve.(p)
                           | None -> 0.
                         in
                         improve.(id) <- inherited;
                         let residual = deficit.(id) -. inherited in
                         if residual <= 0. then None else Some (id, residual))
                  |> Array.of_list
                in
                let found =
                  Pool.map pool (Array.length jobs) (fun k ->
                      Deadline.check_ambient ();
                      let id, residual = jobs.(k) in
                      search_net cfg ~tech ~repeaters ~max_stages ~sizes ~residual
                        before.Flow.results.(id))
                in
                Array.iteri
                  (fun k s ->
                    let id, residual = jobs.(k) in
                    let r = before.Flow.results.(id) in
                    (match s.s_fix with
                    | Resize _ ->
                        improve.(id) <-
                          improve.(id) +. (r.Flow.solve.Flow.stage_delay -. s.s_stage_after)
                    | Repeaters _ | Unfixable -> ());
                    searches := (id, residual, s) :: !searches)
                  found;
                Obs.finish obs
                  ~args:[ ("searched", string_of_int (Array.length jobs)) ]
                  "optimize.level" t0)
              design.Design.levels)
      in
      match with_ambient body with
      | () ->
          let searches = List.rev !searches in
          (* The applied fix set: driver resizes only (repeaters are
             topology edits, reported as recommendations). *)
          let drivers =
            List.filter_map
              (fun (id, _, s) ->
                match s.s_fix with
                | Resize { to_size } ->
                    Some (design.Design.nets.(id).Design.name, to_size)
                | Repeaters _ | Unfixable -> None)
              searches
          in
          let delta = { Delta.nets = []; drivers; slews = [] } in
          (match
             if drivers = [] then Ok (handle, { Flow.retimed = 0; reused = n })
             else
               Flow.retime ?deadline:cfg.Flow.Config.deadline ?trace:cfg.Flow.Config.trace
                 handle delta
           with
          | Error _ as e -> e
          | Ok (handle', _) ->
              let after = Flow.Timed.result handle' in
              let fixes =
                Array.of_list
                  (List.map
                     (fun (id, residual, s) ->
                       let r = before.Flow.results.(id) in
                       {
                         f_net = r.Flow.net;
                         f_edge = r.Flow.edge;
                         f_slack_before = required -. r.Flow.arrival;
                         f_slack_after =
                           required -. after.Flow.results.(id).Flow.arrival;
                         f_residual = residual;
                         f_stage_before = r.Flow.solve.Flow.stage_delay;
                         f_stage_after = s.s_stage_after;
                         f_candidates = s.s_candidates;
                         f_screened = s.s_screened;
                         f_escalations = s.s_escalations;
                         f_fix = s.s_fix;
                       })
                     searches)
              in
              let count p = Array.fold_left (fun a f -> if p f then a + 1 else a) 0 fixes in
              let sum p = Array.fold_left (fun a f -> a + p f) 0 fixes in
              let ch1, cm1, _ = Characterize.stats () in
              let hh1, hm1 = Engine.Compiled.cache_stats () in
              let stats =
                {
                  o_nets = n;
                  o_violations_before = count_violations ~required before;
                  o_violations_after = count_violations ~required after;
                  o_resized =
                    count (fun f -> match f.f_fix with Resize _ -> true | _ -> false);
                  o_repeaters =
                    count (fun f -> match f.f_fix with Repeaters _ -> true | _ -> false);
                  o_unfixable =
                    count (fun f -> match f.f_fix with Unfixable -> true | _ -> false);
                  o_candidates = sum (fun f -> f.f_candidates);
                  o_screened = sum (fun f -> f.f_screened);
                  o_escalations = sum (fun f -> f.f_escalations);
                  o_char_hits = ch1 - ch0;
                  o_char_misses = cm1 - cm0;
                  o_handle_hits = hh1 - hh0;
                  o_handle_misses = hm1 - hm0;
                  o_jobs_used = jobs_used;
                  o_seconds = Unix.gettimeofday () -. t_start;
                }
              in
              Log.info (fun m ->
                  m
                    "optimize: %d/%d nets violating -> %d after; %d resized, %d repeater \
                     recs, %d unfixable (%d candidates, %d screened, %d escalations)"
                    stats.o_violations_before n stats.o_violations_after stats.o_resized
                    stats.o_repeaters stats.o_unfixable stats.o_candidates stats.o_screened
                    stats.o_escalations);
              Ok { required; before; after; fixes; delta; stats }))
