type t = {
  drivers : (string * float) list;
  inputs : (string * float) list;
  edges : (string * string * string) list;
  loads : (string * string * float) list;
}

exception Err of int * string

let float_of lineno s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Err (lineno, "expected a number, got " ^ s))

let parse_res ?file src =
  let drivers = ref [] and inputs = ref [] and edges = ref [] and loads = ref [] in
  let lines = String.split_on_char '\n' src in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '#' with
          | Some k -> String.sub line 0 k
          | None -> (
              match String.index_opt line '/' with
              | Some k when k + 1 < String.length line && line.[k + 1] = '/' ->
                  String.sub line 0 k
              | _ -> line)
        in
        let toks =
          String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
          |> List.filter (fun s -> s <> "")
        in
        match toks with
        | [] -> ()
        | [ "driver"; net; size ] ->
            if List.mem_assoc net !drivers then
              raise (Err (lineno, "duplicate driver line for net " ^ net));
            let size = float_of lineno size in
            if size <= 0. then raise (Err (lineno, "driver size must be positive"));
            drivers := (net, size) :: !drivers
        | [ "input"; net; slew_ps ] ->
            if List.mem_assoc net !inputs then
              raise (Err (lineno, "duplicate input line for net " ^ net));
            let slew_ps = float_of lineno slew_ps in
            if slew_ps <= 0. then raise (Err (lineno, "input slew must be positive"));
            inputs := (net, Rlc_num.Units.ps slew_ps) :: !inputs
        | [ "edge"; from_net; pin; to_net ] ->
            if from_net = to_net then
              raise (Err (lineno, "edge may not connect a net to itself"));
            edges := (from_net, pin, to_net) :: !edges
        | [ "load"; net; pin; cap_ff ] ->
            let cap_ff = float_of lineno cap_ff in
            if cap_ff < 0. then raise (Err (lineno, "load cap must be non-negative"));
            loads := (net, pin, Rlc_num.Units.ff cap_ff) :: !loads
        | tok :: _ ->
            raise
              (Err (lineno, "unknown keyword " ^ tok ^ " (expected driver/input/edge/load)")))
      lines;
    Ok
      {
        drivers = List.rev !drivers;
        inputs = List.rev !inputs;
        edges = List.rev !edges;
        loads = List.rev !loads;
      }
  with Err (lineno, msg) -> Error (Rlc_errors.Error.parse ?file ~line:lineno msg)

let default_of_spef ?(size = 75.) ?(slew = 100e-12) (spef : Rlc_spef.Spef.t) =
  let names = List.map (fun n -> n.Rlc_spef.Spef.net_name) spef.Rlc_spef.Spef.nets in
  {
    drivers = List.map (fun n -> (n, size)) names;
    inputs = List.map (fun n -> (n, slew)) names;
    edges = [];
    loads = [];
  }

let to_string t =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter (fun (n, s) -> p "driver %s %g\n" n s) t.drivers;
  List.iter (fun (n, s) -> p "input %s %g\n" n (Rlc_num.Units.in_ps s)) t.inputs;
  List.iter (fun (a, pin, b) -> p "edge %s %s %s\n" a pin b) t.edges;
  List.iter (fun (n, pin, c) -> p "load %s %s %g\n" n pin (Rlc_num.Units.in_ff c)) t.loads;
  Buffer.contents buf
