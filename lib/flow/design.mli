(** Full-design ingest: SPEF parasitics + connectivity spec -> levelized net
    graph.

    Each net of the design becomes one timing job: an inverter driver of the
    spec'd size at the net's SPEF [Output] pin, the extracted RLC tree (with
    fan-out gate capacitances and explicit loads folded in at their receiver
    pins), and the lumped sink load [CL] the inductance screen compares
    against the wire capacitance.  Nets are levelized by driver dependency —
    level 0 nets take their input slew from the spec, level [k] nets from the
    far-end slew computed at level [k-1] — which is exactly the stage
    hand-off of {!Rlc_sta.analyze} lifted from a single path to a DAG. *)

type net = {
  id : int;  (** dense index; nets are sorted by name, so ids are stable *)
  name : string;
  size : float;  (** driver strength, X multiplier *)
  root_pin : string;  (** the SPEF [Output] conn the driver sits on *)
  tree : Rlc_moments.Tree.t;  (** extracted tree with sink loads folded in *)
  pade : Rlc_moments.Pade.t;  (** 3/2 fit of the tree's admittance moments *)
  eq_line : Rlc_tline.Line.t;
      (** total-R/L/C equivalent uniform line: supplies [Z0], time of
          flight and the wire capacitance to Eq. 1 / Eq. 9, and carries the
          model waveform replay *)
  cl : float;  (** lumped sink load: fan-out gate caps + explicit loads, F *)
  fanin : int option;  (** the net whose far end drives this net's driver *)
  fanout : int list;  (** nets driven from this net's receivers, ascending *)
  level : int;
  prim_slew : float option;  (** input slew when this is a primary input *)
}

type coupling = { net_a : int; net_b : int; cc : float }
(** An undirected coupling edge between two design nets ([net_a < net_b]):
    the sum of all SPEF cross-net caps whose endpoints resolve to those two
    nets, in farads. *)

type t = {
  design_name : string;
  tech : Rlc_devices.Tech.t;
  nets : net array;  (** indexed by [id] *)
  levels : int array array;  (** [levels.(l)] = ids at level [l], ascending *)
  sizes : float list;  (** distinct driver sizes, ascending (for pre-characterization) *)
  couplings : coupling array;
      (** coupling graph, sorted by [(net_a, net_b)]; empty when the SPEF
          declares no cross-net caps, leaving the isolated flow untouched *)
}

val ingest :
  ?tech:Rlc_devices.Tech.t -> spef:Rlc_spef.Spef.t -> spec:Spec.t -> unit -> (t, string) result
(** Errors: a spec net missing from the SPEF (or vice versa: SPEF nets not
    covered by a [driver] line are ignored with a log message, they are not
    errors); a net without a unique [Output] conn; a net that is neither a
    primary input nor the target of exactly one [edge]; combinational
    cycles; unknown pins; nets whose R/L graph is not a tree.  Cross-net
    coupling caps resolve each endpoint to the design net owning that node
    (a node owned by two nets, or a coupling joining a net to itself, is an
    error); couplings touching nets the design does not time are logged and
    skipped. *)

val n_nets : t -> int
val pp : Format.formatter -> t -> unit
