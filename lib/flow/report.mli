(** Machine-readable reports for a flow run.

    The JSON and CSV payloads contain only deterministic quantities (pure
    functions of the design and the canonicalized per-net inputs), so a run
    with [--jobs N] emits byte-identical reports for every [N]; scheduling-
    dependent observability (cache hit counters, wall times) lives in the
    human {!summary} and the logs only.  Floats are printed with [%.6g] —
    one fixed, locale-independent format everywhere. *)

val json_string : ?required:float -> ?xtalk:string -> Flow.result -> string
(** Full report: design header, one object per net (timing, shape, screen
    verdict, Ceff values, iteration count), and a summary block with the
    worst-arrival (critical) path, optional slack against a [required]
    arrival time (seconds), and fixed-bin stage-delay / far-slew
    histograms.

    [xtalk] is a pre-rendered JSON object (produced by
    [Rlc_xtalk.Xtalk.json_fragment], which depends on this library)
    injected under an ["xtalk"] key between the net results and the
    summary; omitted, the payload is byte-identical to a pre-crosstalk
    report. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON payload (used by the crosstalk
    fragment renderer to match this module's conventions). *)

val csv_string : Flow.result -> string
(** One row per net, same per-net fields as the JSON. *)

val summary : ?required:float -> Format.formatter -> Flow.result -> unit
(** Human-readable run summary: net/level counts, verdict mix, critical
    path, cache and per-phase wall-time counters. *)

val optimize_json_string : Optimize.t -> string
(** Optimization report: design header, violation counts before/after, the
    deterministic search totals (candidates, screened, escalations), one
    object per searched net (slacks, residual, stage delays, per-net search
    counts, and the chosen fix), and a worst-slack summary.  Like
    {!json_string}, the payload holds only jobs-independent quantities —
    byte-identical for every [--jobs N]. *)

val optimize_csv_string : Optimize.t -> string
(** One row per searched net, same fields as the JSON fix objects. *)

val optimize_summary : Format.formatter -> Optimize.t -> unit
(** Human-readable optimization summary; includes the scheduling-dependent
    cache counters and wall time that the payloads exclude. *)
