type 'a t = {
  table : (string, 'a) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; mutex = Mutex.create (); hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_add t key compute =
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None -> None)
  with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      let v =
        locked t (fun () ->
            t.misses <- t.misses + 1;
            match Hashtbl.find_opt t.table key with
            | Some v' -> v' (* a racing domain inserted the same pure result first *)
            | None ->
                Hashtbl.add t.table key v;
                v)
      in
      (v, false)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> Hashtbl.length t.table)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)

let quantize ?(digits = 9) x =
  if Float.is_nan x || Float.is_integer x || not (Float.is_finite x) then x
  else float_of_string (Printf.sprintf "%.*e" (digits - 1) x)

let quantize_slew ?(grid = 0.1e-12) s = Float.round (s /. grid) *. grid
