(* Hash-partitioned shards: each shard owns a table, a mutex, and its own
   hit/miss counters, so concurrent requests hitting a shared cache
   contend only when their keys land on the same shard.  Aggregate stats
   are sums over shards. *)

type 'a shard = {
  table : (string, 'a) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type 'a t = {
  shards : 'a shard array;  (* length is a power of two *)
  mask : int;
}

let default_shards = 16

let make_shard () =
  { table = Hashtbl.create 64; mutex = Mutex.create (); hits = 0; misses = 0 }

let create ?(shards = default_shards) () =
  let requested = Int.max 1 shards in
  let n = ref 1 in
  while !n < requested do
    n := !n * 2
  done;
  { shards = Array.init !n (fun _ -> make_shard ()); mask = !n - 1 }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)
let shards t = Array.length t.shards

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let find_or_add t key compute =
  let s = shard_of t key in
  match
    locked s (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some v ->
            s.hits <- s.hits + 1;
            Some v
        | None -> None)
  with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      let v =
        locked s (fun () ->
            s.misses <- s.misses + 1;
            match Hashtbl.find_opt s.table key with
            | Some v' -> v' (* a racing domain inserted the same pure result first *)
            | None ->
                Hashtbl.add s.table key v;
                v)
      in
      (v, false)

let sum_over t f = Array.fold_left (fun acc s -> acc + locked s (fun () -> f s)) 0 t.shards
let hits t = sum_over t (fun s -> s.hits)
let misses t = sum_over t (fun s -> s.misses)
let length t = sum_over t (fun s -> Hashtbl.length s.table)

type shard_stat = { s_length : int; s_hits : int; s_misses : int }

let shard_stats t =
  Array.map
    (fun s ->
      locked s (fun () ->
          { s_length = Hashtbl.length s.table; s_hits = s.hits; s_misses = s.misses }))
    t.shards

let clear t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.reset s.table;
          s.hits <- 0;
          s.misses <- 0))
    t.shards

let quantize ?(digits = 9) x =
  if Float.is_nan x || Float.is_integer x || not (Float.is_finite x) then x
  else float_of_string (Printf.sprintf "%.*e" (digits - 1) x)

let quantize_slew ?(grid = 0.1e-12) s = Float.round (s /. grid) *. grid
