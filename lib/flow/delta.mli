(** ECO deltas: source-level edits against a loaded design.

    A delta names the things a user perturbs between timing queries —
    whole [*D_NET] parasitic blocks (which is also how couplings are added,
    edited or removed: they live inside net blocks), driver sizes, and
    primary-input slews.  It deliberately cannot add or remove nets: the
    net universe, and with it every net id and the levelized graph's shape
    of stable ids, is frozen when the design is loaded.

    {!apply} produces the {e edited sources} plus the set of directly
    changed nets.  Re-ingesting those sources yields a design structurally
    identical to a cold run of the edited files — the foundation of the
    incremental flow's byte-identical-report guarantee
    ({!Flow.retime}). *)

type t = {
  nets : (string * string) list;
      (** net name -> replacement [*D_NET ... *END] block source, parsed
          against the loaded file's units ({!Rlc_spef.Spef.parse_dnet_res});
          the block must define exactly that net *)
  drivers : (string * float) list;  (** net name -> new driver size (X) *)
  slews : (string * float) list;
      (** net name -> new primary-input slew, {e seconds}; only nets that
          are primary inputs may appear *)
}

type applied = {
  spef : Rlc_spef.Spef.t;  (** the edited parasitics *)
  spec : Spec.t;  (** the edited connectivity spec *)
  changed : string list;
      (** directly changed net names, sorted and deduplicated.  A driver
          resize on net [X] also includes the net whose tree folds in [X]'s
          gate input capacitance (the [edge] source driving [X]). *)
}

val empty : t

val is_empty : t -> bool

val size : t -> int
(** Number of individual edits carried. *)

val apply : spef:Rlc_spef.Spef.t -> spec:Spec.t -> t -> (applied, Rlc_errors.Error.t) result
(** Validate and apply the delta.  Errors ({!Rlc_errors.Error.Bad_request})
    include: a net named twice in one edit list; a replacement block that
    fails to parse, defines a different net, or names a net outside the
    design; a duplicate coupling node pair anywhere in the edited file
    (the cold parser's global uniqueness rule, re-checked across blocks);
    non-positive sizes or slews; resizing a net with no driver line;
    setting the slew of a non-primary-input net. *)
