(** Top-level connectivity spec for a full-design flow.

    A SPEF file carries per-net parasitics but not the gate-level context a
    timer needs: which cell drives each net, where primary inputs enter and
    with what transition time, and how nets chain (a receiver pin of one net
    feeding the driver of another).  This module parses the small
    line-oriented spec that supplies exactly that:

    {v
    # comments start with '#' (or '//'); blank lines are ignored
    driver <net> <sizeX>          # every net: driver strength (X multiplier)
    input  <net> <slew_ps>        # primary-input net: transition time at its
                                  # driver input, picoseconds
    edge   <net> <pin> <net2>     # <net2>'s driver input is the receiver
                                  # <pin> of <net>
    load   <net> <pin> <cap_ff>   # extra lumped sink load at <pin>, fF
    v}

    Every net named anywhere must have a [driver] line.  A net must be
    either a primary input ([input]) or driven through exactly one [edge] —
    never both, never neither, never more than once ({!Design.ingest}
    enforces the graph-level rules; this module only validates syntax and
    per-line duplicates). *)

type t = {
  drivers : (string * float) list;  (** net name, driver size (X) *)
  inputs : (string * float) list;  (** net name, input slew (seconds) *)
  edges : (string * string * string) list;  (** from net, pin on it, to net *)
  loads : (string * string * float) list;  (** net, pin, farads *)
}

val parse_res : ?file:string -> string -> (t, Rlc_errors.Error.t) result
(** Errors are {!Rlc_errors.Error.Parse} carrying the 1-based input line and
    the source [file] name when given.  Duplicate [driver] or [input] lines
    for the same net, unknown keywords, malformed numbers and non-positive
    sizes or slews are errors. *)

val default_of_spef : ?size:float -> ?slew:float -> Rlc_spef.Spef.t -> t
(** A flat spec for running a bare SPEF file: every net is a primary input
    with the given driver [size] (default 75X) and input [slew] (default
    100 ps), no inter-net edges and no extra loads. *)

val to_string : t -> string
(** Canonical printer in the syntax above ([parse (to_string s)] round-trips
    the structure). *)
