module Driver_model = Rlc_ceff.Driver_model
module Screen = Rlc_ceff.Screen
module Measure = Rlc_waveform.Measure
module Units = Rlc_num.Units

let ps = Units.in_ps
let ff = Units.in_ff

(* One float format for every payload so report bytes are reproducible. *)
let num = Printf.sprintf "%.6g"
let num_ps x = num (ps x)

let edge_name = function Measure.Rising -> "rise" | Measure.Falling -> "fall"

let shape_name (m : Driver_model.t) =
  match m.Driver_model.shape with
  | Driver_model.One_ramp _ -> "one-ramp"
  | Driver_model.Two_ramp _ -> "two-ramp"

let ceffs (m : Driver_model.t) =
  match m.Driver_model.shape with
  | Driver_model.One_ramp { ceff; _ } -> (ceff, None)
  | Driver_model.Two_ramp { ceff1; ceff2; _ } -> (ceff1, Some ceff2)

(* ------------------------------------------------------------ histogram *)

type histogram = { bin_width : float; lo : float; counts : int array }

let histogram ?(bins = 8) values =
  match values with
  | [] -> { bin_width = 1.; lo = 0.; counts = [||] }
  | _ ->
      let lo = List.fold_left Float.min Float.infinity values in
      let hi = List.fold_left Float.max Float.neg_infinity values in
      let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
      let counts = Array.make bins 0 in
      List.iter
        (fun v ->
          let b = Int.min (bins - 1) (int_of_float ((v -. lo) /. width)) in
          counts.(b) <- counts.(b) + 1)
        values;
      { bin_width = width; lo; counts }

(* ----------------------------------------------------------------- JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_histogram h =
  Printf.sprintf {|{"lo_ps":%s,"bin_width_ps":%s,"counts":[%s]}|} (num_ps h.lo)
    (num_ps h.bin_width)
    (String.concat "," (List.map string_of_int (Array.to_list h.counts)))

let net_json (r : Flow.net_result) =
  let m = r.Flow.solve.Flow.model in
  let c1, c2 = ceffs m in
  let screen = m.Driver_model.screen in
  Printf.sprintf
    {|    {"net":"%s","level":%d,"driver_size":%s,"edge":"%s","input_slew_ps":%s,"shape":"%s","inductive":%b,"f":%s,"rs_ohm":%s,"z0_ohm":%s,"tf_ps":%s,"ceff1_ff":%s,"tr1_ps":%s,"ceff2_ff":%s,"tr2_ps":%s,"ceff_iterations":%d,"near_delay_ps":%s,"stage_delay_ps":%s,"far_slew_ps":%s,"arrival_ps":%s}|}
    (json_escape r.Flow.net.Design.name)
    r.Flow.net.Design.level
    (num r.Flow.net.Design.size)
    (edge_name r.Flow.edge) (num_ps r.Flow.input_slew) (shape_name m)
    screen.Screen.significant (num m.Driver_model.f) (num m.Driver_model.rs)
    (num m.Driver_model.z0)
    (num_ps m.Driver_model.tf)
    (num (ff c1.Driver_model.value))
    (num_ps c1.Driver_model.ramp)
    (match c2 with Some c -> num (ff c.Driver_model.value) | None -> "null")
    (match c2 with Some c -> num_ps c.Driver_model.ramp | None -> "null")
    r.Flow.solve.Flow.iterations
    (num_ps m.Driver_model.delay_50)
    (num_ps r.Flow.solve.Flow.stage_delay)
    (num_ps r.Flow.solve.Flow.far_slew)
    (num_ps r.Flow.arrival)

let json_string ?required ?xtalk (result : Flow.result) =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let stats = result.Flow.stats in
  p "{\n";
  p "  \"design\": \"%s\",\n" (json_escape result.Flow.design.Design.design_name);
  p "  \"nets\": %d,\n" stats.Flow.n_nets;
  p "  \"levels\": %d,\n" stats.Flow.n_levels;
  p "  \"inductive_nets\": %d,\n" stats.Flow.n_inductive;
  p "  \"two_ramp_nets\": %d,\n" stats.Flow.n_two_ramp;
  p "  \"ceff_iterations\": %d,\n" stats.Flow.iterations_total;
  p "  \"net_results\": [\n";
  Array.iteri
    (fun i r ->
      Buffer.add_string buf (net_json r);
      if i < Array.length result.Flow.results - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    result.Flow.results;
  p "  ],\n";
  (* Pre-rendered crosstalk fragment (Rlc_xtalk lives above this library, so
     the composition is by string injection); absent, the payload is
     byte-identical to an isolated-flow report. *)
  (match xtalk with Some x -> p "  \"xtalk\": %s,\n" x | None -> ());
  let path = Flow.critical_path result in
  let worst_arrival =
    match List.rev path with last :: _ -> last.Flow.arrival | [] -> 0.
  in
  p "  \"summary\": {\n";
  p "    \"worst_arrival_ps\": %s,\n" (num_ps worst_arrival);
  (match required with
  | Some req -> p "    \"worst_slack_ps\": %s,\n" (num_ps (req -. worst_arrival))
  | None -> ());
  p "    \"critical_path\": [%s],\n"
    (String.concat ","
       (List.map (fun r -> "\"" ^ json_escape r.Flow.net.Design.name ^ "\"") path));
  let delays =
    Array.to_list (Array.map (fun r -> r.Flow.solve.Flow.stage_delay) result.Flow.results)
  in
  let slews =
    Array.to_list (Array.map (fun r -> r.Flow.solve.Flow.far_slew) result.Flow.results)
  in
  p "    \"stage_delay_histogram\": %s,\n" (json_histogram (histogram delays));
  p "    \"far_slew_histogram\": %s\n" (json_histogram (histogram slews));
  p "  }\n";
  p "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ CSV *)

let csv_string (result : Flow.result) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "net,level,driver_size,edge,input_slew_ps,shape,inductive,f,rs_ohm,z0_ohm,tf_ps,ceff1_ff,tr1_ps,ceff2_ff,tr2_ps,ceff_iterations,near_delay_ps,stage_delay_ps,far_slew_ps,arrival_ps\n";
  Array.iter
    (fun (r : Flow.net_result) ->
      let m = r.Flow.solve.Flow.model in
      let c1, c2 = ceffs m in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%s,%s,%b,%s,%s,%s,%s,%s,%s,%s,%s,%d,%s,%s,%s,%s\n"
           r.Flow.net.Design.name r.Flow.net.Design.level
           (num r.Flow.net.Design.size)
           (edge_name r.Flow.edge) (num_ps r.Flow.input_slew) (shape_name m)
           m.Driver_model.screen.Screen.significant (num m.Driver_model.f)
           (num m.Driver_model.rs) (num m.Driver_model.z0)
           (num_ps m.Driver_model.tf)
           (num (ff c1.Driver_model.value))
           (num_ps c1.Driver_model.ramp)
           (match c2 with Some c -> num (ff c.Driver_model.value) | None -> "")
           (match c2 with Some c -> num_ps c.Driver_model.ramp | None -> "")
           r.Flow.solve.Flow.iterations
           (num_ps m.Driver_model.delay_50)
           (num_ps r.Flow.solve.Flow.stage_delay)
           (num_ps r.Flow.solve.Flow.far_slew)
           (num_ps r.Flow.arrival)))
    result.Flow.results;
  Buffer.contents buf

(* ------------------------------------------------------- optimize report *)

let worst_arrival (result : Flow.result) =
  match List.rev (Flow.critical_path result) with
  | last :: _ -> last.Flow.arrival
  | [] -> 0.

let fix_kind_json (f : Optimize.net_fix) =
  match f.Optimize.f_fix with
  | Optimize.Resize { to_size } ->
      Printf.sprintf {|{"kind":"resize","to_size":%s}|} (num to_size)
  | Optimize.Repeaters { stages; size; est_delay } ->
      Printf.sprintf {|{"kind":"repeaters","stages":%d,"size":%s,"est_delay_ps":%s}|} stages
        (num size) (num_ps est_delay)
  | Optimize.Unfixable -> {|{"kind":"unfixable"}|}

let fix_json (f : Optimize.net_fix) =
  Printf.sprintf
    {|    {"net":"%s","level":%d,"edge":"%s","driver_size":%s,"slack_before_ps":%s,"slack_after_ps":%s,"residual_ps":%s,"stage_before_ps":%s,"stage_after_ps":%s,"candidates":%d,"screened":%d,"escalations":%d,"fix":%s}|}
    (json_escape f.Optimize.f_net.Design.name)
    f.Optimize.f_net.Design.level (edge_name f.Optimize.f_edge)
    (num f.Optimize.f_net.Design.size)
    (num_ps f.Optimize.f_slack_before)
    (num_ps f.Optimize.f_slack_after)
    (num_ps f.Optimize.f_residual)
    (num_ps f.Optimize.f_stage_before)
    (num_ps f.Optimize.f_stage_after)
    f.Optimize.f_candidates f.Optimize.f_screened f.Optimize.f_escalations (fix_kind_json f)

(* Only deterministic quantities enter the payload: fix choices, candidate /
   screen / escalation counts (pure search), and slacks from the verified
   flows.  Cache and wall-clock telemetry stays in {!optimize_summary}. *)
let optimize_json_string (o : Optimize.t) =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let s = o.Optimize.stats in
  p "{\n";
  p "  \"design\": \"%s\",\n"
    (json_escape o.Optimize.before.Flow.design.Design.design_name);
  p "  \"required_ps\": %s,\n" (num_ps o.Optimize.required);
  p "  \"nets\": %d,\n" s.Optimize.o_nets;
  p "  \"violations_before\": %d,\n" s.Optimize.o_violations_before;
  p "  \"violations_after\": %d,\n" s.Optimize.o_violations_after;
  p "  \"resized\": %d,\n" s.Optimize.o_resized;
  p "  \"repeater_recommendations\": %d,\n" s.Optimize.o_repeaters;
  p "  \"unfixable\": %d,\n" s.Optimize.o_unfixable;
  p "  \"candidates\": %d,\n" s.Optimize.o_candidates;
  p "  \"screened\": %d,\n" s.Optimize.o_screened;
  p "  \"escalations\": %d,\n" s.Optimize.o_escalations;
  p "  \"fixes\": [\n";
  Array.iteri
    (fun i f ->
      Buffer.add_string buf (fix_json f);
      if i < Array.length o.Optimize.fixes - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    o.Optimize.fixes;
  p "  ],\n";
  let wa_before = worst_arrival o.Optimize.before
  and wa_after = worst_arrival o.Optimize.after in
  p "  \"summary\": {\n";
  p "    \"worst_slack_before_ps\": %s,\n" (num_ps (o.Optimize.required -. wa_before));
  p "    \"worst_slack_after_ps\": %s,\n" (num_ps (o.Optimize.required -. wa_after));
  p "    \"slack_recovered_ps\": %s\n" (num_ps (wa_before -. wa_after));
  p "  }\n";
  p "}\n";
  Buffer.contents buf

let optimize_csv_string (o : Optimize.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "net,level,edge,driver_size,slack_before_ps,slack_after_ps,residual_ps,stage_before_ps,stage_after_ps,candidates,screened,escalations,fix,fix_size,fix_stages\n";
  Array.iter
    (fun (f : Optimize.net_fix) ->
      let kind, fsize, fstages =
        match f.Optimize.f_fix with
        | Optimize.Resize { to_size } -> ("resize", num to_size, "")
        | Optimize.Repeaters { stages; size; _ } ->
            ("repeaters", num size, string_of_int stages)
        | Optimize.Unfixable -> ("unfixable", "", "")
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%s,%s,%s,%s,%s,%d,%d,%d,%s,%s,%s\n"
           f.Optimize.f_net.Design.name f.Optimize.f_net.Design.level
           (edge_name f.Optimize.f_edge)
           (num f.Optimize.f_net.Design.size)
           (num_ps f.Optimize.f_slack_before)
           (num_ps f.Optimize.f_slack_after)
           (num_ps f.Optimize.f_residual)
           (num_ps f.Optimize.f_stage_before)
           (num_ps f.Optimize.f_stage_after)
           f.Optimize.f_candidates f.Optimize.f_screened f.Optimize.f_escalations kind fsize
           fstages))
    o.Optimize.fixes;
  Buffer.contents buf

let optimize_summary fmt (o : Optimize.t) =
  let s = o.Optimize.stats in
  Format.fprintf fmt "optimize %s: required %.1f ps@."
    o.Optimize.before.Flow.design.Design.design_name
    (ps o.Optimize.required);
  Format.fprintf fmt "  violations: %d before -> %d after (of %d nets)@."
    s.Optimize.o_violations_before s.Optimize.o_violations_after s.Optimize.o_nets;
  Format.fprintf fmt "  fixes: %d resized, %d repeater recommendation%s, %d unfixable@."
    s.Optimize.o_resized s.Optimize.o_repeaters
    (if s.Optimize.o_repeaters = 1 then "" else "s")
    s.Optimize.o_unfixable;
  Format.fprintf fmt "  search: %d candidates evaluated, %d screened out, %d escalations@."
    s.Optimize.o_candidates s.Optimize.o_screened s.Optimize.o_escalations;
  Format.fprintf fmt "  characterization: %d hits, %d misses; compiled handles: %d hits, %d misses@."
    s.Optimize.o_char_hits s.Optimize.o_char_misses s.Optimize.o_handle_hits
    s.Optimize.o_handle_misses;
  let wa_before = worst_arrival o.Optimize.before
  and wa_after = worst_arrival o.Optimize.after in
  Format.fprintf fmt "  worst slack: %+.1f ps -> %+.1f ps (recovered %.1f ps)@."
    (ps (o.Optimize.required -. wa_before))
    (ps (o.Optimize.required -. wa_after))
    (ps (wa_before -. wa_after));
  Format.fprintf fmt "  workers: %d domain%s, %.1f s@." s.Optimize.o_jobs_used
    (if s.Optimize.o_jobs_used = 1 then "" else "s")
    s.Optimize.o_seconds

(* -------------------------------------------------------------- summary *)

let summary ?required fmt (result : Flow.result) =
  let stats = result.Flow.stats in
  Format.fprintf fmt "design %s: %d nets in %d levels@." result.Flow.design.Design.design_name
    stats.Flow.n_nets stats.Flow.n_levels;
  Format.fprintf fmt "  screen: %d inductive (two-ramp: %d), %d RC-like@." stats.Flow.n_inductive
    stats.Flow.n_two_ramp
    (stats.Flow.n_nets - stats.Flow.n_inductive);
  Format.fprintf fmt "  Ceff iterations: %d modeled, %d actually run (cache: %d hits, %d misses)@."
    stats.Flow.iterations_total stats.Flow.iterations_spent stats.Flow.cache_hits
    stats.Flow.cache_misses;
  Format.fprintf fmt "  characterization: %d hits, %d misses (%d stored)@." stats.Flow.char_hits
    stats.Flow.char_misses stats.Flow.char_stores;
  Format.fprintf fmt "  workers: %d domain%s@." stats.Flow.jobs_used
    (if stats.Flow.jobs_used = 1 then "" else "s");
  let path = Flow.critical_path result in
  (match List.rev path with
  | last :: _ ->
      Format.fprintf fmt "  critical path (%s): %s, arrival %.1f ps@."
        (String.concat " -> " (List.map (fun r -> r.Flow.net.Design.name) path))
        (match required with
        | Some req -> Printf.sprintf "slack %+.1f ps" (ps (req -. last.Flow.arrival))
        | None -> "no required time")
        (ps last.Flow.arrival)
  | [] -> ());
  List.iter
    (fun ph -> Format.fprintf fmt "  phase %-12s %8.1f ms@." ph.Flow.p_name (1e3 *. ph.Flow.p_seconds))
    stats.Flow.phases
