(** The parallel full-design timing flow.

    Levels run in order; within a level every net is an independent job
    fanned out over a {!Rlc_parallel.Pool} of OCaml domains.  Each job canonicalizes its
    inputs ({!Cache.quantize} on the admittance fit and line constants,
    {!Cache.quantize_slew} on the input slew), consults the Ceff result
    cache, and on a miss runs the paper's model
    ({!Rlc_ceff.Driver_model.model_pade}) followed by the far-end replay of
    the modeled waveform through the net.  Far-end slews hand off to the
    next level exactly as {!Rlc_sta.analyze} hands off between stages of a
    path ({!Rlc_sta.handoff_slew}, edge alternation included).

    Determinism: every per-net quantity in {!net_result} is a pure function
    of the canonicalized inputs, and results are stored by net id — so
    reports are byte-identical for any [jobs] count.  Cache hit/miss
    counters and wall times {e do} depend on scheduling and are only
    surfaced through {!stats} / logs, never through report payloads. *)

type solve = {
  model : Rlc_ceff.Driver_model.t;
  stage_delay : float;  (** driver-input 50 % -> far-end 50 % (replayed) *)
  far_slew : float;  (** 10–90 at the far end of the replayed waveform *)
  iterations : int;  (** Ceff fixed-point iterations of this solve *)
}

type net_result = {
  net : Design.net;
  edge : Rlc_waveform.Measure.edge;  (** driver output edge *)
  input_slew : float;  (** quantized slew presented at the driver input *)
  solve : solve;
  arrival : float;  (** cumulative arrival at the net's far end, s *)
}

type phase = { p_name : string; p_seconds : float }

type stats = {
  n_nets : int;
  n_levels : int;
  n_inductive : int;  (** Eq. 9 verdicts (deterministic) *)
  n_two_ramp : int;
  iterations_total : int;  (** sum of per-net solve iterations (deterministic) *)
  cache_hits : int;  (** scheduling-dependent; never reported in JSON/CSV *)
  cache_misses : int;
  char_hits : int;
      (** characterization-memo hits/misses/stores attributable to this run
          ({!Rlc_liberty.Characterize.stats} deltas); like the Ceff cache
          counters they are scheduling-dependent and stay out of report
          payloads *)
  char_misses : int;
  char_stores : int;
  iterations_spent : int;  (** iterations actually run = sum over misses *)
  jobs_used : int;
      (** worker domains actually used, after clamping the request to the
          machine's core count; surfaced in the human summary only *)
  phases : phase list;  (** wall time per phase, in execution order *)
}

type result = { design : Design.t; results : net_result array; stats : stats }

val create_cache : unit -> solve Cache.t
(** A cache that can be shared across {!run_cfg} invocations (warm
    re-timing), including across {e concurrent} requests of a resident
    [Rlc_service.Session] — it is sharded ({!Cache.create}) so parallel
    requests contend per shard, not on one global lock. *)

(** The whole knob surface of a flow run as one record, replacing the old
    eight-optional-argument {!run} convention.  Build configurations with
    [{ Config.default with dt = ... }] or the [with_*] helpers. *)
module Config : sig
  type flow_config = {
    dt : float;  (** replay timestep, seconds; default 0.5 ps *)
    adaptive : Rlc_circuit.Engine.adaptive option;
        (** when set, far-end replays run under LTE-controlled adaptive
            stepping ([dt] is then unused by the engine).  The parameters
            are folded into the Ceff cache key, so a shared cache never
            mixes fixed-step and adaptive solves. *)
    jobs : int option;
        (** worker domains when the run creates its own pool; [None] means
            {!Rlc_parallel.Pool.default_jobs}; requests beyond the core
            count are clamped (see [stats.jobs_used]).  Ignored when
            [pool] is given. *)
    use_cache : bool;  (** default true *)
    cache : solve Cache.t option;
        (** share a cache across runs; [None] creates a fresh one per run *)
    quantize_digits : int;  (** cache-key significant digits; default 9 *)
    slew_grid : float;  (** cache-key slew grid, seconds; default 0.1 ps *)
    obs : Rlc_obs.Obs.t;  (** default {!Rlc_obs.Obs.null} (disabled) *)
    progress : Rlc_obs.Progress.t option;
    pool : Rlc_parallel.Pool.t option;
        (** borrow a resident pool: the run uses it as-is and leaves it
            running (the service daemon's warm pool).  [None] (default)
            creates and shuts down a per-run pool of [jobs] domains. *)
    deadline : Rlc_errors.Deadline.t option;
        (** per-request wall-clock budget; when set, the run installs it
            as the ambient deadline for its whole extent — serial phases
            check it at level boundaries, pooled jobs inherit it across
            domains (the pool snapshots the publisher's ambient deadline
            per batch), and the replay engine polls it inside its step
            loops.  Expiry raises {!Rlc_errors.Deadline.Expired}; the
            service maps that onto the wire-stable [Timeout] error.
            [None] (default) disables all checks. *)
    trace : string option;
        (** request trace id; when set, the run installs it as the ambient
            {!Rlc_obs.Obs.with_trace} for its whole extent, so every span
            recorded during the run — including those from pool worker
            domains, which inherit it through the batch snapshot — carries
            a [("trace", id)] arg.  Purely observational: never appears in
            reports.  [None] (default) leaves spans untagged. *)
  }

  type t = flow_config

  val default : t
  val with_jobs : int -> t -> t
  val with_cache : solve Cache.t -> t -> t
  val with_adaptive : Rlc_circuit.Engine.adaptive -> t -> t
end

val solve_sized :
  Config.t ->
  tech:Rlc_devices.Tech.t ->
  net:Design.net ->
  size:float ->
  edge:Rlc_waveform.Measure.edge ->
  input_slew:float ->
  solve
(** Evaluate one driver-size candidate on a net's interconnect: the net with
    its driver resized to [size], canonicalized and solved exactly as the
    flow solves its own nets (same quantization, same cache keys via
    [Config.cache] when [use_cache]).  The result is a pure function of the
    quantized inputs, so sweeps built on it are jobs-independent; a
    subsequent full flow at the chosen size hits the same cache entries.
    May raise as {!run_cfg} does (engine failures, deadline expiry). *)

val run_cfg : Config.t -> Design.t -> result
(** Run the flow under a {!Config.t}.  Cells for every driver size are
    characterized up front in the calling domain (the memo table is shared,
    read-only during fan-out).

    [Config.obs] (default disabled) records: ["flow.characterize"] /
    ["flow.solve"] / ["flow.arrivals"] phase spans, a ["flow.level"] span
    per timing level, a ["flow.net"] span per net (args: net name, level,
    [cache] hit/miss, Ceff iteration count, waveform shape), counters
    ["flow.nets"], ["flow.cache.hits"]/["flow.cache.misses"],
    ["flow.ceff_iterations"] (per-net solve iterations, cached or not —
    sums to [stats.iterations_total]) and ["flow.ceff_iterations_run"]
    (misses only — sums to [stats.iterations_spent]); the sink is also
    forwarded to the pool, the driver model, and the replay engine.
    Telemetry stays out of {!Report} payloads by construction.

    [Config.progress] (default none) is reported the cumulative
    finished-net count after each level completes. *)

(** A stateful timed design: the levelized design, its per-net results
    (which carry the handoff slews), the canonical cache key each net
    solved under, and the sources + configuration that produced them —
    everything {!retime} needs to re-time an edit incrementally. *)
module Timed : sig
  type t

  val result : t -> result
  (** The full flow result; always equal to what a cold {!run_cfg} of the
      current (post-delta) sources would produce. *)

  val design : t -> Design.t
end

val time :
  ?tech:Rlc_devices.Tech.t ->
  Config.t ->
  spef:Rlc_spef.Spef.t ->
  spec:Spec.t ->
  unit ->
  (Timed.t, Rlc_errors.Error.t) Stdlib.result
(** Cold-load a design: {!Design.ingest} the sources, run the full flow
    under the configuration ({!run_cfg} — which may raise exactly as it
    does standalone: {!Rlc_errors.Deadline.Expired} on budget expiry,
    [Invalid_argument]/[Failure] from the engine), and capture the state
    {!retime} needs.  Ingest failures are {!Rlc_errors.Error.Bad_request}.
    The configuration (including any [deadline]/[trace]) is stored and
    reused by every subsequent {!retime} of this handle, except that each
    retime call supplies its own deadline and trace. *)

type delta_stats = { retimed : int; reused : int }
(** Per-delta accounting: [retimed] nets were re-solved (dirty cone plus
    any safety fallbacks), [reused] nets kept their previous solve;
    [retimed + reused] always equals the design's net count. *)

val retime :
  ?deadline:Rlc_errors.Deadline.t ->
  ?trace:string ->
  ?xtalk_victims:bool ->
  Timed.t ->
  Delta.t ->
  (Timed.t * delta_stats, Rlc_errors.Error.t) Stdlib.result
(** Apply a {!Delta.t} and re-time incrementally.  The directly changed
    nets, their downstream fan-out cones through the levelized graph, and
    (when [xtalk_victims], i.e. the handle runs crosstalk analysis) the
    coupling partners of changed nets — under both the old and the edited
    coupling graph — are dirtied and re-solved on the configured pool;
    every other net reuses its stored solve after verifying its canonical
    cache key is unchanged (a mismatch falls back to a full solve, so
    correctness never depends on the dirty set being tight).  Handoff
    slews at the cone frontier come from the reused results, exactly as a
    cold run would hand them off.

    The returned {!Timed.t} replaces the old handle; its {!Timed.result}
    — and hence any {!Report} rendered from it — is byte-identical to a
    cold run of the edited sources under the same configuration.
    [deadline]/[trace] scope this call only (installed ambiently, exactly
    as {!run_cfg} installs its own).

    Obs: one ["flow.delta"] span (args: net/changed/retimed/reused
    counts) plus ["flow.retimed"] / ["flow.reused"] counters.

    Errors: delta validation failures ({!Delta.apply}) and edited designs
    that no longer ingest are {!Rlc_errors.Error.Bad_request}; the engine
    raises as in {!run_cfg}. *)

val critical_path : result -> net_result list
(** The worst-arrival net and its fan-in chain, source first.  Ties break
    toward the lowest net id (deterministic). *)
