(** Concurrent string-keyed result cache with input canonicalization.

    The Ceff↔Tr fixed point is a pure function of (cell, edge, input slew,
    load admittance, line constants, sink load), so repeated bus bits — and
    warm re-runs of a design — can share one solve.  Keys are strings built
    from {e quantized} inputs, and callers must feed the {e same quantized
    values} into the solve itself: that way two nets that collide on a key
    compute bit-identical results, making reports independent of which
    domain populated the cache first (the [--jobs 1] vs [--jobs N]
    determinism guarantee).

    On a concurrent miss both domains compute (the solve runs outside the
    lock); the first insert wins and the duplicate result — equal by
    construction — is dropped.

    The cache is {e sharded}: keys hash-partition across [shards]
    independent tables, each behind its own mutex, so concurrent service
    requests sharing one session cache contend only on same-shard keys
    instead of one global lock.  Hit/miss/length queries aggregate over
    shards; {!shard_stats} exposes the per-shard breakdown (the sums
    always reconcile with {!hits}/{!misses}/{!length}). *)

type 'a t

val default_shards : int
(** 16 — comfortably more shards than plausible worker domains. *)

val create : ?shards:int -> unit -> 'a t
(** [shards] (default {!default_shards}) is clamped to at least 1 and
    rounded up to a power of two. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns [(value, hit)].  [compute] runs
    outside the lock on a miss. *)

val hits : 'a t -> int
val misses : 'a t -> int
val length : 'a t -> int

val shards : 'a t -> int
(** The shard count actually in use (power of two). *)

type shard_stat = { s_length : int; s_hits : int; s_misses : int }

val shard_stats : 'a t -> shard_stat array
(** Per-shard (length, hits, misses), index-aligned with the partition;
    each field sums to the corresponding aggregate query. *)

val clear : 'a t -> unit

(** {2 Canonicalization helpers} *)

val quantize : ?digits:int -> float -> float
(** Round to [digits] significant decimal digits (default 9) by a
    [%.*e] round-trip; total order preserved, NaN/inf pass through.  Nine
    digits comfortably exceeds extraction noise while collapsing
    bit-identical bus parasitics emitted with different float garbage. *)

val quantize_slew : ?grid:float -> float -> float
(** Snap a slew to a time grid (default 0.1 ps): slews arriving from
    upstream stages differ in the last ulps even for symmetric bus bits, so
    a coarser deterministic grid is what makes their cache keys collide. *)
