(** Concurrent string-keyed result cache with input canonicalization.

    The Ceff↔Tr fixed point is a pure function of (cell, edge, input slew,
    load admittance, line constants, sink load), so repeated bus bits — and
    warm re-runs of a design — can share one solve.  Keys are strings built
    from {e quantized} inputs, and callers must feed the {e same quantized
    values} into the solve itself: that way two nets that collide on a key
    compute bit-identical results, making reports independent of which
    domain populated the cache first (the [--jobs 1] vs [--jobs N]
    determinism guarantee).

    On a concurrent miss both domains compute (the solve runs outside the
    lock); the first insert wins and the duplicate result — equal by
    construction — is dropped. *)

type 'a t

val create : unit -> 'a t

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns [(value, hit)].  [compute] runs
    outside the lock on a miss. *)

val hits : 'a t -> int
val misses : 'a t -> int
val length : 'a t -> int
val clear : 'a t -> unit

(** {2 Canonicalization helpers} *)

val quantize : ?digits:int -> float -> float
(** Round to [digits] significant decimal digits (default 9) by a
    [%.*e] round-trip; total order preserved, NaN/inf pass through.  Nine
    digits comfortably exceeds extraction noise while collapsing
    bit-identical bus parasitics emitted with different float garbage. *)

val quantize_slew : ?grid:float -> float -> float
(** Snap a slew to a time grid (default 0.1 ps): slews arriving from
    upstream stages differ in the last ulps even for symmetric bus bits, so
    a coarser deterministic grid is what makes their cache keys collide. *)
