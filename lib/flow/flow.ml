module Measure = Rlc_waveform.Measure
module Driver_model = Rlc_ceff.Driver_model
module Reference = Rlc_ceff.Reference
module Characterize = Rlc_liberty.Characterize
module Line = Rlc_tline.Line
module Pade = Rlc_moments.Pade
module Sta = Rlc_sta.Sta
module Pool = Rlc_parallel.Pool
module Obs = Rlc_obs.Obs
module Progress = Rlc_obs.Progress
module Deadline = Rlc_errors.Deadline

let src = Logs.Src.create "rlc.flow" ~doc:"parallel full-design timing flow"

module Log = (val Logs.src_log src : Logs.LOG)

type solve = {
  model : Driver_model.t;
  stage_delay : float;
  far_slew : float;
  iterations : int;
}

type net_result = {
  net : Design.net;
  edge : Measure.edge;
  input_slew : float;
  solve : solve;
  arrival : float;
}

type phase = { p_name : string; p_seconds : float }

type stats = {
  n_nets : int;
  n_levels : int;
  n_inductive : int;
  n_two_ramp : int;
  iterations_total : int;
  cache_hits : int;
  cache_misses : int;
  char_hits : int;
  char_misses : int;
  char_stores : int;
  iterations_spent : int;
  jobs_used : int;
  phases : phase list;
}

type result = { design : Design.t; results : net_result array; stats : stats }

let create_cache () : solve Cache.t = Cache.create ()

(* The whole knob surface of a flow run as one value, so embedders (CLI,
   bench, the service daemon's [Session]) pass configuration around and
   override single fields without threading eight optional arguments. *)
module Config = struct
  type flow_config = {
    dt : float;
    adaptive : Rlc_circuit.Engine.adaptive option;
    jobs : int option;
    use_cache : bool;
    cache : solve Cache.t option;
    quantize_digits : int;
    slew_grid : float;
    obs : Obs.t;
    progress : Progress.t option;
    pool : Pool.t option;
    deadline : Deadline.t option;
    trace : string option;
        (** request trace id, installed as the ambient {!Obs.with_trace}
            for the whole run so every span it records tags to it *)
  }

  type t = flow_config

  let default =
    {
      dt = 0.5e-12;
      adaptive = None;
      jobs = None;
      use_cache = true;
      cache = None;
      quantize_digits = 9;
      slew_grid = 0.1e-12;
      obs = Obs.null;
      progress = None;
      pool = None;
      deadline = None;
      trace = None;
    }

  let with_jobs jobs t = { t with jobs = Some jobs }
  let with_cache cache t = { t with cache = Some cache }
  let with_adaptive a t = { t with adaptive = Some a }
end

(* Canonicalize the per-net electrical inputs so that (a) repeated bus bits
   collide on one cache key and (b) the solve is a pure function of the key
   — the flow's jobs-count-independence rests on computing FROM the
   quantized values, not merely keying on them. *)
type canonical = {
  q_slew : float;
  q_pade : Pade.t;
  q_line : Line.t;
  q_cl : float;
  key : string;
}

(* Adaptive stepping changes the replayed waveform's grid (and hence the
   measured numbers at the last ulp), so its parameters are part of the
   cache key: a shared cache never serves a fixed-step solve to an
   adaptive run or vice versa. *)
let stepping_tag = function
  | None -> "fixed"
  | Some a ->
      Printf.sprintf "adaptive:%.17g:%.17g:%.17g" a.Rlc_circuit.Engine.dt_min
        a.Rlc_circuit.Engine.dt_max a.Rlc_circuit.Engine.ltol

let canonicalize ~digits ~grid ~tech ~dt ?adaptive (net : Design.net) ~edge ~input_slew =
  let q = Cache.quantize ~digits in
  let q_slew = Cache.quantize_slew ~grid (Sta.clamp_slew input_slew) in
  let p = net.Design.pade in
  let q_pade =
    { Pade.a1 = q p.Pade.a1; a2 = q p.Pade.a2; a3 = q p.Pade.a3; b1 = q p.Pade.b1; b2 = q p.Pade.b2 }
  in
  let line = net.Design.eq_line in
  let q_line =
    Line.of_totals ~r:(q (Line.total_r line)) ~l:(q (Line.total_l line))
      ~c:(q (Line.total_c line)) ~length:line.Line.length
  in
  let q_cl = q net.Design.cl in
  let key =
    Printf.sprintf
      "%s|%.17g|%c|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%s"
      tech.Rlc_devices.Tech.name net.Design.size
      (match edge with Measure.Rising -> 'r' | Measure.Falling -> 'f')
      q_slew q_pade.Pade.a1 q_pade.Pade.a2 q_pade.Pade.a3 q_pade.Pade.b1 q_pade.Pade.b2
      (Line.total_r q_line) (Line.total_l q_line) (Line.total_c q_line) q_cl dt
      (stepping_tag adaptive)
  in
  { q_slew; q_pade; q_line; q_cl; key }

let cell_exn ?obs tech ~size =
  match Characterize.cell_res ?obs tech ~size with
  | Ok c -> c
  | Error e -> failwith (Rlc_errors.Error.message e)

let solve_net ?obs ?adaptive ~tech ~dt ~edge ~size c =
  let cell = cell_exn ?obs tech ~size in
  let model =
    Driver_model.model_pade ?obs ~cell ~edge ~input_slew:c.q_slew ~pade:c.q_pade ~line:c.q_line
      ~cl:c.q_cl ()
  in
  let _, far =
    Reference.replay_pwl ?obs ~dt ?adaptive ~pwl:model.Driver_model.pwl ~line:c.q_line
      ~cl:c.q_cl ()
  in
  let vdd = model.Driver_model.vdd in
  (* The model waveform lives in the normalized rising domain; t = 0 is the
     driver-input 50 % crossing, so the far-end 50 % time IS the stage
     delay (same convention as Rlc_sta.analyze). *)
  let stage_delay = Measure.t_frac_exn far ~vdd ~edge:Measure.Rising ~frac:0.5 in
  let far_slew =
    match Measure.slew_10_90 far ~vdd ~edge:Measure.Rising with
    | Some s -> s
    | None -> invalid_arg "Rlc_flow.Flow: far-end replay never completed 10-90"
  in
  { model; stage_delay; far_slew; iterations = Driver_model.total_iterations model }

(* One candidate evaluation for the optimizer: the net's interconnect with a
   caller-chosen driver size, canonicalized and cached exactly as the flow
   canonicalizes its own solves — so an optimize sweep and the final
   verification flow agree on every shared (net, size, slew) key, and the
   solve stays a pure function of the quantized inputs (jobs-independent). *)
let solve_sized (cfg : Config.t) ~tech ~(net : Design.net) ~size ~edge ~input_slew =
  let net = { net with Design.size } in
  let c =
    canonicalize ~digits:cfg.Config.quantize_digits ~grid:cfg.Config.slew_grid ~tech
      ~dt:cfg.Config.dt ?adaptive:cfg.Config.adaptive net ~edge ~input_slew
  in
  let obs = cfg.Config.obs in
  let compute () =
    solve_net ~obs ?adaptive:cfg.Config.adaptive ~tech ~dt:cfg.Config.dt ~edge ~size c
  in
  match cfg.Config.cache with
  | Some cache when cfg.Config.use_cache -> fst (Cache.find_or_add cache c.key compute)
  | _ -> compute ()

let run_cfg_inner (cfg : Config.t) (design : Design.t) =
  let obs = cfg.Config.obs
  and progress = cfg.Config.progress
  and dt = cfg.Config.dt
  and adaptive = cfg.Config.adaptive
  and use_cache = cfg.Config.use_cache
  and quantize_digits = cfg.Config.quantize_digits
  and slew_grid = cfg.Config.slew_grid in
  (* A borrowed pool (the service daemon's resident one) is used as-is and
     left running; otherwise a pool is created for this run and shut down
     with it.  Requested fan-out is clamped to the core count —
     oversubscribing domains only adds scheduler churn. *)
  let jobs_used =
    match cfg.Config.pool with
    | Some pool -> Pool.jobs pool
    | None -> (
        match cfg.Config.jobs with
        | Some j -> Int.max 1 (Int.min j (Pool.default_jobs ()))
        | None -> Pool.default_jobs ())
  in
  let with_run_pool f =
    match cfg.Config.pool with
    | Some pool -> f pool
    | None -> Pool.with_pool ~obs ~jobs:jobs_used f
  in
  let cache = match cfg.Config.cache with Some c -> c | None -> create_cache () in
  let hits0 = Cache.hits cache and misses0 = Cache.misses cache in
  let ch0, cm0, cs0 = Characterize.stats () in
  let tech = design.Design.tech in
  let n = Array.length design.Design.nets in
  let phases = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let v = Obs.time obs ("flow." ^ name) f in
    let dt_wall = Unix.gettimeofday () -. t0 in
    phases := { p_name = name; p_seconds = dt_wall } :: !phases;
    Log.info (fun m -> m "phase %-12s %8.1f ms" name (1e3 *. dt_wall));
    v
  in
  (* Characterize every driver size once, in the calling domain, so the
     worker domains only ever read the (mutex-guarded) memo table. *)
  timed "characterize" (fun () ->
      List.iter (fun size -> ignore (cell_exn ~obs tech ~size)) design.Design.sizes);
  let results : net_result option array = Array.make n None in
  (* incremented from worker domains *)
  let spent = Atomic.make 0 in
  let nets_done = Atomic.make 0 in
  timed "solve" (fun () ->
      with_run_pool (fun pool ->
          Array.iteri
            (fun lvl ids ->
              Deadline.check_ambient ();
              let level_t0 = Obs.start obs in
              (* Input slew and edge for this level are fixed by the
                 previous level (or the spec), so prepare them serially. *)
              let jobs_for_level =
                Array.map
                  (fun id ->
                    let net = design.Design.nets.(id) in
                    let edge, input_slew =
                      match net.Design.fanin with
                      | None -> (Measure.Rising, Option.get net.Design.prim_slew)
                      | Some p ->
                          let pr = Option.get results.(p) in
                          ( Sta.other_edge pr.edge,
                            Sta.handoff_slew ~far_slew:pr.solve.far_slew )
                    in
                    (net, edge, input_slew))
                  ids
              in
              let solved =
                Pool.map pool (Array.length ids) (fun k ->
                    (* Observation point: a flow whose budget expired stops
                       before the next solve, even when every remaining net
                       would be a cheap cache hit. *)
                    Deadline.check_ambient ();
                    let net, edge, input_slew = jobs_for_level.(k) in
                    let net_t0 = Obs.start obs in
                    let c =
                      canonicalize ~digits:quantize_digits ~grid:slew_grid ~tech ~dt ?adaptive
                        net ~edge ~input_slew
                    in
                    let compute () =
                      let s = solve_net ~obs ?adaptive ~tech ~dt ~edge ~size:net.Design.size c in
                      Atomic.fetch_and_add spent s.iterations |> ignore;
                      s
                    in
                    let solve, hit =
                      if use_cache then Cache.find_or_add cache c.key compute
                      else (compute (), false)
                    in
                    if Obs.enabled obs then begin
                      Obs.finish obs
                        ~args:
                          [
                            ("net", net.Design.name);
                            ("level", string_of_int lvl);
                            ("cache", if hit then "hit" else "miss");
                            ("ceff_iterations", string_of_int solve.iterations);
                            ( "shape",
                              match solve.model.Driver_model.shape with
                              | Driver_model.Two_ramp _ -> "two-ramp"
                              | Driver_model.One_ramp _ -> "one-ramp" );
                          ]
                        "flow.net" net_t0;
                      Obs.incr obs "flow.nets";
                      Obs.incr obs (if hit then "flow.cache.hits" else "flow.cache.misses");
                      (* Per-net iterations regardless of cache outcome: sums
                         to [stats.iterations_total].  The separate *_run
                         counter tracks iterations actually executed. *)
                      Obs.add obs "flow.ceff_iterations" solve.iterations;
                      if not hit then Obs.add obs "flow.ceff_iterations_run" solve.iterations
                    end;
                    Log.debug (fun m ->
                        m "net %-16s level %d %s: delay %.1f ps slew %.1f ps (%d iters%s)"
                          net.Design.name lvl
                          (match edge with Measure.Rising -> "rise" | Measure.Falling -> "fall")
                          (Rlc_num.Units.in_ps solve.stage_delay)
                          (Rlc_num.Units.in_ps solve.far_slew)
                          solve.iterations
                          (if hit then ", cached" else ""));
                    { net; edge; input_slew = c.q_slew; solve; arrival = 0. })
              in
              Array.iteri (fun k r -> results.(ids.(k)) <- Some r) solved;
              Obs.finish obs
                ~args:[ ("level", string_of_int lvl); ("nets", string_of_int (Array.length ids)) ]
                "flow.level" level_t0;
              let done_now = Atomic.fetch_and_add nets_done (Array.length ids) + Array.length ids in
              match progress with
              | Some p -> Progress.report p done_now
              | None -> ())
            design.Design.levels));
  (* Arrivals accumulate along the fan-in chains; levels are already in
     dependency order, so one ordered pass suffices. *)
  let results =
    timed "arrivals" (fun () ->
        let out = Array.map Option.get results in
        Array.iter
          (fun ids ->
            Array.iter
              (fun id ->
                let r = out.(id) in
                let base =
                  match r.net.Design.fanin with
                  | None -> 0.
                  | Some p -> out.(p).arrival
                in
                out.(id) <- { r with arrival = base +. r.solve.stage_delay })
              ids)
          design.Design.levels;
        out)
  in
  let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 results in
  let stats =
    {
      n_nets = n;
      n_levels = Array.length design.Design.levels;
      n_inductive =
        count (fun r ->
            r.solve.model.Driver_model.screen.Rlc_ceff.Screen.significant);
      n_two_ramp =
        count (fun r ->
            match r.solve.model.Driver_model.shape with
            | Driver_model.Two_ramp _ -> true
            | Driver_model.One_ramp _ -> false);
      iterations_total =
        Array.fold_left (fun acc r -> acc + r.solve.iterations) 0 results;
      cache_hits = Cache.hits cache - hits0;
      cache_misses = Cache.misses cache - misses0;
      char_hits = (let h, _, _ = Characterize.stats () in h - ch0);
      char_misses = (let _, m, _ = Characterize.stats () in m - cm0);
      char_stores = (let _, _, s = Characterize.stats () in s - cs0);
      iterations_spent = Atomic.get spent;
      jobs_used;
      phases = List.rev !phases;
    }
  in
  Log.info (fun m ->
      m "flow: %d nets / %d levels, %d inductive, cache %d hits / %d misses, %d/%d iterations run"
        stats.n_nets stats.n_levels stats.n_inductive stats.cache_hits stats.cache_misses
        stats.iterations_spent stats.iterations_total);
  { design; results; stats }

(* The request deadline (when any) is installed ambiently for the whole
   run: the serial phases check it at level boundaries, worker domains
   inherit it through the pool's batch snapshot, and the replay engine
   polls it inside its step loops.  The trace id rides the same mechanism:
   installed here for the master domain, snapshotted into pool batches for
   the workers, stamped onto every span by [Obs.record_span]. *)
let with_run (cfg : Config.t) f =
  let body () =
    match cfg.Config.deadline with None -> f () | Some d -> Deadline.with_ambient d f
  in
  match cfg.Config.trace with
  | None -> body ()
  | Some _ as trace -> Obs.with_trace trace body

let run_cfg (cfg : Config.t) (design : Design.t) =
  with_run cfg (fun () -> run_cfg_inner cfg design)

(* ---------------------------------------------------- incremental (ECO) *)

module Timed = struct
  type timed = {
    cfg : Config.t;
    spef : Rlc_spef.Spef.t;
    spec : Spec.t;
    result : result;
    keys : string array;
        (* canonical cache key per net id, exactly as each net solved:
           recomputable because quantization is idempotent and
           [net_result.input_slew] is stored already quantized *)
  }

  type t = timed

  let result t = t.result
  let design t = t.result.design
end

let keys_of (cfg : Config.t) (res : result) =
  let tech = res.design.Design.tech in
  Array.map
    (fun r ->
      (canonicalize ~digits:cfg.Config.quantize_digits ~grid:cfg.Config.slew_grid ~tech
         ~dt:cfg.Config.dt ?adaptive:cfg.Config.adaptive r.net ~edge:r.edge
         ~input_slew:r.input_slew)
        .key)
    res.results

let time ?tech (cfg : Config.t) ~spef ~spec () =
  match Design.ingest ?tech ~spef ~spec () with
  | Error msg -> Error (Rlc_errors.Error.Bad_request msg)
  | Ok design ->
      let result = run_cfg cfg design in
      Ok { Timed.cfg; spef; spec; result; keys = keys_of cfg result }

type delta_stats = { retimed : int; reused : int }

(* The incremental solve pass.  Structure mirrors [run_cfg_inner] exactly —
   same level order, same handoff preparation, same canonicalization, same
   pooled fan-out — but a net outside the dirty set whose canonical key is
   unchanged reuses its previous solve without touching the cache.  The
   reuse is sound by induction over levels: the dirty set is downward-closed
   over fan-out, so every ancestor of a clean net is clean, its handoff slew
   and edge are bit-identical to the previous run, and an equal key selects
   an equal (pure-function-of-the-key) solve.  A clean net whose key
   nonetheless moved falls back to a full solve — correctness never rests
   on the dirty-set computation being tight. *)
let retime_inner (cfg : Config.t) (design : Design.t) ~(old_results : net_result array) ~keys
    ~dirty =
  let obs = cfg.Config.obs
  and dt = cfg.Config.dt
  and adaptive = cfg.Config.adaptive
  and use_cache = cfg.Config.use_cache
  and quantize_digits = cfg.Config.quantize_digits
  and slew_grid = cfg.Config.slew_grid in
  let jobs_used =
    match cfg.Config.pool with
    | Some pool -> Pool.jobs pool
    | None -> (
        match cfg.Config.jobs with
        | Some j -> Int.max 1 (Int.min j (Pool.default_jobs ()))
        | None -> Pool.default_jobs ())
  in
  let with_run_pool f =
    match cfg.Config.pool with
    | Some pool -> f pool
    | None -> Pool.with_pool ~obs ~jobs:jobs_used f
  in
  let cache = match cfg.Config.cache with Some c -> c | None -> create_cache () in
  let hits0 = Cache.hits cache and misses0 = Cache.misses cache in
  let ch0, cm0, cs0 = Characterize.stats () in
  let tech = design.Design.tech in
  let n = Array.length design.Design.nets in
  (* A delta can introduce a driver size the cold run never saw. *)
  List.iter (fun size -> ignore (cell_exn ~obs tech ~size)) design.Design.sizes;
  let results : net_result option array = Array.make n None in
  let spent = Atomic.make 0 in
  let retimed = Atomic.make 0 and reused = Atomic.make 0 in
  with_run_pool (fun pool ->
      Array.iter
        (fun ids ->
          Deadline.check_ambient ();
          let jobs_for_level =
            Array.map
              (fun id ->
                let net = design.Design.nets.(id) in
                let edge, input_slew =
                  match net.Design.fanin with
                  | None -> (Measure.Rising, Option.get net.Design.prim_slew)
                  | Some p ->
                      let pr = Option.get results.(p) in
                      (Sta.other_edge pr.edge, Sta.handoff_slew ~far_slew:pr.solve.far_slew)
                in
                (net, edge, input_slew))
              ids
          in
          let solved =
            Pool.map pool (Array.length ids) (fun k ->
                Deadline.check_ambient ();
                let net, edge, input_slew = jobs_for_level.(k) in
                let c =
                  canonicalize ~digits:quantize_digits ~grid:slew_grid ~tech ~dt ?adaptive net
                    ~edge ~input_slew
                in
                let id = net.Design.id in
                let reuse =
                  if dirty.(id) then None
                  else if String.equal c.key keys.(id) then Some old_results.(id).solve
                  else None
                in
                match reuse with
                | Some solve ->
                    Atomic.incr reused;
                    Obs.incr obs "flow.reused";
                    { net; edge; input_slew = c.q_slew; solve; arrival = 0. }
                | None ->
                    Atomic.incr retimed;
                    Obs.incr obs "flow.retimed";
                    let compute () =
                      let s = solve_net ~obs ?adaptive ~tech ~dt ~edge ~size:net.Design.size c in
                      Atomic.fetch_and_add spent s.iterations |> ignore;
                      s
                    in
                    let solve, _hit =
                      if use_cache then Cache.find_or_add cache c.key compute
                      else (compute (), false)
                    in
                    { net; edge; input_slew = c.q_slew; solve; arrival = 0. })
          in
          Array.iteri (fun k r -> results.(ids.(k)) <- Some r) solved)
        design.Design.levels);
  let results =
    let out = Array.map Option.get results in
    Array.iter
      (fun ids ->
        Array.iter
          (fun id ->
            let r = out.(id) in
            let base =
              match r.net.Design.fanin with None -> 0. | Some p -> out.(p).arrival
            in
            out.(id) <- { r with arrival = base +. r.solve.stage_delay })
          ids)
      design.Design.levels;
    out
  in
  let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 results in
  let stats =
    {
      n_nets = n;
      n_levels = Array.length design.Design.levels;
      n_inductive =
        count (fun r -> r.solve.model.Driver_model.screen.Rlc_ceff.Screen.significant);
      n_two_ramp =
        count (fun r ->
            match r.solve.model.Driver_model.shape with
            | Driver_model.Two_ramp _ -> true
            | Driver_model.One_ramp _ -> false);
      iterations_total = Array.fold_left (fun acc r -> acc + r.solve.iterations) 0 results;
      cache_hits = Cache.hits cache - hits0;
      cache_misses = Cache.misses cache - misses0;
      char_hits = (let h, _, _ = Characterize.stats () in h - ch0);
      char_misses = (let _, m, _ = Characterize.stats () in m - cm0);
      char_stores = (let _, _, s = Characterize.stats () in s - cs0);
      iterations_spent = Atomic.get spent;
      jobs_used;
      phases = [];
    }
  in
  ({ design; results; stats }, Atomic.get retimed, Atomic.get reused)

let retime ?deadline ?trace ?(xtalk_victims = false) (t : Timed.t) (delta : Delta.t) =
  match Delta.apply ~spef:t.Timed.spef ~spec:t.Timed.spec delta with
  | Error _ as e -> e
  | Ok { Delta.spef; spec; changed } -> (
      let old = t.Timed.result in
      (* Re-ingest the edited sources wholesale: ingest is pure graph and
         fitting work (no waveform solves), and running it exactly as a
         cold run would guarantees the structural inputs to every solve are
         identical to that cold run's. *)
      match Design.ingest ~tech:old.design.Design.tech ~spef ~spec () with
      | Error msg -> Error (Rlc_errors.Error.Bad_request msg)
      | Ok design ->
          let n = Array.length design.Design.nets in
          if
            n <> Array.length old.design.Design.nets
            || not
                 (Array.for_all2
                    (fun (a : Design.net) (b : Design.net) ->
                      String.equal a.Design.name b.Design.name)
                    design.Design.nets old.design.Design.nets)
          then Error (Rlc_errors.Error.Internal "retime: net universe changed under a delta")
          else begin
            let direct = Array.make n false in
            Array.iter
              (fun (net : Design.net) ->
                if List.mem net.Design.name changed then direct.(net.Design.id) <- true)
              design.Design.nets;
            (* Crosstalk-coupled victims of changed nets (old and new
               coupling graphs both: an edited block can add or drop a
               coupling, and the partner is affected either way). *)
            let partners =
              if not xtalk_victims then []
              else
                List.concat_map
                  (fun (cs : Design.coupling array) ->
                    List.filter_map
                      (fun (c : Design.coupling) ->
                        if direct.(c.Design.net_a) then Some c.Design.net_b
                        else if direct.(c.Design.net_b) then Some c.Design.net_a
                        else None)
                      (Array.to_list cs))
                  [ old.design.Design.couplings; design.Design.couplings ]
            in
            (* Downward closure over fan-out: the dirty cone. *)
            let dirty = Array.make n false in
            let rec mark i =
              if not dirty.(i) then begin
                dirty.(i) <- true;
                List.iter mark design.Design.nets.(i).Design.fanout
              end
            in
            Array.iteri (fun i d -> if d then mark i) direct;
            List.iter mark partners;
            let cfg = { t.Timed.cfg with Config.deadline; trace } in
            let obs = cfg.Config.obs in
            let result, n_retimed, n_reused =
              with_run cfg (fun () ->
                  let t0 = Obs.start obs in
                  let ((_, n_retimed, n_reused) as v) =
                    retime_inner cfg design ~old_results:old.results ~keys:t.Timed.keys ~dirty
                  in
                  Obs.finish obs
                    ~args:
                      [
                        ("nets", string_of_int n);
                        ("changed", string_of_int (List.length changed));
                        ("retimed", string_of_int n_retimed);
                        ("reused", string_of_int n_reused);
                      ]
                    "flow.delta" t0;
                  v)
            in
            Log.info (fun m ->
                m "delta: %d/%d nets retimed (%d reused) for %d changed"
                  n_retimed n n_reused (List.length changed));
            Ok
              ( {
                  Timed.cfg = t.Timed.cfg;
                  spef;
                  spec;
                  result;
                  keys = keys_of t.Timed.cfg result;
                },
                { retimed = n_retimed; reused = n_reused } )
          end)

let critical_path result =
  let worst =
    Array.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some best -> if r.arrival > best.arrival then Some r else Some best)
      None result.results
  in
  match worst with
  | None -> []
  | Some last ->
      let rec walk acc r =
        match r.net.Design.fanin with
        | None -> r :: acc
        | Some p -> walk (r :: acc) result.results.(p)
      in
      walk [] last
