module Measure = Rlc_waveform.Measure
module Driver_model = Rlc_ceff.Driver_model
module Reference = Rlc_ceff.Reference
module Characterize = Rlc_liberty.Characterize
module Line = Rlc_tline.Line
module Pade = Rlc_moments.Pade
module Sta = Rlc_sta.Sta
module Obs = Rlc_obs.Obs
module Progress = Rlc_obs.Progress
module Deadline = Rlc_errors.Deadline

let src = Logs.Src.create "rlc.flow" ~doc:"parallel full-design timing flow"

module Log = (val Logs.src_log src : Logs.LOG)

type solve = {
  model : Driver_model.t;
  stage_delay : float;
  far_slew : float;
  iterations : int;
}

type net_result = {
  net : Design.net;
  edge : Measure.edge;
  input_slew : float;
  solve : solve;
  arrival : float;
}

type phase = { p_name : string; p_seconds : float }

type stats = {
  n_nets : int;
  n_levels : int;
  n_inductive : int;
  n_two_ramp : int;
  iterations_total : int;
  cache_hits : int;
  cache_misses : int;
  iterations_spent : int;
  jobs_used : int;
  phases : phase list;
}

type result = { design : Design.t; results : net_result array; stats : stats }

let create_cache () : solve Cache.t = Cache.create ()

(* The whole knob surface of a flow run as one value, so embedders (CLI,
   bench, the service daemon's [Session]) pass configuration around and
   override single fields without threading eight optional arguments. *)
module Config = struct
  type flow_config = {
    dt : float;
    adaptive : Rlc_circuit.Engine.adaptive option;
    jobs : int option;
    use_cache : bool;
    cache : solve Cache.t option;
    quantize_digits : int;
    slew_grid : float;
    obs : Obs.t;
    progress : Progress.t option;
    pool : Pool.t option;
    deadline : Deadline.t option;
    trace : string option;
        (** request trace id, installed as the ambient {!Obs.with_trace}
            for the whole run so every span it records tags to it *)
  }

  type t = flow_config

  let default =
    {
      dt = 0.5e-12;
      adaptive = None;
      jobs = None;
      use_cache = true;
      cache = None;
      quantize_digits = 9;
      slew_grid = 0.1e-12;
      obs = Obs.null;
      progress = None;
      pool = None;
      deadline = None;
      trace = None;
    }

  let with_jobs jobs t = { t with jobs = Some jobs }
  let with_cache cache t = { t with cache = Some cache }
  let with_adaptive a t = { t with adaptive = Some a }
end

(* Canonicalize the per-net electrical inputs so that (a) repeated bus bits
   collide on one cache key and (b) the solve is a pure function of the key
   — the flow's jobs-count-independence rests on computing FROM the
   quantized values, not merely keying on them. *)
type canonical = {
  q_slew : float;
  q_pade : Pade.t;
  q_line : Line.t;
  q_cl : float;
  key : string;
}

(* Adaptive stepping changes the replayed waveform's grid (and hence the
   measured numbers at the last ulp), so its parameters are part of the
   cache key: a shared cache never serves a fixed-step solve to an
   adaptive run or vice versa. *)
let stepping_tag = function
  | None -> "fixed"
  | Some a ->
      Printf.sprintf "adaptive:%.17g:%.17g:%.17g" a.Rlc_circuit.Engine.dt_min
        a.Rlc_circuit.Engine.dt_max a.Rlc_circuit.Engine.ltol

let canonicalize ~digits ~grid ~tech ~dt ?adaptive (net : Design.net) ~edge ~input_slew =
  let q = Cache.quantize ~digits in
  let q_slew = Cache.quantize_slew ~grid (Sta.clamp_slew input_slew) in
  let p = net.Design.pade in
  let q_pade =
    { Pade.a1 = q p.Pade.a1; a2 = q p.Pade.a2; a3 = q p.Pade.a3; b1 = q p.Pade.b1; b2 = q p.Pade.b2 }
  in
  let line = net.Design.eq_line in
  let q_line =
    Line.of_totals ~r:(q (Line.total_r line)) ~l:(q (Line.total_l line))
      ~c:(q (Line.total_c line)) ~length:line.Line.length
  in
  let q_cl = q net.Design.cl in
  let key =
    Printf.sprintf
      "%s|%.17g|%c|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%s"
      tech.Rlc_devices.Tech.name net.Design.size
      (match edge with Measure.Rising -> 'r' | Measure.Falling -> 'f')
      q_slew q_pade.Pade.a1 q_pade.Pade.a2 q_pade.Pade.a3 q_pade.Pade.b1 q_pade.Pade.b2
      (Line.total_r q_line) (Line.total_l q_line) (Line.total_c q_line) q_cl dt
      (stepping_tag adaptive)
  in
  { q_slew; q_pade; q_line; q_cl; key }

let cell_exn tech ~size =
  match Characterize.cell_res tech ~size with
  | Ok c -> c
  | Error e -> failwith (Rlc_errors.Error.message e)

let solve_net ?obs ?adaptive ~tech ~dt ~edge ~size c =
  let cell = cell_exn tech ~size in
  let model =
    Driver_model.model_pade ?obs ~cell ~edge ~input_slew:c.q_slew ~pade:c.q_pade ~line:c.q_line
      ~cl:c.q_cl ()
  in
  let _, far =
    Reference.replay_pwl ?obs ~dt ?adaptive ~pwl:model.Driver_model.pwl ~line:c.q_line
      ~cl:c.q_cl ()
  in
  let vdd = model.Driver_model.vdd in
  (* The model waveform lives in the normalized rising domain; t = 0 is the
     driver-input 50 % crossing, so the far-end 50 % time IS the stage
     delay (same convention as Rlc_sta.analyze). *)
  let stage_delay = Measure.t_frac_exn far ~vdd ~edge:Measure.Rising ~frac:0.5 in
  let far_slew =
    match Measure.slew_10_90 far ~vdd ~edge:Measure.Rising with
    | Some s -> s
    | None -> invalid_arg "Rlc_flow.Flow: far-end replay never completed 10-90"
  in
  { model; stage_delay; far_slew; iterations = Driver_model.total_iterations model }

let run_cfg_inner (cfg : Config.t) (design : Design.t) =
  let obs = cfg.Config.obs
  and progress = cfg.Config.progress
  and dt = cfg.Config.dt
  and adaptive = cfg.Config.adaptive
  and use_cache = cfg.Config.use_cache
  and quantize_digits = cfg.Config.quantize_digits
  and slew_grid = cfg.Config.slew_grid in
  (* A borrowed pool (the service daemon's resident one) is used as-is and
     left running; otherwise a pool is created for this run and shut down
     with it.  Requested fan-out is clamped to the core count —
     oversubscribing domains only adds scheduler churn. *)
  let jobs_used =
    match cfg.Config.pool with
    | Some pool -> Pool.jobs pool
    | None -> (
        match cfg.Config.jobs with
        | Some j -> Int.max 1 (Int.min j (Pool.default_jobs ()))
        | None -> Pool.default_jobs ())
  in
  let with_run_pool f =
    match cfg.Config.pool with
    | Some pool -> f pool
    | None -> Pool.with_pool ~obs ~jobs:jobs_used f
  in
  let cache = match cfg.Config.cache with Some c -> c | None -> create_cache () in
  let hits0 = Cache.hits cache and misses0 = Cache.misses cache in
  let tech = design.Design.tech in
  let n = Array.length design.Design.nets in
  let phases = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let v = Obs.time obs ("flow." ^ name) f in
    let dt_wall = Unix.gettimeofday () -. t0 in
    phases := { p_name = name; p_seconds = dt_wall } :: !phases;
    Log.info (fun m -> m "phase %-12s %8.1f ms" name (1e3 *. dt_wall));
    v
  in
  (* Characterize every driver size once, in the calling domain, so the
     worker domains only ever read the (mutex-guarded) memo table. *)
  timed "characterize" (fun () ->
      List.iter (fun size -> ignore (cell_exn tech ~size)) design.Design.sizes);
  let results : net_result option array = Array.make n None in
  (* incremented from worker domains *)
  let spent = Atomic.make 0 in
  let nets_done = Atomic.make 0 in
  timed "solve" (fun () ->
      with_run_pool (fun pool ->
          Array.iteri
            (fun lvl ids ->
              Deadline.check_ambient ();
              let level_t0 = Obs.start obs in
              (* Input slew and edge for this level are fixed by the
                 previous level (or the spec), so prepare them serially. *)
              let jobs_for_level =
                Array.map
                  (fun id ->
                    let net = design.Design.nets.(id) in
                    let edge, input_slew =
                      match net.Design.fanin with
                      | None -> (Measure.Rising, Option.get net.Design.prim_slew)
                      | Some p ->
                          let pr = Option.get results.(p) in
                          ( Sta.other_edge pr.edge,
                            Sta.handoff_slew ~far_slew:pr.solve.far_slew )
                    in
                    (net, edge, input_slew))
                  ids
              in
              let solved =
                Pool.map pool (Array.length ids) (fun k ->
                    (* Observation point: a flow whose budget expired stops
                       before the next solve, even when every remaining net
                       would be a cheap cache hit. *)
                    Deadline.check_ambient ();
                    let net, edge, input_slew = jobs_for_level.(k) in
                    let net_t0 = Obs.start obs in
                    let c =
                      canonicalize ~digits:quantize_digits ~grid:slew_grid ~tech ~dt ?adaptive
                        net ~edge ~input_slew
                    in
                    let compute () =
                      let s = solve_net ~obs ?adaptive ~tech ~dt ~edge ~size:net.Design.size c in
                      Atomic.fetch_and_add spent s.iterations |> ignore;
                      s
                    in
                    let solve, hit =
                      if use_cache then Cache.find_or_add cache c.key compute
                      else (compute (), false)
                    in
                    if Obs.enabled obs then begin
                      Obs.finish obs
                        ~args:
                          [
                            ("net", net.Design.name);
                            ("level", string_of_int lvl);
                            ("cache", if hit then "hit" else "miss");
                            ("ceff_iterations", string_of_int solve.iterations);
                            ( "shape",
                              match solve.model.Driver_model.shape with
                              | Driver_model.Two_ramp _ -> "two-ramp"
                              | Driver_model.One_ramp _ -> "one-ramp" );
                          ]
                        "flow.net" net_t0;
                      Obs.incr obs "flow.nets";
                      Obs.incr obs (if hit then "flow.cache.hits" else "flow.cache.misses");
                      (* Per-net iterations regardless of cache outcome: sums
                         to [stats.iterations_total].  The separate *_run
                         counter tracks iterations actually executed. *)
                      Obs.add obs "flow.ceff_iterations" solve.iterations;
                      if not hit then Obs.add obs "flow.ceff_iterations_run" solve.iterations
                    end;
                    Log.debug (fun m ->
                        m "net %-16s level %d %s: delay %.1f ps slew %.1f ps (%d iters%s)"
                          net.Design.name lvl
                          (match edge with Measure.Rising -> "rise" | Measure.Falling -> "fall")
                          (Rlc_num.Units.in_ps solve.stage_delay)
                          (Rlc_num.Units.in_ps solve.far_slew)
                          solve.iterations
                          (if hit then ", cached" else ""));
                    { net; edge; input_slew = c.q_slew; solve; arrival = 0. })
              in
              Array.iteri (fun k r -> results.(ids.(k)) <- Some r) solved;
              Obs.finish obs
                ~args:[ ("level", string_of_int lvl); ("nets", string_of_int (Array.length ids)) ]
                "flow.level" level_t0;
              let done_now = Atomic.fetch_and_add nets_done (Array.length ids) + Array.length ids in
              match progress with
              | Some p -> Progress.report p done_now
              | None -> ())
            design.Design.levels));
  (* Arrivals accumulate along the fan-in chains; levels are already in
     dependency order, so one ordered pass suffices. *)
  let results =
    timed "arrivals" (fun () ->
        let out = Array.map Option.get results in
        Array.iter
          (fun ids ->
            Array.iter
              (fun id ->
                let r = out.(id) in
                let base =
                  match r.net.Design.fanin with
                  | None -> 0.
                  | Some p -> out.(p).arrival
                in
                out.(id) <- { r with arrival = base +. r.solve.stage_delay })
              ids)
          design.Design.levels;
        out)
  in
  let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 results in
  let stats =
    {
      n_nets = n;
      n_levels = Array.length design.Design.levels;
      n_inductive =
        count (fun r ->
            r.solve.model.Driver_model.screen.Rlc_ceff.Screen.significant);
      n_two_ramp =
        count (fun r ->
            match r.solve.model.Driver_model.shape with
            | Driver_model.Two_ramp _ -> true
            | Driver_model.One_ramp _ -> false);
      iterations_total =
        Array.fold_left (fun acc r -> acc + r.solve.iterations) 0 results;
      cache_hits = Cache.hits cache - hits0;
      cache_misses = Cache.misses cache - misses0;
      iterations_spent = Atomic.get spent;
      jobs_used;
      phases = List.rev !phases;
    }
  in
  Log.info (fun m ->
      m "flow: %d nets / %d levels, %d inductive, cache %d hits / %d misses, %d/%d iterations run"
        stats.n_nets stats.n_levels stats.n_inductive stats.cache_hits stats.cache_misses
        stats.iterations_spent stats.iterations_total);
  { design; results; stats }

(* The request deadline (when any) is installed ambiently for the whole
   run: the serial phases check it at level boundaries, worker domains
   inherit it through the pool's batch snapshot, and the replay engine
   polls it inside its step loops.  The trace id rides the same mechanism:
   installed here for the master domain, snapshotted into pool batches for
   the workers, stamped onto every span by [Obs.record_span]. *)
let run_cfg (cfg : Config.t) (design : Design.t) =
  let body () =
    match cfg.Config.deadline with
    | None -> run_cfg_inner cfg design
    | Some d -> Deadline.with_ambient d (fun () -> run_cfg_inner cfg design)
  in
  match cfg.Config.trace with
  | None -> body ()
  | Some _ as trace -> Obs.with_trace trace body

let run ?(obs = Obs.null) ?progress ?(dt = 0.5e-12) ?jobs ?(use_cache = true) ?cache
    ?(quantize_digits = 9) ?(slew_grid = 0.1e-12) design =
  run_cfg
    {
      Config.obs;
      progress;
      dt;
      adaptive = None;
      jobs;
      use_cache;
      cache;
      quantize_digits;
      slew_grid;
      pool = None;
      deadline = None;
      trace = None;
    }
    design

let critical_path result =
  let worst =
    Array.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some best -> if r.arrival > best.arrival then Some r else Some best)
      None result.results
  in
  match worst with
  | None -> []
  | Some last ->
      let rec walk acc r =
        match r.net.Design.fanin with
        | None -> r :: acc
        | Some p -> walk (r :: acc) result.results.(p)
      in
      walk [] last
