(** Re-export of {!Rlc_parallel.Pool}.

    The domain pool started life inside the flow; it now lives in
    [rlc_parallel] so lower layers (the {!Rlc_ceff.Experiments} sweep) can
    fan out over the same scheduler without depending on the flow.  This
    alias keeps [Rlc_flow.Pool] as the stable name flow users already
    import. *)

include module type of Rlc_parallel.Pool
