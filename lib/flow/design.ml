module Spef = Rlc_spef.Spef
module Tree = Rlc_moments.Tree
module Line = Rlc_tline.Line
module Inverter = Rlc_devices.Inverter

let src = Logs.Src.create "rlc.flow.design" ~doc:"full-design ingest"

module Log = (val Logs.src_log src : Logs.LOG)

type net = {
  id : int;
  name : string;
  size : float;
  root_pin : string;
  tree : Tree.t;
  pade : Rlc_moments.Pade.t;
  eq_line : Line.t;
  cl : float;
  fanin : int option;
  fanout : int list;
  level : int;
  prim_slew : float option;
}

type coupling = { net_a : int; net_b : int; cc : float }

type t = {
  design_name : string;
  tech : Rlc_devices.Tech.t;
  nets : net array;
  levels : int array array;
  sizes : float list;
  couplings : coupling array;
}

(* Total series R and L of a net, with parallel branches between the same
   node pair merged exactly as {!Spef.to_tree} merges them. *)
let branch_totals (dnet : Spef.dnet) =
  let key a b = if a <= b then (a, b) else (b, a) in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (b : Spef.branch) ->
      let k = key b.Spef.n1 b.Spef.n2 in
      let r, l = Option.value (Hashtbl.find_opt merged k) ~default:(0., 0.) in
      match b.Spef.kind with
      | Spef.Res ->
          let r' = if r = 0. then b.Spef.value else r *. b.Spef.value /. (r +. b.Spef.value) in
          Hashtbl.replace merged k (r', l)
      | Spef.Induc ->
          let l' = if l = 0. then b.Spef.value else l *. b.Spef.value /. (l +. b.Spef.value) in
          Hashtbl.replace merged k (r, l'))
    dnet.Spef.branches;
  Hashtbl.fold (fun _ (r, l) (tr, tl) -> (tr +. r, tl +. l)) merged (0., 0.)

exception Bad of string

let ingest ?(tech = Rlc_devices.Tech.c018) ~spef ~spec () =
  try
    (* Net universe: the spec's driver lines, sorted by name for stable ids. *)
    let names = List.sort compare (List.map fst spec.Spec.drivers) in
    let id_of = Hashtbl.create 16 in
    List.iteri (fun i n -> Hashtbl.replace id_of n i) names;
    let n = List.length names in
    let lookup what name =
      match Hashtbl.find_opt id_of name with
      | Some i -> i
      | None -> raise (Bad (Printf.sprintf "%s references net %s with no driver line" what name))
    in
    let dnets =
      Array.of_list
        (List.map
           (fun name ->
             match Spef.find_net spef name with
             | Some d -> d
             | None -> raise (Bad (Printf.sprintf "net %s is not in the SPEF file" name)))
           names)
    in
    List.iter
      (fun (d : Spef.dnet) ->
        if not (Hashtbl.mem id_of d.Spef.net_name) then
          Log.info (fun m -> m "SPEF net %s has no driver line; ignored" d.Spef.net_name))
      spef.Spef.nets;
    let size = Array.make n 0. in
    List.iter (fun (name, s) -> size.(lookup "driver" name) <- s) spec.Spec.drivers;
    (* Connectivity. *)
    let prim = Array.make n None and fanin = Array.make n None in
    let fanout = Array.make n [] and extra = Array.make n [] in
    List.iter
      (fun (name, slew) -> prim.(lookup "input" name) <- Some slew)
      spec.Spec.inputs;
    List.iter
      (fun (from_net, pin, to_net) ->
        let f = lookup "edge" from_net and t = lookup "edge" to_net in
        (match fanin.(t) with
        | Some _ -> raise (Bad (Printf.sprintf "net %s is driven by more than one edge" to_net))
        | None -> fanin.(t) <- Some f);
        fanout.(f) <- t :: fanout.(f);
        extra.(f) <- (pin, Inverter.input_cap (Inverter.make tech ~size:size.(t))) :: extra.(f))
      spec.Spec.edges;
    List.iter
      (fun (name, pin, farads) ->
        let i = lookup "load" name in
        extra.(i) <- (pin, farads) :: extra.(i))
      spec.Spec.loads;
    Array.iteri
      (fun i p ->
        match (p, fanin.(i)) with
        | None, None ->
            raise
              (Bad
                 (Printf.sprintf "net %s has no slew source (neither input nor edge)"
                    (List.nth names i)))
        | Some _, Some _ ->
            raise
              (Bad
                 (Printf.sprintf "net %s is both a primary input and edge-driven"
                    (List.nth names i)))
        | _ -> ())
      prim;
    (* Levelize along the single-fanin chains; a net still unlevelled after
       following its ancestry is on a combinational cycle. *)
    let level = Array.make n (-1) in
    let rec level_of i seen =
      if level.(i) >= 0 then level.(i)
      else if List.mem i seen then
        raise (Bad (Printf.sprintf "combinational cycle through net %s" (List.nth names i)))
      else begin
        let l = match fanin.(i) with None -> 0 | Some p -> 1 + level_of p (i :: seen) in
        level.(i) <- l;
        l
      end
    in
    for i = 0 to n - 1 do
      ignore (level_of i [])
    done;
    (* Per-net electrical view. *)
    let nets =
      Array.init n (fun i ->
          let dnet = dnets.(i) and name = List.nth names i in
          let root_pin =
            match Spef.driver_conn dnet with Ok c -> c.Spef.pin | Error e -> raise (Bad e)
          in
          let extra_caps = List.rev extra.(i) in
          let tree =
            match Spef.to_tree ~extra_caps dnet ~root:root_pin with
            | Ok t -> t
            | Error e -> raise (Bad e)
          in
          let cl = List.fold_left (fun acc (_, c) -> acc +. c) 0. extra_caps in
          let r_tot, l_tot = branch_totals dnet in
          let c_wire = Spef.net_total_cap dnet in
          if c_wire <= 0. then
            raise (Bad (Printf.sprintf "net %s has no grounded wire capacitance" name));
          (* Equivalent uniform line for Z0 / tf / the screen; both are
             length-independent given totals, so the nominal 1 mm only
             feeds pretty-printing.  Degenerate R or L totals (single-node
             or RC-only nets) are clamped to keep the line constructible —
             a vanishing L makes Z0 ~ 0, which correctly drives Eq. 1's
             breakpoint to 0 and the Eq. 9 screen to "RC-like". *)
          let eq_line =
            Line.of_totals ~r:(Float.max 1e-6 r_tot) ~l:(Float.max 1e-16 l_tot) ~c:c_wire
              ~length:1e-3
          in
          let pade = Rlc_moments.Pade.fit (Rlc_moments.Moments.driving_point ~order:5 tree) in
          {
            id = i;
            name;
            size = size.(i);
            root_pin;
            tree;
            pade;
            eq_line;
            cl;
            fanin = fanin.(i);
            fanout = List.sort compare fanout.(i);
            level = level.(i);
            prim_slew = prim.(i);
          })
    in
    let max_level = Array.fold_left (fun acc net -> Int.max acc net.level) 0 nets in
    let levels =
      Array.init (max_level + 1) (fun l ->
          Array.of_list
            (List.filter_map
               (fun net -> if net.level = l then Some net.id else None)
               (Array.to_list nets)))
    in
    let sizes =
      List.sort_uniq compare (Array.to_list (Array.map (fun net -> net.size) nets))
    in
    (* Coupling graph: resolve each cross-net cap's endpoints to the design
       nets owning those nodes.  Ownership comes from the grounded parasitics
       (conn pins, grounded-cap nodes, branch endpoints); a node claimed by
       two different nets is a modeling error.  Couplings touching a net the
       design does not time (driverless SPEF nets) are logged and skipped,
       matching how such nets are ignored above. *)
    let owner = Hashtbl.create 64 in
    let claim i node =
      match Hashtbl.find_opt owner node with
      | Some j when j <> i ->
          raise
            (Bad
               (Printf.sprintf "node %s appears in both net %s and net %s" node
                  (List.nth names j) (List.nth names i)))
      | _ -> Hashtbl.replace owner node i
    in
    Array.iteri
      (fun i (d : Spef.dnet) ->
        List.iter (fun (c : Spef.conn) -> claim i c.Spef.pin) d.Spef.conns;
        List.iter (fun (c : Spef.ground_cap) -> claim i c.Spef.node) d.Spef.caps;
        List.iter
          (fun (b : Spef.branch) ->
            claim i b.Spef.n1;
            claim i b.Spef.n2)
          d.Spef.branches)
      dnets;
    let pair_cc = Hashtbl.create 16 in
    List.iter
      (fun (d : Spef.dnet) ->
        List.iter
          (fun (x : Spef.coupling_cap) ->
            match (Hashtbl.find_opt owner x.Spef.x_node1, Hashtbl.find_opt owner x.Spef.x_node2) with
            | Some a, Some b when a = b ->
                raise
                  (Bad
                     (Printf.sprintf "coupling cap %s-%s joins net %s to itself" x.Spef.x_node1
                        x.Spef.x_node2 (List.nth names a)))
            | Some a, Some b ->
                let k = (Int.min a b, Int.max a b) in
                Hashtbl.replace pair_cc k
                  (Option.value (Hashtbl.find_opt pair_cc k) ~default:0. +. x.Spef.x_farads)
            | _ ->
                Log.info (fun m ->
                    m "coupling cap %s-%s touches a net outside the design; ignored"
                      x.Spef.x_node1 x.Spef.x_node2))
          d.Spef.x_caps)
      spef.Spef.nets;
    let couplings =
      Hashtbl.fold (fun (a, b) cc acc -> { net_a = a; net_b = b; cc } :: acc) pair_cc []
      |> List.sort (fun x y -> compare (x.net_a, x.net_b) (y.net_a, y.net_b))
      |> Array.of_list
    in
    Ok { design_name = spef.Spef.design; tech; nets; levels; sizes; couplings }
  with Bad msg -> Error msg

let n_nets t = Array.length t.nets

let pp fmt t =
  Format.fprintf fmt "design<%s: %d nets, %d levels, %d couplings, sizes %s>" t.design_name
    (Array.length t.nets) (Array.length t.levels) (Array.length t.couplings)
    (String.concat "," (List.map (Printf.sprintf "%gX") t.sizes))
