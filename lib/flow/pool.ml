include Rlc_parallel.Pool
