(* An ECO delta: edits to an already-loaded design, expressed against the
   source artifacts (SPEF net blocks, spec driver/input lines) rather than
   against ingested structures, so the edited design re-ingests exactly as
   if the user had edited the files and re-run cold — which is what makes
   the incremental report byte-identity provable instead of incidental. *)

module Spef = Rlc_spef.Spef
module Error = Rlc_errors.Error

let src = Logs.Src.create "rlc.flow.delta" ~doc:"incremental design deltas"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  nets : (string * string) list;
  drivers : (string * float) list;
  slews : (string * float) list;
}

type applied = { spef : Spef.t; spec : Spec.t; changed : string list }

let empty = { nets = []; drivers = []; slews = [] }

let is_empty t = t.nets = [] && t.drivers = [] && t.slews = []

let size t = List.length t.nets + List.length t.drivers + List.length t.slews

exception Bad of string

let check_distinct what entries =
  ignore
    (List.fold_left
       (fun seen (name, _) ->
         if List.mem name seen then
           raise (Bad (Printf.sprintf "delta lists %s %s twice" what name));
         name :: seen)
       [] entries)

(* The same unordered coupling node pair declared twice anywhere in the
   edited file is a modeling error, exactly as [Spef.parse_res] rejects it
   in a cold parse.  [Design.ingest] would silently sum duplicates, so the
   cross-block check must be redone here after block replacement. *)
let check_coupling_pairs (spef : Spef.t) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (net : Spef.dnet) ->
      List.iter
        (fun (x : Spef.coupling_cap) ->
          let pair =
            if x.Spef.x_node1 <= x.Spef.x_node2 then (x.Spef.x_node1, x.Spef.x_node2)
            else (x.Spef.x_node2, x.Spef.x_node1)
          in
          if Hashtbl.mem seen pair then
            raise
              (Bad
                 (Printf.sprintf "edited design declares coupling capacitance %s-%s twice"
                    x.Spef.x_node1 x.Spef.x_node2));
          Hashtbl.add seen pair ())
        net.Spef.x_caps)
    spef.Spef.nets

let apply ~spef ~spec t =
  try
    check_distinct "net" t.nets;
    check_distinct "driver" t.drivers;
    check_distinct "slew" t.slews;
    (* Replacement *D_NET blocks, re-parsed against the loaded file's units
       (no header directives allowed) and spliced in place, preserving the
       original net order. *)
    let replace_net nets (name, src) =
      match Spef.parse_dnet_res ~units:spef.Spef.units src with
      | Error e -> raise (Bad (Error.message e))
      | Ok dnet ->
          if dnet.Spef.net_name <> name then
            raise
              (Bad
                 (Printf.sprintf "delta block for net %s defines *D_NET %s" name
                    dnet.Spef.net_name));
          if not (List.exists (fun (n : Spef.dnet) -> n.Spef.net_name = name) nets) then
            raise (Bad (Printf.sprintf "delta edits net %s, which is not in the design" name));
          List.map (fun (n : Spef.dnet) -> if n.Spef.net_name = name then dnet else n) nets
    in
    let nets = List.fold_left replace_net spef.Spef.nets t.nets in
    let spef = { spef with Spef.nets } in
    check_coupling_pairs spef;
    (* Driver-size and primary-input-slew edits touch only the spec; both
       must name nets the design already times (the net universe — and with
       it every net id — is frozen at load). *)
    let drivers =
      List.fold_left
        (fun drivers (name, size) ->
          if not (List.mem_assoc name drivers) then
            raise (Bad (Printf.sprintf "delta resizes net %s, which has no driver line" name));
          if size <= 0. then
            raise (Bad (Printf.sprintf "delta driver size for net %s must be positive" name));
          List.map (fun (n, s) -> if n = name then (n, size) else (n, s)) drivers)
        spec.Spec.drivers t.drivers
    in
    let inputs =
      List.fold_left
        (fun inputs (name, slew) ->
          if not (List.mem_assoc name inputs) then
            raise
              (Bad (Printf.sprintf "delta sets the slew of net %s, which is not a primary input" name));
          if slew <= 0. then
            raise (Bad (Printf.sprintf "delta input slew for net %s must be positive" name));
          List.map (fun (n, s) -> if n = name then (n, slew) else (n, s)) inputs)
        spec.Spec.inputs t.slews
    in
    let spec = { spec with Spec.drivers; Spec.inputs } in
    (* Directly-changed nets.  A driver resize on X also changes the net
       driving X: the parent's tree carries X's gate input capacitance at
       the edge pin, so the parent's parasitics (and its solve) move too. *)
    let changed =
      List.map fst t.nets @ List.map fst t.slews
      @ List.concat_map
          (fun (name, _) ->
            name
            :: List.filter_map
                 (fun (from_net, _, to_net) -> if to_net = name then Some from_net else None)
                 spec.Spec.edges)
          t.drivers
      |> List.sort_uniq compare
    in
    Log.info (fun m ->
        m "delta: %d net block(s), %d driver(s), %d slew(s) -> %d directly changed net(s)"
          (List.length t.nets) (List.length t.drivers) (List.length t.slews)
          (List.length changed));
    Ok { spef; spec; changed }
  with Bad msg -> Result.Error (Error.Bad_request msg)
