type units = { t_scale : float; c_scale : float; r_scale : float; l_scale : float }

type direction = Input | Output | Bidir

type conn = { pin : string; dir : direction }

type branch_kind = Res | Induc

type branch = { b_id : int; kind : branch_kind; n1 : string; n2 : string; value : float }

type ground_cap = { c_id : int; node : string; farads : float }

type coupling_cap = { x_id : int; x_node1 : string; x_node2 : string; x_farads : float }

type dnet = {
  net_name : string;
  total_cap : float;
  conns : conn list;
  caps : ground_cap list;
  x_caps : coupling_cap list;
  branches : branch list;
}

type t = { design : string; units : units; nets : dnet list }

let default_units = { t_scale = 1e-12; c_scale = 1e-15; r_scale = 1.; l_scale = 1e-12 }

(* ------------------------------------------------------------- parsing *)

exception Err of int * string

let scale_of_suffix lineno = function
  | "S" -> 1.
  | "MS" -> 1e-3
  | "US" -> 1e-6
  | "NS" -> 1e-9
  | "PS" -> 1e-12
  | "F" -> 1.
  | "UF" -> 1e-6
  | "NF" -> 1e-9
  | "PF" -> 1e-12
  | "FF" -> 1e-15
  | "OHM" -> 1.
  | "KOHM" -> 1e3
  | "HENRY" -> 1.
  | "MH" -> 1e-3
  | "UH" -> 1e-6
  | "NH" -> 1e-9
  | "PH" -> 1e-12
  | u -> raise (Err (lineno, "unknown unit " ^ u))

let float_of lineno s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Err (lineno, "expected a number, got " ^ s))

let int_of lineno s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Err (lineno, "expected an integer id, got " ^ s))

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

type section = S_none | S_conn | S_cap | S_res | S_induc

(* One parser drives both entry points: [allow_header] distinguishes a
   full SPEF file (header directives legal, units default) from a bare
   [*D_NET] fragment re-parsed against the units of an already-loaded
   file (header directives are "unexpected token" errors there — a delta
   must not silently re-scale the design). *)
let run_parser ?file ~allow_header ~units:init_units src =
  let lines = String.split_on_char '\n' src in
  let design = ref "" in
  let units = ref init_units in
  let nets = ref [] in
  (* current net under construction *)
  let cur = ref None in
  let section = ref S_none in
  (* Coupling caps are keyed by their unordered node pair, globally: the same
     physical capacitor listed twice (in one section or under both nets it
     couples) is a modeling error, not a doubling. *)
  let x_seen = Hashtbl.create 16 in
  let finish_net lineno =
    match !cur with
    | None -> raise (Err (lineno, "*END outside a *D_NET"))
    | Some net ->
        if List.exists (fun n -> n.net_name = net.net_name) !nets then
          raise (Err (lineno, "duplicate *D_NET " ^ net.net_name));
        nets :=
          { net with conns = List.rev net.conns; caps = List.rev net.caps;
            x_caps = List.rev net.x_caps; branches = List.rev net.branches }
          :: !nets;
        cur := None;
        section := S_none
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '/' with
          | Some k when k + 1 < String.length line && line.[k + 1] = '/' -> String.sub line 0 k
          | _ -> line
        in
        let toks =
          String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
          |> List.filter (fun s -> s <> "")
        in
        match (toks, !cur) with
        | [], _ -> ()
        | ( "*SPEF" :: _, _ | "*VERSION" :: _, _ | "*DATE" :: _, _ | "*VENDOR" :: _, _
          | "*PROGRAM" :: _, _ | "*DIVIDER" :: _, _ | "*DELIMITER" :: _, _
          | "*BUS_DELIMITER" :: _, _ )
          when allow_header ->
            ()
        | [ "*DESIGN"; name ], _ when allow_header -> design := unquote name
        | [ "*T_UNIT"; mult; unit ], _ when allow_header ->
            units := { !units with t_scale = float_of lineno mult *. scale_of_suffix lineno unit }
        | [ "*C_UNIT"; mult; unit ], _ when allow_header ->
            units := { !units with c_scale = float_of lineno mult *. scale_of_suffix lineno unit }
        | [ "*R_UNIT"; mult; unit ], _ when allow_header ->
            units := { !units with r_scale = float_of lineno mult *. scale_of_suffix lineno unit }
        | [ "*L_UNIT"; mult; unit ], _ when allow_header ->
            units := { !units with l_scale = float_of lineno mult *. scale_of_suffix lineno unit }
        | [ "*D_NET"; name; tc ], None ->
            cur :=
              Some
                {
                  net_name = name;
                  total_cap = float_of lineno tc *. !units.c_scale;
                  conns = [];
                  caps = [];
                  x_caps = [];
                  branches = [];
                };
            section := S_none
        | "*D_NET" :: _, Some _ -> raise (Err (lineno, "nested *D_NET"))
        | [ "*CONN" ], Some _ -> section := S_conn
        | [ "*CAP" ], Some _ -> section := S_cap
        | [ "*RES" ], Some _ -> section := S_res
        | [ "*INDUC" ], Some _ -> section := S_induc
        | [ "*END" ], Some _ -> finish_net lineno
        | "*K" :: _, Some _ | "*C" :: "*K" :: _, Some _ ->
            raise (Err (lineno, "mutual inductance (*K) is not supported"))
        | (("*P" | "*I") :: pin :: dir :: _), Some net when !section = S_conn ->
            let dir =
              match dir with
              | "I" -> Input
              | "O" -> Output
              | "B" -> Bidir
              | d -> raise (Err (lineno, "unknown direction " ^ d))
            in
            cur := Some { net with conns = { pin; dir } :: net.conns }
        | [ id; node; value ], Some net when !section = S_cap ->
            cur :=
              Some
                {
                  net with
                  caps =
                    { c_id = int_of lineno id; node; farads = float_of lineno value *. !units.c_scale }
                    :: net.caps;
                }
        | [ id; n1; n2; value ], Some net when !section = S_cap ->
            (* Four-token *CAP entry: a coupling capacitor between two nodes
               (SPEF's cross-net "*C" construct in this subset). *)
            if n1 = n2 then
              raise (Err (lineno, "coupling capacitance with identical nodes " ^ n1));
            let pair = if n1 <= n2 then (n1, n2) else (n2, n1) in
            (match Hashtbl.find_opt x_seen pair with
            | Some first ->
                raise
                  (Err
                     ( lineno,
                       Printf.sprintf "duplicate coupling capacitance %s-%s (first at line %d)"
                         n1 n2 first ))
            | None -> Hashtbl.add x_seen pair lineno);
            cur :=
              Some
                {
                  net with
                  x_caps =
                    {
                      x_id = int_of lineno id;
                      x_node1 = n1;
                      x_node2 = n2;
                      x_farads = float_of lineno value *. !units.c_scale;
                    }
                    :: net.x_caps;
                }
        | [ id; n1; n2; value ], Some net when !section = S_res || !section = S_induc ->
            let kind, scale = if !section = S_res then (Res, !units.r_scale) else (Induc, !units.l_scale) in
            cur :=
              Some
                {
                  net with
                  branches =
                    { b_id = int_of lineno id; kind; n1; n2; value = float_of lineno value *. scale }
                    :: net.branches;
                }
        | tok :: _, _ -> raise (Err (lineno, "unexpected token " ^ tok)))
      lines;
    (match !cur with
    | Some net -> raise (Err (List.length lines, "unterminated *D_NET " ^ net.net_name))
    | None -> ());
    Ok { design = !design; units = !units; nets = List.rev !nets }
  with Err (lineno, msg) -> Error (Rlc_errors.Error.parse ?file ~line:lineno msg)

let parse_res ?file src = run_parser ?file ~allow_header:true ~units:default_units src

let parse_dnet_res ?file ~units src =
  match run_parser ?file ~allow_header:false ~units src with
  | Error _ as e -> e
  | Ok { nets = [ net ]; _ } -> Ok net
  | Ok { nets; _ } ->
      Error
        (Rlc_errors.Error.parse ?file ~line:1
           (Printf.sprintf "expected exactly one *D_NET block, got %d" (List.length nets)))

(* ------------------------------------------------------------ printing *)

let to_string t =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "*SPEF \"IEEE 1481-1998\"\n";
  p "*DESIGN \"%s\"\n" t.design;
  p "*T_UNIT %g PS\n" (t.units.t_scale /. 1e-12);
  p "*C_UNIT %g FF\n" (t.units.c_scale /. 1e-15);
  p "*R_UNIT %g OHM\n" t.units.r_scale;
  p "*L_UNIT %g PH\n\n" (t.units.l_scale /. 1e-12);
  List.iter
    (fun net ->
      p "*D_NET %s %.6g\n" net.net_name (net.total_cap /. t.units.c_scale);
      if net.conns <> [] then begin
        p "*CONN\n";
        List.iter
          (fun c ->
            p "*P %s %s\n" c.pin
              (match c.dir with Input -> "I" | Output -> "O" | Bidir -> "B"))
          net.conns
      end;
      if net.caps <> [] || net.x_caps <> [] then begin
        p "*CAP\n";
        List.iter (fun c -> p "%d %s %.6g\n" c.c_id c.node (c.farads /. t.units.c_scale)) net.caps;
        List.iter
          (fun x ->
            p "%d %s %s %.6g\n" x.x_id x.x_node1 x.x_node2 (x.x_farads /. t.units.c_scale))
          net.x_caps
      end;
      let res = List.filter (fun b -> b.kind = Res) net.branches in
      let ind = List.filter (fun b -> b.kind = Induc) net.branches in
      if res <> [] then begin
        p "*RES\n";
        List.iter (fun b -> p "%d %s %s %.6g\n" b.b_id b.n1 b.n2 (b.value /. t.units.r_scale)) res
      end;
      if ind <> [] then begin
        p "*INDUC\n";
        List.iter (fun b -> p "%d %s %s %.6g\n" b.b_id b.n1 b.n2 (b.value /. t.units.l_scale)) ind
      end;
      p "*END\n\n")
    t.nets;
  Buffer.contents buf

let find_net t name = List.find_opt (fun n -> n.net_name = name) t.nets

let net_total_cap net = List.fold_left (fun acc c -> acc +. c.farads) 0. net.caps

let driver_conn net =
  match List.filter (fun c -> c.dir = Output) net.conns with
  | [ c ] -> Ok c
  | [] -> Error (Printf.sprintf "net %s has no Output *CONN (no driver pin)" net.net_name)
  | _ :: _ ->
      Error (Printf.sprintf "net %s has multiple Output *CONN entries" net.net_name)

let load_conns net = List.filter (fun c -> c.dir <> Output) net.conns

(* ----------------------------------------------------------- to_tree *)

module SMap = Map.Make (String)

let to_tree ?(extra_caps = []) net ~root =
  (* Merge R and L between identical unordered node pairs. *)
  let key a b = if a <= b then (a, b) else (b, a) in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let k = key b.n1 b.n2 in
      let r, l = Option.value (Hashtbl.find_opt merged k) ~default:(0., 0.) in
      match b.kind with
      | Res ->
          let r' = if r = 0. then b.value else r *. b.value /. (r +. b.value) in
          Hashtbl.replace merged k (r', l)
      | Induc ->
          let l' = if l = 0. then b.value else l *. b.value /. (l +. b.value) in
          Hashtbl.replace merged k (r, l'))
    net.branches;
  (* Adjacency. *)
  let adj = Hashtbl.create 16 in
  let add_adj a b rl =
    Hashtbl.replace adj a ((b, rl) :: Option.value (Hashtbl.find_opt adj a) ~default:[])
  in
  Hashtbl.iter
    (fun (a, b) rl ->
      add_adj a b rl;
      add_adj b a rl)
    merged;
  let caps_at =
    List.fold_left
      (fun m (node, farads) ->
        SMap.update node (fun v -> Some (Option.value v ~default:0. +. farads)) m)
      SMap.empty
      (List.map (fun c -> (c.node, c.farads)) net.caps @ extra_caps)
  in
  let known_node n = Hashtbl.mem adj n || SMap.mem n caps_at in
  if not (known_node root) then Error (Printf.sprintf "root %s not found in net %s" root net.net_name)
  else begin
    let visited = Hashtbl.create 16 in
    let exception Cycle of string in
    let exception Bad_branch of string in
    let rec build parent node =
      Hashtbl.replace visited node ();
      let cap = Option.value (SMap.find_opt node caps_at) ~default:0. in
      let children =
        List.filter_map
          (fun (next, (r, l)) ->
            if Some next = parent then None
            else if Hashtbl.mem visited next then raise (Cycle next)
            else begin
              if r <= 0. then
                raise
                  (Bad_branch (Printf.sprintf "branch %s-%s has no resistance" node next));
              Some (r, l, build (Some node) next)
            end)
          (Option.value (Hashtbl.find_opt adj node) ~default:[])
      in
      Rlc_moments.Tree.make ~cap ~children ()
    in
    match build None root with
    | tree ->
        (* Anything carrying parasitics but unreachable is a modeling error. *)
        let disconnected =
          List.filter
            (fun node -> not (Hashtbl.mem visited node))
            (List.map (fun c -> c.node) net.caps @ List.map fst extra_caps)
        in
        if disconnected <> [] then
          Error
            (Printf.sprintf "net %s: node %s is not connected to %s" net.net_name
               (List.hd disconnected) root)
        else Ok tree
    | exception Cycle n ->
        Error (Printf.sprintf "net %s: resistive loop through %s (not a tree)" net.net_name n)
    | exception Bad_branch msg -> Error (Printf.sprintf "net %s: %s" net.net_name msg)
  end
