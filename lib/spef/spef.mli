(** SPEF-subset parser and printer for extracted RLC nets.

    The model's input in a production flow is an extracted netlist, not
    geometry; this module reads the detailed-parasitics subset needed for
    RLC timing — header units, [*D_NET] blocks with [*CONN], [*CAP]
    (grounded), [*RES] and the IEEE-1481 [*INDUC] (self-inductance) section —
    and converts a net into an {!Rlc_moments.Tree.t} rooted at its driver
    port.  Coupling capacitances and mutual inductances are out of scope and
    reported as errors rather than silently dropped. *)

type units = {
  t_scale : float;  (** seconds per time unit *)
  c_scale : float;  (** farads per cap unit *)
  r_scale : float;
  l_scale : float;  (** henries per inductance unit *)
}

type direction = Input | Output | Bidir

type conn = { pin : string; dir : direction }

type branch_kind = Res | Induc

type branch = { b_id : int; kind : branch_kind; n1 : string; n2 : string; value : float }
(** Value in SI units after scaling. *)

type ground_cap = { c_id : int; node : string; farads : float }

type dnet = {
  net_name : string;
  total_cap : float;  (** farads; as declared on the D_NET line *)
  conns : conn list;
  caps : ground_cap list;
  branches : branch list;
}

type t = { design : string; units : units; nets : dnet list }

val parse_res : ?file:string -> string -> (t, Rlc_errors.Error.t) result
(** Errors are {!Rlc_errors.Error.Parse} carrying the 1-based input line and
    the source [file] name when given.  Unsupported constructs (coupling
    caps with two internal nodes, [*K] mutual sections) produce errors. *)

val parse : string -> (t, string) result
[@@deprecated "use parse_res (typed errors with file/line context)"]
(** Legacy shim over {!parse_res}: same grammar, errors flattened to
    ["line %d: %s"] strings (no file context). *)

val to_string : t -> string
(** Canonical printer; [parse (to_string f)] reproduces the structure
    (round-trip property in tests).  Values are emitted in the file's
    declared units. *)

val find_net : t -> string -> dnet option

val driver_conn : dnet -> (conn, string) result
(** The unique [Output] connection of the net — its driving pin in a
    full-design flow.  Zero or multiple [Output] conns are errors. *)

val load_conns : dnet -> conn list
(** The [Input]/[Bidir] connections (receiver pins), in file order. *)

val to_tree : ?extra_caps:(string * float) list -> dnet -> root:string -> (Rlc_moments.Tree.t, string) result
(** Build the RLC tree seen from [root] (a node or pin name appearing in the
    net).  Requires the R/L branch graph to be a tree after merging R and L
    between identical node pairs into single branches; loops, disconnected
    pieces, or L-only branches are errors.  [extra_caps] adds lumped
    grounded capacitance (farads) at named nodes — how a design flow folds
    receiver gate loads into the net before computing moments; naming a node
    absent from the net is an error. *)

val net_total_cap : dnet -> float
(** Sum of the grounded caps (farads); tests compare it with [total_cap]. *)
