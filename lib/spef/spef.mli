(** SPEF-subset parser and printer for extracted RLC nets.

    The model's input in a production flow is an extracted netlist, not
    geometry; this module reads the detailed-parasitics subset needed for
    RLC timing — header units, [*D_NET] blocks with [*CONN], [*CAP]
    (grounded), [*RES] and the IEEE-1481 [*INDUC] (self-inductance) section —
    and converts a net into an {!Rlc_moments.Tree.t} rooted at its driver
    port.  Four-token [*CAP] entries — coupling capacitances between two
    nodes — are parsed into typed {!coupling_cap} records feeding the
    crosstalk analysis; mutual inductances ([*K]) remain out of scope and
    are reported as errors rather than silently dropped. *)

type units = {
  t_scale : float;  (** seconds per time unit *)
  c_scale : float;  (** farads per cap unit *)
  r_scale : float;
  l_scale : float;  (** henries per inductance unit *)
}

type direction = Input | Output | Bidir

type conn = { pin : string; dir : direction }

type branch_kind = Res | Induc

type branch = { b_id : int; kind : branch_kind; n1 : string; n2 : string; value : float }
(** Value in SI units after scaling. *)

type ground_cap = { c_id : int; node : string; farads : float }

type coupling_cap = { x_id : int; x_node1 : string; x_node2 : string; x_farads : float }
(** A cross-net coupling capacitor (farads after scaling) between two named
    nodes, typically belonging to different nets.  Listed under the [*CAP]
    section of whichever net declares it; each unordered node pair may appear
    at most once in a file. *)

type dnet = {
  net_name : string;
  total_cap : float;  (** farads; as declared on the D_NET line *)
  conns : conn list;
  caps : ground_cap list;
  x_caps : coupling_cap list;
  branches : branch list;
}

type t = { design : string; units : units; nets : dnet list }

val parse_res : ?file:string -> string -> (t, Rlc_errors.Error.t) result
(** Errors are {!Rlc_errors.Error.Parse} carrying the 1-based input line and
    the source [file] name when given.  Coupling capacitances (four-token
    [*CAP] entries) parse into {!coupling_cap}; a duplicate unordered node
    pair anywhere in the file, or a coupling cap with identical nodes, is an
    error.  Unsupported constructs ([*K] mutual sections) produce errors. *)

val parse_dnet_res : ?file:string -> units:units -> string -> (dnet, Rlc_errors.Error.t) result
(** Parse a source fragment holding exactly one [*D_NET ... *END] block
    against the [units] of an already-parsed file — the re-parse behind
    incremental (ECO) deltas.  Header directives ([*T_UNIT], [*DESIGN],
    ...) are rejected as unexpected tokens: a delta may not re-scale the
    design it edits.  Zero or several [*D_NET] blocks are errors. *)

val to_string : t -> string
(** Canonical printer; [parse (to_string f)] reproduces the structure
    (round-trip property in tests).  Values are emitted in the file's
    declared units. *)

val find_net : t -> string -> dnet option

val driver_conn : dnet -> (conn, string) result
(** The unique [Output] connection of the net — its driving pin in a
    full-design flow.  Zero or multiple [Output] conns are errors. *)

val load_conns : dnet -> conn list
(** The [Input]/[Bidir] connections (receiver pins), in file order. *)

val to_tree : ?extra_caps:(string * float) list -> dnet -> root:string -> (Rlc_moments.Tree.t, string) result
(** Build the RLC tree seen from [root] (a node or pin name appearing in the
    net).  Requires the R/L branch graph to be a tree after merging R and L
    between identical node pairs into single branches; loops, disconnected
    pieces, or L-only branches are errors.  [extra_caps] adds lumped
    grounded capacitance (farads) at named nodes — how a design flow folds
    receiver gate loads into the net before computing moments; naming a node
    absent from the net is an error.  Coupling caps are not folded into the
    tree — isolated-net timing stays byte-identical whether or not the file
    declares couplings; {!Rlc_xtalk} consumes them separately. *)

val net_total_cap : dnet -> float
(** Sum of the grounded caps (farads), excluding coupling caps; tests
    compare it with [total_cap]. *)
