type t = (float * float) array

let of_points pts =
  match pts with
  | [] -> invalid_arg "Pwl.of_points: empty"
  | _ ->
      let a = Array.of_list pts in
      for i = 0 to Array.length a - 2 do
        if fst a.(i + 1) <= fst a.(i) then
          invalid_arg "Pwl.of_points: times must be strictly increasing"
      done;
      a

let points t = Array.to_list t

let eval t x =
  let n = Array.length t in
  if x <= fst t.(0) then snd t.(0)
  else if x >= fst t.(n - 1) then snd t.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst t.(mid) <= x then lo := mid else hi := mid
    done;
    let t0, v0 = t.(!lo) and t1, v1 = t.(!hi) in
    v0 +. ((x -. t0) /. (t1 -. t0) *. (v1 -. v0))
  end

let shift_time dt t = Array.map (fun (x, v) -> (x +. dt, v)) t

let ramp ~t0 ~v0 ~v1 ~transition =
  if transition <= 0. then invalid_arg "Pwl.ramp: transition must be positive";
  of_points [ (t0, v0); (t0 +. transition, v1) ]

let two_ramp ~t0 ~vdd ~f ~tr1 ~tr2 =
  if f <= 0. || f > 1. then invalid_arg "Pwl.two_ramp: f must be in (0, 1]";
  if tr1 <= 0. then invalid_arg "Pwl.two_ramp: tr1 must be positive";
  if f >= 1. then ramp ~t0 ~v0:0. ~v1:vdd ~transition:tr1
  else begin
    if tr2 <= 0. then invalid_arg "Pwl.two_ramp: tr2 must be positive";
    let t_break = t0 +. (f *. tr1) in
    let t_end = t_break +. ((1. -. f) *. tr2) in
    of_points [ (t0, 0.); (t_break, f *. vdd); (t_end, vdd) ]
  end

let falling ~vdd t = Array.map (fun (x, v) -> (x, vdd -. v)) t

let end_time t = fst t.(Array.length t - 1)

let to_waveform ?(n = 256) ?t_end t =
  let t0 = fst t.(0) in
  let t1 = match t_end with Some te -> Float.max te (end_time t) | None -> end_time t in
  let t1 = if t1 > t0 then t1 else t0 +. 1e-15 in
  (* Uniform sampling plus exact breakpoints so kinks are preserved.  This
     sits in the Ceff replay path, so build the time axis with monomorphic
     float sorting over one array and dedupe in place — no polymorphic
     [compare] dispatch, no intermediate lists. *)
  let nb = Array.length t in
  let all = Array.make (n + nb) t1 in
  let span = t1 -. t0 and nf = float_of_int (n - 1) in
  for i = 0 to n - 1 do
    all.(i) <- t0 +. (span *. float_of_int i /. nf)
  done;
  let kept = ref n in
  for i = 0 to nb - 1 do
    let x = fst t.(i) in
    if x <= t1 then begin
      all.(!kept) <- x;
      incr kept
    end
  done;
  let m = !kept in
  let all = if m = Array.length all then all else Array.sub all 0 m in
  Array.sort Float.compare all;
  (* In-place dedupe of the sorted axis. *)
  let w = ref 1 in
  for r = 1 to m - 1 do
    if all.(r) <> all.(!w - 1) then begin
      all.(!w) <- all.(r);
      incr w
    end
  done;
  let ts = Array.sub all 0 !w in
  Waveform.create ~ts ~vs:(Array.map (eval t) ts)

let pp fmt t =
  Format.fprintf fmt "pwl[";
  Array.iteri
    (fun i (x, v) ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "(%a, %.3g V)" Rlc_num.Units.pp_time x v)
    t;
  Format.fprintf fmt "]"
