(* Per-request wall-clock deadlines: an absolute expiry instant checked
   explicitly (passed down APIs) or ambiently (domain-local storage set
   for the dynamic extent of a request).  Replaces the old
   ITIMER_REAL+SIGALRM budget, which was process-global and therefore
   incompatible with concurrent requests. *)

type t = { expires_at : float; budget : float }

exception Expired of float

let never = { expires_at = Float.infinity; budget = Float.infinity }
let now () = Unix.gettimeofday ()

let start budget =
  if budget <= 0. || not (Float.is_finite budget) then never
  else { expires_at = now () +. budget; budget }

let budget t = t.budget
let is_never t = t.expires_at = Float.infinity

let expired t =
  (* The [is_never] short-circuit keeps disabled deadlines clock-free. *)
  (not (is_never t)) && now () > t.expires_at

let remaining_s t =
  if is_never t then Float.infinity else Float.max 0. (t.expires_at -. now ())

let check t = if expired t then raise (Expired t.budget)

(* Ambient propagation: one slot per domain.  [with_ambient] saves and
   restores, so nesting (a request that itself publishes pool batches)
   and serial reuse of a worker domain both behave. *)
let key = Domain.DLS.new_key (fun () -> never)
let ambient () = Domain.DLS.get key

let with_ambient d f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key d;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let check_ambient () = check (Domain.DLS.get key)
