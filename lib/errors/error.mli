(** The library-wide typed error.

    Every user-reachable failure of the timing stack — malformed input
    files, protocol violations, per-request timeouts, and genuine internal
    faults — maps onto one constructor here, so embedders (the CLI, the
    {!Rlc_service} daemon, tests) can react to a stable machine-readable
    {!code} instead of pattern-matching exception strings.  Lower layers
    ({!Rlc_flow.Spec}, {!Rlc_spef.Spef}, {!Rlc_liberty.Characterize},
    {!Rlc_sta.Sta}) expose [_res] entry points returning
    [(_, Error.t) result]; {!Rlc_service.Error} re-exports this module as
    the service's public error surface. *)

type t =
  | Parse of { file : string option; line : int option; msg : string }
      (** Malformed input text (SPEF, spec, or protocol JSON).  [line] is
          1-based when known; [file] names the source when the caller
          supplied one. *)
  | Unsupported_version of string
      (** A protocol request whose [schema] tag is not one this build
          speaks; carries the offending tag. *)
  | Timeout of float
      (** The per-request wall-clock budget (seconds) was exhausted. *)
  | Internal of string
      (** A failure of the engine itself (non-convergence, incomplete
          waveform, ...) — a bug report, not a user error. *)
  | Bad_request of string
      (** A structurally valid request the engine cannot serve: unknown
          kind, missing field, inconsistent design, oversized payload. *)

val code : t -> string
(** Stable machine-readable code, one per constructor: ["parse_error"],
    ["unsupported_version"], ["timeout"], ["internal"], ["bad_request"].
    Protocol clients dispatch on this; it never changes within a schema
    version. *)

val message : t -> string
(** Human-readable message.  [Parse] formats as [file:line: msg] with the
    [file:] and [line:] prefixes present exactly when known. *)

val to_string : t -> string
(** [code ^ ": " ^ message]. *)

val pp : Format.formatter -> t -> unit

val parse : ?file:string -> ?line:int -> string -> t
(** Convenience constructor for [Parse]. *)

val of_exn : exn -> t
(** Classify a caught exception: [Invalid_argument] (caller-supplied data
    the engine rejected) becomes [Bad_request]; [Failure] and anything else
    become [Internal] (via [Printexc.to_string] for the latter).  Never
    call this on exceptions that must escape ([Out_of_memory], ...); catch
    specific ones first. *)
