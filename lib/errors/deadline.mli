(** Per-request wall-clock deadlines.

    The service daemon used to budget requests with a process-global
    [ITIMER_REAL]+[SIGALRM] pair — a mechanism that cannot coexist with
    concurrent requests (one timer, one signal, whole process).  A
    {!t} is instead an absolute expiry instant carried per request:
    cheap to test from any domain, impossible to clobber from another
    request, and safe to check at arbitrary observation points deep in
    the engine.

    Two propagation styles compose:

    - {e explicit}: pass the [t] down an API (e.g.
      [Rlc_flow.Flow.Config.deadline]);
    - {e ambient}: {!with_ambient} installs the [t] in domain-local
      storage for the dynamic extent of a callback, and long loops call
      the near-free {!check_ambient} every few hundred iterations.  The
      worker pool snapshots the publisher's ambient deadline into each
      batch, so fan-out inherits the request budget across domains.

    The clock is [Unix.gettimeofday], matching [Rlc_obs.Obs.now] — the
    repo deliberately has no extra monotonic-clock dependency.  A
    deadline that never expires ({!never}) reduces every check to one
    domain-local read and a float compare. *)

type t
(** An absolute expiry instant plus the budget that produced it. *)

exception Expired of float
(** Raised by {!check} / {!check_ambient}; carries the original budget
    in seconds so catchers can build the wire-stable
    [Error.Timeout budget]. *)

val never : t
(** The deadline that never expires.  {!budget} is [infinity]. *)

val start : float -> t
(** [start budget] expires [budget] seconds from now.  A budget that is
    zero, negative, or non-finite disables the deadline ([never]),
    matching the daemon's "timeout off" convention. *)

val budget : t -> float
(** The budget [start] was given (seconds); [infinity] for {!never}. *)

val is_never : t -> bool

val expired : t -> bool
(** Has the instant passed?  [false] for {!never} without reading the
    clock. *)

val remaining_s : t -> float
(** Seconds until expiry, clamped at [0.]; [infinity] for {!never}. *)

val check : t -> unit
(** Raise [Expired budget] if {!expired}. *)

val ambient : unit -> t
(** This domain's installed deadline ({!never} when none). *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient d f] runs [f] with [d] as this domain's ambient
    deadline, restoring the previous one on exit (exceptions
    included) — nesting and serial reuse of a domain both behave. *)

val check_ambient : unit -> unit
(** {!check} on the ambient deadline.  When none is installed this is
    one domain-local read and a compare — cheap enough for the engine's
    inner step loops (checked every few hundred steps). *)
