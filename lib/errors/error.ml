type t =
  | Parse of { file : string option; line : int option; msg : string }
  | Unsupported_version of string
  | Timeout of float
  | Internal of string
  | Bad_request of string

let code = function
  | Parse _ -> "parse_error"
  | Unsupported_version _ -> "unsupported_version"
  | Timeout _ -> "timeout"
  | Internal _ -> "internal"
  | Bad_request _ -> "bad_request"

let message = function
  | Parse { file; line; msg } ->
      let file = match file with Some f -> f ^ ":" | None -> "" in
      let line = match line with Some l -> string_of_int l ^ ":" | None -> "" in
      if file = "" && line = "" then msg else Printf.sprintf "%s%s %s" file line msg
  | Unsupported_version v -> Printf.sprintf "unsupported schema version %S" v
  | Timeout budget -> Printf.sprintf "request exceeded its %g s budget" budget
  | Internal msg -> msg
  | Bad_request msg -> msg

let to_string e = code e ^ ": " ^ message e
let pp fmt e = Format.pp_print_string fmt (to_string e)
let parse ?file ?line msg = Parse { file; line; msg }

let of_exn = function
  | Invalid_argument msg -> Bad_request msg
  | Failure msg -> Internal msg
  | e -> Internal (Printexc.to_string e)
