(** Coupled victim/aggressor cluster assembly and transient simulation.

    A cluster is the victim net plus the aggressors that survived the
    {!Noise} screen.  Each member net is reduced to its total-R/L/C
    equivalent uniform line (the same reduction {!Rlc_flow.Design} feeds the
    inductance screen) and discretized into an [n_segments] RLC ladder; the
    lumped victim-aggressor coupling capacitance is distributed evenly
    between corresponding segment nodes, exactly as
    {!Rlc_tline.Coupled_ladder} distributes it for two lines.  Nodes are
    allocated interleaved across members segment by segment so the nodal
    matrix stays banded.

    Driver representation follows {!Rlc_ceff.Reference.replay_pwl}: a
    switching member's near end is forced with its driver-model PWL (an
    ideal replacement for the fitted output waveform), while a quiet member
    is held at ground through its fitted on-resistance [rs].
    Aggressor-aggressor coupling inside a cluster is ignored — it is second
    order for the victim's waveform and keeps clusters pairwise-shaped. *)

type member = {
  line : Rlc_tline.Line.t;  (** total-R/L/C equivalent uniform line *)
  drive : Rlc_waveform.Pwl.t option;
      (** [Some pwl] forces the near end with the waveform; [None] holds the
          near end quiet through [rs] *)
  rs : float;  (** driver on-resistance, used when [drive = None], Ohm *)
  cl : float;  (** far-end lumped load, F *)
}

val default_segments : int
(** 40: enough for the flight-time accuracy the noise/delay measurements
    need while keeping a cluster transient cheap. *)

val simulate :
  ?obs:Rlc_obs.Obs.t ->
  ?n_segments:int ->
  dt:float ->
  victim:member ->
  aggressors:(member * float) list ->
  unit ->
  Rlc_waveform.Waveform.t
(** Build the coupled cluster — victim plus [(aggressor, cc_total)] pairs —
    run a fixed-step transient, and return the {e victim far-end} waveform
    on the caller's time axis (drives are internally shifted so the engine's
    DC point sees the quiescent state, then shifted back, as in
    [replay_pwl]).  The stop time covers every drive's end plus ten flight
    times of the slowest member.  Deterministic: a pure function of the
    arguments, independent of worker scheduling. *)
