(** Coupled-net crosstalk analysis over a completed flow run: screen every
    victim/aggressor pair with the {!Noise} closed form, simulate only the
    survivors as coupled {!Cluster}s, and report per-victim noise peaks and
    delay push-out versus the isolated timing.

    This is the paper's screen-then-simulate architecture applied to
    coupling instead of inductance: the cheap closed-form test dismisses
    most pairs with a number, and the expensive coupled transient runs only
    where that number says it matters.

    Determinism: the analysis is a pure function of the flow result (itself
    jobs-independent), the design's coupling graph, and the configuration.
    Screened-vs-simulated classification, every reported number, and the
    JSON fragment are byte-identical across worker counts; the pool only
    changes wall-clock time. *)

module Config : sig
  type t = {
    threshold : float;
        (** screen level as a fraction of VDD: a pair whose closed-form
            estimate stays below [threshold * vdd] is dismissed *)
    budget : float;
        (** noise budget as a fraction of VDD: a simulated victim peak at or
            above [budget * vdd] is a violation (reported like negative
            slack by the CLI) *)
    alignments : int;
        (** points of the symmetric aggressor-alignment grid swept for the
            worst delay push-out; 1 means aligned starts only.  Grids nest:
            the [2n-1]-point grid contains every point of the [n]-point
            grid, so the worst case is monotone in the grid size. *)
    n_segments : int;  (** ladder segments per cluster member *)
    dt : float;  (** fixed step of the cluster transients, s *)
    jobs : int option;  (** worker domains when no [pool] is borrowed *)
    pool : Rlc_parallel.Pool.t option;  (** borrowed resident pool, used as-is *)
    obs : Rlc_obs.Obs.t;
  }

  val default : t
  (** threshold 0.05, budget 0.25, 9 alignments, 40 segments, dt 0.5 ps,
      no pool, observability off. *)
end

type pair = {
  victim : int;  (** net id of the quiet side of this ordered pair *)
  aggressor : int;  (** net id of the switching side *)
  cc : float;  (** lumped coupling capacitance, F *)
  est : Noise.estimate;  (** the closed-form screen number *)
  screened : bool;  (** dismissed without simulation *)
}

type victim_result = {
  victim : int;
  pairs : pair list;  (** this victim's ordered pairs, aggressor id ascending *)
  noise_est : float;  (** worst closed-form estimate over the pairs, V *)
  simulated : bool;  (** at least one pair survived the screen *)
  noise_sim : float option;
      (** simulated victim far-end noise peak with every surviving
          aggressor switching together, V *)
  isolated_delay : float;  (** the flow's isolated stage delay, s *)
  coupled_delay : float option;
      (** worst far-end 50 % delay over the alignment sweep, with surviving
          aggressors switching opposite to the victim, s *)
  pushout : float option;  (** [coupled_delay - isolated_delay], s *)
  violation : bool;  (** [noise_sim >= budget * vdd] *)
}

type stats = {
  n_pairs : int;  (** ordered victim/aggressor pairs examined *)
  n_screened : int;  (** pairs dismissed by the closed form *)
  n_simulated : int;  (** pairs that reached a coupled simulation *)
  n_alignment_sims : int;  (** coupled transients run for the delay sweep *)
  n_violations : int;  (** victims whose simulated peak broke the budget *)
}

type result = {
  vdd : float;
  threshold : float;  (** fraction of VDD, as configured *)
  budget : float;
  alignments : int;
  victims : victim_result array;  (** nets with couplings, victim id ascending *)
  stats : stats;
}

val analyze : ?config:Config.t -> Rlc_flow.Flow.result -> result
(** Screen every ordered pair of the design's coupling graph, then simulate
    each victim that kept at least one aggressor: one cluster transient with
    the victim quiet for the noise peak, plus [alignments] transients with
    the victim switching and the aggressors opposing for the worst delay.
    Clusters are scheduled on the level-parallel domain pool ({!Config.t}
    [pool]/[jobs]); the flow's Ceff cache is not consulted or touched.

    Worst-casing conventions: aggressor drives are the isolated driver-model
    PWLs regardless of the logical edge the flow assigned (noise assumes all
    aggressors rise together against a low victim; delay assumes they all
    fall against the rising victim — standard sign-off pessimism).

    [obs] records ["xtalk.screen"] / ["xtalk.victim"] spans, counters
    ["xtalk.pairs_screened"], ["xtalk.pairs_simulated"],
    ["xtalk.alignment_sweeps"], and the per-victim governing noise (mV) as
    the ["xtalk.noise_mv"] histogram. *)

val json_fragment : Rlc_flow.Design.t -> result -> string
(** Render the result as a JSON object (net names resolved through the
    design), formatted to sit under the ["xtalk"] key of
    {!Rlc_flow.Report.json_string} at its indentation.  Deterministic and
    byte-identical across worker counts. *)

val summary : Rlc_flow.Design.t -> Format.formatter -> result -> unit
(** Human summary mirroring {!Rlc_flow.Report.summary}: screen rate, then
    one line per simulated victim with noise and push-out. *)
