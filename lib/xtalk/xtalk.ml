module Design = Rlc_flow.Design
module Flow = Rlc_flow.Flow
module Pool = Rlc_parallel.Pool
module Obs = Rlc_obs.Obs
module Line = Rlc_tline.Line
module Pwl = Rlc_waveform.Pwl
module Waveform = Rlc_waveform.Waveform
module Measure = Rlc_waveform.Measure
module Driver_model = Rlc_ceff.Driver_model

let src = Logs.Src.create "rlc.xtalk" ~doc:"coupled-net crosstalk analysis"

module Log = (val Logs.src_log src : Logs.LOG)

module Config = struct
  type t = {
    threshold : float;
    budget : float;
    alignments : int;
    n_segments : int;
    dt : float;
    jobs : int option;
    pool : Pool.t option;
    obs : Obs.t;
  }

  let default =
    {
      threshold = 0.05;
      budget = 0.25;
      alignments = 9;
      n_segments = Cluster.default_segments;
      dt = 0.5e-12;
      jobs = None;
      pool = None;
      obs = Obs.null;
    }
end

type pair = {
  victim : int;
  aggressor : int;
  cc : float;
  est : Noise.estimate;
  screened : bool;
}

type victim_result = {
  victim : int;
  pairs : pair list;
  noise_est : float;
  simulated : bool;
  noise_sim : float option;
  isolated_delay : float;
  coupled_delay : float option;
  pushout : float option;
  violation : bool;
}

type stats = {
  n_pairs : int;
  n_screened : int;
  n_simulated : int;
  n_alignment_sims : int;
  n_violations : int;
}

type result = {
  vdd : float;
  threshold : float;
  budget : float;
  alignments : int;
  victims : victim_result array;
  stats : stats;
}

(* The aggressor's output edge rate as a full-swing ramp time, extrapolated
   from the model waveform's 10-90 slew. *)
let full_swing_tr model = Driver_model.model_slew_10_90 model /. 0.8

(* Symmetric alignment grid: [n] points over [-span, span].  Grids nest —
   linspace with [2n-1] points contains every point of the [n]-point grid —
   which is what makes the worst case monotone in [n]. *)
let offsets ~span n =
  if n <= 1 then [| 0. |]
  else Array.init n (fun k -> -.span +. (2. *. span *. float_of_int k /. float_of_int (n - 1)))

let analyze ?(config = Config.default) (flow : Flow.result) =
  if config.Config.alignments < 1 then invalid_arg "Rlc_xtalk.analyze: alignments must be >= 1";
  if config.Config.threshold < 0. || config.Config.budget < 0. then
    invalid_arg "Rlc_xtalk.analyze: negative threshold or budget";
  let design = flow.Flow.design in
  let obs = config.Config.obs in
  let vdd = design.Design.tech.Rlc_devices.Tech.vdd in
  let threshold_v = config.Config.threshold *. vdd in
  let budget_v = config.Config.budget *. vdd in
  (* Ordered pairs grouped by victim: every coupling edge is examined twice,
     once per direction. *)
  let agg_of = Hashtbl.create 16 in
  Array.iter
    (fun (c : Design.coupling) ->
      let add v a =
        Hashtbl.replace agg_of v
          ((a, c.Design.cc) :: Option.value (Hashtbl.find_opt agg_of v) ~default:[])
      in
      add c.Design.net_a c.Design.net_b;
      add c.Design.net_b c.Design.net_a)
    design.Design.couplings;
  let victims = List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) agg_of []) in
  let solve_of id = (flow.Flow.results.(id)).Flow.solve in
  let model_of id = (solve_of id).Flow.model in
  (* ------------------------------------------------------------ screen *)
  let screened_victims =
    Obs.time obs "xtalk.screen" (fun () ->
        List.map
          (fun v ->
            let net = design.Design.nets.(v) in
            let line = net.Design.eq_line in
            let m = model_of v in
            let rv = m.Driver_model.rs +. (0.5 *. Line.total_r line) in
            let cv = Line.total_c line +. net.Design.cl in
            let damping = Line.damping_ratio line in
            let pairs =
              List.sort (fun (a, _) (b, _) -> compare a b)
                (Option.value (Hashtbl.find_opt agg_of v) ~default:[])
              |> List.map (fun (a, cc) ->
                     let est =
                       Noise.estimate ~vdd ~tr:(full_swing_tr (model_of a)) ~rv ~cv ~cc ~damping
                     in
                     let screened = est.Noise.v_peak < threshold_v in
                     Obs.incr obs
                       (if screened then "xtalk.pairs_screened" else "xtalk.pairs_simulated");
                     { victim = v; aggressor = a; cc; est; screened })
            in
            (v, pairs))
          victims)
  in
  (* ---------------------------------------------------------- simulate *)
  let jobs_used =
    match config.Config.pool with
    | Some pool -> Pool.jobs pool
    | None -> (
        match config.Config.jobs with
        | Some j -> Int.max 1 (Int.min j (Pool.default_jobs ()))
        | None -> Pool.default_jobs ())
  in
  let with_run_pool f =
    match config.Config.pool with
    | Some pool -> f pool
    | None -> Pool.with_pool ~obs ~jobs:jobs_used f
  in
  let member_of ?drive id =
    let net = design.Design.nets.(id) in
    {
      Cluster.line = net.Design.eq_line;
      drive;
      rs = (model_of id).Driver_model.rs;
      cl = net.Design.cl;
    }
  in
  let jobs = Array.of_list screened_victims in
  let sim_results =
    with_run_pool (fun pool ->
        Pool.map pool (Array.length jobs) (fun k ->
            let v, pairs = jobs.(k) in
            let survivors = List.filter (fun p -> not p.screened) pairs in
            if survivors = [] then None
            else begin
              let t0 = Obs.start obs in
              let vm = model_of v in
              let isolated = (solve_of v).Flow.stage_delay in
              (* Noise: quiet victim, every surviving aggressor rising on
                 its own model waveform, simultaneous starts (worst for a
                 same-polarity capacitive sum). *)
              let rising =
                List.map
                  (fun p ->
                    ( member_of ~drive:(model_of p.aggressor).Driver_model.pwl p.aggressor,
                      p.cc ))
                  survivors
              in
              let far =
                Cluster.simulate ~obs ~n_segments:config.Config.n_segments
                  ~dt:config.Config.dt ~victim:(member_of v) ~aggressors:rising ()
              in
              let noise = Waveform.v_max far in
              (* Delay: victim switches on its own model waveform, the
                 aggressors oppose it (Miller worst case); sweep their
                 common start over the alignment grid and keep the worst
                 far-end 50 % crossing. *)
              let span =
                List.fold_left
                  (fun acc p ->
                    Float.max acc (Driver_model.transition_end (model_of p.aggressor)))
                  ((solve_of v).Flow.stage_delay +. (solve_of v).Flow.far_slew)
                  survivors
              in
              let worst =
                Array.fold_left
                  (fun acc off ->
                    let falling =
                      List.map
                        (fun p ->
                          let m = model_of p.aggressor in
                          ( member_of
                              ~drive:
                                (Pwl.shift_time off
                                   (Pwl.falling ~vdd:m.Driver_model.vdd m.Driver_model.pwl))
                              p.aggressor,
                            p.cc ))
                        survivors
                    in
                    let far =
                      Cluster.simulate ~obs ~n_segments:config.Config.n_segments
                        ~dt:config.Config.dt
                        ~victim:(member_of ~drive:vm.Driver_model.pwl v)
                        ~aggressors:falling ()
                    in
                    Obs.incr obs "xtalk.alignment_sweeps";
                    let d = Measure.t_frac_exn far ~vdd ~edge:Measure.Rising ~frac:0.5 in
                    Float.max acc d)
                  Float.neg_infinity
                  (offsets ~span config.Config.alignments)
              in
              Obs.finish obs
                ~args:
                  [
                    ("victim", design.Design.nets.(v).Design.name);
                    ("aggressors", string_of_int (List.length survivors));
                  ]
                "xtalk.victim" t0;
              Log.debug (fun m ->
                  m "victim %s: noise %.1f mV, delay %.1f -> %.1f ps"
                    design.Design.nets.(v).Design.name (1e3 *. noise)
                    (Rlc_num.Units.in_ps isolated) (Rlc_num.Units.in_ps worst));
              Some (noise, worst)
            end))
  in
  (* ------------------------------------------------------------ report *)
  let victims_arr =
    Array.mapi
      (fun k (v, pairs) ->
        let noise_est = List.fold_left (fun acc p -> Float.max acc p.est.Noise.v_peak) 0. pairs in
        let isolated_delay = (solve_of v).Flow.stage_delay in
        match sim_results.(k) with
        | None ->
            Obs.observe obs "xtalk.noise_mv" (1e3 *. noise_est);
            {
              victim = v;
              pairs;
              noise_est;
              simulated = false;
              noise_sim = None;
              isolated_delay;
              coupled_delay = None;
              pushout = None;
              violation = false;
            }
        | Some (noise, coupled) ->
            Obs.observe obs "xtalk.noise_mv" (1e3 *. noise);
            {
              victim = v;
              pairs;
              noise_est;
              simulated = true;
              noise_sim = Some noise;
              isolated_delay;
              coupled_delay = Some coupled;
              pushout = Some (coupled -. isolated_delay);
              violation = noise >= budget_v;
            })
      jobs
  in
  let count f = Array.fold_left (fun acc v -> acc + f v) 0 victims_arr in
  let pair_count f =
    count (fun v -> List.length (List.filter f v.pairs))
  in
  let n_simulated_pairs = pair_count (fun p -> not p.screened) in
  let stats =
    {
      n_pairs = pair_count (fun _ -> true);
      n_screened = pair_count (fun p -> p.screened);
      n_simulated = n_simulated_pairs;
      n_alignment_sims =
        config.Config.alignments * count (fun v -> if v.simulated then 1 else 0);
      n_violations = count (fun v -> if v.violation then 1 else 0);
    }
  in
  Log.info (fun m ->
      m "xtalk: %d pairs, %d screened, %d simulated, %d violations" stats.n_pairs
        stats.n_screened stats.n_simulated stats.n_violations);
  {
    vdd;
    threshold = config.Config.threshold;
    budget = config.Config.budget;
    alignments = config.Config.alignments;
    victims = victims_arr;
    stats;
  }

(* ---------------------------------------------------------------- JSON *)

let num = Printf.sprintf "%.6g"
let num_ps x = num (Rlc_num.Units.in_ps x)
let num_mv x = num (1e3 *. x)
let num_ff x = num (Rlc_num.Units.in_ff x)

let json_fragment (design : Design.t) (r : result) =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let name id = Rlc_flow.Report.json_escape design.Design.nets.(id).Design.name in
  p "{\n";
  p "    \"threshold_mv\": %s,\n" (num_mv (r.threshold *. r.vdd));
  p "    \"budget_mv\": %s,\n" (num_mv (r.budget *. r.vdd));
  p "    \"alignments\": %d,\n" r.alignments;
  p "    \"pairs\": %d,\n" r.stats.n_pairs;
  p "    \"pairs_screened\": %d,\n" r.stats.n_screened;
  p "    \"pairs_simulated\": %d,\n" r.stats.n_simulated;
  p "    \"alignment_sims\": %d,\n" r.stats.n_alignment_sims;
  p "    \"violations\": %d,\n" r.stats.n_violations;
  p "    \"victims\": [\n";
  Array.iteri
    (fun i v ->
      p "      {\"net\":\"%s\",\"aggressors\":[" (name v.victim);
      List.iteri
        (fun j pr ->
          if j > 0 then p ",";
          p "{\"net\":\"%s\",\"cc_ff\":%s,\"est_mv\":%s,\"screened\":%b}" (name pr.aggressor)
            (num_ff pr.cc) (num_mv pr.est.Noise.v_peak) pr.screened)
        v.pairs;
      p "],";
      p "\"noise_est_mv\":%s," (num_mv v.noise_est);
      p "\"simulated\":%b," v.simulated;
      p "\"noise_mv\":%s,"
        (match v.noise_sim with Some n -> num_mv n | None -> "null");
      p "\"isolated_delay_ps\":%s," (num_ps v.isolated_delay);
      p "\"coupled_delay_ps\":%s,"
        (match v.coupled_delay with Some d -> num_ps d | None -> "null");
      p "\"pushout_ps\":%s," (match v.pushout with Some d -> num_ps d | None -> "null");
      p "\"violation\":%b}" v.violation;
      if i < Array.length r.victims - 1 then p ",";
      p "\n")
    r.victims;
  p "    ]\n";
  p "  }";
  Buffer.contents buf

(* -------------------------------------------------------------- summary *)

let summary (design : Design.t) fmt (r : result) =
  let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b in
  Format.fprintf fmt
    "crosstalk: %d pairs, %d screened (%.0f%%), %d simulated, %d violation%s@."
    r.stats.n_pairs r.stats.n_screened
    (pct r.stats.n_screened r.stats.n_pairs)
    r.stats.n_simulated r.stats.n_violations
    (if r.stats.n_violations = 1 then "" else "s");
  Format.fprintf fmt "  threshold %.0f mV, budget %.0f mV, %d alignment%s@."
    (1e3 *. r.threshold *. r.vdd) (1e3 *. r.budget *. r.vdd) r.alignments
    (if r.alignments = 1 then "" else "s");
  Array.iter
    (fun v ->
      if v.simulated then
        Format.fprintf fmt "  %s <- %s: noise %.1f mV (est %.1f mV)%s, delay %.1f -> %.1f ps (push-out %+.1f ps)@."
          design.Design.nets.(v.victim).Design.name
          (String.concat ","
             (List.filter_map
                (fun p ->
                  if p.screened then None
                  else Some design.Design.nets.(p.aggressor).Design.name)
                v.pairs))
          (1e3 *. Option.get v.noise_sim)
          (1e3 *. v.noise_est)
          (if v.violation then " VIOLATION" else "")
          (Rlc_num.Units.in_ps v.isolated_delay)
          (Rlc_num.Units.in_ps (Option.get v.coupled_delay))
          (Rlc_num.Units.in_ps (Option.get v.pushout)))
    r.victims
