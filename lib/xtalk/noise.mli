(** Closed-form crosstalk noise-peak estimate — the screening test of the
    coupled-net analysis, playing the role Eq. 9 plays for inductance.

    The victim is reduced to a one-pole hold: its driver holds the quiet net
    through [rv] (the fitted on-resistance plus half the wire resistance)
    against the grounded capacitance [cv], while the aggressor's output ramp
    of full-swing time [tr] injects charge through the lumped coupling cap
    [cc].  The resulting peak is

    {v v_rc = vdd * (rv * cc / tr) * (1 - exp (-tr / (rv * (cv + cc)))) v}

    whose limits are the two classical bounds: a fast aggressor
    ([tr -> 0]) recovers charge sharing [vdd * cc / (cv + cc)], a slow one
    the Devgan-style bound [vdd * rv * cc / tr].  When the victim line is
    underdamped (damping ratio [zeta < 1], the RLC regime this repo
    models), ringing can nearly double the capacitively coupled peak; the
    estimate multiplies by the first-overshoot factor
    [1 + exp (-pi zeta / sqrt (1 - zeta^2))], clamped to 2.

    Calibration (see [test/test_xtalk.ml]): on victim/aggressor pairs built
    from this repo's driver models and equivalent lines, the estimate stays
    within a factor of 3 of the transient peak of the coupled-ladder
    simulation and errs on the conservative side for RC-like victims — good
    enough to dismiss weakly coupled pairs, not a sign-off number. *)

type estimate = {
  v_peak : float;  (** screened peak, volts: [min vdd (rc_peak * amplification)] *)
  rc_peak : float;  (** the RC closed form before RLC amplification, volts *)
  amplification : float;  (** underdamped first-overshoot factor in [1, 2] *)
  rv : float;  (** victim holding resistance used, Ohm *)
  cv : float;  (** victim grounded capacitance used (wire + load), F *)
  cc : float;  (** coupling capacitance, F *)
  tr : float;  (** aggressor output full-swing ramp time, s *)
}

val estimate :
  vdd:float -> tr:float -> rv:float -> cv:float -> cc:float -> damping:float -> estimate
(** [damping] is the victim line's {!Rlc_tline.Line.damping_ratio}.  Raises
    [Invalid_argument] on non-positive [vdd], [tr] or [rv], or negative
    [cv]/[cc]. *)

val pp : Format.formatter -> estimate -> unit
