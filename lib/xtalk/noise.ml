type estimate = {
  v_peak : float;
  rc_peak : float;
  amplification : float;
  rv : float;
  cv : float;
  cc : float;
  tr : float;
}

let pi = 4. *. Float.atan 1.

let estimate ~vdd ~tr ~rv ~cv ~cc ~damping =
  if vdd <= 0. then invalid_arg "Rlc_xtalk.Noise.estimate: vdd must be positive";
  if tr <= 0. then invalid_arg "Rlc_xtalk.Noise.estimate: tr must be positive";
  if rv <= 0. then invalid_arg "Rlc_xtalk.Noise.estimate: rv must be positive";
  if cv < 0. || cc < 0. then invalid_arg "Rlc_xtalk.Noise.estimate: negative capacitance";
  let tau = rv *. (cv +. cc) in
  let rc_peak =
    if cc = 0. then 0.
    else vdd *. (rv *. cc /. tr) *. (1. -. Float.exp (-.tr /. tau))
  in
  let amplification =
    if damping >= 1. then 1.
    else
      Float.min 2.
        (1. +. Float.exp (-.pi *. damping /. Float.sqrt (1. -. (damping *. damping))))
  in
  let v_peak = Float.min vdd (rc_peak *. amplification) in
  { v_peak; rc_peak; amplification; rv; cv; cc; tr }

let pp fmt e =
  Format.fprintf fmt "noise<%.1f mV (rc %.1f mV x %.2f), rv %.1f cv %.1f fF cc %.1f fF tr %.1f ps>"
    (1e3 *. e.v_peak) (1e3 *. e.rc_peak) e.amplification e.rv
    (Rlc_num.Units.in_ff e.cv) (Rlc_num.Units.in_ff e.cc) (Rlc_num.Units.in_ps e.tr)
