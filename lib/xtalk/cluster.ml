module Netlist = Rlc_circuit.Netlist
module Engine = Rlc_circuit.Engine
module Line = Rlc_tline.Line
module Pwl = Rlc_waveform.Pwl
module Waveform = Rlc_waveform.Waveform

type member = {
  line : Line.t;
  drive : Pwl.t option;
  rs : float;
  cl : float;
}

let default_segments = 40

let simulate ?obs ?(n_segments = default_segments) ~dt ~victim ~aggressors () =
  if n_segments < 1 then invalid_arg "Rlc_xtalk.Cluster.simulate: need at least one segment";
  if dt <= 0. then invalid_arg "Rlc_xtalk.Cluster.simulate: dt must be positive";
  List.iter
    (fun (_, cc) ->
      if cc < 0. then invalid_arg "Rlc_xtalk.Cluster.simulate: negative coupling capacitance")
    aggressors;
  let members = Array.of_list (victim :: List.map fst aggressors) in
  (* Shift all drives by a common offset so the earliest one starts after
     t = 0 (the DC point must see the quiescent state); the recorded
     waveform is shifted back before returning. *)
  let start =
    Array.fold_left
      (fun acc m ->
        match m.drive with
        | None -> acc
        | Some p -> Float.min acc (fst (List.hd (Pwl.points p))))
      Float.infinity members
  in
  let shift = if Float.is_finite start then 10e-12 -. start else 0. in
  let members =
    Array.map (fun m -> { m with drive = Option.map (Pwl.shift_time shift) m.drive }) members
  in
  let t_stop =
    let drive_end =
      Array.fold_left
        (fun acc m -> match m.drive with None -> acc | Some p -> Float.max acc (Pwl.end_time p))
        20e-12 members
    in
    let settle =
      Array.fold_left
        (fun acc m -> Float.max acc (10. *. Line.time_of_flight m.line))
        1e-9 members
    in
    drive_end +. settle
  in
  let nl = Netlist.create () in
  let nears =
    Array.mapi
      (fun j m ->
        let nd = Netlist.node nl (Printf.sprintf "x%d_near" j) in
        (match m.drive with
        | Some p -> Netlist.force_pwl nl nd p
        | None ->
            Netlist.resistor nl ~name:(Printf.sprintf "Rs%d" j) nd Netlist.ground
              (Float.max 1e-3 m.rs));
        nd)
      members
  in
  let fn = float_of_int n_segments in
  let segs =
    Array.map
      (fun m ->
        (Line.total_r m.line /. fn, Line.total_l m.line /. fn, Line.total_c m.line /. fn))
      members
  in
  let dccs = Array.of_list (List.map (fun (_, cc) -> cc /. fn) aggressors) in
  let prev = ref nears in
  for s = 1 to n_segments do
    (* Interleave member nodes per segment so coupling caps connect nearby
       matrix rows (small bandwidth, like Coupled_ladder). *)
    let mids =
      Array.mapi (fun j _ -> Netlist.node nl (Printf.sprintf "x%d_m%d" j s)) members
    in
    let nexts =
      Array.mapi (fun j _ -> Netlist.node nl (Printf.sprintf "x%d_n%d" j s)) members
    in
    Array.iteri
      (fun j _ ->
        let dr, dl, dc = segs.(j) in
        Netlist.resistor nl ~name:(Printf.sprintf "R%d_%d" j s) !prev.(j) mids.(j) dr;
        Netlist.inductor nl ~name:(Printf.sprintf "L%d_%d" j s) mids.(j) nexts.(j) dl;
        Netlist.capacitor nl ~name:(Printf.sprintf "C%d_%d" j s) nexts.(j) Netlist.ground dc)
      members;
    Array.iteri
      (fun k dcc ->
        if dcc > 0. then
          Netlist.capacitor nl ~name:(Printf.sprintf "Cc%d_%d" k s) nexts.(0) nexts.(k + 1) dcc)
      dccs;
    prev := nexts
  done;
  let fars = !prev in
  Array.iteri
    (fun j m ->
      if m.cl > 0. then Netlist.capacitor nl ~name:(Printf.sprintf "CL%d" j) fars.(j) Netlist.ground m.cl)
    members;
  (* Aligned worst-case sweeps re-simulate the same coupled cluster with
     shifted aggressor sources: same topology, new source closures — the
     cheapest possible restamp for the compiled-handle cache. *)
  let r =
    Engine.Compiled.run ?obs ~record_nodes:[ fars.(0) ] ~dt ~t_stop
      (Engine.Compiled.cached ?obs nl)
  in
  Waveform.shift_time (-.shift) (Engine.voltage r fars.(0))
