(* The accept/dispatch loop around a Session.

   One request line in, one response line out, in order per connection.
   Requests are isolated: any failure — malformed JSON, a bad design, an
   exception out of the numeric layers, a blown time budget — produces a
   typed error response and the daemon keeps serving.

   The Unix-socket transport is concurrent: the listener multiplexes all
   connections through one [select] loop, decodes request lines, and
   admits them into a bounded queue; worker domains drain the queue, run
   the session work, and write each response back on its originating
   connection.  A connection has at most one request in flight at a time
   (its reads are paused until the response is written), which preserves
   the per-connection request/response ordering the protocol promises.
   When the queue is full, admission fails fast with the wire-stable
   [Timeout] error instead of queueing unbounded latency.

   Request budgets are per-request [Rlc_errors.Deadline] values — checked
   on queue exit (entries that expired while waiting are answered without
   burning a worker), installed ambiently around dispatch, threaded into
   [Flow.Config.deadline], and polled by the engine's step loops.  The
   old ITIMER_REAL+SIGALRM mechanism was process-global (one timer, one
   signal) and could not have coexisted with concurrent requests. *)

module Evaluate = Rlc_ceff.Evaluate
module Units = Rlc_num.Units
module Deadline = Rlc_errors.Deadline
module Obs = Rlc_obs.Obs

let src = Logs.Src.create "rlc.service" ~doc:"timing daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  session : Session.t;
  timeout_s : float;
  max_request_bytes : int;
  workers : int;
  queue_capacity : int;
  backlog : int;
  slow_ms : float option;
      (** requests whose execution wall time reaches this threshold are
          logged as single-line JSON on [slow_channel] *)
  slow_channel : out_channel;
  tick_period_s : float;
  stop : bool Atomic.t;
  wake : Unix.file_descr option Atomic.t;
      (** write end of the listener's self-pipe while [serve_unix] runs;
          [stop] and the worker domains poke it to interrupt [select] *)
  queue_depth : int Atomic.t;  (** admission-queue population, for stats *)
  window : Rlc_obs.Window.t;
      (** rolling telemetry window, fed by the serve loop's ticker *)
  trace_seq : int Atomic.t;
  trace_base : string;  (** per-process prefix of minted trace ids *)
  log_mutex : Mutex.t;  (** serializes slow-log lines across domains *)
  mutable next_tick : float;
      (* earliest wall time for the next window sample; only the serving
         loop (listener or pipe pump) advances it *)
}

let default_timeout_s = 60.
let default_workers = 1
let default_queue_capacity = 64
let default_tick_period_s = 1.

let create ?(timeout_s = default_timeout_s) ?(max_request_bytes = Protocol.default_max_bytes)
    ?(workers = default_workers) ?(queue_capacity = default_queue_capacity) ?backlog ?slow_ms
    ?(slow_channel = stderr) ?(tick_period_s = default_tick_period_s) ?window_capacity session =
  let queue_capacity = Int.max 1 queue_capacity in
  {
    session;
    timeout_s;
    max_request_bytes;
    workers = Int.max 1 workers;
    queue_capacity;
    backlog = Int.max 1 (Option.value backlog ~default:queue_capacity);
    slow_ms;
    slow_channel;
    tick_period_s = Float.max 0. tick_period_s;
    stop = Atomic.make false;
    wake = Atomic.make None;
    queue_depth = Atomic.make 0;
    window = Rlc_obs.Window.create ?capacity:window_capacity ();
    trace_seq = Atomic.make 0;
    (* Best-effort distinctness across daemon runs: the pid verbatim plus
       30 bits of a start-time hash, so merged logs from different runs
       collide only when both match.  Uniqueness within a run is exact,
       from the atomic counter. *)
    trace_base =
      (let pid = Unix.getpid () in
       Printf.sprintf "%x-%08x" pid (Hashtbl.hash (pid, Unix.gettimeofday ())));
    log_mutex = Mutex.create ();
    next_tick = 0.;
  }

let obs t = (Session.config t.session).Session.Config.obs

let window t = t.window

let mint_trace t =
  Printf.sprintf "%s-%06d" t.trace_base (Atomic.fetch_and_add t.trace_seq 1)

(* Record a cumulative window sample if the tick period has elapsed.  Only
   the serving loop calls this (listener in unix mode, the line pump in
   pipe mode), so [next_tick] needs no lock; the window itself is
   mutex-guarded against concurrent readers. *)
let tick t =
  let o = obs t in
  if Obs.enabled o then begin
    let now = Unix.gettimeofday () in
    if now >= t.next_tick then begin
      Rlc_obs.Window.record t.window ~at:now (Obs.snapshot_light o);
      t.next_tick <- now +. t.tick_period_s
    end
  end
let wake_byte = Bytes.make 1 '!'

let wake_listener t =
  match Atomic.get t.wake with
  | None -> ()
  | Some fd -> ( try ignore (Unix.write fd wake_byte 0 1) with Unix.Unix_error _ -> ())

let stop t =
  Atomic.set t.stop true;
  wake_listener t

let stopped t = Atomic.get t.stop

let install_signals t =
  (* Graceful drain: finish in-flight requests, then exit the loop; the
     wake byte kicks the listener out of its select. *)
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t))
   with Invalid_argument _ -> ());
  (* A client vanishing mid-response must be an EPIPE we can catch, not a
     process kill. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* ----------------------------------------------------------- dispatch *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve what = function
  | Protocol.Inline s -> Ok (s, None)
  | Protocol.File path -> (
      match read_file path with
      | content -> Ok (content, Some path)
      | exception Sys_error msg -> Error (Error.Bad_request (what ^ ": " ^ msg)))

let metrics_fields (m : Evaluate.metrics) =
  Json.Obj
    [
      ("delay_ps", Json.Float (Units.in_ps m.Evaluate.delay));
      ("slew_ps", Json.Float (Units.in_ps m.Evaluate.slew));
    ]

let screen_fields (v : Rlc_ceff.Screen.verdict) =
  [
    ("significant", Json.Bool v.Rlc_ceff.Screen.significant);
    ("cl_ok", Json.Bool v.Rlc_ceff.Screen.cl_ok);
    ("rl_ok", Json.Bool v.Rlc_ceff.Screen.rl_ok);
    ("rs_ok", Json.Bool v.Rlc_ceff.Screen.rs_ok);
    ("tr_ok", Json.Bool v.Rlc_ceff.Screen.tr_ok);
    ("cl_ratio", Json.Float v.Rlc_ceff.Screen.cl_ratio);
    ("rl_over_z0", Json.Float v.Rlc_ceff.Screen.rl_over_z0);
    ("rs_over_z0", Json.Float v.Rlc_ceff.Screen.rs_over_z0);
    ("tr1_over_tf", Json.Float v.Rlc_ceff.Screen.tr1_over_tf);
  ]

let shape_name (m : Rlc_ceff.Driver_model.t) =
  match m.Rlc_ceff.Driver_model.shape with
  | Rlc_ceff.Driver_model.One_ramp _ -> "one_ramp"
  | Rlc_ceff.Driver_model.Two_ramp _ -> "two_ramp"

let flow_fields (o : Session.flow_outcome) =
  let s = o.Session.result.Rlc_flow.Flow.stats in
  [
    ("report", Json.Str o.Session.report);
    ("nets", Json.Int s.Rlc_flow.Flow.n_nets);
    ("levels", Json.Int s.Rlc_flow.Flow.n_levels);
    ("inductive", Json.Int s.Rlc_flow.Flow.n_inductive);
    ("two_ramp", Json.Int s.Rlc_flow.Flow.n_two_ramp);
    ("cache_hits", Json.Int s.Rlc_flow.Flow.cache_hits);
    ("cache_misses", Json.Int s.Rlc_flow.Flow.cache_misses);
    ("iterations_total", Json.Int s.Rlc_flow.Flow.iterations_total);
    ("iterations_spent", Json.Int s.Rlc_flow.Flow.iterations_spent);
  ]
  @
  match o.Session.xtalk with
  | None -> []
  | Some x ->
      let st = x.Rlc_xtalk.Xtalk.stats in
      [
        ( "xtalk",
          Json.Obj
            [
              ("pairs", Json.Int st.Rlc_xtalk.Xtalk.n_pairs);
              ("screened", Json.Int st.Rlc_xtalk.Xtalk.n_screened);
              ("simulated", Json.Int st.Rlc_xtalk.Xtalk.n_simulated);
              ("alignment_sims", Json.Int st.Rlc_xtalk.Xtalk.n_alignment_sims);
              ("violations", Json.Int st.Rlc_xtalk.Xtalk.n_violations);
            ] );
      ]

let case_of t (c : Protocol.case_req) =
  Session.case t.session ?slew_ps:c.Protocol.c_slew_ps ?cl_ff:c.Protocol.c_cl_ff
    ~length_mm:c.Protocol.c_length_mm ~width_um:c.Protocol.c_width_um ~size:c.Protocol.c_size ()

(* A Session request from the wire fields; [deadline]/[trace] scope this
   call (design_load strips them before storing the request). *)
let request_of ~deadline ~trace ?xtalk (f : Protocol.flow_req) =
  {
    Session.Request.default with
    Session.Request.required = Option.map Units.ps f.Protocol.f_required_ps;
    use_cache = f.Protocol.f_use_cache;
    dt = Option.map Units.ps f.Protocol.f_dt_ps;
    xtalk;
    deadline = Some deadline;
    trace;
  }

let xtalk_of (x : Protocol.xtalk_req) =
  {
    Session.threshold =
      Option.value x.Protocol.x_threshold ~default:Session.default_xtalk.Session.threshold;
    budget = Option.value x.Protocol.x_budget ~default:Session.default_xtalk.Session.budget;
    alignments =
      Option.value x.Protocol.x_alignments ~default:Session.default_xtalk.Session.alignments;
  }

let resolve_sources (f : Protocol.flow_req) =
  let ( let* ) = Result.bind in
  let* spef, spef_name = resolve "spef_file" f.Protocol.f_spef in
  let* spec, spec_name =
    match f.Protocol.f_spec with
    | None -> Ok (None, None)
    | Some src ->
        let* content, name = resolve "spec_file" src in
        Ok (Some content, name)
  in
  Ok (spef, spef_name, spec, spec_name)

(* Shared by the "flow" and "xtalk" kinds — one code path, so an xtalk
   request's report embeds the fragment and everything else stays
   byte-identical to a plain flow. *)
let run_flow t ~deadline ~trace ?xtalk (f : Protocol.flow_req) =
  let ( let* ) = Result.bind in
  let* spef, spef_name, spec, spec_name = resolve_sources f in
  let* design =
    Session.ingest t.session ?spef_name ?spec ?spec_name ?size:f.Protocol.f_size
      ?slew:(Option.map Units.ps f.Protocol.f_slew_ps)
      ~spef ()
  in
  let* outcome = Session.flow t.session (request_of ~deadline ~trace ?xtalk f) design in
  Ok (flow_fields outcome)

(* "design_load": same resolution and knobs as "flow", but the timed design
   stays resident under the returned handle. *)
let run_design_load t ~deadline ~trace (f : Protocol.flow_req) xtalk =
  let ( let* ) = Result.bind in
  let* spef, spef_name, spec, spec_name = resolve_sources f in
  let req = request_of ~deadline ~trace ?xtalk:(Option.map xtalk_of xtalk) f in
  let* handle, outcome =
    Session.design_load t.session ?spef_name ?spec ?spec_name ?size:f.Protocol.f_size
      ?slew:(Option.map Units.ps f.Protocol.f_slew_ps)
      ~req ~spef ()
  in
  Ok (("handle", Json.Str handle) :: flow_fields outcome)

let run_flow_delta t ~deadline ~trace (d : Protocol.delta_req) =
  let ( let* ) = Result.bind in
  let delta =
    {
      Rlc_flow.Delta.nets = d.Protocol.d_nets;
      drivers = d.Protocol.d_drivers;
      slews = List.map (fun (net, ps) -> (net, Units.ps ps)) d.Protocol.d_slews_ps;
    }
  in
  let* outcome, stats = Session.flow_delta t.session ~deadline ?trace ~handle:d.Protocol.d_handle delta in
  Ok
    (flow_fields outcome
    @ [
        ("retimed_nets", Json.Int stats.Rlc_flow.Flow.retimed);
        ("reused_nets", Json.Int stats.Rlc_flow.Flow.reused);
      ])

let server_info t =
  {
    Telemetry.workers = t.workers;
    queue_capacity = t.queue_capacity;
    queue_depth = Atomic.get t.queue_depth;
  }

let dispatch t ~deadline ~trace (kind : Protocol.kind) :
    ((string * Json.t) list, Error.t) result * [ `Continue | `Stop ] =
  let ( let* ) = Result.bind in
  match kind with
  | Protocol.Ping -> (Ok [ ("pong", Json.Bool true) ], `Continue)
  | Protocol.Stats ->
      let s = Session.stats t.session in
      let d = Session.design_stats t.session in
      ( Ok
          [
            ("uptime_s", Json.Float s.Session.uptime_s);
            ("requests_served", Json.Int s.Session.requests_served);
            ("requests_failed", Json.Int s.Session.requests_failed);
            ( "cache",
              Json.Obj
                [
                  ("entries", Json.Int s.Session.cache_entries);
                  ("hits", Json.Int s.Session.cache_hits);
                  ("misses", Json.Int s.Session.cache_misses);
                  ("shards", Telemetry.shards_json (Session.shard_stats t.session));
                ] );
            ( "designs",
              Json.Obj
                [
                  ("handles", Json.Int d.Session.ds_handles);
                  ("capacity", Json.Int d.Session.ds_capacity);
                  ("nets", Json.Int d.Session.ds_nets);
                  ("evictions", Json.Int d.Session.ds_evictions);
                ] );
            ( "server",
              Json.Obj
                [
                  ("workers", Json.Int t.workers);
                  ("queue_capacity", Json.Int t.queue_capacity);
                  ("queue_depth", Json.Int (Atomic.get t.queue_depth));
                ] );
          ],
        `Continue )
  | Protocol.Metrics ->
      ( Ok
          (Telemetry.metrics_fields ~session:t.session ~server:(server_info t)
             ~window:t.window ()),
        `Continue )
  | Protocol.Health ->
      ( Ok
          (Telemetry.health_fields ~session:t.session ~server:(server_info t)
             ~window:t.window ()),
        `Continue )
  | Protocol.Shutdown -> (Ok [ ("stopping", Json.Bool true) ], `Stop)
  | Protocol.Flow f -> (run_flow t ~deadline ~trace f, `Continue)
  | Protocol.Xtalk (f, x) -> (run_flow t ~deadline ~trace ~xtalk:(xtalk_of x) f, `Continue)
  | Protocol.Design_load (f, x) -> (run_design_load t ~deadline ~trace f x, `Continue)
  | Protocol.Flow_delta d -> (run_flow_delta t ~deadline ~trace d, `Continue)
  | Protocol.Design_unload handle ->
      ( (let* () = Session.design_unload t.session handle in
         Ok [ ("unloaded", Json.Bool true) ]),
        `Continue )
  | Protocol.Sweep_case c ->
      ( (let* case = case_of t c in
         let* cmp = Session.sweep_case t.session ?dt:(Option.map Units.ps c.Protocol.c_dt_ps) case in
         Ok
           [
             ("reference", metrics_fields cmp.Evaluate.reference);
             ("auto", metrics_fields cmp.Evaluate.auto);
             ("two_ramp", metrics_fields cmp.Evaluate.two_ramp);
             ("one_ramp", metrics_fields cmp.Evaluate.one_ramp);
             ("auto_shape", Json.Str (shape_name cmp.Evaluate.auto_model));
             ("delay_err_pct", Json.Float (Evaluate.delay_err_pct cmp cmp.Evaluate.auto));
             ("slew_err_pct", Json.Float (Evaluate.slew_err_pct cmp cmp.Evaluate.auto));
           ]),
        `Continue )
  | Protocol.Screen c ->
      ( (let* case = case_of t c in
         let* model = Session.screen t.session case in
         Ok
           (screen_fields model.Rlc_ceff.Driver_model.screen
           @ [ ("shape", Json.Str (shape_name model)) ])),
        `Continue )

let budget_of t (req : Protocol.request) =
  match req.Protocol.timeout_ms with
  | Some ms -> float_of_int ms /. 1000.
  | None -> t.timeout_s

let kind_name = function
  | Protocol.Flow _ -> "flow"
  | Protocol.Xtalk _ -> "xtalk"
  | Protocol.Sweep_case _ -> "sweep_case"
  | Protocol.Screen _ -> "screen"
  | Protocol.Design_load _ -> "design_load"
  | Protocol.Flow_delta _ -> "flow_delta"
  | Protocol.Design_unload _ -> "design_unload"
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Health -> "health"
  | Protocol.Shutdown -> "shutdown"

(* Serve one decoded request under its deadline, with the minted trace id
   installed ambiently so every span recorded below carries it.
   Per-request isolation: whatever escapes — an expired deadline from any
   depth of the stack, an unexpected exception — becomes a typed error
   response and the caller keeps serving.  Never raises. *)
let respond t ~deadline ~trace (req : Protocol.request) =
  let id = req.Protocol.id in
  let outcome, control =
    match
      Obs.with_trace (Some trace) (fun () ->
          Deadline.with_ambient deadline (fun () ->
              dispatch t ~deadline ~trace:(Some trace) req.Protocol.kind))
    with
    | v -> v
    | exception Deadline.Expired budget -> (Error (Error.Timeout budget), `Continue)
    | exception Fun.Finally_raised (Deadline.Expired budget) ->
        (Error (Error.Timeout budget), `Continue)
    | exception e -> (Error (Error.of_exn e), `Continue)
  in
  match outcome with
  | Ok fields ->
      Session.note t.session ~ok:true;
      (Protocol.ok_response ~schema:req.Protocol.schema ?id fields, control, Ok fields)
  | Error e ->
      Session.note t.session ~ok:false;
      (match e with Error.Timeout _ -> Obs.incr (obs t) "service.timeouts" | _ -> ());
      Log.info (fun m -> m "request failed: %s" (Error.to_string e));
      (Protocol.error_response ~schema:req.Protocol.schema ?id e, `Continue, Error e)

let slow_log t ~trace ~kind ~queue_wait_s ~wall_s ~worker outcome =
  match t.slow_ms with
  | Some threshold when wall_s *. 1e3 >= threshold ->
      let ok, cache_hits =
        match outcome with
        | Error _ -> (false, None)
        | Ok fields -> (
            ( true,
              match List.assoc_opt "cache_hits" fields with
              | Some (Json.Int n) -> Some n
              | _ -> None ))
      in
      let line =
        Json.to_string
          (Json.Obj
             ([
                ("slow_request", Json.Bool true);
                ("trace", Json.Str trace);
                ("kind", Json.Str kind);
                ("queue_wait_ms", Json.Float (queue_wait_s *. 1e3));
                ("wall_ms", Json.Float (wall_s *. 1e3));
                ("ok", Json.Bool ok);
                ("worker", Json.Int worker);
              ]
             @
             match cache_hits with
             | Some n -> [ ("cache_hits", Json.Int n) ]
             | None -> []))
      in
      Mutex.lock t.log_mutex;
      output_string t.slow_channel line;
      output_char t.slow_channel '\n';
      flush t.slow_channel;
      Mutex.unlock t.log_mutex
  | _ -> ()

(* Full per-request bookkeeping around [respond]: wall-time measurement,
   the request counters and latency histogram the telemetry window is
   built from, the ["service.request"] span, and the slow-request log.
   [worker] is the executor domain index, or [-1] for requests served on
   the serving loop itself (pipe mode and inline [metrics]/[health]). *)
let serve_request t ~deadline ~trace ~queue_wait_s ~worker (req : Protocol.request) =
  let o = obs t in
  let kind = kind_name req.Protocol.kind in
  let t0 = Unix.gettimeofday () in
  let response, control, outcome = respond t ~deadline ~trace req in
  let wall_s = Unix.gettimeofday () -. t0 in
  if Obs.enabled o then begin
    (* Telemetry scrapes stay out of the window's rate counter and latency
       histogram: with a 1 Hz scraper and sparse real traffic, the ~µs
       metrics/health replies would otherwise dominate req/s and p50/p95.
       They still count in the per-kind counters and in the exact session
       totals ([Session.note] in [respond]) that CI reconciles. *)
    (match req.Protocol.kind with
    | Protocol.Metrics | Protocol.Health -> ()
    | _ ->
        Obs.incr o "service.requests";
        Obs.observe o "service.request_s" wall_s);
    Obs.incr o ("service.requests." ^ kind);
    Obs.finish o
      ~args:[ ("worker", string_of_int worker); ("kind", kind); ("trace", trace) ]
      "service.request" t0
  end;
  slow_log t ~trace ~kind ~queue_wait_s ~wall_s ~worker outcome;
  (response, control)

let handle_line t line =
  tick t;
  match Protocol.parse_request ~max_bytes:t.max_request_bytes line with
  | Error e ->
      Session.note t.session ~ok:false;
      Log.info (fun m -> m "request failed: %s" (Error.to_string e));
      (Protocol.error_response e, `Continue)
  | Ok req ->
      serve_request t
        ~deadline:(Deadline.start (budget_of t req))
        ~trace:(mint_trace t) ~queue_wait_s:0. ~worker:(-1) req

(* ---------------------------------------------------------- pipe mode *)

let serve_channels t ic oc =
  install_signals t;
  let rec loop () =
    if stopped t then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line -> (
          let response, control = handle_line t line in
          output_string oc response;
          output_char oc '\n';
          flush oc;
          match control with
          | `Stop -> Atomic.set t.stop true
          | `Continue -> loop ())
  in
  loop ()

(* ------------------------------------------- bounded admission queue *)

module Bqueue = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create capacity =
    {
      items = Queue.create ();
      capacity;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }

  let locked q f =
    Mutex.lock q.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock q.mutex) f

  let try_push q x =
    locked q (fun () ->
        if q.closed then `Closed
        else if Queue.length q.items >= q.capacity then `Full
        else begin
          Queue.push x q.items;
          Condition.signal q.nonempty;
          `Ok
        end)

  (* Blocks until an item is available; after [close], drains whatever is
     still queued and then returns [None] forever. *)
  let pop q =
    locked q (fun () ->
        let rec go () =
          if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
          else if q.closed then None
          else begin
            Condition.wait q.nonempty q.mutex;
            go ()
          end
        in
        go ())

  let close q =
    locked q (fun () ->
        q.closed <- true;
        Condition.broadcast q.nonempty)
end

(* --------------------------------------------- concurrent unix mode *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* received bytes not yet consumed as lines *)
  mutable in_flight : bool;  (* one outstanding request per connection *)
  mutable alive : bool;
  mutable discarding : bool;  (* skipping an oversized unterminated line *)
}

type job = {
  j_conn : conn;
  j_req : Protocol.request;
  j_deadline : Deadline.t;
  j_budget : float;
  j_enqueued : float;
  j_trace : string;  (* minted at admission, before any queueing *)
}

type runtime = {
  queue : job Bqueue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  done_mutex : Mutex.t;
  mutable done_conns : conn list;
      (* responded by a worker; the listener re-arms their reads *)
}

(* Blocking write of one response line, restarted on EINTR; a vanished
   client (EPIPE with SIGPIPE ignored) just marks the connection dead. *)
let write_response conn s =
  if conn.alive then begin
    let b = Bytes.of_string (s ^ "\n") in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write conn.fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
            conn.alive <- false
    in
    go 0
  end

let take_line conn =
  let s = Buffer.contents conn.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)

(* Listener-side line pump for one connection.  Runs only while the
   connection has no request in flight, so worker writes never interleave
   with the inline replies issued here (parse errors and queue-full
   rejections are answered by the listener without a queue slot). *)
let rec advance t rt conn =
  if conn.alive && not conn.in_flight then
    if conn.discarding then begin
      let s = Buffer.contents conn.buf in
      match String.index_opt s '\n' with
      | None -> Buffer.clear conn.buf
      | Some i ->
          conn.discarding <- false;
          Buffer.clear conn.buf;
          Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
          advance t rt conn
    end
    else if
      Buffer.length conn.buf > t.max_request_bytes
      && not (String.contains (Buffer.contents conn.buf) '\n')
    then begin
      (* An unterminated line already over the limit: reject it now, then
         skip the rest of it as it streams in — the connection stays
         usable and the server never buffers an unbounded line. *)
      Session.note t.session ~ok:false;
      write_response conn
        (Protocol.error_response
           (Error.Bad_request
              (Printf.sprintf "request is over %d bytes; the limit is %d" (Buffer.length conn.buf)
                 t.max_request_bytes)));
      conn.discarding <- true;
      Buffer.clear conn.buf
    end
    else
      match take_line conn with
      | None -> ()
      | Some line when String.trim line = "" -> advance t rt conn
      | Some line -> (
          match Protocol.parse_request ~max_bytes:t.max_request_bytes line with
          | Error e ->
              Session.note t.session ~ok:false;
              Log.info (fun m -> m "request failed: %s" (Error.to_string e));
              write_response conn (Protocol.error_response e);
              advance t rt conn
          | Ok ({ Protocol.kind = Protocol.Metrics | Protocol.Health; _ } as req) ->
              (* Telemetry must answer even when the admission queue is
                 saturated: the listener serves these two kinds inline —
                 they read atomics and the window, never the engine — so a
                 scraper or load balancer keeps getting answers exactly
                 when the queue-full signal matters most. *)
              tick t;
              let response, _ =
                serve_request t ~deadline:Deadline.never ~trace:(mint_trace t)
                  ~queue_wait_s:0. ~worker:(-1) req
              in
              write_response conn response;
              advance t rt conn
          | Ok req -> (
              let budget = budget_of t req in
              let job =
                {
                  j_conn = conn;
                  j_req = req;
                  j_deadline = Deadline.start budget;
                  j_budget = budget;
                  j_enqueued = Unix.gettimeofday ();
                  j_trace = mint_trace t;
                }
              in
              match Bqueue.try_push rt.queue job with
              | `Ok ->
                  Atomic.incr t.queue_depth;
                  conn.in_flight <- true;
                  let o = obs t in
                  if Obs.enabled o then begin
                    Obs.incr o "service.admitted";
                    Obs.observe o "service.queue_depth" (float_of_int (Atomic.get t.queue_depth))
                  end
              | `Full | `Closed ->
                  (* Admission control: overload is a fast, typed rejection
                     on the existing wire code, not unbounded latency. *)
                  Session.note t.session ~ok:false;
                  Obs.incr (obs t) "service.rejected_queue_full";
                  write_response conn
                    (Protocol.error_response ~schema:req.Protocol.schema ?id:req.Protocol.id
                       (Error.Timeout budget));
                  advance t rt conn))

let worker_loop t rt wid =
  let o = obs t in
  let rec loop () =
    match Bqueue.pop rt.queue with
    | None -> ()
    | Some job ->
        Atomic.decr t.queue_depth;
        let queue_wait_s = Float.max 0. (Unix.gettimeofday () -. job.j_enqueued) in
        if Obs.enabled o then Obs.observe o "service.queue_wait_s" queue_wait_s;
        let response, control =
          if Deadline.expired job.j_deadline then begin
            (* Expired while queued: answer without burning a worker. *)
            Session.note t.session ~ok:false;
            Obs.incr o "service.rejected_expired";
            ( Protocol.error_response ~schema:job.j_req.Protocol.schema ?id:job.j_req.Protocol.id
                (Error.Timeout job.j_budget),
              `Continue )
          end
          else if stopped t then begin
            (* Shutdown drain: queued-but-unstarted requests get a typed
               timeout instead of a silently closed connection. *)
            Session.note t.session ~ok:false;
            ( Protocol.error_response ~schema:job.j_req.Protocol.schema ?id:job.j_req.Protocol.id
                (Error.Timeout job.j_budget),
              `Continue )
          end
          else
            serve_request t ~deadline:job.j_deadline ~trace:job.j_trace ~queue_wait_s
              ~worker:wid job.j_req
        in
        write_response job.j_conn response;
        (match control with `Stop -> stop t | `Continue -> ());
        Mutex.lock rt.done_mutex;
        rt.done_conns <- job.j_conn :: rt.done_conns;
        Mutex.unlock rt.done_mutex;
        wake_listener t;
        loop ()
  in
  loop ()

let serve_unix t ~path =
  install_signals t;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let wake_r, wake_w = Unix.pipe () in
  (* The SIGTERM handler writes the wake byte; it must never block. *)
  Unix.set_nonblock wake_w;
  Atomic.set t.wake (Some wake_w);
  let rt =
    {
      queue = Bqueue.create t.queue_capacity;
      wake_r;
      wake_w;
      done_mutex = Mutex.create ();
      done_conns = [];
    }
  in
  let conns : conn list ref = ref [] in
  let workers = List.init t.workers (fun wid -> Domain.spawn (fun () -> worker_loop t rt wid)) in
  let chunk = Bytes.create 65536 in
  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.stop true;
      (* Workers drain the queue (typed-timeout replies for anything still
         waiting) and exit; only then are the descriptors torn down, so
         every admitted request gets its response written first. *)
      Bqueue.close rt.queue;
      List.iter Domain.join workers;
      Atomic.set t.wake None;
      List.iter (fun c -> close_quiet c.fd) !conns;
      close_quiet wake_r;
      close_quiet wake_w;
      close_quiet sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock t.backlog;
      Log.info (fun m ->
          m "listening on %s (workers %d, queue %d, backlog %d)" path t.workers t.queue_capacity
            t.backlog);
      (* Baseline window sample at serve start, so the first real tick
         already yields a delta. *)
      tick t;
      while not (stopped t) do
        tick t;
        (* Connections whose response was just written resume reading; any
           buffered next request is admitted right away. *)
        Mutex.lock rt.done_mutex;
        let finished = rt.done_conns in
        rt.done_conns <- [];
        Mutex.unlock rt.done_mutex;
        List.iter
          (fun c ->
            c.in_flight <- false;
            advance t rt c)
          finished;
        (* A connection that died while in flight is still owned by its
           worker; it is swept here on the turn after its done handoff. *)
        let dead, live = List.partition (fun c -> (not c.alive) && not c.in_flight) !conns in
        List.iter (fun c -> close_quiet c.fd) dead;
        conns := live;
        let readable = List.filter (fun c -> c.alive && not c.in_flight) live in
        let fds = sock :: rt.wake_r :: List.map (fun c -> c.fd) readable in
        (* With telemetry on, wake for the next window sample even when no
           traffic arrives; an idle daemon still advances its window. *)
        let timeout =
          if Obs.enabled (obs t) then
            Float.max 0.01 (t.next_tick -. Unix.gettimeofday ())
          else -1.
        in
        match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
            if List.memq rt.wake_r ready then begin
              try ignore (Unix.read rt.wake_r chunk 0 (Bytes.length chunk))
              with Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            end;
            if List.memq sock ready then begin
              match Unix.accept sock with
              | exception
                  Unix.Unix_error
                    ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
                  ()
              | fd, _ ->
                  Obs.incr (obs t) "service.connections";
                  conns :=
                    { fd; buf = Buffer.create 1024; in_flight = false; alive = true; discarding = false }
                    :: !conns
            end;
            List.iter
              (fun c ->
                if List.memq c.fd ready then
                  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                      c.alive <- false
                  | 0 -> c.alive <- false
                  | n ->
                      Buffer.add_subbytes c.buf chunk 0 n;
                      advance t rt c)
              readable
      done)
