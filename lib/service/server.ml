(* The accept/dispatch loop around a Session.

   One request line in, one response line out, in order.  Requests are
   isolated: any failure — malformed JSON, a bad design, an exception out
   of the numeric layers, a blown time budget — produces a typed error
   response and the daemon keeps serving.  The wall-clock budget uses
   ITIMER_REAL + SIGALRM raising a private exception, armed only for the
   duration of the dispatch; with the session's default [jobs = 1] the
   whole solve runs in this domain, where the signal can interrupt it. *)

module Flow = Rlc_flow.Flow
module Evaluate = Rlc_ceff.Evaluate
module Units = Rlc_num.Units

let src = Logs.Src.create "rlc.service" ~doc:"timing daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  session : Session.t;
  timeout_s : float;
  max_request_bytes : int;
  stop : bool Atomic.t;
}

let default_timeout_s = 60.

(* ------------------------------------------------------------ timeout *)

exception Timed_out

(* The handler fires only while [armed]: a stray alarm delivered after the
   guarded region (the timer is cleared, but a signal can already be
   pending) must not kill an innocent bystander. *)
let armed = Atomic.make false

let install_sigalrm () =
  try
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> if Atomic.get armed then raise Timed_out))
  with Invalid_argument _ -> ()

let create ?(timeout_s = default_timeout_s) ?(max_request_bytes = Protocol.default_max_bytes)
    session =
  (* Installed here so that driving {!handle_line} directly (tests, the
     bench) is safe: an armed alarm must never hit the default action. *)
  install_sigalrm ();
  { session; timeout_s; max_request_bytes; stop = Atomic.make false }

let stop t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop

let install_signals t =
  install_sigalrm ();
  (* Graceful drain: finish the in-flight request, then exit the loop. *)
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set t.stop true))
   with Invalid_argument _ -> ());
  (* A client vanishing mid-response must be an EPIPE we can catch, not a
     process kill. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let set_timer seconds =
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = seconds; it_interval = 0. })

let with_timeout budget f =
  if budget <= 0. || budget = Float.infinity then f ()
  else begin
    Atomic.set armed true;
    set_timer budget;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set armed false;
        set_timer 0.)
      f
  end

(* ----------------------------------------------------------- dispatch *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve what = function
  | Protocol.Inline s -> Ok (s, None)
  | Protocol.File path -> (
      match read_file path with
      | content -> Ok (content, Some path)
      | exception Sys_error msg -> Error (Error.Bad_request (what ^ ": " ^ msg)))

let metrics_fields (m : Evaluate.metrics) =
  Json.Obj
    [
      ("delay_ps", Json.Float (Units.in_ps m.Evaluate.delay));
      ("slew_ps", Json.Float (Units.in_ps m.Evaluate.slew));
    ]

let screen_fields (v : Rlc_ceff.Screen.verdict) =
  [
    ("significant", Json.Bool v.Rlc_ceff.Screen.significant);
    ("cl_ok", Json.Bool v.Rlc_ceff.Screen.cl_ok);
    ("rl_ok", Json.Bool v.Rlc_ceff.Screen.rl_ok);
    ("rs_ok", Json.Bool v.Rlc_ceff.Screen.rs_ok);
    ("tr_ok", Json.Bool v.Rlc_ceff.Screen.tr_ok);
    ("cl_ratio", Json.Float v.Rlc_ceff.Screen.cl_ratio);
    ("rl_over_z0", Json.Float v.Rlc_ceff.Screen.rl_over_z0);
    ("rs_over_z0", Json.Float v.Rlc_ceff.Screen.rs_over_z0);
    ("tr1_over_tf", Json.Float v.Rlc_ceff.Screen.tr1_over_tf);
  ]

let shape_name (m : Rlc_ceff.Driver_model.t) =
  match m.Rlc_ceff.Driver_model.shape with
  | Rlc_ceff.Driver_model.One_ramp _ -> "one_ramp"
  | Rlc_ceff.Driver_model.Two_ramp _ -> "two_ramp"

let flow_fields (o : Session.flow_outcome) =
  let s = o.Session.result.Flow.stats in
  [
    ("report", Json.Str o.Session.report);
    ("nets", Json.Int s.Flow.n_nets);
    ("levels", Json.Int s.Flow.n_levels);
    ("inductive", Json.Int s.Flow.n_inductive);
    ("two_ramp", Json.Int s.Flow.n_two_ramp);
    ("cache_hits", Json.Int s.Flow.cache_hits);
    ("cache_misses", Json.Int s.Flow.cache_misses);
    ("iterations_total", Json.Int s.Flow.iterations_total);
    ("iterations_spent", Json.Int s.Flow.iterations_spent);
  ]
  @
  match o.Session.xtalk with
  | None -> []
  | Some x ->
      let st = x.Rlc_xtalk.Xtalk.stats in
      [
        ( "xtalk",
          Json.Obj
            [
              ("pairs", Json.Int st.Rlc_xtalk.Xtalk.n_pairs);
              ("screened", Json.Int st.Rlc_xtalk.Xtalk.n_screened);
              ("simulated", Json.Int st.Rlc_xtalk.Xtalk.n_simulated);
              ("alignment_sims", Json.Int st.Rlc_xtalk.Xtalk.n_alignment_sims);
              ("violations", Json.Int st.Rlc_xtalk.Xtalk.n_violations);
            ] );
      ]

let case_of t (c : Protocol.case_req) =
  Session.case t.session ?slew_ps:c.Protocol.c_slew_ps ?cl_ff:c.Protocol.c_cl_ff
    ~length_mm:c.Protocol.c_length_mm ~width_um:c.Protocol.c_width_um ~size:c.Protocol.c_size ()

(* Shared by the "flow" and "xtalk" kinds — one code path, so an xtalk
   request's report embeds the fragment and everything else stays
   byte-identical to a plain flow. *)
let run_flow t ?xtalk (f : Protocol.flow_req) =
  let ( let* ) = Result.bind in
  let* spef, spef_name = resolve "spef_file" f.Protocol.f_spef in
  let* spec, spec_name =
    match f.Protocol.f_spec with
    | None -> Ok (None, None)
    | Some src ->
        let* content, name = resolve "spec_file" src in
        Ok (Some content, name)
  in
  let* design =
    Session.ingest t.session ?spef_name ?spec ?spec_name ?size:f.Protocol.f_size
      ?slew:(Option.map Units.ps f.Protocol.f_slew_ps)
      ~spef ()
  in
  let* outcome =
    Session.flow t.session
      ?required:(Option.map Units.ps f.Protocol.f_required_ps)
      ?use_cache:f.Protocol.f_use_cache
      ?dt:(Option.map Units.ps f.Protocol.f_dt_ps)
      ?xtalk design
  in
  Ok (flow_fields outcome)

let dispatch t (kind : Protocol.kind) :
    ((string * Json.t) list, Error.t) result * [ `Continue | `Stop ] =
  let ( let* ) = Result.bind in
  match kind with
  | Protocol.Ping -> (Ok [ ("pong", Json.Bool true) ], `Continue)
  | Protocol.Stats ->
      let s = Session.stats t.session in
      ( Ok
          [
            ("uptime_s", Json.Float s.Session.uptime_s);
            ("requests_served", Json.Int s.Session.requests_served);
            ("requests_failed", Json.Int s.Session.requests_failed);
            ( "cache",
              Json.Obj
                [
                  ("entries", Json.Int s.Session.cache_entries);
                  ("hits", Json.Int s.Session.cache_hits);
                  ("misses", Json.Int s.Session.cache_misses);
                ] );
          ],
        `Continue )
  | Protocol.Shutdown -> (Ok [ ("stopping", Json.Bool true) ], `Stop)
  | Protocol.Flow f -> (run_flow t f, `Continue)
  | Protocol.Xtalk (f, x) ->
      let xtalk =
        {
          Session.threshold =
            Option.value x.Protocol.x_threshold ~default:Session.default_xtalk.Session.threshold;
          budget = Option.value x.Protocol.x_budget ~default:Session.default_xtalk.Session.budget;
          alignments =
            Option.value x.Protocol.x_alignments
              ~default:Session.default_xtalk.Session.alignments;
        }
      in
      (run_flow t ~xtalk f, `Continue)
  | Protocol.Sweep_case c ->
      ( (let* case = case_of t c in
         let* cmp = Session.sweep_case t.session ?dt:(Option.map Units.ps c.Protocol.c_dt_ps) case in
         Ok
           [
             ("reference", metrics_fields cmp.Evaluate.reference);
             ("auto", metrics_fields cmp.Evaluate.auto);
             ("two_ramp", metrics_fields cmp.Evaluate.two_ramp);
             ("one_ramp", metrics_fields cmp.Evaluate.one_ramp);
             ("auto_shape", Json.Str (shape_name cmp.Evaluate.auto_model));
             ("delay_err_pct", Json.Float (Evaluate.delay_err_pct cmp cmp.Evaluate.auto));
             ("slew_err_pct", Json.Float (Evaluate.slew_err_pct cmp cmp.Evaluate.auto));
           ]),
        `Continue )
  | Protocol.Screen c ->
      ( (let* case = case_of t c in
         let* model = Session.screen t.session case in
         Ok
           (screen_fields model.Rlc_ceff.Driver_model.screen
           @ [ ("shape", Json.Str (shape_name model)) ])),
        `Continue )

let handle_line t line =
  let parsed = Protocol.parse_request ~max_bytes:t.max_request_bytes line in
  let id = match parsed with Ok req -> req.Protocol.id | Error _ -> None in
  let outcome, control =
    match parsed with
    | Error e -> (Error e, `Continue)
    | Ok req ->
        let budget =
          match req.Protocol.timeout_ms with
          | Some ms -> float_of_int ms /. 1000.
          | None -> t.timeout_s
        in
        (* Per-request isolation: whatever escapes — the private timeout,
           an unexpected exception — becomes a typed error response and the
           loop continues. *)
        (match with_timeout budget (fun () -> dispatch t req.Protocol.kind) with
        | outcome, control -> (outcome, control)
        | exception Timed_out -> (Error (Error.Timeout budget), `Continue)
        | exception Fun.Finally_raised Timed_out -> (Error (Error.Timeout budget), `Continue)
        | exception e -> (Error (Error.of_exn e), `Continue))
  in
  match outcome with
  | Ok fields ->
      Session.note t.session ~ok:true;
      (Protocol.ok_response ?id fields, control)
  | Error e ->
      Session.note t.session ~ok:false;
      Log.info (fun m -> m "request failed: %s" (Error.to_string e));
      (Protocol.error_response ?id e, `Continue)

(* -------------------------------------------------------------- loops *)

let serve_channels t ic oc =
  install_signals t;
  let rec loop () =
    if stopped t then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line -> (
          let response, control = handle_line t line in
          output_string oc response;
          output_char oc '\n';
          flush oc;
          match control with
          | `Stop -> Atomic.set t.stop true
          | `Continue -> loop ())
  in
  loop ()

let serve_unix t ~path =
  install_signals t;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Log.info (fun m -> m "listening on %s" path);
      while not (stopped t) do
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            (* One client at a time, in arrival order: requests of a
               connection are served to completion before the next accept;
               close_out closes the shared descriptor. *)
            (try serve_channels t ic oc
             with Sys_error msg -> Log.info (fun m -> m "client dropped: %s" msg));
            (try flush oc with Sys_error _ -> ());
            try close_out oc with Sys_error _ -> ()
      done)
