include Rlc_errors.Error
