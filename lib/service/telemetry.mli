(** Live serving telemetry: bodies of the [metrics] and [health] responses.

    Assembled purely from the session's atomic accounting, the server's
    queue gauges, and the rolling {!Rlc_obs.Window} fed by the listener's
    ticker — never from the span buffers, so building a response is cheap
    and safe to do inline on the listener even under overload.  Counters
    sourced from the window are at most one tick stale;
    [service_requests_total] in the Prometheus text comes from the session
    atomics and is exact. *)

type server_info = { workers : int; queue_capacity : int; queue_depth : int }

val high_water : int -> int
(** Readiness threshold for the admission queue: [ceil(0.8 * capacity)],
    at least 1.  [health] reports not-ready once the depth reaches it. *)

val shards_json : Rlc_flow.Cache.shard_stat array -> Json.t
(** Per-shard cache stats as a JSON list of [{entries, hits, misses}] —
    shared by the [stats] and [metrics] responses. *)

val metrics_fields :
  session:Session.t ->
  server:server_info ->
  window:Rlc_obs.Window.t ->
  unit ->
  (string * Json.t) list
(** The [metrics] response body: [uptime_s], exact [totals], per-kind
    counters, a [window] block (req/s, timeout/rejection rates, cache hit
    ratio, p50/p95/p99 ms via {!Rlc_obs.Obs.Histogram.quantile}, worker
    utilization), [server] gauges, [cache] aggregate + per-shard stats, a
    [designs] block ({!Session.design_stats} — ECO store pressure for
    [top]), and the full Prometheus text exposition under ["prometheus"].
    Window-derived floats are [nan] (rendered as JSON [null]) when the
    window lacks data — fewer than two samples, or no traffic.  The
    window's req/s and latency quantiles exclude [metrics]/[health]
    scrapes (the server never feeds them into ["service.requests"] or
    ["service.request_s"]), so a frequent scraper cannot dominate them;
    scrapes still show in the per-kind counters and exact totals. *)

val health_fields :
  session:Session.t ->
  server:server_info ->
  window:Rlc_obs.Window.t ->
  unit ->
  (string * Json.t) list
(** The [health] response body: [alive] (always [true]), [ready], and the
    individual [checks] — pool up ({!Session.is_closed} false), queue
    depth below {!high_water}, and no deadline storm (more than half the
    window's requests expiring) in the current window. *)

val prometheus :
  stats:Session.stats ->
  shards:Rlc_flow.Cache.shard_stat array ->
  designs:Session.design_store_stats ->
  server:server_info ->
  window:Rlc_obs.Window.t ->
  unit ->
  string
(** The Prometheus text exposition alone ([# HELP]/[# TYPE] metadata,
    counters, gauges, and log2-bucketed histograms with cumulative [le]
    buckets, [_sum], [_count] and [+Inf]). *)
