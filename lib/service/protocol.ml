(* Wire protocol: versioned newline-delimited JSON requests/responses.
   Parsing is strict about types and required fields but lenient about
   unknown fields (forward compatibility within a schema version). *)

let schema = "rlc-service/1"
let schema_v2 = "rlc-service/2"
let default_max_bytes = 8 * 1024 * 1024

type source = Inline of string | File of string

type flow_req = {
  f_spef : source;
  f_spec : source option;
  f_size : float option;
  f_slew_ps : float option;
  f_required_ps : float option;
  f_use_cache : bool option;
  f_dt_ps : float option;
}

type case_req = {
  c_length_mm : float;
  c_width_um : float;
  c_size : float;
  c_slew_ps : float option;
  c_cl_ff : float option;
  c_dt_ps : float option;
}

type xtalk_req = {
  x_threshold : float option;  (* screen level, fraction of VDD *)
  x_budget : float option;  (* violation level, fraction of VDD *)
  x_alignments : int option;  (* aggressor-alignment grid points *)
}

type delta_req = {
  d_handle : string;
  d_nets : (string * string) list;  (* net name -> replacement *D_NET block *)
  d_drivers : (string * float) list;  (* net name -> new driver size *)
  d_slews_ps : (string * float) list;  (* net name -> new primary slew, ps *)
}

type kind =
  | Flow of flow_req
  | Xtalk of flow_req * xtalk_req
  | Sweep_case of case_req
  | Screen of case_req
  | Design_load of flow_req * xtalk_req option
  | Flow_delta of delta_req
  | Design_unload of string
  | Ping
  | Stats
  | Metrics
  | Health
  | Shutdown

type request = { id : Json.t option; timeout_ms : int option; schema : string; kind : kind }

(* -------------------------------------------------------- field access *)

let ( let* ) = Result.bind
let bad fmt = Printf.ksprintf (fun msg -> Error (Error.Bad_request msg)) fmt

let opt_field name conv what fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> bad "field %S must be %s" name what)

let req_field name conv what fields =
  match List.assoc_opt name fields with
  | None -> bad "missing required field %S" name
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> bad "field %S must be %s" name what)

let str_opt name = opt_field name Json.get_string "a string"
let num_opt name = opt_field name Json.get_float "a number"
let bool_opt name = opt_field name Json.get_bool "a boolean"
let num_req name = req_field name Json.get_float "a number"

let positive name = function
  | Some x when x <= 0. -> bad "field %S must be positive" name
  | v -> Ok v

let num_req_pos name fields =
  let* v = num_req name fields in
  if v <= 0. then bad "field %S must be positive" name else Ok v

(* ------------------------------------------------------------ requests *)

let parse_source ~inline_key ~file_key fields =
  let* inline = str_opt inline_key fields in
  let* file = str_opt file_key fields in
  match (inline, file) with
  | Some _, Some _ -> bad "give %S or %S, not both" inline_key file_key
  | Some s, None -> Ok (Some (Inline s))
  | None, Some f -> Ok (Some (File f))
  | None, None -> Ok None

let parse_flow fields =
  let* spef = parse_source ~inline_key:"spef" ~file_key:"spef_file" fields in
  let* f_spef =
    match spef with
    | Some s -> Ok s
    | None -> bad "a flow request needs %S or %S" "spef" "spef_file"
  in
  let* f_spec = parse_source ~inline_key:"spec" ~file_key:"spec_file" fields in
  let* f_size = Result.bind (num_opt "size" fields) (positive "size") in
  let* f_slew_ps = Result.bind (num_opt "slew_ps" fields) (positive "slew_ps") in
  let* f_required_ps = num_opt "required_ps" fields in
  let* f_use_cache = bool_opt "use_cache" fields in
  let* f_dt_ps = Result.bind (num_opt "dt_ps" fields) (positive "dt_ps") in
  Ok (Flow { f_spef; f_spec; f_size; f_slew_ps; f_required_ps; f_use_cache; f_dt_ps })

let parse_flow_req fields =
  match parse_flow fields with
  | Ok (Flow f) -> Ok f
  | Ok _ -> assert false
  | Error e -> Error e

let parse_xtalk_knobs fields =
  let* x_threshold = Result.bind (num_opt "threshold" fields) (positive "threshold") in
  let* x_budget = Result.bind (num_opt "budget" fields) (positive "budget") in
  let* x_alignments =
    match List.assoc_opt "alignments" fields with
    | None -> Ok None
    | Some (Json.Int n) when n >= 1 -> Ok (Some n)
    | Some _ -> bad "field %S must be a positive integer" "alignments"
  in
  Ok { x_threshold; x_budget; x_alignments }

let parse_xtalk fields =
  let* f = parse_flow_req fields in
  let* x = parse_xtalk_knobs fields in
  Ok (Xtalk (f, x))

let parse_design_load fields =
  let* f = parse_flow_req fields in
  let* xtalk_on = bool_opt "xtalk" fields in
  let* x =
    match xtalk_on with
    | Some true -> Result.map Option.some (parse_xtalk_knobs fields)
    | Some false | None -> Ok None
  in
  Ok (Design_load (f, x))

(* An edit map: a JSON object whose members are [net name -> conv-checked
   value].  Preserves member order (harmless — Delta sorts names anyway). *)
let edit_map name conv what fields =
  match List.assoc_opt name fields with
  | None -> Ok []
  | Some (Json.Obj members) ->
      List.fold_left
        (fun acc (net, v) ->
          let* acc = acc in
          match conv v with
          | Some x -> Ok ((net, x) :: acc)
          | None -> bad "field %S: entry %S must be %s" name net what)
        (Ok []) members
      |> Result.map List.rev
  | Some _ -> bad "field %S must be an object" name

let get_pos_float v =
  match Json.get_float v with Some x when x > 0. -> Some x | Some _ | None -> None

let parse_flow_delta fields =
  let* d_handle = req_field "handle" Json.get_string "a string" fields in
  let* d_nets = edit_map "nets" Json.get_string "a string (*D_NET block)" fields in
  let* d_drivers = edit_map "drivers" get_pos_float "a positive number" fields in
  let* d_slews_ps = edit_map "slews_ps" get_pos_float "a positive number" fields in
  if d_nets = [] && d_drivers = [] && d_slews_ps = [] then
    bad "a flow_delta needs at least one edit (%S, %S or %S)" "nets" "drivers" "slews_ps"
  else Ok (Flow_delta { d_handle; d_nets; d_drivers; d_slews_ps })

let parse_design_unload fields =
  let* handle = req_field "handle" Json.get_string "a string" fields in
  Ok (Design_unload handle)

let parse_case fields =
  let* c_length_mm = num_req_pos "length_mm" fields in
  let* c_width_um = num_req_pos "width_um" fields in
  let* c_size = num_req_pos "size" fields in
  let* c_slew_ps = Result.bind (num_opt "slew_ps" fields) (positive "slew_ps") in
  let* c_cl_ff = num_opt "cl_ff" fields in
  let* c_dt_ps = Result.bind (num_opt "dt_ps" fields) (positive "dt_ps") in
  Ok { c_length_mm; c_width_um; c_size; c_slew_ps; c_cl_ff; c_dt_ps }

let parse_request ?(max_bytes = default_max_bytes) line =
  if String.length line > max_bytes then
    bad "request is %d bytes; the limit is %d" (String.length line) max_bytes
  else
    let* json =
      match Json.parse line with
      | Ok j -> Ok j
      | Error (pos, msg) -> Error (Error.parse (Printf.sprintf "at byte %d: %s" pos msg))
    in
    let* fields =
      match Json.get_obj json with
      | Some fields -> Ok fields
      | None -> bad "a request must be a JSON object"
    in
    let* req_schema =
      match List.assoc_opt "schema" fields with
      | Some (Json.Str v) when v = schema || v = schema_v2 -> Ok v
      | Some (Json.Str v) -> Error (Error.Unsupported_version v)
      | Some _ -> bad "field %S must be a string" "schema"
      | None -> Error (Error.Unsupported_version "(missing schema field)")
    in
    let id = List.assoc_opt "id" fields in
    let* timeout_ms =
      match List.assoc_opt "timeout_ms" fields with
      | None -> Ok None
      | Some (Json.Int ms) when ms > 0 -> Ok (Some ms)
      | Some _ -> bad "field %S must be a positive integer" "timeout_ms"
    in
    let* kind_name = req_field "kind" Json.get_string "a string" fields in
    let* kind =
      match kind_name with
      | "flow" -> parse_flow fields
      | "xtalk" -> parse_xtalk fields
      | "sweep_case" -> Result.map (fun c -> Sweep_case c) (parse_case fields)
      | "screen" -> Result.map (fun c -> Screen c) (parse_case fields)
      | ("design_load" | "flow_delta" | "design_unload") when req_schema <> schema_v2 ->
          bad "kind %S requires schema %S" kind_name schema_v2
      | "design_load" -> parse_design_load fields
      | "flow_delta" -> parse_flow_delta fields
      | "design_unload" -> parse_design_unload fields
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "metrics" -> Ok Metrics
      | "health" -> Ok Health
      | "shutdown" -> Ok Shutdown
      | other -> bad "unknown request kind %S" other
    in
    Ok { id; timeout_ms; schema = req_schema; kind }

(* ----------------------------------------------------------- responses *)

let response ?(schema = schema) ?id ~ok fields =
  let base =
    ("schema", Json.Str schema)
    :: (match id with Some id -> [ ("id", id) ] | None -> [])
  in
  Json.to_string (Json.Obj (base @ (("ok", Json.Bool ok) :: fields)))

let ok_response ?schema ?id fields = response ?schema ?id ~ok:true fields

let error_response ?schema ?id err =
  response ?schema ?id ~ok:false
    [
      ( "error",
        Json.Obj
          [ ("code", Json.Str (Error.code err)); ("message", Json.Str (Error.message err)) ] );
    ]
