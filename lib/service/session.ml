(* A resident timing session: the warm state (characterization memo tables,
   the shared Ceff result cache, the domain pool) plus the typed operations
   the server and the CLI both call.  Keeping one code path here is what
   makes the daemon's flow reports byte-identical to `rlc_timing flow`. *)

module Flow = Rlc_flow.Flow
module Report = Rlc_flow.Report
module Evaluate = Rlc_ceff.Evaluate
module Units = Rlc_num.Units

module Config = struct
  type t = {
    tech : Rlc_devices.Tech.t;
    jobs : int;
    dt : float;
    use_cache : bool;
    quantize_digits : int;
    slew_grid : float;
    default_size : float;
    default_slew : float;
    obs : Rlc_obs.Obs.t;
  }

  let default =
    {
      tech = Rlc_devices.Tech.c018;
      jobs = 1;
      dt = 0.5e-12;
      use_cache = true;
      quantize_digits = 9;
      slew_grid = 0.1e-12;
      default_size = 75.;
      default_slew = 100e-12;
      obs = Rlc_obs.Obs.null;
    }
end

type t = {
  config : Config.t;
  pool : Rlc_flow.Pool.t;
  cache : Flow.solve Rlc_flow.Cache.t;
  started_at : float;
  (* counted from concurrent server worker domains *)
  served : int Atomic.t;
  failed : int Atomic.t;
  mutable closed : bool;
}

type stats = {
  uptime_s : float;
  requests_served : int;
  requests_failed : int;
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
}

let create ?(config = Config.default) () =
  {
    config;
    pool = Rlc_flow.Pool.create ~obs:config.Config.obs ~jobs:(Int.max 1 config.Config.jobs) ();
    cache = Flow.create_cache ();
    started_at = Unix.gettimeofday ();
    served = Atomic.make 0;
    failed = Atomic.make 0;
    closed = false;
  }

let config t = t.config

let close t =
  if not t.closed then begin
    t.closed <- true;
    Rlc_flow.Pool.shutdown t.pool
  end

let with_session ?config f =
  let t = create ?config () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let note t ~ok = Atomic.incr (if ok then t.served else t.failed)

let is_closed t = t.closed

let shard_stats t = Rlc_flow.Cache.shard_stats t.cache

let stats t =
  {
    uptime_s = Unix.gettimeofday () -. t.started_at;
    requests_served = Atomic.get t.served;
    requests_failed = Atomic.get t.failed;
    cache_entries = Rlc_flow.Cache.length t.cache;
    cache_hits = Rlc_flow.Cache.hits t.cache;
    cache_misses = Rlc_flow.Cache.misses t.cache;
  }

(* Map the two raising conventions of the numeric layers to typed errors.
   Deliberately NOT a catch-all: unknown exceptions (including
   [Rlc_errors.Deadline.Expired]) must keep propagating to the caller's
   own handler. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Error.Bad_request msg)
  | exception Failure msg -> Error (Error.Internal msg)

(* --------------------------------------------------------------- flow *)

let ingest t ?spef_name ?spec ?spec_name ?size ?slew ~spef () =
  let ( let* ) = Result.bind in
  let* spef = Rlc_spef.Spef.parse_res ?file:spef_name spef in
  let* spec =
    match spec with
    | Some src -> Rlc_flow.Spec.parse_res ?file:spec_name src
    | None ->
        let size = Option.value size ~default:t.config.Config.default_size in
        let slew = Option.value slew ~default:t.config.Config.default_slew in
        guard (fun () -> Rlc_flow.Spec.default_of_spef ~size ~slew spef)
  in
  match Rlc_flow.Design.ingest ~tech:t.config.Config.tech ~spef ~spec () with
  | Ok d -> Ok d
  | Error msg -> Error (Error.Bad_request msg)

type xtalk_request = { threshold : float; budget : float; alignments : int }

let default_xtalk =
  {
    threshold = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.threshold;
    budget = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.budget;
    alignments = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.alignments;
  }

type flow_outcome = {
  result : Flow.result;
  xtalk : Rlc_xtalk.Xtalk.result option;
  report : string;
}

let flow t ?required ?use_cache ?dt ?adaptive ?progress ?xtalk ?deadline ?trace design =
  let cfg =
    {
      Flow.Config.dt = Option.value dt ~default:t.config.Config.dt;
      adaptive;
      jobs = None;
      use_cache = Option.value use_cache ~default:t.config.Config.use_cache;
      cache = Some t.cache;
      quantize_digits = t.config.Config.quantize_digits;
      slew_grid = t.config.Config.slew_grid;
      obs = t.config.Config.obs;
      progress;
      pool = Some t.pool;
      deadline;
      trace;
    }
  in
  guard (fun () ->
      let result = Flow.run_cfg cfg design in
      let xtalk =
        Option.map
          (fun x ->
            Rlc_xtalk.Xtalk.analyze
              ~config:
                {
                  Rlc_xtalk.Xtalk.Config.default with
                  Rlc_xtalk.Xtalk.Config.threshold = x.threshold;
                  budget = x.budget;
                  alignments = x.alignments;
                  dt = Option.value dt ~default:t.config.Config.dt;
                  pool = Some t.pool;
                  obs = t.config.Config.obs;
                }
              result)
          xtalk
      in
      let fragment = Option.map (Rlc_xtalk.Xtalk.json_fragment design) xtalk in
      { result; xtalk; report = Report.json_string ?required ?xtalk:fragment result })

(* --------------------------------------------------------------- case *)

let case t ?slew_ps ?cl_ff ~length_mm ~width_um ~size () =
  let input_slew_ps =
    Option.value slew_ps ~default:(Units.in_ps t.config.Config.default_slew)
  in
  if length_mm <= 0. || width_um <= 0. || size <= 0. || input_slew_ps <= 0. then
    Error
      (Error.Bad_request
         (Printf.sprintf "case wants positive length/width/size/slew, got %g mm / %g um / %gX / %g ps"
            length_mm width_um size input_slew_ps))
  else
  guard (fun () ->
      Evaluate.case ~tech:t.config.Config.tech
        ?cl:(Option.map Units.ff cl_ff)
        ~label:"service" ~length_mm ~width_um ~size ~input_slew_ps ())

let sweep_case t ?dt case =
  guard (fun () ->
      Evaluate.run ~obs:t.config.Config.obs ~dt:(Option.value dt ~default:t.config.Config.dt) case)

let screen t (case : Evaluate.case) =
  let ( let* ) = Result.bind in
  let* cell = Rlc_liberty.Characterize.cell_res t.config.Config.tech ~size:case.Evaluate.size in
  guard (fun () ->
      Rlc_ceff.Driver_model.model ~obs:t.config.Config.obs ~cell ~edge:Rlc_waveform.Measure.Rising
        ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ())

let warm t sizes =
  let rec go = function
    | [] -> Ok ()
    | size :: rest -> (
        match Rlc_liberty.Characterize.cell_res t.config.Config.tech ~size with
        | Ok _ -> go rest
        | Error e -> Error e)
  in
  go sizes
