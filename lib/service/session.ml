(* A resident timing session: the warm state (characterization memo tables,
   the shared Ceff result cache, the domain pool, resident incrementally
   timed designs) plus the typed operations the server and the CLI both
   call.  Keeping one code path here is what makes the daemon's flow
   reports byte-identical to `rlc_timing flow`. *)

module Flow = Rlc_flow.Flow
module Report = Rlc_flow.Report
module Evaluate = Rlc_ceff.Evaluate
module Units = Rlc_num.Units
module Pool = Rlc_parallel.Pool

module Config = struct
  type t = {
    tech : Rlc_devices.Tech.t;
    jobs : int;
    dt : float;
    use_cache : bool;
    quantize_digits : int;
    slew_grid : float;
    default_size : float;
    default_slew : float;
    design_capacity : int;
    obs : Rlc_obs.Obs.t;
  }

  let default =
    {
      tech = Rlc_devices.Tech.c018;
      jobs = 1;
      dt = 0.5e-12;
      use_cache = true;
      quantize_digits = 9;
      slew_grid = 0.1e-12;
      default_size = 75.;
      default_slew = 100e-12;
      design_capacity = 8;
      obs = Rlc_obs.Obs.null;
    }
end

type xtalk_request = { threshold : float; budget : float; alignments : int }

let default_xtalk =
  {
    threshold = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.threshold;
    budget = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.budget;
    alignments = Rlc_xtalk.Xtalk.Config.default.Rlc_xtalk.Xtalk.Config.alignments;
  }

(* The whole per-request knob surface as one typed value, shared by the
   CLI one-shot path and both protocol schemas — v1 [flow] and v2
   [design_load] decode into the same record, so report byte-identity
   across entry points is structural, not incidental. *)
module Request = struct
  type t = {
    required : float option;
    use_cache : bool option;
    dt : float option;
    adaptive : Rlc_circuit.Engine.adaptive option;
    progress : Rlc_obs.Progress.t option;
    xtalk : xtalk_request option;
    deadline : Rlc_errors.Deadline.t option;
    trace : string option;
  }

  let default =
    {
      required = None;
      use_cache = None;
      dt = None;
      adaptive = None;
      progress = None;
      xtalk = None;
      deadline = None;
      trace = None;
    }
end

(* A resident incrementally timed design.  [timed] is replaced wholesale on
   each applied delta under [lock]; [last_used] is a logical-clock stamp
   driving LRU eviction.  [req] is the load-time request with the
   per-request fields (deadline, trace, progress) stripped — deltas rebuild
   those per call. *)
type design_entry = {
  handle : string;
  req : Request.t;
  mutable timed : Flow.Timed.t;
  lock : Mutex.t;
  last_used : int Atomic.t;
}

type t = {
  config : Config.t;
  pool : Pool.t;
  cache : Flow.solve Rlc_flow.Cache.t;
  started_at : float;
  (* counted from concurrent server worker domains *)
  served : int Atomic.t;
  failed : int Atomic.t;
  designs : (string, design_entry) Hashtbl.t;
  designs_lock : Mutex.t;
  design_seq : int Atomic.t;
  design_clock : int Atomic.t;
  design_evictions : int Atomic.t;
  mutable closed : bool;
}

type stats = {
  uptime_s : float;
  requests_served : int;
  requests_failed : int;
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
}

type design_store_stats = {
  ds_handles : int;
  ds_capacity : int;
  ds_nets : int;
  ds_evictions : int;
}

let create ?(config = Config.default) () =
  {
    config;
    pool = Pool.create ~obs:config.Config.obs ~jobs:(Int.max 1 config.Config.jobs) ();
    cache = Flow.create_cache ();
    started_at = Unix.gettimeofday ();
    served = Atomic.make 0;
    failed = Atomic.make 0;
    designs = Hashtbl.create 8;
    designs_lock = Mutex.create ();
    design_seq = Atomic.make 0;
    design_clock = Atomic.make 0;
    design_evictions = Atomic.make 0;
    closed = false;
  }

let config t = t.config

let close t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_session ?config f =
  let t = create ?config () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let note t ~ok = Atomic.incr (if ok then t.served else t.failed)

let is_closed t = t.closed

let shard_stats t = Rlc_flow.Cache.shard_stats t.cache

let stats t =
  {
    uptime_s = Unix.gettimeofday () -. t.started_at;
    requests_served = Atomic.get t.served;
    requests_failed = Atomic.get t.failed;
    cache_entries = Rlc_flow.Cache.length t.cache;
    cache_hits = Rlc_flow.Cache.hits t.cache;
    cache_misses = Rlc_flow.Cache.misses t.cache;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Map the two raising conventions of the numeric layers to typed errors.
   Deliberately NOT a catch-all: unknown exceptions (including
   [Rlc_errors.Deadline.Expired]) must keep propagating to the caller's
   own handler. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Error.Bad_request msg)
  | exception Failure msg -> Error (Error.Internal msg)

(* --------------------------------------------------------------- flow *)

let parse_sources t ?spef_name ?spec ?spec_name ?size ?slew ~spef () =
  let ( let* ) = Result.bind in
  let* spef = Rlc_spef.Spef.parse_res ?file:spef_name spef in
  let* spec =
    match spec with
    | Some src -> Rlc_flow.Spec.parse_res ?file:spec_name src
    | None ->
        let size = Option.value size ~default:t.config.Config.default_size in
        let slew = Option.value slew ~default:t.config.Config.default_slew in
        guard (fun () -> Rlc_flow.Spec.default_of_spef ~size ~slew spef)
  in
  Ok (spef, spec)

let ingest t ?spef_name ?spec ?spec_name ?size ?slew ~spef () =
  let ( let* ) = Result.bind in
  let* spef, spec = parse_sources t ?spef_name ?spec ?spec_name ?size ?slew ~spef () in
  match Rlc_flow.Design.ingest ~tech:t.config.Config.tech ~spef ~spec () with
  | Ok d -> Ok d
  | Error msg -> Error (Error.Bad_request msg)

type flow_outcome = {
  result : Flow.result;
  xtalk : Rlc_xtalk.Xtalk.result option;
  report : string;
}

let flow_cfg t (req : Request.t) =
  {
    Flow.Config.dt = Option.value req.Request.dt ~default:t.config.Config.dt;
    adaptive = req.Request.adaptive;
    jobs = None;
    use_cache = Option.value req.Request.use_cache ~default:t.config.Config.use_cache;
    cache = Some t.cache;
    quantize_digits = t.config.Config.quantize_digits;
    slew_grid = t.config.Config.slew_grid;
    obs = t.config.Config.obs;
    progress = req.Request.progress;
    pool = Some t.pool;
    deadline = req.Request.deadline;
    trace = req.Request.trace;
  }

(* Crosstalk analysis + report rendering over a finished flow result —
   identical for a cold [flow], a [design_load], and every [flow_delta]
   (Xtalk.analyze is a pure function of the result, the coupling graph and
   the config, so re-running it wholesale preserves byte-identity). *)
let outcome_of t (req : Request.t) (result : Flow.result) =
  let xtalk =
    Option.map
      (fun x ->
        Rlc_xtalk.Xtalk.analyze
          ~config:
            {
              Rlc_xtalk.Xtalk.Config.default with
              Rlc_xtalk.Xtalk.Config.threshold = x.threshold;
              budget = x.budget;
              alignments = x.alignments;
              dt = Option.value req.Request.dt ~default:t.config.Config.dt;
              pool = Some t.pool;
              obs = t.config.Config.obs;
            }
          result)
      req.Request.xtalk
  in
  let fragment = Option.map (Rlc_xtalk.Xtalk.json_fragment result.Flow.design) xtalk in
  {
    result;
    xtalk;
    report = Report.json_string ?required:req.Request.required ?xtalk:fragment result;
  }

let flow t (req : Request.t) design =
  let cfg = flow_cfg t req in
  guard (fun () -> outcome_of t req (Flow.run_cfg cfg design))

(* ------------------------------------------------------- design store *)

let touch t entry = Atomic.set entry.last_used (Atomic.fetch_and_add t.design_clock 1)

let find_entry t handle =
  with_lock t.designs_lock (fun () -> Hashtbl.find_opt t.designs handle)

let unknown_handle handle =
  Error.Bad_request (Printf.sprintf "unknown design handle %S" handle)

let capacity t = Int.max 1 t.config.Config.design_capacity

let register t ~req timed =
  let handle = "d" ^ string_of_int (1 + Atomic.fetch_and_add t.design_seq 1) in
  let entry =
    {
      handle;
      req;
      timed;
      lock = Mutex.create ();
      last_used = Atomic.make (Atomic.fetch_and_add t.design_clock 1);
    }
  in
  with_lock t.designs_lock (fun () ->
      Hashtbl.replace t.designs handle entry;
      while Hashtbl.length t.designs > capacity t do
        let victim =
          Hashtbl.fold
            (fun _ e acc ->
              match acc with
              | None -> Some e
              | Some b -> if Atomic.get e.last_used < Atomic.get b.last_used then Some e else acc)
            t.designs None
        in
        match victim with
        | Some e ->
            (* An in-flight delta on the evicted handle finishes on its own
               reference; only the table entry goes away. *)
            Hashtbl.remove t.designs e.handle;
            Atomic.incr t.design_evictions
        | None -> ()
      done);
  handle

let design_load t ?spef_name ?spec ?spec_name ?size ?slew ~req ~spef () =
  let ( let* ) = Result.bind in
  let* spef, spec = parse_sources t ?spef_name ?spec ?spec_name ?size ?slew ~spef () in
  let cfg = flow_cfg t req in
  let* timed =
    Result.join
      (guard (fun () -> Flow.time ~tech:t.config.Config.tech cfg ~spef ~spec ()))
  in
  let* outcome = guard (fun () -> outcome_of t req (Flow.Timed.result timed)) in
  let stored = { req with Request.deadline = None; trace = None; progress = None } in
  let handle = register t ~req:stored timed in
  Ok (handle, outcome)

let flow_delta t ?deadline ?trace ~handle delta =
  match find_entry t handle with
  | None -> Error (unknown_handle handle)
  | Some entry ->
      touch t entry;
      (* The entry lock serializes deltas per handle: each one re-times
         against the state its predecessor left. *)
      with_lock entry.lock (fun () ->
          let ( let* ) = Result.bind in
          let req = entry.req in
          let* timed, delta_stats =
            Result.join
              (guard (fun () ->
                   Flow.retime ?deadline ?trace
                     ~xtalk_victims:(req.Request.xtalk <> None)
                     entry.timed delta))
          in
          let* outcome =
            guard (fun () ->
                outcome_of t { req with Request.deadline; trace } (Flow.Timed.result timed))
          in
          entry.timed <- timed;
          Ok (outcome, delta_stats))

let design_unload t handle =
  with_lock t.designs_lock (fun () ->
      if Hashtbl.mem t.designs handle then begin
        Hashtbl.remove t.designs handle;
        Ok ()
      end
      else Error (unknown_handle handle))

let design_stats t =
  with_lock t.designs_lock (fun () ->
      {
        ds_handles = Hashtbl.length t.designs;
        ds_capacity = capacity t;
        ds_nets =
          Hashtbl.fold
            (fun _ e acc -> acc + Rlc_flow.Design.n_nets (Flow.Timed.design e.timed))
            t.designs 0;
        ds_evictions = Atomic.get t.design_evictions;
      })

(* --------------------------------------------------------------- case *)

let case t ?slew_ps ?cl_ff ~length_mm ~width_um ~size () =
  let input_slew_ps =
    Option.value slew_ps ~default:(Units.in_ps t.config.Config.default_slew)
  in
  if length_mm <= 0. || width_um <= 0. || size <= 0. || input_slew_ps <= 0. then
    Error
      (Error.Bad_request
         (Printf.sprintf "case wants positive length/width/size/slew, got %g mm / %g um / %gX / %g ps"
            length_mm width_um size input_slew_ps))
  else
  guard (fun () ->
      Evaluate.case ~tech:t.config.Config.tech
        ?cl:(Option.map Units.ff cl_ff)
        ~label:"service" ~length_mm ~width_um ~size ~input_slew_ps ())

let sweep_case t ?dt case =
  guard (fun () ->
      Evaluate.run ~obs:t.config.Config.obs ~dt:(Option.value dt ~default:t.config.Config.dt) case)

let screen t (case : Evaluate.case) =
  let ( let* ) = Result.bind in
  let* cell = Rlc_liberty.Characterize.cell_res t.config.Config.tech ~size:case.Evaluate.size in
  guard (fun () ->
      Rlc_ceff.Driver_model.model ~obs:t.config.Config.obs ~cell ~edge:Rlc_waveform.Measure.Rising
        ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ())

let warm t sizes =
  let rec go = function
    | [] -> Ok ()
    | size :: rest -> (
        match Rlc_liberty.Characterize.cell_res t.config.Config.tech ~size with
        | Ok _ -> go rest
        | Error e -> Error e)
  in
  go sizes
