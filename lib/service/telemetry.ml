(* Live serving telemetry: the [metrics] and [health] response bodies.

   Everything here is assembled from three sources that already exist —
   the session's exact atomic request/cache accounting, the server's queue
   gauges, and the rolling [Rlc_obs.Window] the listener's ticker feeds —
   so producing a telemetry response never touches the engine, the pool,
   or the span buffers.  Counters sourced from the window are at most one
   tick stale; [service_requests_total] is rendered from the session
   atomics and is exact, which is what lets CI reconcile it against the
   client-side request count. *)

module Obs = Rlc_obs.Obs
module Window = Rlc_obs.Window
module Cache = Rlc_flow.Cache

type server_info = { workers : int; queue_capacity : int; queue_depth : int }

(* ceil(0.8 * capacity), >= 1: readiness flips before the queue is
   actually full, giving load balancers a margin to drain. *)
let high_water capacity = Int.max 1 (((4 * capacity) + 4) / 5)

(* ------------------------------------------------------------- helpers *)

let shard_json (s : Cache.shard_stat) =
  Json.Obj
    [
      ("entries", Json.Int s.Cache.s_length);
      ("hits", Json.Int s.Cache.s_hits);
      ("misses", Json.Int s.Cache.s_misses);
    ]

let shards_json shards = Json.List (Array.to_list (Array.map shard_json shards))

let latest_counter window name =
  match Window.latest window with
  | None -> 0
  | Some s -> (
      match List.assoc_opt name s.Window.counters with Some n -> n | None -> 0)

let latest_stat window name =
  match Window.latest window with
  | None -> None
  | Some s -> List.assoc_opt name s.Window.stats

let kind_prefix = "service.requests."

(* Per-kind totals, read from the freshest cumulative sample: the ticker
   counters are named ["service.requests.<kind>"]. *)
let kind_totals window =
  match Window.latest window with
  | None -> []
  | Some s ->
      List.filter_map
        (fun (name, n) ->
          let lp = String.length kind_prefix in
          if
            String.length name > lp
            && String.equal (String.sub name 0 lp) kind_prefix
          then Some (String.sub name lp (String.length name - lp), n)
          else None)
        s.Window.counters

(* ------------------------------------------------------- window digest *)

type window_view = {
  span_s : float;
  samples : int;
  requests_per_s : float;
  timeouts_per_s : float;
  rejections_per_s : float;
  cache_hit_ratio : float;  (* nan when the window saw no cache traffic *)
  p50_s : float;  (* nan when the window saw no finished requests *)
  p95_s : float;
  p99_s : float;
  utilization : float;  (* busy-seconds / (span * workers), clamped to 1 *)
}

let window_view ~workers window =
  let span = Window.span_s window in
  let latency = Window.stat_delta window "service.request_s" in
  let q p =
    match latency with
    | Some s when s.Obs.count > 0 -> Obs.Histogram.quantile s p
    | _ -> Float.nan
  in
  let hits = Window.counter_delta window "flow.cache.hits" in
  let misses = Window.counter_delta window "flow.cache.misses" in
  {
    span_s = span;
    samples = Window.samples window;
    requests_per_s = Window.rate window "service.requests";
    timeouts_per_s = Window.rate window "service.timeouts";
    rejections_per_s =
      Window.rate window "service.rejected_queue_full"
      +. Window.rate window "service.rejected_expired";
    cache_hit_ratio =
      (if hits + misses = 0 then Float.nan
       else float_of_int hits /. float_of_int (hits + misses));
    p50_s = q 0.5;
    p95_s = q 0.95;
    p99_s = q 0.99;
    utilization =
      (match latency with
      | Some s when span > 0. && workers > 0 ->
          Float.min 1. (s.Obs.sum /. (span *. float_of_int workers))
      | _ -> Float.nan);
  }

(* -------------------------------------------------- prometheus rendering *)

(* %g is enough here: counters are integers and gauges/durations don't
   need round-trip precision in an exposition meant for scrapers. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus ~(stats : Session.stats) ~shards ~(designs : Session.design_store_stats) ~server
    ~window () =
  let b = Buffer.create 4096 in
  let meta name typ help =
    Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n" name help name typ
  in
  let sample ?(labels = "") name v =
    Printf.bprintf b "%s%s %s\n" name labels v
  in
  let gauge name help v =
    meta name "gauge" help;
    sample name (prom_float v)
  in
  let counter name help v =
    meta name "counter" help;
    sample name (string_of_int v)
  in
  gauge "service_up" "Whether the daemon is serving requests." 1.;
  gauge "service_uptime_seconds" "Seconds since the session started."
    stats.Session.uptime_s;
  meta "service_requests_total" "counter"
    "Requests finished since start, by outcome.";
  sample "service_requests_total" ~labels:"{outcome=\"ok\"}"
    (string_of_int stats.Session.requests_served);
  sample "service_requests_total" ~labels:"{outcome=\"error\"}"
    (string_of_int stats.Session.requests_failed);
  (match kind_totals window with
  | [] -> ()
  | kinds ->
      meta "service_requests_kind_total" "counter"
        "Requests executed since start, by request kind.";
      List.iter
        (fun (kind, n) ->
          sample "service_requests_kind_total"
            ~labels:(Printf.sprintf "{kind=%S}" kind)
            (string_of_int n))
        kinds);
  counter "service_timeouts_total"
    "Requests that exhausted their deadline budget."
    (latest_counter window "service.timeouts");
  meta "service_rejected_total" "counter"
    "Requests rejected before execution, by reason.";
  sample "service_rejected_total" ~labels:"{reason=\"queue_full\"}"
    (string_of_int (latest_counter window "service.rejected_queue_full"));
  sample "service_rejected_total" ~labels:"{reason=\"expired\"}"
    (string_of_int (latest_counter window "service.rejected_expired"));
  counter "service_connections_total" "Client connections accepted."
    (latest_counter window "service.connections");
  gauge "service_workers" "Executor worker domains."
    (float_of_int server.workers);
  gauge "service_queue_capacity" "Admission queue capacity."
    (float_of_int server.queue_capacity);
  gauge "service_queue_depth" "Requests currently queued."
    (float_of_int server.queue_depth);
  gauge "service_cache_entries" "Ceff cache population."
    (float_of_int stats.Session.cache_entries);
  counter "service_cache_hits_total" "Ceff cache hits since start."
    stats.Session.cache_hits;
  counter "service_cache_misses_total" "Ceff cache misses since start."
    stats.Session.cache_misses;
  let ch, cm, cs = Rlc_liberty.Characterize.stats () in
  counter "service_char_hits_total" "Characterization-memo hits since start." ch;
  counter "service_char_misses_total" "Characterization-memo misses since start." cm;
  counter "service_char_stores_total" "Characterized cells stored since start." cs;
  let hh, hm = Rlc_circuit.Engine.Compiled.cache_stats () in
  counter "service_handle_hits_total"
    "Compiled transient-handle cache hits since start." hh;
  counter "service_handle_misses_total"
    "Compiled transient-handle cache misses since start." hm;
  gauge "service_designs_resident" "Designs resident in the ECO store."
    (float_of_int designs.Session.ds_handles);
  gauge "service_designs_capacity" "ECO design store capacity."
    (float_of_int designs.Session.ds_capacity);
  gauge "service_designs_nets" "Nets held across resident designs."
    (float_of_int designs.Session.ds_nets);
  counter "service_designs_evictions_total" "LRU design evictions since start."
    designs.Session.ds_evictions;
  if Array.length shards > 0 then begin
    meta "service_cache_shard_entries" "gauge"
      "Ceff cache population, by shard.";
    Array.iteri
      (fun i (s : Cache.shard_stat) ->
        sample "service_cache_shard_entries"
          ~labels:(Printf.sprintf "{shard=\"%d\"}" i)
          (string_of_int s.Cache.s_length))
      shards;
    meta "service_cache_shard_hits_total" "counter"
      "Ceff cache hits since start, by shard.";
    Array.iteri
      (fun i (s : Cache.shard_stat) ->
        sample "service_cache_shard_hits_total"
          ~labels:(Printf.sprintf "{shard=\"%d\"}" i)
          (string_of_int s.Cache.s_hits))
      shards;
    meta "service_cache_shard_misses_total" "counter"
      "Ceff cache misses since start, by shard.";
    Array.iteri
      (fun i (s : Cache.shard_stat) ->
        sample "service_cache_shard_misses_total"
          ~labels:(Printf.sprintf "{shard=\"%d\"}" i)
          (string_of_int s.Cache.s_misses))
      shards
  end;
  let histogram name help (st : Obs.stat_summary) =
    meta name "histogram" help;
    let cum = ref 0 in
    Array.iteri
      (fun i n ->
        cum := !cum + n;
        Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name
          (prom_float (Obs.Histogram.bucket_hi i))
          !cum)
      st.Obs.buckets;
    Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name st.Obs.count;
    Printf.bprintf b "%s_sum %s\n" name (prom_float st.Obs.sum);
    Printf.bprintf b "%s_count %d\n" name st.Obs.count
  in
  (match latest_stat window "service.request_s" with
  | Some st ->
      histogram "service_request_seconds"
        "Request execution wall time (seconds), log2 buckets." st
  | None -> ());
  (match latest_stat window "service.queue_wait_s" with
  | Some st ->
      histogram "service_queue_wait_seconds"
        "Admission-queue wait (seconds), log2 buckets." st
  | None -> ());
  Buffer.contents b

(* ------------------------------------------------------------ responses *)

let ms_of_s v = v *. 1e3

let metrics_fields ~session ~server ~window () =
  let stats = Session.stats session in
  let shards = Session.shard_stats session in
  let designs = Session.design_stats session in
  let wv = window_view ~workers:server.workers window in
  [
    ("uptime_s", Json.Float stats.Session.uptime_s);
    ( "totals",
      Json.Obj
        [
          ("served", Json.Int stats.Session.requests_served);
          ("failed", Json.Int stats.Session.requests_failed);
          ("timeouts", Json.Int (latest_counter window "service.timeouts"));
          ( "rejected_queue_full",
            Json.Int (latest_counter window "service.rejected_queue_full") );
          ( "rejected_expired",
            Json.Int (latest_counter window "service.rejected_expired") );
          ("connections", Json.Int (latest_counter window "service.connections"));
        ] );
    ( "kinds",
      Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (kind_totals window))
    );
    ( "window",
      Json.Obj
        [
          ("span_s", Json.Float wv.span_s);
          ("samples", Json.Int wv.samples);
          ("requests_per_s", Json.Float wv.requests_per_s);
          ("timeouts_per_s", Json.Float wv.timeouts_per_s);
          ("rejections_per_s", Json.Float wv.rejections_per_s);
          ("cache_hit_ratio", Json.Float wv.cache_hit_ratio);
          ("p50_ms", Json.Float (ms_of_s wv.p50_s));
          ("p95_ms", Json.Float (ms_of_s wv.p95_s));
          ("p99_ms", Json.Float (ms_of_s wv.p99_s));
          ("utilization", Json.Float wv.utilization);
        ] );
    ( "server",
      Json.Obj
        [
          ("workers", Json.Int server.workers);
          ("queue_capacity", Json.Int server.queue_capacity);
          ("queue_depth", Json.Int server.queue_depth);
          ("queue_high_water", Json.Int (high_water server.queue_capacity));
        ] );
    ( "cache",
      Json.Obj
        [
          ("entries", Json.Int stats.Session.cache_entries);
          ("hits", Json.Int stats.Session.cache_hits);
          ("misses", Json.Int stats.Session.cache_misses);
          ("shards", shards_json shards);
        ] );
    ( "characterization",
      (* Process-global memo counters (the table is shared by every session
         and one-shot flow in the process), exact like the cache atomics. *)
      let ch, cm, cs = Rlc_liberty.Characterize.stats () in
      Json.Obj
        [ ("hits", Json.Int ch); ("misses", Json.Int cm); ("stores", Json.Int cs) ] );
    ( "handles",
      let hh, hm = Rlc_circuit.Engine.Compiled.cache_stats () in
      Json.Obj [ ("hits", Json.Int hh); ("misses", Json.Int hm) ] );
    ( "designs",
      Json.Obj
        [
          ("handles", Json.Int designs.Session.ds_handles);
          ("capacity", Json.Int designs.Session.ds_capacity);
          ("nets", Json.Int designs.Session.ds_nets);
          ("evictions", Json.Int designs.Session.ds_evictions);
        ] );
    ("prometheus", Json.Str (prometheus ~stats ~shards ~designs ~server ~window ()));
  ]

let health_fields ~session ~server ~window () =
  let hw = high_water server.queue_capacity in
  let pool_up = not (Session.is_closed session) in
  let queue_ok = server.queue_depth < hw in
  let d_requests = Window.counter_delta window "service.requests" in
  let d_deadline =
    Window.counter_delta window "service.timeouts"
    + Window.counter_delta window "service.rejected_expired"
  in
  (* A deadline storm = more than half the window's finished requests blew
     their budget; a quiet window (no requests) is never a storm. *)
  let storm = d_requests > 0 && 2 * d_deadline > d_requests in
  let ready = pool_up && queue_ok && not storm in
  [
    ("alive", Json.Bool true);
    ("ready", Json.Bool ready);
    ( "checks",
      Json.Obj
        [
          ("pool_up", Json.Bool pool_up);
          ("queue_ok", Json.Bool queue_ok);
          ("no_deadline_storm", Json.Bool (not storm));
        ] );
    ("queue_depth", Json.Int server.queue_depth);
    ("queue_high_water", Json.Int hw);
    ("window_requests", Json.Int d_requests);
    ("window_deadline_failures", Json.Int d_deadline);
  ]
