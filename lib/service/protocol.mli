(** The daemon's wire protocol: newline-delimited JSON, schemas
    ["rlc-service/1"] and ["rlc-service/2"].

    Every request is one line — a JSON object carrying a ["schema"] tag, a
    ["kind"], an optional ["id"] (echoed verbatim in the response, any JSON
    value), an optional ["timeout_ms"] overriding the server's per-request
    budget, and kind-specific parameters.  Every response is one line:
    [{"schema":...,"id":...,"ok":true,...}] on success and
    [{"schema":...,"id":...,"ok":false,"error":{"code":...,"message":...}}]
    on failure, where [code] is the stable machine identifier from
    {!Error.code}.  Responses carry the schema of the request they answer,
    so a v1 client never sees ["rlc-service/2"] on the wire.

    v2 is a strict superset of v1: every v1 kind parses identically under
    either tag, and v1 responses are byte-for-byte what a v1-only server
    produced.  The three v2-only kinds drive the incremental (ECO) store:

    - ["design_load"]: the ["flow"] fields, plus optional ["xtalk"]
      (boolean — run crosstalk analysis on this design, with the usual
      optional ["threshold"] / ["budget"] / ["alignments"] knobs).  Times
      the design cold, keeps it resident, and answers with a ["handle"]
      plus the full flow response fields.
    - ["flow_delta"]: required ["handle"]; edit maps ["nets"] (net name ->
      replacement [*D_NET ... *END] block text), ["drivers"] (net name ->
      new driver size) and ["slews_ps"] (primary-input net name -> new
      slew in ps) — at least one edit across the three.  Re-times
      incrementally and answers with the flow fields plus ["retimed_nets"]
      / ["reused_nets"].
    - ["design_unload"]: required ["handle"]; drops the resident design.

    Request kinds (v1, unchanged):
    - ["flow"]: time a full design.  Exactly one of ["spef"] (inline text)
      or ["spef_file"] (path the {e server} reads); at most one of ["spec"]
      / ["spec_file"]; optional ["size"], ["slew_ps"] (spec defaults),
      ["required_ps"], ["use_cache"], ["dt_ps"].
    - ["xtalk"]: a ["flow"] request that also runs the coupled-net
      crosstalk analysis; same fields plus optional ["threshold"] and
      ["budget"] (fractions of VDD) and ["alignments"] (positive integer
      grid size).
    - ["sweep_case"] / ["screen"]: one geometric case; required
      ["length_mm"], ["width_um"], ["size"]; optional ["slew_ps"],
      ["cl_ff"], ["dt_ps"] (sweep only).
    - ["ping"], ["stats"], ["metrics"], ["health"], ["shutdown"]: no
      parameters. *)

val schema : string
(** ["rlc-service/1"]. *)

val schema_v2 : string
(** ["rlc-service/2"].  Requests carrying a tag that is neither {!schema}
    nor {!schema_v2} are rejected with an [unsupported_version] error
    before their parameters are looked at. *)

val default_max_bytes : int
(** Default request-size limit, 8 MiB. *)

type source =
  | Inline of string  (** content shipped in the request *)
  | File of string  (** path to be read by the server *)

type flow_req = {
  f_spef : source;
  f_spec : source option;
  f_size : float option;  (** default driver size when no spec is given *)
  f_slew_ps : float option;  (** default primary-input slew, ps *)
  f_required_ps : float option;  (** required arrival for slack, ps *)
  f_use_cache : bool option;
  f_dt_ps : float option;
}

type case_req = {
  c_length_mm : float;
  c_width_um : float;
  c_size : float;
  c_slew_ps : float option;
  c_cl_ff : float option;
  c_dt_ps : float option;
}

type xtalk_req = {
  x_threshold : float option;  (** screen level, fraction of VDD *)
  x_budget : float option;  (** violation level, fraction of VDD *)
  x_alignments : int option;  (** aggressor-alignment grid points *)
}

type delta_req = {
  d_handle : string;
  d_nets : (string * string) list;
      (** net name -> replacement [*D_NET] block text *)
  d_drivers : (string * float) list;  (** net name -> new driver size (X) *)
  d_slews_ps : (string * float) list;
      (** primary-input net name -> new slew, picoseconds (converted to
          seconds at the {!Session} boundary) *)
}

type kind =
  | Flow of flow_req
  | Xtalk of flow_req * xtalk_req
  | Sweep_case of case_req
  | Screen of case_req
  | Design_load of flow_req * xtalk_req option
      (** v2 only; [Some knobs] when the request set ["xtalk": true] *)
  | Flow_delta of delta_req  (** v2 only *)
  | Design_unload of string  (** v2 only; the handle *)
  | Ping
  | Stats
  | Metrics
      (** live telemetry: rolling-window rates and latency quantiles, cache
          shard breakdown, design-store pressure, plus a Prometheus text
          exposition of the same numbers under a ["prometheus"] string
          field.  The server answers this inline from the listener — it
          never queues, so scrapes keep working while the admission queue
          is saturated. *)
  | Health
      (** liveness + readiness: [alive] is always [true] (the daemon
          answered); [ready] requires the pool up, the queue below its
          high-water mark, and no deadline storm in the current window.
          Served inline like [Metrics]. *)
  | Shutdown

type request = {
  id : Json.t option;  (** echoed verbatim into the response *)
  timeout_ms : int option;
  schema : string;  (** the accepted tag — {!schema} or {!schema_v2};
                        responses echo it *)
  kind : kind;
}

val parse_request : ?max_bytes:int -> string -> (request, Error.t) result
(** Validate one request line.  Errors, in checking order: over
    [max_bytes] (default {!default_max_bytes}) → [Bad_request]; malformed
    JSON → [Parse] with the byte position; wrong/missing schema →
    [Unsupported_version]; a v2-only kind under the v1 tag, an unknown
    kind, a missing required field, or a type/positivity violation →
    [Bad_request]. *)

val ok_response : ?schema:string -> ?id:Json.t -> (string * Json.t) list -> string
(** Success line (no trailing newline): the standard envelope with the
    given extra fields appended after ["ok"].  [schema] defaults to
    {!schema} (v1); pass the request's tag to echo it. *)

val error_response : ?schema:string -> ?id:Json.t -> Error.t -> string
(** Failure line carrying [{"code";"message"}] from {!Error.code} /
    {!Error.message}. *)
