(* Minimal JSON: a recursive-descent parser with byte positions and a
   strictly one-line printer.  The protocol only ever needs objects of
   scalars plus the flow report embedded as an escaped string, so the
   representation stays deliberately small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- parser *)

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse (s : string) : (t, int * string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail !pos (Printf.sprintf "expected %C" c)
  in
  let hex4 at =
    if at + 4 > n then fail at "truncated \\u escape"
    else
      match int_of_string_opt ("0x" ^ String.sub s at 4) with
      | Some code -> code
      | None -> fail at "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents b
        | '\\' ->
            incr pos;
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'u' ->
                   let code = hex4 (!pos + 1) in
                   pos := !pos + 5;
                   (* Combine a UTF-16 surrogate pair when one follows. *)
                   if code >= 0xD800 && code <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                   then begin
                     let low = hex4 (!pos + 2) in
                     if low >= 0xDC00 && low <= 0xDFFF then begin
                       pos := !pos + 6;
                       add_utf8 b (0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00)))
                     end
                     else add_utf8 b code
                   end
                   else add_utf8 b code
               | c -> fail !pos (Printf.sprintf "invalid escape \\%c" c));
            go ()
        | c when Char.code c < 0x20 -> fail !pos "unescaped control character in string"
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    in
    let before = !pos in
    digits ();
    if !pos = before then fail start "malformed number";
    let is_float = ref false in
    (match peek () with
    | Some '.' ->
        is_float := true;
        incr pos;
        let before = !pos in
        digits ();
        if !pos = before then fail start "malformed number"
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        let before = !pos in
        digits ();
        if !pos = before then fail start "malformed number"
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start "malformed number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Integer literal beyond native int range: keep the value. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail start "malformed number")
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            fields ((key, v) :: acc)
        | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
        | _ -> fail !pos "expected ',' or '}'"
      in
      fields []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      List []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems (v :: acc)
        | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
        | _ -> fail !pos "expected ',' or ']'"
      in
      elems []
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) -> Error (pos, msg)

(* ------------------------------------------------------------ printer *)

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest %g that round-trips: stable, locale-independent, valid JSON. *)
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_to buf s;
        Buffer.add_char buf '"'
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_to buf k;
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---------------------------------------------------------- accessors *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj fields -> Some fields | _ -> None
