(** A resident timing session — the redesigned embedding API.

    One value of type {!t} owns everything that is worth keeping warm
    between requests: the technology, the characterization memo tables
    (populated on first use, shared process-wide), the cross-request Ceff
    result {!Rlc_flow.Cache}, a running {!Rlc_parallel.Pool} of worker
    domains, and a bounded store of resident incrementally timed designs
    ({!design_load} / {!flow_delta}).  The CLI's one-shot [flow] command
    and the {!Server} both drive this module — the same ingest, the same
    {!Request.t}, the same {!Rlc_flow.Report.json_string} — which is what
    guarantees the daemon's report payloads are byte-identical to the
    CLI's.

    Every operation returns [(_, Error.t) result]; the raising entry points
    of the lower layers are confined behind it. *)

module Config : sig
  type t = {
    tech : Rlc_devices.Tech.t;  (** default {!Rlc_devices.Tech.c018} *)
    jobs : int;
        (** worker domains of the resident pool; default 1 (the benched
            1-core container).  Request budgets are deadline-based
            ({!Rlc_errors.Deadline}) and work at any [jobs] count — the
            pool propagates the ambient deadline into its batches. *)
    dt : float;  (** default replay timestep, 0.5 ps *)
    use_cache : bool;  (** default true *)
    quantize_digits : int;  (** cache-key significant digits, default 9 *)
    slew_grid : float;  (** cache-key slew grid, default 0.1 ps *)
    default_size : float;  (** spec-less flow driver size, default 75X *)
    default_slew : float;  (** spec-less primary slew, default 100 ps *)
    design_capacity : int;
        (** resident designs kept by the store, default 8 (clamped to at
            least 1); loading beyond it evicts the least-recently-used
            handle *)
    obs : Rlc_obs.Obs.t;  (** default disabled *)
  }

  val default : t
end

type t

val create : ?config:Config.t -> unit -> t
(** Start a session: spawns the pool ([jobs - 1] domains) and creates an
    empty shared cache.  Characterization happens lazily on first use
    unless {!warm} is called. *)

val config : t -> Config.t
val close : t -> unit
(** Shut the pool down.  Idempotent; the session must not be used after. *)

val is_closed : t -> bool
(** Whether {!close} has run — i.e. the pool is no longer up.  The server's
    [health] readiness check reads this. *)

val with_session : ?config:Config.t -> (t -> 'a) -> 'a
(** [create], run, [close] (also on exceptions). *)

(** {2 Operations} *)

val ingest :
  t ->
  ?spef_name:string ->
  ?spec:string ->
  ?spec_name:string ->
  ?size:float ->
  ?slew:float ->
  spef:string ->
  unit ->
  (Rlc_flow.Design.t, Error.t) result
(** Parse SPEF (and spec, when given) text into a levelized design.
    [spef_name]/[spec_name] label {!Error.Parse} errors with the file the
    text came from, so messages render as [file:line: message].  Without a
    spec, every net becomes a primary input driven at [size] (default
    [Config.default_size]) and [slew] (default [Config.default_slew]). *)

type xtalk_request = { threshold : float; budget : float; alignments : int }
(** Crosstalk knobs as fractions of VDD plus the alignment-grid size —
    the subset of {!Rlc_xtalk.Xtalk.Config.t} a client may set; the pool,
    obs sink, and timestep always come from the session. *)

val default_xtalk : xtalk_request
(** {!Rlc_xtalk.Xtalk.Config.default}'s threshold (0.05), budget (0.25) and
    alignments (9). *)

(** The whole per-request knob surface of a flow as one typed record —
    what used to be eight optional arguments.  The CLI one-shot path, the
    v1 [flow] kind and the v2 [design_load] kind all decode into this, so
    byte-identity of their reports is structural.  Build requests with
    [{ Request.default with required = Some ... }]. *)
module Request : sig
  type t = {
    required : float option;  (** required time (seconds): adds slack *)
    use_cache : bool option;  (** default [Config.use_cache] *)
    dt : float option;  (** default [Config.dt] *)
    adaptive : Rlc_circuit.Engine.adaptive option;
        (** LTE-controlled stepping; part of the cache key *)
    progress : Rlc_obs.Progress.t option;
    xtalk : xtalk_request option;  (** run crosstalk analysis when set *)
    deadline : Rlc_errors.Deadline.t option;
        (** per-request budget; expiry escapes as
            {!Rlc_errors.Deadline.Expired} (the server owns the wire
            [Timeout] conversion) *)
    trace : string option;  (** request trace id for obs spans *)
  }

  val default : t
  (** Everything [None] — session defaults throughout. *)
end

type flow_outcome = {
  result : Rlc_flow.Flow.result;
  xtalk : Rlc_xtalk.Xtalk.result option;
      (** present when the request asked for crosstalk analysis *)
  report : string;
      (** {!Rlc_flow.Report.json_string} of [result] — the exact payload
          the CLI writes with [--json]; includes the [xtalk] fragment when
          the analysis ran *)
}

val flow : t -> Request.t -> Rlc_flow.Design.t -> (flow_outcome, Error.t) result
(** Run the full-design flow on the session's pool against the session's
    shared cache (so a repeated design is all cache hits; the per-run
    hit/miss deltas are in [result.stats]).  See {!Request.t} for the
    knobs.  The session is safe to drive from several server worker
    domains at once: the cache is sharded, the pool accepts concurrent
    batches, and request accounting is atomic. *)

(** {2 Incremental designs (ECO)} *)

val design_load :
  t ->
  ?spef_name:string ->
  ?spec:string ->
  ?spec_name:string ->
  ?size:float ->
  ?slew:float ->
  req:Request.t ->
  spef:string ->
  unit ->
  (string * flow_outcome, Error.t) result
(** Parse, ingest, and cold-time a design ({!Rlc_flow.Flow.time}), keep it
    resident, and return its handle (["d1"], ["d2"], ...) plus the full
    cold outcome.  The request — minus its per-call [deadline], [trace]
    and [progress] — is stored with the handle and governs every
    subsequent {!flow_delta}, so a handle's reports always come from one
    consistent configuration.  Loading beyond [Config.design_capacity]
    evicts the least-recently-used handle. *)

val flow_delta :
  t ->
  ?deadline:Rlc_errors.Deadline.t ->
  ?trace:string ->
  handle:string ->
  Rlc_flow.Delta.t ->
  (flow_outcome * Rlc_flow.Flow.delta_stats, Error.t) result
(** Apply an ECO delta to a resident design ({!Rlc_flow.Flow.retime}): only
    the changed nets, their fan-out cones, and (when the handle was loaded
    with [xtalk]) coupling partners of changed nets are re-solved; the
    rest reuse their stored solves.  The returned report is byte-identical
    to a cold run of the edited design under the handle's configuration.
    Deltas to one handle are serialized; different handles proceed
    concurrently.  An unknown handle is {!Error.Bad_request}. *)

val design_unload : t -> string -> (unit, Error.t) result
(** Drop a resident design.  Unknown handles are {!Error.Bad_request}. *)

val case :
  t ->
  ?slew_ps:float ->
  ?cl_ff:float ->
  length_mm:float ->
  width_um:float ->
  size:float ->
  unit ->
  (Rlc_ceff.Evaluate.case, Error.t) result
(** Build a single-net case from geometry ({!Rlc_ceff.Evaluate.case}). *)

val sweep_case :
  t -> ?dt:float -> Rlc_ceff.Evaluate.case -> (Rlc_ceff.Evaluate.comparison, Error.t) result
(** Model-vs-reference scoring of one case (a Figure-7 sweep cell). *)

val screen : t -> Rlc_ceff.Evaluate.case -> (Rlc_ceff.Driver_model.t, Error.t) result
(** Run the paper's model once and return it; the Eq. 9 inductance verdict
    is [model.screen]. *)

val warm : t -> float list -> (unit, Error.t) result
(** Pre-characterize driver sizes into the memo table, so the first
    request doesn't pay the characterization transient. *)

(** {2 Accounting} *)

type stats = {
  uptime_s : float;
  requests_served : int;
  requests_failed : int;
  cache_entries : int;  (** Ceff cache population *)
  cache_hits : int;  (** cumulative since [create] *)
  cache_misses : int;
}

type design_store_stats = {
  ds_handles : int;  (** designs currently resident *)
  ds_capacity : int;
  ds_nets : int;  (** nets held across all resident designs *)
  ds_evictions : int;  (** LRU evictions since [create] *)
}

val note : t -> ok:bool -> unit
(** Count one finished request (the server calls this once per line). *)

val stats : t -> stats

val design_stats : t -> design_store_stats
(** Design-store pressure, surfaced by the [stats]/[metrics] responses so
    [top] can show a v2 daemon's resident-design footprint. *)

val shard_stats : t -> Rlc_flow.Cache.shard_stat array
(** Per-shard population and hit/miss counters of the session's Ceff
    cache, index-ordered — the telemetry layer surfaces these in the
    [stats] and [metrics] responses. *)
