(** A resident timing session — the redesigned embedding API.

    One value of type {!t} owns everything that is worth keeping warm
    between requests: the technology, the characterization memo tables
    (populated on first use, shared process-wide), the cross-request Ceff
    result {!Rlc_flow.Cache}, and a running {!Rlc_flow.Pool} of worker
    domains.  The CLI's one-shot [flow] command and the {!Server} both
    drive this module — the same ingest, the same flow configuration, the
    same {!Rlc_flow.Report.json_string} — which is what guarantees the
    daemon's report payloads are byte-identical to the CLI's.

    Every operation returns [(_, Error.t) result]; the raising entry points
    of the lower layers are confined behind it. *)

module Config : sig
  type t = {
    tech : Rlc_devices.Tech.t;  (** default {!Rlc_devices.Tech.c018} *)
    jobs : int;
        (** worker domains of the resident pool; default 1 (the benched
            1-core container).  Request budgets are deadline-based
            ({!Rlc_errors.Deadline}) and work at any [jobs] count — the
            pool propagates the ambient deadline into its batches. *)
    dt : float;  (** default replay timestep, 0.5 ps *)
    use_cache : bool;  (** default true *)
    quantize_digits : int;  (** cache-key significant digits, default 9 *)
    slew_grid : float;  (** cache-key slew grid, default 0.1 ps *)
    default_size : float;  (** spec-less flow driver size, default 75X *)
    default_slew : float;  (** spec-less primary slew, default 100 ps *)
    obs : Rlc_obs.Obs.t;  (** default disabled *)
  }

  val default : t
end

type t

val create : ?config:Config.t -> unit -> t
(** Start a session: spawns the pool ([jobs - 1] domains) and creates an
    empty shared cache.  Characterization happens lazily on first use
    unless {!warm} is called. *)

val config : t -> Config.t
val close : t -> unit
(** Shut the pool down.  Idempotent; the session must not be used after. *)

val is_closed : t -> bool
(** Whether {!close} has run — i.e. the pool is no longer up.  The server's
    [health] readiness check reads this. *)

val with_session : ?config:Config.t -> (t -> 'a) -> 'a
(** [create], run, [close] (also on exceptions). *)

(** {2 Operations} *)

val ingest :
  t ->
  ?spef_name:string ->
  ?spec:string ->
  ?spec_name:string ->
  ?size:float ->
  ?slew:float ->
  spef:string ->
  unit ->
  (Rlc_flow.Design.t, Error.t) result
(** Parse SPEF (and spec, when given) text into a levelized design.
    [spef_name]/[spec_name] label {!Error.Parse} errors with the file the
    text came from, so messages render as [file:line: message].  Without a
    spec, every net becomes a primary input driven at [size] (default
    [Config.default_size]) and [slew] (default [Config.default_slew]). *)

type xtalk_request = { threshold : float; budget : float; alignments : int }
(** Crosstalk knobs as fractions of VDD plus the alignment-grid size —
    the subset of {!Rlc_xtalk.Xtalk.Config.t} a client may set; the pool,
    obs sink, and timestep always come from the session. *)

val default_xtalk : xtalk_request
(** {!Rlc_xtalk.Xtalk.Config.default}'s threshold (0.05), budget (0.25) and
    alignments (9). *)

type flow_outcome = {
  result : Rlc_flow.Flow.result;
  xtalk : Rlc_xtalk.Xtalk.result option;
      (** present when the request asked for crosstalk analysis *)
  report : string;
      (** {!Rlc_flow.Report.json_string} of [result] — the exact payload
          the CLI writes with [--json]; includes the [xtalk] fragment when
          the analysis ran *)
}

val flow :
  t ->
  ?required:float ->
  ?use_cache:bool ->
  ?dt:float ->
  ?adaptive:Rlc_circuit.Engine.adaptive ->
  ?progress:Rlc_obs.Progress.t ->
  ?xtalk:xtalk_request ->
  ?deadline:Rlc_errors.Deadline.t ->
  ?trace:string ->
  Rlc_flow.Design.t ->
  (flow_outcome, Error.t) result
(** Run the full-design flow on the session's pool against the session's
    shared cache (so a repeated design is all cache hits; the per-run
    hit/miss deltas are in [result.stats]).  [required] (seconds) adds the
    slack block to the report.  [adaptive] switches the far-end replays to
    LTE-controlled stepping; its parameters are part of the cache key, so
    fixed-step and adaptive requests never share entries.  [xtalk] runs
    {!Rlc_xtalk.Xtalk.analyze} over the flow result on the same pool (the
    Ceff cache is not involved) and embeds the fragment in [report].
    [deadline] threads the per-request budget into [Flow.Config.deadline];
    expiry escapes as {!Rlc_errors.Deadline.Expired} (deliberately not
    mapped here — the server owns the wire [Timeout] conversion).  [trace]
    threads the request's trace id into [Flow.Config.trace] so every span
    the run records carries it (reports are unaffected).  The
    session is safe to drive from several server worker domains at once:
    the cache is sharded, the pool accepts concurrent batches, and request
    accounting is atomic. *)

val case :
  t ->
  ?slew_ps:float ->
  ?cl_ff:float ->
  length_mm:float ->
  width_um:float ->
  size:float ->
  unit ->
  (Rlc_ceff.Evaluate.case, Error.t) result
(** Build a single-net case from geometry ({!Rlc_ceff.Evaluate.case}). *)

val sweep_case :
  t -> ?dt:float -> Rlc_ceff.Evaluate.case -> (Rlc_ceff.Evaluate.comparison, Error.t) result
(** Model-vs-reference scoring of one case (a Figure-7 sweep cell). *)

val screen : t -> Rlc_ceff.Evaluate.case -> (Rlc_ceff.Driver_model.t, Error.t) result
(** Run the paper's model once and return it; the Eq. 9 inductance verdict
    is [model.screen]. *)

val warm : t -> float list -> (unit, Error.t) result
(** Pre-characterize driver sizes into the memo table, so the first
    request doesn't pay the characterization transient. *)

(** {2 Accounting} *)

type stats = {
  uptime_s : float;
  requests_served : int;
  requests_failed : int;
  cache_entries : int;  (** Ceff cache population *)
  cache_hits : int;  (** cumulative since [create] *)
  cache_misses : int;
}

val note : t -> ok:bool -> unit
(** Count one finished request (the server calls this once per line). *)

val stats : t -> stats

val shard_stats : t -> Rlc_flow.Cache.shard_stat array
(** Per-shard population and hit/miss counters of the session's Ceff
    cache, index-ordered — the telemetry layer surfaces these in the
    [stats] and [metrics] responses. *)
