(** Minimal JSON for the service wire protocol.

    A hand-rolled parser/printer (the toolchain has no JSON dependency):
    the parser reports the byte position of the first error; the printer
    always emits exactly one line, which is what lets responses travel over
    a newline-delimited transport with the multi-line flow report embedded
    as an escaped string field. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** field order preserved *)

val parse : string -> (t, int * string) result
(** Whole-string parse; [Error (byte_pos, msg)] on malformed input
    (including trailing garbage after the value).  Accepts the full JSON
    grammar: nested containers, escapes, [\u] with surrogate pairs
    (decoded to UTF-8), scientific notation.  Number literals with a
    fraction or exponent become {!Float}, the rest {!Int}. *)

val to_string : t -> string
(** One-line rendering, no trailing newline.  Strings escape ['"'], ['\\']
    and control characters; non-finite floats print as [null] (JSON has no
    NaN/inf); float formatting is the shortest [%g] that round-trips, so
    values survive a parse/print cycle bit-exactly. *)

(** {2 Accessors} — [None] on a type mismatch, never an exception. *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] on other constructors or a missing key. *)

val get_string : t -> string option
val get_bool : t -> bool option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts {!Int} too (a request writing [100] where [100.0] is meant
    must not be rejected). *)

val get_list : t -> t list option
val get_obj : t -> (string * t) list option
