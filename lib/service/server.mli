(** The daemon's request loop: {!Protocol} lines in, {!Protocol} lines
    out, one {!Session} underneath.

    Requests are served in order {e per connection} and in isolation — a
    request that fails in {e any} way (malformed JSON, oversized line, bad
    design, an exception from the numeric layers, an exceeded time budget)
    produces a typed error response and the daemon keeps serving.

    {b Concurrency.}  The Unix-socket transport multiplexes every client
    through one listener: decoded requests enter a bounded admission
    queue and [workers] domains drain it, writing each response back on
    its originating connection.  A connection has at most one request in
    flight at a time, so responses arrive in request order per client
    while different clients' requests run concurrently.  When the queue
    is full, admission fails immediately with the wire-stable [timeout]
    error code — overload is a fast typed rejection, not unbounded
    latency.  Pipe mode ({!serve_channels}) stays strictly serial.

    {b Budgets.}  The per-request wall-clock budget (default
    {!default_timeout_s}, overridable per request with ["timeout_ms"]) is
    a per-request {!Rlc_errors.Deadline}: checked when a queued request
    reaches a worker (entries that expired while waiting are answered
    without running), installed ambiently around dispatch, threaded into
    [Flow.Config.deadline], propagated across pool domains, and polled by
    the engine's step loops.  Expiry surfaces as the same [timeout] error
    the old ITIMER_REAL/SIGALRM mechanism produced, but works with any
    [jobs] count and any number of concurrent requests. *)

(** {b Incremental designs.}  Under the ["rlc-service/2"] schema the
    daemon is a long-lived incremental timer: [design_load] times a design
    cold and keeps it resident in the session's bounded LRU store,
    [flow_delta] re-times only the edited nets' fan-out cones (answering
    with the flow fields plus [retimed_nets]/[reused_nets]), and
    [design_unload] drops the handle.  Deltas to one handle serialize;
    different handles run concurrently on the worker pool.  v1 request
    lines are answered byte-for-byte as before — responses echo the
    request's schema tag. *)

type t

val default_timeout_s : float
(** 60 seconds. *)

val default_workers : int
(** 1 — serial service, the right default for the benched 1-core box. *)

val default_queue_capacity : int
(** 64 queued requests. *)

val default_tick_period_s : float
(** 1 second between telemetry window samples. *)

val create :
  ?timeout_s:float ->
  ?max_request_bytes:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?backlog:int ->
  ?slow_ms:float ->
  ?slow_channel:out_channel ->
  ?tick_period_s:float ->
  ?window_capacity:int ->
  Session.t ->
  t
(** Wrap a session.  [timeout_s <= 0] or [infinity] disables the request
    timeout; [max_request_bytes] defaults to
    {!Protocol.default_max_bytes}.  [workers] (default
    {!default_workers}) is the number of executor domains spawned by
    {!serve_unix}; [queue_capacity] (default {!default_queue_capacity})
    bounds the admission queue; [backlog] is the kernel listen queue and
    defaults to [queue_capacity].  All three are clamped to at least 1.

    [slow_ms] turns on the slow-request log: any request whose execution
    wall time reaches the threshold (so [~slow_ms:0.] logs every request)
    emits one JSON line on [slow_channel] (default [stderr]) with fields
    [slow_request], [trace], [kind], [queue_wait_ms], [wall_ms], [ok],
    [worker] (executor domain index, [-1] for requests served on the
    serving loop itself), and [cache_hits] when the response carries it.

    [tick_period_s] (default {!default_tick_period_s}) is the telemetry
    ticker period and [window_capacity] (default 60 samples) the rolling
    window length; both only matter when the session's obs sink is
    enabled.  The session is borrowed: closing it after the serve loop
    returns is the caller's job. *)

val window : t -> Rlc_obs.Window.t
(** The rolling telemetry window the serve loop's ticker feeds — what the
    [metrics]/[health] kinds read; exposed for embedders (e.g. the bench)
    that want the same digest without a socket round-trip. *)

val stop : t -> unit
(** Ask the serve loop to exit after in-flight requests (what the
    [SIGTERM] handler calls).  Safe from any domain: wakes the listener's
    select via its self-pipe. *)

val stopped : t -> bool

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Serve exactly one request line and return the one-line response
    (without the trailing newline) plus whether the caller should keep
    serving ([`Stop] after a [shutdown] request).  Never raises; this is
    the transport-free core the tests and the bench drive directly. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Pipe mode: read request lines until EOF, a [shutdown] request, or
    {!stop}; write one flushed response line each.  Blank lines are
    skipped.  Strictly serial.  Installs the [SIGTERM]/[SIGPIPE]
    handlers. *)

val serve_unix : t -> path:string -> unit
(** Unix-domain-socket mode: bind [path] (an existing socket file is
    replaced), listen with the configured [backlog], and serve many
    clients concurrently — listener select loop, bounded admission queue,
    [workers] executor domains (see the module doc).  [EINTR] from
    [accept]/[select]/[read]/[write] is retried or drained cleanly, so a
    SIGTERM-time signal cannot escape as [Unix_error].  A [shutdown]
    request (or {!stop}, or SIGTERM) stops admission, drains in-flight
    work, answers anything still queued with a typed [timeout], joins the
    workers, and unlinks the socket file on the way out.

    With [obs] enabled on the session, serving records
    ["service.connections"], ["service.admitted"],
    ["service.rejected_queue_full"], ["service.rejected_expired"],
    ["service.timeouts"], ["service.requests"] and per-kind
    ["service.requests.<kind>"] counters, ["service.queue_depth"] /
    ["service.queue_wait_s"] / ["service.request_s"] histograms, and a
    ["service.request"] span per executed request (args: worker id,
    request kind, trace id).  Inline [metrics]/[health] scrapes are
    excluded from ["service.requests"] and ["service.request_s"] — the
    window's req/s and latency quantiles measure real work, not scraper
    overhead — but still appear in their per-kind counters and in the
    exact session totals.  A trace id is minted per request at
    admission and installed ambiently for its whole execution, so every
    span the request records — down through flow, pool batches, and the
    engine — carries a [("trace", id)] arg.  The listener also samples
    the obs counters into the rolling telemetry {!window} every
    [tick_period_s]; the [metrics] and [health] kinds are answered inline
    by the listener (never queued), so they keep responding while the
    admission queue is saturated. *)
