(** The daemon's request loop: {!Protocol} lines in, {!Protocol} lines
    out, one {!Session} underneath.

    Requests are served strictly in order and in isolation — a request that
    fails in {e any} way (malformed JSON, oversized line, bad design, an
    exception from the numeric layers, an exceeded time budget) produces a
    typed error response and the daemon keeps serving the next line.

    The per-request wall-clock budget (default {!default_timeout_s},
    overridable per request with ["timeout_ms"]) is enforced with
    [ITIMER_REAL]/[SIGALRM]; the signal can only interrupt work running in
    the serving domain, which is why {!Session.Config.default} keeps
    [jobs = 1] for daemon use. *)

type t

val default_timeout_s : float
(** 60 seconds. *)

val create : ?timeout_s:float -> ?max_request_bytes:int -> Session.t -> t
(** Wrap a session.  [timeout_s <= 0] or [infinity] disables the request
    timeout; [max_request_bytes] defaults to
    {!Protocol.default_max_bytes}.  The session is borrowed: closing it
    after the serve loop returns is the caller's job. *)

val stop : t -> unit
(** Ask the serve loop to exit after the in-flight request (what the
    [SIGTERM] handler calls). *)

val stopped : t -> bool

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Serve exactly one request line and return the one-line response
    (without the trailing newline) plus whether the caller should keep
    serving ([`Stop] after a [shutdown] request).  Never raises; this is
    the transport-free core the tests and the bench drive directly. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Pipe mode: read request lines until EOF, a [shutdown] request, or
    {!stop}; write one flushed response line each.  Blank lines are
    skipped.  Installs the [SIGALRM]/[SIGTERM]/[SIGPIPE] handlers. *)

val serve_unix : t -> path:string -> unit
(** Unix-domain-socket mode: bind [path] (an existing socket file is
    replaced), accept one client at a time, and run the pipe-mode loop on
    each connection until it disconnects.  A [shutdown] request stops the
    accept loop; the socket file is unlinked on the way out. *)
