(** The service's error type — a re-export of {!Rlc_errors.Error} so that
    embedders only ever need to open [Rlc_service].  Every failure a request
    can produce is one of these constructors; {!code} is the stable wire
    identifier carried in error responses and {!message} the human text. *)

include module type of struct
  include Rlc_errors.Error
end
