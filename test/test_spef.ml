(* SPEF-subset parser tests: header units, D_NET sections, error paths,
   round-trip, and tree conversion feeding the moment engine. *)

let sample =
  {|*SPEF "IEEE 1481-1998"
*DESIGN "demo_chip"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 PH

// a 2-segment RLC net with a side branch
*D_NET net1 1300
*CONN
*P drv O
*P rcv I
*CAP
1 net1:1 400
2 net1:2 500
3 rcv 400
*RES
1 drv net1:1 25.0
2 net1:1 net1:2 25.0
3 net1:2 rcv 10.0
*INDUC
1 drv net1:1 2000
2 net1:1 net1:2 2000
*END
|}

(* Typed-error parse, flattened to the message string the assertions below
   inspect. *)
let parse_str src = Result.map_error Rlc_errors.Error.message (Rlc_spef.Spef.parse_res src)
let parsed = lazy (match parse_str sample with Ok t -> t | Error e -> failwith e)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_header () =
  let t = Lazy.force parsed in
  Alcotest.(check string) "design" "demo_chip" t.Rlc_spef.Spef.design;
  check_float ~eps:1e-30 "c unit" 1e-15 t.Rlc_spef.Spef.units.Rlc_spef.Spef.c_scale;
  check_float ~eps:1e-30 "l unit" 1e-12 t.Rlc_spef.Spef.units.Rlc_spef.Spef.l_scale

let test_net_contents () =
  let t = Lazy.force parsed in
  match Rlc_spef.Spef.find_net t "net1" with
  | None -> Alcotest.fail "net1 missing"
  | Some net ->
      Alcotest.(check int) "conns" 2 (List.length net.Rlc_spef.Spef.conns);
      Alcotest.(check int) "caps" 3 (List.length net.Rlc_spef.Spef.caps);
      Alcotest.(check int) "branches" 5 (List.length net.Rlc_spef.Spef.branches);
      check_float ~eps:1e-22 "declared total cap" 1.3e-12 net.Rlc_spef.Spef.total_cap;
      check_float ~eps:1e-20 "summed cap" 1.3e-12 (Rlc_spef.Spef.net_total_cap net);
      (* Values are scaled to SI. *)
      let r1 = List.find (fun b -> b.Rlc_spef.Spef.kind = Rlc_spef.Spef.Res && b.Rlc_spef.Spef.b_id = 1) net.Rlc_spef.Spef.branches in
      check_float "r in ohms" 25. r1.Rlc_spef.Spef.value;
      let l1 = List.find (fun b -> b.Rlc_spef.Spef.kind = Rlc_spef.Spef.Induc && b.Rlc_spef.Spef.b_id = 1) net.Rlc_spef.Spef.branches in
      check_float ~eps:1e-18 "l in henries" 2e-9 l1.Rlc_spef.Spef.value

let test_roundtrip () =
  let t = Lazy.force parsed in
  match parse_str (Rlc_spef.Spef.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check string) "design" t.Rlc_spef.Spef.design t'.Rlc_spef.Spef.design;
      let n = Option.get (Rlc_spef.Spef.find_net t "net1") and n' = Option.get (Rlc_spef.Spef.find_net t' "net1") in
      Alcotest.(check int) "branches" (List.length n.Rlc_spef.Spef.branches) (List.length n'.Rlc_spef.Spef.branches);
      check_float ~eps:1e-22 "total cap preserved" (Rlc_spef.Spef.net_total_cap n) (Rlc_spef.Spef.net_total_cap n')

let test_to_tree () =
  let t = Lazy.force parsed in
  let net = Option.get (Rlc_spef.Spef.find_net t "net1") in
  match Rlc_spef.Spef.to_tree net ~root:"drv" with
  | Error e -> Alcotest.fail e
  | Ok tree ->
      Alcotest.(check int) "nodes" 4 (Rlc_moments.Tree.node_count tree);
      check_float ~eps:1e-20 "tree cap = net cap" 1.3e-12 (Rlc_moments.Tree.total_cap tree);
      (* Moments of the parsed net behave like any RLC tree. *)
      let m = Rlc_moments.Moments.driving_point ~order:3 tree in
      check_float ~eps:1e-20 "m1 = total cap" 1.3e-12 m.(1);
      Alcotest.(check bool) "m2 negative" true (m.(2) < 0.)

let test_to_tree_from_receiver () =
  (* Rooting at the receiver must also work (tree re-rooted). *)
  let t = Lazy.force parsed in
  let net = Option.get (Rlc_spef.Spef.find_net t "net1") in
  match Rlc_spef.Spef.to_tree net ~root:"rcv" with
  | Error e -> Alcotest.fail e
  | Ok tree -> check_float ~eps:1e-20 "same caps" 1.3e-12 (Rlc_moments.Tree.total_cap tree)

let test_coupling_cap () =
  (* 4-token *CAP entries are typed cross-net couplings, scaled like
     grounded caps and kept out of net_total_cap / to_tree. *)
  let src =
    "*C_UNIT 1 FF\n*D_NET n 2.0\n*CAP\n1 a 1.0\n2 b 1.0\n3 a x 3.0\n*RES\n1 a b 1.0\n*END\n"
  in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  let net = List.hd t.Rlc_spef.Spef.nets in
  Alcotest.(check int) "grounded caps" 2 (List.length net.Rlc_spef.Spef.caps);
  (match net.Rlc_spef.Spef.x_caps with
  | [ x ] ->
      Alcotest.(check string) "node1" "a" x.Rlc_spef.Spef.x_node1;
      Alcotest.(check string) "node2" "x" x.Rlc_spef.Spef.x_node2;
      check_float ~eps:1e-22 "scaled to SI" 3e-15 x.Rlc_spef.Spef.x_farads
  | l -> Alcotest.failf "expected 1 coupling, got %d" (List.length l));
  (* Couplings are not grounded cap: totals unchanged, tree unchanged. *)
  check_float ~eps:1e-22 "net_total_cap ignores couplings" 2e-15
    (Rlc_spef.Spef.net_total_cap net);
  match Rlc_spef.Spef.to_tree net ~root:"a" with
  | Error e -> Alcotest.fail e
  | Ok tree ->
      Alcotest.(check int) "tree nodes" 2 (Rlc_moments.Tree.node_count tree);
      check_float ~eps:1e-22 "tree cap" 2e-15 (Rlc_moments.Tree.total_cap tree)

let test_coupling_roundtrip () =
  let src =
    "*C_UNIT 1 FF\n*D_NET n 2.0\n*CAP\n1 a 1.0\n2 b 1.0\n3 a x 3.0\n*RES\n1 a b 1.0\n*END\n"
  in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  let t' =
    match parse_str (Rlc_spef.Spef.to_string t) with Ok t -> t | Error e -> failwith e
  in
  let x = List.hd (List.hd t'.Rlc_spef.Spef.nets).Rlc_spef.Spef.x_caps in
  Alcotest.(check string) "node2 survives round-trip" "x" x.Rlc_spef.Spef.x_node2;
  check_float ~eps:1e-22 "value survives round-trip" 3e-15 x.Rlc_spef.Spef.x_farads

let test_error_duplicate_coupling () =
  (* The same unordered node pair twice — even split across the two nets'
     sections — is a modeling error, reported with both lines. *)
  let src =
    "*D_NET n 1.0\n*CAP\n1 a 1.0\n2 a x 3.0\n*END\n*D_NET m 1.0\n*CAP\n1 x 1.0\n2 x a 4.0\n*END\n"
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match parse_str src with
  | Ok _ -> Alcotest.fail "duplicate coupling accepted"
  | Error e -> Alcotest.(check bool) "mentions duplicate" true (contains e "duplicate")

let test_error_coupling_same_node () =
  match parse_str "*D_NET n 1.0\n*CAP\n1 a a 3.0\n*END\n" with
  | Ok _ -> Alcotest.fail "self-coupling accepted"
  | Error _ -> ()

let test_error_mutual () =
  match parse_str "*D_NET n 1.0\n*K 1 a b c 0.5\n*END\n" with
  | Ok _ -> Alcotest.fail "mutual accepted"
  | Error _ -> ()

let test_error_unterminated () =
  match parse_str "*D_NET n 1.0\n*CAP\n1 a 3.0\n" with
  | Ok _ -> Alcotest.fail "unterminated net accepted"
  | Error _ -> ()

let test_error_loop () =
  let src =
    "*D_NET n 1.0\n*CAP\n1 a 1.0\n2 b 1.0\n3 c 1.0\n*RES\n1 a b 1.0\n2 b c 1.0\n3 c a 1.0\n*END\n"
  in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  match Rlc_spef.Spef.to_tree (List.hd t.Rlc_spef.Spef.nets) ~root:"a" with
  | Ok _ -> Alcotest.fail "loop accepted"
  | Error e -> Alcotest.(check bool) "mentions loop" true (String.length e > 0)

let test_error_bad_root () =
  let t = Lazy.force parsed in
  let net = Option.get (Rlc_spef.Spef.find_net t "net1") in
  match Rlc_spef.Spef.to_tree net ~root:"nonexistent" with
  | Ok _ -> Alcotest.fail "bad root accepted"
  | Error _ -> ()

let test_l_only_branch_rejected () =
  let src = "*D_NET n 1.0\n*CAP\n1 a 1.0\n2 b 1.0\n*INDUC\n1 a b 100\n*END\n" in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  match Rlc_spef.Spef.to_tree (List.hd t.Rlc_spef.Spef.nets) ~root:"a" with
  | Ok _ -> Alcotest.fail "L-only branch accepted"
  | Error _ -> ()

let test_parallel_merge () =
  (* Two parallel 50-Ohm resistors between the same nodes merge to 25. *)
  let src = "*D_NET n 1.0\n*CAP\n1 a 1.0\n2 b 1.0\n*RES\n1 a b 50\n2 a b 50\n*END\n" in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  match Rlc_spef.Spef.to_tree (List.hd t.Rlc_spef.Spef.nets) ~root:"a" with
  | Error e -> Alcotest.fail e
  | Ok tree -> (
      match Rlc_moments.Tree.children tree with
      | [ (r, _, _) ] -> check_float "parallel R" 25. r
      | _ -> Alcotest.fail "expected one merged branch")

let test_multi_net_out_of_order () =
  (* Several D_NET blocks in one file, deliberately not in topological
     order; parsing preserves every block and find_net sees them all. *)
  let block name =
    Printf.sprintf
      "*D_NET %s 2.0\n*CONN\n*P %s_drv O\n*CAP\n1 %s_a 1.0\n2 %s_b 1.0\n*RES\n1 %s_drv %s_a \
       5\n2 %s_a %s_b 5\n*END\n"
      name name name name name name name name
  in
  let src = "*SPEF \"x\"\n" ^ block "sink2" ^ block "root0" ^ block "mid1" in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  Alcotest.(check int) "three nets" 3 (List.length t.Rlc_spef.Spef.nets);
  List.iter
    (fun name ->
      match Rlc_spef.Spef.find_net t name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some net ->
          check_float ~eps:1e-25 "each block kept its caps" 2e-15
            (Rlc_spef.Spef.net_total_cap net))
    [ "root0"; "mid1"; "sink2" ]

let test_duplicate_net_rejected () =
  let block = "*D_NET dup 1.0\n*CAP\n1 a 1.0\n*END\n" in
  match parse_str (block ^ block) with
  | Ok _ -> Alcotest.fail "duplicate *D_NET accepted"
  | Error e ->
      Alcotest.(check bool) "names the net" true
        (String.length e > 0
        &&
        let rec contains i =
          i + 3 <= String.length e && (String.sub e i 3 = "dup" || contains (i + 1))
        in
        contains 0)

let test_driver_conn () =
  let t = Lazy.force parsed in
  let net = Option.get (Rlc_spef.Spef.find_net t "net1") in
  (match Rlc_spef.Spef.driver_conn net with
  | Ok c -> Alcotest.(check string) "driver pin" "drv" c.Rlc_spef.Spef.pin
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one load conn" 1 (List.length (Rlc_spef.Spef.load_conns net));
  (* No Output conn at all. *)
  let src = "*D_NET n 1.0\n*CONN\n*P rcv I\n*CAP\n1 a 1.0\n*END\n" in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  (match Rlc_spef.Spef.driver_conn (List.hd t.Rlc_spef.Spef.nets) with
  | Ok _ -> Alcotest.fail "accepted net with no Output conn"
  | Error _ -> ());
  (* Two Output conns is ambiguous. *)
  let src = "*D_NET n 1.0\n*CONN\n*P d1 O\n*P d2 O\n*CAP\n1 a 1.0\n*END\n" in
  let t = match parse_str src with Ok t -> t | Error e -> failwith e in
  match Rlc_spef.Spef.driver_conn (List.hd t.Rlc_spef.Spef.nets) with
  | Ok _ -> Alcotest.fail "accepted net with two Output conns"
  | Error _ -> ()

let test_extra_caps () =
  let t = Lazy.force parsed in
  let net = Option.get (Rlc_spef.Spef.find_net t "net1") in
  let bare = Result.get_ok (Rlc_spef.Spef.to_tree net ~root:"drv") in
  let loaded =
    Result.get_ok (Rlc_spef.Spef.to_tree ~extra_caps:[ ("rcv", 10e-15) ] net ~root:"drv")
  in
  check_float ~eps:1e-20 "extra cap lands in the tree" (1.3e-12 +. 10e-15)
    (Rlc_moments.Tree.total_cap loaded);
  (* More far-end cap slows the first moment down. *)
  let m = Rlc_moments.Moments.driving_point ~order:1 bare
  and m' = Rlc_moments.Moments.driving_point ~order:1 loaded in
  Alcotest.(check bool) "m1 grows" true (m'.(1) > m.(1));
  (* Unknown attachment node is an error, not a silent drop. *)
  match Rlc_spef.Spef.to_tree ~extra_caps:[ ("nowhere", 1e-15) ] net ~root:"drv" with
  | Ok _ -> Alcotest.fail "extra cap on unknown node accepted"
  | Error _ -> ()

let test_uniform_line_spef_matches_analytic () =
  (* Emit a chain net equivalent to a uniform line and compare the parsed
     tree's moments against the distributed ABCD computation. *)
  let n = 60 in
  let r_tot = 72.44 and l_tot = 5.14e-9 and c_tot = 1.10e-12 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"gen\"\n*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 PH\n*D_NET line 0\n*CAP\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "%d n%d %.8g\n" i i (c_tot /. float_of_int n /. 1e-15))
  done;
  Buffer.add_string buf "*RES\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "%d n%d n%d %.8g\n" i (i - 1) i (r_tot /. float_of_int n))
  done;
  Buffer.add_string buf "*INDUC\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "%d n%d n%d %.8g\n" i (i - 1) i (l_tot /. float_of_int n /. 1e-12))
  done;
  Buffer.add_string buf "*END\n";
  let t = match parse_str (Buffer.contents buf) with Ok t -> t | Error e -> failwith e in
  let tree = Result.get_ok (Rlc_spef.Spef.to_tree (List.hd t.Rlc_spef.Spef.nets) ~root:"n0") in
  let m_tree = Rlc_moments.Moments.driving_point ~order:3 tree in
  let line = Rlc_tline.Line.of_totals ~r:r_tot ~l:l_tot ~c:c_tot ~length:5e-3 in
  let m_exact = Rlc_moments.Moments.of_line ~order:3 line ~cl:0. in
  for k = 1 to 3 do
    let rel = Float.abs ((m_tree.(k) -. m_exact.(k)) /. m_exact.(k)) in
    Alcotest.(check bool) (Printf.sprintf "m%d within discretization error" k) true (rel < 0.05)
  done

let () =
  Alcotest.run "rlc_spef"
    [
      ( "parse",
        [
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "net contents" `Quick test_net_contents;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "coupling cap" `Quick test_coupling_cap;
          Alcotest.test_case "coupling roundtrip" `Quick test_coupling_roundtrip;
          Alcotest.test_case "multi-net out of order" `Quick test_multi_net_out_of_order;
          Alcotest.test_case "duplicate net rejected" `Quick test_duplicate_net_rejected;
          Alcotest.test_case "driver conn" `Quick test_driver_conn;
        ] );
      ( "tree",
        [
          Alcotest.test_case "to_tree" `Quick test_to_tree;
          Alcotest.test_case "re-rooted" `Quick test_to_tree_from_receiver;
          Alcotest.test_case "parallel merge" `Quick test_parallel_merge;
          Alcotest.test_case "extra caps" `Quick test_extra_caps;
          Alcotest.test_case "uniform line vs analytic" `Quick test_uniform_line_spef_matches_analytic;
        ] );
      ( "errors",
        [
          Alcotest.test_case "duplicate coupling" `Quick test_error_duplicate_coupling;
          Alcotest.test_case "self coupling" `Quick test_error_coupling_same_node;
          Alcotest.test_case "mutual inductance" `Quick test_error_mutual;
          Alcotest.test_case "unterminated" `Quick test_error_unterminated;
          Alcotest.test_case "resistive loop" `Quick test_error_loop;
          Alcotest.test_case "bad root" `Quick test_error_bad_root;
          Alcotest.test_case "L-only branch" `Quick test_l_only_branch_rejected;
        ] );
    ]
