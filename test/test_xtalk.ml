(* Rlc_xtalk tests: the closed-form screen's limits and calibration, the
   alignment sweep's monotonicity, violation gating, and the determinism
   guarantees (byte-identical classification and reports across jobs; the
   isolated report untouched when the analysis is off). *)

module Design = Rlc_flow.Design
module Flow = Rlc_flow.Flow
module Report = Rlc_flow.Report
module Noise = Rlc_xtalk.Noise
module Xtalk = Rlc_xtalk.Xtalk
module Session = Rlc_service.Session

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs from _build/default/test/ (examples one up, staged by
   the (deps ...) in test/dune); dune exec from the project root. *)
let fixture name =
  if Sys.file_exists (Filename.concat "examples" name) then Filename.concat "examples" name
  else Filename.concat "../examples" name

let coupled_spef = fixture "bus8_coupled.spef"
let bus8_spec = fixture "bus8.spec"

let design =
  lazy
    (let spef =
       match Rlc_spef.Spef.parse_res (read_file coupled_spef) with
       | Ok s -> s
       | Error e -> failwith (Rlc_errors.Error.message e)
     in
     let spec =
       match Rlc_flow.Spec.parse_res (read_file bus8_spec) with
       | Ok s -> s
       | Error e -> failwith (Rlc_errors.Error.message e)
     in
     match Design.ingest ~spef ~spec () with Ok d -> d | Error e -> failwith e)

let flow = lazy (Flow.run_cfg Flow.Config.default (Lazy.force design))

(* One shared full-grid analysis; cheap variants re-analyze with their own
   knobs. *)
let analyzed = lazy (Xtalk.analyze (Lazy.force flow))

let analyze_with ?(alignments = 1) ?(threshold = Xtalk.Config.default.Xtalk.Config.threshold)
    ?(budget = Xtalk.Config.default.Xtalk.Config.budget) ?jobs () =
  Xtalk.analyze
    ~config:
      { Xtalk.Config.default with Xtalk.Config.threshold; budget; alignments; jobs }
    (Lazy.force flow)

(* ------------------------------------------------------- closed form *)

let test_noise_limits () =
  let vdd = 1.8 and rv = 100. and cv = 400e-15 and cc = 100e-15 in
  (* Fast aggressor: charge sharing cc / (cv + cc). *)
  let fast = Noise.estimate ~vdd ~tr:1e-18 ~rv ~cv ~cc ~damping:2. in
  Alcotest.(check (float 1e-3))
    "tr -> 0 recovers charge sharing"
    (vdd *. cc /. (cv +. cc))
    fast.Noise.rc_peak;
  (* Slow aggressor: the Devgan-style bound rv * cc / tr. *)
  let tr = 10e-9 in
  let slow = Noise.estimate ~vdd ~tr ~rv ~cv ~cc ~damping:2. in
  Alcotest.(check (float 1e-4))
    "slow ramp recovers the Devgan bound"
    (vdd *. rv *. cc /. tr)
    slow.Noise.rc_peak;
  (* Overdamped victims get no amplification; underdamped at most 2x. *)
  Alcotest.(check (float 0.)) "overdamped amplification" 1. slow.Noise.amplification;
  let ringing = Noise.estimate ~vdd ~tr:50e-12 ~rv ~cv ~cc ~damping:0.05 in
  Alcotest.(check bool) "underdamped amplifies" true (ringing.Noise.amplification > 1.);
  Alcotest.(check bool) "amplification clamped" true (ringing.Noise.amplification <= 2.);
  (* The peak never exceeds the rail. *)
  let huge = Noise.estimate ~vdd ~tr:1e-15 ~rv:1e5 ~cv:1e-18 ~cc:1e-12 ~damping:0.01 in
  Alcotest.(check bool) "clamped to vdd" true (huge.Noise.v_peak <= vdd)

let test_noise_monotone_in_cc () =
  let est cc = (Noise.estimate ~vdd:1.8 ~tr:80e-12 ~rv:150. ~cv:500e-15 ~cc ~damping:1.5).Noise.v_peak in
  let prev = ref 0. in
  List.iter
    (fun cc ->
      let v = est cc in
      Alcotest.(check bool) "more coupling, more noise" true (v >= !prev);
      prev := v)
    [ 1e-15; 10e-15; 50e-15; 100e-15; 300e-15 ]

let test_noise_bad_args () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "tr must be positive" true
    (raises (fun () -> Noise.estimate ~vdd:1.8 ~tr:0. ~rv:100. ~cv:1e-15 ~cc:1e-15 ~damping:1.));
  Alcotest.(check bool) "cv must be non-negative" true
    (raises (fun () ->
         Noise.estimate ~vdd:1.8 ~tr:1e-12 ~rv:100. ~cv:(-1e-15) ~cc:1e-15 ~damping:1.))

(* ------------------------------------------------- screen vs transient *)

(* The calibration claim of Noise's doc: per simulated victim, the summed
   closed-form estimates of its surviving pairs land within a factor of 3
   of the coupled-cluster transient peak. *)
let test_screen_vs_simulation () =
  let r = Lazy.force analyzed in
  let checked = ref 0 in
  Array.iter
    (fun (v : Xtalk.victim_result) ->
      match v.Xtalk.noise_sim with
      | None -> ()
      | Some sim ->
          incr checked;
          let est_sum =
            List.fold_left
              (fun acc (p : Xtalk.pair) ->
                if p.Xtalk.screened then acc else acc +. p.Xtalk.est.Noise.v_peak)
              0. v.Xtalk.pairs
          in
          Alcotest.(check bool)
            (Printf.sprintf "victim %d: sim %.1f mV within 3x of est %.1f mV" v.Xtalk.victim
               (sim /. 1e-3) (est_sum /. 1e-3))
            true
            (sim <= 3. *. est_sum && sim >= est_sum /. 3.))
    r.Xtalk.victims;
  Alcotest.(check bool) "at least one victim simulated" true (!checked > 0)

let test_bus_screens_majority () =
  (* The coupled bus fixture is built so the weak pairs dominate: the
     screen must dismiss most of them without a transient. *)
  let r = Lazy.force analyzed in
  Alcotest.(check int) "pairs" 18 r.Xtalk.stats.Xtalk.n_pairs;
  Alcotest.(check bool) "majority screened" true
    (2 * r.Xtalk.stats.Xtalk.n_screened > r.Xtalk.stats.Xtalk.n_pairs);
  Alcotest.(check int) "screened + simulated = pairs" r.Xtalk.stats.Xtalk.n_pairs
    (r.Xtalk.stats.Xtalk.n_screened + r.Xtalk.stats.Xtalk.n_simulated)

(* --------------------------------------------------- alignment sweep *)

let test_alignment_monotone () =
  (* Grids nest (the 2n-1 grid contains every point of the n grid), so the
     worst coupled delay can only grow with the grid size. *)
  let worst r =
    Array.fold_left
      (fun acc (v : Xtalk.victim_result) ->
        match v.Xtalk.coupled_delay with Some d -> Float.max acc d | None -> acc)
      0. r.Xtalk.victims
  in
  let d1 = worst (analyze_with ~alignments:1 ()) in
  let d5 = worst (analyze_with ~alignments:5 ()) in
  let d9 = worst (Lazy.force analyzed) in
  Alcotest.(check bool) "5-point grid >= aligned starts" true (d5 >= d1);
  Alcotest.(check bool) "9-point grid >= 5-point grid" true (d9 >= d5);
  (* And the push-out is real on this fixture: coupling slows the bus. *)
  Alcotest.(check bool) "positive push-out" true (d9 > 0.)

let test_pushout_sign () =
  let r = Lazy.force analyzed in
  Array.iter
    (fun (v : Xtalk.victim_result) ->
      match (v.Xtalk.pushout, v.Xtalk.coupled_delay) with
      | Some push, Some coupled ->
          Alcotest.(check (float 1e-15))
            "pushout = coupled - isolated" (coupled -. v.Xtalk.isolated_delay) push
      | None, None -> Alcotest.(check bool) "unsimulated victims carry no delay" false v.Xtalk.simulated
      | _ -> Alcotest.fail "coupled_delay and pushout must be present together")
    r.Xtalk.victims

(* ------------------------------------------------------------ gating *)

let test_violation_budget () =
  (* A generous budget passes; a tiny one flags every simulated victim. *)
  let ok = analyze_with ~budget:1.0 () in
  Alcotest.(check int) "generous budget: no violations" 0 ok.Xtalk.stats.Xtalk.n_violations;
  let strict = analyze_with ~budget:0.01 () in
  Alcotest.(check int) "tiny budget: every simulated victim violates"
    (Array.to_list strict.Xtalk.victims
    |> List.filter (fun (v : Xtalk.victim_result) -> v.Xtalk.simulated)
    |> List.length)
    strict.Xtalk.stats.Xtalk.n_violations;
  Array.iter
    (fun (v : Xtalk.victim_result) ->
      Alcotest.(check bool) "violation iff simulated under the tiny budget" v.Xtalk.simulated
        v.Xtalk.violation)
    strict.Xtalk.victims

let test_threshold_extremes () =
  (* Threshold above every estimate: nothing simulated, nothing violated. *)
  let all_screened = analyze_with ~threshold:1.0 () in
  Alcotest.(check int) "everything screened" all_screened.Xtalk.stats.Xtalk.n_pairs
    all_screened.Xtalk.stats.Xtalk.n_screened;
  Alcotest.(check int) "no sims" 0 all_screened.Xtalk.stats.Xtalk.n_simulated;
  Alcotest.(check int) "no violations" 0 all_screened.Xtalk.stats.Xtalk.n_violations

(* ------------------------------------------------------- determinism *)

let test_deterministic_across_jobs () =
  let d = Lazy.force design in
  let f1 = Xtalk.json_fragment d (analyze_with ~alignments:3 ~jobs:1 ()) in
  let f4 = Xtalk.json_fragment d (analyze_with ~alignments:3 ~jobs:4 ()) in
  Alcotest.(check string) "fragment byte-identical across jobs" f1 f4

let test_screen_classification_deterministic () =
  let screened r =
    Array.to_list r.Xtalk.victims
    |> List.concat_map (fun (v : Xtalk.victim_result) ->
           List.map (fun (p : Xtalk.pair) -> (p.Xtalk.victim, p.Xtalk.aggressor, p.Xtalk.screened)) v.Xtalk.pairs)
  in
  let a = screened (analyze_with ~jobs:1 ()) in
  let b = screened (analyze_with ~jobs:4 ()) in
  Alcotest.(check bool) "classification identical across jobs" true (a = b)

let test_full_report_identical_across_jobs () =
  (* The whole CLI/daemon payload — flow report plus embedded fragment —
     through the same Session path the binaries use. *)
  let report jobs =
    let config = { Session.Config.default with Session.Config.jobs } in
    Session.with_session ~config (fun session ->
        let design =
          match
            Session.ingest session ~spef:(read_file coupled_spef) ~spec:(read_file bus8_spec) ()
          with
          | Ok d -> d
          | Error e -> failwith (Rlc_errors.Error.message e)
        in
        let request =
          {
            Session.Request.default with
            Session.Request.xtalk = Some { Session.default_xtalk with Session.alignments = 3 };
          }
        in
        match Session.flow session request design with
        | Ok o -> o.Session.report
        | Error e -> failwith (Rlc_errors.Error.message e))
  in
  let r1 = report 1 and r4 = report 4 in
  Alcotest.(check string) "report byte-identical across jobs" r1 r4;
  Alcotest.(check bool) "fragment embedded" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     contains r1 "\"xtalk\"")

let test_off_mode_report_untouched () =
  (* Without ?xtalk the Session report is exactly the isolated flow's
     report: ingesting coupling caps must not perturb it. *)
  Session.with_session (fun session ->
      let design =
        match
          Session.ingest session ~spef:(read_file coupled_spef) ~spec:(read_file bus8_spec) ()
        with
        | Ok d -> d
        | Error e -> failwith (Rlc_errors.Error.message e)
      in
      match Session.flow session Session.Request.default design with
      | Error e -> failwith (Rlc_errors.Error.message e)
      | Ok o ->
          Alcotest.(check string) "no-xtalk report = plain flow report"
            (Report.json_string o.Session.result)
            o.Session.report;
          Alcotest.(check bool) "no xtalk result attached" true (o.Session.xtalk = None))

(* -------------------------------------------------------------- misc *)

let test_protocol_xtalk_request () =
  let parse line = Rlc_service.Protocol.parse_request line in
  (match
     parse
       {|{"schema":"rlc-service/1","kind":"xtalk","spef":"x","threshold":0.1,"alignments":5}|}
   with
  | Ok { Rlc_service.Protocol.kind = Rlc_service.Protocol.Xtalk (_, x); _ } ->
      Alcotest.(check (option (float 0.))) "threshold" (Some 0.1) x.Rlc_service.Protocol.x_threshold;
      Alcotest.(check (option int)) "alignments" (Some 5) x.Rlc_service.Protocol.x_alignments;
      Alcotest.(check (option (float 0.))) "budget defaults open" None x.Rlc_service.Protocol.x_budget
  | Ok _ -> Alcotest.fail "parsed to the wrong kind"
  | Error e -> Alcotest.fail (Rlc_errors.Error.message e));
  match
    parse {|{"schema":"rlc-service/1","kind":"xtalk","spef":"x","alignments":0}|}
  with
  | Ok _ -> Alcotest.fail "alignments 0 accepted"
  | Error _ -> ()

let () =
  Alcotest.run "xtalk"
    [
      ( "noise",
        [
          Alcotest.test_case "limits" `Quick test_noise_limits;
          Alcotest.test_case "monotone in cc" `Quick test_noise_monotone_in_cc;
          Alcotest.test_case "bad arguments" `Quick test_noise_bad_args;
        ] );
      ( "screen",
        [
          Alcotest.test_case "calibrated vs transient" `Slow test_screen_vs_simulation;
          Alcotest.test_case "majority screened" `Slow test_bus_screens_majority;
          Alcotest.test_case "threshold extremes" `Quick test_threshold_extremes;
        ] );
      ( "timing",
        [
          Alcotest.test_case "alignment monotone" `Slow test_alignment_monotone;
          Alcotest.test_case "push-out sign" `Slow test_pushout_sign;
        ] );
      ( "gating", [ Alcotest.test_case "budget" `Slow test_violation_budget ] );
      ( "determinism",
        [
          Alcotest.test_case "fragment across jobs" `Slow test_deterministic_across_jobs;
          Alcotest.test_case "classification across jobs" `Slow
            test_screen_classification_deterministic;
          Alcotest.test_case "full report across jobs" `Slow test_full_report_identical_across_jobs;
          Alcotest.test_case "off mode untouched" `Slow test_off_mode_report_untouched;
        ] );
      ( "protocol", [ Alcotest.test_case "xtalk request" `Quick test_protocol_xtalk_request ] );
    ]
