(* Characterization + NLDM table + Liberty round-trip tests. *)
open Rlc_liberty
open Rlc_devices
open Rlc_num

let tech = Tech.c018

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* Small grid keeps the suite fast; the default grid is exercised by one
   cached characterization reused across tests. *)
let small_grid =
  {
    Characterize.slews = Array.map Units.ps [| 50.; 100.; 200. |];
    caps = Array.map Units.ff [| 50.; 200.; 800. |];
  }

let cell_exn ?grid tech ~size =
  match Characterize.cell_res ?grid tech ~size with
  | Ok c -> c
  | Error e -> failwith (Rlc_errors.Error.message e)

let cell75 = lazy (cell_exn ~grid:small_grid tech ~size:75.)

(* ----------------------------------------------------------------- lut *)

let test_lut_lookup_grid_points () =
  let lut =
    Table.make_lut ~slews:[| 1.; 2. |] ~caps:[| 10.; 20. |]
      ~values:[| [| 1.; 2. |]; [| 3.; 4. |] |]
  in
  check_float "corner" 1. (Table.lut_lookup lut ~slew:1. ~cap:10.);
  check_float "center" 2.5 (Table.lut_lookup lut ~slew:1.5 ~cap:15.)

let test_lut_validation () =
  Alcotest.(check bool) "ragged rows rejected" true
    (match
       Table.make_lut ~slews:[| 1.; 2. |] ~caps:[| 1.; 2. |] ~values:[| [| 1. |]; [| 1.; 2. |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------ characterization *)

let test_tables_monotone_in_cap () =
  let c = Lazy.force cell75 in
  let d1 = Table.delay c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 50.) in
  let d2 = Table.delay c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 800.) in
  Alcotest.(check bool)
    (Printf.sprintf "delay grows with load: %.1f ps -> %.1f ps" (Units.in_ps d1) (Units.in_ps d2))
    true (d2 > d1);
  let s1 = Table.slew_10_90 c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 50.) in
  let s2 = Table.slew_10_90 c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 800.) in
  Alcotest.(check bool) "slew grows with load" true (s2 > s1)

let test_table_matches_direct_simulation () =
  (* Bilinear interpolation at a grid point must equal the simulated value. *)
  let c = Lazy.force cell75 in
  let slew = Units.ps 100. and cap = Units.ff 200. in
  let d_direct, s19_direct, _, t59_direct =
    match
      Characterize.characterize_point_res tech ~size:75. ~edge:Testbench.Rise ~input_slew:slew
        ~cap
    with
    | Ok v -> v
    | Error e -> Alcotest.fail (Rlc_errors.Error.to_string e)
  in
  check_float ~eps:1e-15 "delay" d_direct
    (Table.delay c ~edge:Rlc_waveform.Measure.Rising ~slew ~cap);
  check_float ~eps:1e-15 "slew" s19_direct
    (Table.slew_10_90 c ~edge:Rlc_waveform.Measure.Rising ~slew ~cap);
  check_float ~eps:1e-15 "tail" t59_direct
    (Table.tail_50_90 c ~edge:Rlc_waveform.Measure.Rising ~slew ~cap)

let test_fitted_rs_regime () =
  (* The paper's premise: a 75X driver's fitted resistance is comparable to
     global-wire Z0 (tens of Ohms), and scales roughly inversely with size. *)
  let c75 = Lazy.force cell75 in
  let rs75 =
    Table.fitted_rs c75 ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.pf 1.1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "Rs(75X) = %.1f Ohm in driver regime" rs75)
    true
    (rs75 > 15. && rs75 < 120.);
  let c25 = cell_exn ~grid:small_grid tech ~size:25. in
  let rs25 =
    Table.fitted_rs c25 ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.pf 1.1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "Rs(25X) = %.1f Ohm > 2x Rs(75X) = %.1f Ohm" rs25 rs75)
    true (rs25 > 2. *. rs75)

let test_ramp_time_extrapolation () =
  let c = Lazy.force cell75 in
  let s = Table.slew_10_90 c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 200.) in
  check_float ~eps:1e-15 "ramp = slew / 0.8" (s /. 0.8)
    (Table.ramp_time c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 200.))

let test_cache_hit () =
  let a = cell_exn ~grid:small_grid tech ~size:75. in
  let b = cell_exn ~grid:small_grid tech ~size:75. in
  Alcotest.(check bool) "same physical table" true (a == b)

let test_fall_arc_differs () =
  let c = Lazy.force cell75 in
  let dr = Table.delay c ~edge:Rlc_waveform.Measure.Rising ~slew:(Units.ps 100.) ~cap:(Units.ff 200.) in
  let df = Table.delay c ~edge:Rlc_waveform.Measure.Falling ~slew:(Units.ps 100.) ~cap:(Units.ff 200.) in
  Alcotest.(check bool) "both arcs positive" true (dr > 0. && df > 0.)

(* -------------------------------------------------------------- liberty *)

let test_ast_parse_basic () =
  let src =
    {|
/* a comment */
library (demo) {
  comment : "hello";
  cell (inv) {
    drive_size : 75; // trailing comment
    index_1 ("1, 2, 3");
  }
}
|}
  in
  match Liberty_ast.parse src with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check string) "library name"
        (match g.Liberty_ast.gargs with [ Liberty_ast.Ident n ] -> n | _ -> "?")
        "demo";
      let cell = Option.get (Liberty_ast.find_group g "cell") in
      (match Liberty_ast.find_attr cell "drive_size" with
      | Some (Liberty_ast.Num f) -> check_float "attr" 75. f
      | _ -> Alcotest.fail "drive_size missing");
      (match Liberty_ast.find_complex cell "index_1" with
      | Some [ v ] ->
          Alcotest.(check (list (float 1e-9))) "index list" [ 1.; 2.; 3. ]
            (Liberty_ast.float_list_of_value v)
      | _ -> Alcotest.fail "index_1 missing")

let test_ast_parse_errors () =
  let bad = [ "library (x) {"; "library (x) { foo }"; "library (x) { a : \"unterminated; }" ] in
  List.iter
    (fun src ->
      match Liberty_ast.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parser accepted: " ^ src))
    bad

let test_ast_roundtrip () =
  let g =
    {
      Liberty_ast.gname = "library";
      gargs = [ Liberty_ast.Ident "demo" ];
      body =
        [
          Liberty_ast.Attribute ("x", Liberty_ast.Num 1.5e-12);
          Liberty_ast.Complex ("idx", [ Liberty_ast.Str "1, 2" ]);
          Liberty_ast.Group { gname = "sub"; gargs = []; body = [] };
        ];
    }
  in
  match Liberty_ast.parse (Liberty_ast.to_string g) with
  | Ok g' -> Alcotest.(check bool) "round trip" true (Liberty_ast.equal_group g g')
  | Error e -> Alcotest.fail e

let test_cell_roundtrip () =
  let c = Lazy.force cell75 in
  let lib = Liberty_io.library_of_cells ~name:"rt" [ c ] in
  let text = Liberty_ast.to_string lib in
  match Result.bind (Liberty_ast.parse text) Liberty_io.cells_of_library with
  | Error e -> Alcotest.fail e
  | Ok [ c' ] ->
      Alcotest.(check string) "name" c.Table.name c'.Table.name;
      check_float ~eps:0. "drive size" c.Table.drive_size c'.Table.drive_size;
      check_float ~eps:0. "input cap" c.Table.input_cap c'.Table.input_cap;
      (* Every table value must survive the text round trip bit-exactly. *)
      let check_lut tag (a : Table.lut) (b : Table.lut) =
        Alcotest.(check (array (float 0.))) (tag ^ " slews") a.Table.slews b.Table.slews;
        Alcotest.(check (array (float 0.))) (tag ^ " caps") a.Table.caps b.Table.caps;
        Array.iteri
          (fun i row -> Alcotest.(check (array (float 0.))) (tag ^ " row") row b.Table.values.(i))
          a.Table.values
      in
      check_lut "rise delay" c.Table.rise.Table.delay c'.Table.rise.Table.delay;
      check_lut "fall tail" c.Table.fall.Table.tail_50_90 c'.Table.fall.Table.tail_50_90
  | Ok _ -> Alcotest.fail "expected exactly one cell"

let test_standard_nldm_fallback () =
  (* Strip the extension groups from the printed library; loading must
     synthesize the auxiliary tables from the 10-90 transition with the
     exponential-shape ratios. *)
  let c = Lazy.force cell75 in
  let lib = Liberty_io.library_of_cells ~name:"std" [ c ] in
  let rec strip (g : Liberty_ast.group) =
    {
      g with
      Liberty_ast.body =
        List.filter_map
          (fun stmt ->
            match stmt with
            | Liberty_ast.Group sub ->
                let name = sub.Liberty_ast.gname in
                let is_ext =
                  List.exists
                    (fun suffix ->
                      String.length name >= String.length suffix
                      && String.sub name (String.length name - String.length suffix)
                           (String.length suffix)
                         = suffix)
                    [ "_transition_20_80"; "_tail_50_90" ]
                in
                if is_ext then None else Some (Liberty_ast.Group (strip sub))
            | s -> Some s)
          g.Liberty_ast.body;
    }
  in
  match Liberty_io.cells_of_library (strip lib) with
  | Error e -> Alcotest.fail e
  | Ok [ c' ] ->
      let slew = Units.ps 100. and cap = Units.ff 200. in
      let s19 = Table.slew_10_90 c' ~edge:Rlc_waveform.Measure.Rising ~slew ~cap in
      check_float ~eps:1e-15 "20-80 synthesized"
        (s19 *. Float.log 4. /. Float.log 9.)
        (Table.slew_20_80 c' ~edge:Rlc_waveform.Measure.Rising ~slew ~cap);
      check_float ~eps:1e-15 "tail synthesized"
        (s19 *. Float.log 5. /. Float.log 9.)
        (Table.tail_50_90 c' ~edge:Rlc_waveform.Measure.Rising ~slew ~cap);
      (* Sanity, not accuracy: a velocity-saturated driver charges a cap
         mostly at constant current, so its true tail is shorter than the
         single-pole estimate — expect the approximation to be biased long
         but within a factor of ~2 (it only feeds the Rs fit, where a
         conservative Rs errs toward the safe single-ramp path). *)
      let true_tail = Table.tail_50_90 c ~edge:Rlc_waveform.Measure.Rising ~slew ~cap in
      let approx = s19 *. Float.log 5. /. Float.log 9. in
      Alcotest.(check bool)
        (Printf.sprintf "approximation sane: %.1f ps vs %.1f ps" (Units.in_ps approx)
           (Units.in_ps true_tail))
        true
        (approx > 0.8 *. true_tail && approx < 2.2 *. true_tail)
  | Ok _ -> Alcotest.fail "expected one cell"

let test_save_load_file () =
  let c = Lazy.force cell75 in
  let path = Filename.temp_file "rlc_lib" ".lib" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Liberty_io.save ~path ~name:"diskrt" [ c ];
      match Liberty_io.load ~path with
      | Ok [ c' ] -> Alcotest.(check string) "loaded name" c.Table.name c'.Table.name
      | Ok _ -> Alcotest.fail "wrong cell count"
      | Error e -> Alcotest.fail e)

let prop_lookup_inside_grid_is_bounded =
  QCheck.Test.make ~name:"bilinear lookups stay within table extremes inside the grid" ~count:100
    QCheck.(pair (float_range 50e-12 200e-12) (float_range 50e-15 800e-15))
    (fun (slew, cap) ->
      let c = Lazy.force cell75 in
      let t = c.Table.rise.Table.delay in
      let vmin = Array.fold_left (fun acc r -> Array.fold_left Float.min acc r) Float.infinity t.Table.values in
      let vmax =
        Array.fold_left (fun acc r -> Array.fold_left Float.max acc r) Float.neg_infinity t.Table.values
      in
      let v = Table.lut_lookup t ~slew ~cap in
      v >= vmin -. 1e-15 && v <= vmax +. 1e-15)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_liberty"
    [
      ( "lut",
        [
          Alcotest.test_case "lookup" `Quick test_lut_lookup_grid_points;
          Alcotest.test_case "validation" `Quick test_lut_validation;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "monotone in load" `Quick test_tables_monotone_in_cap;
          Alcotest.test_case "matches direct simulation" `Quick test_table_matches_direct_simulation;
          Alcotest.test_case "fitted Rs regime" `Quick test_fitted_rs_regime;
          Alcotest.test_case "ramp extrapolation" `Quick test_ramp_time_extrapolation;
          Alcotest.test_case "cache" `Quick test_cache_hit;
          Alcotest.test_case "fall arc" `Quick test_fall_arc_differs;
          q prop_lookup_inside_grid_is_bounded;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "parse basics" `Quick test_ast_parse_basic;
          Alcotest.test_case "parse errors" `Quick test_ast_parse_errors;
          Alcotest.test_case "ast roundtrip" `Quick test_ast_roundtrip;
          Alcotest.test_case "cell roundtrip" `Quick test_cell_roundtrip;
          Alcotest.test_case "standard NLDM fallback" `Quick test_standard_nldm_fallback;
          Alcotest.test_case "file save/load" `Quick test_save_load_file;
        ] );
    ]
