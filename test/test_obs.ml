(* Rlc_obs tests: sink semantics (counters, histograms, spans, disabled
   no-op, cross-domain merge), the JSON exporters (validated with a small
   in-test JSON parser, including span nesting in the Chrome trace), the
   progress meter's non-TTY output, the rootfind observation hook, and the
   end-to-end invariants: instrumentation must not change engine waveforms
   or flow reports, and the flow's iteration counters must reconcile with
   the deterministic stats. *)

module Obs = Rlc_obs.Obs
module Window = Rlc_obs.Window
module Export = Rlc_obs.Export
module Progress = Rlc_obs.Progress
module Rootfind = Rlc_num.Rootfind
module Netlist = Rlc_circuit.Netlist
module Engine = Rlc_circuit.Engine
module Waveform = Rlc_waveform.Waveform
module Driver_model = Rlc_ceff.Driver_model
module Flow = Rlc_flow.Flow
module Report = Rlc_flow.Report

(* ------------------------------------------------- mini JSON parser *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else raise (Bad_json (Printf.sprintf "expected %C at %d, got %C" c !pos (peek ())))
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* \uXXXX: decode the code unit as-is (tests only use ASCII). *)
              let hex = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | c -> raise (Bad_json (Printf.sprintf "bad escape %C" c)));
          advance ();
          go ()
      | '\000' -> raise (Bad_json "eof in string")
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then (advance (); members ((k, v) :: acc))
            else (expect '}'; Obj (List.rev ((k, v) :: acc)))
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then (advance (); elems (v :: acc))
            else (expect ']'; Arr (List.rev (v :: acc)))
          in
          elems []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ ->
        let start = !pos in
        let num_char = function
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while num_char (peek ()) do
          advance ()
        done;
        if !pos = start then raise (Bad_json (Printf.sprintf "unexpected char at %d" start));
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let member k = function
  | Obj kv -> (
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> Alcotest.fail (Printf.sprintf "missing member %S" k))
  | _ -> Alcotest.fail (Printf.sprintf "not an object (looking for %S)" k)

let as_str = function Str s -> s | _ -> Alcotest.fail "not a string"
let as_num = function Num v -> v | _ -> Alcotest.fail "not a number"
let as_arr = function Arr l -> l | _ -> Alcotest.fail "not an array"
let as_obj = function Obj kv -> kv | _ -> Alcotest.fail "not an object"

(* ---------------------------------------------------------- obs core *)

let test_counters () =
  let t = Obs.create () in
  Obs.incr t "a";
  Obs.incr t "a";
  Obs.add t "b" 5;
  let m = Obs.snapshot t in
  Alcotest.(check int) "a" 2 (Obs.counter m "a");
  Alcotest.(check int) "b" 5 (Obs.counter m "b");
  Alcotest.(check int) "missing defaults to 0" 0 (Obs.counter m "nope");
  Alcotest.(check (list string)) "name-sorted" [ "a"; "b" ] (List.map fst m.Obs.m_counters)

let test_stats () =
  let t = Obs.create () in
  List.iter (Obs.observe t "v") [ 1e-9; 3e-9; 1e-9 ];
  let m = Obs.snapshot t in
  let s = List.assoc "v" m.Obs.m_stats in
  Alcotest.(check int) "count" 3 s.Obs.count;
  Alcotest.(check (float 1e-24)) "sum" 5e-9 s.Obs.sum;
  Alcotest.(check (float 1e-24)) "min" 1e-9 s.Obs.min;
  Alcotest.(check (float 1e-24)) "max" 3e-9 s.Obs.max;
  Alcotest.(check int) "bucket array length" Obs.n_buckets (Array.length s.Obs.buckets);
  Alcotest.(check int) "buckets sum to count" 3 (Array.fold_left ( + ) 0 s.Obs.buckets);
  (* 1 ns falls in bucket 0 ([1,2) ns), 3 ns in bucket 1 ([2,4) ns). *)
  Alcotest.(check int) "bucket 0" 2 s.Obs.buckets.(0);
  Alcotest.(check int) "bucket 1" 1 s.Obs.buckets.(1)

let test_spans () =
  let t = Obs.create () in
  let v = Obs.time t ~args:[ ("k", "v") ] "outer" (fun () -> Obs.time t "inner" (fun () -> 41 + 1)) in
  Alcotest.(check int) "time returns the value" 42 v;
  let m = Obs.snapshot t in
  let n_outer, d_outer = Obs.span_total m "outer" in
  let n_inner, d_inner = Obs.span_total m "inner" in
  Alcotest.(check int) "one outer" 1 n_outer;
  Alcotest.(check int) "one inner" 1 n_inner;
  Alcotest.(check bool) "durations non-negative" true (d_outer >= 0. && d_inner >= 0.);
  Alcotest.(check bool) "inner within outer" true (d_inner <= d_outer);
  (match m.Obs.m_spans with
  | first :: _ ->
      (* Same tid, same-or-earlier start, longest first: outer leads. *)
      Alcotest.(check string) "enclosing span sorts first" "outer" first.Obs.sp_name;
      Alcotest.(check (list (pair string string))) "args kept" [ ("k", "v") ] first.Obs.sp_args
  | [] -> Alcotest.fail "no spans");
  (* A raising thunk still records its span, tagged, and re-raises. *)
  (match Obs.time t "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  let m = Obs.snapshot t in
  let boom = List.find (fun sp -> sp.Obs.sp_name = "boom") m.Obs.m_spans in
  Alcotest.(check bool) "error arg recorded" true (List.mem_assoc "error" boom.Obs.sp_args)

let test_disabled_noop () =
  let t = Obs.null in
  Alcotest.(check bool) "null disabled" false (Obs.enabled t);
  Obs.incr t "a";
  Obs.add t "a" 10;
  Obs.observe t "v" 1.;
  Alcotest.(check (float 0.)) "start is 0 when disabled" 0. (Obs.start t);
  Obs.finish t "s" 0.;
  Alcotest.(check int) "time still runs f" 7 (Obs.time t "s" (fun () -> 7));
  let m = Obs.snapshot t in
  Alcotest.(check int) "no counters" 0 (List.length m.Obs.m_counters);
  Alcotest.(check int) "no stats" 0 (List.length m.Obs.m_stats);
  Alcotest.(check int) "no spans" 0 (List.length m.Obs.m_spans)

let test_spans_optout () =
  (* ~spans:false: counters and histograms stay live (what a daemon's
     telemetry window needs) while span recording is a no-op, so the
     per-domain span lists never grow over the sink's lifetime. *)
  let t = Obs.create ~spans:false () in
  Alcotest.(check bool) "sink enabled" true (Obs.enabled t);
  Alcotest.(check bool) "spans off" false (Obs.spans_enabled t);
  Alcotest.(check bool) "default sink records spans" true
    (Obs.spans_enabled (Obs.create ()));
  Obs.incr t "c";
  Obs.observe t "v" 2e-9;
  Alcotest.(check (float 0.)) "start is 0 with spans off" 0. (Obs.start t);
  Obs.finish t "s" 0.;
  Alcotest.(check int) "time still runs f" 7 (Obs.time t "s" (fun () -> 7));
  let m = Obs.snapshot t in
  Alcotest.(check int) "counter recorded" 1 (Obs.counter m "c");
  Alcotest.(check int) "stat recorded" 1 (List.assoc "v" m.Obs.m_stats).Obs.count;
  Alcotest.(check int) "no spans retained" 0 (List.length m.Obs.m_spans)

let test_cross_domain_merge () =
  let t = Obs.create () in
  let work () =
    for _ = 1 to 50 do
      Obs.incr t "d.count"
    done;
    Obs.observe t "d.val" 2e-9;
    Obs.time t "d.span" (fun () -> ())
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  work ();
  let m = Obs.snapshot t in
  Alcotest.(check int) "counters sum over domains" 150 (Obs.counter m "d.count");
  Alcotest.(check int) "stat count merged" 3 (List.assoc "d.val" m.Obs.m_stats).Obs.count;
  let n_spans, _ = Obs.span_total m "d.span" in
  Alcotest.(check int) "spans from every domain" 3 n_spans;
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.Obs.sp_tid) m.Obs.m_spans)
  in
  Alcotest.(check int) "three distinct recording domains" 3 (List.length tids)

(* ----------------------------------------------------------- quantile *)

let stat_of values =
  let t = Obs.create () in
  List.iter (Obs.observe t "q") values;
  List.assoc "q" (Obs.snapshot t).Obs.m_stats

let test_quantile () =
  (* Uniform 1..1000 ns: log2 buckets bound any quantile estimate within a
     factor of 2 of the exact percentile, and estimates are monotone. *)
  let s = stat_of (List.init 1000 (fun i -> float_of_int (i + 1) *. 1e-9)) in
  Alcotest.(check (float 1e-15)) "q0 is min" 1e-9 (Obs.Histogram.quantile s 0.);
  Alcotest.(check (float 1e-15)) "q1 is max" 1e-6 (Obs.Histogram.quantile s 1.);
  List.iter
    (fun q ->
      let exact = q *. 1e-6 in
      let est = Obs.Histogram.quantile s q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f within 2x of exact" q)
        true
        (est >= exact /. 2. && est <= exact *. 2.))
    [ 0.25; 0.5; 0.75; 0.95; 0.99 ];
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile s q in
      Alcotest.(check bool) "monotone in q" true (est >= !prev);
      prev := est)
    [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1. ];
  (* Everything in one bucket: any quantile stays inside that bucket. *)
  let s1 = stat_of [ 3e-9; 3e-9; 3e-9; 3e-9; 3e-9 ] in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile s1 q in
      Alcotest.(check bool) "single bucket bounds" true (est >= 2e-9 && est <= 4e-9))
    [ 0.1; 0.5; 0.9 ];
  (* Empty summary: nan, not a crash. *)
  let empty =
    {
      Obs.count = 0;
      sum = 0.;
      min = Float.infinity;
      max = Float.neg_infinity;
      buckets = Array.make Obs.n_buckets 0;
    }
  in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Obs.Histogram.quantile empty 0.5))

(* ------------------------------------------------------------- window *)

let test_window_delta () =
  let t = Obs.create () in
  let w = Window.create () in
  Obs.incr t "c";
  Obs.incr t "c";
  Obs.incr t "c";
  Obs.observe t "v" 1e-9;
  Obs.observe t "v" 3e-9;
  Window.record w ~at:10.0 (Obs.snapshot_light t);
  Obs.incr t "c";
  Obs.incr t "c";
  Obs.observe t "v" 10e-9;
  Window.record w ~at:12.5 (Obs.snapshot_light t);
  Alcotest.(check int) "samples" 2 (Window.samples w);
  Alcotest.(check (float 1e-9)) "span" 2.5 (Window.span_s w);
  Alcotest.(check int) "counter delta" 2 (Window.counter_delta w "c");
  Alcotest.(check (float 1e-9)) "rate" 0.8 (Window.rate w "c");
  Alcotest.(check int) "missing counter delta" 0 (Window.counter_delta w "nope");
  (match Window.stat_delta w "v" with
  | Some s ->
      Alcotest.(check int) "stat delta count" 1 s.Obs.count;
      Alcotest.(check (float 1e-24)) "stat delta sum" 10e-9 s.Obs.sum;
      Alcotest.(check int) "stat delta buckets sum" 1 (Array.fold_left ( + ) 0 s.Obs.buckets)
  | None -> Alcotest.fail "stat delta missing");
  Alcotest.(check bool) "missing stat delta" true (Window.stat_delta w "nope" = None);
  (match Window.latest w with
  | Some s ->
      Alcotest.(check (float 0.)) "latest is newest" 12.5 s.Window.at;
      Alcotest.(check int) "latest is cumulative" 5 (List.assoc "c" s.Window.counters)
  | None -> Alcotest.fail "no latest sample")

let test_window_capacity () =
  let t = Obs.create () in
  let w = Window.create ~capacity:3 () in
  for i = 1 to 5 do
    Obs.incr t "c";
    Window.record w ~at:(float_of_int i) (Obs.snapshot_light t)
  done;
  Alcotest.(check int) "evicted to capacity" 3 (Window.samples w);
  (* Retained samples are t=3,4,5 with cumulative c=3,4,5. *)
  Alcotest.(check (float 1e-9)) "span covers retained" 2. (Window.span_s w);
  Alcotest.(check int) "delta over retained" 2 (Window.counter_delta w "c");
  Window.clear w;
  Alcotest.(check int) "cleared" 0 (Window.samples w);
  Alcotest.(check int) "no delta after clear" 0 (Window.counter_delta w "c")

let test_window_tick_independence () =
  (* The same instrumented run sampled every tick vs only at the endpoints
     yields the same window delta — cumulative samples make the digest
     ticker-period independent. *)
  let t = Obs.create () in
  let fine = Window.create () and coarse = Window.create () in
  let sample at =
    let m = Obs.snapshot_light t in
    Window.record fine ~at m;
    m
  in
  let first = sample 0. in
  Window.record coarse ~at:0. first;
  for i = 1 to 9 do
    Obs.incr t "c";
    Obs.observe t "v" (float_of_int i *. 1e-9);
    let m = sample (float_of_int i) in
    if i = 9 then Window.record coarse ~at:9. m
  done;
  Alcotest.(check int) "fine samples" 10 (Window.samples fine);
  Alcotest.(check int) "coarse samples" 2 (Window.samples coarse);
  Alcotest.(check (float 1e-9)) "same span" (Window.span_s fine) (Window.span_s coarse);
  Alcotest.(check int) "same counter delta" (Window.counter_delta fine "c")
    (Window.counter_delta coarse "c");
  match (Window.stat_delta fine "v", Window.stat_delta coarse "v") with
  | Some f, Some c ->
      Alcotest.(check int) "same stat count" f.Obs.count c.Obs.count;
      Alcotest.(check (float 1e-24)) "same stat sum" f.Obs.sum c.Obs.sum;
      Alcotest.(check bool) "same buckets" true (f.Obs.buckets = c.Obs.buckets)
  | _ -> Alcotest.fail "stat delta missing"

(* ------------------------------------------------------- ambient trace *)

let test_ambient_trace () =
  let t = Obs.create () in
  Alcotest.(check bool) "no ambient trace outside" true (Obs.current_trace () = None);
  Obs.with_trace (Some "req-1") (fun () ->
      Alcotest.(check bool) "installed" true (Obs.current_trace () = Some "req-1");
      Obs.time t "outer" (fun () ->
          Obs.with_trace (Some "req-2") (fun () -> Obs.time t "inner" (fun () -> ())));
      Alcotest.(check bool) "nested restore" true (Obs.current_trace () = Some "req-1"));
  Alcotest.(check bool) "restored to none" true (Obs.current_trace () = None);
  Obs.time t "plain" (fun () -> ());
  let m = Obs.snapshot t in
  let span n = List.find (fun sp -> sp.Obs.sp_name = n) m.Obs.m_spans in
  Alcotest.(check (option string)) "outer tagged" (Some "req-1")
    (List.assoc_opt "trace" (span "outer").Obs.sp_args);
  Alcotest.(check (option string)) "inner tagged with nested id" (Some "req-2")
    (List.assoc_opt "trace" (span "inner").Obs.sp_args);
  Alcotest.(check (option string)) "untagged outside" None
    (List.assoc_opt "trace" (span "plain").Obs.sp_args)

(* ---------------------------------------------------------- exporters *)

let test_metrics_json () =
  let t = Obs.create () in
  Obs.incr t "c.one";
  Obs.add t "c.two" 41;
  Obs.observe t "h" 2e-9;
  Obs.time t "sp" (fun () -> ());
  let m = Obs.snapshot t in
  let j = parse_json (Export.metrics_json m) in
  Alcotest.(check string) "schema" "rlc-obs/1" (as_str (member "schema" j));
  Alcotest.(check (float 0.)) "counter value" 1. (as_num (member "c.one" (member "counters" j)));
  Alcotest.(check (float 0.)) "counter value 2" 41.
    (as_num (member "c.two" (member "counters" j)));
  let h = member "h" (member "stats" j) in
  Alcotest.(check (float 0.)) "stat count" 1. (as_num (member "count" h));
  Alcotest.(check (float 1e-15)) "stat mean" 2e-9 (as_num (member "mean" h));
  let sp = member "sp" (member "span_totals" j) in
  Alcotest.(check (float 0.)) "span count" 1. (as_num (member "count" sp));
  Alcotest.(check bool) "span total non-negative" true (as_num (member "total_s" sp) >= 0.)

let test_json_escaping () =
  let t = Obs.create () in
  Obs.time t ~args:[ ("weird", "a\"b\\c\nd\te") ] "na\"me\\1" (fun () -> ());
  Obs.incr t "ctr\"x";
  let m = Obs.snapshot t in
  let trace = parse_json (Export.chrome_trace m) in
  (match as_arr (member "traceEvents" trace) with
  | [ ev ] ->
      Alcotest.(check string) "span name round-trips" "na\"me\\1" (as_str (member "name" ev));
      Alcotest.(check string) "arg round-trips" "a\"b\\c\nd\te"
        (as_str (member "weird" (member "args" ev)))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l)));
  let metrics = parse_json (Export.metrics_json m) in
  Alcotest.(check (float 0.)) "escaped counter name" 1.
    (as_num (member "ctr\"x" (member "counters" metrics)))

(* Spans must be properly nested per tid: for each tid, walking events in
   the exporter's order with an interval stack never finds a partial
   overlap.  [eps] absorbs the %.9g rounding of ts/dur (microseconds). *)
let check_well_nested events =
  let eps = 1e-2 in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let tid = as_num (member "tid" ev) in
      let ts = as_num (member "ts" ev) in
      let dur = as_num (member "dur" ev) in
      let prev = Option.value (Hashtbl.find_opt by_tid tid) ~default:[] in
      Hashtbl.replace by_tid tid ((ts, ts +. dur) :: prev))
    events;
  Hashtbl.iter
    (fun _tid intervals ->
      let stack = ref [] in
      List.iter
        (fun (s, e) ->
          while (match !stack with (_, pe) :: _ -> pe <= s +. eps | [] -> false) do
            stack := List.tl !stack
          done;
          (match !stack with
          | (ps, pe) :: _ ->
              Alcotest.(check bool) "span contained in enclosing span" true
                (s >= ps -. eps && e <= pe +. eps)
          | [] -> ());
          stack := (s, e) :: !stack)
        (List.rev intervals))
    by_tid

let test_chrome_trace () =
  let t = Obs.create () in
  Obs.time t "outer" (fun () ->
      Obs.time t "inner1" (fun () -> ());
      Obs.time t "inner2" (fun () -> ()));
  let j = parse_json (Export.chrome_trace (Obs.snapshot t)) in
  let events = as_arr (member "traceEvents" j) in
  Alcotest.(check int) "three events" 3 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check string) "complete event" "X" (as_str (member "ph" ev));
      Alcotest.(check string) "category" "rlc" (as_str (member "cat" ev));
      Alcotest.(check bool) "ts/dur non-negative" true
        (as_num (member "ts" ev) >= 0. && as_num (member "dur" ev) >= 0.);
      (* Perfetto wants string-valued args; "args" is omitted when empty. *)
      match List.assoc_opt "args" (as_obj ev) with
      | None -> ()
      | Some a ->
          List.iter
            (fun (_, v) -> match v with Str _ -> () | _ -> Alcotest.fail "non-string arg")
            (as_obj a))
    events;
  check_well_nested events

(* ----------------------------------------------------------- progress *)

let with_progress_lines ?every ~label ~total f =
  let path = Filename.temp_file "rlc_obs_progress" ".txt" in
  let oc = open_out path in
  let p = Progress.create ~channel:oc ?every ~label ~total () in
  f p;
  close_out oc;
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Sys.remove path;
  lines

let test_progress_non_tty () =
  (* A file channel is not a TTY: plain "label k/n" lines, one per report
     when every = 1, no carriage returns. *)
  let lines =
    with_progress_lines ~every:1 ~label:"nets" ~total:3 (fun p ->
        Progress.report p 1;
        Progress.report p 2;
        Progress.report p 3;
        Progress.finish p)
  in
  Alcotest.(check (list string)) "line per report" [ "nets 1/3"; "nets 2/3"; "nets 3/3" ] lines

let test_progress_every () =
  let lines =
    with_progress_lines ~label:"sweep" ~total:40 (fun p ->
        (* default every = 40/20 = 2 *)
        for _ = 1 to 39 do
          Progress.tick p
        done;
        Progress.report p 40)
  in
  Alcotest.(check int) "5% increments" 20 (List.length lines);
  Alcotest.(check string) "first emitted" "sweep 2/40" (List.hd lines);
  Alcotest.(check string) "total always emitted" "sweep 40/40" (List.nth lines 19)

let test_progress_set_total () =
  let lines =
    with_progress_lines ~label:"s" ~total:0 (fun p ->
        Progress.set_total p 2;
        Progress.tick p;
        Progress.tick p)
  in
  Alcotest.(check (list string)) "late total" [ "s 1/2"; "s 2/2" ] lines

(* ----------------------------------------------------------- rootfind *)

let test_rootfind_on_iter () =
  let f = cos in
  let plain = Rootfind.fixed_point f ~init:0.5 in
  let calls = ref 0 in
  let hooked = Rootfind.fixed_point ~on_iter:(fun _ -> incr calls) f ~init:0.5 in
  Alcotest.(check (float 0.)) "same fixed point" plain.Rootfind.value hooked.Rootfind.value;
  Alcotest.(check int) "same iterations" plain.Rootfind.iterations hooked.Rootfind.iterations;
  Alcotest.(check bool) "same convergence" plain.Rootfind.converged hooked.Rootfind.converged;
  Alcotest.(check int) "hook fired once per iteration" plain.Rootfind.iterations !calls;
  let plain_b = Rootfind.fixed_point_bracketed f ~lo:0. ~hi:1. ~init:0.5 in
  let calls_b = ref 0 in
  let hooked_b =
    Rootfind.fixed_point_bracketed ~on_iter:(fun _ -> incr calls_b) f ~lo:0. ~hi:1. ~init:0.5
  in
  Alcotest.(check (float 0.)) "bracketed: same value" plain_b.Rootfind.value
    hooked_b.Rootfind.value;
  Alcotest.(check bool) "bracketed: hook observed iterates" true (!calls_b > 0)

(* ------------------------------------------------------------- engine *)

let rc_netlist () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (fun t -> if t <= 0. then 0. else 1.);
  let out = Netlist.node nl "out" in
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  (nl, out)

let test_engine_counters () =
  let nl, probe = rc_netlist () in
  let plain = Engine.transient ~dt:1e-12 ~t_stop:0.1e-9 nl in
  let obs = Obs.create () in
  let instrumented = Engine.transient ~obs ~dt:1e-12 ~t_stop:0.1e-9 nl in
  Alcotest.(check bool) "waveform identical with instrumentation on" true
    (Waveform.values (Engine.voltage plain probe)
    = Waveform.values (Engine.voltage instrumented probe));
  let m = Obs.snapshot obs in
  Alcotest.(check int) "one transient" 1 (Obs.counter m "engine.transients");
  Alcotest.(check int) "steps counter matches engine" (Engine.steps instrumented)
    (Obs.counter m "engine.steps");
  List.iter
    (fun name ->
      let c, _ = Obs.span_total m name in
      Alcotest.(check int) (name ^ " span") 1 c)
    [ "engine.compile"; "engine.dc_solve"; "engine.factor"; "engine.step_loop" ];
  let loop = List.find (fun sp -> sp.Obs.sp_name = "engine.step_loop") m.Obs.m_spans in
  Alcotest.(check string) "step count annotated"
    (string_of_int (Engine.steps instrumented))
    (List.assoc "steps" loop.Obs.sp_args);
  Alcotest.(check string) "newton total annotated"
    (string_of_int (Obs.counter m "engine.newton_iters"))
    (List.assoc "newton_total" loop.Obs.sp_args);
  Alcotest.(check bool) "fast path taken" true
    (List.assoc "path" loop.Obs.sp_args <> "rebuild")

(* ------------------------------------------------------ flow invariants *)

(* Same fixture as test_flow: two identical inductive bus bits each feeding
   an identical local net — two levels, and the twin bits collide in the
   Ceff cache so both hit and miss paths are exercised. *)
let spef_src =
  {|*SPEF "IEEE 1481-1998"
*DESIGN "obs_test"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 PH
*D_NET b0 300
*CONN
*P b0_drv O
*P b0_rcv I
*CAP
1 b0_1 150
2 b0_rcv 150
*RES
1 b0_drv b0_1 30
2 b0_1 b0_rcv 30
*INDUC
1 b0_drv b0_1 1500
2 b0_1 b0_rcv 1500
*END
*D_NET b1 300
*CONN
*P b1_drv O
*P b1_rcv I
*CAP
1 b1_1 150
2 b1_rcv 150
*RES
1 b1_drv b1_1 30
2 b1_1 b1_rcv 30
*INDUC
1 b1_drv b1_1 1500
2 b1_1 b1_rcv 1500
*END
*D_NET o0 90
*CONN
*P o0_drv O
*P o0_rcv I
*CAP
1 o0_1 45
2 o0_rcv 45
*RES
1 o0_drv o0_1 60
2 o0_1 o0_rcv 60
*END
*D_NET o1 90
*CONN
*P o1_drv O
*P o1_rcv I
*CAP
1 o1_1 45
2 o1_rcv 45
*RES
1 o1_drv o1_1 60
2 o1_1 o1_rcv 60
*END
|}

let spec_src =
  {|driver b0 75
driver b1 75
input b0 100
input b1 100
driver o0 50
driver o1 50
edge b0 b0_rcv o0
edge b1 b1_rcv o1
load o0 o0_rcv 5
load o1 o1_rcv 5
|}

let design =
  lazy
    (let spef = Result.get_ok (Rlc_spef.Spef.parse_res spef_src) in
     let spec = Result.get_ok (Rlc_flow.Spec.parse_res spec_src) in
     match Rlc_flow.Design.ingest ~spef ~spec () with
     | Ok d -> d
     | Error e -> failwith e)

let flow_run ?(obs = Obs.null) ~jobs d =
  Flow.run_cfg { Flow.Config.default with Flow.Config.obs; jobs = Some jobs } d

let test_flow_reports_unchanged () =
  let d = Lazy.force design in
  let off = flow_run ~jobs:1 d in
  let obs1 = Obs.create () in
  let on1 = flow_run ~obs:obs1 ~jobs:1 d in
  let obs3 = Obs.create () in
  let on3 = flow_run ~obs:obs3 ~jobs:3 d in
  Alcotest.(check string) "JSON identical obs off vs on" (Report.json_string off)
    (Report.json_string on1);
  Alcotest.(check string) "JSON identical across jobs" (Report.json_string on1)
    (Report.json_string on3);
  Alcotest.(check string) "CSV identical obs off vs on" (Report.csv_string off)
    (Report.csv_string on1);
  Alcotest.(check string) "CSV identical across jobs" (Report.csv_string on1)
    (Report.csv_string on3)

let test_flow_iteration_counters () =
  let d = Lazy.force design in
  let obs = Obs.create () in
  let r = flow_run ~obs ~jobs:2 d in
  let m = Obs.snapshot obs in
  let total_from_models =
    Array.fold_left
      (fun acc nr -> acc + Driver_model.total_iterations nr.Flow.solve.Flow.model)
      0 r.Flow.results
  in
  Alcotest.(check int) "counter = sum of Driver_model.total_iterations" total_from_models
    (Obs.counter m "flow.ceff_iterations");
  Alcotest.(check int) "counter = stats.iterations_total"
    r.Flow.stats.Flow.iterations_total
    (Obs.counter m "flow.ceff_iterations");
  Alcotest.(check int) "run counter = stats.iterations_spent"
    r.Flow.stats.Flow.iterations_spent
    (Obs.counter m "flow.ceff_iterations_run");
  Alcotest.(check int) "net counter" r.Flow.stats.Flow.n_nets (Obs.counter m "flow.nets");
  Alcotest.(check int) "hits + misses = nets" r.Flow.stats.Flow.n_nets
    (Obs.counter m "flow.cache.hits" + Obs.counter m "flow.cache.misses");
  let n_net_spans, _ = Obs.span_total m "flow.net" in
  Alcotest.(check int) "a span per net" r.Flow.stats.Flow.n_nets n_net_spans

let test_flow_trace_valid () =
  let d = Lazy.force design in
  let obs = Obs.create () in
  ignore (flow_run ~obs ~jobs:2 d);
  let m = Obs.snapshot obs in
  let j = parse_json (Export.chrome_trace m) in
  let events = as_arr (member "traceEvents" j) in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  check_well_nested events;
  let named n = List.filter (fun ev -> as_str (member "name" ev) = n) events in
  Alcotest.(check int) "flow.net spans in trace" 4 (List.length (named "flow.net"));
  List.iter
    (fun ev ->
      let args = member "args" ev in
      Alcotest.(check bool) "cache annotation" true
        (match as_str (member "cache" args) with "hit" | "miss" -> true | _ -> false);
      Alcotest.(check bool) "iteration annotation" true
        (int_of_string (as_str (member "ceff_iterations" args)) > 0))
    (named "flow.net");
  (* The metrics exporter renders the same snapshot as valid JSON too. *)
  ignore (parse_json (Export.metrics_json m))

let () =
  Alcotest.run "rlc_obs"
    [
      ( "sink",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "spans opt-out" `Quick test_spans_optout;
          Alcotest.test_case "cross-domain merge" `Quick test_cross_domain_merge;
          Alcotest.test_case "ambient trace" `Quick test_ambient_trace;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "window delta" `Quick test_window_delta;
          Alcotest.test_case "window capacity" `Quick test_window_capacity;
          Alcotest.test_case "window tick independence" `Quick test_window_tick_independence;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "progress",
        [
          Alcotest.test_case "non-tty lines" `Quick test_progress_non_tty;
          Alcotest.test_case "every gating" `Quick test_progress_every;
          Alcotest.test_case "set_total" `Quick test_progress_set_total;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "rootfind on_iter" `Quick test_rootfind_on_iter;
          Alcotest.test_case "engine counters" `Quick test_engine_counters;
        ] );
      ( "flow",
        [
          Alcotest.test_case "reports unchanged" `Quick test_flow_reports_unchanged;
          Alcotest.test_case "iteration counters" `Quick test_flow_iteration_counters;
          Alcotest.test_case "trace valid" `Quick test_flow_trace_valid;
        ] );
    ]
