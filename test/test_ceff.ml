(* Core-model tests: Ceff closed forms against quadrature, hand integrals,
   the paper's printed formulas, and time-domain circuit simulation; the
   Eq. 9 screen; and the end-to-end driver model against the reference
   simulator on paper-named cases. *)
open Rlc_ceff
open Rlc_moments
open Rlc_tline
open Rlc_waveform
open Rlc_num

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let cell_exn tech ~size =
  match Rlc_liberty.Characterize.cell_res tech ~size with
  | Ok c -> c
  | Error e -> failwith (Rlc_errors.Error.message e)

let check_rel ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float (tol *. (Float.abs expected +. 1e-300)))) msg expected actual

let tech = Rlc_devices.Tech.c018

(* Loads with known pole structure. *)
let pade_rc = Pade.of_tree (Tree.make ~cap:0. ~children:[ (100., 0., Tree.leaf 1e-12) ] ())

let pade_underdamped =
  (* zeta ~ 0.22: complex poles. *)
  Pade.of_tree (Tree.make ~cap:0. ~children:[ (14., 1e-9, Tree.leaf 1e-12) ] ())

let pade_overdamped =
  (* zeta ~ 7.9: real poles. *)
  Pade.of_tree (Tree.make ~cap:0. ~children:[ (500., 1e-9, Tree.leaf 1e-12) ] ())

let line7 = Line.of_totals ~r:101.3 ~l:7.1e-9 ~c:1.54e-12 ~length:7e-3
let pade_line7 = Pade.of_load line7 ~cl:10e-15

(* ------------------------------------------------------------- poles *)

let test_pole_classification () =
  (match Ceff.poles_of pade_underdamped with
  | Ceff.Pole_pair (s1, s2) ->
      Alcotest.(check bool) "complex pair" true (s1.Cx.im > 0. && s2.Cx.im < 0.)
  | _ -> Alcotest.fail "expected a pole pair");
  (match Ceff.poles_of pade_overdamped with
  | Ceff.Pole_pair (s1, s2) ->
      Alcotest.(check bool) "real poles" true (s1.Cx.im = 0. && s2.Cx.im = 0.);
      Alcotest.(check bool) "stable" true (s1.Cx.re < 0. && s2.Cx.re < 0.)
  | _ -> Alcotest.fail "expected a pole pair");
  (match Ceff.poles_of pade_rc with
  | Ceff.Single_pole s -> check_rel "pole at -1/RC" (-1e10) s
  | _ -> Alcotest.fail "lumped RC should degenerate to a single pole")

let test_unstable_rejected () =
  let bad = { Pade.a1 = 1e-12; a2 = 0.; a3 = 0.; b1 = -1e-10; b2 = 1e-20 } in
  Alcotest.(check bool) "raises Unstable_load" true
    (match Ceff.first_ramp bad ~f:0.5 ~tr:100e-12 with
    | _ -> false
    | exception Ceff.Unstable_load _ -> true)

(* ---------------------------------------------------- charge algebra *)

let test_rc_hand_integral () =
  (* Series RC driven by a ramp: Ceff = C (1 - (RC/(fT)) (1 - e^{-fT/RC})). *)
  let r = 100. and c = 1e-12 in
  let check_at f tr =
    let rc = r *. c in
    let ft = f *. tr in
    let expected = c *. (1. -. (rc /. ft *. (1. -. Float.exp (-.ft /. rc)))) in
    check_rel
      (Printf.sprintf "f=%.2f tr=%g" f tr)
      expected
      (Ceff.first_ramp pade_rc ~f ~tr)
  in
  check_at 0.5 100e-12;
  check_at 1.0 100e-12;
  check_at 0.7 50e-12;
  check_at 1.0 2e-9

let test_first_ramp_vs_numeric () =
  List.iter
    (fun (name, pade) ->
      List.iter
        (fun (f, tr) ->
          check_rel ~tol:1e-8
            (Printf.sprintf "%s f=%.2f tr=%.0f ps" name f (Units.in_ps tr))
            (Ceff.first_ramp_numeric pade ~f ~tr)
            (Ceff.first_ramp pade ~f ~tr))
        [ (0.3, 50e-12); (0.6, 100e-12); (1.0, 80e-12); (0.95, 400e-12) ])
    [ ("rc", pade_rc); ("underdamped", pade_underdamped); ("overdamped", pade_overdamped);
      ("line7", pade_line7) ]

let test_second_ramp_vs_numeric () =
  List.iter
    (fun (name, pade) ->
      List.iter
        (fun (f, tr1, tr2) ->
          check_rel ~tol:1e-8
            (Printf.sprintf "%s f=%.2f" name f)
            (Ceff.second_ramp_numeric pade ~f ~tr1 ~tr2)
            (Ceff.second_ramp pade ~f ~tr1 ~tr2))
        [ (0.55, 40e-12, 150e-12); (0.7, 60e-12, 300e-12); (0.3, 30e-12, 100e-12) ])
    [ ("underdamped", pade_underdamped); ("overdamped", pade_overdamped); ("line7", pade_line7) ]

let test_paper_eq4_matches () =
  List.iter
    (fun (f, tr) ->
      check_rel ~tol:1e-9 "Eq. 4 = complex implementation"
        (Ceff.first_ramp pade_overdamped ~f ~tr)
        (Ceff.first_ramp_paper_real pade_overdamped ~f ~tr))
    [ (0.4, 60e-12); (0.8, 120e-12); (1.0, 100e-12) ]

let test_paper_eq6_matches () =
  List.iter
    (fun (f, tr1, tr2) ->
      check_rel ~tol:1e-9 "Eq. 6 = complex implementation"
        (Ceff.second_ramp pade_overdamped ~f ~tr1 ~tr2)
        (Ceff.second_ramp_paper_real pade_overdamped ~f ~tr1 ~tr2))
    [ (0.55, 40e-12, 150e-12); (0.75, 80e-12, 250e-12) ]

let test_paper_real_rejects_complex_poles () =
  Alcotest.(check bool) "complex poles rejected" true
    (match Ceff.first_ramp_paper_real pade_underdamped ~f:0.5 ~tr:100e-12 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pure_cap_identity () =
  let p = Pade.fit [| 0.; 0.5e-12; 0.; 0.; 0.; 0. |] in
  check_rel "any f/tr gives Ctot" 0.5e-12 (Ceff.first_ramp p ~f:0.37 ~tr:123e-12)

let test_slow_ramp_limit () =
  (* A very slow ramp sees the full capacitance: Ceff -> a1. *)
  let c = Ceff.first_ramp pade_line7 ~f:1.0 ~tr:1e-6 in
  check_rel ~tol:1e-3 "slow ramp converges to Ctot" (Pade.total_cap pade_line7) c

let test_fast_ramp_shielding () =
  (* Fast ramps see less charge than the total capacitance on RC loads. *)
  let fast = Ceff.first_ramp pade_rc ~f:1.0 ~tr:20e-12 in
  let slow = Ceff.first_ramp pade_rc ~f:1.0 ~tr:2e-9 in
  Alcotest.(check bool) "shielding monotone" true (fast < slow && slow <= 1e-12 +. 1e-15)

let test_initial_current_identity () =
  (* I(0+) = (vdd/tr) a3/b2: the residues must sum to the high-frequency
     (near-end) capacitance. *)
  let p = pade_line7 in
  let i0 = Ceff.ramp_current p ~vdd:1.8 ~tr:100e-12 0. in
  check_rel ~tol:1e-6 "high-frequency cap" (1.8 /. 100e-12 *. (p.Pade.a3 /. p.Pade.b2)) i0

let test_ceff50_vs_ceff100 () =
  (* Figure 3's two single-Ceff variants: charge to 50% sees less of the
     load than charge to 100%. *)
  let tr = 150e-12 in
  let c50 = Ceff.first_ramp pade_line7 ~f:0.5 ~tr in
  let c100 = Ceff.first_ramp pade_line7 ~f:1.0 ~tr in
  Alcotest.(check bool)
    (Printf.sprintf "c50=%.0f fF < c100=%.0f fF <= ctot" (Units.in_ff c50) (Units.in_ff c100))
    true
    (c50 < c100 && c100 <= Pade.total_cap pade_line7 *. 1.0001)

(* Time-domain oracle: the charge drawn from a ramp source by the actual
   discretized line equals sum C_i v_i(T); Ceff from the Pade closed form
   must agree within the Pade fit + discretization error. *)
let test_charge_matches_circuit_simulation () =
  let open Rlc_circuit in
  let line = line7 and cl = 10e-15 in
  let vdd = 1.8 and tr = 150e-12 and f = 0.6 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (fun t -> if t <= 0. then 0. else Float.min vdd (vdd *. t /. tr));
  let far = ref Netlist.ground in
  Ladder.attach_load ~n_segments:200 line ~cl nl src far;
  let r = Engine.transient ~dt:0.1e-12 ~t_stop:(f *. tr) nl in
  (* Q(T) = sum_i C_i v_i(T): every ladder cap is C_tot/n at the chain
     nodes, plus cl at the far end. *)
  let n_seg = 200 in
  let dc = Line.total_c line /. float_of_int n_seg in
  let t_end = f *. tr in
  let q = ref 0. in
  (* Ladder nodes were allocated after src: mid/new pairs; shunt caps sit on
     every second allocated node. *)
  for i = 1 to n_seg do
    let node = src + (2 * i) in
    q := !q +. (dc *. Engine.voltage_at r node t_end)
  done;
  q := !q +. (cl *. Engine.voltage_at r !far t_end);
  let ceff_sim = !q /. (f *. vdd) in
  let ceff_model = Ceff.first_ramp pade_line7 ~f ~tr in
  let rel = Float.abs ((ceff_model -. ceff_sim) /. ceff_sim) in
  Alcotest.(check bool)
    (Printf.sprintf "closed form %.1f fF vs simulated charge %.1f fF (%.1f%%)"
       (Units.in_ff ceff_model) (Units.in_ff ceff_sim) (100. *. rel))
    true (rel < 0.08)

let prop_first_ramp_bounded_for_rc_chains =
  QCheck.Test.make ~name:"Ceff in (0, Ctot] for random RC chains" ~count:150
    QCheck.(
      triple (float_range 10. 500.) (float_range 0.1e-12 2e-12) (float_range 20e-12 500e-12))
    (fun (r, c, tr) ->
      let p = Pade.of_tree (Tree.make ~cap:0. ~children:[ (r, 0., Tree.leaf c) ] ()) in
      let v = Ceff.first_ramp p ~f:1.0 ~tr in
      v > 0. && v <= (c *. (1. +. 1e-9)))

let prop_closed_form_equals_quadrature =
  QCheck.Test.make ~name:"closed form = quadrature for random RLC loads" ~count:60
    QCheck.(
      quad (float_range 10. 300.) (float_range 0.5e-9 8e-9) (float_range 0.2e-12 2e-12)
        (float_range 30e-12 300e-12))
    (fun (r, l, c, tr) ->
      let p = Pade.of_tree (Tree.make ~cap:0. ~children:[ (r, l, Tree.leaf c) ] ()) in
      let a = Ceff.first_ramp p ~f:0.7 ~tr in
      let b = Ceff.first_ramp_numeric p ~f:0.7 ~tr in
      Float.abs (a -. b) < 1e-6 *. Float.abs b)

(* -------------------------------------------------------------- screen *)

let line5 = Line.of_totals ~r:72.44 ~l:5.14e-9 ~c:1.10e-12 ~length:5e-3

let test_screen_all_pass () =
  let v = Screen.evaluate ~line:line5 ~cl:20e-15 ~rs:40. ~tr1:70e-12 () in
  Alcotest.(check bool) "significant" true v.Screen.significant

let test_screen_individual_criteria () =
  let base ~cl ~rs ~tr1 = Screen.evaluate ~line:line5 ~cl ~rs ~tr1 () in
  let v = base ~cl:(0.5 *. Line.total_c line5) ~rs:40. ~tr1:70e-12 in
  Alcotest.(check bool) "big CL fails" false v.Screen.significant;
  Alcotest.(check bool) "cl flag" false v.Screen.cl_ok;
  let v = base ~cl:20e-15 ~rs:200. ~tr1:70e-12 in
  Alcotest.(check bool) "weak driver fails" false v.Screen.significant;
  Alcotest.(check bool) "rs flag" false v.Screen.rs_ok;
  let v = base ~cl:20e-15 ~rs:40. ~tr1:400e-12 in
  Alcotest.(check bool) "slow output edge fails" false v.Screen.significant;
  Alcotest.(check bool) "tr flag" false v.Screen.tr_ok

let test_screen_resistive_line () =
  let lossy = Line.of_totals ~r:400. ~l:5e-9 ~c:1.1e-12 ~length:5e-3 in
  let v = Screen.evaluate ~line:lossy ~cl:20e-15 ~rs:40. ~tr1:70e-12 () in
  Alcotest.(check bool) "overdamped line fails Rl <= 2 Z0" false v.Screen.rl_ok

(* -------------------------------------------------- end-to-end model *)

let fig1_case =
  Evaluate.case ~label:"5/1.6 75x s100" ~length_mm:5. ~width_um:1.6 ~size:75.
    ~input_slew_ps:100. ()

let fig6l_case =
  Evaluate.case ~label:"4/1.6 25x s100" ~length_mm:4. ~width_um:1.6 ~size:25.
    ~input_slew_ps:100. ()

let fig1_cmp = lazy (Evaluate.run ~dt:0.5e-12 fig1_case)

let test_inductive_case_uses_two_ramp () =
  let c = Lazy.force fig1_cmp in
  Alcotest.(check bool) "screen fires" true
    c.Evaluate.auto_model.Driver_model.screen.Screen.significant;
  (match c.Evaluate.auto_model.Driver_model.shape with
  | Driver_model.Two_ramp _ -> ()
  | Driver_model.One_ramp _ -> Alcotest.fail "expected two-ramp");
  let f = c.Evaluate.auto_model.Driver_model.f in
  Alcotest.(check bool) (Printf.sprintf "breakpoint f=%.2f in (0.5, 0.8)" f) true
    (f > 0.5 && f < 0.8)

let test_two_ramp_accuracy_on_fig1 () =
  let c = Lazy.force fig1_cmp in
  let derr = Evaluate.delay_err_pct c c.Evaluate.two_ramp in
  let serr = Evaluate.slew_err_pct c c.Evaluate.two_ramp in
  Alcotest.(check bool) (Printf.sprintf "two-ramp delay err %.1f%% within 15%%" derr) true
    (Float.abs derr < 15.);
  Alcotest.(check bool) (Printf.sprintf "two-ramp slew err %.1f%% within 25%%" serr) true
    (Float.abs serr < 25.)

let test_one_ramp_fails_on_fig1 () =
  (* The paper's headline: single-Ceff overestimates delay and grossly
     underestimates slew on inductive lines. *)
  let c = Lazy.force fig1_cmp in
  let derr = Evaluate.delay_err_pct c c.Evaluate.one_ramp in
  let serr = Evaluate.slew_err_pct c c.Evaluate.one_ramp in
  Alcotest.(check bool) (Printf.sprintf "one-ramp delay err %.1f%% > +25%%" derr) true
    (derr > 25.);
  Alcotest.(check bool) (Printf.sprintf "one-ramp slew err %.1f%% < -25%%" serr) true
    (serr < -25.)

let test_two_ramp_beats_one_ramp () =
  let c = Lazy.force fig1_cmp in
  Alcotest.(check bool) "delay improves" true
    (Float.abs (Evaluate.delay_err_pct c c.Evaluate.two_ramp)
    < Float.abs (Evaluate.delay_err_pct c c.Evaluate.one_ramp));
  Alcotest.(check bool) "slew improves" true
    (Float.abs (Evaluate.slew_err_pct c c.Evaluate.two_ramp)
    < Float.abs (Evaluate.slew_err_pct c c.Evaluate.one_ramp))

let test_weak_driver_screens_rc () =
  let c = Evaluate.run ~dt:0.5e-12 fig6l_case in
  Alcotest.(check bool) "screen rejects 25X" false
    c.Evaluate.auto_model.Driver_model.screen.Screen.significant;
  (match c.Evaluate.auto_model.Driver_model.shape with
  | Driver_model.One_ramp _ -> ()
  | Driver_model.Two_ramp _ -> Alcotest.fail "expected one-ramp");
  let derr = Evaluate.delay_err_pct c c.Evaluate.auto in
  Alcotest.(check bool) (Printf.sprintf "one-ramp delay err %.1f%% within 20%%" derr) true
    (Float.abs derr < 20.)

let test_model_waveform_consistency () =
  let c = Lazy.force fig1_cmp in
  let m = c.Evaluate.two_ramp_model in
  let w = Driver_model.output_waveform ~n:1024 m in
  Alcotest.(check bool) "monotone" true (Waveform.is_monotone_rising ~tol:1e-12 w);
  check_float ~eps:1e-9 "ends at vdd" tech.Rlc_devices.Tech.vdd (Waveform.v_final w);
  let t50 = Measure.t_frac_exn w ~vdd:tech.Rlc_devices.Tech.vdd ~edge:Measure.Rising ~frac:0.5 in
  check_float ~eps:1e-13 "50% crossing = table delay" m.Driver_model.delay_50 t50

let test_breakpoint_on_waveform () =
  let c = Lazy.force fig1_cmp in
  let m = c.Evaluate.two_ramp_model in
  match m.Driver_model.shape with
  | Driver_model.Two_ramp { ceff1; _ } ->
      let t0 = fst (List.hd (Rlc_waveform.Pwl.points m.Driver_model.pwl)) in
      let t_break = t0 +. (m.Driver_model.f *. ceff1.Driver_model.ramp) in
      check_float ~eps:1e-6 "waveform hits f*vdd at the breakpoint"
        (m.Driver_model.f *. m.Driver_model.vdd)
        (Rlc_waveform.Pwl.eval m.Driver_model.pwl t_break)
  | _ -> Alcotest.fail "expected two-ramp"

let test_forced_one_ramp_slew_geometry () =
  let c = Lazy.force fig1_cmp in
  let m = c.Evaluate.one_ramp_model in
  match m.Driver_model.shape with
  | Driver_model.One_ramp { ceff; _ } ->
      check_rel ~tol:1e-3 "slew = 0.8 Tr" (0.8 *. ceff.Driver_model.ramp)
        (Driver_model.model_slew_10_90 m)
  | _ -> Alcotest.fail "expected one-ramp"

let test_flat_step_geometry () =
  let c = Lazy.force fig1_cmp in
  let m = c.Evaluate.two_ramp_flat_model in
  match m.Driver_model.shape with
  | Driver_model.Two_ramp { ceff1; plateau; plateau_mode = Driver_model.Flat_step; _ } ->
      Alcotest.(check bool) "plateau positive for fig1" true (plateau > 0.);
      (* The waveform must hold the breakpoint voltage across the plateau. *)
      let t0 = fst (List.hd (Rlc_waveform.Pwl.points m.Driver_model.pwl)) in
      let t_break = t0 +. (m.Driver_model.f *. ceff1.Driver_model.ramp) in
      let v_mid = Rlc_waveform.Pwl.eval m.Driver_model.pwl (t_break +. (0.5 *. plateau)) in
      check_float ~eps:1e-9 "flat during plateau" (m.Driver_model.f *. m.Driver_model.vdd) v_mid;
      (* Both plateau treatments complete the transition at the same time. *)
      let stretch = c.Evaluate.two_ramp_model in
      check_float ~eps:1e-22 "same completion time"
        (Driver_model.transition_end stretch)
        (Driver_model.transition_end m)
  | _ -> Alcotest.fail "expected flat-step two-ramp"

let test_flat_step_slew_longer () =
  (* Holding at the breakpoint pushes the 90% crossing later: flat-step slew
     >= stretch slew (this substrate's waveforms have pronounced plateaus,
     which is why the flat variant scores better in the ablation). *)
  let c = Lazy.force fig1_cmp in
  Alcotest.(check bool) "flat slew >= stretch slew" true
    (c.Evaluate.two_ramp_flat.Evaluate.slew >= c.Evaluate.two_ramp.Evaluate.slew -. 1e-15);
  check_float ~eps:1e-15 "same delay anchor" c.Evaluate.two_ramp.Evaluate.delay
    c.Evaluate.two_ramp_flat.Evaluate.delay

let test_rc_tail_activation () =
  (* On the RC-screened 25X case the tangency construction must fire and
     lengthen the modeled slew. *)
  let case = fig6l_case in
  let cell = cell_exn case.Evaluate.tech ~size:case.Evaluate.size in
  let build rc_tail =
    Driver_model.model ~rc_tail ~cell ~edge:Measure.Rising ~input_slew:case.Evaluate.input_slew
      ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()
  in
  let plain = build false and tailed = build true in
  (match tailed.Driver_model.shape with
  | Driver_model.One_ramp { tail = Some t; ceff } ->
      Alcotest.(check bool) "tangency above 50%" true
        (t.Driver_model.v_switch > 0.5 *. tailed.Driver_model.vdd);
      Alcotest.(check bool) "tau = Rs * Ctot plausible" true
        (t.Driver_model.tau > 0.2 *. ceff.Driver_model.ramp);
      (* Tangency: the exponential initial slope equals the ramp slope. *)
      let slope_ramp = tailed.Driver_model.vdd /. ceff.Driver_model.ramp in
      let slope_exp = (tailed.Driver_model.vdd -. t.Driver_model.v_switch) /. t.Driver_model.tau in
      check_rel ~tol:1e-9 "tangent slopes" slope_ramp slope_exp
  | _ -> Alcotest.fail "expected a tail");
  Alcotest.(check bool) "tail lengthens slew" true
    (Driver_model.model_slew_10_90 tailed > Driver_model.model_slew_10_90 plain);
  check_float ~eps:1e-15 "delay unchanged" (Driver_model.model_delay plain)
    (Driver_model.model_delay tailed)

let test_rc_tail_improves_rc_slew () =
  (* Reproduces the paper's pointer to [11]: with strong resistive
     shielding the exponential tail recovers the slew a bare ramp misses. *)
  let c = Evaluate.run ~dt:0.5e-12 fig6l_case in
  let cell = cell_exn fig6l_case.Evaluate.tech ~size:fig6l_case.Evaluate.size in
  let tailed =
    Driver_model.model ~rc_tail:true ~cell ~edge:Measure.Rising
      ~input_slew:fig6l_case.Evaluate.input_slew ~line:fig6l_case.Evaluate.line
      ~cl:fig6l_case.Evaluate.cl ()
  in
  let err m = Float.abs (Measure.pct_error ~actual:c.Evaluate.reference.Evaluate.slew ~model:m) in
  Alcotest.(check bool) "tail beats bare ramp on slew" true
    (err (Driver_model.model_slew_10_90 tailed) < err c.Evaluate.one_ramp.Evaluate.slew)

let test_far_end_replay () =
  let c = Lazy.force fig1_cmp in
  let far = Evaluate.run_far ~dt:0.5e-12 fig1_case c.Evaluate.two_ramp_model in
  let derr =
    Measure.pct_error ~actual:far.Evaluate.far_reference.Evaluate.delay
      ~model:far.Evaluate.far_model.Evaluate.delay
  in
  Alcotest.(check bool) (Printf.sprintf "far-end delay err %.1f%% within 15%%" derr) true
    (Float.abs derr < 15.)

let prop_far_end_tracks_reference_on_screened_cases =
  (* DESIGN.md §6: across random Eq. 9-passing cases, replaying the model
     waveform must reproduce the reference far-end 50% delay.  Draws are
     kept small because each involves two transistor-level transients. *)
  QCheck.Test.make ~name:"far-end delay of model within 15% across screened cases" ~count:5
    QCheck.(
      triple (Gen.float_range 4. 6.5 |> make) (Gen.float_range 1.4 2.6 |> make)
        (Gen.float_range 75. 115. |> make))
    (fun (len_mm, wid_um, size) ->
      let case =
        Evaluate.case
          ~label:(Printf.sprintf "rand %.1f/%.1f %.0fx" len_mm wid_um size)
          ~length_mm:len_mm ~width_um:wid_um ~size ~input_slew_ps:100. ()
      in
      let cell = cell_exn case.Evaluate.tech ~size in
      let m =
        Driver_model.model ~cell ~edge:Measure.Rising ~input_slew:case.Evaluate.input_slew
          ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()
      in
      (* Only screened-inductive draws are in the model's claimed domain. *)
      QCheck.assume m.Driver_model.screen.Screen.significant;
      let far = Evaluate.run_far ~dt:1e-12 case m in
      let err =
        Measure.pct_error ~actual:far.Evaluate.far_reference.Evaluate.delay
          ~model:far.Evaluate.far_model.Evaluate.delay
      in
      Float.abs err < 15.)

(* ----------------------------------------------------------- reference *)

let test_replay_pwl_time_axis () =
  (* The internal "start the source at 10 ps" shift must round-trip: the
     returned waveforms sit on the caller's PWL time axis (driver-model
     waveforms put t = 0 at the input 50 % crossing, so starts are often
     negative), and the forced near-end node reproduces the PWL exactly at
     its own breakpoints. *)
  let line =
    (Evaluate.case ~label:"axis" ~length_mm:2. ~width_um:1.2 ~size:75. ~input_slew_ps:100. ())
      .Evaluate.line
  in
  let pwl = Pwl.ramp ~t0:(-20e-12) ~v0:0. ~v1:1.8 ~transition:80e-12 in
  let check_mode label adaptive =
    let near, far = Reference.replay_pwl ?adaptive ~pwl ~line ~cl:20e-15 () in
    check_float ~eps:1e-18
      (label ^ ": grid starts 10 ps before the source, on the caller's axis")
      (-30e-12) (Waveform.t_start near);
    check_float ~eps:1e-18 (label ^ ": far shares the near time axis")
      (Waveform.t_start near) (Waveform.t_start far);
    Alcotest.(check bool) (label ^ ": window covers the PWL plus the tail") true
      (Waveform.t_end near >= Pwl.end_time pwl +. 1e-9 -. 1e-15);
    List.iter
      (fun (t, v) ->
        check_float ~eps:1e-9 (Printf.sprintf "%s: forced node at %g" label t) v
          (Waveform.value_at near t))
      (Pwl.points pwl)
  in
  check_mode "fixed" None;
  check_mode "adaptive" (Some (Rlc_circuit.Engine.default_adaptive ()))

let test_default_t_stop_covers_table1 () =
  (* The default window must keep >= 20 time-of-flights after the ramp for
     every Table-1 line — the longest (6 mm, widest) line is the binding
     case; a shrunken window would clip the far-end 90 % crossing. *)
  List.iter
    (fun (r : Experiments.paper_row) ->
      let case = Experiments.case_of_row r in
      let t0 = 30e-12 in
      let stop =
        Reference.default_t_stop ~t0 ~input_slew:case.Evaluate.input_slew
          ~line:case.Evaluate.line
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: window >= t0 + slew + 20 tf" r.Experiments.row_label)
        true
        (stop -. t0 -. case.Evaluate.input_slew
        >= 20. *. Line.time_of_flight case.Evaluate.line -. 1e-15))
    Experiments.table1

let test_adaptive_matches_fixed_on_table1 () =
  (* Acceptance bar for the adaptive engine: on a Table-1 case the reference
     delay/slew must agree with fixed-step to < 1 % while taking several
     times fewer steps (step counts are asserted at the engine level in
     test_circuit). *)
  let case = Experiments.case_of_row (List.nth Experiments.table1 11) in
  let fixed = Evaluate.run ~dt:0.5e-12 case in
  let adaptive =
    Evaluate.run ~dt:0.5e-12 ~adaptive:(Rlc_circuit.Engine.default_adaptive ()) case
  in
  let rel what a b =
    let e = 100. *. Float.abs (a -. b) /. Float.abs b in
    Alcotest.(check bool) (Printf.sprintf "%s within 1%% (%.2f%%)" what e) true (e < 1.)
  in
  rel "reference delay" adaptive.Evaluate.reference.Evaluate.delay
    fixed.Evaluate.reference.Evaluate.delay;
  rel "reference slew" adaptive.Evaluate.reference.Evaluate.slew
    fixed.Evaluate.reference.Evaluate.slew

(* --------------------------------------------------------------- sweep *)

let test_sweep_jobs_deterministic () =
  (* run_sweep must produce identical points and statistics for every jobs
     value, and the parallel progress callback must deliver each completed
     count exactly once. *)
  let cases =
    Evaluate.case ~label:"short" ~length_mm:1. ~width_um:0.8 ~size:25. ~input_slew_ps:200. ()
    :: List.map Experiments.case_of_row (List.filteri (fun i _ -> i < 4) Experiments.table1)
  in
  let s1 = Experiments.run_sweep ~dt:1e-12 ~jobs:1 cases in
  let seen = ref [] in
  let mu = Mutex.create () in
  let s4 =
    Experiments.run_sweep ~dt:1e-12 ~jobs:4
      ~progress:(fun k _n ->
        Mutex.lock mu;
        seen := k :: !seen;
        Mutex.unlock mu)
      cases
  in
  Alcotest.(check int) "n_swept" s1.Experiments.n_swept s4.Experiments.n_swept;
  Alcotest.(check int) "n_inductive" s1.Experiments.n_inductive s4.Experiments.n_inductive;
  Alcotest.(check bool) "some case was inductive" true (s1.Experiments.n_inductive > 0);
  Alcotest.(check bool) "stretch stats identical" true
    (s1.Experiments.stretch = s4.Experiments.stretch);
  Alcotest.(check bool) "flat stats identical" true (s1.Experiments.flat = s4.Experiments.flat);
  let key p =
    ( p.Experiments.ref_delay,
      p.Experiments.ref_slew,
      p.Experiments.model_delay,
      p.Experiments.model_slew,
      p.Experiments.delay_err_pct,
      p.Experiments.slew_err_pct )
  in
  Alcotest.(check bool) "points identical and in case order" true
    (List.map key s1.Experiments.points = List.map key s4.Experiments.points);
  let expected = List.init s4.Experiments.n_inductive (fun i -> i + 1) in
  Alcotest.(check (list int)) "progress counts each completion once" expected
    (List.sort compare !seen)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_ceff"
    [
      ( "poles",
        [
          Alcotest.test_case "classification" `Quick test_pole_classification;
          Alcotest.test_case "unstable rejected" `Quick test_unstable_rejected;
        ] );
      ( "charge",
        [
          Alcotest.test_case "RC hand integral" `Quick test_rc_hand_integral;
          Alcotest.test_case "first ramp vs quadrature" `Quick test_first_ramp_vs_numeric;
          Alcotest.test_case "second ramp vs quadrature" `Quick test_second_ramp_vs_numeric;
          Alcotest.test_case "paper Eq. 4" `Quick test_paper_eq4_matches;
          Alcotest.test_case "paper Eq. 6" `Quick test_paper_eq6_matches;
          Alcotest.test_case "Eq. 4 rejects complex poles" `Quick test_paper_real_rejects_complex_poles;
          Alcotest.test_case "pure cap identity" `Quick test_pure_cap_identity;
          Alcotest.test_case "slow ramp limit" `Quick test_slow_ramp_limit;
          Alcotest.test_case "fast ramp shielding" `Quick test_fast_ramp_shielding;
          Alcotest.test_case "initial current identity" `Quick test_initial_current_identity;
          Alcotest.test_case "Ceff50 < Ceff100" `Quick test_ceff50_vs_ceff100;
          Alcotest.test_case "charge vs circuit simulation" `Quick test_charge_matches_circuit_simulation;
          q prop_first_ramp_bounded_for_rc_chains;
          q prop_closed_form_equals_quadrature;
        ] );
      ( "screen",
        [
          Alcotest.test_case "all pass" `Quick test_screen_all_pass;
          Alcotest.test_case "individual criteria" `Quick test_screen_individual_criteria;
          Alcotest.test_case "resistive line" `Quick test_screen_resistive_line;
        ] );
      ( "model",
        [
          Alcotest.test_case "inductive -> two-ramp" `Slow test_inductive_case_uses_two_ramp;
          Alcotest.test_case "two-ramp accuracy (fig1)" `Slow test_two_ramp_accuracy_on_fig1;
          Alcotest.test_case "one-ramp failure (fig1)" `Slow test_one_ramp_fails_on_fig1;
          Alcotest.test_case "two-ramp beats one-ramp" `Slow test_two_ramp_beats_one_ramp;
          Alcotest.test_case "weak driver -> RC" `Slow test_weak_driver_screens_rc;
          Alcotest.test_case "waveform consistency" `Slow test_model_waveform_consistency;
          Alcotest.test_case "breakpoint placement" `Slow test_breakpoint_on_waveform;
          Alcotest.test_case "one-ramp slew geometry" `Slow test_forced_one_ramp_slew_geometry;
          Alcotest.test_case "flat-step geometry" `Slow test_flat_step_geometry;
          Alcotest.test_case "flat-step slew" `Slow test_flat_step_slew_longer;
          Alcotest.test_case "rc-tail activation" `Slow test_rc_tail_activation;
          Alcotest.test_case "rc-tail improves slew" `Slow test_rc_tail_improves_rc_slew;
          Alcotest.test_case "far-end replay" `Slow test_far_end_replay;
          q prop_far_end_tracks_reference_on_screened_cases;
        ] );
      ( "reference",
        [
          Alcotest.test_case "replay_pwl time axis round-trips" `Quick
            test_replay_pwl_time_axis;
          Alcotest.test_case "default_t_stop covers 20 tf on Table 1" `Quick
            test_default_t_stop_covers_table1;
          Alcotest.test_case "adaptive matches fixed on Table 1 (<1%)" `Slow
            test_adaptive_matches_fixed_on_table1;
        ] );
      ( "sweep",
        [ Alcotest.test_case "jobs-parallel sweep deterministic" `Slow test_sweep_jobs_deterministic ] );
    ]
