(* Rlc_flow.Optimize tests: slack recovery on the seeded under-sized bus8
   design, byte-identical reports across jobs counts, and the no-op path
   when every net already meets timing. *)

module Flow = Rlc_flow.Flow
module Optimize = Rlc_flow.Optimize
module Report = Rlc_flow.Report
module Spec = Rlc_flow.Spec
module Delta = Rlc_flow.Delta

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs from _build/default/test/ (examples one up, staged by
   the (deps ...) in test/dune); dune exec from the project root. *)
let fixture name =
  if Sys.file_exists (Filename.concat "examples" name) then Filename.concat "examples" name
  else Filename.concat "../examples" name

let bus8_spef = fixture "bus8.spef"
let bus8_spec = fixture "bus8.spec"
let sizing_spec = fixture "bus8_sizing.spec"
let ps = Rlc_num.Units.ps

let load_spef () = Result.get_ok (Rlc_spef.Spef.parse_res (read_file bus8_spef))
let load_spec path = Result.get_ok (Spec.parse_res (read_file path))

let run_optimize ?(jobs = 1) ~spec ~required () =
  let cfg = { Flow.Config.default with Flow.Config.jobs = Some jobs } in
  match Optimize.run ~required cfg ~spef:(load_spef ()) ~spec:(load_spec spec) () with
  | Ok o -> o
  | Error e -> Alcotest.fail (Rlc_errors.Error.message e)

(* The seeded spec under-sizes every driver: the optimizer must close the
   150 ps requirement entirely with resizes, and the verified post-fix flow
   must show the recovery. *)
let test_recovers_slack () =
  let o = run_optimize ~spec:sizing_spec ~required:(ps 150.) () in
  Alcotest.(check bool) "seeded design violates" true
    (o.Optimize.stats.Optimize.o_violations_before > 0);
  Alcotest.(check int) "optimization closes timing" 0
    o.Optimize.stats.Optimize.o_violations_after;
  Alcotest.(check bool) "drivers were resized" true (o.Optimize.delta.Delta.drivers <> []);
  let worst res =
    Array.fold_left (fun acc r -> Float.max acc r.Flow.arrival) neg_infinity res.Flow.results
  in
  Alcotest.(check bool) "worst arrival improves" true
    (worst o.Optimize.after < worst o.Optimize.before);
  Alcotest.(check bool) "candidates evaluated" true
    (o.Optimize.stats.Optimize.o_candidates > 0);
  Array.iter
    (fun f ->
      match f.Optimize.f_fix with
      | Optimize.Resize _ ->
          Alcotest.(check bool)
            (Printf.sprintf "resized net %s gains slack" f.Optimize.f_net.Rlc_flow.Design.name)
            true
            (f.Optimize.f_slack_after > f.Optimize.f_slack_before)
      | Optimize.Repeaters _ | Optimize.Unfixable -> ())
    o.Optimize.fixes

(* Candidate searches fan out over the pool, but every search is a pure
   function of the base results — reports must not depend on the jobs
   count. *)
let test_jobs_deterministic () =
  let o1 = run_optimize ~jobs:1 ~spec:sizing_spec ~required:(ps 150.) () in
  let o4 = run_optimize ~jobs:4 ~spec:sizing_spec ~required:(ps 150.) () in
  Alcotest.(check string) "json identical across jobs" (Report.optimize_json_string o1)
    (Report.optimize_json_string o4);
  Alcotest.(check string) "csv identical across jobs" (Report.optimize_csv_string o1)
    (Report.optimize_csv_string o4)

(* A design that already meets timing must come through untouched: no
   searches, no delta, and a post-"optimization" flow byte-identical to the
   base one. *)
let test_noop_when_timing_met () =
  let o = run_optimize ~spec:bus8_spec ~required:(ps 400.) () in
  Alcotest.(check int) "no violations before" 0 o.Optimize.stats.Optimize.o_violations_before;
  Alcotest.(check int) "no violations after" 0 o.Optimize.stats.Optimize.o_violations_after;
  Alcotest.(check int) "no nets searched" 0 (Array.length o.Optimize.fixes);
  Alcotest.(check bool) "no delta applied" true (o.Optimize.delta.Delta.drivers = []);
  Alcotest.(check string) "flow result untouched" (Report.json_string o.Optimize.before)
    (Report.json_string o.Optimize.after)

let () =
  Alcotest.run "rlc_optimize"
    [
      ( "optimize",
        [
          Alcotest.test_case "recovers slack on seeded bus8" `Quick test_recovers_slack;
          Alcotest.test_case "reports identical for jobs 1 vs 4" `Quick test_jobs_deterministic;
          Alcotest.test_case "no-op when timing already met" `Quick test_noop_when_timing_met;
        ] );
    ]
