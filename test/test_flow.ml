(* Rlc_flow tests: spec parsing, design ingest + levelization, the domain
   pool, the result cache, and the flow's determinism across jobs counts. *)

module Spec = Rlc_flow.Spec
module Design = Rlc_flow.Design
module Cache = Rlc_flow.Cache
module Pool = Rlc_parallel.Pool
module Flow = Rlc_flow.Flow
module Report = Rlc_flow.Report

(* ---------------------------------------------------------- fixtures *)

(* Two identical bus bits feeding two identical local nets — small enough
   to keep runtest fast, rich enough to exercise levels, edge alternation
   and cache collisions. *)
let spef_src =
  {|*SPEF "IEEE 1481-1998"
*DESIGN "flow_test"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 PH
*D_NET b0 300
*CONN
*P b0_drv O
*P b0_rcv I
*CAP
1 b0_1 150
2 b0_rcv 150
*RES
1 b0_drv b0_1 30
2 b0_1 b0_rcv 30
*INDUC
1 b0_drv b0_1 1500
2 b0_1 b0_rcv 1500
*END
*D_NET b1 300
*CONN
*P b1_drv O
*P b1_rcv I
*CAP
1 b1_1 150
2 b1_rcv 150
*RES
1 b1_drv b1_1 30
2 b1_1 b1_rcv 30
*INDUC
1 b1_drv b1_1 1500
2 b1_1 b1_rcv 1500
*END
*D_NET o0 90
*CONN
*P o0_drv O
*P o0_rcv I
*CAP
1 o0_1 45
2 o0_rcv 45
*RES
1 o0_drv o0_1 60
2 o0_1 o0_rcv 60
*END
*D_NET o1 90
*CONN
*P o1_drv O
*P o1_rcv I
*CAP
1 o1_1 45
2 o1_rcv 45
*RES
1 o1_drv o1_1 60
2 o1_1 o1_rcv 60
*END
|}

let spec_src =
  {|# two bus bits into two local nets
driver b0 75
driver b1 75
input b0 100
input b1 100
driver o0 50
driver o1 50
edge b0 b0_rcv o0
edge b1 b1_rcv o1
load o0 o0_rcv 5
load o1 o1_rcv 5
|}

(* Typed-error parses, flattened to strings so [check_error] can treat
   parse and ingest failures uniformly. *)
let spef_parse src = Result.map_error Rlc_errors.Error.message (Rlc_spef.Spef.parse_res src)
let spec_parse src = Result.map_error Rlc_errors.Error.message (Spec.parse_res src)
let spef = lazy (Result.get_ok (spef_parse spef_src))
let spec = lazy (Result.get_ok (spec_parse spec_src))

let design =
  lazy
    (match Design.ingest ~spef:(Lazy.force spef) ~spec:(Lazy.force spec) () with
    | Ok d -> d
    | Error e -> failwith e)

let ingest_with ~spec_src =
  match spec_parse spec_src with
  | Error e -> Error e
  | Ok spec -> Design.ingest ~spef:(Lazy.force spef) ~spec ()

let check_error msg = function
  | Ok _ -> Alcotest.fail (msg ^ ": accepted")
  | Error e -> Alcotest.(check bool) (msg ^ ": message non-empty") true (String.length e > 0)

(* -------------------------------------------------------------- spec *)

let test_spec_parse () =
  let s = Lazy.force spec in
  Alcotest.(check int) "drivers" 4 (List.length s.Spec.drivers);
  Alcotest.(check int) "inputs" 2 (List.length s.Spec.inputs);
  Alcotest.(check int) "edges" 2 (List.length s.Spec.edges);
  Alcotest.(check int) "loads" 2 (List.length s.Spec.loads);
  Alcotest.(check (float 1e-18)) "slew in seconds" 100e-12 (List.assoc "b0" s.Spec.inputs);
  Alcotest.(check (float 1e-20)) "load in farads" 5e-15
    (match s.Spec.loads with (_, _, c) :: _ -> c | [] -> nan)

let test_spec_roundtrip () =
  let s = Lazy.force spec in
  let s' = Result.get_ok (spec_parse (Spec.to_string s)) in
  Alcotest.(check bool) "roundtrip" true (s = s')

let test_spec_errors () =
  check_error "duplicate driver" (spec_parse "driver a 75\ndriver a 50\n");
  check_error "duplicate input" (spec_parse "input a 100\ninput a 50\n");
  check_error "negative size" (spec_parse "driver a -3\n");
  check_error "zero slew" (spec_parse "input a 0\n");
  check_error "self edge" (spec_parse "edge a p a\n");
  check_error "negative load" (spec_parse "load a p -1\n");
  check_error "unknown keyword" (spec_parse "wire a b\n");
  check_error "bad number" (spec_parse "driver a huge\n");
  (* Typed errors carry the 1-based line number. *)
  match Spec.parse_res "driver a 75\ndriver a 50\n" with
  | Error (Rlc_errors.Error.Parse { line = Some 2; _ }) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Rlc_errors.Error.to_string e)
  | Ok _ -> Alcotest.fail "duplicate accepted"

let test_spec_comments () =
  let s = Result.get_ok (spec_parse "# comment\n  // also comment\ndriver a 75 # trailing\n") in
  Alcotest.(check int) "one driver" 1 (List.length s.Spec.drivers)

let test_spec_default () =
  let s = Spec.default_of_spef ~size:60. ~slew:80e-12 (Lazy.force spef) in
  Alcotest.(check int) "all nets driven" 4 (List.length s.Spec.drivers);
  Alcotest.(check int) "all nets inputs" 4 (List.length s.Spec.inputs);
  Alcotest.(check (float 0.)) "size" 60. (List.assoc "b0" s.Spec.drivers)

(* ------------------------------------------------------------ ingest *)

let test_ingest_shape () =
  let d = Lazy.force design in
  Alcotest.(check int) "nets" 4 (Design.n_nets d);
  Alcotest.(check int) "levels" 2 (Array.length d.Design.levels);
  (* Ids are sorted by name: b0 b1 o0 o1. *)
  Alcotest.(check (list string)) "names" [ "b0"; "b1"; "o0"; "o1" ]
    (Array.to_list (Array.map (fun (n : Design.net) -> n.Design.name) d.Design.nets));
  Alcotest.(check (list int)) "level 0" [ 0; 1 ] (Array.to_list d.Design.levels.(0));
  Alcotest.(check (list int)) "level 1" [ 2; 3 ] (Array.to_list d.Design.levels.(1));
  let b0 = d.Design.nets.(0) and o0 = d.Design.nets.(2) in
  Alcotest.(check string) "root from Output conn" "b0_drv" b0.Design.root_pin;
  Alcotest.(check (list int)) "fanout" [ 2 ] b0.Design.fanout;
  Alcotest.(check bool) "o0 fanin is b0" true (o0.Design.fanin = Some 0);
  Alcotest.(check bool) "b0 is primary" true (Option.is_some b0.Design.prim_slew);
  Alcotest.(check bool) "o0 is not primary" true (Option.is_none o0.Design.prim_slew);
  Alcotest.(check (list (float 0.))) "sizes deduped" [ 50.; 75. ] d.Design.sizes;
  (* b0's tree carries o0's gate input cap at the edge pin, so its total cap
     exceeds the bare wire cap. *)
  let wire = Rlc_spef.Spef.net_total_cap (Option.get (Rlc_spef.Spef.find_net (Lazy.force spef) "b0")) in
  Alcotest.(check bool) "fanout gate cap added" true
    (Rlc_moments.Tree.total_cap b0.Design.tree > wire +. 1e-16);
  (* o0's lumped far load is the explicit 5 fF. *)
  Alcotest.(check (float 1e-20)) "explicit load" 5e-15 o0.Design.cl

let test_ingest_errors () =
  check_error "net missing from SPEF" (ingest_with ~spec_src:"driver nope 75\ninput nope 100\n");
  check_error "edge to net without driver"
    (ingest_with ~spec_src:"driver b0 75\ninput b0 100\nedge b0 b0_rcv o0\n");
  check_error "multiple fanin"
    (ingest_with
       ~spec_src:
         "driver b0 75\ninput b0 100\ndriver b1 75\ninput b1 100\ndriver o0 50\nedge b0 b0_rcv \
          o0\nedge b1 b1_rcv o0\n");
  check_error "no slew source"
    (ingest_with ~spec_src:"driver b0 75\ninput b0 100\ndriver o0 50\n");
  check_error "both input and edge-driven"
    (ingest_with
       ~spec_src:"driver b0 75\ninput b0 100\ndriver o0 50\ninput o0 100\nedge b0 b0_rcv o0\n");
  check_error "cycle"
    (ingest_with
       ~spec_src:"driver b0 75\ndriver b1 75\nedge b0 b0_rcv b1\nedge b1 b1_rcv b0\n");
  check_error "edge pin not on the net"
    (ingest_with
       ~spec_src:
         "driver b0 75\ninput b0 100\ndriver o0 50\nedge b0 nonexistent_pin o0\n")

let test_ingest_no_driver_conn () =
  (* A net whose SPEF section lacks an Output *CONN cannot be rooted. *)
  let src =
    "*D_NET n 1.0\n*CONN\n*P rcv I\n*CAP\n1 a 1.0\n2 rcv 1.0\n*RES\n1 a rcv 10\n*END\n"
  in
  let spef = Result.get_ok (spef_parse src) in
  let spec = Result.get_ok (spec_parse "driver n 75\ninput n 100\n") in
  check_error "no Output conn" (Design.ingest ~spef ~spec ())

(* -------------------------------------------------------------- pool *)

let test_pool_map () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "jobs" 4 (Pool.jobs p);
      let r = Pool.map p 100 (fun i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri (fun i v -> Alcotest.(check int) "in order" (i * i) v) r;
      (* Reuse: a second batch on the same pool. *)
      let r2 = Pool.map p 7 (fun i -> -i) in
      Alcotest.(check int) "second batch" (-6) r2.(6);
      Alcotest.(check int) "empty batch" 0 (Array.length (Pool.map p 0 (fun i -> i))))

let test_pool_sequential () =
  Pool.with_pool ~jobs:1 (fun p ->
      let r = Pool.map p 10 (fun i -> 2 * i) in
      Alcotest.(check int) "inline" 18 r.(9))

let test_pool_exception () =
  (* The lowest-index exception wins, deterministically, and the pool
     survives for the next batch. *)
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p 50 (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i) with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "lowest index" "3" msg);
      let r = Pool.map p 5 (fun i -> i + 1) in
      Alcotest.(check int) "pool still usable" 5 r.(4))

let test_pool_parallelism () =
  (* All domains really participate: count distinct domain ids seen. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let seen = Array.make 256 false in
      let r =
        Pool.map p 64 (fun _ ->
            let id = (Domain.self () :> int) in
            (* benign race: worst case we under-count *)
            seen.(id mod 256) <- true;
            Unix.sleepf 0.001;
            id)
      in
      ignore r;
      let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen in
      Alcotest.(check bool) "more than one domain" true (n > 1))

(* ------------------------------------------------------------- cache *)

let test_cache_basics () =
  let c : int Cache.t = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  let v, hit = Cache.find_or_add c "k" compute in
  Alcotest.(check bool) "miss" false hit;
  Alcotest.(check int) "value" 42 v;
  let v', hit' = Cache.find_or_add c "k" compute in
  Alcotest.(check bool) "hit" true hit';
  Alcotest.(check int) "same value" 42 v';
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  Alcotest.(check int) "length" 1 (Cache.length c);
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.length c)

let test_cache_sharded_concurrent () =
  let c : int Cache.t = Cache.create ~shards:4 () in
  Alcotest.(check int) "power-of-two count kept" 4 (Cache.shards c);
  Alcotest.(check int) "odd count rounds up" 8 (Cache.shards (Cache.create ~shards:5 () : int Cache.t));
  Alcotest.(check int) "zero clamps to one shard" 1 (Cache.shards (Cache.create ~shards:0 () : int Cache.t));
  (* Hammer one cache from several domains.  Every find_or_add counts
     exactly one hit or one miss, values are first-insert-wins, and the
     per-shard stats must reconcile with the aggregate view. *)
  let keys = Array.init 64 (fun i -> Printf.sprintf "net-%d-slew" i) in
  let rounds = 10 and writers = 4 in
  let worker () =
    for _ = 1 to rounds do
      Array.iter
        (fun k ->
          let v, _hit = Cache.find_or_add c k (fun () -> String.length k) in
          assert (v = String.length k))
        keys
    done
  in
  let domains = List.init writers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "one entry per distinct key" (Array.length keys) (Cache.length c);
  Alcotest.(check int) "hits + misses = lookups" (writers * rounds * Array.length keys)
    (Cache.hits c + Cache.misses c);
  Alcotest.(check bool) "each key missed at least once" true
    (Cache.misses c >= Array.length keys);
  let stats = Cache.shard_stats c in
  Alcotest.(check int) "one stat per shard" (Cache.shards c) (Array.length stats);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  Alcotest.(check int) "shard lengths sum to length" (Cache.length c)
    (sum (fun s -> s.Cache.s_length));
  Alcotest.(check int) "shard hits sum to hits" (Cache.hits c) (sum (fun s -> s.Cache.s_hits));
  Alcotest.(check int) "shard misses sum to misses" (Cache.misses c)
    (sum (fun s -> s.Cache.s_misses));
  Cache.clear c;
  Alcotest.(check int) "clear empties every shard" 0 (Cache.length c)

let test_cache_quantize () =
  let q = Cache.quantize ~digits:9 in
  Alcotest.(check bool) "collapses tiny diffs" true (q 1.0000000001 = q 1.0000000002);
  Alcotest.(check bool) "keeps real diffs" true (q 1.001 <> q 1.002);
  Alcotest.(check (float 0.)) "exact zero" 0. (q 0.);
  Alcotest.(check bool) "nan passthrough" true (Float.is_nan (q Float.nan));
  let qs = Cache.quantize_slew ~grid:0.1e-12 in
  Alcotest.(check (float 1e-30)) "snaps to grid" 100e-12 (qs 100.04e-12);
  Alcotest.(check bool) "same bucket same key" true (qs 50.01e-12 = qs 49.99e-12)

(* -------------------------------------------------------------- flow *)

(* All flow tests drive the Config record directly — it is the only entry
   point since the [Flow.run] shim was removed. *)
let run ?(jobs = 1) ?(use_cache = true) ?cache d =
  Flow.run_cfg { Flow.Config.default with Flow.Config.jobs = Some jobs; use_cache; cache } d

let test_flow_determinism () =
  let d = Lazy.force design in
  let r1 = run ~jobs:1 d in
  let r4 = run ~jobs:4 d in
  Alcotest.(check string) "json identical across jobs" (Report.json_string r1)
    (Report.json_string r4);
  Alcotest.(check string) "csv identical across jobs" (Report.csv_string r1)
    (Report.csv_string r4);
  (* And a no-cache run computes the very same numbers. *)
  let r_nc = run ~jobs:1 ~use_cache:false d in
  Alcotest.(check string) "cache does not change results" (Report.json_string r1)
    (Report.json_string r_nc)

let test_flow_results () =
  let d = Lazy.force design in
  let r = run ~jobs:1 d in
  Alcotest.(check int) "all nets solved" 4 (Array.length r.Flow.results);
  let b0 = r.Flow.results.(0) and b1 = r.Flow.results.(1) and o0 = r.Flow.results.(2) in
  Alcotest.(check bool) "roots rise" true (b0.Flow.edge = Rlc_waveform.Measure.Rising);
  Alcotest.(check bool) "level 1 falls" true (o0.Flow.edge = Rlc_waveform.Measure.Falling);
  (* Identical bus bits time identically. *)
  Alcotest.(check (float 0.)) "b0 = b1 delay" b0.Flow.solve.Flow.stage_delay
    b1.Flow.solve.Flow.stage_delay;
  (* Arrivals accumulate along the chain. *)
  Alcotest.(check (float 1e-15)) "arrival = parent + stage"
    (b0.Flow.arrival +. o0.Flow.solve.Flow.stage_delay)
    o0.Flow.arrival;
  Alcotest.(check bool) "positive delays" true (b0.Flow.solve.Flow.stage_delay > 0.);
  (* Handoff: o0's input slew derives from b0's far slew like Rlc_sta does. *)
  let expect =
    Cache.quantize_slew
      (Rlc_sta.Sta.handoff_slew ~far_slew:b0.Flow.solve.Flow.far_slew)
  in
  Alcotest.(check (float 1e-16)) "slew handoff" expect o0.Flow.input_slew;
  (* Critical path runs from a level-0 net to a level-1 net. *)
  match Flow.critical_path r with
  | [ first; last ] ->
      Alcotest.(check int) "path root level" 0 first.Flow.net.Design.level;
      Alcotest.(check int) "path end level" 1 last.Flow.net.Design.level
  | p -> Alcotest.fail (Printf.sprintf "expected 2-net path, got %d" (List.length p))

let test_flow_cache_effect () =
  let d = Lazy.force design in
  let cache = Flow.create_cache () in
  let cold = run ~jobs:1 ~cache d in
  (* b1 hits b0's entry, o1 hits o0's: 2 misses, 2 hits. *)
  Alcotest.(check int) "cold misses" 2 cold.Flow.stats.Flow.cache_misses;
  Alcotest.(check int) "cold hits" 2 cold.Flow.stats.Flow.cache_hits;
  Alcotest.(check bool) "cold spends iterations" true
    (cold.Flow.stats.Flow.iterations_spent > 0);
  (* >= 2x fewer iterations actually run than modeled, thanks to the bits. *)
  Alcotest.(check bool) "cache halves the work" true
    (2 * cold.Flow.stats.Flow.iterations_spent <= cold.Flow.stats.Flow.iterations_total);
  let warm = run ~jobs:1 ~cache d in
  Alcotest.(check int) "warm misses" 0 warm.Flow.stats.Flow.cache_misses;
  Alcotest.(check int) "warm hits" 4 warm.Flow.stats.Flow.cache_hits;
  Alcotest.(check int) "warm spends nothing" 0 warm.Flow.stats.Flow.iterations_spent;
  Alcotest.(check string) "warm = cold results" (Report.json_string cold)
    (Report.json_string warm)

let test_flow_stats_and_report () =
  let d = Lazy.force design in
  let r = run ~jobs:1 d in
  Alcotest.(check int) "levels" 2 r.Flow.stats.Flow.n_levels;
  Alcotest.(check bool) "phases recorded" true (List.length r.Flow.stats.Flow.phases >= 3);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let json = Report.json_string ~required:200e-12 r in
  Alcotest.(check bool) "has slack" true (contains json "worst_slack_ps");
  Alcotest.(check bool) "no scheduling-dependent fields" true
    (not (contains json "cache") && not (contains json "phase"));
  let csv = Report.csv_string r in
  Alcotest.(check int) "csv rows = nets + header" 5
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' csv)))

let test_flow_config_defaults () =
  (* The Config record's defaults mirror the old optional-argument defaults. *)
  let c = Flow.Config.default in
  Alcotest.(check (float 0.)) "dt" 0.5e-12 c.Flow.Config.dt;
  Alcotest.(check bool) "jobs defaults to the pool's choice" true (c.Flow.Config.jobs = None);
  Alcotest.(check bool) "cache on" true c.Flow.Config.use_cache;
  Alcotest.(check int) "quantize digits" 9 c.Flow.Config.quantize_digits;
  Alcotest.(check (float 0.)) "slew grid" 0.1e-12 c.Flow.Config.slew_grid;
  Alcotest.(check bool) "no borrowed pool" true (c.Flow.Config.pool = None);
  let c2 = Flow.Config.with_jobs 3 c in
  Alcotest.(check bool) "with_jobs" true (c2.Flow.Config.jobs = Some 3);
  let cache = Flow.create_cache () in
  let c3 = Flow.Config.with_cache cache c in
  Alcotest.(check bool) "with_cache" true
    (match c3.Flow.Config.cache with Some c -> c == cache | None -> false)

let test_flow_borrowed_pool () =
  let d = Lazy.force design in
  let baseline = run ~jobs:2 d in
  Pool.with_pool ~jobs:2 (fun pool ->
      let cfg = { Flow.Config.default with Flow.Config.pool = Some pool } in
      let r1 = Flow.run_cfg cfg d in
      (* The pool survives the run (borrowed, not owned) and a second run
         over the same pool still works and agrees byte-for-byte. *)
      let r2 = Flow.run_cfg cfg d in
      Alcotest.(check string) "borrowed pool json" (Report.json_string baseline)
        (Report.json_string r1);
      Alcotest.(check string) "pool reusable across runs" (Report.json_string r1)
        (Report.json_string r2))

(* ------------------------------------------------------------- delta *)

module Delta = Rlc_flow.Delta

let time_cfg cfg =
  match Flow.time cfg ~spef:(Lazy.force spef) ~spec:(Lazy.force spec) () with
  | Ok t -> t
  | Error e -> Alcotest.failf "time: %s" (Rlc_errors.Error.message e)

(* b0's parasitic block with every capacitance scaled 150 -> 180 fF. *)
let b0_heavier =
  "*D_NET b0 360\n*CONN\n*P b0_drv O\n*P b0_rcv I\n*CAP\n1 b0_1 180\n2 b0_rcv 180\n\
   *RES\n1 b0_drv b0_1 30\n2 b0_1 b0_rcv 30\n*INDUC\n1 b0_drv b0_1 1500\n2 b0_1 b0_rcv 1500\n*END"

(* The ground truth every retime must match: apply the delta to the
   sources, ingest from scratch, run the flow cold. *)
let cold_of delta =
  match Delta.apply ~spef:(Lazy.force spef) ~spec:(Lazy.force spec) delta with
  | Error e -> Alcotest.failf "apply: %s" (Rlc_errors.Error.message e)
  | Ok a -> (
      match Design.ingest ~spef:a.Delta.spef ~spec:a.Delta.spec () with
      | Error e -> Alcotest.failf "ingest: %s" e
      | Ok d -> Flow.run_cfg Flow.Config.default d)

let check_delta name ~retimed delta =
  let t = time_cfg Flow.Config.default in
  match Flow.retime t delta with
  | Error e -> Alcotest.failf "%s: retime: %s" name (Rlc_errors.Error.message e)
  | Ok (t', stats) ->
      Alcotest.(check int) (name ^ ": retimed = cone size") retimed stats.Flow.retimed;
      Alcotest.(check int) (name ^ ": retimed + reused = nets") 4
        (stats.Flow.retimed + stats.Flow.reused);
      let cold = cold_of delta in
      let warm = Flow.Timed.result t' in
      Alcotest.(check string) (name ^ ": json byte-identical to cold run")
        (Report.json_string cold) (Report.json_string warm);
      Alcotest.(check string) (name ^ ": csv byte-identical to cold run")
        (Report.csv_string cold) (Report.csv_string warm);
      t'

let test_delta_cap_edit () =
  (* Heavier b0 dirties b0 and its fanout o0; b1/o1 reuse their solves. *)
  ignore (check_delta "cap edit" ~retimed:2 { Delta.empty with Delta.nets = [ ("b0", b0_heavier) ] })

let test_delta_driver_resize () =
  (* Resizing o0's driver also dirties b0 — its tree folds in o0's gate
     input cap — and through b0's cone that is still just {b0, o0}. *)
  ignore (check_delta "driver resize" ~retimed:2 { Delta.empty with Delta.drivers = [ ("o0", 60.) ] })

let test_delta_slew_edit () =
  ignore (check_delta "slew edit" ~retimed:2 { Delta.empty with Delta.slews = [ ("b0", 120e-12) ] })

let test_delta_compose () =
  (* Two retimes in sequence equal one cold run of both edits. *)
  let d1 = { Delta.empty with Delta.nets = [ ("b0", b0_heavier) ] } in
  let d2 = { Delta.empty with Delta.drivers = [ ("b1", 60.) ] } in
  let t = time_cfg Flow.Config.default in
  let t1 =
    match Flow.retime t d1 with
    | Ok (t1, _) -> t1
    | Error e -> Alcotest.failf "first retime: %s" (Rlc_errors.Error.message e)
  in
  match Flow.retime t1 d2 with
  | Error e -> Alcotest.failf "second retime: %s" (Rlc_errors.Error.message e)
  | Ok (t2, stats) ->
      Alcotest.(check int) "second delta retimes b1's cone" 2 stats.Flow.retimed;
      let a1 =
        Result.get_ok (Delta.apply ~spef:(Lazy.force spef) ~spec:(Lazy.force spec) d1)
      in
      let a2 = Result.get_ok (Delta.apply ~spef:a1.Delta.spef ~spec:a1.Delta.spec d2) in
      let cold =
        match Design.ingest ~spef:a2.Delta.spef ~spec:a2.Delta.spec () with
        | Ok d -> Flow.run_cfg Flow.Config.default d
        | Error e -> Alcotest.failf "ingest: %s" e
      in
      Alcotest.(check string) "composed retimes = cold run of both edits"
        (Report.json_string cold)
        (Report.json_string (Flow.Timed.result t2))

let test_delta_obs_counters () =
  let sink = Rlc_obs.Obs.create () in
  let cfg = { Flow.Config.default with Flow.Config.obs = sink } in
  let t = time_cfg cfg in
  match Flow.retime t { Delta.empty with Delta.nets = [ ("b0", b0_heavier) ] } with
  | Error e -> Alcotest.failf "retime: %s" (Rlc_errors.Error.message e)
  | Ok (_, stats) ->
      let m = Rlc_obs.Obs.snapshot sink in
      Alcotest.(check int) "flow.retimed counter" stats.Flow.retimed
        (Rlc_obs.Obs.counter m "flow.retimed");
      Alcotest.(check int) "flow.reused counter" stats.Flow.reused
        (Rlc_obs.Obs.counter m "flow.reused");
      Alcotest.(check int) "counters sum to net count" 4
        (Rlc_obs.Obs.counter m "flow.retimed" + Rlc_obs.Obs.counter m "flow.reused")

let test_delta_errors () =
  let t = time_cfg Flow.Config.default in
  let check_bad msg delta =
    match Flow.retime t delta with
    | Ok _ -> Alcotest.fail (msg ^ ": accepted")
    | Error (Rlc_errors.Error.Bad_request _) -> ()
    | Error e -> Alcotest.failf "%s: wrong error: %s" msg (Rlc_errors.Error.to_string e)
  in
  check_bad "unknown net" { Delta.empty with Delta.nets = [ ("nope", b0_heavier) ] };
  check_bad "block defines a different net"
    { Delta.empty with Delta.nets = [ ("b1", b0_heavier) ] };
  check_bad "duplicate edit name"
    { Delta.empty with Delta.drivers = [ ("b0", 60.); ("b0", 70.) ] };
  check_bad "non-positive size" { Delta.empty with Delta.drivers = [ ("b0", 0.) ] };
  check_bad "non-positive slew" { Delta.empty with Delta.slews = [ ("b0", -1e-12) ] };
  check_bad "slew on a non-primary net" { Delta.empty with Delta.slews = [ ("o0", 80e-12) ] };
  check_bad "unparsable block" { Delta.empty with Delta.nets = [ ("b0", "*D_NET b0 garbage") ] }

let () =
  Alcotest.run "rlc_flow"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "comments" `Quick test_spec_comments;
          Alcotest.test_case "default from SPEF" `Quick test_spec_default;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "shape" `Quick test_ingest_shape;
          Alcotest.test_case "errors" `Quick test_ingest_errors;
          Alcotest.test_case "no driver conn" `Quick test_ingest_no_driver_conn;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "sequential" `Quick test_pool_sequential;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "parallelism" `Quick test_pool_parallelism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "sharded concurrent" `Quick test_cache_sharded_concurrent;
          Alcotest.test_case "quantize" `Quick test_cache_quantize;
        ] );
      ( "flow",
        [
          Alcotest.test_case "determinism" `Quick test_flow_determinism;
          Alcotest.test_case "results" `Quick test_flow_results;
          Alcotest.test_case "cache effect" `Quick test_flow_cache_effect;
          Alcotest.test_case "stats and report" `Quick test_flow_stats_and_report;
          Alcotest.test_case "config defaults" `Quick test_flow_config_defaults;
          Alcotest.test_case "borrowed pool" `Quick test_flow_borrowed_pool;
        ] );
      ( "delta",
        [
          Alcotest.test_case "cap edit retimes the cone" `Quick test_delta_cap_edit;
          Alcotest.test_case "driver resize dirties the parent" `Quick test_delta_driver_resize;
          Alcotest.test_case "slew edit" `Quick test_delta_slew_edit;
          Alcotest.test_case "deltas compose" `Quick test_delta_compose;
          Alcotest.test_case "obs counters" `Quick test_delta_obs_counters;
          Alcotest.test_case "validation errors" `Quick test_delta_errors;
        ] );
    ]
