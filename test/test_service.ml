(* Rlc_service tests: the JSON codec, the wire protocol, the session API,
   per-request isolation/timeout in the server, cross-request cache warmth,
   and byte-identity of served flow reports with the one-shot CLI path. *)

module Json = Rlc_service.Json
module Protocol = Rlc_service.Protocol
module Session = Rlc_service.Session
module Server = Rlc_service.Server
module Error = Rlc_service.Error

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Error.to_string e)

let json_of s =
  match Json.parse s with
  | Ok j -> j
  | Error (pos, msg) -> Alcotest.fail (Printf.sprintf "json error at %d: %s" pos msg)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing field %S in %s" name (Json.to_string j))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs from _build/default/test/ (examples one up, staged by
   the (deps ...) in test/dune); dune exec from the project root. *)
let fixture name =
  if Sys.file_exists (Filename.concat "examples" name) then Filename.concat "examples" name
  else Filename.concat "../examples" name

let bus8_spef = fixture "bus8.spef"
let bus8_spec = fixture "bus8.spec"

(* ---------------------------------------------------------------- json *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "false";
      "42";
      "-7";
      "3.25";
      "1e+20";
      "\"hi\"";
      "[]";
      "[1,2,3]";
      "{}";
      {|{"a":1,"b":[true,null],"c":{"d":"x"}}|};
    ]
  in
  List.iter
    (fun src ->
      let j = json_of src in
      Alcotest.(check string) ("roundtrip " ^ src) src (Json.to_string j))
    cases

let test_json_escapes () =
  let j = json_of {|"a\"b\\c\nd\te\u0041\u00e9"|} in
  Alcotest.(check string) "decoded" "a\"b\\c\nd\teA\xc3\xa9" (Option.get (Json.get_string j));
  (* Printing re-escapes what must be escaped and survives a reparse. *)
  let printed = Json.to_string j in
  Alcotest.(check string) "reparse" (Option.get (Json.get_string j))
    (Option.get (Json.get_string (json_of printed)));
  (* Surrogate pair -> one astral code point (UTF-8, 4 bytes). *)
  let astral = json_of {|"\ud83d\ude00"|} in
  Alcotest.(check string) "astral" "\xf0\x9f\x98\x80" (Option.get (Json.get_string astral))

let test_json_errors () =
  let bad src =
    match Json.parse src with
    | Ok _ -> Alcotest.fail ("accepted: " ^ src)
    | Error (pos, msg) ->
        Alcotest.(check bool) ("position sane: " ^ src) true
          (pos >= 0 && pos <= String.length src);
        Alcotest.(check bool) ("message non-empty: " ^ src) true (String.length msg > 0)
  in
  List.iter bad
    [ ""; "{"; "[1,"; "nul"; "1."; "-"; "\"abc"; "{\"a\" 1}"; "[1] trailing"; "01x"; "\"\\q\"" ]

let test_json_floats () =
  (* Shortest round-tripping representation, and no NaN/inf in the output. *)
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      Alcotest.(check (float 0.)) ("roundtrip " ^ s) f
        (Option.get (Json.get_float (json_of s))))
    [ 0.1; 1. /. 3.; 1e-300; 6.02e23; -2.5 ];
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null" (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "integral floats stay short" "2" (Json.to_string (Json.Float 2.));
  (* Ints parse as Int but read as float too. *)
  Alcotest.(check (float 0.)) "int as float" 5. (Option.get (Json.get_float (json_of "5")))

(* ------------------------------------------------------------ protocol *)

let parse_req line = Protocol.parse_request line

let test_protocol_kinds () =
  (* Every kind parses; ids and timeouts are carried through. *)
  (match parse_req {|{"schema":"rlc-service/1","kind":"ping","id":7,"timeout_ms":500}|} with
  | Ok { Protocol.id = Some (Json.Int 7); timeout_ms = Some 500; kind = Protocol.Ping; schema }
    ->
      Alcotest.(check string) "schema recorded" Protocol.schema schema
  | Ok _ -> Alcotest.fail "ping fields"
  | Error e -> Alcotest.fail (Error.to_string e));
  (match parse_req {|{"schema":"rlc-service/1","kind":"stats"}|} with
  | Ok { Protocol.kind = Protocol.Stats; id = None; timeout_ms = None; _ } -> ()
  | _ -> Alcotest.fail "stats");
  (match parse_req {|{"schema":"rlc-service/1","kind":"shutdown"}|} with
  | Ok { Protocol.kind = Protocol.Shutdown; _ } -> ()
  | _ -> Alcotest.fail "shutdown");
  (match
     parse_req
       {|{"schema":"rlc-service/1","kind":"flow","spef":"x","spec_file":"a.spec","size":60,"slew_ps":80,"required_ps":500,"use_cache":false,"dt_ps":0.25}|}
   with
  | Ok { Protocol.kind = Protocol.Flow f; _ } ->
      Alcotest.(check bool) "inline spef" true (f.Protocol.f_spef = Protocol.Inline "x");
      Alcotest.(check bool) "spec file" true (f.Protocol.f_spec = Some (Protocol.File "a.spec"));
      Alcotest.(check (option (float 0.))) "size" (Some 60.) f.Protocol.f_size;
      Alcotest.(check (option (float 0.))) "slew" (Some 80.) f.Protocol.f_slew_ps;
      Alcotest.(check (option (float 0.))) "required" (Some 500.) f.Protocol.f_required_ps;
      Alcotest.(check (option bool)) "use_cache" (Some false) f.Protocol.f_use_cache;
      Alcotest.(check (option (float 0.))) "dt" (Some 0.25) f.Protocol.f_dt_ps
  | _ -> Alcotest.fail "flow");
  match
    parse_req
      {|{"schema":"rlc-service/1","kind":"sweep_case","length_mm":5,"width_um":1.2,"size":75,"cl_ff":20}|}
  with
  | Ok { Protocol.kind = Protocol.Sweep_case c; _ } ->
      Alcotest.(check (float 0.)) "length" 5. c.Protocol.c_length_mm;
      Alcotest.(check (float 0.)) "width" 1.2 c.Protocol.c_width_um;
      Alcotest.(check (float 0.)) "size" 75. c.Protocol.c_size;
      Alcotest.(check (option (float 0.))) "cl" (Some 20.) c.Protocol.c_cl_ff;
      Alcotest.(check (option (float 0.))) "slew default" None c.Protocol.c_slew_ps
  | _ -> Alcotest.fail "sweep_case"

let test_protocol_v2_kinds () =
  (* v1 kinds parse under the v2 tag, and the tag is recorded. *)
  (match parse_req {|{"schema":"rlc-service/2","kind":"ping"}|} with
  | Ok { Protocol.kind = Protocol.Ping; schema; _ } ->
      Alcotest.(check string) "v2 tag recorded" Protocol.schema_v2 schema
  | _ -> Alcotest.fail "v2 ping");
  (match
     parse_req
       {|{"schema":"rlc-service/2","kind":"design_load","spef":"x","spec_file":"a.spec","required_ps":500}|}
   with
  | Ok { Protocol.kind = Protocol.Design_load (f, xtalk); _ } ->
      Alcotest.(check bool) "inline spef" true (f.Protocol.f_spef = Protocol.Inline "x");
      Alcotest.(check bool) "spec file" true (f.Protocol.f_spec = Some (Protocol.File "a.spec"));
      Alcotest.(check (option (float 0.))) "required" (Some 500.) f.Protocol.f_required_ps;
      Alcotest.(check bool) "no xtalk by default" true (xtalk = None)
  | _ -> Alcotest.fail "design_load");
  (match
     parse_req
       {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d1","nets":{"b0":"*D_NET b0 1\n*END"},"drivers":{"o0":60},"slews_ps":{"b0":120}}|}
   with
  | Ok { Protocol.kind = Protocol.Flow_delta d; _ } ->
      Alcotest.(check string) "handle" "d1" d.Protocol.d_handle;
      Alcotest.(check bool) "net edit" true
        (d.Protocol.d_nets = [ ("b0", "*D_NET b0 1\n*END") ]);
      Alcotest.(check bool) "driver edit" true (d.Protocol.d_drivers = [ ("o0", 60.) ]);
      Alcotest.(check bool) "slew edit in ps" true (d.Protocol.d_slews_ps = [ ("b0", 120.) ])
  | _ -> Alcotest.fail "flow_delta");
  match parse_req {|{"schema":"rlc-service/2","kind":"design_unload","handle":"d1"}|} with
  | Ok { Protocol.kind = Protocol.Design_unload "d1"; _ } -> ()
  | _ -> Alcotest.fail "design_unload"

let check_code expected = function
  | Ok _ -> Alcotest.fail (expected ^ ": accepted")
  | Error e -> Alcotest.(check string) expected expected (Error.code e)

let test_protocol_rejections () =
  check_code "parse_error" (parse_req "not json at all");
  check_code "unsupported_version" (parse_req {|{"schema":"rlc-service/9","kind":"ping"}|});
  check_code "unsupported_version" (parse_req {|{"kind":"ping"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1","kind":"warp"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1","kind":"flow"}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/1","kind":"flow","spef":"a","spef_file":"b"}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/1","kind":"sweep_case","length_mm":5,"width_um":1}|});
  check_code "bad_request"
    (parse_req
       {|{"schema":"rlc-service/1","kind":"sweep_case","length_mm":-5,"width_um":1,"size":75}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/1","kind":"ping","timeout_ms":-4}|});
  check_code "bad_request" (parse_req "[1,2,3]");
  (* v2 statefulness: new kinds are gated on the v2 tag, deltas must name
     a handle and carry at least one edit, and edit values are checked. *)
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1","kind":"design_load","spef":"x"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1","kind":"flow_delta","handle":"d0"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/1","kind":"design_unload","handle":"d0"}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/2","kind":"design_load"}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/2","kind":"flow_delta","nets":{"b0":"x"}}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d0"}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d0","drivers":{"o0":-3}}|});
  check_code "bad_request"
    (parse_req {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d0","nets":["b0"]}|});
  check_code "bad_request" (parse_req {|{"schema":"rlc-service/2","kind":"design_unload"}|});
  (* Size limit. *)
  check_code "bad_request"
    (Protocol.parse_request ~max_bytes:16 {|{"schema":"rlc-service/1","kind":"ping"}|})

let test_protocol_responses () =
  let ok = Protocol.ok_response ~id:(Json.Int 3) [ ("pong", Json.Bool true) ] in
  let j = json_of ok in
  Alcotest.(check string) "schema" Protocol.schema (Option.get (Json.get_string (member "schema" j)));
  Alcotest.(check (option int)) "id echoed" (Some 3) (Json.get_int (member "id" j));
  Alcotest.(check (option bool)) "ok" (Some true) (Json.get_bool (member "ok" j));
  Alcotest.(check bool) "one line" false (String.contains ok '\n');
  let err = Protocol.error_response (Error.Timeout 1.5) in
  let j = json_of err in
  Alcotest.(check (option bool)) "not ok" (Some false) (Json.get_bool (member "ok" j));
  let e = member "error" j in
  Alcotest.(check (option string)) "code" (Some "timeout") (Json.get_string (member "code" e));
  Alcotest.(check bool) "message mentions budget" true
    (Option.get (Json.get_string (member "message" e)) <> "");
  (* Responses carry whichever schema tag the builder is given. *)
  let v2 = Protocol.ok_response ~schema:Protocol.schema_v2 [ ("pong", Json.Bool true) ] in
  Alcotest.(check (option string)) "v2 tag echoed" (Some Protocol.schema_v2)
    (Json.get_string (member "schema" (json_of v2)))

(* ------------------------------------------------------- typed errors *)

let test_parse_res_positions () =
  (match Rlc_spef.Spef.parse_res ~file:"bad.spef" "*D_NET n\n" with
  | Ok _ -> Alcotest.fail "accepted bad spef"
  | Error (Error.Parse { file; line; msg } as e) ->
      Alcotest.(check (option string)) "file" (Some "bad.spef") file;
      Alcotest.(check bool) "line known" true (line <> None);
      Alcotest.(check bool) "msg" true (String.length msg > 0);
      (* file:line: message rendering — what the CLI prints at exit 2. *)
      let rendered = Error.message e in
      Alcotest.(check bool) "file:line prefix" true
        (String.length rendered > 9 && String.sub rendered 0 9 = "bad.spef:")
  | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e));
  match Rlc_flow.Spec.parse_res ~file:"x.spec" "driver a 75\ndriver a 50\n" with
  | Error (Error.Parse { file = Some "x.spec"; line = Some 2; _ }) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "accepted duplicate driver"

let test_deadline () =
  let module D = Rlc_errors.Deadline in
  (* Non-positive and infinite budgets disable the deadline. *)
  Alcotest.(check bool) "zero budget never expires" true (D.is_never (D.start 0.));
  Alcotest.(check bool) "negative budget never expires" true (D.is_never (D.start (-1.)));
  Alcotest.(check bool) "infinite budget never expires" true (D.is_never (D.start Float.infinity));
  Alcotest.(check bool) "never is not expired" false (D.expired D.never);
  D.check D.never;
  let d = D.start 0.001 in
  Alcotest.(check bool) "remaining bounded by budget" true (D.remaining_s d <= 0.001);
  Unix.sleepf 0.005;
  Alcotest.(check bool) "expired after its budget" true (D.expired d);
  Alcotest.(check (float 0.)) "nothing remaining" 0. (D.remaining_s d);
  (match D.check d with
  | () -> Alcotest.fail "check on an expired deadline did not raise"
  | exception D.Expired b -> Alcotest.(check (float 0.)) "Expired carries the budget" 0.001 b);
  (* Ambient installation is scoped: inside [with_ambient] the expired
     deadline trips the check, and the previous ambient comes back after. *)
  (match D.with_ambient d D.check_ambient with
  | () -> Alcotest.fail "ambient check did not raise"
  | exception D.Expired _ -> ());
  D.check_ambient ();
  Alcotest.(check bool) "ambient restored to never" true (D.is_never (D.ambient ()))

(* ------------------------------------------------------------- session *)

let with_default_session f = Session.with_session f

let test_session_flow_and_cache () =
  with_default_session (fun session ->
      let design =
        ok_or_fail
          (Session.ingest session ~spef:(read_file bus8_spef) ~spef_name:bus8_spef
             ~spec:(read_file bus8_spec) ~spec_name:bus8_spec ())
      in
      let first = ok_or_fail (Session.flow session Session.Request.default design) in
      let second = ok_or_fail (Session.flow session Session.Request.default design) in
      let stats r = r.Session.result.Rlc_flow.Flow.stats in
      Alcotest.(check bool) "cold run misses" true
        ((stats first).Rlc_flow.Flow.cache_misses > 0);
      (* The session cache persists across requests: a repeated design is
         answered without a single new Ceff solve. *)
      Alcotest.(check int) "warm run misses" 0 (stats second).Rlc_flow.Flow.cache_misses;
      Alcotest.(check int) "warm spends no iterations" 0
        (stats second).Rlc_flow.Flow.iterations_spent;
      Alcotest.(check string) "identical reports" first.Session.report second.Session.report;
      let s = Session.stats session in
      Alcotest.(check bool) "cache populated" true (s.Session.cache_entries > 0))

let test_session_ingest_errors () =
  with_default_session (fun session ->
      (match Session.ingest session ~spef:"*D_NET broken\n" ~spef_name:"b.spef" () with
      | Error (Error.Parse { file = Some "b.spef"; _ }) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
      | Ok _ -> Alcotest.fail "accepted broken spef");
      match
        Session.ingest session ~spef:(read_file bus8_spef) ~spec:"driver nope 75\ninput nope 100\n" ()
      with
      | Error (Error.Bad_request _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
      | Ok _ -> Alcotest.fail "accepted unknown net")

let test_session_case_ops () =
  with_default_session (fun session ->
      let case =
        ok_or_fail (Session.case session ~length_mm:5. ~width_um:1.0 ~size:75. ())
      in
      let model = ok_or_fail (Session.screen session case) in
      Alcotest.(check bool) "5mm/75X is inductive" true
        model.Rlc_ceff.Driver_model.screen.Rlc_ceff.Screen.significant;
      (* Errors from the numeric layers surface as typed results. *)
      match Session.case session ~length_mm:5. ~width_um:1.0 ~size:(-3.) () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted negative size")

let test_session_design_store () =
  (* The bounded LRU design store: handles live across requests, deltas
     touch only the edited cone, and loading beyond capacity evicts the
     least-recently-used handle. *)
  let config = { Session.Config.default with Session.Config.design_capacity = 2 } in
  Session.with_session ~config (fun session ->
      let load () =
        ok_or_fail
          (Session.design_load session ~req:Session.Request.default
             ~spef:(read_file bus8_spef) ~spec:(read_file bus8_spec) ())
      in
      let h1, out1 = load () in
      let oneshot =
        let design =
          ok_or_fail
            (Session.ingest session ~spef:(read_file bus8_spef) ~spec:(read_file bus8_spec) ())
        in
        (ok_or_fail (Session.flow session Session.Request.default design)).Session.report
      in
      Alcotest.(check string) "cold load report = one-shot report" oneshot out1.Session.report;
      let delta =
        { Rlc_flow.Delta.empty with Rlc_flow.Delta.slews = [ ("b0", 120e-12) ] }
      in
      let _, st = ok_or_fail (Session.flow_delta session ~handle:h1 delta) in
      Alcotest.(check int) "only b0's cone retimed" 2 st.Rlc_flow.Flow.retimed;
      Alcotest.(check int) "retimed + reused = nets" 8
        (st.Rlc_flow.Flow.retimed + st.Rlc_flow.Flow.reused);
      let s = Session.design_stats session in
      Alcotest.(check int) "one handle resident" 1 s.Session.ds_handles;
      Alcotest.(check int) "capacity surfaced" 2 s.Session.ds_capacity;
      Alcotest.(check int) "nets held" 8 s.Session.ds_nets;
      (* Fill the store, then overflow it: h1 is the LRU victim. *)
      let _h2, _ = load () in
      let h3, _ = load () in
      let s = Session.design_stats session in
      Alcotest.(check int) "capacity bounds residency" 2 s.Session.ds_handles;
      Alcotest.(check int) "one eviction" 1 s.Session.ds_evictions;
      (match Session.flow_delta session ~handle:h1 delta with
      | Error (Error.Bad_request _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
      | Ok _ -> Alcotest.fail "evicted handle accepted");
      ok_or_fail (Session.design_unload session h3);
      Alcotest.(check int) "unload drops the handle" 1
        (Session.design_stats session).Session.ds_handles;
      match Session.design_unload session h3 with
      | Error (Error.Bad_request _) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
      | Ok _ -> Alcotest.fail "double unload accepted")

(* -------------------------------------------------------------- server *)

let send server line =
  let resp, control = Server.handle_line server line in
  (json_of resp, control)

let with_server ?timeout_s f =
  with_default_session (fun session -> f (Server.create ?timeout_s session))

let bus8_flow_request ?id ?timeout_ms ?(extra = []) () =
  let fields =
    [ ("schema", Json.Str Protocol.schema); ("kind", Json.Str "flow") ]
    @ (match id with Some id -> [ ("id", Json.Int id) ] | None -> [])
    @ (match timeout_ms with Some ms -> [ ("timeout_ms", Json.Int ms) ] | None -> [])
    @ [ ("spef_file", Json.Str bus8_spef); ("spec_file", Json.Str bus8_spec) ]
    @ extra
  in
  Json.to_string (Json.Obj fields)

let test_server_flow_warmth () =
  with_server (fun server ->
      let first, _ = send server (bus8_flow_request ~id:1 ()) in
      let second, _ = send server (bus8_flow_request ~id:2 ()) in
      Alcotest.(check (option bool)) "first ok" (Some true) (Json.get_bool (member "ok" first));
      Alcotest.(check (option int)) "id echoed" (Some 2) (Json.get_int (member "id" second));
      Alcotest.(check bool) "first misses" true
        (Option.get (Json.get_int (member "cache_misses" first)) > 0);
      Alcotest.(check (option int)) "second all hits" (Some 0)
        (Json.get_int (member "cache_misses" second));
      Alcotest.(check (option int)) "8 nets" (Some 8) (Json.get_int (member "nets" second)))

let test_server_report_byte_identical () =
  (* The served report field must be the exact --json payload of the
     one-shot CLI path (both go through Session -> Report.json_string). *)
  let oneshot =
    with_default_session (fun session ->
        let design =
          ok_or_fail
            (Session.ingest session ~spef:(read_file bus8_spef) ~spec:(read_file bus8_spec) ())
        in
        (ok_or_fail (Session.flow session Session.Request.default design)).Session.report)
  in
  with_server (fun server ->
      let resp, _ = send server (bus8_flow_request ()) in
      let served = Option.get (Json.get_string (member "report" resp)) in
      Alcotest.(check string) "byte-identical report" oneshot served)

let test_server_isolation () =
  with_server (fun server ->
      let expect_code code line =
        let resp, control = send server line in
        Alcotest.(check (option bool)) (code ^ ": not ok") (Some false)
          (Json.get_bool (member "ok" resp));
        Alcotest.(check (option string)) (code ^ ": code") (Some code)
          (Json.get_string (member "code" (member "error" resp)));
        Alcotest.(check bool) (code ^ ": continues") true (control = `Continue)
      in
      expect_code "parse_error" "}{ garbage";
      expect_code "unsupported_version" {|{"schema":"rlc-service/9","kind":"ping"}|};
      expect_code "bad_request" {|{"schema":"rlc-service/1","kind":"frobnicate"}|};
      (* Stateful kinds exist only under the v2 schema tag. *)
      expect_code "bad_request" {|{"schema":"rlc-service/1","kind":"design_load","spef":"x"}|};
      expect_code "bad_request" {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d0"}|};
      expect_code "bad_request"
        {|{"schema":"rlc-service/1","kind":"flow","spef_file":"../examples/no_such.spef"}|};
      expect_code "parse_error"
        {|{"schema":"rlc-service/1","kind":"flow","spef":"*D_NET broken\n"}|};
      (* After every failure the daemon still answers. *)
      let resp, _ = send server {|{"schema":"rlc-service/1","kind":"ping","id":9}|} in
      Alcotest.(check (option bool)) "daemon survives" (Some true)
        (Json.get_bool (member "ok" resp));
      let resp, _ = send server {|{"schema":"rlc-service/1","kind":"stats"}|} in
      Alcotest.(check bool) "failures counted" true
        (Option.get (Json.get_int (member "requests_failed" resp)) >= 5))

let test_server_oversized () =
  with_default_session (fun session ->
      let server = Server.create ~max_request_bytes:64 session in
      let long = bus8_flow_request () in
      Alcotest.(check bool) "fixture really oversized" true (String.length long > 64);
      let resp, _ = Server.handle_line server long in
      let j = json_of resp in
      Alcotest.(check (option string)) "rejected" (Some "bad_request")
        (Json.get_string (member "code" (member "error" j)));
      (* Short requests still fit. *)
      let resp, _ = Server.handle_line server {|{"schema":"rlc-service/1","kind":"ping"}|} in
      Alcotest.(check (option bool)) "ping fits" (Some true)
        (Json.get_bool (member "ok" (json_of resp))))

let test_server_timeout () =
  with_server (fun server ->
      (* A reference-simulation request at a tiny timestep takes far longer
         than 2 ms of wall clock; the alarm must convert it into a typed
         timeout response, after which the daemon keeps serving. *)
      let resp, control =
        send server
          {|{"schema":"rlc-service/1","kind":"sweep_case","timeout_ms":2,"length_mm":7,"width_um":0.8,"size":75,"dt_ps":0.05}|}
      in
      Alcotest.(check (option string)) "timeout code" (Some "timeout")
        (Json.get_string (member "code" (member "error" resp)));
      Alcotest.(check bool) "continues" true (control = `Continue);
      let resp, _ = send server {|{"schema":"rlc-service/1","kind":"ping"}|} in
      Alcotest.(check (option bool)) "alive after timeout" (Some true)
        (Json.get_bool (member "ok" resp)))

let test_server_shutdown_control () =
  with_server (fun server ->
      let resp, control = send server {|{"schema":"rlc-service/1","kind":"shutdown","id":1}|} in
      Alcotest.(check bool) "stop" true (control = `Stop);
      Alcotest.(check (option bool)) "acknowledged" (Some true)
        (Json.get_bool (member "stopping" resp)))

(* ------------------------------------------------- server, v2 kinds *)

let design_load_request ?id ?(extra = []) () =
  let fields =
    [ ("schema", Json.Str Protocol.schema_v2); ("kind", Json.Str "design_load") ]
    @ (match id with Some id -> [ ("id", Json.Int id) ] | None -> [])
    @ [ ("spef_file", Json.Str bus8_spef); ("spec_file", Json.Str bus8_spec) ]
    @ extra
  in
  Json.to_string (Json.Obj fields)

let test_server_design_lifecycle () =
  with_server (fun server ->
      (* Ground truths come from the stateless v1 path on the same server. *)
      let oneshot, _ = send server (bus8_flow_request ()) in
      let expected = Option.get (Json.get_string (member "report" oneshot)) in
      let loaded, _ = send server (design_load_request ~id:1 ()) in
      Alcotest.(check (option bool)) "load ok" (Some true) (Json.get_bool (member "ok" loaded));
      Alcotest.(check (option string)) "v2 tag echoed" (Some Protocol.schema_v2)
        (Json.get_string (member "schema" loaded));
      let handle = Option.get (Json.get_string (member "handle" loaded)) in
      Alcotest.(check string) "cold-load report = one-shot flow report" expected
        (Option.get (Json.get_string (member "report" loaded)));
      (* A primary-input slew edit dirties b0's cone (b0, o0) only. *)
      let delta_line =
        Json.to_string
          (Json.Obj
             [
               ("schema", Json.Str Protocol.schema_v2);
               ("kind", Json.Str "flow_delta");
               ("id", Json.Int 2);
               ("handle", Json.Str handle);
               ("slews_ps", Json.Obj [ ("b0", Json.Float 120.) ]);
             ])
      in
      let resp, _ = send server delta_line in
      Alcotest.(check (option bool)) "delta ok" (Some true) (Json.get_bool (member "ok" resp));
      Alcotest.(check (option int)) "cone retimed" (Some 2)
        (Json.get_int (member "retimed_nets" resp));
      Alcotest.(check (option int)) "rest reused" (Some 6)
        (Json.get_int (member "reused_nets" resp));
      (* Byte-identity: the delta's report must equal a cold v1 flow of the
         edited sources, served by the same session. *)
      let edited_spec =
        String.concat "\n"
          (List.map
             (fun l -> if String.equal l "input b0 100" then "input b0 120" else l)
             (String.split_on_char '\n' (read_file bus8_spec)))
      in
      let cold_line =
        Json.to_string
          (Json.Obj
             [
               ("schema", Json.Str Protocol.schema);
               ("kind", Json.Str "flow");
               ("spef_file", Json.Str bus8_spef);
               ("spec", Json.Str edited_spec);
             ])
      in
      let cold, _ = send server cold_line in
      Alcotest.(check (option bool)) "cold edited flow ok" (Some true)
        (Json.get_bool (member "ok" cold));
      Alcotest.(check string) "delta report byte-identical to cold run"
        (Option.get (Json.get_string (member "report" cold)))
        (Option.get (Json.get_string (member "report" resp)));
      (* The stats response surfaces the design store for [top]. *)
      let stats, _ = send server {|{"schema":"rlc-service/2","kind":"stats"}|} in
      let designs = member "designs" stats in
      Alcotest.(check (option int)) "one resident design" (Some 1)
        (Json.get_int (member "handles" designs));
      Alcotest.(check (option int)) "nets held" (Some 8) (Json.get_int (member "nets" designs));
      Alcotest.(check (option int)) "no evictions" (Some 0)
        (Json.get_int (member "evictions" designs));
      (* Unknown handles are typed rejections; unload frees the handle. *)
      let bad, _ =
        send server
          {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"nope","slews_ps":{"b0":120}}|}
      in
      Alcotest.(check (option string)) "unknown handle" (Some "bad_request")
        (Json.get_string (member "code" (member "error" bad)));
      let unload_line =
        Json.to_string
          (Json.Obj
             [
               ("schema", Json.Str Protocol.schema_v2);
               ("kind", Json.Str "design_unload");
               ("handle", Json.Str handle);
             ])
      in
      let un, _ = send server unload_line in
      Alcotest.(check (option bool)) "unloaded" (Some true)
        (Json.get_bool (member "unloaded" un));
      let gone, _ = send server delta_line in
      Alcotest.(check (option string)) "delta after unload rejected" (Some "bad_request")
        (Json.get_string (member "code" (member "error" gone))))

let test_server_schema_echo () =
  (* Every response carries its request's schema tag — a v1 client sees
     exactly the bytes a v1-only daemon produced. *)
  with_server (fun server ->
      let v1, _ = send server {|{"schema":"rlc-service/1","kind":"ping","id":1}|} in
      Alcotest.(check (option string)) "v1 in, v1 out" (Some Protocol.schema)
        (Json.get_string (member "schema" v1));
      let v2, _ = send server {|{"schema":"rlc-service/2","kind":"ping","id":2}|} in
      Alcotest.(check (option string)) "v2 in, v2 out" (Some Protocol.schema_v2)
        (Json.get_string (member "schema" v2));
      (* Execution errors echo the tag too. *)
      let err, _ =
        send server
          {|{"schema":"rlc-service/2","kind":"flow_delta","handle":"d0","slews_ps":{"b0":120}}|}
      in
      Alcotest.(check (option bool)) "error response" (Some false)
        (Json.get_bool (member "ok" err));
      Alcotest.(check (option string)) "v2 tag on the error" (Some Protocol.schema_v2)
        (Json.get_string (member "schema" err)))

(* Full pipe transport: a second domain runs the serve loop on real file
   descriptors while this one plays client. *)
let test_server_pipe_mode () =
  with_default_session (fun session ->
      (* Timeouts disabled: the alarm handler must not fire in whichever
         domain OCaml picks while two are running. *)
      let server = Server.create ~timeout_s:0. session in
      let req_r, req_w = Unix.pipe ~cloexec:false () in
      let resp_r, resp_w = Unix.pipe ~cloexec:false () in
      let domain =
        Domain.spawn (fun () ->
            let ic = Unix.in_channel_of_descr req_r in
            let oc = Unix.out_channel_of_descr resp_w in
            Server.serve_channels server ic oc;
            close_in_noerr ic;
            close_out_noerr oc)
      in
      let oc = Unix.out_channel_of_descr req_w in
      let ic = Unix.in_channel_of_descr resp_r in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        [
          {|{"schema":"rlc-service/1","kind":"ping","id":1}|};
          "   ";
          "broken json";
          {|{"schema":"rlc-service/1","kind":"stats","id":2}|};
          {|{"schema":"rlc-service/1","kind":"shutdown","id":3}|};
        ];
      flush oc;
      let r1 = json_of (input_line ic) in
      let r2 = json_of (input_line ic) in
      let r3 = json_of (input_line ic) in
      let r4 = json_of (input_line ic) in
      Domain.join domain;
      close_out_noerr oc;
      close_in_noerr ic;
      Alcotest.(check (option int)) "ping id" (Some 1) (Json.get_int (member "id" r1));
      Alcotest.(check (option bool)) "broken line answered" (Some false)
        (Json.get_bool (member "ok" r2));
      Alcotest.(check (option int)) "stats id" (Some 2) (Json.get_int (member "id" r3));
      Alcotest.(check (option bool)) "shutdown acked" (Some true)
        (Json.get_bool (member "stopping" r4));
      Alcotest.(check bool) "loop stopped" true (Server.stopped server))

(* ------------------------------------------- unix socket transport *)

(* The socket tests drive [serve_unix] end to end: the listener runs in
   its own domain, worker domains execute requests, and the clients here
   speak the wire protocol over real AF_UNIX connections. *)

let temp_socket_path () = Filename.temp_file "rlc_service_test" ".sock"

(* The serve loop binds after the listener domain spawns; retry until it
   is there (ENOENT before the unlink+bind, ECONNREFUSED in between). *)
let connect_client path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go (tries - 1)
  in
  go 250

let client_channels path =
  let fd = connect_client path in
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let close_client (ic, oc) =
  (* Both channels share the fd; the second close is a harmless EBADF. *)
  close_out_noerr oc;
  close_in_noerr ic

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let roundtrip ic oc line =
  send_line oc line;
  input_line ic

let test_server_unix_concurrent () =
  (* jobs = 2 makes every served flow publish a batch to a shared pool
     that other requests are publishing to at the same time: concurrent
     masters, concurrent cache access, and per-connection ordering all in
     one test.  The reports must still be byte-identical to the one-shot
     session path. *)
  let config = { Session.Config.default with Session.Config.jobs = 2 } in
  Session.with_session ~config (fun session ->
      let expected =
        let design =
          ok_or_fail
            (Session.ingest session ~spef:(read_file bus8_spef) ~spec:(read_file bus8_spec) ())
        in
        (ok_or_fail (Session.flow session Session.Request.default design)).Session.report
      in
      let server = Server.create ~workers:2 ~queue_capacity:16 session in
      let path = temp_socket_path () in
      let serving = Domain.spawn (fun () -> Server.serve_unix server ~path) in
      let clients = 3 and per_client = 3 in
      let run_client cid =
        let ic, oc = client_channels path in
        let reports =
          List.init per_client (fun i ->
              let id = (cid * 100) + i in
              let resp = json_of (roundtrip ic oc (bus8_flow_request ~id ())) in
              Alcotest.(check (option bool))
                (Printf.sprintf "client %d request %d ok" cid i)
                (Some true)
                (Json.get_bool (member "ok" resp));
              (* One request in flight per connection: replies come back
                 in request order, so the echoed id must match. *)
              Alcotest.(check (option int)) "id echoed in order" (Some id)
                (Json.get_int (member "id" resp));
              Option.get (Json.get_string (member "report" resp)))
        in
        close_client (ic, oc);
        reports
      in
      let domains = List.init clients (fun cid -> Domain.spawn (fun () -> run_client cid)) in
      let all = List.concat_map Domain.join domains in
      Alcotest.(check int) "all requests answered" (clients * per_client) (List.length all);
      List.iteri
        (fun i r ->
          Alcotest.(check string) (Printf.sprintf "report %d byte-identical" i) expected r)
        all;
      (* A shutdown request over the socket stops the whole loop. *)
      let ic, oc = client_channels path in
      let resp = json_of (roundtrip ic oc {|{"schema":"rlc-service/1","kind":"shutdown","id":99}|}) in
      Alcotest.(check (option bool)) "shutdown acked" (Some true)
        (Json.get_bool (member "stopping" resp));
      close_client (ic, oc);
      Domain.join serving;
      Alcotest.(check bool) "loop stopped" true (Server.stopped server);
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path))

let test_server_unix_overload () =
  (* workers = 1, queue of 1: with one slow request executing and one
     queued, the third admission attempt must be rejected immediately
     with the wire-stable timeout code — and the daemon must survive all
     of it. *)
  with_default_session (fun session ->
      let server = Server.create ~workers:1 ~queue_capacity:1 session in
      let path = temp_socket_path () in
      let serving = Domain.spawn (fun () -> Server.serve_unix server ~path) in
      let slow_req id =
        Json.to_string
          (Json.Obj
             [
               ("schema", Json.Str Protocol.schema);
               ("kind", Json.Str "sweep_case");
               ("id", Json.Int id);
               ("timeout_ms", Json.Int 400);
               ("length_mm", Json.Float 7.);
               ("width_um", Json.Float 0.8);
               ("size", Json.Float 75.);
               ("dt_ps", Json.Float 0.05);
             ])
      in
      let a = client_channels path and b = client_channels path and c = client_channels path in
      send_line (snd a) (slow_req 1);
      Unix.sleepf 0.15 (* the worker picks request 1 up *);
      send_line (snd b) (slow_req 2) (* sits in the admission queue *);
      Unix.sleepf 0.05;
      let t0 = Unix.gettimeofday () in
      let resp_c = json_of (roundtrip (fst c) (snd c) (slow_req 3)) in
      let dt_c = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option string)) "queue-full rejection is a typed timeout" (Some "timeout")
        (Json.get_string (member "code" (member "error" resp_c)));
      Alcotest.(check (option int)) "rejection echoes the id" (Some 3)
        (Json.get_int (member "id" resp_c));
      Alcotest.(check bool) "rejection is immediate, not queued" true (dt_c < 0.3);
      (* The in-flight and queued requests run out of budget (in the
         engine or while waiting) and come back as typed timeouts too. *)
      let resp_a = json_of (input_line (fst a)) in
      Alcotest.(check (option string)) "in-flight request times out" (Some "timeout")
        (Json.get_string (member "code" (member "error" resp_a)));
      let resp_b = json_of (input_line (fst b)) in
      Alcotest.(check (option string)) "queued request times out" (Some "timeout")
        (Json.get_string (member "code" (member "error" resp_b)));
      (* The daemon is still alive and its stats expose the server shape. *)
      let resp = json_of (roundtrip (fst c) (snd c) {|{"schema":"rlc-service/1","kind":"ping","id":4}|}) in
      Alcotest.(check (option bool)) "alive after overload" (Some true)
        (Json.get_bool (member "ok" resp));
      let stats = json_of (roundtrip (fst c) (snd c) {|{"schema":"rlc-service/1","kind":"stats","id":5}|}) in
      let srv = member "server" stats in
      Alcotest.(check (option int)) "stats: workers" (Some 1) (Json.get_int (member "workers" srv));
      Alcotest.(check (option int)) "stats: queue capacity" (Some 1)
        (Json.get_int (member "queue_capacity" srv));
      List.iter close_client [ a; b; c ];
      Server.stop server;
      Domain.join serving)

let test_server_unix_isolation () =
  (* Failures on one connection never leak into another: a client feeding
     garbage and bad requests interleaved with a healthy client. *)
  with_default_session (fun session ->
      let server = Server.create ~workers:2 ~queue_capacity:8 session in
      let path = temp_socket_path () in
      let serving = Domain.spawn (fun () -> Server.serve_unix server ~path) in
      let bad = client_channels path and good = client_channels path in
      let expect_code code line =
        let resp = json_of (roundtrip (fst bad) (snd bad) line) in
        Alcotest.(check (option string)) (code ^ " on bad connection") (Some code)
          (Json.get_string (member "code" (member "error" resp)))
      in
      expect_code "parse_error" "}{ garbage";
      let resp = json_of (roundtrip (fst good) (snd good) (bus8_flow_request ~id:1 ())) in
      Alcotest.(check (option bool)) "good client unaffected" (Some true)
        (Json.get_bool (member "ok" resp));
      expect_code "bad_request" {|{"schema":"rlc-service/1","kind":"frobnicate"}|};
      expect_code "bad_request"
        {|{"schema":"rlc-service/1","kind":"flow","spef_file":"../examples/no_such.spef"}|};
      let resp = json_of (roundtrip (fst good) (snd good) (bus8_flow_request ~id:2 ())) in
      Alcotest.(check (option bool)) "good client still served" (Some true)
        (Json.get_bool (member "ok" resp));
      (* An abruptly dropped connection is cleaned up without killing the loop. *)
      close_client bad;
      let resp = json_of (roundtrip (fst good) (snd good) {|{"schema":"rlc-service/1","kind":"ping","id":3}|}) in
      Alcotest.(check (option bool)) "survives dropped peer" (Some true)
        (Json.get_bool (member "ok" resp));
      close_client good;
      Server.stop server;
      Domain.join serving)

(* --------------------------------------------------------- telemetry *)

(* Hand-rolled check of the Prometheus text exposition: every line is
   either # HELP / # TYPE metadata with a known type, or a
   [name{labels} value] sample with a parseable value.  Returns the
   samples in document order, keyed by name-with-labels. *)
let validate_prometheus text =
  let samples = ref [] in
  List.iter
    (fun line ->
      if String.equal line "" then ()
      else if line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | "#" :: kw :: name :: rest when kw = "HELP" || kw = "TYPE" ->
            Alcotest.(check bool) ("metadata payload: " ^ line) true (rest <> []);
            if String.equal kw "TYPE" then
              Alcotest.(check bool)
                ("known type for " ^ name)
                true
                (match rest with
                | [ t ] -> List.mem t [ "counter"; "gauge"; "histogram" ]
                | _ -> false)
        | _ -> Alcotest.fail ("bad metadata line: " ^ line))
      else
        match String.index_opt line ' ' with
        | None -> Alcotest.fail ("bad sample line: " ^ line)
        | Some i -> (
            let name = String.sub line 0 i in
            let value = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt value with
            | Some v -> samples := (name, v) :: !samples
            | None -> Alcotest.fail ("unparseable sample value: " ^ line)))
    (String.split_on_char '\n' text);
  List.rev !samples

let prom_sample samples name =
  match List.assoc_opt name samples with
  | Some v -> v
  | None -> Alcotest.fail ("missing prometheus sample " ^ name)

let test_server_metrics_prometheus () =
  (* Transport-free: tick_period_s = 0 records a window sample at the top
     of every handle_line, so the metrics/health bodies are exercised
     without a socket or a ticker race. *)
  let obs = Rlc_obs.Obs.create () in
  let config = { Session.Config.default with Session.Config.obs } in
  Session.with_session ~config (fun session ->
      let server = Server.create ~timeout_s:0. ~tick_period_s:0. session in
      let handle line = fst (Server.handle_line server line) in
      let ok what resp =
        let j = json_of resp in
        Alcotest.(check (option bool)) (what ^ " ok") (Some true)
          (Json.get_bool (member "ok" j));
        j
      in
      ignore (ok "ping" (handle {|{"schema":"rlc-service/1","kind":"ping","id":1}|}));
      ignore (ok "flow" (handle (bus8_flow_request ~id:2 ())));
      ignore (ok "flow" (handle (bus8_flow_request ~id:3 ())));
      let stats = ok "stats" (handle {|{"schema":"rlc-service/1","kind":"stats","id":4}|}) in
      (* Per-shard cache stats must reconcile with the aggregate. *)
      let cache = member "cache" stats in
      let shards =
        match member "shards" cache with
        | Json.List l -> l
        | _ -> Alcotest.fail "cache.shards is not a list"
      in
      Alcotest.(check bool) "shards present" true (shards <> []);
      let shard_sum f =
        List.fold_left (fun acc s -> acc + Option.get (Json.get_int (member f s))) 0 shards
      in
      List.iter
        (fun f ->
          Alcotest.(check (option int))
            ("shard " ^ f ^ " reconcile")
            (Some (shard_sum f))
            (Json.get_int (member f cache)))
        [ "entries"; "hits"; "misses" ];
      (* Metrics: exact totals from the session atomics (the 4 requests
         above; the metrics request itself is not yet finished), per-kind
         counters from the freshest window sample. *)
      let m = ok "metrics" (handle {|{"schema":"rlc-service/1","kind":"metrics","id":5}|}) in
      let totals = member "totals" m in
      Alcotest.(check (option int)) "served reconciles" (Some 4)
        (Json.get_int (member "served" totals));
      Alcotest.(check (option int)) "none failed" (Some 0)
        (Json.get_int (member "failed" totals));
      let kinds = member "kinds" m in
      Alcotest.(check (option int)) "flow kind total" (Some 2)
        (Json.get_int (member "flow" kinds));
      Alcotest.(check (option int)) "ping kind total" (Some 1)
        (Json.get_int (member "ping" kinds));
      Alcotest.(check bool) "window block present" true
        (Json.member "window" m <> None);
      (* The Prometheus exposition parses line by line and reconciles. *)
      let text = Option.get (Json.get_string (member "prometheus" m)) in
      let samples = validate_prometheus text in
      Alcotest.(check (float 0.)) "prom ok requests" 4.
        (prom_sample samples {|service_requests_total{outcome="ok"}|});
      Alcotest.(check (float 0.)) "prom error requests" 0.
        (prom_sample samples {|service_requests_total{outcome="error"}|});
      Alcotest.(check (float 0.)) "prom up" 1. (prom_sample samples "service_up");
      Alcotest.(check (float 0.)) "prom kind flow" 2.
        (prom_sample samples {|service_requests_kind_total{kind="flow"}|});
      (* Histogram buckets are cumulative and capped by +Inf == _count. *)
      let buckets =
        List.filter
          (fun (n, _) ->
            String.length n >= 31
            && String.equal (String.sub n 0 31) "service_request_seconds_bucket{")
          samples
      in
      Alcotest.(check bool) "request histogram emitted" true (buckets <> []);
      let prev = ref 0. in
      List.iter
        (fun (n, v) ->
          Alcotest.(check bool) ("cumulative: " ^ n) true (v >= !prev);
          prev := v)
        buckets;
      Alcotest.(check (float 0.)) "+Inf equals _count"
        (prom_sample samples "service_request_seconds_count")
        (prom_sample samples {|service_request_seconds_bucket{le="+Inf"}|});
      (* Health on an idle, open daemon: alive and ready. *)
      let h = ok "health" (handle {|{"schema":"rlc-service/1","kind":"health","id":6}|}) in
      Alcotest.(check (option bool)) "alive" (Some true) (Json.get_bool (member "alive" h));
      Alcotest.(check (option bool)) "ready" (Some true) (Json.get_bool (member "ready" h));
      (* Telemetry scrapes stay out of the window's latency histogram: the
         sample behind this second metrics request covers requests 1-6, but
         the metrics (5) and health (6) scrapes must not have fed
         service.request_s — only ping, the two flows, and stats. They do
         count in the per-kind counters and the exact session totals. *)
      let m2 = ok "metrics" (handle {|{"schema":"rlc-service/1","kind":"metrics","id":7}|}) in
      let samples2 =
        validate_prometheus (Option.get (Json.get_string (member "prometheus" m2)))
      in
      Alcotest.(check (float 0.)) "scrapes excluded from latency histogram" 4.
        (prom_sample samples2 "service_request_seconds_count");
      Alcotest.(check (float 0.)) "scrapes still in per-kind counters" 1.
        (prom_sample samples2 {|service_requests_kind_total{kind="metrics"}|});
      Alcotest.(check (option int)) "scrapes still in exact totals" (Some 6)
        (Json.get_int (member "served" (member "totals" m2))))

let test_server_unix_telemetry () =
  (* The full transport with tracing on: jobs = 2 so flow spans are
     recorded on pool worker domains (the trace id must cross domains via
     the batch), slow_ms = 0 so every request writes a slow-log line. *)
  let obs = Rlc_obs.Obs.create () in
  let config = { Session.Config.default with Session.Config.jobs = 2; obs } in
  let slow_path = Filename.temp_file "rlc_service_slow" ".ndjson" in
  let slow_oc = open_out slow_path in
  Session.with_session ~config (fun session ->
      let server =
        Server.create ~workers:2 ~queue_capacity:16 ~slow_ms:0. ~slow_channel:slow_oc
          ~tick_period_s:0.01 session
      in
      let path = temp_socket_path () in
      let serving = Domain.spawn (fun () -> Server.serve_unix server ~path) in
      let run_client cid =
        let ((ic, oc) as cl) = client_channels path in
        for i = 0 to 1 do
          let resp = json_of (roundtrip ic oc (bus8_flow_request ~id:((cid * 10) + i) ())) in
          Alcotest.(check (option bool))
            (Printf.sprintf "client %d flow %d ok" cid i)
            (Some true)
            (Json.get_bool (member "ok" resp))
        done;
        close_client cl
      in
      let domains = List.init 2 (fun cid -> Domain.spawn (fun () -> run_client cid)) in
      List.iter Domain.join domains;
      let ((ic, oc) as cl) = client_channels path in
      let h = json_of (roundtrip ic oc {|{"schema":"rlc-service/1","kind":"health","id":50}|}) in
      Alcotest.(check (option bool)) "healthy after traffic" (Some true)
        (Json.get_bool (member "ready" h));
      let m = json_of (roundtrip ic oc {|{"schema":"rlc-service/1","kind":"metrics","id":51}|}) in
      (* 4 flows + the health request have finished; exact reconciliation. *)
      Alcotest.(check (option int)) "served over socket reconciles" (Some 5)
        (Json.get_int (member "served" (member "totals" m)));
      Alcotest.(check (option int)) "no failures" (Some 0)
        (Json.get_int (member "failed" (member "totals" m)));
      close_client cl;
      Server.stop server;
      Domain.join serving);
  close_out_noerr slow_oc;
  (* Every request logged one single-line JSON record with the trace id. *)
  let slow_lines =
    let ic = open_in slow_path in
    let rec go acc =
      match input_line ic with line -> go (line :: acc) | exception End_of_file -> acc
    in
    let lines = List.rev (go []) in
    close_in ic;
    lines
  in
  Sys.remove slow_path;
  Alcotest.(check bool) "slow log covers all requests" true (List.length slow_lines >= 6);
  let slow_traces =
    List.map
      (fun line ->
        let j = json_of line in
        Alcotest.(check (option bool)) "slow_request marker" (Some true)
          (Json.get_bool (member "slow_request" j));
        List.iter
          (fun f -> Alcotest.(check bool) ("slow field " ^ f) true (Json.member f j <> None))
          [ "trace"; "kind"; "queue_wait_ms"; "wall_ms"; "ok"; "worker" ];
        Option.get (Json.get_string (member "trace" j)))
      slow_lines
  in
  Alcotest.(check int) "slow-log trace ids distinct"
    (List.length slow_traces)
    (List.length (List.sort_uniq compare slow_traces));
  (* Span-level tracing: one distinct trace per executed request, and the
     flow.net spans recorded on pool worker domains carry the trace of the
     request that spawned them. *)
  let spans = (Rlc_obs.Obs.snapshot obs).Rlc_obs.Obs.m_spans in
  let traces_of name =
    List.filter_map
      (fun sp ->
        if String.equal sp.Rlc_obs.Obs.sp_name name then
          List.assoc_opt "trace" sp.Rlc_obs.Obs.sp_args
        else None)
      spans
  in
  let request_traces = traces_of "service.request" in
  Alcotest.(check bool) "request spans recorded" true (List.length request_traces >= 6);
  Alcotest.(check int) "request traces distinct"
    (List.length request_traces)
    (List.length (List.sort_uniq compare request_traces));
  let net_traces = List.sort_uniq compare (traces_of "flow.net") in
  Alcotest.(check int) "one trace per flow request" 4 (List.length net_traces);
  List.iter
    (fun tr ->
      Alcotest.(check bool) ("flow trace is a request trace: " ^ tr) true
        (List.mem tr request_traces))
    net_traces

let test_server_unix_health_saturation () =
  (* Readiness must flip under queue saturation while metrics stays
     responsive (both are answered inline by the listener, never queued).
     Obs stays disabled: the queue-depth gauge drives the check. *)
  with_default_session (fun session ->
      let server = Server.create ~workers:1 ~queue_capacity:1 session in
      let path = temp_socket_path () in
      let serving = Domain.spawn (fun () -> Server.serve_unix server ~path) in
      let slow_req id =
        Json.to_string
          (Json.Obj
             [
               ("schema", Json.Str Protocol.schema);
               ("kind", Json.Str "sweep_case");
               ("id", Json.Int id);
               ("timeout_ms", Json.Int 400);
               ("length_mm", Json.Float 7.);
               ("width_um", Json.Float 0.8);
               ("size", Json.Float 75.);
               ("dt_ps", Json.Float 0.05);
             ])
      in
      let a = client_channels path and b = client_channels path and c = client_channels path in
      send_line (snd a) (slow_req 1);
      Unix.sleepf 0.15 (* the worker picks request 1 up *);
      send_line (snd b) (slow_req 2) (* fills the queue: depth = high water = 1 *);
      Unix.sleepf 0.05;
      let h = json_of (roundtrip (fst c) (snd c) {|{"schema":"rlc-service/1","kind":"health","id":3}|}) in
      Alcotest.(check (option bool)) "alive while saturated" (Some true)
        (Json.get_bool (member "alive" h));
      Alcotest.(check (option bool)) "not ready while saturated" (Some false)
        (Json.get_bool (member "ready" h));
      Alcotest.(check (option bool)) "queue check failed" (Some false)
        (Json.get_bool (member "queue_ok" (member "checks" h)));
      (* Metrics is served inline too — the saturated queue can't block it. *)
      let m = json_of (roundtrip (fst c) (snd c) {|{"schema":"rlc-service/1","kind":"metrics","id":4}|}) in
      Alcotest.(check (option int)) "metrics sees the queued request" (Some 1)
        (Json.get_int (member "queue_depth" (member "server" m)));
      (* Both slow requests exhaust their budgets; readiness recovers. *)
      ignore (input_line (fst a));
      ignore (input_line (fst b));
      let h2 = json_of (roundtrip (fst c) (snd c) {|{"schema":"rlc-service/1","kind":"health","id":5}|}) in
      Alcotest.(check (option bool)) "ready after drain" (Some true)
        (Json.get_bool (member "ready" h2));
      List.iter close_client [ a; b; c ];
      Server.stop server;
      Domain.join serving)

let () =
  Alcotest.run "rlc_service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "floats" `Quick test_json_floats;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "kinds" `Quick test_protocol_kinds;
          Alcotest.test_case "v2 kinds" `Quick test_protocol_v2_kinds;
          Alcotest.test_case "rejections" `Quick test_protocol_rejections;
          Alcotest.test_case "responses" `Quick test_protocol_responses;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse_res positions" `Quick test_parse_res_positions;
          Alcotest.test_case "deadline" `Quick test_deadline;
        ] );
      ( "session",
        [
          Alcotest.test_case "flow and cache" `Quick test_session_flow_and_cache;
          Alcotest.test_case "ingest errors" `Quick test_session_ingest_errors;
          Alcotest.test_case "case ops" `Quick test_session_case_ops;
          Alcotest.test_case "design store" `Quick test_session_design_store;
        ] );
      ( "server",
        [
          Alcotest.test_case "flow warmth" `Quick test_server_flow_warmth;
          Alcotest.test_case "report byte-identical" `Quick test_server_report_byte_identical;
          Alcotest.test_case "isolation" `Quick test_server_isolation;
          Alcotest.test_case "oversized" `Quick test_server_oversized;
          Alcotest.test_case "timeout" `Quick test_server_timeout;
          Alcotest.test_case "shutdown control" `Quick test_server_shutdown_control;
          Alcotest.test_case "design lifecycle" `Quick test_server_design_lifecycle;
          Alcotest.test_case "schema echo" `Quick test_server_schema_echo;
          Alcotest.test_case "pipe mode" `Quick test_server_pipe_mode;
        ] );
      ( "server unix",
        [
          Alcotest.test_case "concurrent clients" `Quick test_server_unix_concurrent;
          Alcotest.test_case "overload rejection" `Quick test_server_unix_overload;
          Alcotest.test_case "cross-connection isolation" `Quick test_server_unix_isolation;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics and prometheus" `Quick test_server_metrics_prometheus;
          Alcotest.test_case "tracing and slow log" `Quick test_server_unix_telemetry;
          Alcotest.test_case "health under saturation" `Quick test_server_unix_health_saturation;
        ] );
    ]
