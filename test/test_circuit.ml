(* Validation of the nodal transient engine against closed-form circuit
   responses: these are the physics the "HSPICE substitute" must get right
   before any effective-capacitance experiment can be trusted. *)
open Rlc_circuit
open Rlc_waveform

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let step v t = if t <= 0. then 0. else v

(* ------------------------------------------------------- linear circuits *)

let test_rc_step () =
  (* 1 kOhm into 1 pF: tau = 1 ns. *)
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step 1.);
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  let r = Engine.transient ~dt:5e-12 ~t_stop:5e-9 nl in
  let w = Engine.voltage r out in
  let tau = 1e-9 in
  List.iter
    (fun t ->
      let expected = 1. -. Float.exp (-.t /. tau) in
      check_float ~eps:2e-3 (Printf.sprintf "rc at %g" t) expected (Waveform.value_at w t))
    [ 0.3e-9; 1e-9; 2e-9; 4e-9 ]

let test_rc_divider_dc () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" in
  Netlist.force_voltage nl src (fun _ -> 1.8);
  Netlist.resistor nl src mid 2e3;
  Netlist.resistor nl mid Netlist.ground 1e3;
  let v = Engine.dc_operating_point nl in
  check_float ~eps:1e-9 "divider" 0.6 v.(mid)

let test_series_rlc_underdamped () =
  (* R = 20 Ohm, L = 5 nH, C = 1 pF: zeta ~ 0.141, wn = 1.414e10. *)
  let r = 20. and l = 5e-9 and c = 1e-12 and v = 1. in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step v);
  Netlist.resistor nl src mid r;
  Netlist.inductor nl mid out l;
  Netlist.capacitor nl out Netlist.ground c;
  let res = Engine.transient ~dt:0.2e-12 ~t_stop:2e-9 nl in
  let w = Engine.voltage res out in
  let wn = 1. /. Float.sqrt (l *. c) in
  let zeta = r /. 2. *. Float.sqrt (c /. l) in
  let wd = wn *. Float.sqrt (1. -. (zeta *. zeta)) in
  let expected t =
    let e = Float.exp (-.zeta *. wn *. t) in
    v *. (1. -. (e *. (Float.cos (wd *. t) +. (zeta /. Float.sqrt (1. -. (zeta *. zeta)) *. Float.sin (wd *. t)))))
  in
  List.iter
    (fun t ->
      check_float ~eps:5e-3 (Printf.sprintf "rlc at %g" t) (expected t) (Waveform.value_at w t))
    [ 0.1e-9; 0.22e-9; 0.5e-9; 1.0e-9; 1.8e-9 ];
  (* Underdamped response must overshoot the supply. *)
  Alcotest.(check bool) "overshoots" true (Waveform.v_max w > 1.2)

let test_backward_euler_damps () =
  (* BE is more dissipative than trapezoidal: peak overshoot must be lower. *)
  let build () =
    let nl = Netlist.create () in
    let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" and out = Netlist.node nl "out" in
    Netlist.force_voltage nl src (step 1.);
    Netlist.resistor nl src mid 10.;
    Netlist.inductor nl mid out 5e-9;
    Netlist.capacitor nl out Netlist.ground 1e-12;
    (nl, out)
  in
  let run integration =
    let nl, out = build () in
    let options =
      { (Engine.default_options ~dt:2e-12 ~t_stop:2e-9) with Engine.integration } in
    let r = Engine.transient ~options ~dt:2e-12 ~t_stop:2e-9 nl in
    Waveform.v_max (Engine.voltage r out)
  in
  let peak_trap = run Engine.Trapezoidal and peak_be = run Engine.Backward_euler in
  Alcotest.(check bool)
    (Printf.sprintf "BE peak (%.3f) < trap peak (%.3f)" peak_be peak_trap)
    true (peak_be < peak_trap)

let test_current_source_into_rc () =
  (* 1 mA into 1 kOhm || cap: settles to 1 V. *)
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.current_source nl Netlist.ground out (step 1e-3);
  Netlist.resistor nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  let r = Engine.transient ~dt:10e-12 ~t_stop:10e-9 nl in
  check_float ~eps:2e-3 "settles to IR" 1. (Engine.voltage_at r out 9e-9)

let test_lc_ladder_time_of_flight () =
  (* Matched-source lossless line: far end sees a full-swing step delayed by
     the time of flight sqrt(Ltot * Ctot). *)
  let l_tot = 5e-9 and c_tot = 1e-12 and n = 60 in
  let z0 = Float.sqrt (l_tot /. c_tot) in
  let tf = Float.sqrt (l_tot *. c_tot) in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (step 1.);
  let drive = Netlist.node nl "drive" in
  Netlist.resistor nl src drive z0;
  let dl = l_tot /. float_of_int n and dc = c_tot /. float_of_int n in
  let last =
    List.fold_left
      (fun prev i ->
        let nn = Netlist.node nl (Printf.sprintf "n%d" i) in
        Netlist.inductor nl prev nn dl;
        Netlist.capacitor nl nn Netlist.ground dc;
        nn)
      drive
      (List.init n (fun i -> i))
  in
  let r = Engine.transient ~dt:0.25e-12 ~t_stop:0.5e-9 nl in
  let far = Engine.voltage r last in
  (match Waveform.first_crossing far ~level:0.5 ~direction:Waveform.Rising with
  | Some t50 ->
      Alcotest.(check bool)
        (Printf.sprintf "far-end 50%% at %.1f ps vs tf %.1f ps" (t50 /. 1e-12) (tf /. 1e-12))
        true
        (Float.abs (t50 -. tf) < 0.08 *. tf)
  | None -> Alcotest.fail "far end never crossed 50%");
  (* Open far end doubles the incident half-swing wave: settles near 1 V. *)
  check_float ~eps:0.05 "far end settles" 1. (Waveform.v_final far)

let test_pwl_replay () =
  (* Forced PWL source reproduces itself at the forced node. *)
  let p = Pwl.two_ramp ~t0:20e-12 ~vdd:1.8 ~f:0.55 ~tr1:30e-12 ~tr2:180e-12 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (Pwl.eval p);
  Netlist.resistor nl src out 50.;
  Netlist.capacitor nl out Netlist.ground 10e-15;
  let r = Engine.transient ~dt:1e-12 ~t_stop:400e-12 nl in
  let w = Engine.voltage r src in
  List.iter
    (fun t -> check_float ~eps:1e-6 (Printf.sprintf "pwl at %g" t) (Pwl.eval p t) (Waveform.value_at w t))
    [ 25e-12; 50e-12; 150e-12; 350e-12 ]

(* ---------------------------------------------------------- nonlinear *)

(* A nonlinear element that behaves exactly like a grounded linear resistor:
   the Newton path must then agree with the plain resistor stamp. *)
let nonlinear_resistor node g =
  {
    Netlist.nl_name = "gres";
    nl_nodes = [| node |];
    nl_eval =
      (fun v ->
        let i = g *. v.(0) in
        ([| i |], [| [| g |] |]));
  }

let test_nonlinear_matches_linear () =
  let build use_nonlinear =
    let nl = Netlist.create () in
    let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
    Netlist.force_voltage nl src (fun _ -> 2.);
    Netlist.resistor nl src out 1e3;
    if use_nonlinear then Netlist.nonlinear nl (nonlinear_resistor out 1e-3)
    else Netlist.resistor nl out Netlist.ground 1e3;
    let v = Engine.dc_operating_point nl in
    v.(out)
  in
  check_float ~eps:1e-9 "nonlinear = linear" (build false) (build true)

let test_diode_clamp_dc () =
  (* Source 1 V -> 1 kOhm -> diode to ground.  Check KCL at the solution:
     (1 - v)/R = Is (exp (v/vt) - 1). *)
  let is_ = 1e-14 and vt = 0.02585 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (fun _ -> 1.);
  Netlist.resistor nl src out 1e3;
  Netlist.nonlinear nl
    {
      Netlist.nl_name = "diode";
      nl_nodes = [| out |];
      nl_eval =
        (fun v ->
          (* Exponent clamp keeps early Newton iterations finite. *)
          let x = Float.min (v.(0) /. vt) 60. in
          let e = Float.exp x in
          ([| is_ *. (e -. 1.) |], [| [| is_ *. e /. vt |] |]));
    };
  let v = Engine.dc_operating_point nl in
  let i_r = (1. -. v.(out)) /. 1e3 in
  let i_d = is_ *. (Float.exp (v.(out) /. vt) -. 1.) in
  check_float ~eps:1e-9 "KCL balance" 0. (i_r -. i_d);
  Alcotest.(check bool) "forward drop plausible" true (v.(out) > 0.4 && v.(out) < 0.75)

(* -------------------------------------------------------- factor-once *)

(* The factor-once fast path (assemble + factor the linear system once, then
   only rebuild the RHS) must reproduce the per-step reassembly path sample
   for sample.  One builder per stamp class, checked under both
   integrators. *)

let build_rc_ladder () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (step 1.);
  let prev = ref src and probes = ref [ src ] in
  for i = 1 to 20 do
    let nd = Netlist.node nl (Printf.sprintf "n%d" i) in
    Netlist.resistor nl !prev nd 50.;
    Netlist.capacitor nl nd Netlist.ground 20e-15;
    prev := nd;
    probes := nd :: !probes
  done;
  (nl, !probes)

let build_rlc_ladder () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (step 1.);
  let prev = ref src and probes = ref [ src ] in
  for i = 1 to 12 do
    let mid = Netlist.node nl (Printf.sprintf "m%d" i) in
    let nd = Netlist.node nl (Printf.sprintf "n%d" i) in
    Netlist.resistor nl !prev mid 5.;
    Netlist.inductor nl mid nd 0.4e-9;
    Netlist.capacitor nl nd Netlist.ground 80e-15;
    prev := nd;
    probes := nd :: mid :: !probes
  done;
  (nl, !probes)

let build_coupled_pair () =
  (* Aggressor drives a coupled segment; victim closed through a resistor so
     mutual inductance induces observable noise. *)
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (step 1.);
  let a1 = Netlist.node nl "a1" and a2 = Netlist.node nl "a2" in
  let b1 = Netlist.node nl "b1" and b2 = Netlist.node nl "b2" in
  Netlist.resistor nl src a1 25.;
  Netlist.coupled_pair nl (a1, a2) 2e-9 (b1, b2) 2e-9 ~k:0.5;
  Netlist.capacitor nl a2 Netlist.ground 0.2e-12;
  Netlist.resistor nl b1 Netlist.ground 50.;
  Netlist.capacitor nl b2 Netlist.ground 0.2e-12;
  Netlist.resistor nl b2 Netlist.ground 1e3;
  (nl, [ a1; a2; b1; b2 ])

let build_nonlinear_clamp () =
  (* Step through a resistor into a capacitor clamped by a diode: exercises
     the Newton path (several iterations per step) on top of linear
     stamps. *)
  let is_ = 1e-14 and vt = 0.02585 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step 1.);
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 0.1e-12;
  Netlist.nonlinear nl
    {
      Netlist.nl_name = "diode";
      nl_nodes = [| out |];
      nl_eval =
        (fun v ->
          let x = Float.min (v.(0) /. vt) 60. in
          let e = Float.exp x in
          ([| is_ *. (e -. 1.) |], [| [| is_ *. e /. vt |] |]));
    };
  (nl, [ src; out ])

let check_factored_equivalence name build ~dt ~t_stop () =
  List.iter
    (fun (tag, integration) ->
      let nl, probes = build () in
      let options = { (Engine.default_options ~dt ~t_stop) with Engine.integration } in
      let fast = Engine.transient ~options ~dt ~t_stop nl in
      let naive = Engine.transient ~options ~reassemble_per_step:true ~dt ~t_stop nl in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s newton total" name tag)
        (Engine.newton_total naive) (Engine.newton_total fast);
      List.iter
        (fun node ->
          let vf = Waveform.values (Engine.voltage fast node) in
          let vn = Waveform.values (Engine.voltage naive node) in
          Array.iteri
            (fun i v ->
              if v <> vn.(i) then
                Alcotest.failf "%s/%s: node %s step %d: fast %.17g <> naive %.17g" name tag
                  (Netlist.node_name nl node) i v vn.(i))
            vf)
        probes)
    [ ("trap", Engine.Trapezoidal); ("be", Engine.Backward_euler) ]

let test_equiv_rc () = check_factored_equivalence "rc-ladder" build_rc_ladder ~dt:1e-12 ~t_stop:0.5e-9 ()
let test_equiv_rlc () = check_factored_equivalence "rlc-ladder" build_rlc_ladder ~dt:0.5e-12 ~t_stop:0.5e-9 ()

let test_equiv_coupled () =
  check_factored_equivalence "coupled-pair" build_coupled_pair ~dt:1e-12 ~t_stop:1e-9 ()

let test_equiv_nonlinear () =
  check_factored_equivalence "nonlinear-clamp" build_nonlinear_clamp ~dt:1e-12 ~t_stop:0.5e-9 ()

let test_record_nodes () =
  let nl, probes = build_rc_ladder () in
  let out = List.hd probes in
  let some_mid = List.nth probes 10 in
  let full = Engine.transient ~dt:1e-12 ~t_stop:0.2e-9 nl in
  let sel = Engine.transient ~record_nodes:[ out ] ~dt:1e-12 ~t_stop:0.2e-9 nl in
  Alcotest.(check bool) "probe recorded" true (Engine.is_recorded sel out);
  Alcotest.(check bool) "other node dropped" false (Engine.is_recorded sel some_mid);
  let vf = Waveform.values (Engine.voltage full out) in
  let vs = Waveform.values (Engine.voltage sel out) in
  Array.iteri
    (fun i v ->
      if v <> vs.(i) then
        Alcotest.failf "selective recording changed the waveform at step %d" i)
    vf;
  (match Engine.voltage sel some_mid with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "voltage on an unrecorded node must raise");
  match Engine.transient ~record_nodes:[ 9999 ] ~dt:1e-12 ~t_stop:0.1e-9 nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range record node must be rejected"

(* ------------------------------------------------------------ adaptive *)

(* Ramp source with declared corner breakpoints into an RC: the adaptive
   grid must track the fixed-step reference within the LTE budget while
   taking far fewer steps, and must land exactly on the declared kinks. *)
let build_ramp_rc () =
  let t0 = 10e-12 and tr = 50e-12 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl ~breakpoints:[ t0; t0 +. tr ] src (fun t ->
      if t <= t0 then 0. else if t >= t0 +. tr then 1. else (t -. t0) /. tr);
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  (nl, out, t0, tr)

let test_adaptive_rc () =
  let t_stop = 5e-9 in
  let nl_f, out_f, _, _ = build_ramp_rc () in
  let fixed = Engine.transient ~dt:0.25e-12 ~t_stop nl_f in
  let nl_a, out_a, _, _ = build_ramp_rc () in
  (* ltol pinned to 1 mV: this test scores waveform tracking against the LTE
     budget (the looser timing-grade default is scored in test_ceff). *)
  let adaptive = Engine.default_adaptive ~dt_min:0.25e-12 ~ltol:1e-3 () in
  let ad = Engine.transient ~adaptive ~dt:0.25e-12 ~t_stop nl_a in
  let wf = Engine.voltage fixed out_f and wa = Engine.voltage ad out_a in
  List.iter
    (fun t ->
      check_float ~eps:2e-3
        (Printf.sprintf "adaptive rc at %g" t)
        (Waveform.value_at wf t) (Waveform.value_at wa t))
    [ 30e-12; 60e-12; 0.2e-9; 0.5e-9; 1e-9; 2e-9; 4e-9 ];
  Alcotest.(check bool)
    (Printf.sprintf "3x fewer steps (%d adaptive vs %d fixed)" (Engine.steps ad)
       (Engine.steps fixed))
    true
    (Engine.steps ad * 3 <= Engine.steps fixed);
  Alcotest.(check bool)
    (Printf.sprintf "refactors (%d) << steps (%d)" (Engine.refactors ad) (Engine.steps ad))
    true
    (Engine.refactors ad * 4 <= Engine.steps ad)

let test_adaptive_breakpoints_exact () =
  let t_stop = 1e-9 in
  let nl, _, t0, tr = build_ramp_rc () in
  let adaptive = Engine.default_adaptive ~dt_min:0.25e-12 () in
  let r = Engine.transient ~adaptive ~dt:0.25e-12 ~t_stop nl in
  let ts = Engine.times r in
  let hit x = Array.exists (fun v -> v = x) ts in
  Alcotest.(check bool) "ramp start hit exactly" true (hit t0);
  Alcotest.(check bool) "ramp end hit exactly" true (hit (t0 +. tr));
  Alcotest.(check bool) "t_stop hit exactly" true (ts.(Array.length ts - 1) = t_stop);
  (* Times strictly increasing on the adaptive grid. *)
  let mono = ref true in
  for i = 1 to Array.length ts - 1 do
    if ts.(i) <= ts.(i - 1) then mono := false
  done;
  Alcotest.(check bool) "strictly increasing grid" true !mono

let test_adaptive_rlc_rings () =
  (* Underdamped series RLC: the LTE control must shrink steps through the
     ringing; the analytic solution is the referee. *)
  let r = 20. and l = 5e-9 and c = 1e-12 and v = 1. in
  let build () =
    let nl = Netlist.create () in
    let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" and out = Netlist.node nl "out" in
    Netlist.force_voltage nl src (step v);
    Netlist.resistor nl src mid r;
    Netlist.inductor nl mid out l;
    Netlist.capacitor nl out Netlist.ground c;
    (nl, out)
  in
  let nl, out = build () in
  let adaptive = Engine.default_adaptive ~dt_min:0.2e-12 ~ltol:1e-3 () in
  let res = Engine.transient ~adaptive ~dt:0.2e-12 ~t_stop:2e-9 nl in
  let w = Engine.voltage res out in
  let wn = 1. /. Float.sqrt (l *. c) in
  let zeta = r /. 2. *. Float.sqrt (c /. l) in
  let wd = wn *. Float.sqrt (1. -. (zeta *. zeta)) in
  let expected t =
    let e = Float.exp (-.zeta *. wn *. t) in
    v *. (1. -. (e *. (Float.cos (wd *. t) +. (zeta /. Float.sqrt (1. -. (zeta *. zeta)) *. Float.sin (wd *. t)))))
  in
  List.iter
    (fun t ->
      check_float ~eps:8e-3 (Printf.sprintf "adaptive rlc at %g" t) (expected t)
        (Waveform.value_at w t))
    [ 0.1e-9; 0.22e-9; 0.5e-9; 1.0e-9; 1.8e-9 ];
  Alcotest.(check bool) "overshoots" true (Waveform.v_max w > 1.2)

let test_adaptive_obs_reconcile () =
  let module Obs = Rlc_obs.Obs in
  let obs = Obs.create () in
  let nl, _, _, _ = build_ramp_rc () in
  let adaptive = Engine.default_adaptive ~dt_min:0.25e-12 () in
  let r = Engine.transient ~obs ~adaptive ~dt:0.25e-12 ~t_stop:2e-9 nl in
  let m = Obs.snapshot obs in
  Alcotest.(check int) "steps counter" (Engine.steps r) (Obs.counter m "engine.steps");
  Alcotest.(check int) "rejected counter" (Engine.steps_rejected r)
    (Obs.counter m "engine.steps_rejected");
  Alcotest.(check int) "refactor counter" (Engine.refactors r) (Obs.counter m "engine.refactors");
  (* The step-size histogram saw exactly the accepted steps. *)
  let hist = List.assoc_opt "engine.step_size_ns" m.Obs.m_stats in
  (match hist with
  | None -> Alcotest.fail "step-size histogram missing"
  | Some s -> Alcotest.(check int) "histogram count" (Engine.steps r) s.Obs.count);
  (* Fixed-step runs keep the adaptive stats at zero. *)
  let nl2, _, _, _ = build_ramp_rc () in
  let rf = Engine.transient ~dt:0.5e-12 ~t_stop:0.5e-9 nl2 in
  Alcotest.(check int) "fixed: no rejections" 0 (Engine.steps_rejected rf);
  Alcotest.(check int) "fixed: no refactor stat" 0 (Engine.refactors rf)

let test_adaptive_nonlinear () =
  (* Newton path under adaptive stepping: diode-clamped RC, compared against
     a fine fixed-step run. *)
  let t_stop = 0.5e-9 in
  let nl_f, probes_f = build_nonlinear_clamp () in
  let fixed = Engine.transient ~dt:0.25e-12 ~t_stop nl_f in
  let nl_a, probes_a = build_nonlinear_clamp () in
  let adaptive = Engine.default_adaptive ~dt_min:0.25e-12 ~ltol:1e-3 () in
  let ad = Engine.transient ~adaptive ~dt:0.25e-12 ~t_stop nl_a in
  let out_f = List.nth probes_f 1 and out_a = List.nth probes_a 1 in
  let wf = Engine.voltage fixed out_f and wa = Engine.voltage ad out_a in
  List.iter
    (fun t ->
      check_float ~eps:2e-3
        (Printf.sprintf "adaptive diode at %g" t)
        (Waveform.value_at wf t) (Waveform.value_at wa t))
    [ 0.05e-9; 0.1e-9; 0.2e-9; 0.45e-9 ]

let test_adaptive_rejects_bad_params () =
  let nl, _, _, _ = build_ramp_rc () in
  let bad a =
    match Engine.transient ~adaptive:a ~dt:1e-12 ~t_stop:1e-9 nl with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "dt_min <= 0" true
    (bad { Engine.dt_min = 0.; dt_max = 1e-12; ltol = 1e-3 });
  Alcotest.(check bool) "dt_max < dt_min" true
    (bad { Engine.dt_min = 1e-12; dt_max = 0.5e-12; ltol = 1e-3 });
  Alcotest.(check bool) "ltol <= 0" true
    (bad { Engine.dt_min = 1e-12; dt_max = 4e-12; ltol = 0. });
  Alcotest.(check bool) "adaptive + reassemble" true
    (match
       Engine.transient ~reassemble_per_step:true
         ~adaptive:(Engine.default_adaptive ()) ~dt:1e-12 ~t_stop:1e-9 nl
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ----------------------------------------------------------- netlist *)

let test_floating_node_rejected () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" and b = Netlist.node nl "b" in
  Netlist.resistor nl a b 1e3;
  Alcotest.(check bool) "floating pair detected" true
    (match Netlist.validate nl with _ -> false | exception Failure _ -> true)

let test_double_force_rejected () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.force_voltage nl a (fun _ -> 1.);
  Alcotest.(check bool) "double force" true
    (match Netlist.force_voltage nl a (fun _ -> 2.) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "force ground" true
    (match Netlist.force_voltage nl Netlist.ground (fun _ -> 2.) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_invalid_element_values () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Alcotest.(check bool) "zero resistance" true
    (match Netlist.resistor nl a Netlist.ground 0. with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative capacitance" true
    (match Netlist.capacitor nl a Netlist.ground (-1e-15) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_engine_stats_and_options () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step 1.);
  Netlist.resistor nl src out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  let r = Engine.transient ~dt:10e-12 ~t_stop:1e-9 nl in
  Alcotest.(check int) "step count" 100 (Engine.steps r);
  (* Linear circuit: exactly one solve per step. *)
  Alcotest.(check int) "newton total" 100 (Engine.newton_total r);
  Alcotest.(check int) "newton worst" 1 (Engine.newton_worst r);
  Alcotest.(check bool) "invalid dt rejected" true
    (match Engine.transient ~dt:0. ~t_stop:1e-9 nl with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_nonlinear_newton_counts () =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step 1.);
  Netlist.resistor nl src out 1e3;
  Netlist.nonlinear nl (nonlinear_resistor out 1e-3);
  let r = Engine.transient ~dt:10e-12 ~t_stop:0.2e-9 nl in
  (* Nonlinear path needs at least the verification iteration. *)
  Alcotest.(check bool) "newton ran" true (Engine.newton_total r >= Engine.steps r);
  Alcotest.(check bool) "bounded iterations" true (Engine.newton_worst r <= 10)

let test_pp_summary () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.force_voltage nl a (fun _ -> 1.);
  let b = Netlist.node nl "b" in
  Netlist.resistor nl a b 10.;
  Netlist.capacitor nl b Netlist.ground 1e-15;
  let s = Format.asprintf "%a" Netlist.pp_summary nl in
  Alcotest.(check string) "summary" "netlist<3 nodes, 1R 1C 0L 0I 0K 0 nonlinear, 1 forced>" s

let test_node_names () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "alpha" in
  let b = Netlist.node nl "beta" in
  Alcotest.(check string) "ground name" "gnd" (Netlist.node_name nl Netlist.ground);
  Alcotest.(check string) "first" "alpha" (Netlist.node_name nl a);
  Alcotest.(check string) "second" "beta" (Netlist.node_name nl b)

(* ------------------------------------------------------------ property *)

let prop_rc_charge_conservation =
  QCheck.Test.make ~name:"RC step settles to the source voltage" ~count:25
    QCheck.(pair (float_range 100. 5000.) (float_range 0.1e-12 2e-12))
    (fun (r, c) ->
      let nl = Netlist.create () in
      let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
      Netlist.force_voltage nl src (step 1.5);
      Netlist.resistor nl src out r;
      Netlist.capacitor nl out Netlist.ground c;
      let tau = r *. c in
      let res = Engine.transient ~dt:(tau /. 200.) ~t_stop:(8. *. tau) nl in
      Float.abs (Engine.voltage_at res out (7.5 *. tau) -. 1.5) < 5e-3)

(* ------------------------------------------------------------ compiled *)

(* Bit-identity: a compiled handle must consume exactly the floats a fresh
   Engine.transient consumes — waveforms compare with (<>), never with a
   tolerance — across circuit kinds, integration methods, and stepping
   modes.  Each handle runs twice so the second run exercises the cached DC
   entry and the per-(integration, dt) transient-state reuse. *)
let check_compiled_identity name build ~dt ~t_stop () =
  List.iter
    (fun (tag, integration) ->
      List.iter
        (fun (mode, adaptive) ->
          let nl, probes = build () in
          let options = { (Engine.default_options ~dt ~t_stop) with Engine.integration } in
          let fresh = Engine.transient ~options ?adaptive ~dt ~t_stop nl in
          let h = Engine.Compiled.compile nl in
          List.iteri
            (fun k r ->
              if Engine.times fresh <> Engine.times r then
                Alcotest.failf "%s/%s/%s run %d: time grids differ" name tag mode k;
              List.iter
                (fun node ->
                  let vf = Waveform.values (Engine.voltage fresh node) in
                  let vr = Waveform.values (Engine.voltage r node) in
                  Array.iteri
                    (fun i v ->
                      if v <> vr.(i) then
                        Alcotest.failf
                          "%s/%s/%s run %d: node %s step %d: fresh %.17g <> compiled %.17g"
                          name tag mode k (Netlist.node_name nl node) i v vr.(i))
                    vf)
                probes)
            [
              Engine.Compiled.run ~options ?adaptive ~dt ~t_stop h;
              Engine.Compiled.run ~options ?adaptive ~dt ~t_stop h;
            ])
        [ ("fixed", None); ("adaptive", Some (Engine.default_adaptive ~dt_min:dt ())) ])
    [ ("trap", Engine.Trapezoidal); ("be", Engine.Backward_euler) ]

let test_compiled_rc () =
  check_compiled_identity "rc-ladder" build_rc_ladder ~dt:1e-12 ~t_stop:0.5e-9 ()

let test_compiled_rlc () =
  check_compiled_identity "rlc-ladder" build_rlc_ladder ~dt:0.5e-12 ~t_stop:0.5e-9 ()

let test_compiled_coupled () =
  check_compiled_identity "coupled-pair" build_coupled_pair ~dt:1e-12 ~t_stop:1e-9 ()

let test_compiled_nonlinear () =
  check_compiled_identity "nonlinear-clamp" build_nonlinear_clamp ~dt:1e-12 ~t_stop:0.5e-9 ()

let build_rc_pair r c =
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" and out = Netlist.node nl "out" in
  Netlist.force_voltage nl src (step 1.);
  Netlist.resistor nl src out r;
  Netlist.capacitor nl out Netlist.ground c;
  (nl, out)

let assert_same_waveform msg fresh compiled node =
  let vf = Waveform.values (Engine.voltage fresh node) in
  let vc = Waveform.values (Engine.voltage compiled node) in
  Array.iteri
    (fun i v ->
      if v <> vc.(i) then
        Alcotest.failf "%s: step %d: fresh %.17g <> compiled %.17g" msg i v vc.(i))
    vf

let test_compiled_restamp () =
  (* New element values into a used handle: results must match a fresh
     compile of the new netlist exactly (stale companion history, cached DC
     and cached states must all be invalidated). *)
  let nl1, _ = build_rc_pair 1e3 1e-12 in
  let h = Engine.Compiled.compile nl1 in
  let (_ : Engine.result) = Engine.Compiled.run ~dt:5e-12 ~t_stop:2e-9 h in
  let nl2, out2 = build_rc_pair 2e3 0.5e-12 in
  Engine.Compiled.restamp h nl2;
  let r2 = Engine.Compiled.run ~dt:5e-12 ~t_stop:2e-9 h in
  let fresh2 = Engine.transient ~dt:5e-12 ~t_stop:2e-9 nl2 in
  assert_same_waveform "restamped values" fresh2 r2 out2;
  (* Identical values restamped after a run must also replay cleanly (the
     handle keeps its cached state on a value-identical restamp). *)
  Engine.Compiled.restamp h nl2;
  let r3 = Engine.Compiled.run ~dt:5e-12 ~t_stop:2e-9 h in
  assert_same_waveform "identical restamp" fresh2 r3 out2;
  (* A structurally different netlist must be rejected, not absorbed. *)
  let nl3, out3 = build_rc_pair 1e3 1e-12 in
  Netlist.capacitor nl3 out3 Netlist.ground 1e-15;
  match Engine.Compiled.restamp h nl3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "restamp with extra element must raise"

let test_compiled_cache_keying () =
  Engine.Compiled.clear_cache ();
  let h0, m0 = Engine.Compiled.cache_stats () in
  let nl1, _ = build_rc_pair 1e3 1e-12 in
  let ha = Engine.Compiled.cached nl1 in
  (* Same structure, different values: must hit and restamp, not rebuild. *)
  let nl2, out2 = build_rc_pair 2e3 2e-12 in
  let hb = Engine.Compiled.cached nl2 in
  Alcotest.(check bool) "same-structure netlists share the handle" true (ha == hb);
  let h1, m1 = Engine.Compiled.cache_stats () in
  Alcotest.(check int) "first lookup missed" 1 (m1 - m0);
  Alcotest.(check int) "second lookup hit" 1 (h1 - h0);
  (* The restamped hit must still be exact. *)
  let r = Engine.Compiled.run ~dt:5e-12 ~t_stop:2e-9 hb in
  let fresh = Engine.transient ~dt:5e-12 ~t_stop:2e-9 nl2 in
  assert_same_waveform "cached handle after restamp" fresh r out2;
  (* A different topology (one more element) must key to a fresh handle. *)
  let nl3, out3 = build_rc_pair 1e3 1e-12 in
  Netlist.capacitor nl3 out3 Netlist.ground 5e-15;
  let hc = Engine.Compiled.cached nl3 in
  Alcotest.(check bool) "different structure gets its own handle" true (hc != ha);
  let _, m2 = Engine.Compiled.cache_stats () in
  Alcotest.(check int) "topology change missed" 1 (m2 - m1);
  Engine.Compiled.clear_cache ()

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_circuit"
    [
      ( "linear",
        [
          Alcotest.test_case "RC step response" `Quick test_rc_step;
          Alcotest.test_case "DC divider" `Quick test_rc_divider_dc;
          Alcotest.test_case "series RLC underdamped" `Quick test_series_rlc_underdamped;
          Alcotest.test_case "BE damps vs trapezoidal" `Quick test_backward_euler_damps;
          Alcotest.test_case "current source" `Quick test_current_source_into_rc;
          Alcotest.test_case "LC ladder time of flight" `Quick test_lc_ladder_time_of_flight;
          Alcotest.test_case "PWL replay" `Quick test_pwl_replay;
          q prop_rc_charge_conservation;
        ] );
      ( "nonlinear",
        [
          Alcotest.test_case "nonlinear resistor = linear" `Quick test_nonlinear_matches_linear;
          Alcotest.test_case "diode clamp KCL" `Quick test_diode_clamp_dc;
        ] );
      ( "factor-once",
        [
          Alcotest.test_case "RC ladder fast = per-step reassembly" `Quick test_equiv_rc;
          Alcotest.test_case "RLC ladder fast = per-step reassembly" `Quick test_equiv_rlc;
          Alcotest.test_case "coupled pair fast = per-step reassembly" `Quick test_equiv_coupled;
          Alcotest.test_case "nonlinear fast = per-step reassembly" `Quick test_equiv_nonlinear;
          Alcotest.test_case "selective node recording" `Quick test_record_nodes;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "RC tracks fixed, 3x fewer steps" `Quick test_adaptive_rc;
          Alcotest.test_case "breakpoints hit exactly" `Quick test_adaptive_breakpoints_exact;
          Alcotest.test_case "underdamped RLC tracked" `Quick test_adaptive_rlc_rings;
          Alcotest.test_case "obs counters reconcile" `Quick test_adaptive_obs_reconcile;
          Alcotest.test_case "nonlinear Newton path" `Quick test_adaptive_nonlinear;
          Alcotest.test_case "parameter validation" `Quick test_adaptive_rejects_bad_params;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "RC bit-identity (trap/BE x fixed/adaptive)" `Quick
            test_compiled_rc;
          Alcotest.test_case "RLC bit-identity (trap/BE x fixed/adaptive)" `Quick
            test_compiled_rlc;
          Alcotest.test_case "coupled bit-identity (trap/BE x fixed/adaptive)" `Quick
            test_compiled_coupled;
          Alcotest.test_case "nonlinear bit-identity (trap/BE x fixed/adaptive)" `Quick
            test_compiled_nonlinear;
          Alcotest.test_case "restamp after run reuses the handle" `Quick
            test_compiled_restamp;
          Alcotest.test_case "handle cache keys on structure" `Quick
            test_compiled_cache_keying;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "floating node" `Quick test_floating_node_rejected;
          Alcotest.test_case "double force" `Quick test_double_force_rejected;
          Alcotest.test_case "invalid values" `Quick test_invalid_element_values;
          Alcotest.test_case "engine stats/options" `Quick test_engine_stats_and_options;
          Alcotest.test_case "nonlinear newton counts" `Quick test_nonlinear_newton_counts;
          Alcotest.test_case "pp summary" `Quick test_pp_summary;
          Alcotest.test_case "node names" `Quick test_node_names;
        ] );
    ]
