(* Robustness fuzzing: the Liberty and SPEF parsers must never raise on
   arbitrary input — they either parse or return Error — and the numeric
   kernels must stay finite on randomized physical inputs. *)
open Rlc_num

let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 400))

let mixed_gen =
  (* Bias the fuzz toward inputs that reach deep into the parsers. *)
  QCheck.Gen.(
    oneof
      [
        printable_gen;
        map (fun s -> "library (x) {" ^ s) printable_gen;
        map (fun s -> "*SPEF \"x\"\n*D_NET n 1.0\n" ^ s) printable_gen;
        map (fun s -> "cell (" ^ s ^ ") { }") printable_gen;
        map (fun s -> s ^ "}") printable_gen;
        map (fun s -> "*CAP\n" ^ s) printable_gen;
      ])

let prop_liberty_parser_total =
  QCheck.Test.make ~name:"Liberty parser is total (Ok or Error, never raises)" ~count:500
    (QCheck.make mixed_gen)
    (fun src ->
      match Rlc_liberty.Liberty_ast.parse src with Ok _ -> true | Error _ -> true)

let prop_spef_parser_total =
  QCheck.Test.make ~name:"SPEF parser is total" ~count:500 (QCheck.make mixed_gen)
    (fun src -> match Rlc_spef.Spef.parse_res src with Ok _ -> true | Error _ -> true)

let prop_liberty_roundtrip_fuzzed_numbers =
  (* Any finite float must survive print -> parse exactly. *)
  QCheck.Test.make ~name:"Liberty number round-trip" ~count:300
    QCheck.(float)
    (fun x ->
      QCheck.assume (Float.is_finite x);
      let g =
        {
          Rlc_liberty.Liberty_ast.gname = "library";
          gargs = [ Rlc_liberty.Liberty_ast.Ident "f" ];
          body = [ Rlc_liberty.Liberty_ast.Attribute ("v", Rlc_liberty.Liberty_ast.Num x) ];
        }
      in
      match Rlc_liberty.Liberty_ast.parse (Rlc_liberty.Liberty_ast.to_string g) with
      | Ok g' -> (
          match Rlc_liberty.Liberty_ast.find_attr g' "v" with
          | Some (Rlc_liberty.Liberty_ast.Num y) -> x = y
          | _ -> false)
      | Error _ -> false)

let prop_ceff_finite_on_random_loads =
  (* The Ceff closed forms must stay finite across the whole physical
     parameter space, including near-critically-damped loads where the pole
     pair nearly degenerates.  Note the bound: on strongly underdamped loads
     the delivered charge RINGS, so Ceff can legitimately exceed Ctot (or
     dip toward zero) at some window lengths — the model-flow iteration
     clamps to (0, Ctot], but the raw closed form must only be finite and
     physically bounded by the ringing envelope. *)
  QCheck.Test.make ~name:"Ceff finite and envelope-bounded over random RLC loads" ~count:500
    QCheck.(
      quad (float_range 1. 1000.) (float_range 1e-11 2e-8) (float_range 1e-14 5e-12)
        (pair (float_range 0.05 0.99) (float_range 5e-12 1e-9)))
    (fun (r, l, c, (f, tr)) ->
      let p =
        Rlc_moments.Pade.of_tree
          (Rlc_moments.Tree.make ~cap:0. ~children:[ (r, l, Rlc_moments.Tree.leaf c) ] ())
      in
      match Rlc_ceff.Ceff.first_ramp p ~f ~tr with
      | v -> Float.is_finite v && v > -.c && v < 3. *. c
      | exception Rlc_ceff.Ceff.Unstable_load _ -> true)

let prop_moments_finite_on_random_trees =
  let tree_gen =
    QCheck.Gen.(
      sized_size (int_range 1 12) (fun depth ->
          fix
            (fun self d ->
              if d = 0 then map (fun c -> Rlc_moments.Tree.leaf (1e-16 +. (1e-13 *. c))) (float_range 0. 1.)
              else
                frequency
                  [
                    (2, map (fun c -> Rlc_moments.Tree.leaf (1e-16 +. (1e-13 *. c))) (float_range 0. 1.));
                    ( 3,
                      map3
                        (fun r l child ->
                          Rlc_moments.Tree.make ~cap:1e-16
                            ~children:[ (1. +. (200. *. r), 1e-12 +. (5e-9 *. l), child) ]
                            ())
                        (float_range 0. 1.) (float_range 0. 1.) (self (d - 1)) );
                    ( 2,
                      map2
                        (fun a b ->
                          Rlc_moments.Tree.make ~cap:0.
                            ~children:[ (50., 1e-10, a); (80., 2e-10, b) ]
                            ())
                        (self (d / 2)) (self (d / 2)) );
                  ])
            depth))
  in
  QCheck.Test.make ~name:"moments finite on random RLC trees" ~count:300 (QCheck.make tree_gen)
    (fun t ->
      let m = Rlc_moments.Moments.driving_point ~order:5 t in
      Array.for_all Float.is_finite m
      && Float.abs (m.(1) -. Rlc_moments.Tree.total_cap t) <= 1e-9 *. m.(1))

let prop_aberth_total_on_random_coeffs =
  QCheck.Test.make ~name:"Aberth handles random coefficient polynomials" ~count:200
    QCheck.(list_of_size (Gen.int_range 3 9) (float_range (-10.) 10.))
    (fun coeffs ->
      let arr = Array.of_list coeffs in
      QCheck.assume (Float.abs arr.(Array.length arr - 1) > 1e-3);
      let p = Poly.of_coeffs arr in
      QCheck.assume (Poly.degree p >= 1);
      let roots = Polyroots.roots p in
      List.length roots = Poly.degree p
      && List.for_all (fun (z : Cx.t) -> Cx.is_finite z) roots)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_fuzz"
    [
      ( "parsers",
        [
          q prop_liberty_parser_total;
          q prop_spef_parser_total;
          q prop_liberty_roundtrip_fuzzed_numbers;
        ] );
      ( "numerics",
        [
          q prop_ceff_finite_on_random_loads;
          q prop_moments_finite_on_random_trees;
          q prop_aberth_total_on_random_coeffs;
        ] );
    ]
