(* Coupled-net crosstalk on the 8-net bus, end to end.

   Reads the coupled bus design (examples/bus8_coupled.spef — bus8 plus
   cross-net *CAP entries — and examples/bus8.spec), runs the isolated
   flow, then the Rlc_xtalk analysis on top of it:

   - the closed-form screen prices every victim/aggressor pair in
     microseconds and dismisses the weakly coupled majority;
   - only the survivors pay for coupled-cluster transients: a noise peak
     with every aggressor switching together, and a delay push-out swept
     over aggressor alignments;
   - like the isolated flow, the result is byte-identical across worker
     counts.

   Run with:  dune exec examples/crosstalk_bus.exe  (from the project root) *)

module Design = Rlc_flow.Design
module Xtalk = Rlc_xtalk.Xtalk

let mv v = v /. 1e-3
let ps s = s /. 1e-12
let ff f = f /. 1e-15

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find name =
  (* Works both from the project root and from examples/. *)
  if Sys.file_exists (Filename.concat "examples" name) then Filename.concat "examples" name
  else name

let () =
  let spef =
    match
      Rlc_spef.Spef.parse_res ~file:"bus8_coupled.spef" (read_file (find "bus8_coupled.spef"))
    with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let spec =
    match Rlc_flow.Spec.parse_res ~file:"bus8.spec" (read_file (find "bus8.spec")) with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let design = match Design.ingest ~spef ~spec () with Ok d -> d | Error e -> failwith e in
  Format.printf "%a@.@." Design.pp design;

  (* Isolated timing first: crosstalk analysis is a pure function of the
     flow result, so the Ceff solves are shared, not repeated. *)
  let flow = Rlc_flow.Flow.run_cfg Rlc_flow.Flow.Config.default design in
  let name id = design.Design.nets.(id).Design.name in

  let r = Xtalk.analyze flow in

  (* The screen: every ordered pair gets a closed-form number; only pairs
     above threshold * VDD go on to a coupled simulation. *)
  Format.printf "screen (threshold %.0f mV of VDD %.1f V):@." (mv (r.Xtalk.threshold *. r.Xtalk.vdd))
    r.Xtalk.vdd;
  Format.printf "  %-14s %10s %12s   %s@." "victim <- aggr" "Cc (fF)" "est (mV)" "verdict";
  Array.iter
    (fun (v : Xtalk.victim_result) ->
      List.iter
        (fun (p : Xtalk.pair) ->
          Format.printf "  %-14s %10.0f %12.1f   %s@."
            (Printf.sprintf "%s <- %s" (name p.Xtalk.victim) (name p.Xtalk.aggressor))
            (ff p.Xtalk.cc)
            (mv p.Xtalk.est.Rlc_xtalk.Noise.v_peak)
            (if p.Xtalk.screened then "screened" else "simulate"))
        v.Xtalk.pairs)
    r.Xtalk.victims;
  Format.printf "  -> %d of %d pairs dismissed without a transient@.@."
    r.Xtalk.stats.Xtalk.n_screened r.Xtalk.stats.Xtalk.n_pairs;

  (* The survivors: coupled-cluster noise and aggressor-aligned delay. *)
  Format.printf "simulated victims (budget %.0f mV, %d alignments):@."
    (mv (r.Xtalk.budget *. r.Xtalk.vdd))
    r.Xtalk.alignments;
  Array.iter
    (fun (v : Xtalk.victim_result) ->
      if v.Xtalk.simulated then
        Format.printf
          "  %-4s noise %6.1f mV (closed form said %6.1f mV)  delay %6.2f -> %6.2f ps  \
           push-out %+.2f ps%s@."
          (name v.Xtalk.victim)
          (mv (Option.get v.Xtalk.noise_sim))
          (mv v.Xtalk.noise_est) (ps v.Xtalk.isolated_delay)
          (ps (Option.get v.Xtalk.coupled_delay))
          (ps (Option.get v.Xtalk.pushout))
          (if v.Xtalk.violation then "  VIOLATION" else ""))
    r.Xtalk.victims;

  (* Determinism: like the flow itself, the analysis is byte-identical
     across worker counts — the pool only changes wall-clock time. *)
  let with_jobs jobs =
    Xtalk.analyze ~config:{ Xtalk.Config.default with Xtalk.Config.jobs = Some jobs } flow
  in
  let f1 = Xtalk.json_fragment design (with_jobs 1) in
  let f4 = Xtalk.json_fragment design (with_jobs 4) in
  Format.printf "@.deterministic across jobs: %b@." (f1 = f4)
