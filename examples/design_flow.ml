(* Full-design timing with the parallel flow.

   Reads the 8-net bus design (examples/bus8.spef + examples/bus8.spec),
   levelizes it, fans the per-net Ceff solves over a domain pool, and prints
   the report.  Demonstrates the two headline properties of Rlc_flow:

   - determinism: the JSON report is byte-identical for any --jobs count;
   - the result cache: the four bus bits share one cache entry, so a warm
     rerun spends zero Ceff iterations.

   Run with:  dune exec examples/design_flow.exe  (from the project root) *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find name =
  (* Works both from the project root and from examples/. *)
  if Sys.file_exists (Filename.concat "examples" name) then Filename.concat "examples" name
  else name

let () =
  let spef =
    match Rlc_spef.Spef.parse_res ~file:"bus8.spef" (read_file (find "bus8.spef")) with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let spec =
    match Rlc_flow.Spec.parse_res ~file:"bus8.spec" (read_file (find "bus8.spec")) with
    | Ok s -> s
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let design =
    match Rlc_flow.Design.ingest ~spef ~spec () with Ok d -> d | Error e -> failwith e
  in
  Format.printf "%a@.@." Rlc_flow.Design.pp design;

  (* Cold run on one domain, then the same design on four.  Runs are
     configured through the Flow.Config record. *)
  let run ?cache ~jobs design =
    Rlc_flow.Flow.run_cfg
      { Rlc_flow.Flow.Config.default with Rlc_flow.Flow.Config.jobs = Some jobs; cache }
      design
  in
  let r1 = run ~jobs:1 design in
  let r4 = run ~jobs:4 design in
  Rlc_flow.Report.summary Format.std_formatter r1;
  Format.printf "@.deterministic across jobs: %b@."
    (Rlc_flow.Report.json_string r1 = Rlc_flow.Report.json_string r4);

  (* Warm rerun against a shared cache: every net is a hit. *)
  let cache = Rlc_flow.Flow.create_cache () in
  let cold = run ~cache ~jobs:1 design in
  let warm = run ~cache ~jobs:1 design in
  Format.printf
    "cold run: %d/%d Ceff iterations actually run; warm rerun: %d (cache %d hits)@."
    cold.Rlc_flow.Flow.stats.Rlc_flow.Flow.iterations_spent
    cold.Rlc_flow.Flow.stats.Rlc_flow.Flow.iterations_total
    warm.Rlc_flow.Flow.stats.Rlc_flow.Flow.iterations_spent
    warm.Rlc_flow.Flow.stats.Rlc_flow.Flow.cache_hits;

  (* The machine-readable reports the CLI writes with --json / --csv. *)
  print_string (Rlc_flow.Report.csv_string r1)
