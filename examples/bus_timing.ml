(* Sizing a 64-bit global bus.

   The motivating workload of the paper's introduction: long, wide global
   wires driven by strong buffers.  For one bus bit at each candidate wire
   width we ask: which driver size first meets a far-end timing budget, and
   does that operating point need the two-ramp (inductive) treatment or is
   the classic single Ceff fine?

   Run with:  dune exec examples/bus_timing.exe *)
open Rlc_ceff

let ps = Rlc_num.Units.in_ps
let tech = Rlc_devices.Tech.c018

let far_delay_of size line cl =
  let cell =
    match Rlc_liberty.Characterize.cell_res tech ~size with
    | Ok c -> c
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let model =
    Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
      ~input_slew:(Rlc_num.Units.ps 100.) ~line ~cl ()
  in
  let _, far = Reference.replay_pwl ~dt:0.5e-12 ~pwl:model.Driver_model.pwl ~line ~cl () in
  let t50 =
    Rlc_waveform.Measure.t_frac_exn far ~vdd:tech.Rlc_devices.Tech.vdd
      ~edge:Rlc_waveform.Measure.Rising ~frac:0.5
  in
  (model, t50)

let () =
  let length_mm = 6. in
  let budget = Rlc_num.Units.ps 140. in
  let cl = 30e-15 in
  Format.printf "64-bit bus, %g mm route, far-end budget %.0f ps, CL = %.0f fF@.@." length_mm
    (ps budget) (Rlc_num.Units.in_ff cl);
  Format.printf "%8s %8s %10s %12s %10s@." "width" "driver" "far delay" "vs budget" "regime";
  List.iter
    (fun width_um ->
      let geom = Rlc_parasitics.Extract.geometry ~length_mm ~width_um in
      let line = Rlc_parasitics.Extract.line_of geom in
      let rec first_fit = function
        | [] -> None
        | size :: rest ->
            let model, far = far_delay_of size line cl in
            if far <= budget then Some (size, model, far) else first_fit rest
      in
      match first_fit [ 25.; 50.; 75.; 100.; 125. ] with
      | Some (size, model, far) ->
          Format.printf "%6.1fum %7.0fX %8.1f ps %10.1f ps %10s@." width_um size (ps far)
            (ps (budget -. far))
            (if model.Driver_model.screen.Screen.significant then "inductive" else "RC")
      | None -> Format.printf "%6.1fum %8s %10s@." width_um "-" "no driver meets budget")
    [ 0.8; 1.2; 1.6; 2.0; 2.5; 3.0 ];
  Format.printf
    "@.Wider wires lower R and raise the inductive quality of the line: the driver@\n\
     that meets timing increasingly lands in the regime where single-Ceff timing@\n\
     would misreport both delay and slew (the paper's Table 1 columns).@."
