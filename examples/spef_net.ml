(* Timing a net straight from extracted parasitics.

   Production flows hand the timer a SPEF file, not wire geometry.  This
   example parses an extracted RLC net (with a side branch to a second
   receiver), builds its driving-point tree, fits the paper's rational
   admittance (Eq. 3) from the tree moments, and runs the Ceff iteration
   against a characterized driver — no geometry model involved.

   Run with:  dune exec examples/spef_net.exe *)

let spef_text =
  {|*SPEF "IEEE 1481-1998"
*DESIGN "spef_example"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 PH

// A 4 mm trunk (4 segments) with a 1 mm branch to a second receiver.
*D_NET clk_spine 1105
*CONN
*P drv O
*P rcv_a I
*P rcv_b I
*CAP
1 t1 220
2 t2 220
3 t3 220
4 rcv_a 240
5 b1 205
*RES
1 drv t1 14.5
2 t1 t2 14.5
3 t2 t3 14.5
4 t3 rcv_a 14.5
5 t2 b1 22.0
*INDUC
1 drv t1 1030
2 t1 t2 1030
3 t2 t3 1030
4 t3 rcv_a 1030
5 t2 b1 1050
*END
|}

let () =
  let spef =
    match Rlc_spef.Spef.parse_res spef_text with
    | Ok t -> t
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let net = Option.get (Rlc_spef.Spef.find_net spef "clk_spine") in
  Format.printf "design %S, net %s: %d grounded caps, %d branches@." spef.Rlc_spef.Spef.design
    net.Rlc_spef.Spef.net_name
    (List.length net.Rlc_spef.Spef.caps)
    (List.length net.Rlc_spef.Spef.branches);
  let tree =
    match Rlc_spef.Spef.to_tree net ~root:"drv" with Ok t -> t | Error e -> failwith e
  in
  Format.printf "tree: %d nodes, depth %d, total cap %.1f fF@."
    (Rlc_moments.Tree.node_count tree) (Rlc_moments.Tree.depth tree)
    (Rlc_num.Units.in_ff (Rlc_moments.Tree.total_cap tree));
  let moments = Rlc_moments.Moments.driving_point ~order:5 tree in
  let pade = Rlc_moments.Pade.fit moments in
  Format.printf "admittance fit (Eq. 3): %a@." Rlc_moments.Pade.pp pade;

  (* Ceff iteration against a characterized 75X driver, exactly as the flow
     does for uniform lines. *)
  let cell =
    match Rlc_liberty.Characterize.cell_res Rlc_devices.Tech.c018 ~size:75. with
    | Ok c -> c
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  let input_slew = Rlc_num.Units.ps 100. in
  let ctot = Rlc_moments.Pade.total_cap pade in
  let iterate f =
    let tr_of c =
      Rlc_liberty.Table.ramp_time cell ~edge:Rlc_waveform.Measure.Rising ~slew:input_slew ~cap:c
    in
    let r =
      Rlc_num.Rootfind.fixed_point_bracketed
        (fun c -> Rlc_ceff.Ceff.first_ramp pade ~f ~tr:(tr_of c))
        ~lo:(1e-4 *. ctot) ~hi:ctot ~init:ctot
    in
    (r.Rlc_num.Rootfind.value, tr_of r.Rlc_num.Rootfind.value)
  in
  List.iter
    (fun f ->
      let c, tr = iterate f in
      Format.printf "  f = %.2f: Ceff = %.1f fF (%.0f%% of total) -> table ramp %.1f ps@." f
        (Rlc_num.Units.in_ff c) (100. *. c /. ctot) (Rlc_num.Units.in_ps tr))
    [ 0.5; 0.6; 1.0 ];
  Format.printf
    "@.Resistive/inductive shielding hides part of the branch-loaded tree from the@\n\
     driver during the fast first ramp; the classic 100%%-charge Ceff sees most of it.@."
