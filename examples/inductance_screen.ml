(* Screening a routed design's global nets.

   A timing flow cannot afford the two-ramp machinery (or worse, SPICE) on
   every net; the paper's Eq. 9 screen — with the refinement that the
   *driver output* initial ramp is compared to the time of flight — decides
   cheaply which nets need it.  This example screens a synthetic population
   of global nets and reports how the inductive set concentrates in long,
   wide, strongly driven wires (the paper's Section 6 observation).

   Run with:  dune exec examples/inductance_screen.exe *)
open Rlc_ceff

let tech = Rlc_devices.Tech.c018

(* A deterministic pseudo-random net population (no RNG dependence so the
   example output is reproducible). *)
let nets =
  let golden = 0.618033988749895 in
  List.init 120 (fun i ->
      let u k = Float.rem ((float_of_int (i + 1) *. golden *. float_of_int k) +. 0.137) 1. in
      let length_mm = 1. +. (6. *. u 1) in
      let width_um = 0.8 +. (2.7 *. u 2) in
      let size = [| 25.; 50.; 75.; 100.; 125. |].(i mod 5) in
      let slew_ps = 50. +. (150. *. u 3) in
      (length_mm, width_um, size, slew_ps))

let () =
  let screened =
    List.map
      (fun (length_mm, width_um, size, slew_ps) ->
        let geom = Rlc_parasitics.Extract.geometry ~length_mm ~width_um in
        let line = Rlc_parasitics.Extract.line_of geom in
        let cell =
          match Rlc_liberty.Characterize.cell_res tech ~size with
          | Ok c -> c
          | Error e -> failwith (Rlc_errors.Error.message e)
        in
        let m =
          Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
            ~input_slew:(Rlc_num.Units.ps slew_ps) ~line ~cl:20e-15 ()
        in
        ((length_mm, width_um, size, slew_ps), m.Driver_model.screen))
      nets
  in
  let inductive = List.filter (fun (_, s) -> s.Screen.significant) screened in
  Format.printf "screened %d global nets: %d inductive (%.0f%%)@.@." (List.length screened)
    (List.length inductive)
    (100. *. float_of_int (List.length inductive) /. float_of_int (List.length screened));
  let avg sel l =
    List.fold_left (fun acc (p, _) -> acc +. sel p) 0. l /. float_of_int (List.length l)
  in
  let sel_len (l, _, _, _) = l and sel_wid (_, w, _, _) = w and sel_size (_, _, s, _) = s in
  let rc = List.filter (fun (_, s) -> not s.Screen.significant) screened in
  Format.printf "%12s %12s %12s %12s@." "" "avg len(mm)" "avg wid(um)" "avg driver(X)";
  Format.printf "%12s %12.2f %12.2f %12.0f@." "inductive" (avg sel_len inductive)
    (avg sel_wid inductive) (avg sel_size inductive);
  Format.printf "%12s %12.2f %12.2f %12.0f@." "RC-like" (avg sel_len rc) (avg sel_wid rc)
    (avg sel_size rc);
  (* Why each RC-like net was rejected. *)
  let count f = List.length (List.filter (fun (_, s) -> f s) rc) in
  Format.printf "@.rejection reasons (RC-like nets may fail several):@.";
  Format.printf "  weak driver (Rs >= Z0)      : %d@." (count (fun s -> not s.Screen.rs_ok));
  Format.printf "  slow output edge (Tr1>=2tf) : %d@." (count (fun s -> not s.Screen.tr_ok));
  Format.printf "  lossy line (Rl > 2 Z0)      : %d@." (count (fun s -> not s.Screen.rl_ok));
  Format.printf "  heavy far-end load          : %d@." (count (fun s -> not s.Screen.cl_ok))
