(* Quickstart: model one driver + RLC net and compare against a full
   transistor-level simulation.

   Run with:  dune exec examples/quickstart.exe *)
open Rlc_ceff

let () =
  (* 1. Describe the wire.  This is the paper's Figure 1 net: 5 mm x 1.6 um
     global wire in the calibrated 0.18 um technology; the parasitics come
     out of the field-solver substitute (R = 72.44 Ohm, L = 5.14 nH,
     C = 1.10 pF, i.e. the paper's own extraction). *)
  let geom = Rlc_parasitics.Extract.geometry ~length_mm:5. ~width_um:1.6 in
  let line = Rlc_parasitics.Extract.line_of geom in
  Format.printf "wire: %a@." Rlc_tline.Line.pp line;

  (* 2. Characterize the driver cell (cached NLDM tables: delay/slew vs
     input slew x load cap, simulated with the built-in circuit engine). *)
  let tech = Rlc_devices.Tech.c018 in
  let cell =
    match Rlc_liberty.Characterize.cell_res tech ~size:75. with
    | Ok c -> c
    | Error e -> failwith (Rlc_errors.Error.message e)
  in
  Format.printf "cell: %a@." Rlc_liberty.Table.pp_cell cell;

  (* 3. Run the paper's flow: moments -> breakpoint -> Ceff1/Ceff2
     iterations -> screen -> one- or two-ramp output waveform. *)
  let cl = 20e-15 in
  let model =
    Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
      ~input_slew:(Rlc_num.Units.ps 100.) ~line ~cl ()
  in
  Format.printf "@.model: %a@." Driver_model.pp model;
  Format.printf "screen: %a@." Screen.pp model.Driver_model.screen;

  (* 4. Score it against the transistor-level reference. *)
  let case =
    Evaluate.case ~label:"quickstart" ~length_mm:5. ~width_um:1.6 ~size:75. ~input_slew_ps:100.
      ~cl ()
  in
  let cmp = Evaluate.run ~dt:0.5e-12 case in
  Format.printf "@.%a@." Evaluate.pp_comparison cmp;
  Format.printf
    "@.The two-ramp model tracks the reference while the classic single-Ceff ramp@\n\
     overestimates delay and cannot represent the inductive tail.@."
