(* Mutual-inductance and coupled-line tests: companion-model correctness
   against transformer theory, modal flight times against the even/odd
   decomposition, and crosstalk sanity. *)
open Rlc_circuit
open Rlc_tline
open Rlc_waveform

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let step v t = if t <= 0. then 0. else v

(* ------------------------------------------------------- validation *)

let test_lmat_validation () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" and b = Netlist.node nl "b" in
  let reject lmat =
    match Netlist.coupled_inductors nl [| (a, Netlist.ground); (b, Netlist.ground) |] ~lmat with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "asymmetric rejected" true
    (reject [| [| 1e-9; 0.5e-9 |]; [| 0.4e-9; 1e-9 |] |]);
  Alcotest.(check bool) "non-passive rejected" true
    (reject [| [| 1e-9; 1.5e-9 |]; [| 1.5e-9; 1e-9 |] |]);
  Alcotest.(check bool) "negative self rejected" true
    (reject [| [| -1e-9; 0. |]; [| 0.; 1e-9 |] |]);
  Alcotest.(check bool) "k >= 1 rejected" true
    (match Netlist.coupled_pair nl (a, Netlist.ground) 1e-9 (b, Netlist.ground) 1e-9 ~k:1. with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------ companion physics *)

(* A 1x1 "coupled" group must behave exactly like a plain inductor. *)
let test_single_branch_group_equals_inductor () =
  let run use_group =
    let nl = Netlist.create () in
    let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" and out = Netlist.node nl "out" in
    Netlist.force_voltage nl src (step 1.);
    Netlist.resistor nl src mid 30.;
    if use_group then Netlist.coupled_inductors nl [| (mid, out) |] ~lmat:[| [| 4e-9 |] |]
    else Netlist.inductor nl mid out 4e-9;
    Netlist.capacitor nl out Netlist.ground 1e-12;
    let r = Engine.transient ~dt:0.5e-12 ~t_stop:1.5e-9 nl in
    Engine.voltage r out
  in
  let wa = run false and wb = run true in
  List.iter
    (fun t ->
      check_float ~eps:1e-9 (Printf.sprintf "match at %g" t) (Waveform.value_at wa t)
        (Waveform.value_at wb t))
    [ 0.1e-9; 0.3e-9; 0.7e-9; 1.2e-9 ]

(* Shorted secondary: the primary sees the leakage inductance
   L_eff = L1 (1 - k^2).  Compare the R-L current rise time constant. *)
let test_shorted_secondary_leakage () =
  let l1 = 5e-9 and k = 0.6 and r = 50. in
  let run k =
    let nl = Netlist.create () in
    let src = Netlist.node nl "src" and mid = Netlist.node nl "mid" in
    let sec = Netlist.node nl "sec" in
    Netlist.force_voltage nl src (step 1.);
    Netlist.resistor nl src mid r;
    (* Primary from mid to ground; secondary shorted through 1 mOhm. *)
    Netlist.coupled_pair nl (mid, Netlist.ground) l1 (sec, Netlist.ground) l1 ~k;
    Netlist.resistor nl sec Netlist.ground 1e-3;
    let res = Engine.transient ~dt:0.1e-12 ~t_stop:1e-9 nl in
    Engine.voltage res mid
  in
  (* v_mid decays with tau = L_eff / R from 1 toward 0. *)
  let tau_of w =
    match Waveform.first_crossing w ~level:(Float.exp (-1.)) ~direction:Waveform.Falling with
    | Some t -> t
    | None -> Alcotest.fail "no decay"
  in
  let tau_coupled = tau_of (run k) in
  let expected = l1 *. (1. -. (k *. k)) /. r in
  Alcotest.(check bool)
    (Printf.sprintf "tau %.1f ps vs leakage L/R %.1f ps" (tau_coupled /. 1e-12)
       (expected /. 1e-12))
    true
    (Float.abs (tau_coupled -. expected) < 0.05 *. expected);
  (* And without coupling the time constant is the full L1/R. *)
  let tau0 = tau_of (run 0.) in
  check_float ~eps:(0.05 *. l1 /. r) "uncoupled tau" (l1 /. r) tau0

(* ------------------------------------------------------ modal flight *)

let line_lossless = Line.of_totals ~r:1. ~l:5e-9 ~c:1e-12 ~length:5e-3

let modal_run ~k ~cc_total ~drive_b =
  let nl = Netlist.create () in
  let src_a = Netlist.node nl "src_a" and src_b = Netlist.node nl "src_b" in
  Netlist.force_voltage nl src_a (step 1.);
  Netlist.force_voltage nl src_b (fun t -> drive_b *. step 1. t);
  let drv_a = Netlist.node nl "drv_a" and drv_b = Netlist.node nl "drv_b" in
  (* Roughly matched launches keep reflections small. *)
  let z = Line.z0 line_lossless in
  Netlist.resistor nl src_a drv_a z;
  Netlist.resistor nl src_b drv_b z;
  let built = Coupled_ladder.build ~n_segments:120 nl line_lossless ~k ~cc_total ~near_a:drv_a ~near_b:drv_b in
  Netlist.capacitor nl built.Coupled_ladder.far_a Netlist.ground 1e-15;
  Netlist.capacitor nl built.Coupled_ladder.far_b Netlist.ground 1e-15;
  let r = Engine.transient ~dt:0.25e-12 ~t_stop:1e-9 nl in
  (Engine.voltage r built.Coupled_ladder.far_a, Engine.voltage r built.Coupled_ladder.far_b)

let test_even_mode_flight_time () =
  let k = 0.4 and cc_total = 0.4e-12 in
  (* Both lines driven identically: pure even mode; coupling cap inert. *)
  let far_a, far_b = modal_run ~k ~cc_total ~drive_b:1. in
  let tf_even = Coupled_ladder.even_mode_tf line_lossless ~k in
  let t50 =
    Option.get (Waveform.first_crossing far_a ~level:0.5 ~direction:Waveform.Rising)
  in
  Alcotest.(check bool)
    (Printf.sprintf "even-mode tf: %.1f ps vs theory %.1f ps" (t50 /. 1e-12) (tf_even /. 1e-12))
    true
    (Float.abs (t50 -. tf_even) < 0.10 *. tf_even);
  (* Symmetry: both far ends identical. *)
  check_float ~eps:1e-6 "symmetric" (Waveform.value_at far_a 0.8e-9) (Waveform.value_at far_b 0.8e-9)

let test_odd_mode_flight_time () =
  let k = 0.4 and cc_total = 0.4e-12 in
  (* Opposite drive: pure odd mode, slower L(1-k) but heavier C + 2Cc. *)
  let far_a, _ = modal_run ~k ~cc_total ~drive_b:(-1.) in
  let tf_odd = Coupled_ladder.odd_mode_tf line_lossless ~k ~cc_total in
  let t50 =
    Option.get (Waveform.first_crossing far_a ~level:0.5 ~direction:Waveform.Rising)
  in
  Alcotest.(check bool)
    (Printf.sprintf "odd-mode tf: %.1f ps vs theory %.1f ps" (t50 /. 1e-12) (tf_odd /. 1e-12))
    true
    (Float.abs (t50 -. tf_odd) < 0.10 *. tf_odd)

let test_modes_differ () =
  let k = 0.4 and cc_total = 0.4e-12 in
  let tf_even = Coupled_ladder.even_mode_tf line_lossless ~k in
  let tf_odd = Coupled_ladder.odd_mode_tf line_lossless ~k ~cc_total in
  Alcotest.(check bool) "even slower than odd here" true (tf_even > tf_odd *. 1.05)

(* -------------------------------------------------------- crosstalk *)

let test_quiet_victim_noise () =
  let k = 0.4 and cc_total = 0.3e-12 in
  (* Aggressor switches; victim held low through its driver resistance. *)
  let far_a, far_b = modal_run ~k ~cc_total ~drive_b:0. in
  ignore far_a;
  let noise = Waveform.v_max far_b in
  Alcotest.(check bool)
    (Printf.sprintf "victim noise %.0f mV in (0, 500 mV)" (noise /. 1e-3))
    true
    (noise > 0.02 && noise < 0.5);
  (* Victim settles back to quiet. *)
  check_float ~eps:0.05 "settles" 0. (Waveform.v_final far_b)

let test_no_coupling_no_noise () =
  let far_a, far_b = modal_run ~k:0. ~cc_total:0. ~drive_b:0. in
  ignore far_a;
  Alcotest.(check bool) "silent victim" true (Waveform.v_max far_b < 1e-6)

let test_forward_crosstalk_polarity () =
  (* Classic coupled-line result: forward (far-end) crosstalk is
     proportional to (Cc/C - M/L), so purely inductive coupling dips the
     quiet victim's far end NEGATIVE while purely capacitive coupling pushes
     it positive. *)
  let _, far_inductive = modal_run ~k:0.5 ~cc_total:0. ~drive_b:0. in
  Alcotest.(check bool)
    (Printf.sprintf "inductive forward noise negative (min %.0f mV)"
       (Waveform.v_min far_inductive /. 1e-3))
    true
    (Waveform.v_min far_inductive < -0.02);
  let _, far_capacitive = modal_run ~k:0. ~cc_total:0.3e-12 ~drive_b:0. in
  Alcotest.(check bool)
    (Printf.sprintf "capacitive forward noise positive (max %.0f mV)"
       (Waveform.v_max far_capacitive /. 1e-3))
    true
    (Waveform.v_max far_capacitive > 0.02
    && Waveform.v_max far_capacitive > Float.abs (Waveform.v_min far_capacitive))

let () =
  Alcotest.run "rlc_coupled"
    [
      ( "netlist",
        [ Alcotest.test_case "lmat validation" `Quick test_lmat_validation ] );
      ( "companion",
        [
          Alcotest.test_case "1x1 group = inductor" `Quick test_single_branch_group_equals_inductor;
          Alcotest.test_case "shorted-secondary leakage" `Quick test_shorted_secondary_leakage;
        ] );
      ( "modes",
        [
          Alcotest.test_case "even-mode flight" `Quick test_even_mode_flight_time;
          Alcotest.test_case "odd-mode flight" `Quick test_odd_mode_flight_time;
          Alcotest.test_case "modes differ" `Quick test_modes_differ;
        ] );
      ( "crosstalk",
        [
          Alcotest.test_case "quiet victim noise" `Quick test_quiet_victim_noise;
          Alcotest.test_case "no coupling, no noise" `Quick test_no_coupling_no_noise;
          Alcotest.test_case "forward crosstalk polarity" `Quick test_forward_crosstalk_polarity;
        ] );
    ]
