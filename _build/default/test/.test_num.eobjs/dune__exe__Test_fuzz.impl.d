test/test_fuzz.ml: Alcotest Array Char Cx Float Gen List Poly Polyroots QCheck QCheck_alcotest Rlc_ceff Rlc_liberty Rlc_moments Rlc_num Rlc_spef
