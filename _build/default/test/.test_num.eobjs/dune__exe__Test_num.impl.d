test/test_num.ml: Alcotest Array Banded Cx Float Format Gen Int Interp Linalg List Poly QCheck QCheck_alcotest Quadrature Rlc_num Rootfind Tridiag Units
