test/test_sta.ml: Alcotest Float Lazy List Printf Reference Rlc_ceff Rlc_devices Rlc_num Rlc_parasitics Rlc_sta Rlc_waveform Sta
