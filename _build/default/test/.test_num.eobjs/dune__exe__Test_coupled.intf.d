test/test_coupled.mli:
