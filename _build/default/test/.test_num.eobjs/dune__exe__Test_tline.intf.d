test/test_tline.mli:
