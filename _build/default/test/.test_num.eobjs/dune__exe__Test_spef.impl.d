test/test_spef.ml: Alcotest Array Buffer Float Lazy List Option Printf Result Rlc_moments Rlc_spef Rlc_tline String
