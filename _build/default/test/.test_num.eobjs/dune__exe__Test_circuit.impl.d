test/test_circuit.ml: Alcotest Array Engine Float Format List Netlist Printf Pwl QCheck QCheck_alcotest Rlc_circuit Rlc_waveform Waveform
