test/test_coupled.ml: Alcotest Coupled_ladder Engine Float Line List Netlist Option Printf Rlc_circuit Rlc_tline Rlc_waveform Waveform
