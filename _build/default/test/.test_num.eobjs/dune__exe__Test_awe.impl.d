test/test_awe.ml: Abcd Alcotest Array Awe Cx Float Gen Line List Pade Poly Polyroots Printf QCheck QCheck_alcotest Rlc_moments Rlc_num Rlc_tline
