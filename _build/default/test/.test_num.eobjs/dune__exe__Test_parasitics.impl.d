test/test_parasitics.ml: Alcotest Extract Float List Printf QCheck QCheck_alcotest Rlc_parasitics Rlc_tline
