test/test_ceff.mli:
