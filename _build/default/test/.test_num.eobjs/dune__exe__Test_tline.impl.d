test/test_tline.ml: Abcd Alcotest Array Cx Engine Float Ladder Lattice Line List Netlist Option Printf QCheck QCheck_alcotest Rlc_circuit Rlc_num Rlc_tline Rlc_waveform Transfer Waveform
