test/test_spef.mli:
