test/test_waveform.ml: Alcotest Float List Measure Printf Pwl QCheck QCheck_alcotest Rlc_num Rlc_waveform Units Waveform
