test/test_parasitics.mli:
