test/test_moments.ml: Abcd Alcotest Array Cx Float Line List Moments Pade Printf QCheck QCheck_alcotest Rlc_moments Rlc_num Rlc_tline Tree
