test/test_devices.ml: Alcotest Array Engine Float Inverter List Measure Mosfet Netlist Printf QCheck QCheck_alcotest Rlc_circuit Rlc_devices Rlc_waveform Tech Testbench Waveform
