(* Unit and property tests for the numerics substrate. *)
open Rlc_num

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ Cx *)

let test_cx_basic () =
  let open Cx in
  let z = make 3. 4. in
  check_float "norm" 5. (norm z);
  check_float "re of sum" 4. ((z +: re 1.).re);
  check_float "mul" (-7.) ((z *: z).re);
  check_float "mul im" 24. ((z *: z).im);
  let q = z /: z in
  check_float "div re" 1. q.re;
  check_float "div im" 0. q.im;
  Alcotest.(check bool) "approx_equal" true (approx_equal (re 1.) (make 1. 1e-12))

let test_cx_exp () =
  let open Cx in
  (* e^{i pi} = -1 *)
  let z = exp (make 0. Float.pi) in
  check_float ~eps:1e-12 "euler re" (-1.) z.re;
  check_float ~eps:1e-12 "euler im" 0. z.im

let test_cx_real_part_checked () =
  check_float "real part" 2.5 (Cx.real_part_checked (Cx.make 2.5 1e-12));
  Alcotest.check_raises "imaginary residue rejected"
    (Invalid_argument "Cx.real_part_checked: imaginary residue 1 (|z|=1.41421)") (fun () ->
      ignore (Cx.real_part_checked (Cx.make 1. 1.)))

(* ---------------------------------------------------------------- Poly *)

let test_poly_eval () =
  let p = Poly.of_coeffs [| 1.; -3.; 2. |] in
  (* 2x^2 - 3x + 1 = (2x - 1)(x - 1) *)
  check_float "eval at 0" 1. (Poly.eval p 0.);
  check_float "eval at 1" 0. (Poly.eval p 1.);
  check_float "eval at 2" 3. (Poly.eval p 2.);
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  let d = Poly.derivative p in
  check_float "derivative" (4. *. 2. -. 3.) (Poly.eval d 2.)

let test_poly_trim () =
  let p = Poly.of_coeffs [| 1.; 2.; 0.; 0. |] in
  Alcotest.(check int) "trailing zeros trimmed" 1 (Poly.degree p)

let test_poly_arith () =
  let p = Poly.of_coeffs [| 1.; 1. |] in
  let q = Poly.mul p p in
  Alcotest.(check bool) "square" true
    (Poly.equal ~tol:0. q (Poly.of_coeffs [| 1.; 2.; 1. |]));
  Alcotest.(check bool) "sub to zero" true (Poly.equal (Poly.sub p p) Poly.zero)

let test_quadratic_real_roots () =
  let r1, r2 = Poly.quadratic_roots ~a:1. ~b:(-5.) ~c:6. in
  let lo = Float.min r1.re r2.re and hi = Float.max r1.re r2.re in
  check_float "small root" 2. lo;
  check_float "large root" 3. hi;
  check_float "imag" 0. r1.im

let test_quadratic_complex_roots () =
  let r1, r2 = Poly.quadratic_roots ~a:1. ~b:2. ~c:5. in
  check_float "alpha" (-1.) r1.re;
  check_float "beta" 2. r1.im;
  check_float "conjugate" (-2.) r2.im

let test_quadratic_cancellation () =
  (* b^2 >> 4ac: naive formula loses the small root. *)
  let r1, r2 = Poly.quadratic_roots ~a:1. ~b:(-1e8) ~c:1. in
  let small = Float.min r1.re r2.re in
  check_float ~eps:1e-16 "small root accurate" 1e-8 small

let test_cubic_roots () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let roots = Poly.roots (Poly.of_coeffs [| -6.; 11.; -6.; 1. |]) in
  let reals = List.sort compare (List.map (fun (z : Cx.t) -> z.re) roots) in
  (match reals with
  | [ a; b; c ] ->
      check_float ~eps:1e-8 "root 1" 1. a;
      check_float ~eps:1e-8 "root 2" 2. b;
      check_float ~eps:1e-8 "root 3" 3. c
  | _ -> Alcotest.fail "expected 3 roots");
  List.iter (fun (z : Cx.t) -> check_float ~eps:1e-8 "real" 0. z.im) roots

let prop_quadratic_roots_satisfy =
  QCheck.Test.make ~name:"quadratic roots satisfy polynomial" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.) (float_range (-100.) 100.))
    (fun (a, b, c) ->
      QCheck.assume (Float.abs a > 1e-3);
      let r1, r2 = Poly.quadratic_roots ~a ~b ~c in
      let residual (z : Cx.t) =
        let open Cx in
        norm ((re a *: z *: z) +: (re b *: z) +: re c)
      in
      let scale = Float.abs a +. Float.abs b +. Float.abs c +. 1. in
      residual r1 < 1e-6 *. scale *. (1. +. Cx.norm r1 ** 2.)
      && residual r2 < 1e-6 *. scale *. (1. +. Cx.norm r2 ** 2.))

(* -------------------------------------------------------------- Linalg *)

let test_lu_solve () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 2. |] |] in
  let b = [| 1.; 2.; 3. |] in
  let x = Linalg.solve a b in
  check_float ~eps:1e-12 "residual" 0. (Linalg.residual_norm a x b)

let test_lu_pivoting () =
  (* Zero on the initial pivot requires row exchange. *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.solve a [| 3.; 7. |] in
  check_float "x0" 7. x.(0);
  check_float "x1" 3. x.(1)

let test_lu_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "raises Singular" true
    (match Linalg.solve a [| 1.; 1. |] with
    | _ -> false
    | exception Linalg.Singular _ -> true)

let test_determinant () =
  let a = [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "det" 6. (Linalg.determinant (Linalg.lu_factor a));
  let swapped = [| [| 0.; 3. |]; [| 2.; 0. |] |] in
  check_float "det with swap" (-6.) (Linalg.determinant (Linalg.lu_factor swapped))

let prop_lu_random_spd =
  QCheck.Test.make ~name:"LU solves random diagonally dominant systems" ~count:100
    QCheck.(pair (int_range 2 12) (list_of_size (Gen.return 200) (float_range (-1.) 1.)))
    (fun (n, entries) ->
      QCheck.assume (List.length entries >= (n * n) + n);
      let e = Array.of_list entries in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j -> if i = j then float_of_int n +. 1. else e.((i * n) + j)))
      in
      let b = Array.init n (fun i -> e.((n * n) + i)) in
      let x = Linalg.solve a b in
      Linalg.residual_norm a x b < 1e-8)

(* ------------------------------------------------------------- Tridiag *)

let test_tridiag_vs_dense () =
  let n = 8 in
  let t = Tridiag.create n in
  for i = 0 to n - 1 do
    t.diag.(i) <- 4. +. float_of_int i;
    if i > 0 then t.lower.(i) <- -1.;
    if i < n - 1 then t.upper.(i) <- -1.5
  done;
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let x = Tridiag.solve t b in
  let dense = Tridiag.to_dense t in
  check_float ~eps:1e-10 "matches dense solve" 0. (Linalg.residual_norm dense x b)

let prop_tridiag_residual =
  QCheck.Test.make ~name:"Thomas solver residual on dominant systems" ~count:200
    QCheck.(pair (int_range 2 50) (list_of_size (Gen.return 160) (float_range 0.1 2.)))
    (fun (n, vals) ->
      QCheck.assume (List.length vals >= 3 * n);
      let v = Array.of_list vals in
      let t = Tridiag.create n in
      for i = 0 to n - 1 do
        t.diag.(i) <- 5. +. v.(i);
        if i > 0 then t.lower.(i) <- -.v.(n + i);
        if i < n - 1 then t.upper.(i) <- -.v.((2 * n) + i)
      done;
      let b = Array.init n (fun i -> v.(i) -. 1.) in
      let x = Tridiag.solve t b in
      let ax = Tridiag.mat_vec t x in
      Array.for_all2 (fun u w -> Float.abs (u -. w) < 1e-9) ax b)

(* -------------------------------------------------------------- Banded *)

let test_banded_vs_dense () =
  let n = 10 and bw = 2 in
  let m = Banded.create ~n ~bw in
  for i = 0 to n - 1 do
    Banded.set m i i 6.;
    for j = Int.max 0 (i - bw) to Int.min (n - 1) (i + bw) do
      if j <> i then Banded.set m i j (0.3 *. float_of_int ((i + j) mod 3))
    done
  done;
  let b = Array.init n float_of_int in
  let x = Banded.solve m b in
  let dense = Banded.to_dense m in
  check_float ~eps:1e-10 "banded = dense" 0. (Linalg.residual_norm dense x b)

let test_banded_out_of_band () =
  let m = Banded.create ~n:5 ~bw:1 in
  Alcotest.(check bool) "set outside band rejected" true
    (match Banded.set m 0 3 1. with
    | () -> false
    | exception Invalid_argument _ -> true);
  check_float "get outside band is 0" 0. (Banded.get m 0 3)

(* ---------------------------------------------------------- Quadrature *)

let test_simpson_poly () =
  (* Simpson is exact on cubics. *)
  let f x = (2. *. x *. x *. x) -. (x *. x) +. 4. in
  let v = Quadrature.simpson_adaptive f ~a:0. ~b:2. in
  check_float ~eps:1e-12 "cubic integral" (8. -. (8. /. 3.) +. 8.) v

let test_simpson_oscillatory () =
  let v = Quadrature.simpson_adaptive sin ~a:0. ~b:(2. *. Float.pi) in
  check_float ~eps:1e-9 "sin over full period" 0. v;
  let v2 = Quadrature.simpson_adaptive (fun x -> Float.exp (-.x) *. sin (10. *. x)) ~a:0. ~b:5. in
  (* closed form: int e^{-x} sin(10x) = 10/101 (1 - e^{-5}(cos 50 + sin 50 /10)) ... *)
  let exact =
    (10. -. (Float.exp (-5.) *. ((sin 50.) +. (10. *. cos 50.)))) /. 101.
  in
  check_float ~eps:1e-9 "damped oscillation" exact v2

let test_trapezoid_sampled () =
  let ts = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 2. |] in
  check_float "piecewise" 5. (Quadrature.trapezoid_sampled ts ys)

let test_simpson_fixed () =
  let v = Quadrature.simpson_fixed (fun x -> x *. x) ~a:0. ~b:3. ~n:10 in
  check_float ~eps:1e-9 "x^2" 9. v

(* ------------------------------------------------------------ Rootfind *)

let test_brent_simple () =
  let root = Rootfind.brent (fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. in
  check_float ~eps:1e-10 "sqrt 2" (Float.sqrt 2.) root

let test_brent_no_bracket () =
  Alcotest.(check bool) "raises No_bracket" true
    (match Rootfind.brent (fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. with
    | _ -> false
    | exception Rootfind.No_bracket -> true)

let test_bisect () =
  let root = Rootfind.bisect cos ~lo:0. ~hi:3. in
  check_float ~eps:1e-9 "pi/2" (Float.pi /. 2.) root

let test_fixed_point_contractive () =
  (* x = cos x converges to the Dottie number. *)
  let r = Rootfind.fixed_point cos ~init:1. ~max_iter:200 in
  Alcotest.(check bool) "converged" true r.converged;
  check_float ~eps:1e-5 "dottie" 0.7390851332 r.value

let test_fixed_point_bracketed_noncontractive () =
  (* f x = 3.5 - x has fixed point 1.75 but plain iteration oscillates. *)
  let r = Rootfind.fixed_point_bracketed (fun x -> 3.5 -. x) ~lo:0. ~hi:3.5 ~init:3. in
  Alcotest.(check bool) "converged" true r.converged;
  check_float ~eps:1e-6 "fixed point" 1.75 r.value

(* -------------------------------------------------------------- Interp *)

let test_linear_interp () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 10.; 30. |] in
  check_float "midpoint" 5. (Interp.linear ~xs ~ys 0.5);
  check_float "second segment" 20. (Interp.linear ~xs ~ys 2.);
  check_float "extrapolate low" (-10.) (Interp.linear ~xs ~ys (-1.));
  check_float "extrapolate high" 40. (Interp.linear ~xs ~ys 4.)

let test_bilinear () =
  let g =
    Interp.make_grid2 ~xs:[| 0.; 1. |] ~ys:[| 0.; 2. |]
      ~values:[| [| 0.; 2. |]; [| 1.; 3. |] |]
  in
  (* v = x + y on the corners; bilinear reproduces the plane. *)
  check_float "center" 1.5 (Interp.bilinear g 0.5 1.);
  check_float "corner" 3. (Interp.bilinear g 1. 2.);
  check_float "extrapolated" 4. (Interp.bilinear g 1. 3.)

let test_grid_validation () =
  Alcotest.(check bool) "non-monotone rejected" true
    (match Interp.make_grid2 ~xs:[| 0.; 0. |] ~ys:[| 0.; 1. |] ~values:[| [| 0.; 0. |]; [| 0.; 0. |] |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_bilinear_within_bounds =
  QCheck.Test.make ~name:"bilinear interpolation stays within cell bounds" ~count:300
    QCheck.(pair (float_range 0. 1.) (float_range 0. 1.))
    (fun (x, y) ->
      let g =
        Interp.make_grid2 ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |]
          ~values:[| [| 1.; 4. |]; [| 2.; 8. |] |]
      in
      let v = Interp.bilinear g x y in
      v >= 1. -. 1e-12 && v <= 8. +. 1e-12)

(* --------------------------------------------------------------- Units *)

let test_units_roundtrip () =
  check_float "ps" 100e-12 (Units.ps 100.);
  check_float "in_ps" 100. (Units.in_ps (Units.ps 100.));
  check_float "pf" 1.1e-12 (Units.pf 1.1);
  check_float "nh roundtrip" 5.14 (Units.in_nh (Units.nh 5.14));
  check_float "mm" 5e-3 (Units.mm 5.)

let test_units_pp () =
  let s = Format.asprintf "%a" Units.pp_cap 1.1e-12 in
  Alcotest.(check string) "pF formatting" "1.1 pF" s;
  let s2 = Format.asprintf "%a" Units.pp_time 25.3e-12 in
  Alcotest.(check string) "ps formatting" "25.3 ps" s2

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_num"
    [
      ( "cx",
        [
          Alcotest.test_case "basic ops" `Quick test_cx_basic;
          Alcotest.test_case "exp" `Quick test_cx_exp;
          Alcotest.test_case "real_part_checked" `Quick test_cx_real_part_checked;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval/derivative" `Quick test_poly_eval;
          Alcotest.test_case "trim" `Quick test_poly_trim;
          Alcotest.test_case "arith" `Quick test_poly_arith;
          Alcotest.test_case "quadratic real" `Quick test_quadratic_real_roots;
          Alcotest.test_case "quadratic complex" `Quick test_quadratic_complex_roots;
          Alcotest.test_case "quadratic cancellation" `Quick test_quadratic_cancellation;
          Alcotest.test_case "cubic" `Quick test_cubic_roots;
          q prop_quadratic_roots_satisfy;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "determinant" `Quick test_determinant;
          q prop_lu_random_spd;
        ] );
      ( "tridiag",
        [ Alcotest.test_case "vs dense" `Quick test_tridiag_vs_dense; q prop_tridiag_residual ] );
      ( "banded",
        [
          Alcotest.test_case "vs dense" `Quick test_banded_vs_dense;
          Alcotest.test_case "band limits" `Quick test_banded_out_of_band;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "cubic exact" `Quick test_simpson_poly;
          Alcotest.test_case "oscillatory" `Quick test_simpson_oscillatory;
          Alcotest.test_case "sampled trapezoid" `Quick test_trapezoid_sampled;
          Alcotest.test_case "fixed simpson" `Quick test_simpson_fixed;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "brent" `Quick test_brent_simple;
          Alcotest.test_case "brent no bracket" `Quick test_brent_no_bracket;
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "fixed point" `Quick test_fixed_point_contractive;
          Alcotest.test_case "bracketed fixed point" `Quick test_fixed_point_bracketed_noncontractive;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear" `Quick test_linear_interp;
          Alcotest.test_case "bilinear" `Quick test_bilinear;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          q prop_bilinear_within_bounds;
        ] );
      ( "units",
        [
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
          Alcotest.test_case "pretty printing" `Quick test_units_pp;
        ] );
    ]
