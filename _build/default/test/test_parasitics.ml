(* Parasitics substrate tests: the fitted formulas must reproduce every
   calibration point the paper quotes to within a few percent, and the
   calibrated lookup must return the paper's values verbatim. *)
open Rlc_parasitics

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_calibration_lookup_exact () =
  let g = Extract.geometry ~length_mm:5. ~width_um:1.6 in
  match Extract.lookup_calibrated g with
  | Some p ->
      check_float "R" 72.44 p.Extract.r_total;
      check_float "L" 5.14e-9 p.Extract.l_total;
      check_float "C" 1.10e-12 p.Extract.c_total
  | None -> Alcotest.fail "5mm x 1.6um must be calibrated"

let test_lookup_tolerance () =
  (* Within 1%: still the calibrated point. *)
  let g = Extract.geometry ~length_mm:5.004 ~width_um:1.599 in
  Alcotest.(check bool) "near match accepted" true (Extract.lookup_calibrated g <> None);
  let g2 = Extract.geometry ~length_mm:5.5 ~width_um:1.6 in
  Alcotest.(check bool) "distinct geometry rejected" true (Extract.lookup_calibrated g2 = None)

let test_fit_accuracy_on_all_calibration_points () =
  List.iter
    (fun (g, p) ->
      let fit = Extract.fitted g in
      let rel a b = Float.abs ((a -. b) /. b) *. 100. in
      let er = rel fit.Extract.r_total p.Extract.r_total in
      let el = rel fit.Extract.l_total p.Extract.l_total in
      let ec = rel fit.Extract.c_total p.Extract.c_total in
      let label =
        Printf.sprintf "%.0fmm/%.1fum: R %.1f%%, L %.1f%%, C %.1f%%"
          (g.Extract.length /. 1e-3) (g.Extract.width /. 1e-6) er el ec
      in
      Alcotest.(check bool) label true (er < 6. && el < 5. && ec < 5.))
    Extract.calibration_points

let test_extract_prefers_table () =
  let g = Extract.geometry ~length_mm:7. ~width_um:1.6 in
  let p = Extract.extract g in
  check_float "paper's fig3 R" 101.3 p.Extract.r_total

let test_extract_falls_back_to_fit () =
  let g = Extract.geometry ~length_mm:4.5 ~width_um:1.4 in
  let p = Extract.extract g in
  (* Sanity ranges interpolated between neighbouring calibration points. *)
  Alcotest.(check bool) "R plausible" true (p.Extract.r_total > 60. && p.Extract.r_total < 90.);
  Alcotest.(check bool) "L plausible" true (p.Extract.l_total > 4e-9 && p.Extract.l_total < 5.5e-9);
  Alcotest.(check bool) "C plausible" true
    (p.Extract.c_total > 0.8e-12 && p.Extract.c_total < 1.1e-12)

let test_line_of_roundtrip () =
  let g = Extract.geometry ~length_mm:5. ~width_um:1.6 in
  let line = Extract.line_of g in
  check_float ~eps:1e-9 "line R" 72.44 (Rlc_tline.Line.total_r line);
  check_float ~eps:1e-15 "line length" 5e-3 line.Rlc_tline.Line.length

let test_geometry_validation () =
  Alcotest.(check bool) "non-positive rejected" true
    (match Extract.geometry ~length_mm:0. ~width_um:1. with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_fitted_monotonicity =
  QCheck.Test.make ~name:"fitted parasitics: R falls and C rises with width" ~count:200
    QCheck.(pair (float_range 1. 7.) (float_range 0.8 3.4))
    (fun (len, w) ->
      let p1 = Extract.fitted (Extract.geometry ~length_mm:len ~width_um:w) in
      let p2 = Extract.fitted (Extract.geometry ~length_mm:len ~width_um:(w +. 0.1)) in
      p2.Extract.r_total < p1.Extract.r_total
      && p2.Extract.c_total > p1.Extract.c_total
      && p2.Extract.l_total < p1.Extract.l_total)

let prop_fitted_scales_with_length =
  QCheck.Test.make ~name:"fitted parasitics scale linearly with length" ~count:200
    QCheck.(pair (float_range 1. 3.5) (float_range 0.8 3.5))
    (fun (len, w) ->
      let p1 = Extract.fitted (Extract.geometry ~length_mm:len ~width_um:w) in
      let p2 = Extract.fitted (Extract.geometry ~length_mm:(2. *. len) ~width_um:w) in
      let close a b = Float.abs ((a -. b) /. b) < 1e-9 in
      close p2.Extract.r_total (2. *. p1.Extract.r_total)
      && close p2.Extract.c_total (2. *. p1.Extract.c_total)
      && close p2.Extract.l_total (2. *. p1.Extract.l_total))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_parasitics"
    [
      ( "calibration",
        [
          Alcotest.test_case "exact lookup" `Quick test_calibration_lookup_exact;
          Alcotest.test_case "lookup tolerance" `Quick test_lookup_tolerance;
          Alcotest.test_case "fit matches all points" `Quick test_fit_accuracy_on_all_calibration_points;
          Alcotest.test_case "extract prefers table" `Quick test_extract_prefers_table;
          Alcotest.test_case "extract fit fallback" `Quick test_extract_falls_back_to_fit;
          Alcotest.test_case "line_of" `Quick test_line_of_roundtrip;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
          q prop_fitted_monotonicity;
          q prop_fitted_scales_with_length;
        ] );
    ]
