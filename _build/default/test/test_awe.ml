(* Arbitrary-degree root finding and the order-q AWE generalization of the
   paper's 3/2 admittance fit. *)
open Rlc_num
open Rlc_moments
open Rlc_tline

let check_rel ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float (tol *. (Float.abs expected +. 1e-300)))) msg expected actual

(* ----------------------------------------------------------- polyroots *)

let test_roots_known_quintic () =
  (* (x-1)(x-2)(x-3)(x-4)(x-5) *)
  let p = Poly.of_coeffs [| -120.; 274.; -225.; 85.; -15.; 1. |] in
  let roots = Polyroots.roots p in
  Alcotest.(check int) "count" 5 (List.length roots);
  List.iter
    (fun (z : Cx.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "residual at %g+%gi" z.Cx.re z.Cx.im)
        true
        (Polyroots.residual p z < 1e-9))
    roots;
  let reals = List.sort compare (List.map (fun (z : Cx.t) -> Float.round z.Cx.re) roots) in
  Alcotest.(check (list (float 1e-9))) "integer roots" [ 1.; 2.; 3.; 4.; 5. ] reals

let test_roots_complex_quartic () =
  (* (x^2+1)(x^2+4): roots +-i, +-2i. *)
  let p = Poly.of_coeffs [| 4.; 0.; 5.; 0.; 1. |] in
  let roots = Polyroots.roots p in
  Alcotest.(check int) "count" 4 (List.length roots);
  List.iter
    (fun z -> Alcotest.(check bool) "residual" true (Polyroots.residual p z < 1e-9))
    roots;
  let mags = List.sort compare (List.map Cx.norm roots) in
  List.iter2 (fun e a -> check_rel ~tol:1e-6 "magnitude" e a) [ 1.; 1.; 2.; 2. ] mags

let test_roots_matches_closed_form () =
  let p = Poly.of_coeffs [| 6.; -5.; 1. |] in
  let aberth = List.sort compare (List.map (fun (z : Cx.t) -> z.Cx.re) (Polyroots.roots p)) in
  List.iter2 (fun e a -> check_rel ~tol:1e-9 "vs quadratic formula" e a) [ 2.; 3. ] aberth

let prop_roots_reconstruct_polynomial =
  QCheck.Test.make ~name:"Aberth roots reproduce random polynomials" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 7) (float_range (-3.) 3.))
    (fun root_list ->
      (* Build p = prod (x - r_i) from random real roots, re-find them. *)
      let p =
        List.fold_left
          (fun acc r -> Poly.mul acc (Poly.of_coeffs [| -.r; 1. |]))
          Poly.one root_list
      in
      let found = Polyroots.roots p in
      List.length found = List.length root_list
      && List.for_all (fun z -> Polyroots.residual p z < 1e-6) found)

(* ----------------------------------------------------------------- awe *)

let line7 = Line.of_totals ~r:101.3 ~l:7.1e-9 ~c:1.54e-12 ~length:7e-3
let cl = 10e-15

let test_q2_equals_pade () =
  let awe = Awe.of_line ~q:2 line7 ~cl in
  let pade = Pade.of_load line7 ~cl in
  let p2 = Awe.to_pade awe in
  check_rel "a1" pade.Pade.a1 p2.Pade.a1;
  check_rel "a2" pade.Pade.a2 p2.Pade.a2;
  check_rel "a3" pade.Pade.a3 p2.Pade.a3;
  check_rel "b1" pade.Pade.b1 p2.Pade.b1;
  check_rel "b2" pade.Pade.b2 p2.Pade.b2

let test_moments_roundtrip () =
  List.iter
    (fun q ->
      let awe = Awe.of_line ~q line7 ~cl in
      let m = Rlc_tline.Abcd.input_admittance_moments line7 ~cl ~order:((2 * q) + 1) in
      let m' = Awe.moments awe ~order:((2 * q) + 1) in
      for k = 1 to (2 * q) + 1 do
        check_rel ~tol:1e-5 (Printf.sprintf "q=%d m%d" q k) m.(k) m'.(k)
      done)
    [ 1; 2; 3; 4 ]

let test_accuracy_improves_with_order () =
  (* Fit error against the exact admittance at a frequency near the first
     line resonance must drop (substantially) from q=1 to q=3. *)
  let s = Cx.make 0. (2. *. Float.pi *. 3e9) in
  let exact = Abcd.input_admittance line7 ~cl s in
  let err q =
    let awe = Awe.of_line ~q line7 ~cl in
    Cx.norm Cx.(Awe.eval awe s -: exact) /. Cx.norm exact
  in
  let e1 = err 1 and e3 = err 3 in
  Alcotest.(check bool)
    (Printf.sprintf "err q=1 %.3g -> q=3 %.3g" e1 e3)
    true (e3 < e1 /. 5.)

let test_stability_pattern () =
  (* The classic AWE pathology, and the reason the paper's Section 1 cites
     realizable reductions [6]: direct Pade moment matching of an inductive
     line is NOT guaranteed stable.  On this line the even orders are stable
     while q = 1 and q = 3 throw a right-half-plane pole — the q = 2 choice
     of Eq. 3 is the smallest order that both sees inductance and stays
     stable here. *)
  List.iter
    (fun (q, expect_stable) ->
      let awe = Awe.of_line ~q line7 ~cl in
      Alcotest.(check int) (Printf.sprintf "q=%d pole count" q) q (List.length (Awe.poles awe));
      Alcotest.(check bool) (Printf.sprintf "q=%d stability" q) expect_stable (Awe.is_stable awe))
    [ (1, false); (2, true); (3, false); (4, true) ]

let test_insufficient_moments_rejected () =
  Alcotest.(check bool) "too few moments" true
    (match Awe.fit ~q:3 [| 0.; 1e-12; -1e-22 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_to_pade_rejects_high_order () =
  let awe = Awe.of_line ~q:4 line7 ~cl in
  Alcotest.(check bool) "q=4 has no Eq. 3 form" true
    (match Awe.to_pade awe with _ -> false | exception Invalid_argument _ -> true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_awe"
    [
      ( "polyroots",
        [
          Alcotest.test_case "quintic" `Quick test_roots_known_quintic;
          Alcotest.test_case "complex quartic" `Quick test_roots_complex_quartic;
          Alcotest.test_case "vs closed form" `Quick test_roots_matches_closed_form;
          q prop_roots_reconstruct_polynomial;
        ] );
      ( "awe",
        [
          Alcotest.test_case "q=2 equals paper fit" `Quick test_q2_equals_pade;
          Alcotest.test_case "moments roundtrip" `Quick test_moments_roundtrip;
          Alcotest.test_case "order improves accuracy" `Quick test_accuracy_improves_with_order;
          Alcotest.test_case "stability pattern" `Quick test_stability_pattern;
          Alcotest.test_case "insufficient moments" `Quick test_insufficient_moments_rejected;
          Alcotest.test_case "to_pade bounds" `Quick test_to_pade_rejects_high_order;
        ] );
    ]
