(* Device-model tests: alpha-power MOSFET continuity and Jacobian
   correctness, inverter DC transfer, and transient drive sanity. *)
open Rlc_devices
open Rlc_waveform

let tech = Tech.c018
let vdd = tech.Tech.vdd

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------- MOSFET *)

let test_off_below_threshold () =
  let id, gm, gds = Mosfet.nmos_ids tech.Tech.nmos ~w_um:10. ~vgs:0.3 ~vds:1. in
  check_float "id off" 0. id;
  check_float "gm off" 0. gm;
  check_float "gds off" 0. gds

let test_continuity_at_vdsat () =
  let p = tech.Tech.nmos in
  let vgs = 1.2 in
  let vd0 = p.Tech.kv *. ((vgs -. p.Tech.vth) ** (p.Tech.alpha /. 2.)) in
  let below, _, _ = Mosfet.nmos_ids p ~w_um:10. ~vgs ~vds:(vd0 -. 1e-9) in
  let above, _, _ = Mosfet.nmos_ids p ~w_um:10. ~vgs ~vds:(vd0 +. 1e-9) in
  check_float ~eps:1e-9 "current continuous at vdsat" below above;
  (* Slope continuity: dId/dVds -> Idsat * lambda at the boundary. *)
  let _, _, gds_below = Mosfet.nmos_ids p ~w_um:10. ~vgs ~vds:(vd0 -. 1e-9) in
  let _, _, gds_above = Mosfet.nmos_ids p ~w_um:10. ~vgs ~vds:(vd0 +. 1e-9) in
  check_float ~eps:1e-6 "conductance continuous at vdsat" gds_below gds_above

let test_continuity_at_threshold () =
  let p = tech.Tech.nmos in
  let just_on, gm, _ = Mosfet.nmos_ids p ~w_um:10. ~vgs:(p.Tech.vth +. 1e-6) ~vds:1. in
  Alcotest.(check bool) "tiny current just above vth" true (just_on < 1e-8);
  Alcotest.(check bool) "tiny gm just above vth" true (gm < 1e-4)

let test_saturation_scaling () =
  let p = tech.Tech.nmos in
  let i1, _, _ = Mosfet.nmos_ids p ~w_um:10. ~vgs:vdd ~vds:vdd in
  let i2, _, _ = Mosfet.nmos_ids p ~w_um:20. ~vgs:vdd ~vds:vdd in
  check_float ~eps:1e-12 "current scales with width" (2. *. i1) i2;
  (* 75X driver saturation current should be in the mA-tens range so that the
     fitted driver resistance is comparable to global-wire Z0 (~50-70 Ohm). *)
  let w75 = 75. *. 0.36 in
  let i75, _, _ = Mosfet.nmos_ids p ~w_um:w75 ~vgs:vdd ~vds:vdd in
  Alcotest.(check bool)
    (Printf.sprintf "75X Idsat = %.1f mA plausible" (i75 /. 1e-3))
    true
    (i75 > 5e-3 && i75 < 40e-3)

let test_source_drain_symmetry () =
  let e1 = Mosfet.eval_nmos tech.Tech.nmos ~w_um:10. ~vd:1.0 ~vg:1.5 ~vs:0.2 in
  let e2 = Mosfet.eval_nmos tech.Tech.nmos ~w_um:10. ~vd:0.2 ~vg:1.5 ~vs:1.0 in
  check_float ~eps:1e-15 "reversing terminals negates current" (-.e1.Mosfet.id) e2.Mosfet.id

let test_pmos_mirror () =
  (* PMOS pulling its drain up: current must flow out of the device into the
     drain (negative by our "into the device" drain convention). *)
  let e = Mosfet.eval_pmos tech.Tech.pmos ~w_um:20. ~vd:0.5 ~vg:0. ~vs:vdd in
  Alcotest.(check bool) "pmos sources current" true (e.Mosfet.id < -1e-4)

let finite_diff f x h = (f (x +. h) -. f (x -. h)) /. (2. *. h)

let prop_jacobian_matches_fd =
  QCheck.Test.make ~name:"MOSFET Jacobian matches finite differences" ~count:300
    QCheck.(triple (float_range 0. 1.8) (float_range 0. 1.8) (float_range 0. 1.8))
    (fun (vd, vg, vs) ->
      let p = tech.Tech.nmos and w_um = 12. in
      (* Stay away from the non-smooth vds = 0 crease where one-sided
         derivatives differ legitimately. *)
      QCheck.assume (Float.abs (vd -. vs) > 1e-3);
      let h = 1e-7 in
      let id_at ~vd ~vg ~vs = (Mosfet.eval_nmos p ~w_um ~vd ~vg ~vs).Mosfet.id in
      let e = Mosfet.eval_nmos p ~w_um ~vd ~vg ~vs in
      let close a b = Float.abs (a -. b) < 1e-4 *. (1. +. Float.abs a +. Float.abs b) in
      close e.Mosfet.g_dd (finite_diff (fun x -> id_at ~vd:x ~vg ~vs) vd h)
      && close e.Mosfet.g_dg (finite_diff (fun x -> id_at ~vd ~vg:x ~vs) vg h)
      && close e.Mosfet.g_ds (finite_diff (fun x -> id_at ~vd ~vg ~vs:x) vs h))

(* ------------------------------------------------------------ Inverter *)

let test_inverter_sizing () =
  let inv = Inverter.make tech ~size:75. in
  check_float ~eps:1e-9 "wn" 27. (Inverter.wn_um inv);
  check_float ~eps:1e-9 "wp" 54. (Inverter.wp_um inv);
  check_float ~eps:1e-20 "input cap" (81. *. 1.6e-15) (Inverter.input_cap inv);
  check_float ~eps:1e-20 "junction cap" (81. *. 1.0e-15) (Inverter.output_junction_cap inv)

let vtc vin =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let vdd_node = Netlist.node nl "vdd" and input = Netlist.node nl "in" in
  let output = Netlist.node nl "out" in
  Netlist.force_voltage nl vdd_node (fun _ -> vdd);
  Netlist.force_voltage nl input (fun _ -> vin);
  Inverter.add nl (Inverter.make tech ~size:10.) ~vdd_node ~input ~output;
  (Engine.dc_operating_point nl).(output)

let test_vtc_rails () =
  check_float ~eps:1e-3 "output high for low input" vdd (vtc 0.);
  check_float ~eps:1e-3 "output low for high input" 0. (vtc vdd)

let test_vtc_monotone () =
  let vs = List.init 19 (fun i -> float_of_int i *. 0.1) in
  let outs = List.map vtc vs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone falling" true (b <= a +. 1e-6);
        check rest
    | _ -> ()
  in
  check outs

let test_vtc_switching_region () =
  let mid = vtc (vdd /. 2.) in
  Alcotest.(check bool) "switching threshold near mid-rail" true (mid > 0.1 && mid < 1.7)

(* ----------------------------------------------------------- Testbench *)

let slew_for size cap =
  let r =
    Testbench.drive ~tech ~size ~input_slew:100e-12 ~t_stop:2e-9
      ~load:(Testbench.cap_load cap) ()
  in
  match Measure.slew_10_90 r.Testbench.output ~vdd ~edge:Measure.Rising with
  | Some s -> s
  | None -> Alcotest.fail "driver output never completed its transition"

let test_drive_rises_full_swing () =
  let r =
    Testbench.drive ~tech ~size:75. ~input_slew:100e-12 ~t_stop:2e-9
      ~load:(Testbench.cap_load 500e-15) ()
  in
  check_float ~eps:0.01 "reaches vdd" vdd (Waveform.v_final r.Testbench.output);
  check_float ~eps:1e-6 "starts at 0" 0.
    (Waveform.value_at r.Testbench.output 1e-12);
  Alcotest.(check bool) "input starts at vdd" true
    (Waveform.value_at r.Testbench.input 1e-12 > vdd -. 1e-6)

let test_fall_edge () =
  let r =
    Testbench.drive ~tech ~size:75. ~input_slew:100e-12 ~t_stop:2e-9 ~edge:Testbench.Fall
      ~load:(Testbench.cap_load 500e-15) ()
  in
  check_float ~eps:0.01 "falls to 0" 0. (Waveform.v_final r.Testbench.output);
  Alcotest.(check bool) "starts high" true (Waveform.value_at r.Testbench.output 1e-12 > vdd -. 0.01)

let test_bigger_driver_is_faster () =
  let s25 = slew_for 25. 500e-15 and s100 = slew_for 100. 500e-15 in
  Alcotest.(check bool)
    (Printf.sprintf "slew(25X)=%.1f ps > slew(100X)=%.1f ps" (s25 /. 1e-12) (s100 /. 1e-12))
    true (s25 > 2. *. s100)

let test_heavier_load_is_slower () =
  let light = slew_for 75. 100e-15 and heavy = slew_for 75. 1e-12 in
  Alcotest.(check bool)
    (Printf.sprintf "slew(100fF)=%.1f ps < slew(1pF)=%.1f ps" (light /. 1e-12) (heavy /. 1e-12))
    true (heavy > 2. *. light)

let test_75x_drives_pf_in_hundreds_of_ps () =
  (* Regime check backing the Rs ~ Z0 calibration claim in Tech. *)
  let s = slew_for 75. 1e-12 in
  Alcotest.(check bool)
    (Printf.sprintf "75X 10-90 slew into 1 pF = %.0f ps" (s /. 1e-12))
    true
    (s > 30e-12 && s < 400e-12)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_devices"
    [
      ( "mosfet",
        [
          Alcotest.test_case "off below threshold" `Quick test_off_below_threshold;
          Alcotest.test_case "continuity at vdsat" `Quick test_continuity_at_vdsat;
          Alcotest.test_case "continuity at vth" `Quick test_continuity_at_threshold;
          Alcotest.test_case "saturation scaling" `Quick test_saturation_scaling;
          Alcotest.test_case "source/drain symmetry" `Quick test_source_drain_symmetry;
          Alcotest.test_case "pmos mirror" `Quick test_pmos_mirror;
          q prop_jacobian_matches_fd;
        ] );
      ( "inverter",
        [
          Alcotest.test_case "sizing" `Quick test_inverter_sizing;
          Alcotest.test_case "VTC rails" `Quick test_vtc_rails;
          Alcotest.test_case "VTC monotone" `Quick test_vtc_monotone;
          Alcotest.test_case "VTC switching region" `Quick test_vtc_switching_region;
        ] );
      ( "testbench",
        [
          Alcotest.test_case "full swing rise" `Quick test_drive_rises_full_swing;
          Alcotest.test_case "fall edge" `Quick test_fall_edge;
          Alcotest.test_case "size speeds up" `Quick test_bigger_driver_is_faster;
          Alcotest.test_case "load slows down" `Quick test_heavier_load_is_slower;
          Alcotest.test_case "75X regime" `Quick test_75x_drives_pf_in_hundreds_of_ps;
        ] );
    ]
