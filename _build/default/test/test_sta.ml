(* STA-layer tests: arrival accumulation, slew propagation, edge
   alternation, and agreement of the table-driven stage timing with the
   transistor-level reference. *)
open Rlc_sta
open Rlc_ceff

let tech = Rlc_devices.Tech.c018

let line len_mm width_um =
  Rlc_parasitics.Extract.line_of (Rlc_parasitics.Extract.geometry ~length_mm:len_mm ~width_um)

let two_stage =
  lazy
    (Sta.analyze ~dt:0.5e-12 ~input_slew:(Rlc_num.Units.ps 80.) ~sink_cl:20e-15
       [ { Sta.size = 75.; line = line 5. 1.6 }; { Sta.size = 100.; line = line 4. 1.2 } ])

let test_arrival_accumulates () =
  let p = Lazy.force two_stage in
  Alcotest.(check int) "two stages" 2 (List.length p.Sta.stages);
  let s0 = List.nth p.Sta.stages 0 and s1 = List.nth p.Sta.stages 1 in
  Alcotest.(check (float 1e-15)) "arrival 0" s0.Sta.stage_delay s0.Sta.arrival;
  Alcotest.(check (float 1e-15)) "arrival 1 = sum"
    (s0.Sta.stage_delay +. s1.Sta.stage_delay)
    s1.Sta.arrival;
  Alcotest.(check (float 1e-15)) "total = last arrival" s1.Sta.arrival p.Sta.total_delay;
  Alcotest.(check bool) "stage delays positive" true
    (s0.Sta.stage_delay > 0. && s1.Sta.stage_delay > 0.)

let test_edges_alternate () =
  let p = Lazy.force two_stage in
  match List.map (fun s -> s.Sta.edge) p.Sta.stages with
  | [ Rlc_waveform.Measure.Rising; Rlc_waveform.Measure.Falling ] -> ()
  | _ -> Alcotest.fail "expected rise then fall"

let test_slew_propagates () =
  let p = Lazy.force two_stage in
  let s1 = List.nth p.Sta.stages 1 in
  let s0 = List.nth p.Sta.stages 0 in
  (* Stage 1's input slew is stage 0's far-end slew extrapolated to full
     swing (clamped). *)
  Alcotest.(check (float 1e-15)) "slew hand-off" (s0.Sta.far_slew /. 0.8) s1.Sta.input_slew

let test_stage_matches_reference () =
  (* Single-stage path against a transistor-level run with the same load. *)
  let cl = 25e-15 in
  let p =
    Sta.analyze ~dt:0.5e-12 ~input_slew:(Rlc_num.Units.ps 100.) ~sink_cl:cl
      [ { Sta.size = 75.; line = line 5. 1.6 } ]
  in
  let r =
    Reference.simulate ~dt:0.5e-12 ~tech ~size:75. ~input_slew:(Rlc_num.Units.ps 100.)
      ~line:(line 5. 1.6) ~cl ()
  in
  let sta_delay = p.Sta.total_delay and ref_delay = Reference.far_delay r in
  let err = Float.abs ((sta_delay -. ref_delay) /. ref_delay) *. 100. in
  Alcotest.(check bool)
    (Printf.sprintf "STA %.1f ps vs reference %.1f ps (%.1f%%)"
       (Rlc_num.Units.in_ps sta_delay) (Rlc_num.Units.in_ps ref_delay) err)
    true (err < 12.)

let test_longer_path_is_slower () =
  let base =
    Sta.analyze ~input_slew:(Rlc_num.Units.ps 80.) ~sink_cl:20e-15
      [ { Sta.size = 75.; line = line 3. 1.6 } ]
  in
  let extended =
    Sta.analyze ~input_slew:(Rlc_num.Units.ps 80.) ~sink_cl:20e-15
      [ { Sta.size = 75.; line = line 3. 1.6 }; { Sta.size = 75.; line = line 3. 1.6 } ]
  in
  Alcotest.(check bool) "two stages slower than one" true
    (extended.Sta.total_delay > base.Sta.total_delay)

let test_empty_path_rejected () =
  Alcotest.(check bool) "empty path" true
    (match Sta.analyze ~input_slew:50e-12 ~sink_cl:10e-15 [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_estimate_vs_replay () =
  (* The heuristic should land within ~25% of the replayed stage delay for a
     screened-inductive stage. *)
  let p = Lazy.force two_stage in
  let s0 = List.nth p.Sta.stages 0 in
  let est =
    Sta.estimate_far_delay s0.Sta.model ~line:(line 5. 1.6)
      ~cl:(Rlc_devices.Inverter.input_cap (Rlc_devices.Inverter.make tech ~size:100.))
  in
  let err = Float.abs ((est -. s0.Sta.stage_delay) /. s0.Sta.stage_delay) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f ps vs replay %.1f ps" (Rlc_num.Units.in_ps est)
       (Rlc_num.Units.in_ps s0.Sta.stage_delay))
    true (err < 0.25)

let () =
  Alcotest.run "rlc_sta"
    [
      ( "path",
        [
          Alcotest.test_case "arrivals accumulate" `Slow test_arrival_accumulates;
          Alcotest.test_case "edges alternate" `Slow test_edges_alternate;
          Alcotest.test_case "slew propagates" `Slow test_slew_propagates;
          Alcotest.test_case "matches reference" `Slow test_stage_matches_reference;
          Alcotest.test_case "longer is slower" `Slow test_longer_path_is_slower;
          Alcotest.test_case "empty rejected" `Quick test_empty_path_rejected;
          Alcotest.test_case "estimate vs replay" `Slow test_estimate_vs_replay;
        ] );
    ]
