(* Moment computation and Pade fitting tests.  Closed-form lumped loads pin
   the recurrence; the distributed ABCD series and the discretized chain
   cross-check each other; Pade round-trips confirm Eq. 3 fitting. *)
open Rlc_moments
open Rlc_tline
open Rlc_num

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_rel msg expected actual =
  let tol = 1e-6 *. (Float.abs expected +. 1e-300) in
  Alcotest.(check (float tol)) msg expected actual

let line5 = Line.of_totals ~r:72.44 ~l:5.14e-9 ~c:1.10e-12 ~length:5e-3

(* ---------------------------------------------------------------- Tree *)

let test_tree_shape () =
  let t =
    Tree.make ~cap:1e-15
      ~children:
        [
          (10., 1e-12, Tree.leaf 2e-15);
          (20., 0., Tree.make ~cap:3e-15 ~children:[ (5., 1e-12, Tree.leaf 4e-15) ] ());
        ]
      ()
  in
  Alcotest.(check int) "node count" 4 (Tree.node_count t);
  Alcotest.(check int) "depth" 3 (Tree.depth t);
  check_float ~eps:1e-24 "total cap" 10e-15 (Tree.total_cap t)

let test_tree_validation () =
  Alcotest.(check bool) "zero branch R rejected" true
    (match Tree.make ~cap:0. ~children:[ (0., 1e-12, Tree.leaf 1e-15) ] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_of_line_totals () =
  let t = Tree.of_line ~n_segments:25 line5 ~cl:30e-15 in
  Alcotest.(check int) "nodes = segments + root" 26 (Tree.node_count t);
  check_float ~eps:1e-20 "total cap includes CL" (1.10e-12 +. 30e-15) (Tree.total_cap t)

(* ----------------------------------------------- lumped closed forms *)

let test_single_rc_moments () =
  (* Y = sC / (1 + sRC): m_k = C * (-RC)^(k-1). *)
  let r = 100. and c = 1e-12 in
  let t = Tree.make ~cap:0. ~children:[ (r, 0., Tree.leaf c) ] () in
  let m = Moments.driving_point ~order:5 t in
  check_float "m0" 0. m.(0);
  for k = 1 to 5 do
    let expected = c *. ((-.r *. c) ** float_of_int (k - 1)) in
    check_rel (Printf.sprintf "m%d" k) expected m.(k)
  done

let test_series_rlc_moments () =
  (* Y = sC / (1 + sRC + s^2 LC); expansion of the geometric series gives
     m1 = C, m2 = -RC^2, m3 = R^2C^3 - LC^2, m4 = -R^3C^4 + 2RLC^3,
     m5 = R^4C^5 - 3R^2LC^4 + L^2C^3. *)
  let r = 70. and l = 5e-9 and c = 1e-12 in
  let t = Tree.make ~cap:0. ~children:[ (r, l, Tree.leaf c) ] () in
  let m = Moments.driving_point ~order:5 t in
  check_rel "m1" c m.(1);
  check_rel "m2" (-.r *. c *. c) m.(2);
  check_rel "m3" ((r *. r *. c *. c *. c) -. (l *. c *. c)) m.(3);
  check_rel "m4" ((-.r *. r *. r *. c ** 4.) +. (2. *. r *. l *. (c ** 3.))) m.(4);
  check_rel "m5"
    (((r ** 4.) *. (c ** 5.)) -. (3. *. r *. r *. l *. (c ** 4.)) +. (l *. l *. (c ** 3.)))
    m.(5)

let test_two_stage_rc_ladder () =
  (* R1-C1-R2-C2 ladder: m1 = C1 + C2, m2 = -(R1 (C1+C2)^2 + R2 C2^2). *)
  let r1 = 50. and c1 = 0.4e-12 and r2 = 80. and c2 = 0.6e-12 in
  let t =
    Tree.make ~cap:0.
      ~children:[ (r1, 0., Tree.make ~cap:c1 ~children:[ (r2, 0., Tree.leaf c2) ] ()) ]
      ()
  in
  let m = Moments.driving_point ~order:2 t in
  check_rel "m1" (c1 +. c2) m.(1);
  check_rel "m2" (-.((r1 *. ((c1 +. c2) ** 2.)) +. (r2 *. c2 *. c2))) m.(2)

let test_branched_tree_m1_m2 () =
  (* Root -> R -> node with two capacitive branches; m2 sums per-cap
     upstream resistances: m2 = -(R (Ca+Cb)^2 + Ra Ca^2 + Rb Cb^2). *)
  let r = 30. and ra = 40. and ca = 0.3e-12 and rb = 60. and cb = 0.5e-12 in
  let t =
    Tree.make ~cap:0.
      ~children:
        [ (r, 0., Tree.make ~cap:0. ~children:[ (ra, 0., Tree.leaf ca); (rb, 0., Tree.leaf cb) ] ()) ]
      ()
  in
  let m = Moments.driving_point ~order:2 t in
  check_rel "m1" (ca +. cb) m.(1);
  check_rel "m2" (-.((r *. ((ca +. cb) ** 2.)) +. (ra *. ca *. ca) +. (rb *. cb *. cb))) m.(2)

(* ------------------------------------- distributed vs discretized *)

let test_chain_converges_to_distributed () =
  let cl = 20e-15 in
  let exact = Moments.of_line ~order:5 line5 ~cl in
  let approx = Moments.of_line_discretized ~order:5 ~n_segments:400 line5 ~cl in
  for k = 1 to 5 do
    let rel = Float.abs ((approx.(k) -. exact.(k)) /. exact.(k)) in
    Alcotest.(check bool)
      (Printf.sprintf "m%d discretization error %.2e" k rel)
      true (rel < 0.02)
  done

let test_chain_convergence_order () =
  (* Halving the segment size must shrink the m2 error. *)
  let cl = 0. in
  let exact = Moments.of_line ~order:2 line5 ~cl in
  let err n =
    let m = Moments.of_line_discretized ~order:2 ~n_segments:n line5 ~cl in
    Float.abs ((m.(2) -. exact.(2)) /. exact.(2))
  in
  Alcotest.(check bool) "error decreases with refinement" true (err 200 < err 50 /. 2.)

(* ---------------------------------------------------------------- Pade *)

let test_pade_roundtrip_synthetic () =
  (* Start from known coefficients, expand to moments, fit back. *)
  let t0 = { Pade.a1 = 1e-12; a2 = -5e-23; a3 = 2e-33; b1 = 4e-11; b2 = 3e-22 } in
  let m = Pade.moments t0 ~order:5 in
  let t1 = Pade.fit m in
  check_rel "a1" t0.Pade.a1 t1.Pade.a1;
  check_rel "a2" t0.Pade.a2 t1.Pade.a2;
  check_rel "a3" t0.Pade.a3 t1.Pade.a3;
  check_rel "b1" t0.Pade.b1 t1.Pade.b1;
  check_rel "b2" t0.Pade.b2 t1.Pade.b2

let test_pade_moments_match_input () =
  let cl = 10e-15 in
  let m = Moments.of_line ~order:5 line5 ~cl in
  let p = Pade.fit m in
  let m' = Pade.moments p ~order:5 in
  for k = 0 to 5 do
    check_rel (Printf.sprintf "moment %d preserved" k) m.(k) m'.(k)
  done

let test_pade_pure_cap () =
  let p = Pade.fit [| 0.; 1e-12; 0.; 0.; 0.; 0. |] in
  check_float ~eps:1e-24 "a1" 1e-12 p.Pade.a1;
  check_float "b2 degenerate" 0. p.Pade.b2;
  Alcotest.(check bool) "no quadratic poles" true (Pade.poles p = None);
  Alcotest.(check bool) "stable" true (Pade.is_stable p)

let test_pade_single_pole_rc () =
  (* Lumped RC has a rank-1 moment matrix: fit must degrade to 2/1 and
     reproduce the exact single pole at -1/RC. *)
  let r = 100. and c = 1e-12 in
  let t = Tree.make ~cap:0. ~children:[ (r, 0., Tree.leaf c) ] () in
  let p = Pade.of_tree t in
  check_float "b2 = 0" 0. p.Pade.b2;
  check_rel "b1 = RC" (r *. c) p.Pade.b1;
  check_rel "a1 = C" c p.Pade.a1;
  Alcotest.(check bool) "stable" true (Pade.is_stable p)

let test_pade_line_poles_stable () =
  let p = Pade.of_load line5 ~cl:20e-15 in
  Alcotest.(check bool) "stable fit for the paper's 5 mm line" true (Pade.is_stable p);
  check_rel "a1 is total cap" (1.10e-12 +. 20e-15) (Pade.total_cap p)

let test_pade_eval_matches_exact_low_freq () =
  let cl = 15e-15 in
  let p = Pade.of_load line5 ~cl in
  List.iter
    (fun f ->
      let s = Cx.make 0. (2. *. Float.pi *. f) in
      let fit = Pade.eval p s and exact = Abcd.input_admittance line5 ~cl s in
      let rel = Cx.norm Cx.(fit -: exact) /. Cx.norm exact in
      Alcotest.(check bool) (Printf.sprintf "at %.0e Hz err %.2e" f rel) true (rel < 0.02))
    [ 1e8; 5e8; 1e9 ]

let prop_random_rc_trees_m1_m2_signs =
  (* For any RC tree: m1 = total cap > 0 and m2 < 0. *)
  let gen =
    QCheck.Gen.(
      sized_size (int_range 1 8) (fun n ->
          fix
            (fun self n ->
              if n = 0 then map (fun c -> Tree.leaf (1e-15 +. (1e-13 *. c))) (float_range 0. 1.)
              else
                map3
                  (fun c r child -> Tree.make ~cap:(1e-15 *. c) ~children:[ (10. +. (100. *. r), 0., child) ] ())
                  (float_range 0. 1.) (float_range 0. 1.) (self (n - 1)))
            n))
  in
  QCheck.Test.make ~name:"random RC chains: m1 > 0, m2 < 0" ~count:200
    (QCheck.make gen)
    (fun t ->
      let m = Moments.driving_point ~order:2 t in
      m.(1) > 0. && m.(2) < 0. && Float.abs (m.(1) -. Tree.total_cap t) < 1e-9 *. m.(1))

let prop_pade_fit_preserves_first_five_moments =
  QCheck.Test.make ~name:"fit-then-expand preserves moments for random lines" ~count:100
    QCheck.(
      triple (float_range 20. 150.) (float_range 1e-9 8e-9) (float_range 0.3e-12 2e-12))
    (fun (r, l, c) ->
      let line = Line.of_totals ~r ~l ~c ~length:5e-3 in
      let m = Moments.of_line ~order:5 line ~cl:10e-15 in
      let p = Pade.fit m in
      let m' = Pade.moments p ~order:5 in
      let ok = ref true in
      for k = 1 to 5 do
        if Float.abs ((m'.(k) -. m.(k)) /. m.(k)) > 1e-6 then ok := false
      done;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_moments"
    [
      ( "tree",
        [
          Alcotest.test_case "shape accessors" `Quick test_tree_shape;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "of_line totals" `Quick test_of_line_totals;
        ] );
      ( "lumped",
        [
          Alcotest.test_case "single RC closed form" `Quick test_single_rc_moments;
          Alcotest.test_case "series RLC closed form" `Quick test_series_rlc_moments;
          Alcotest.test_case "two-stage RC ladder" `Quick test_two_stage_rc_ladder;
          Alcotest.test_case "branched tree" `Quick test_branched_tree_m1_m2;
          q prop_random_rc_trees_m1_m2_signs;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "chain converges to ABCD" `Quick test_chain_converges_to_distributed;
          Alcotest.test_case "convergence order" `Quick test_chain_convergence_order;
        ] );
      ( "pade",
        [
          Alcotest.test_case "synthetic roundtrip" `Quick test_pade_roundtrip_synthetic;
          Alcotest.test_case "moments preserved" `Quick test_pade_moments_match_input;
          Alcotest.test_case "pure capacitance" `Quick test_pade_pure_cap;
          Alcotest.test_case "lumped RC degenerates" `Quick test_pade_single_pole_rc;
          Alcotest.test_case "line poles stable" `Quick test_pade_line_poles_stable;
          Alcotest.test_case "eval vs exact" `Quick test_pade_eval_matches_exact_low_freq;
          q prop_pade_fit_preserves_first_five_moments;
        ] );
    ]
