(* Transmission-line layer tests: line constants, exact ABCD series,
   lattice-diagram oracle, and the crucial cross-check that the lumped
   ladder + transient engine reproduce ideal transmission-line behaviour. *)
open Rlc_tline
open Rlc_num
open Rlc_waveform
open Rlc_circuit

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* The paper's Figure 1 line: 5 mm x 1.6 um. *)
let line5 = Line.of_totals ~r:72.44 ~l:5.14e-9 ~c:1.10e-12 ~length:5e-3

(* ---------------------------------------------------------------- Line *)

let test_line_basics () =
  check_float ~eps:0.1 "Z0" 68.36 (Line.z0 line5);
  check_float ~eps:0.2e-12 "tf" 75.2e-12 (Line.time_of_flight line5);
  check_float ~eps:1e-12 "total R" 72.44 (Line.total_r line5);
  check_float ~eps:1e-20 "total C" 1.10e-12 (Line.total_c line5);
  Alcotest.(check bool) "underdamped global wire" true (Line.damping_ratio line5 < 1.);
  Alcotest.(check bool) "attenuation in (0,1)" true
    (Line.attenuation line5 > 0. && Line.attenuation line5 < 1.)

let test_line_validation () =
  Alcotest.(check bool) "negative R rejected" true
    (match Line.create ~r_per_m:(-1.) ~l_per_m:1e-6 ~c_per_m:1e-10 ~length:1e-3 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_scale_length () =
  let half = Line.scale_length line5 2.5e-3 in
  check_float ~eps:1e-9 "half R" (72.44 /. 2.) (Line.total_r half);
  check_float ~eps:1e-9 "Z0 unchanged" (Line.z0 line5) (Line.z0 half)

(* ---------------------------------------------------------------- ABCD *)

let test_moments_m0_m1 () =
  let cl = 20e-15 in
  let m = Abcd.input_admittance_moments line5 ~cl ~order:5 in
  check_float ~eps:1e-18 "m0 = 0" 0. m.(0);
  check_float ~eps:1e-18 "m1 = Ctot + CL" (1.10e-12 +. cl) m.(1);
  Alcotest.(check bool) "m2 < 0 (resistive shielding)" true (m.(2) < 0.);
  (* m2 for a distributed RC line with load: -(R C^2 / 3 + R C CL + R CL^2).
     Inductance does not enter m2. *)
  let r = 72.44 and c = 1.10e-12 in
  let m2_expected = -.((r *. c *. c /. 3.) +. (r *. c *. cl) +. (r *. cl *. cl)) in
  check_float ~eps:(1e-3 *. Float.abs m2_expected) "m2 closed form" m2_expected m.(2)

let test_moments_match_exact_admittance () =
  (* The truncated series must agree with the exact complex admittance at a
     frequency well below the line resonance. *)
  let cl = 10e-15 in
  let m = Abcd.input_admittance_moments line5 ~cl ~order:5 in
  let f = 2e8 (* 200 MHz *) in
  let s = Cx.make 0. (2. *. Float.pi *. f) in
  let series =
    let open Cx in
    let acc = ref zero and p = ref one in
    for k = 0 to 5 do
      acc := !acc +: scale m.(k) !p;
      p := !p *: s
    done;
    !acc
  in
  let exact = Abcd.input_admittance line5 ~cl s in
  let err = Cx.norm Cx.(series -: exact) /. Cx.norm exact in
  Alcotest.(check bool) (Printf.sprintf "series error %.2e" err) true (err < 1e-4)

let test_transfer_dc () =
  let t0 = Abcd.transfer line5 ~cl:10e-15 (Cx.make 1e3 0.) in
  Alcotest.(check bool) "transfer ~1 at low frequency" true (Float.abs (t0.Cx.re -. 1.) < 1e-3)

let test_admittance_low_freq_slope () =
  let cl = 0. in
  let w = 2. *. Float.pi *. 1e7 in
  let y = Abcd.input_admittance line5 ~cl (Cx.make 0. w) in
  check_float ~eps:(1e-3 *. w *. 1.1e-12) "Im Y ~ w C" (w *. 1.10e-12) y.Cx.im

(* ------------------------------------------------------------ Transfer *)

let test_transfer_h0 () =
  let h = Transfer.moments line5 ~cl:20e-15 ~order:3 in
  check_float ~eps:1e-12 "h0 = 1" 1. h.(0);
  Alcotest.(check bool) "h1 negative (causal delay)" true (h.(1) < 0.)

let test_elmore_closed_form () =
  (* Distributed uniform line + CL: Elmore far-end delay = R (C/2 + CL). *)
  let cl = 20e-15 in
  let r = Line.total_r line5 and c = Line.total_c line5 in
  check_float
    ~eps:(1e-9 *. r *. c)
    "Elmore closed form"
    (r *. ((c /. 2.) +. cl))
    (Transfer.elmore_delay line5 ~cl)

let test_delay_estimate_vs_simulation () =
  (* Ideal-ramp drive through the ladder: the two-moment estimate must land
     within ~20% of the simulated near-to-far 50% propagation. *)
  List.iter
    (fun (label, line) ->
      let cl = 20e-15 in
      let nl = Netlist.create () in
      let near = Netlist.node nl "near" in
      Netlist.force_voltage nl near (fun t ->
          if t <= 0. then 0. else Float.min 1. (t /. 100e-12));
      let far = ref Netlist.ground in
      Ladder.attach_load ~n_segments:100 line ~cl nl near far;
      let r = Engine.transient ~dt:0.5e-12 ~t_stop:2e-9 nl in
      let t50_near = 50e-12 in
      let t50_far =
        Option.get
          (Waveform.first_crossing (Engine.voltage r !far) ~level:0.5
             ~direction:Waveform.Rising)
      in
      let simulated = t50_far -. t50_near in
      let estimate = Transfer.delay_50_estimate line ~cl in
      Alcotest.(check bool)
        (Printf.sprintf "%s: estimate %.1f ps vs simulated %.1f ps" label
           (estimate /. 1e-12) (simulated /. 1e-12))
        true
        (Float.abs (estimate -. simulated) < 0.25 *. simulated))
    [
      ("inductive 5mm", line5);
      ("resistive", Line.of_totals ~r:400. ~l:2e-9 ~c:1.5e-12 ~length:5e-3);
    ]

let test_delay_estimate_bounded_by_tf () =
  (* On a lossless line the estimate must not undershoot the flight time. *)
  let line = Line.of_totals ~r:0.5 ~l:5e-9 ~c:1e-12 ~length:5e-3 in
  Alcotest.(check bool) "tf lower bound" true
    (Transfer.delay_50_estimate line ~cl:1e-15 >= Line.time_of_flight line -. 1e-15)

(* ------------------------------------------------------------- Lattice *)

let test_lattice_matched_source () =
  let z0 = Line.z0 line5 and tf = Line.time_of_flight line5 in
  let lat = Lattice.create ~vs:1.8 ~rs:z0 ~z0 ~tf () in
  check_float ~eps:1e-9 "initial step is half swing" 0.9 (Lattice.initial_step lat);
  check_float ~eps:1e-9 "source reflection zero" 0. (Lattice.gamma_source lat);
  check_float ~eps:1e-9 "plateau before round trip" 0.9
    (Lattice.near_end_voltage lat (1.9 *. tf));
  check_float ~eps:1e-9 "full swing after round trip" 1.8
    (Lattice.near_end_voltage lat (2.1 *. tf));
  check_float ~eps:1e-9 "far end silent before tf" 0. (Lattice.far_end_voltage lat (0.9 *. tf));
  check_float ~eps:1e-9 "far end doubles at tf" 1.8 (Lattice.far_end_voltage lat (1.1 *. tf))

let test_lattice_weak_source () =
  (* Rs = 3 Z0: f = 0.25, multiple reflections needed. *)
  let lat = Lattice.create ~vs:1. ~rs:300. ~z0:100. ~tf:10e-12 () in
  check_float ~eps:1e-9 "initial step f=0.25" 0.25 (Lattice.initial_step lat);
  let gs = Lattice.gamma_source lat in
  check_float ~eps:1e-9 "gamma_s = 0.5" 0.5 gs;
  (* Level after first reflection: v0 (1 + (1 + gs)) = 0.25 * 2.5. *)
  check_float ~eps:1e-9 "second level" 0.625 (Lattice.near_end_voltage lat 25e-12);
  (* Converges towards the supply. *)
  check_float ~eps:1e-3 "late time converges" 1. (Lattice.near_end_voltage lat 2e-9)

let test_lattice_steps_list () =
  let lat = Lattice.create ~vs:1. ~rs:100. ~z0:100. ~tf:5e-12 () in
  match Lattice.near_end_steps lat ~n:2 with
  | [ (t0, v0); (t1, v1) ] ->
      check_float "t0" 0. t0;
      check_float "v0 matched" 0.5 v0;
      check_float ~eps:1e-13 "t1 round trip" 10e-12 t1;
      check_float "v1" 1. v1
  | _ -> Alcotest.fail "expected two steps"

(* -------------------------------------------------- ladder vs lattice *)

(* Drive a low-loss ladder through a source resistor with an ideal step and
   compare the near-end plateau levels with the bounce diagram. *)
let test_ladder_reproduces_reflections () =
  let line = Line.of_totals ~r:2. ~l:5e-9 ~c:1e-12 ~length:5e-3 in
  let z0 = Line.z0 line and tf = Line.time_of_flight line in
  let rs = 2. *. z0 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (fun t -> if t <= 0. then 0. else 1.);
  let drive = Netlist.node nl "drive" in
  Netlist.resistor nl src drive rs;
  let built = Ladder.build ~n_segments:120 nl line ~near:drive in
  Netlist.capacitor nl built.Ladder.far Netlist.ground 1e-15;
  let r = Engine.transient ~dt:0.2e-12 ~t_stop:(8. *. tf) nl in
  let near = Engine.voltage r drive in
  let lat = Lattice.create ~vs:1. ~rs ~z0 ~tf () in
  (* Mid-plateau samples avoid the lumped ladder's finite edge rates. *)
  List.iter
    (fun k ->
      let t = ((2. *. float_of_int k) +. 1.2) *. tf in
      let ideal = Lattice.near_end_voltage lat t in
      let sim = Waveform.value_at near t in
      Alcotest.(check bool)
        (Printf.sprintf "plateau %d: sim %.3f vs ideal %.3f" k sim ideal)
        true
        (Float.abs (sim -. ideal) < 0.05))
    [ 0; 1; 2 ]

let test_ladder_node_ordering_is_banded () =
  (* The ladder allocates nodes in line order; transient on 400 unknowns
     must remain fast (sanity: it completes) and reach DC steady state. *)
  let line = Line.of_totals ~r:50. ~l:5e-9 ~c:1e-12 ~length:5e-3 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  Netlist.force_voltage nl src (fun t -> if t <= 0. then 0. else 1.);
  let drive = Netlist.node nl "drive" in
  Netlist.resistor nl src drive 50. ;
  let built = Ladder.build ~n_segments:200 nl line ~near:drive in
  let r = Engine.transient ~dt:0.5e-12 ~t_stop:2e-9 nl in
  check_float ~eps:0.02 "far end settles to source" 1.
    (Engine.voltage_at r built.Ladder.far 1.9e-9)

let test_default_segments () =
  Alcotest.(check int) "5 mm -> 100 segments" 100 (Ladder.default_segments line5);
  let short = Line.of_totals ~r:10. ~l:1e-9 ~c:0.2e-12 ~length:1e-3 in
  Alcotest.(check int) "short lines floor at 40" 40 (Ladder.default_segments short)

let prop_lattice_levels_bounded =
  (* Near-end levels never leave (0, 2 vs); when the source is weaker than
     the line (rs >= z0) there is no ringing, so levels additionally climb
     monotonically towards vs. *)
  QCheck.Test.make ~name:"near-end lattice levels respect physical bounds" ~count:200
    QCheck.(pair (float_range 1. 500.) (float_range 10. 200.))
    (fun (rs, z0) ->
      let lat = Lattice.create ~vs:1. ~rs ~z0 ~tf:10e-12 () in
      let steps = Lattice.near_end_steps lat ~n:30 in
      let bounded = List.for_all (fun (_, v) -> v > 0. && v < 2.) steps in
      let monotone_if_weak =
        rs < z0
        || fst
             (List.fold_left
                (fun (ok, prev) (_, v) -> (ok && v >= prev -. 1e-9 && v <= 1. +. 1e-9, v))
                (true, 0.) steps)
      in
      bounded && monotone_if_weak)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rlc_tline"
    [
      ( "line",
        [
          Alcotest.test_case "paper line constants" `Quick test_line_basics;
          Alcotest.test_case "validation" `Quick test_line_validation;
          Alcotest.test_case "scale length" `Quick test_scale_length;
        ] );
      ( "abcd",
        [
          Alcotest.test_case "m0, m1, m2" `Quick test_moments_m0_m1;
          Alcotest.test_case "series vs exact" `Quick test_moments_match_exact_admittance;
          Alcotest.test_case "transfer at DC" `Quick test_transfer_dc;
          Alcotest.test_case "low-frequency slope" `Quick test_admittance_low_freq_slope;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "h0/h1" `Quick test_transfer_h0;
          Alcotest.test_case "Elmore closed form" `Quick test_elmore_closed_form;
          Alcotest.test_case "estimate vs simulation" `Quick test_delay_estimate_vs_simulation;
          Alcotest.test_case "tf lower bound" `Quick test_delay_estimate_bounded_by_tf;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "matched source" `Quick test_lattice_matched_source;
          Alcotest.test_case "weak source" `Quick test_lattice_weak_source;
          Alcotest.test_case "steps list" `Quick test_lattice_steps_list;
          q prop_lattice_levels_bounded;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "reproduces reflections" `Quick test_ladder_reproduces_reflections;
          Alcotest.test_case "long ladder transient" `Quick test_ladder_node_ordering_is_banded;
          Alcotest.test_case "default segments" `Quick test_default_segments;
        ] );
    ]
