(* Tests for sampled waveforms, PWL sources and measurement conventions. *)
open Rlc_waveform
open Rlc_num

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let vdd = 1.8

(* ------------------------------------------------------------ Waveform *)

let linear_rise ~t0 ~tr =
  Waveform.of_fun ~t0:0. ~t1:(t0 +. (2. *. tr)) ~n:501 (fun t ->
      if t < t0 then 0. else if t > t0 +. tr then vdd else vdd *. (t -. t0) /. tr)

let test_create_validation () =
  Alcotest.(check bool) "length mismatch" true
    (match Waveform.create ~ts:[| 0.; 1. |] ~vs:[| 0. |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "decreasing times" true
    (match Waveform.create ~ts:[| 1.; 0. |] ~vs:[| 0.; 0. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_value_at () =
  let w = Waveform.create ~ts:[| 0.; 1.; 2. |] ~vs:[| 0.; 2.; 0. |] in
  check_float "interp" 1. (Waveform.value_at w 0.5);
  check_float "clamp low" 0. (Waveform.value_at w (-1.));
  check_float "clamp high" 0. (Waveform.value_at w 3.);
  check_float "peak" 2. (Waveform.v_max w);
  check_float "min" 0. (Waveform.v_min w)

let test_crossings () =
  let w = Waveform.create ~ts:[| 0.; 1.; 2.; 3. |] ~vs:[| 0.; 2.; 0.; 2. |] in
  (match Waveform.crossings w ~level:1. ~direction:Waveform.Rising with
  | [ a; b ] ->
      check_float "first rising" 0.5 a;
      check_float "second rising" 2.5 b
  | l -> Alcotest.fail (Printf.sprintf "expected 2 rising crossings, got %d" (List.length l)));
  (match Waveform.crossings w ~level:1. ~direction:Waveform.Falling with
  | [ a ] -> check_float "falling" 1.5 a
  | l -> Alcotest.fail (Printf.sprintf "expected 1 falling crossing, got %d" (List.length l)))

let test_clip_and_resample () =
  let w = Waveform.of_fun ~t0:0. ~t1:10. ~n:101 (fun t -> t) in
  let c = Waveform.clip w ~t_lo:2.5 ~t_hi:7.5 in
  check_float "clip start" 2.5 (Waveform.t_start c);
  check_float "clip end" 7.5 (Waveform.t_end c);
  check_float "clip boundary value" 2.5 (Waveform.value_at c 2.5);
  let r = Waveform.resample w ~n:11 in
  Alcotest.(check int) "resample count" 11 (Waveform.length r);
  check_float "resample value" 5. (Waveform.value_at r 5.)

let test_overshoot_monotone () =
  let w = Waveform.create ~ts:[| 0.; 1.; 2. |] ~vs:[| 0.; 2.2; 1.8 |] in
  check_float "overshoot" 0.4 (Waveform.overshoot w ~final:1.8);
  Alcotest.(check bool) "not monotone" false (Waveform.is_monotone_rising w);
  let m = Waveform.create ~ts:[| 0.; 1.; 2. |] ~vs:[| 0.; 1.; 1.8 |] in
  Alcotest.(check bool) "monotone" true (Waveform.is_monotone_rising m)

let test_charge_integral () =
  let w = Waveform.create ~ts:[| 0.; 2. |] ~vs:[| 0.; 4. |] in
  check_float "triangle" 4. (Waveform.charge_integral w)

let test_diff_metrics () =
  let a = Waveform.of_fun ~t0:0. ~t1:1. ~n:101 (fun t -> t) in
  let b = Waveform.of_fun ~t0:0. ~t1:1. ~n:101 (fun t -> t +. 0.1) in
  check_float ~eps:1e-12 "constant offset rms" 0.1 (Waveform.rms_diff a b ~t0:0. ~t1:1.);
  check_float ~eps:1e-12 "constant offset max" 0.1 (Waveform.max_diff a b ~t0:0. ~t1:1.);
  check_float ~eps:1e-12 "self diff" 0. (Waveform.rms_diff a a ~t0:0. ~t1:1.);
  Alcotest.(check bool) "empty window rejected" true
    (match Waveform.rms_diff a b ~t0:1. ~t1:0. with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ----------------------------------------------------------------- Pwl *)

let test_pwl_eval () =
  let p = Pwl.of_points [ (0., 0.); (1., 1.8); (3., 1.8) ] in
  check_float "before" 0. (Pwl.eval p (-1.));
  check_float "mid ramp" 0.9 (Pwl.eval p 0.5);
  check_float "hold" 1.8 (Pwl.eval p 2.);
  check_float "after" 1.8 (Pwl.eval p 10.)

let test_pwl_ramp () =
  let p = Pwl.ramp ~t0:1e-12 ~v0:0. ~v1:vdd ~transition:100e-12 in
  check_float "start" 0. (Pwl.eval p 1e-12);
  check_float "end" vdd (Pwl.eval p 101e-12);
  check_float ~eps:1e-6 "mid" (vdd /. 2.) (Pwl.eval p 51e-12)

let test_two_ramp_geometry () =
  let f = 0.6 and tr1 = 40e-12 and tr2 = 200e-12 in
  let p = Pwl.two_ramp ~t0:0. ~vdd ~f ~tr1 ~tr2 in
  (* Breakpoint: at t = f*tr1 voltage is f*vdd. *)
  check_float ~eps:1e-6 "breakpoint voltage" (f *. vdd) (Pwl.eval p (f *. tr1));
  (* Completion: at t = f*tr1 + (1-f)*tr2 voltage is vdd. *)
  check_float ~eps:1e-6 "final" vdd (Pwl.eval p ((f *. tr1) +. ((1. -. f) *. tr2)));
  (* Slopes: vdd/tr1 then vdd/tr2. *)
  let slope1 = (Pwl.eval p 10e-12 -. Pwl.eval p 0.) /. 10e-12 in
  check_float ~eps:1e3 "slope 1" (vdd /. tr1) slope1;
  let t_mid = (f *. tr1) +. 50e-12 in
  let slope2 = (Pwl.eval p (t_mid +. 10e-12) -. Pwl.eval p t_mid) /. 10e-12 in
  check_float ~eps:1e3 "slope 2" (vdd /. tr2) slope2

let test_two_ramp_degenerate () =
  let p = Pwl.two_ramp ~t0:0. ~vdd ~f:1. ~tr1:50e-12 ~tr2:1. in
  check_float "single ramp end" vdd (Pwl.eval p 50e-12);
  Alcotest.(check bool) "f out of range rejected" true
    (match Pwl.two_ramp ~t0:0. ~vdd ~f:1.5 ~tr1:1e-12 ~tr2:1e-12 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pwl_falling () =
  let p = Pwl.falling ~vdd (Pwl.ramp ~t0:0. ~v0:0. ~v1:vdd ~transition:10e-12) in
  check_float "starts at vdd" vdd (Pwl.eval p (-1e-12));
  check_float "ends at 0" 0. (Pwl.eval p 20e-12)

let test_pwl_to_waveform_preserves_breakpoints () =
  let p = Pwl.two_ramp ~t0:0. ~vdd ~f:0.5 ~tr1:10e-12 ~tr2:100e-12 in
  let w = Pwl.to_waveform ~n:16 ~t_end:100e-12 p in
  (* The kink at t = 5 ps must be sampled exactly. *)
  check_float ~eps:1e-9 "kink value" (0.5 *. vdd) (Waveform.value_at w 5e-12)

(* ------------------------------------------------------------- Measure *)

let test_t_frac_rising () =
  let w = linear_rise ~t0:10e-12 ~tr:100e-12 in
  let t50 = Measure.t_frac_exn w ~vdd ~edge:Measure.Rising ~frac:0.5 in
  check_float ~eps:1e-13 "t50" 60e-12 t50

let test_slew_10_90 () =
  let w = linear_rise ~t0:0. ~tr:100e-12 in
  match Measure.slew_10_90 w ~vdd ~edge:Measure.Rising with
  | Some s -> check_float ~eps:1e-13 "slew" 80e-12 s
  | None -> Alcotest.fail "no slew"

let test_falling_measurements () =
  let w =
    Waveform.of_fun ~t0:0. ~t1:200e-12 ~n:400 (fun t ->
        if t < 50e-12 then vdd
        else if t > 150e-12 then 0.
        else vdd *. (1. -. ((t -. 50e-12) /. 100e-12)))
  in
  let t50 = Measure.t_frac_exn w ~vdd ~edge:Measure.Falling ~frac:0.5 in
  check_float ~eps:1e-12 "falling t50" 100e-12 t50;
  (match Measure.slew_20_80 w ~vdd ~edge:Measure.Falling with
  | Some s -> check_float ~eps:1e-12 "falling 20-80" 60e-12 s
  | None -> Alcotest.fail "no falling slew")

let test_delay_50 () =
  let input = linear_rise ~t0:0. ~tr:100e-12 in
  let output = linear_rise ~t0:40e-12 ~tr:100e-12 in
  match
    Measure.delay_50 ~input ~output ~vdd ~input_edge:Measure.Rising ~output_edge:Measure.Rising
  with
  | Some d -> check_float ~eps:1e-13 "stage delay" 40e-12 d
  | None -> Alcotest.fail "no delay"

let test_full_swing_extrapolation () =
  check_float "20-80 extrapolation" 100. (Measure.full_swing_of_slew ~lo:0.2 ~hi:0.8 60.)

let test_errors () =
  check_float "pct error" 10. (Measure.pct_error ~actual:100. ~model:110.);
  check_float ~eps:1e-2 "negative error" (-50.4) (Measure.pct_error ~actual:124.1 ~model:61.5504)

let prop_two_ramp_monotone =
  QCheck.Test.make ~name:"two-ramp waveforms are monotone rising" ~count:300
    QCheck.(triple (float_range 0.05 1.) (float_range 1e-12 1e-9) (float_range 1e-12 1e-9))
    (fun (f, tr1, tr2) ->
      let p = Pwl.two_ramp ~t0:0. ~vdd ~f ~tr1 ~tr2 in
      let w = Pwl.to_waveform ~n:200 p in
      Waveform.is_monotone_rising ~tol:1e-12 w
      && Float.abs (Waveform.v_final w -. vdd) < 1e-9)

let prop_measured_slew_of_ideal_ramp =
  QCheck.Test.make ~name:"10-90 slew of an ideal ramp is 0.8 of full swing" ~count:200
    QCheck.(float_range 10e-12 500e-12)
    (fun tr ->
      let p = Pwl.ramp ~t0:0. ~v0:0. ~v1:vdd ~transition:tr in
      let w = Pwl.to_waveform ~n:400 ~t_end:(1.2 *. tr) p in
      match Measure.slew_10_90 w ~vdd ~edge:Measure.Rising with
      | Some s -> Float.abs (s -. (0.8 *. tr)) < 1e-3 *. tr
      | None -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  ignore (Units.ps 1.);
  Alcotest.run "rlc_waveform"
    [
      ( "waveform",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "value_at" `Quick test_value_at;
          Alcotest.test_case "crossings" `Quick test_crossings;
          Alcotest.test_case "clip/resample" `Quick test_clip_and_resample;
          Alcotest.test_case "overshoot" `Quick test_overshoot_monotone;
          Alcotest.test_case "charge integral" `Quick test_charge_integral;
          Alcotest.test_case "diff metrics" `Quick test_diff_metrics;
        ] );
      ( "pwl",
        [
          Alcotest.test_case "eval" `Quick test_pwl_eval;
          Alcotest.test_case "ramp" `Quick test_pwl_ramp;
          Alcotest.test_case "two-ramp geometry" `Quick test_two_ramp_geometry;
          Alcotest.test_case "degenerate/two-ramp" `Quick test_two_ramp_degenerate;
          Alcotest.test_case "falling mirror" `Quick test_pwl_falling;
          Alcotest.test_case "breakpoints preserved" `Quick test_pwl_to_waveform_preserves_breakpoints;
          q prop_two_ramp_monotone;
        ] );
      ( "measure",
        [
          Alcotest.test_case "t_frac rising" `Quick test_t_frac_rising;
          Alcotest.test_case "slew 10-90" `Quick test_slew_10_90;
          Alcotest.test_case "falling edge" `Quick test_falling_measurements;
          Alcotest.test_case "delay 50" `Quick test_delay_50;
          Alcotest.test_case "full swing extrapolation" `Quick test_full_swing_extrapolation;
          Alcotest.test_case "error conventions" `Quick test_errors;
          q prop_measured_slew_of_ideal_ramp;
        ] );
    ]
