type t = { cap : float; children : (float * float * t) list }

let make ?(cap = 0.) ~children () =
  if cap < 0. then invalid_arg "Tree.make: negative capacitance";
  List.iter
    (fun (r, l, _) ->
      if r <= 0. || l < 0. then invalid_arg "Tree.make: branch needs r > 0 and l >= 0")
    children;
  { cap; children }

let leaf cap = make ~cap ~children:[] ()

let of_line ?n_segments line ~cl =
  let n =
    match n_segments with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Tree.of_line: n_segments must be >= 1"
    | None -> Rlc_tline.Ladder.default_segments line
  in
  let fn = float_of_int n in
  let dr = Rlc_tline.Line.total_r line /. fn
  and dl = Rlc_tline.Line.total_l line /. fn
  and dc = Rlc_tline.Line.total_c line /. fn in
  let rec chain i =
    let cap = if i = n then dc +. cl else dc in
    if i = n then make ~cap ~children:[] ()
    else make ~cap ~children:[ (dr, dl, chain (i + 1)) ] ()
  in
  make ~cap:0. ~children:[ (dr, dl, chain 1) ] ()

let cap t = t.cap
let children t = t.children

let rec total_cap t =
  List.fold_left (fun acc (_, _, child) -> acc +. total_cap child) t.cap t.children

let rec node_count t =
  List.fold_left (fun acc (_, _, child) -> acc + node_count child) 1 t.children

let rec depth t =
  1 + List.fold_left (fun acc (_, _, child) -> Int.max acc (depth child)) 0 t.children
