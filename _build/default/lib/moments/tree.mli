(** RLC interconnect trees.

    A tree node carries a grounded capacitance and children reached through
    series (R, L) branches; the root is the driving point.  Uniform lines are
    a special case (a chain via {!of_line}), but the moment machinery works
    on arbitrary trees, which is what a routed net with side branches
    needs. *)

type t

val make : ?cap:float -> children:(float * float * t) list -> unit -> t
(** [make ~cap ~children ()] where each child is [(r, l, subtree)] with
    [r > 0] and [l >= 0] (pure-RC branches are allowed). *)

val leaf : float -> t
(** A node with only a grounded capacitance. *)

val of_line : ?n_segments:int -> Rlc_tline.Line.t -> cl:float -> t
(** Chain discretization of a uniform line terminated by [cl] (an extra
    grounded cap at the last node).  Default segment count follows
    [Ladder.default_segments]. *)

val cap : t -> float
val children : t -> (float * float * t) list
val total_cap : t -> float
val node_count : t -> int
val depth : t -> int
