(** Driving-point admittance moments of RLC trees.

    With the root driven by an ideal source [V(s) = 1], the input current is
    [Y(s) = Σ_i s C_i V_i(s)], so the admittance moments follow from node
    voltage moments computed by path tracing (the RICE recurrence extended
    with inductance):

    - order 0: [V_i = 1] everywhere, [m0 = 0];
    - order k: branch current moments are subtree sums of [C_j V_j^(k-1)],
      node voltage moments accumulate [-R I^(k) - L I^(k-1)] down every
      branch, and [m_k = Σ_i C_i V_i^(k-1)].

    Each additional order is one post-order plus one pre-order walk: O(n)
    per moment. *)

val driving_point : ?order:int -> Tree.t -> float array
(** Moments [m0 .. m_order] (default [order = 5], the five the paper's 3/2
    Padé fit consumes plus [m0]). *)

val of_line : ?order:int -> Rlc_tline.Line.t -> cl:float -> float array
(** Moments of a uniform line terminated by [cl].  Uses the exact
    distributed (ABCD series) computation — no discretization error; the
    chain-tree path is cross-checked against it in the test suite. *)

val of_line_discretized :
  ?order:int -> ?n_segments:int -> Rlc_tline.Line.t -> cl:float -> float array
(** Same quantity through {!Tree.of_line} + {!driving_point}; exposed for the
    convergence tests and as the only path for non-uniform chains. *)
