(* Flattened tree representation for the moment recurrences. *)
type flat = {
  n : int;
  parent : int array;  (* -1 for root *)
  r : float array;  (* branch impedance from parent; 0 at root *)
  l : float array;
  cap : float array;
  order_post : int array;  (* children before parents *)
}

let flatten tree =
  let n = Tree.node_count tree in
  let parent = Array.make n (-1)
  and r = Array.make n 0.
  and l = Array.make n 0.
  and cap = Array.make n 0. in
  let next = ref 0 in
  (* Pre-order numbering: parents receive smaller indices than children, so a
     reverse index scan is a valid post-order. *)
  let rec go p_idx br_r br_l t =
    let idx = !next in
    incr next;
    parent.(idx) <- p_idx;
    r.(idx) <- br_r;
    l.(idx) <- br_l;
    cap.(idx) <- Tree.cap t;
    List.iter (fun (cr, cl_, child) -> go idx cr cl_ child) (Tree.children t)
  in
  go (-1) 0. 0. tree;
  { n; parent; r; l; cap; order_post = Array.init n (fun i -> n - 1 - i) }

let driving_point ?(order = 5) tree =
  if order < 0 then invalid_arg "Moments.driving_point: negative order";
  let f = flatten tree in
  let m = Array.make (order + 1) 0. in
  (* v.(i): voltage moment of current order; i_br.(i): current moment of the
     branch feeding node i (this order); i_prev: previous order's branch
     current moments (needed for the L term). *)
  let v = Array.make f.n 1. in
  let i_br = Array.make f.n 0. in
  let i_prev = Array.make f.n 0. in
  for k = 1 to order do
    (* m_k = sum C_i V_i^(k-1). *)
    let mk = ref 0. in
    for i = 0 to f.n - 1 do
      mk := !mk +. (f.cap.(i) *. v.(i))
    done;
    m.(k) <- !mk;
    (* Branch currents of order k: subtree sums of C_i V_i^(k-1). *)
    let subtree = Array.make f.n 0. in
    Array.iter
      (fun i ->
        subtree.(i) <- subtree.(i) +. (f.cap.(i) *. v.(i));
        if f.parent.(i) >= 0 then subtree.(f.parent.(i)) <- subtree.(f.parent.(i)) +. subtree.(i))
      f.order_post;
    (* Voltage moments of order k, pre-order: root driven by V(s) = 1 has
       zero moments beyond order 0. *)
    for i = 0 to f.n - 1 do
      let ik = subtree.(i) in
      let drop = (f.r.(i) *. ik) +. (f.l.(i) *. i_prev.(i)) in
      let vp = if f.parent.(i) < 0 then 0. else v.(f.parent.(i)) in
      (* v is being overwritten in place pre-order: at this point v.(parent)
         already holds the parent's order-k moment. *)
      v.(i) <- (if f.parent.(i) < 0 then -.drop else vp -. drop);
      i_br.(i) <- ik
    done;
    (* Root of the recurrence: the driven root keeps moment 0 for k >= 1. *)
    v.(0) <- 0.;
    Array.blit i_br 0 i_prev 0 f.n
  done;
  m

let of_line_discretized ?(order = 5) ?n_segments line ~cl =
  driving_point ~order (Tree.of_line ?n_segments line ~cl)

let of_line ?(order = 5) line ~cl = Rlc_tline.Abcd.input_admittance_moments line ~cl ~order
