(** The paper's reduced-order driving-point admittance (Eq. 3):

    [Y(s) = (a1 s + a2 s^2 + a3 s^3) / (1 + b1 s + b2 s^2)]

    fitted by matching the first five admittance moments — the direct-moment
    alternative to synthesizing a realizable pi/ladder circuit, which is the
    point of the paper's Section 4.  Degenerate loads (pure capacitance, or
    RC loads whose moment matrix is singular) gracefully fall back to lower
    order ([b2 = 0], possibly [b1 = 0]). *)

type t = {
  a1 : float;
  a2 : float;
  a3 : float;
  b1 : float;
  b2 : float;
}

val fit : float array -> t
(** [fit m] with [m = [| m0; m1; ...; m5 |]] (at least 6 entries; [m0] must
    be negligible against [m1], as it is for capacitive loads — raises
    [Invalid_argument] otherwise). *)

val of_load : Rlc_tline.Line.t -> cl:float -> t
(** Fit the distributed-line moments directly. *)

val of_tree : Tree.t -> t

val eval : t -> Rlc_num.Cx.t -> Rlc_num.Cx.t

val moments : t -> order:int -> float array
(** Re-expand the rational into moments (round-trip check: the first five
    match the fitted input). *)

val total_cap : t -> float
(** [a1 = m1]: the total capacitance of the load. *)

val poles : t -> (Rlc_num.Cx.t * Rlc_num.Cx.t) option
(** Roots of [b2 s^2 + b1 s + 1]; [None] when the fit degenerated to
    [b2 = 0]. *)

val is_stable : t -> bool
(** All poles strictly in the left half plane (degenerate single pole
    included; a pure-capacitance fit is stable by convention). *)

val pp : Format.formatter -> t -> unit
