(** Order-q reduced driving-point admittances (asymptotic waveform
    evaluation, the paper's reference [10]).

    Generalizes the paper's fixed 3/2 fit (Eq. 3) to
    [Y(s) = (a1 s + ... + a_{q+1} s^{q+1}) / (1 + b1 s + ... + b_q s^q)]
    matched to the first [2q + 1] admittance moments.  The repo's model flow
    keeps the paper's q = 2; this module quantifies what higher orders buy
    (ablation E in the bench) and provides the pole/residue view used to
    sanity-check fit stability. *)

type t = {
  num : float array;  (** a_1 .. a_{q+1} (the s^0 term is zero) *)
  den : float array;  (** b_1 .. b_q (the constant term is 1) *)
}

val order : t -> int

val fit : q:int -> float array -> t
(** [fit ~q m] with [m = [| m0; m1; ... |]], requiring
    [Array.length m >= 2q + 2] and negligible [m0].  Raises
    [Invalid_argument] on insufficient moments or [Rlc_num.Linalg.Singular]
    when the moment Hankel matrix degenerates (use a smaller [q]). *)

val of_line : q:int -> Rlc_tline.Line.t -> cl:float -> t
val of_tree : q:int -> Tree.t -> t

val eval : t -> Rlc_num.Cx.t -> Rlc_num.Cx.t
val moments : t -> order:int -> float array
val poles : t -> Rlc_num.Cx.t list
val is_stable : t -> bool

val to_pade : t -> Pade.t
(** Only for [q <= 2] (raises otherwise); lets q = 2 AWE results flow into
    the paper's Ceff machinery and pins equivalence with {!Pade.fit} in the
    tests. *)

val pp : Format.formatter -> t -> unit
