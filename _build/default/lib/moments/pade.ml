open Rlc_num

type t = { a1 : float; a2 : float; a3 : float; b1 : float; b2 : float }

let fit m =
  if Array.length m < 6 then invalid_arg "Pade.fit: needs moments m0..m5";
  let m0 = m.(0) and m1 = m.(1) and m2 = m.(2) and m3 = m.(3) and m4 = m.(4) and m5 = m.(5) in
  if Float.abs m0 > 1e-9 *. Float.abs m1 then
    invalid_arg "Pade.fit: m0 must vanish for a capacitive load";
  let scale = Float.abs (m3 *. m3) +. Float.abs (m2 *. m4) in
  let det = (m3 *. m3) -. (m2 *. m4) in
  if Float.abs m2 < 1e-9 *. Float.abs m1 *. Float.abs m1 || scale = 0. then
    (* Pure capacitance: all higher moments vanish. *)
    { a1 = m1; a2 = 0.; a3 = 0.; b1 = 0.; b2 = 0. }
  else if Float.abs det < 1e-12 *. scale then begin
    (* Singular moment matrix (single-pole load): 2/1 Pade. *)
    let b1 = -.m3 /. m2 in
    { a1 = m1; a2 = m2 +. (m1 *. b1); a3 = 0.; b1; b2 = 0. }
  end
  else begin
    (* [m3 m2; m4 m3] [b1; b2] = [-m4; -m5] *)
    let b1 = ((-.m4 *. m3) -. (-.m5 *. m2)) /. det in
    let b2 = ((m3 *. -.m5) -. (m4 *. -.m4)) /. det in
    let a1 = m1 in
    let a2 = m2 +. (m1 *. b1) in
    let a3 = m3 +. (m2 *. b1) +. (m1 *. b2) in
    { a1; a2; a3; b1; b2 }
  end

let of_load line ~cl = fit (Rlc_tline.Abcd.input_admittance_moments line ~cl ~order:5)
let of_tree tree = fit (Moments.driving_point ~order:5 tree)

let eval t s =
  let open Cx in
  let num = (re t.a1 *: s) +: (re t.a2 *: s *: s) +: (re t.a3 *: s *: s *: s) in
  let den = one +: (re t.b1 *: s) +: (re t.b2 *: s *: s) in
  num /: den

let moments t ~order =
  let num = [| 0.; t.a1; t.a2; t.a3 |] in
  let den = [| 1.; t.b1; t.b2 |] in
  let get a k = if k < Array.length a then a.(k) else 0. in
  let m = Array.make (order + 1) 0. in
  for k = 0 to order do
    let acc = ref (get num k) in
    for j = 1 to k do
      acc := !acc -. (get den j *. m.(k - j))
    done;
    m.(k) <- !acc
  done;
  m

let total_cap t = t.a1

let poles t =
  if t.b2 = 0. then None else Some (Poly.quadratic_roots ~a:t.b2 ~b:t.b1 ~c:1.)

let is_stable t =
  match poles t with
  | Some (p1, p2) -> p1.Cx.re < 0. && p2.Cx.re < 0.
  | None -> t.b1 >= 0.

let pp fmt t =
  Format.fprintf fmt "Y(s) = (%.4g s + %.4g s^2 + %.4g s^3)/(1 + %.4g s + %.4g s^2)" t.a1 t.a2
    t.a3 t.b1 t.b2
