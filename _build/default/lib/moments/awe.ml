open Rlc_num

type t = { num : float array; den : float array }

let order t = Array.length t.den

let fit ~q m =
  if q < 1 then invalid_arg "Awe.fit: q must be >= 1";
  if Array.length m < (2 * q) + 2 then
    invalid_arg
      (Printf.sprintf "Awe.fit: q = %d needs %d moments, got %d" q ((2 * q) + 2)
         (Array.length m));
  if Float.abs m.(0) > 1e-9 *. Float.abs m.(1) then
    invalid_arg "Awe.fit: m0 must vanish for a capacitive load";
  if m.(2) = 0. then invalid_arg "Awe.fit: pure capacitance has no order-q >= 1 fit";
  (* Moments span ~20 orders of magnitude (m_k ~ m1 tau^{k-1}); normalize
     with the load's time scale so the Hankel solve is well conditioned:
     m'_k = m_k / (m1 tau^{k-1}) with tau = |m2/m1|. *)
  let tau = Float.abs (m.(2) /. m.(1)) in
  let ms = Array.mapi (fun k mk -> if k = 0 then 0. else mk /. (m.(1) *. (tau ** float_of_int (k - 1)))) m in
  (* Denominator (scaled): for n = q+2 .. 2q+1, m'_n + sum_j b'_j m'_{n-j} = 0. *)
  let mat = Array.init q (fun r -> Array.init q (fun c -> ms.(q + 1 + r - c))) in
  let rhs = Array.init q (fun r -> -.ms.(q + 2 + r)) in
  let b' = Linalg.solve mat rhs in
  (* Numerator (scaled): a'_i = m'_i + sum_{j=1..min(q, i-1)} b'_j m'_{i-j}. *)
  let num' =
    Array.init (q + 1) (fun idx ->
        let i = idx + 1 in
        let acc = ref ms.(i) in
        for j = 1 to Int.min q (i - 1) do
          acc := !acc +. (b'.(j - 1) *. ms.(i - j))
        done;
        !acc)
  in
  (* Undo the scaling: b_j = b'_j tau^j, a_i = m1 a'_i tau^{i-1}. *)
  let den = Array.mapi (fun j v -> v *. (tau ** float_of_int (j + 1))) b' in
  let num = Array.mapi (fun idx v -> m.(1) *. v *. (tau ** float_of_int idx)) num' in
  { num; den }

let of_line ~q line ~cl =
  fit ~q (Rlc_tline.Abcd.input_admittance_moments line ~cl ~order:((2 * q) + 1))

let of_tree ~q tree = fit ~q (Moments.driving_point ~order:((2 * q) + 1) tree)

let num_poly t = Poly.of_coeffs (Array.append [| 0. |] t.num)
let den_poly t = Poly.of_coeffs (Array.append [| 1. |] t.den)

let eval t s =
  let open Cx in
  Poly.eval_cx (num_poly t) s /: Poly.eval_cx (den_poly t) s

let moments t ~order =
  let num = Poly.coeffs (num_poly t) and den = Poly.coeffs (den_poly t) in
  let get a k = if k < Array.length a then a.(k) else 0. in
  let m = Array.make (order + 1) 0. in
  for k = 0 to order do
    let acc = ref (get num k) in
    for j = 1 to k do
      acc := !acc -. (get den j *. m.(k - j))
    done;
    m.(k) <- !acc
  done;
  m

let poles t =
  let d = den_poly t in
  if Poly.degree d <= 3 then Poly.roots d else Polyroots.roots d

let is_stable t = List.for_all (fun (p : Cx.t) -> p.Cx.re < 0.) (poles t)

let to_pade t =
  match (Array.length t.num, Array.length t.den) with
  | 3, 2 -> { Pade.a1 = t.num.(0); a2 = t.num.(1); a3 = t.num.(2); b1 = t.den.(0); b2 = t.den.(1) }
  | 2, 1 -> { Pade.a1 = t.num.(0); a2 = t.num.(1); a3 = 0.; b1 = t.den.(0); b2 = 0. }
  | _ -> invalid_arg "Awe.to_pade: only q <= 2 maps onto the paper's Eq. 3 form"

let pp fmt t =
  Format.fprintf fmt "awe<q=%d, num=[%s], den=[1; %s]>" (order t)
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3g") t.num)))
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3g") t.den)))
