lib/moments/pade.ml: Array Cx Float Format Moments Poly Rlc_num Rlc_tline
