lib/moments/tree.ml: Int List Rlc_tline
