lib/moments/moments.ml: Array List Rlc_tline Tree
