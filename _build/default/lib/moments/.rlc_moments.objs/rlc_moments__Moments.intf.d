lib/moments/moments.mli: Rlc_tline Tree
