lib/moments/awe.mli: Format Pade Rlc_num Rlc_tline Tree
