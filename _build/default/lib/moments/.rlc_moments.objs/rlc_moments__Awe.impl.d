lib/moments/awe.ml: Array Cx Float Format Int Linalg List Moments Pade Poly Polyroots Printf Rlc_num Rlc_tline String
