lib/moments/pade.mli: Format Rlc_num Rlc_tline Tree
