lib/moments/tree.mli: Rlc_tline
