type polarity = Nmos | Pmos

type eval = { id : float; g_dd : float; g_dg : float; g_ds : float }

let gmin = 1e-9

let nmos_ids (p : Tech.mosfet_params) ~w_um ~vgs ~vds =
  let vgt = vgs -. p.vth in
  if vgt <= 0. then (0., 0., 0.)
  else begin
    let vd0 = p.kv *. (vgt ** (p.alpha /. 2.)) in
    let i0 = p.beta *. w_um *. (vgt ** p.alpha) in
    let clm = 1. +. (p.lambda *. vds) in
    if vds >= vd0 then begin
      let id = i0 *. clm in
      let gm = p.alpha *. i0 /. vgt *. clm in
      let gds = i0 *. p.lambda in
      (id, gm, gds)
    end
    else begin
      let u = vds /. vd0 in
      let f = u *. (2. -. u) in
      let f' = 2. -. (2. *. u) in
      let id = i0 *. clm *. f in
      let gds = i0 *. ((p.lambda *. f) +. (clm *. f' /. vd0)) in
      (* du/dvgs = -u * (alpha/2) / vgt because vd0 grows with vgt. *)
      let gm = clm *. i0 /. vgt *. ((p.alpha *. f) -. (f' *. u *. p.alpha /. 2.)) in
      (id, gm, gds)
    end
  end

let eval_nmos p ~w_um ~vd ~vg ~vs =
  if vd >= vs then begin
    let id, gm, gds = nmos_ids p ~w_um ~vgs:(vg -. vs) ~vds:(vd -. vs) in
    {
      id = id +. (gmin *. (vd -. vs));
      g_dd = gds +. gmin;
      g_dg = gm;
      g_ds = -.(gm +. gds) -. gmin;
    }
  end
  else begin
    (* Reverse conduction: the lower terminal acts as the source. *)
    let id, gm, gds = nmos_ids p ~w_um ~vgs:(vg -. vd) ~vds:(vs -. vd) in
    {
      id = -.id +. (gmin *. (vd -. vs));
      g_dd = gm +. gds +. gmin;
      g_dg = -.gm;
      g_ds = -.gds -. gmin;
    }
  end

let eval_pmos p ~w_um ~vd ~vg ~vs =
  (* Voltage mirroring: a PMOS at (vd, vg, vs) behaves as an NMOS at the
     negated voltages with the channel current reversed; the chain rule
     through the negation leaves the conductances unchanged. *)
  let m = eval_nmos p ~w_um ~vd:(-.vd) ~vg:(-.vg) ~vs:(-.vs) in
  { id = -.m.id; g_dd = m.g_dd; g_dg = m.g_dg; g_ds = m.g_ds }

let device p ~polarity ~w_um ~d ~g ~s ~name =
  let eval = match polarity with Nmos -> eval_nmos | Pmos -> eval_pmos in
  {
    Rlc_circuit.Netlist.nl_name = name;
    nl_nodes = [| d; g; s |];
    nl_eval =
      (fun v ->
        let e = eval p ~w_um ~vd:v.(0) ~vg:v.(1) ~vs:v.(2) in
        ( [| e.id; 0.; -.e.id |],
          [|
            [| e.g_dd; e.g_dg; e.g_ds |];
            [| 0.; 0.; 0. |];
            [| -.e.g_dd; -.e.g_dg; -.e.g_ds |];
          |] ));
  }
