(** Inverter drivers.

    Sizes follow the paper's convention: an "NX" driver has an NMOS of width
    [N * w_unit] (w_unit = 2 Lmin = 0.36 µm) and a PMOS twice as wide.  The
    output node carries the summed drain-junction capacitance; receivers
    present the summed gate capacitance. *)

type t

val make : Tech.t -> size:float -> t
(** [size] is the X multiplier (25., 75., 100., ...). Must be positive. *)

val tech : t -> Tech.t
val size : t -> float
val wn_um : t -> float
val wp_um : t -> float

val input_cap : t -> float
(** Gate capacitance presented at the inverter input, farads. *)

val output_junction_cap : t -> float
(** Drain junction capacitance loading the inverter output, farads. *)

val add :
  Rlc_circuit.Netlist.t -> t ->
  vdd_node:Rlc_circuit.Netlist.node ->
  input:Rlc_circuit.Netlist.node ->
  output:Rlc_circuit.Netlist.node -> unit
(** Instantiate both devices plus the output junction capacitance. *)

val add_receiver : Rlc_circuit.Netlist.t -> t -> Rlc_circuit.Netlist.node -> unit
(** Attach only the gate-capacitance load of this inverter at a node — the
    fan-out load [CL] of the paper's Eq. 9. *)

val pp : Format.formatter -> t -> unit
