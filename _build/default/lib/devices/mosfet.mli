(** Sakurai–Newton alpha-power-law MOSFET model.

    The model captures what matters for driver output waveforms: a
    velocity-saturated drive current [Idsat ∝ W (Vgs - Vth)^α], a quadratic
    triode region joining it with continuous value and slope at
    [Vdsat = kv (Vgs - Vth)^(α/2)], channel-length modulation, and
    source/drain symmetry (reverse conduction during ringing).  Gate current
    is zero; gate/junction capacitances are added as linear elements by
    {!Inverter}. *)

type polarity = Nmos | Pmos

type eval = {
  id : float;  (** drain-to-source channel current (NMOS convention), A *)
  g_dd : float;  (** d id / d v_drain *)
  g_dg : float;  (** d id / d v_gate *)
  g_ds : float;  (** d id / d v_source *)
}

val nmos_ids :
  Tech.mosfet_params -> w_um:float -> vgs:float -> vds:float -> float * float * float
(** [(id, gm, gds)] for an NMOS with [vds >= 0]; pure drive equation without
    symmetry handling.  Exposed for model-continuity tests. *)

val eval_nmos : Tech.mosfet_params -> w_um:float -> vd:float -> vg:float -> vs:float -> eval
(** Full symmetric evaluation at the given node voltages (swaps drain and
    source when [vd < vs]).  A small [gmin = 1e-9 S] drain-source leak keeps
    Newton matrices nonsingular when the device is off. *)

val eval_pmos : Tech.mosfet_params -> w_um:float -> vd:float -> vg:float -> vs:float -> eval
(** PMOS via voltage mirroring; [id] is again the current entering the drain
    terminal (negative when the PMOS sources current into the drain node). *)

val device :
  Tech.mosfet_params -> polarity:polarity -> w_um:float ->
  d:Rlc_circuit.Netlist.node -> g:Rlc_circuit.Netlist.node -> s:Rlc_circuit.Netlist.node ->
  name:string -> Rlc_circuit.Netlist.nonlinear
(** Package as a circuit-engine nonlinear element over nodes [d; g; s]. *)
