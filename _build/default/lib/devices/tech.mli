(** Technology description.

    The paper characterizes drivers in a commercial 1.8 V / 0.18 µm CMOS
    process.  That library is proprietary, so this module carries an
    equivalent synthetic technology: Sakurai–Newton alpha-power-law device
    parameters chosen so that the paper's driver-size regimes are preserved —
    a 75X inverter's fitted output resistance is comparable to the
    characteristic impedance of the paper's global wires (≈ 50–70 Ω), making
    75X-and-up drivers inductively significant while 25X stays RC-like
    (DESIGN.md §2 records the substitution). *)

type mosfet_params = {
  vth : float;  (** threshold voltage, V (positive for both polarities) *)
  alpha : float;  (** velocity-saturation exponent *)
  beta : float;  (** drive strength, A/µm of width at (Vgs - Vth) = 1 V *)
  kv : float;  (** saturation-voltage coefficient: Vdsat = kv (Vgs-Vth)^(α/2) *)
  lambda : float;  (** channel-length modulation, 1/V *)
}

type t = {
  name : string;
  vdd : float;
  lmin : float;  (** drawn channel length, metres *)
  w_unit : float;  (** minimum device width (= 2 Lmin per the paper), metres *)
  nmos : mosfet_params;
  pmos : mosfet_params;
  cg_per_um : float;  (** gate input capacitance, F per µm of width *)
  cd_per_um : float;  (** drain junction capacitance, F per µm of width *)
}

val c018 : t
(** The default 0.18 µm, 1.8 V technology used by every experiment. *)

val pp : Format.formatter -> t -> unit
