type mosfet_params = {
  vth : float;
  alpha : float;
  beta : float;
  kv : float;
  lambda : float;
}

type t = {
  name : string;
  vdd : float;
  lmin : float;
  w_unit : float;
  nmos : mosfet_params;
  pmos : mosfet_params;
  cg_per_um : float;
  cd_per_um : float;
}

let c018 =
  {
    name = "synthetic-0.18um-1.8V";
    vdd = 1.8;
    lmin = 0.18e-6;
    w_unit = 0.36e-6;
    nmos = { vth = 0.45; alpha = 1.3; beta = 3.2e-4; kv = 0.65; lambda = 0.05 };
    (* PMOS at half the per-µm drive: the paper's inverters use Wp = 2 Wn,
       which then balances rise and fall strength. *)
    pmos = { vth = 0.45; alpha = 1.3; beta = 1.6e-4; kv = 0.65; lambda = 0.05 };
    cg_per_um = 1.6e-15;
    cd_per_um = 1.0e-15;
  }

let pp fmt t =
  Format.fprintf fmt "tech<%s, vdd=%.2f V, lmin=%g m, beta_n=%g A/um>" t.name t.vdd t.lmin
    t.nmos.beta
